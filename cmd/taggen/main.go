// Command taggen writes a generated TPC-H-like or TPC-DS-like database as
// CSV files (one per table, with headers), for inspection or for loading
// into other systems.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/relation"
	"repro/internal/tpcds"
	"repro/internal/tpch"
)

func main() {
	workload := flag.String("db", "tpch", "database to generate: tpch or tpcds")
	scale := flag.Float64("scale", 1, "scale factor")
	seed := flag.Int64("seed", 2021, "generator seed")
	dir := flag.String("out", ".", "output directory")
	flag.Parse()

	var cat *relation.Catalog
	switch *workload {
	case "tpch":
		cat = tpch.Generate(*scale, *seed)
	case "tpcds":
		cat = tpcds.Generate(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown db %q\n", *workload)
		os.Exit(2)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range cat.Names() {
		rel := cat.Get(name)
		path := filepath.Join(*dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rel.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s (%d rows)\n", path, rel.Len())
	}
}
