// Command tagserve is the concurrent HTTP query server over the TAG-join
// executor: it loads a generated TPC-H-like or TPC-DS-like database,
// encodes it once into a frozen TAG graph, and serves SQL over a session
// pool with a prepared-statement cache. Writes are accepted while
// serving: each /write batch is applied to a copy-on-write clone of the
// graph and published as the next epoch with an atomic swap, so queries
// are never blocked and never see a half-applied batch.
//
// With -wal <dir>, writes are durable: every published batch is
// appended to a write-ahead log (synced per -wal-sync) before its
// generation swap. On boot the server loads the newest valid
// checkpoint in the dir and replays only the log suffix past it (full
// replay when there is none) — kill the process mid-stream and restart
// it, and it answers as the uninterrupted server would. With
// -checkpoint-interval N (and/or -checkpoint-bytes), a background
// checkpointer snapshots the served graph every N epochs and truncates
// the covered log prefix, keeping both the log and the next boot's
// replay work bounded.
//
// Endpoints:
//
//	POST /query  {"sql": "SELECT ..."}   rows + per-query execution report
//	GET  /query?sql=...                  same, for quick curl use
//	POST /write  {"table": ..., "insert": [[...]], "delete": [ids]}
//	                                     apply a batch, publish a new epoch
//	GET  /stats                          aggregate serving statistics
//	GET  /metrics                        Prometheus text exposition (counters,
//	                                     admission gauges, per-protocol latency histograms)
//	GET  /healthz                        liveness probe
//
// With -proto-addr, the same serving core also listens on the binary
// query protocol (internal/proto): persistent TCP connections carrying
// CRC-framed requests and columnar binary results, with a statement-
// fingerprint fast path that skips SQL parsing — the low-overhead
// surface for point-query clients. Admission control (-admit-wait,
// -write-queue) bounds how long an over-capacity query or write may
// wait before the server refuses it (HTTP 429 + Retry-After, binary
// RETRY frame) instead of queueing without limit.
//
// Distributed serving (internal/dist): with -workers N the server
// becomes the coordinator of a real multi-process cluster — it binds a
// cluster port (-dist-addr, printed as "listening dist://<addr>"),
// waits for N `tagserve -worker <that addr>` processes to join, and
// then answers every query by running it on all N+1 nodes at once,
// each owning one hash-partition of the graph, with the data exchange
// on real sockets. Answers are byte-identical to single-process
// serving, and the wire carries exactly the bytes the simulated
// cluster accounting (internal/cluster) prices. Distributed serving is
// read-only: -workers refuses -pin, /write and the WAL flags. A worker
// process learns the dataset (db/scale/seed) from the coordinator,
// builds the identical graph, and serves only /healthz and /stats over
// HTTP — queries flow through the cluster. If any node dies the
// cluster degrades permanently (queries answer 503); surviving
// processes stay alive for inspection until SIGTERM.
//
// Harness affordances: the listener is bound before the database loads
// and the first stdout line is always "listening http://<addr>" (with
// -proto-addr, "listening proto://<addr>" follows it) — with
// -addr 127.0.0.1:0 (port 0) the kernel picks an ephemeral port and the
// printed line is the only way to learn it, which is exactly what a
// test harness scripting many servers wants. SIGTERM (and SIGINT)
// trigger a graceful shutdown: in-flight requests drain through
// http.Server.Shutdown, the WAL is fsynced and closed (releasing the
// dir lock), and the process exits 0 — so a supervisor can distinguish
// a clean stop from a crash or kill -9, which exits by signal with the
// log possibly mid-append.
//
// Example:
//
//	tagserve -db tpch -scale 0.5 -sessions 8 -wal ./wal -addr :8080 &
//	curl -s localhost:8080/query --data '{"sql": "SELECT COUNT(*) FROM orders"}'
//	curl -s localhost:8080/write --data '{"table": "nation", "insert": [[25, "ATLANTIS", 1, "n/a"]]}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/proto"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/tpcds"
	"repro/internal/tpch"
	"repro/internal/wal"
)

func main() {
	workload := flag.String("db", "tpch", "database to load: tpch or tpcds")
	scale := flag.Float64("scale", 1, "scale factor")
	seed := flag.Int64("seed", 2021, "generator seed")
	addr := flag.String("addr", ":8080", "listen address")
	protoAddr := flag.String("proto-addr", "", "binary query protocol listen address (empty = HTTP only)")
	sessions := flag.Int("sessions", 4, "session pool size per graph generation (max simultaneous queries on one epoch; during a write burst, in-flight totals can transiently reach live_generations x this)")
	bspWorkers := flag.Int("bsp-workers", 1, "BSP worker threads per session (local parallelism)")
	distWorkers := flag.Int("workers", 0, "serve as the coordinator of a distributed cluster with this many worker processes (0 = single-process serving)")
	workerOf := flag.String("worker", "", "join the cluster coordinated at this address as a worker node (excludes most other flags)")
	distAddr := flag.String("dist-addr", ":0", "cluster listen address in -workers mode (printed as listening dist://<addr>)")
	readonly := flag.Bool("readonly", false, "disable the /write endpoint")
	prepared := flag.Int("prepared", 1024, "prepared-statement cache entries (LRU)")
	walDir := flag.String("wal", "", "write-ahead log directory (empty = memory-only): replay on boot, append while serving")
	walSync := flag.String("wal-sync", "interval", "WAL sync policy: always|interval|never")
	walInterval := flag.Duration("wal-interval", 100*time.Millisecond, "max fsync lag under -wal-sync interval")
	ckptEvery := flag.Int("checkpoint-interval", 0, "checkpoint the served graph and truncate the covered WAL prefix every N epochs (0 = never; requires -wal)")
	ckptBytes := flag.Int64("checkpoint-bytes", 0, "also checkpoint after this many bytes of WAL growth (0 = no byte trigger)")
	ckptTruncate := flag.Bool("checkpoint-truncate", true, "truncate the covered WAL prefix after each periodic checkpoint (false keeps the full log: slower boots bound by the checkpoint, but a lost image can always fall back to full replay)")
	adaptive := flag.Bool("adaptive-combine", false, "drop a query's message combiner mid-run when folds are rare (per-run sampling)")
	admitWait := flag.Duration("admit-wait", 100*time.Millisecond, "admission-control bound: how long a query waits for a session (a write for queue space) before refusal with 429/RETRY (negative = unbounded waits)")
	writeQueue := flag.Int("write-queue", 256, "max writes queued or applying at once (beyond it, writes wait -admit-wait then get 429)")
	var pins pinFlags
	flag.Var(&pins, "pin", "pin a query at boot: the server keeps its answer current across writes (incrementally when eligible); repeatable, and one flag may carry several statements separated by ';'")
	verifyInc := flag.Bool("verify-incremental", false, "cross-check every incrementally folded pinned-query answer against a cold re-run on the write path (correctness harness; counts incremental_mismatches)")
	flag.Parse()

	if *workerOf != "" {
		if *distWorkers > 0 {
			fmt.Fprintln(os.Stderr, "-worker and -workers are mutually exclusive")
			os.Exit(2)
		}
		runWorker(*workerOf, *addr, *bspWorkers)
		return
	}
	if *distWorkers > 0 {
		if len(pins) > 0 || *walDir != "" || *ckptEvery > 0 || *ckptBytes > 0 {
			fmt.Fprintln(os.Stderr, "-workers (distributed serving) is read-only and memory-only: it refuses -pin, -wal and the checkpoint flags")
			os.Exit(2)
		}
		*readonly = true
	}

	walPolicy, err := wal.ParsePolicy(*walSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Bind before loading: with port 0 the bound address is the one fact
	// a harness cannot know in advance, so it is the first stdout line —
	// printed before the (potentially long) data load. Connections made
	// early sit in the accept backlog until Serve starts; /healthz
	// answering is the readiness signal.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("listening http://%s\n", ln.Addr())
	var protoLn net.Listener
	if *protoAddr != "" {
		if protoLn, err = net.Listen("tcp", *protoAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("listening proto://%s\n", protoLn.Addr())
	}

	var cat *relation.Catalog
	switch *workload {
	case "tpch":
		cat = tpch.Generate(*scale, *seed)
	case "tpcds":
		cat = tpcds.Generate(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown db %q\n", *workload)
		os.Exit(2)
	}

	start := time.Now()
	g, err := tag.Build(cat, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Coordinator mode: open the cluster port and admit workers in the
	// background while the serve layer comes up; queries block until the
	// topology forms. The builder hands every in-process reference the
	// already-built graph.
	var coord *dist.Coordinator
	if *distWorkers > 0 {
		coord, err = dist.Listen(*distAddr, dist.Config{
			Parts: *distWorkers + 1, DB: *workload, Scale: *scale, Seed: *seed,
			Workers: *bspWorkers,
		}, func(string, float64, int64) (*tag.Graph, error) { return g, nil })
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("listening dist://%s\n", coord.Addr())
		go func() {
			if err := coord.WaitReady(); err != nil {
				fmt.Fprintf(os.Stderr, "cluster formation: %v\n", err)
				return
			}
			fmt.Printf("tagserve: cluster up (%d workers + coordinator)\n", *distWorkers)
		}()
	}
	srv, err := serve.Open(g, serve.Options{
		Sessions:             *sessions,
		Engine:               bsp.Options{Workers: *bspWorkers, AdaptiveCombine: *adaptive},
		Dist:                 coord,
		PreparedLimit:        *prepared,
		WALDir:               *walDir,
		WALSync:              walPolicy,
		WALSyncInterval:      *walInterval,
		CheckpointEvery:      *ckptEvery,
		CheckpointBytes:      *ckptBytes,
		CheckpointNoTruncate: !*ckptTruncate,
		AdmitWait:            *admitWait,
		WriteQueue:           *writeQueue,
		VerifyIncremental:    *verifyInc,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Boot-time pins land after WAL replay, so they answer for the
	// recovered epoch — a restarted server re-pins to exactly the state
	// the killed one had published.
	for _, q := range pins {
		res, err := srv.Subscribe(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pin %q: %v\n", q, err)
			os.Exit(2)
		}
		how := "incremental"
		if !res.Eligible {
			how = "full-recompute (" + res.Reason + ")"
		}
		fmt.Printf("pinned %q epoch=%d rows=%d maintenance=%s\n", res.FP, res.Epoch, res.Answer.Len(), how)
	}
	var ps *proto.Server
	if protoLn != nil {
		ps = proto.Serve(protoLn, srv)
	}
	mode := "serve-while-write (/write enabled)"
	handler := serve.Handler(srv)
	if *readonly {
		mode = "read-only"
		handler = serve.ReadOnlyHandler(srv)
	}
	if coord != nil {
		mode = fmt.Sprintf("distributed (%d workers + coordinator, read-only)", *distWorkers)
	}
	durability := "memory-only"
	if *walDir != "" {
		st := srv.Stats()
		durability = fmt.Sprintf("wal %s (sync=%s, %d epochs replayed", *walDir, walPolicy, st.WALReplayed)
		if st.WALSkipped > 0 {
			durability += fmt.Sprintf(", booted from checkpoint epoch %d covering %d", st.CheckpointEpoch, st.WALSkipped)
		}
		if *ckptEvery > 0 || *ckptBytes > 0 {
			durability += fmt.Sprintf(", checkpoint every %d epochs/%d bytes", *ckptEvery, *ckptBytes)
		}
		durability += ")"
	}
	fmt.Printf("tagserve: %s at scale %g encoded in %v (%s); %d sessions, %s, %s, on %s\n",
		*workload, *scale, time.Since(start).Round(time.Millisecond), g.G.String(), *sessions, mode, durability, ln.Addr())

	// Graceful shutdown on SIGTERM/SIGINT: drain in-flight requests,
	// then fsync and close the WAL so the dir lock releases and the log
	// ends on a record boundary. Exit 0 marks the stop as clean; a
	// kill -9 never reaches this path and exits by signal instead.
	hs := &http.Server{Handler: handler}
	done := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		defer close(done)
		sig := <-sigc
		fmt.Printf("tagserve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
	if ps != nil {
		// Binary connections are persistent, so there is nothing like
		// http.Server.Shutdown's idle-drain: close the listener and the
		// live connections; clients see EOF and reconnect elsewhere.
		ps.Close()
	}
	if coord != nil {
		// SHUTDOWN the workers so their processes exit cleanly too.
		coord.Close()
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("tagserve: clean shutdown")
}

// runWorker is -worker mode: join the coordinator, build the identical
// graph from the dataset triple it relays, and serve the cluster's
// query plane. The local HTTP listener answers only /healthz and
// /stats (queries flow through the coordinator). The process exits 0
// on a clean cluster SHUTDOWN; on a cluster failure it leaves the
// query plane but keeps /healthz alive for inspection until SIGTERM —
// a degraded cluster's survivors are diagnosable, not gone.
func runWorker(coordAddr, httpAddr string, bspWorkers int) {
	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("listening http://%s\n", ln.Addr())

	build := func(db string, scale float64, seed int64) (*tag.Graph, error) {
		var cat *relation.Catalog
		switch db {
		case "tpch":
			cat = tpch.Generate(scale, seed)
		case "tpcds":
			cat = tpcds.Generate(scale, seed)
		default:
			return nil, fmt.Errorf("coordinator names unknown db %q", db)
		}
		return tag.Build(cat, nil)
	}
	// Serve /healthz before joining: topology formation blocks until
	// every worker has joined, and a worker that is only health-checkable
	// after formation deadlocks any harness that starts workers one at a
	// time and waits for each to come up.
	var wp atomic.Pointer[dist.Worker]
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/stats", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		w := wp.Load()
		if w == nil {
			json.NewEncoder(rw).Encode(struct {
				Joining bool `json:"joining"`
			}{true})
			return
		}
		var errStr string
		if err := w.Err(); err != nil {
			errStr = err.Error()
		}
		json.NewEncoder(rw).Encode(struct {
			Part  int            `json:"part"`
			Parts int            `json:"parts"`
			Err   string         `json:"err,omitempty"`
			Wire  dist.WireStats `json:"wire"`
		}{w.Part(), w.Parts(), errStr, w.Wire()})
	})
	hs := &http.Server{Handler: mux}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()

	start := time.Now()
	w, err := dist.Join(coordAddr, bspWorkers, build)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wp.Store(w)
	fmt.Printf("tagserve: worker %d of %d joined %s in %v\n",
		w.Part(), w.Parts(), coordAddr, time.Since(start).Round(time.Millisecond))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	waitc := make(chan error, 1)
	go func() { waitc <- w.Wait() }()
	for {
		select {
		case err := <-waitc:
			waitc = nil // fire once
			if err == nil {
				fmt.Println("tagserve: worker shut down cleanly")
				hs.Close()
				return
			}
			// Stay alive for /healthz and /stats; only SIGTERM ends us.
			fmt.Fprintf(os.Stderr, "tagserve: worker left the query plane: %v\n", err)
		case sig := <-sigc:
			fmt.Printf("tagserve: %v, shutting down\n", sig)
			w.Close()
			hs.Close()
			return
		case err := <-httpDone:
			if !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
	}
}

// pinFlags collects -pin values: the flag is repeatable, and each value
// may carry several statements separated by ';' (SQL itself never needs
// a bare semicolon here).
type pinFlags []string

func (p *pinFlags) String() string { return strings.Join(*p, "; ") }

func (p *pinFlags) Set(v string) error {
	for _, q := range strings.Split(v, ";") {
		if q = strings.TrimSpace(q); q != "" {
			*p = append(*p, q)
		}
	}
	return nil
}
