// Command tagserve is the concurrent HTTP query server over the TAG-join
// executor: it loads a generated TPC-H-like or TPC-DS-like database,
// encodes it once into a frozen TAG graph, and serves SQL over a session
// pool with a prepared-statement cache.
//
// Endpoints:
//
//	POST /query  {"sql": "SELECT ..."}   rows + per-query execution report
//	GET  /query?sql=...                  same, for quick curl use
//	GET  /stats                          aggregate serving statistics
//	GET  /healthz                        liveness probe
//
// Example:
//
//	tagserve -db tpch -scale 0.5 -sessions 8 -addr :8080 &
//	curl -s localhost:8080/query --data '{"sql": "SELECT COUNT(*) FROM orders"}'
//	curl -s localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/tpcds"
	"repro/internal/tpch"
)

func main() {
	workload := flag.String("db", "tpch", "database to load: tpch or tpcds")
	scale := flag.Float64("scale", 1, "scale factor")
	seed := flag.Int64("seed", 2021, "generator seed")
	addr := flag.String("addr", ":8080", "listen address")
	sessions := flag.Int("sessions", 4, "session pool size (max simultaneous queries)")
	workers := flag.Int("workers", 1, "BSP workers per session")
	flag.Parse()

	var cat *relation.Catalog
	switch *workload {
	case "tpch":
		cat = tpch.Generate(*scale, *seed)
	case "tpcds":
		cat = tpcds.Generate(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown db %q\n", *workload)
		os.Exit(2)
	}

	start := time.Now()
	g, err := tag.Build(cat, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv := serve.New(g, serve.Options{
		Sessions: *sessions,
		Engine:   bsp.Options{Workers: *workers},
	})
	fmt.Printf("tagserve: %s at scale %g encoded in %v (%s); %d sessions on %s\n",
		*workload, *scale, time.Since(start).Round(time.Millisecond), g.G.String(), *sessions, *addr)

	if err := http.ListenAndServe(*addr, serve.Handler(srv)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
