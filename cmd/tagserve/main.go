// Command tagserve is the concurrent HTTP query server over the TAG-join
// executor: it loads a generated TPC-H-like or TPC-DS-like database,
// encodes it once into a frozen TAG graph, and serves SQL over a session
// pool with a prepared-statement cache. Writes are accepted while
// serving: each /write batch is applied to a copy-on-write clone of the
// graph and published as the next epoch with an atomic swap, so queries
// are never blocked and never see a half-applied batch.
//
// With -wal <dir>, writes are durable: every published batch is
// appended to a write-ahead log (synced per -wal-sync) before its
// generation swap. On boot the server loads the newest valid
// checkpoint in the dir and replays only the log suffix past it (full
// replay when there is none) — kill the process mid-stream and restart
// it, and it answers as the uninterrupted server would. With
// -checkpoint-interval N (and/or -checkpoint-bytes), a background
// checkpointer snapshots the served graph every N epochs and truncates
// the covered log prefix, keeping both the log and the next boot's
// replay work bounded.
//
// Endpoints:
//
//	POST /query  {"sql": "SELECT ..."}   rows + per-query execution report
//	GET  /query?sql=...                  same, for quick curl use
//	POST /write  {"table": ..., "insert": [[...]], "delete": [ids]}
//	                                     apply a batch, publish a new epoch
//	GET  /stats                          aggregate serving statistics
//	GET  /healthz                        liveness probe
//
// Example:
//
//	tagserve -db tpch -scale 0.5 -sessions 8 -wal ./wal -addr :8080 &
//	curl -s localhost:8080/query --data '{"sql": "SELECT COUNT(*) FROM orders"}'
//	curl -s localhost:8080/write --data '{"table": "nation", "insert": [[25, "ATLANTIS", 1, "n/a"]]}'
//	curl -s localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/tpcds"
	"repro/internal/tpch"
	"repro/internal/wal"
)

func main() {
	workload := flag.String("db", "tpch", "database to load: tpch or tpcds")
	scale := flag.Float64("scale", 1, "scale factor")
	seed := flag.Int64("seed", 2021, "generator seed")
	addr := flag.String("addr", ":8080", "listen address")
	sessions := flag.Int("sessions", 4, "session pool size per graph generation (max simultaneous queries on one epoch; during a write burst, in-flight totals can transiently reach live_generations x this)")
	workers := flag.Int("workers", 1, "BSP workers per session")
	readonly := flag.Bool("readonly", false, "disable the /write endpoint")
	prepared := flag.Int("prepared", 1024, "prepared-statement cache entries (LRU)")
	walDir := flag.String("wal", "", "write-ahead log directory (empty = memory-only): replay on boot, append while serving")
	walSync := flag.String("wal-sync", "interval", "WAL sync policy: always|interval|never")
	walInterval := flag.Duration("wal-interval", 100*time.Millisecond, "max fsync lag under -wal-sync interval")
	ckptEvery := flag.Int("checkpoint-interval", 0, "checkpoint the served graph and truncate the covered WAL prefix every N epochs (0 = never; requires -wal)")
	ckptBytes := flag.Int64("checkpoint-bytes", 0, "also checkpoint after this many bytes of WAL growth (0 = no byte trigger)")
	adaptive := flag.Bool("adaptive-combine", false, "drop a query's message combiner mid-run when folds are rare (per-run sampling)")
	flag.Parse()

	walPolicy, err := wal.ParsePolicy(*walSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var cat *relation.Catalog
	switch *workload {
	case "tpch":
		cat = tpch.Generate(*scale, *seed)
	case "tpcds":
		cat = tpcds.Generate(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown db %q\n", *workload)
		os.Exit(2)
	}

	start := time.Now()
	g, err := tag.Build(cat, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv, err := serve.Open(g, serve.Options{
		Sessions:        *sessions,
		Engine:          bsp.Options{Workers: *workers, AdaptiveCombine: *adaptive},
		PreparedLimit:   *prepared,
		WALDir:          *walDir,
		WALSync:         walPolicy,
		WALSyncInterval: *walInterval,
		CheckpointEvery: *ckptEvery,
		CheckpointBytes: *ckptBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mode := "serve-while-write (/write enabled)"
	handler := serve.Handler(srv)
	if *readonly {
		mode = "read-only"
		handler = serve.ReadOnlyHandler(srv)
	}
	durability := "memory-only"
	if *walDir != "" {
		st := srv.Stats()
		durability = fmt.Sprintf("wal %s (sync=%s, %d epochs replayed", *walDir, walPolicy, st.WALReplayed)
		if st.WALSkipped > 0 {
			durability += fmt.Sprintf(", booted from checkpoint epoch %d covering %d", st.CheckpointEpoch, st.WALSkipped)
		}
		if *ckptEvery > 0 || *ckptBytes > 0 {
			durability += fmt.Sprintf(", checkpoint every %d epochs/%d bytes", *ckptEvery, *ckptBytes)
		}
		durability += ")"
	}
	fmt.Printf("tagserve: %s at scale %g encoded in %v (%s); %d sessions, %s, %s, on %s\n",
		*workload, *scale, time.Since(start).Round(time.Millisecond), g.G.String(), *sessions, mode, durability, *addr)

	if err := http.ListenAndServe(*addr, handler); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
