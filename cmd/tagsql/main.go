// Command tagsql is an interactive SQL shell over the TAG-join executor
// (default) or the baseline relational engine. It loads a generated
// TPC-H-like or TPC-DS-like database, reads one query per line (or a
// -query argument), and prints rows plus executor statistics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/tpcds"
	"repro/internal/tpch"
)

func main() {
	workload := flag.String("db", "tpch", "database to load: tpch or tpcds")
	scale := flag.Float64("scale", 1, "scale factor")
	seed := flag.Int64("seed", 2021, "generator seed")
	engine := flag.String("engine", "tag", "engine: tag or refdb")
	query := flag.String("query", "", "run one query and exit (otherwise read stdin)")
	stats := flag.Bool("stats", true, "print execution statistics")
	flag.Parse()

	var cat *relation.Catalog
	switch *workload {
	case "tpch":
		cat = tpch.Generate(*scale, *seed)
	case "tpcds":
		cat = tpcds.Generate(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown db %q\n", *workload)
		os.Exit(2)
	}

	// Build the chosen engine once: the TAG encoding is query-independent,
	// so the graph and executor are shared by every line of the shell.
	var ex *core.Executor
	var ref *baseline.Engine
	switch *engine {
	case "tag":
		g, err := tag.Build(cat, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ex = core.NewExecutor(g, bsp.Options{})
	case "refdb":
		ref = baseline.New(cat)
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}

	runQuery := func(q string) {
		start := time.Now()
		var out *relation.Relation
		var err error
		var extra string
		if ex != nil {
			ex.ResetStats()
			out, err = ex.Query(q)
			if err == nil && *stats {
				extra = fmt.Sprintf("agg=%s acyclic=%v %s", ex.Info.Agg, ex.Info.Acyclic, ex.Stats())
			}
		} else {
			out, err = ref.Query(q)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Print(out.String())
		fmt.Printf("(%d rows in %v)\n", out.Len(), time.Since(start).Round(time.Microsecond))
		if extra != "" {
			fmt.Println(extra)
		}
	}

	if *query != "" {
		runQuery(*query)
		return
	}

	fmt.Printf("tagsql: %s at scale %g on the %s engine; one query per line, \\q to quit\n",
		*workload, *scale, *engine)
	fmt.Println(cat.String())
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("tagsql> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "\\q" || line == "exit" || line == "quit" {
			break
		}
		runQuery(line)
	}
}
