// Command tagsql is an interactive SQL shell over the TAG-join executor
// (default) or the baseline relational engine. It loads a generated
// TPC-H-like or TPC-DS-like database, reads one query per line (or a
// -query argument), and prints rows plus executor statistics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/tpcds"
	"repro/internal/tpch"
)

func main() {
	workload := flag.String("db", "tpch", "database to load: tpch or tpcds")
	scale := flag.Float64("scale", 1, "scale factor")
	seed := flag.Int64("seed", 2021, "generator seed")
	engine := flag.String("engine", "tag", "engine: tag or refdb")
	query := flag.String("query", "", "run one query and exit (otherwise read stdin)")
	stats := flag.Bool("stats", true, "print execution statistics")
	flag.Parse()

	var cat *relation.Catalog
	switch *workload {
	case "tpch":
		cat = tpch.Generate(*scale, *seed)
	case "tpcds":
		cat = tpcds.Generate(*scale, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown db %q\n", *workload)
		os.Exit(2)
	}

	runQuery := func(q string) {
		start := time.Now()
		var out *relation.Relation
		var err error
		var extra string
		switch *engine {
		case "tag":
			g, berr := tag.Build(cat, nil)
			if berr != nil {
				fmt.Fprintln(os.Stderr, berr)
				return
			}
			ex := core.NewExecutor(g, bsp.Options{})
			out, err = ex.Query(q)
			if err == nil && *stats {
				extra = fmt.Sprintf("agg=%s acyclic=%v %s", ex.Info.Agg, ex.Info.Acyclic, ex.Stats())
			}
		case "refdb":
			out, err = baseline.New(cat).Query(q)
		default:
			fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Print(out.String())
		fmt.Printf("(%d rows in %v)\n", out.Len(), time.Since(start).Round(time.Microsecond))
		if extra != "" {
			fmt.Println(extra)
		}
	}

	if *query != "" {
		runQuery(*query)
		return
	}

	fmt.Printf("tagsql: %s at scale %g on the %s engine; one query per line, \\q to quit\n",
		*workload, *scale, *engine)
	fmt.Println(cat.String())
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("tagsql> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "\\q" || line == "exit" || line == "quit" {
			break
		}
		runQuery(line)
	}
}
