// Command tagbench regenerates the paper's evaluation tables and figures
// (§8) on the reproduction's engines. Experiments:
//
//	load        Tables 1/2 loading times + Figure 14 sizes (+ Table 15)
//	tpch        Tables 3/4/8-10, Figure 13(a), Table 5-style win counts
//	tpcds       Tables 5/6/11-13, Figures 13(b)/15
//	memory      Table 7 peak RAM during workload execution
//	distributed Figure 16 + Tables 16/17 on the simulated cluster
//	ablation    design-choice ablations (θ sweep, Cartesian A/B, LA vs GA,
//	            thread scaling, materialization policy)
//	serve       concurrent-serving throughput (QPS at 1/4/16 clients:
//	            session pool vs serialized single session vs per-query
//	            graph rebuild)
//	maintain    serve-while-write: reader QPS under a continuous stream
//	            of insert batches, graph generations (clone + atomic
//	            swap) vs the stop-the-world quiescence baseline
//	maintain2   incremental pinned-query maintenance: hot
//	            SubscriptionAnswer reads and O(delta) per-epoch folds
//	            vs cold full-BSP re-runs of the same queries
//	engine      the BSP message plane: superstep throughput and
//	            per-session inbox memory, sharded parallel merge vs the
//	            serial merge, at 1/4/16 workers
//	combine     message-plane combiners: Send-time folding vs
//	            materializing every message on aggregate-heavy queries
//	            (wall time, merge time, peak inbox bytes, fold counters)
//	dist        real-wire distributed execution: the TPC-H suite on
//	            1/2/4-worker topologies over actual loopback sockets
//	            (internal/dist) vs the single-process engine, with
//	            measured bytes-on-wire checked against the simulated
//	            network accounting
//	wal         write durability: ingest throughput through the WriteOp
//	            write-ahead log under each sync policy (always /
//	            group-commit interval / never) vs the memory-only path
//	recover     boot time from one crash image, with a mid-log
//	            checkpoint (snapshot-load + suffix replay) vs without
//	            it (full WAL replay), plus replayed-record counts
//	scenario    end-to-end scenario matrix against a real tagserve
//	            process: crash/replay, on-disk corruption, startup
//	            refusals, fuzz barrages, skewed write load (quick
//	            tier; `tagscenario -full` for the soak rows)
//	all         everything above
//
// -exp accepts a comma-separated list (e.g. -exp engine,combine); an
// unknown name is an error listing the valid experiments. Flags -json
// <path> writes the structured results of the experiments that ran
// (QPS, supersteps, bytes, ns/op) as a machine-readable BENCH_*.json
// file; -quick shrinks scales, runs and measurement windows so a CI
// smoke pass finishes in seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/scenario"
)

func main() {
	exp := flag.String("exp", "all", "experiments, comma-separated: load|tpch|tpcds|memory|distributed|ablation|serve|maintain|maintain2|engine|combine|dist|wal|recover|proto|scenario|all")
	scalesFlag := flag.String("scales", "0.5,1,2", "comma-separated scale factors (stand-ins for SF-30/50/75)")
	runs := flag.Int("runs", 3, "timed repetitions per query (after one warm-up)")
	workers := flag.Int("workers", 0, "BSP worker threads (0 = GOMAXPROCS)")
	machines := flag.Int("machines", 6, "simulated cluster size")
	seed := flag.Int64("seed", 2021, "generator seed")
	jsonPath := flag.String("json", "", "write machine-readable results (BENCH_*.json) to this path")
	quick := flag.Bool("quick", false, "smoke mode: one small scale, one run, short windows")
	flag.Parse()

	var scales []float64
	for _, s := range strings.Split(*scalesFlag, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad scale %q: %v\n", s, err)
			os.Exit(2)
		}
		scales = append(scales, f)
	}
	if *quick {
		scales = []float64{0.1}
		*runs = 1
	}
	cfg := bench.Config{Scales: scales, Seed: *seed, Workers: *workers,
		Runs: *runs, Machines: *machines, Out: os.Stdout}

	// report collects the structured results of whatever ran, keyed by
	// experiment name, for -json.
	report := map[string]any{}

	// The experiment registry, in run order. An -exp name not in it is
	// an error, not a silent no-op run of zero experiments.
	experiments := []struct {
		name string
		fn   func() error
	}{
		{"load", func() error { return runLoad(cfg, report) }},
		{"tpch", func() error { return runWorkload(cfg, "tpch", report) }},
		{"tpcds", func() error { return runWorkload(cfg, "tpcds", report) }},
		{"memory", func() error { return runMemory(cfg, report) }},
		{"distributed", func() error { return runDistributed(cfg, report) }},
		{"ablation", func() error { return runAblation(cfg, report) }},
		{"serve", func() error { return runServe(cfg, *quick, report) }},
		{"maintain", func() error { return runMaintain(cfg, *quick, report) }},
		{"maintain2", func() error { return runMaintain2(cfg, *quick, report) }},
		{"engine", func() error { return runEngine(cfg, *quick, report) }},
		{"combine", func() error { return runCombine(cfg, *quick, report) }},
		{"dist", func() error { return runDist(cfg, *quick, report) }},
		{"wal", func() error { return runWal(cfg, *quick, report) }},
		{"recover", func() error { return runRecover(cfg, *quick, report) }},
		{"proto", func() error { return runProto(cfg, *quick, report) }},
		{"scenario", func() error { return runScenario(cfg, *quick, report) }},
	}
	valid := map[string]bool{"all": true}
	var names []string
	for _, e := range experiments {
		valid[e.name] = true
		names = append(names, e.name)
	}
	requested := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s or all\n", name, strings.Join(names, "|"))
			os.Exit(2)
		}
		requested[name] = true
	}
	if len(requested) == 0 {
		fmt.Fprintf(os.Stderr, "no experiment requested; valid: %s or all\n", strings.Join(names, "|"))
		os.Exit(2)
	}
	for _, e := range experiments {
		if !requested["all"] && !requested[e.name] {
			continue
		}
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
	}

	if *jsonPath != "" {
		payload := map[string]any{
			"generated": time.Now().UTC().Format(time.RFC3339),
			"config": map[string]any{
				"experiment": *exp, "scales": scales, "runs": *runs,
				"workers": *workers, "machines": *machines, "seed": *seed, "quick": *quick,
			},
			"results": report,
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(cfg.Out, "\nwrote %s\n", *jsonPath)
	}
}

// runScenario runs the end-to-end matrix against a real tagserve
// process (quick tier under -quick, everything otherwise) and records
// pass/fail per row. A failing row fails the experiment.
func runScenario(cfg bench.Config, quick bool, report map[string]any) error {
	tier := scenario.Full
	if quick {
		tier = scenario.Quick
	}
	rows, err := scenario.Select(scenario.Matrix(), tier, "")
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nScenario matrix — real-process crash/fuzz/load drills (%v tier)\n", tier)
	r := &scenario.Runner{Out: cfg.Out}
	results, err := r.RunAll(rows)
	if err != nil {
		return err
	}
	type row struct {
		Name    string  `json:"name"`
		Tier    string  `json:"tier"`
		Passed  bool    `json:"passed"`
		Seconds float64 `json:"seconds"`
		Error   string  `json:"error,omitempty"`
	}
	var out []row
	failed := 0
	for _, res := range results {
		rr := row{Name: res.Name, Tier: res.Tier.String(), Passed: res.Err == nil,
			Seconds: res.Elapsed.Seconds()}
		if res.Err != nil {
			failed++
			rr.Error = fmt.Sprintf("step %s: %v", res.Step, res.Err)
		}
		out = append(out, rr)
	}
	report["scenario"] = out
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(results))
	}
	return nil
}

func runCombine(cfg bench.Config, quick bool, report map[string]any) error {
	workerCounts := []int{1, 4}
	workloads := []string{"tpch", "tpcds"}
	if quick {
		workerCounts = []int{1}
		workloads = []string{"tpch"}
	}
	var all []bench.CombineResult
	for _, workload := range workloads {
		res, err := bench.CombineBench(cfg, workload, workerCounts)
		if err != nil {
			return err
		}
		bench.PrintCombine(cfg.Out, res)
		all = append(all, res...)
	}
	report["combine"] = all
	return nil
}

func runWal(cfg bench.Config, quick bool, report map[string]any) error {
	batchRows, window := 200, time.Second
	workloads := []string{"tpch", "tpcds"}
	if quick {
		batchRows, window = 100, 300*time.Millisecond
		workloads = []string{"tpch"}
	}
	var all []bench.WALResult
	for _, workload := range workloads {
		results, err := bench.WALBench(cfg, workload, batchRows, window)
		if err != nil {
			return err
		}
		for _, res := range results {
			bench.PrintWAL(cfg.Out, res)
		}
		all = append(all, results...)
	}
	report["wal"] = all
	return nil
}

func runRecover(cfg bench.Config, quick bool, report map[string]any) error {
	batches, batchRows := 20, 500
	workloads := []string{"tpch", "tpcds"}
	if quick {
		batches, batchRows = 40, 200
		workloads = []string{"tpch"}
	}
	var all []bench.RecoverResult
	for _, workload := range workloads {
		results, err := bench.RecoverBench(cfg, workload, batches, batchRows)
		if err != nil {
			return err
		}
		for _, res := range results {
			bench.PrintRecover(cfg.Out, res)
		}
		all = append(all, results...)
	}
	report["recover"] = all
	return nil
}

func runProto(cfg bench.Config, quick bool, report map[string]any) error {
	// 16 clients stays in both tiers: the binary protocol's headline
	// claim (point-query QPS at high client counts) is measured here.
	clients, window := []int{1, 4, 16}, 500*time.Millisecond
	if quick {
		window = 150 * time.Millisecond
	}
	results, checked, err := bench.ProtoBench(cfg, "tpch", clients, window)
	if err != nil {
		return err
	}
	bench.PrintProto(cfg.Out, "tpch", checked, results)
	report["proto"] = map[string]any{"identity_checked": checked, "results": results}
	return nil
}

func runEngine(cfg bench.Config, quick bool, report map[string]any) error {
	workerCounts := []int{1, 4, 16}
	if quick {
		workerCounts = []int{1, 4}
	}
	res, err := bench.EngineBench(cfg, "tpch", workerCounts)
	if err != nil {
		return err
	}
	bench.PrintEngine(cfg.Out, res)
	report["engine"] = res
	return nil
}

func runDist(cfg bench.Config, quick bool, report map[string]any) error {
	workerCounts := []int{1, 2, 4}
	var queryIDs []string // nil = the whole suite
	if quick {
		workerCounts = []int{1, 2}
		queryIDs = []string{"q1", "q5", "q9"}
	}
	res, err := bench.DistWireBench(cfg, "tpch", workerCounts, queryIDs)
	if err != nil {
		return err
	}
	bench.PrintDistWire(cfg.Out, res)
	report["dist"] = res
	return nil
}

func runMaintain(cfg bench.Config, quick bool, report map[string]any) error {
	readers, batchRows, window := 8, 200, time.Second
	if quick {
		readers, batchRows, window = 4, 100, 300*time.Millisecond
	}
	var all []bench.MaintainResult
	for _, workload := range []string{"tpch", "tpcds"} {
		results, err := bench.Maintain(cfg, workload, readers, batchRows, window)
		if err != nil {
			return err
		}
		for _, res := range results {
			bench.PrintMaintain(cfg.Out, res)
		}
		all = append(all, results...)
	}
	report["maintain"] = all
	return nil
}

func runMaintain2(cfg bench.Config, quick bool, report map[string]any) error {
	batchRows, rounds := 500, 8
	if quick {
		batchRows, rounds = 100, 3
	}
	results, err := bench.Maintain2(cfg, batchRows, rounds)
	if err != nil {
		return err
	}
	for _, res := range results {
		bench.PrintMaintain2(cfg.Out, res)
	}
	report["maintain2"] = results
	return nil
}

func runServe(cfg bench.Config, quick bool, report map[string]any) error {
	clients, window := []int{1, 4, 16}, 500*time.Millisecond
	if quick {
		clients, window = []int{1, 4}, 150*time.Millisecond
	}
	serveReport := map[string]any{}
	for _, workload := range []string{"tpch", "tpcds"} {
		res, err := bench.Concurrency(cfg, workload, clients, window)
		if err != nil {
			return err
		}
		bench.PrintConcurrency(cfg.Out, workload, res)
		serveReport[workload] = res
	}
	report["serve"] = serveReport
	return nil
}

func runLoad(cfg bench.Config, report map[string]any) error {
	loadReport := map[string]any{}
	for _, workload := range []string{"tpch", "tpcds"} {
		var results []bench.LoadResult
		for _, sc := range cfg.Scales {
			r, err := bench.MeasureLoad(workload, sc, cfg.Seed)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		bench.PrintLoad(cfg.Out, results)
		loadReport[workload] = results
	}
	report["load"] = loadReport
	return nil
}

func runWorkload(cfg bench.Config, workload string, report map[string]any) error {
	var all []bench.WorkloadResult
	for _, sc := range cfg.Scales {
		env, err := bench.NewEnv(workload, sc, cfg.Seed, cfg.Workers)
		if err != nil {
			return err
		}
		res, err := bench.RunWorkload(cfg, env)
		if err != nil {
			return err
		}
		bench.PrintPerQuery(cfg.Out, res)
		all = append(all, res)
	}
	last := all[len(all)-1]
	bench.PrintAggregate(cfg.Out, all)
	bench.PrintByClass(cfg.Out, last)
	bench.PrintWinCounts(cfg.Out, last)
	if workload == "tpch" {
		bench.PrintSelected(cfg.Out, last, "Table 3 — LA and correlated-subquery queries",
			[]string{"q3", "q4", "q5", "q10", "q2", "q17", "q20", "q21"})
		bench.PrintSelected(cfg.Out, last, "Table 4 — GA and scalar queries",
			[]string{"q1", "q6", "q7", "q9", "q16", "q19"})
	} else {
		bench.PrintSelected(cfg.Out, last, "Table 6 — selected TPC-DS queries by class",
			[]string{"q37", "q82", "q84", "q7", "q12", "q56", "q22", "q45", "q69", "q74", "q32", "q94"})
	}
	report[workload] = all
	return nil
}

func runMemory(cfg bench.Config, report map[string]any) error {
	fmt.Fprintf(cfg.Out, "\nTable 7 — peak heap during workload execution (MB)\n")
	fmt.Fprintf(cfg.Out, "%-8s %-8s %10s\n", "workload", "engine", "peak_mb")
	sc := cfg.Scales[len(cfg.Scales)-1]
	var rows []map[string]any
	for _, workload := range []string{"tpch", "tpcds"} {
		env, err := bench.NewEnv(workload, sc, cfg.Seed, cfg.Workers)
		if err != nil {
			return err
		}
		for _, engine := range bench.Engines {
			peak, err := bench.PeakRAM(func() error {
				for _, q := range bench.WorkloadQueries(workload) {
					if _, err := bench.RunOn(env, engine, q.SQL); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, "%-8s %-8s %10.1f\n", workload, engine, float64(peak)/(1<<20))
			rows = append(rows, map[string]any{
				"workload": workload, "engine": engine, "scale": sc, "peak_bytes": peak})
		}
	}
	report["memory"] = rows
	return nil
}

func runDistributed(cfg bench.Config, report map[string]any) error {
	sc := cfg.Scales[len(cfg.Scales)-1]
	distReport := map[string]any{}
	for _, workload := range []string{"tpch", "tpcds"} {
		res, err := bench.RunDistributed(cfg, workload, sc)
		if err != nil {
			return err
		}
		bench.PrintDistributed(cfg.Out, res)
		distReport[workload] = res
	}
	report["distributed"] = distReport
	return nil
}

func runAblation(cfg bench.Config, report map[string]any) error {
	sc := cfg.Scales[len(cfg.Scales)-1]
	th, err := bench.AblationTheta(cfg, sc, []float64{0, 1, 4, 16, 1e9})
	if err != nil {
		return err
	}
	bench.PrintTheta(cfg.Out, th)
	ca, err := bench.AblationCartesian(cfg, cfg.Scales[0])
	if err != nil {
		return err
	}
	bench.PrintCartesian(cfg.Out, ca)
	ap, err := bench.AblationAggPath(cfg, sc)
	if err != nil {
		return err
	}
	bench.PrintAggPath(cfg.Out, ap)
	wk, err := bench.AblationWorkers(cfg, sc, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	bench.PrintWorkers(cfg.Out, wk)
	pl, err := bench.AblationPolicy(cfg, sc)
	if err != nil {
		return err
	}
	bench.PrintPolicy(cfg.Out, pl)
	report["ablation"] = map[string]any{
		"theta": th, "cartesian": ca, "agg_path": ap, "workers": wk, "policy": pl}
	return nil
}
