// Command tagbench regenerates the paper's evaluation tables and figures
// (§8) on the reproduction's engines. Experiments:
//
//	load        Tables 1/2 loading times + Figure 14 sizes (+ Table 15)
//	tpch        Tables 3/4/8-10, Figure 13(a), Table 5-style win counts
//	tpcds       Tables 5/6/11-13, Figures 13(b)/15
//	memory      Table 7 peak RAM during workload execution
//	distributed Figure 16 + Tables 16/17 on the simulated cluster
//	ablation    design-choice ablations (θ sweep, Cartesian A/B, LA vs GA,
//	            thread scaling, materialization policy)
//	serve       concurrent-serving throughput (QPS at 1/4/16 clients:
//	            session pool vs serialized single session vs per-query
//	            graph rebuild)
//	maintain    serve-while-write: reader QPS under a continuous stream
//	            of insert batches, graph generations (clone + atomic
//	            swap) vs the stop-the-world quiescence baseline
//	all         everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: load|tpch|tpcds|memory|distributed|ablation|serve|maintain|all")
	scalesFlag := flag.String("scales", "0.5,1,2", "comma-separated scale factors (stand-ins for SF-30/50/75)")
	runs := flag.Int("runs", 3, "timed repetitions per query (after one warm-up)")
	workers := flag.Int("workers", 0, "BSP worker threads (0 = GOMAXPROCS)")
	machines := flag.Int("machines", 6, "simulated cluster size")
	seed := flag.Int64("seed", 2021, "generator seed")
	flag.Parse()

	var scales []float64
	for _, s := range strings.Split(*scalesFlag, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad scale %q: %v\n", s, err)
			os.Exit(2)
		}
		scales = append(scales, f)
	}
	cfg := bench.Config{Scales: scales, Seed: *seed, Workers: *workers,
		Runs: *runs, Machines: *machines, Out: os.Stdout}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("load", func() error { return runLoad(cfg) })
	run("tpch", func() error { return runWorkload(cfg, "tpch") })
	run("tpcds", func() error { return runWorkload(cfg, "tpcds") })
	run("memory", func() error { return runMemory(cfg) })
	run("distributed", func() error { return runDistributed(cfg) })
	run("ablation", func() error { return runAblation(cfg) })
	run("serve", func() error { return runServe(cfg) })
	run("maintain", func() error { return runMaintain(cfg) })
}

func runMaintain(cfg bench.Config) error {
	for _, workload := range []string{"tpch", "tpcds"} {
		results, err := bench.Maintain(cfg, workload, 8, 200, time.Second)
		if err != nil {
			return err
		}
		for _, res := range results {
			bench.PrintMaintain(cfg.Out, res)
		}
	}
	return nil
}

func runServe(cfg bench.Config) error {
	for _, workload := range []string{"tpch", "tpcds"} {
		res, err := bench.Concurrency(cfg, workload, []int{1, 4, 16}, 500*time.Millisecond)
		if err != nil {
			return err
		}
		bench.PrintConcurrency(cfg.Out, workload, res)
	}
	return nil
}

func runLoad(cfg bench.Config) error {
	for _, workload := range []string{"tpch", "tpcds"} {
		var results []bench.LoadResult
		for _, sc := range cfg.Scales {
			r, err := bench.MeasureLoad(workload, sc, cfg.Seed)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		bench.PrintLoad(cfg.Out, results)
	}
	return nil
}

func runWorkload(cfg bench.Config, workload string) error {
	var all []bench.WorkloadResult
	for _, sc := range cfg.Scales {
		env, err := bench.NewEnv(workload, sc, cfg.Seed, cfg.Workers)
		if err != nil {
			return err
		}
		res, err := bench.RunWorkload(cfg, env)
		if err != nil {
			return err
		}
		bench.PrintPerQuery(cfg.Out, res)
		all = append(all, res)
	}
	last := all[len(all)-1]
	bench.PrintAggregate(cfg.Out, all)
	bench.PrintByClass(cfg.Out, last)
	bench.PrintWinCounts(cfg.Out, last)
	if workload == "tpch" {
		bench.PrintSelected(cfg.Out, last, "Table 3 — LA and correlated-subquery queries",
			[]string{"q3", "q4", "q5", "q10", "q2", "q17", "q20", "q21"})
		bench.PrintSelected(cfg.Out, last, "Table 4 — GA and scalar queries",
			[]string{"q1", "q6", "q7", "q9", "q16", "q19"})
	} else {
		bench.PrintSelected(cfg.Out, last, "Table 6 — selected TPC-DS queries by class",
			[]string{"q37", "q82", "q84", "q7", "q12", "q56", "q22", "q45", "q69", "q74", "q32", "q94"})
	}
	return nil
}

func runMemory(cfg bench.Config) error {
	fmt.Fprintf(cfg.Out, "\nTable 7 — peak heap during workload execution (MB)\n")
	fmt.Fprintf(cfg.Out, "%-8s %-8s %10s\n", "workload", "engine", "peak_mb")
	sc := cfg.Scales[len(cfg.Scales)-1]
	for _, workload := range []string{"tpch", "tpcds"} {
		env, err := bench.NewEnv(workload, sc, cfg.Seed, cfg.Workers)
		if err != nil {
			return err
		}
		for _, engine := range bench.Engines {
			peak, err := bench.PeakRAM(func() error {
				for _, q := range bench.WorkloadQueries(workload) {
					if _, err := bench.RunOn(env, engine, q.SQL); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(cfg.Out, "%-8s %-8s %10.1f\n", workload, engine, float64(peak)/(1<<20))
		}
	}
	return nil
}

func runDistributed(cfg bench.Config) error {
	sc := cfg.Scales[len(cfg.Scales)-1]
	for _, workload := range []string{"tpch", "tpcds"} {
		res, err := bench.RunDistributed(cfg, workload, sc)
		if err != nil {
			return err
		}
		bench.PrintDistributed(cfg.Out, res)
	}
	return nil
}

func runAblation(cfg bench.Config) error {
	sc := cfg.Scales[len(cfg.Scales)-1]
	th, err := bench.AblationTheta(cfg, sc, []float64{0, 1, 4, 16, 1e9})
	if err != nil {
		return err
	}
	bench.PrintTheta(cfg.Out, th)
	ca, err := bench.AblationCartesian(cfg, cfg.Scales[0])
	if err != nil {
		return err
	}
	bench.PrintCartesian(cfg.Out, ca)
	ap, err := bench.AblationAggPath(cfg, sc)
	if err != nil {
		return err
	}
	bench.PrintAggPath(cfg.Out, ap)
	wk, err := bench.AblationWorkers(cfg, sc, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	bench.PrintWorkers(cfg.Out, wk)
	pl, err := bench.AblationPolicy(cfg, sc)
	if err != nil {
		return err
	}
	bench.PrintPolicy(cfg.Out, pl)
	return nil
}
