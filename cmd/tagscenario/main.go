// Command tagscenario drives a real tagserve process through the
// declared end-to-end scenario matrix: crash/replay drills, on-disk
// corruption, startup refusals, fuzz barrages, and skewed write load.
//
// Each scenario is a table row in internal/scenario.Matrix — adding
// coverage means adding a row, not harness code.
//
//	tagscenario -quick            # CI smoke tier
//	tagscenario -full             # everything, including soak rows
//	tagscenario -run 'kill9.*'    # name filter (regexp)
//	tagscenario -list             # print the matrix and exit
//
// Exit status is nonzero when any selected scenario fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
)

func main() {
	quick := flag.Bool("quick", false, "run only quick-tier scenarios")
	full := flag.Bool("full", false, "run all scenarios including soak rows")
	run := flag.String("run", "", "run only scenarios whose name matches this regexp")
	list := flag.Bool("list", false, "list the scenario matrix and exit")
	verbose := flag.Bool("v", false, "log every step as it runs")
	keep := flag.Bool("keep", false, "keep scenario scratch dirs (WALs, logs) for postmortems")
	bin := flag.String("serve-bin", "", "tagserve binary to drive (default: build repro/cmd/tagserve)")
	flag.Parse()

	tier := scenario.Quick
	if *full {
		tier = scenario.Full
	}
	if !*quick && !*full && *run == "" && !*list {
		*quick = true // bare invocation = the smoke tier
	}

	rows, err := scenario.Select(scenario.Matrix(), tier, *run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagscenario:", err)
		os.Exit(2)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "tagscenario: no scenarios selected")
		os.Exit(2)
	}
	if *list {
		for _, s := range rows {
			fmt.Printf("%-34s %-5s %d steps  %s\n", s.Name, s.Tier, len(s.Steps), s.Doc)
		}
		return
	}

	r := &scenario.Runner{Binary: *bin, Keep: *keep, Verbose: *verbose, Out: os.Stdout}
	results, err := r.RunAll(rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tagscenario:", err)
		os.Exit(2)
	}
	for _, res := range results {
		if res.Err != nil {
			os.Exit(1)
		}
	}
}
