// Combiners: the combiner-aware message plane. Runs the same
// aggregation traversal twice — once with Send-time folding and once
// with every message materialized — at the raw BSP level and through a
// SQL aggregation, showing identical answers with a fraction of the
// inbox traffic.
//
//	go run ./examples/combiners
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
)

// degreeProgram counts, for a handful of hub vertices, how many
// followers point at them: every follower sends int64(1) to its hubs,
// each hub totals its inbox. The receiver reads folded and plain
// payloads identically, so the program runs on either plane. out is
// indexed by vertex — Compute runs concurrently across workers and may
// only touch its own vertex's slot.
type degreeProgram struct {
	lbl bsp.LabelID
	out []int64
}

// Combiner declares the fold: int64 payloads add up en route, so a
// worker emits one combined message per hub per superstep instead of
// one per follower.
func (p *degreeProgram) Combiner() bsp.Combiner { return bsp.SumCombiner{} }

func (p *degreeProgram) Compute(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
	ctx.AddOps(1 + bsp.InboxCount(inbox))
	if ctx.Step() == 0 {
		ctx.SendAlong(v, p.lbl, int64(1))
		return
	}
	var total int64
	for _, m := range inbox {
		total += m.Payload.(int64)
	}
	p.out[v] = total
}

func main() {
	// --- Raw BSP: a follower graph with a few hubs. ---
	rng := rand.New(rand.NewSource(11))
	g := bsp.NewGraph()
	follows := g.Symbols.Intern("follows")
	const hubs, followers = 4, 5000
	for i := 0; i < hubs+followers; i++ {
		g.AddVertex(follows, nil)
	}
	var initial []bsp.VertexID
	for f := hubs; f < hubs+followers; f++ {
		g.AddEdge(bsp.VertexID(f), bsp.VertexID(rng.Intn(hubs)), follows)
		initial = append(initial, bsp.VertexID(f))
	}
	g.Freeze()

	run := func(noCombine bool) ([]int64, bsp.Stats) {
		prog := &degreeProgram{lbl: follows, out: make([]int64, g.NumVertices())}
		eng := bsp.NewEngine(g, bsp.Options{Workers: 4, NoCombine: noCombine})
		stats := eng.Run(prog, initial)
		return prog.out, stats
	}
	plainOut, plain := run(true)
	combOut, comb := run(false)

	fmt.Println("hub in-degrees (identical on both planes):")
	for h := 0; h < hubs; h++ {
		p, c := plainOut[h], combOut[h]
		fmt.Printf("  hub %d: %d followers (plain %d)\n", h, c, p)
		if p != c {
			log.Fatalf("hub %d: combined %d != plain %d", h, c, p)
		}
	}
	if plain.Paper() != comb.Paper() {
		log.Fatalf("paper-facing stats diverged:\n  plain    %v\n  combined %v", plain, comb)
	}
	fmt.Printf("\nlogical messages     %8d (both planes — combining never changes M)\n", comb.Messages)
	fmt.Printf("folded en route      %8d (%.1f%%)\n", comb.MessagesCombined,
		100*float64(comb.MessagesCombined)/float64(comb.Messages))
	fmt.Printf("inbox slots saved    %8d bytes\n", comb.InboxBytesSaved)

	// --- The same effect through SQL: a scalar aggregation ships every
	// row's partial to the single aggregator vertex, where the GA
	// bottleneck of §8.3 used to queue one message per survivor. ---
	people := relation.New("people", relation.MustSchema(
		relation.Col("id", relation.KindInt), relation.Col("hub", relation.KindInt)))
	for f := 0; f < followers; f++ {
		people.MustAppend(relation.Int(int64(f)), relation.Int(int64(rng.Intn(hubs))))
	}
	cat := relation.NewCatalog()
	cat.MustAdd(people)
	tg, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		log.Fatal(err)
	}

	const q = `SELECT hub, COUNT(*), MIN(id), MAX(id) FROM people GROUP BY hub`
	plainSess := core.NewSession(tg, bsp.Options{Workers: 4, NoCombine: true})
	combSess := core.NewSession(tg, bsp.Options{Workers: 4})
	a, err := plainSess.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	b, err := combSess.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	if fmt.Sprint(a.Tuples) != fmt.Sprint(b.Tuples) {
		log.Fatal("combined SQL answer differs from uncombined")
	}
	fmt.Printf("\nSQL aggregation over %d rows (byte-identical answers):\n%v", followers, b)
	cs := combSess.Stats()
	fmt.Printf("combined plane folded %d of %d aggregator-bound messages (%.1f%%), saving %d inbox bytes\n",
		cs.MessagesCombined, cs.Messages,
		100*float64(cs.MessagesCombined)/float64(cs.Messages), cs.InboxBytesSaved)
}
