// Triangles: cyclic queries and the worst-case-optimal machinery (§6).
// Encodes a synthetic follower graph as relations, counts triangles with
// a cyclic SQL query, shows the heavy/light θ threshold at work, and
// verifies every θ variant against a brute-force nested-index count —
// the scale-N scenario rows drive this binary and assert the
// "verified OK" line.
//
//	go run ./examples/triangles -nodes 400 -edges 3000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
)

func main() {
	nodes := flag.Int("nodes", 120, "follower-graph node count")
	edges := flag.Int("edges", 900, "edges per relation")
	seed := flag.Int64("seed", 7, "graph seed")
	flag.Parse()

	// Build three edge relations R(A,B), S(B,C), T(C,A) over a random
	// graph with a few celebrity ("heavy") nodes, the skew §6.1.2 targets.
	rng := rand.New(rand.NewSource(*seed))

	mk := func(name, c1, c2 string) *relation.Relation {
		return relation.New(name, relation.MustSchema(
			relation.Col(c1, relation.KindInt), relation.Col(c2, relation.KindInt)))
	}
	r, s, t := mk("r", "a", "b"), mk("s", "b", "c"), mk("t", "c", "a")
	pick := func() int64 {
		if rng.Intn(4) == 0 { // heavy hitters
			return int64(rng.Intn(4))
		}
		return int64(rng.Intn(*nodes))
	}
	for i := 0; i < *edges; i++ {
		a, b, c := pick(), pick(), pick()
		r.MustAppend(relation.Int(a), relation.Int(b))
		s.MustAppend(relation.Int(b), relation.Int(c))
		t.MustAppend(relation.Int(c), relation.Int(a))
	}

	// Ground truth, independent of the engine: index S by b and count T
	// edges by (c,a), then walk R once. Join multiplicities (duplicate
	// edges) count exactly as SQL COUNT(*) does.
	sByB := map[int64][]int64{}
	for _, tup := range s.Tuples {
		sByB[tup[0].AsInt()] = append(sByB[tup[0].AsInt()], tup[1].AsInt())
	}
	tCount := map[[2]int64]int64{}
	for _, tup := range t.Tuples {
		tCount[[2]int64{tup[0].AsInt(), tup[1].AsInt()}]++
	}
	var want int64
	for _, tup := range r.Tuples {
		a, b := tup[0].AsInt(), tup[1].AsInt()
		for _, c := range sByB[b] {
			want += tCount[[2]int64{c, a}]
		}
	}
	cat := relation.NewCatalog()
	cat.MustAdd(r)
	cat.MustAdd(s)
	cat.MustAdd(t)

	g, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("follower graph encoded:", g)

	// The triangle query (§6.1). The planner detects the cycle, breaks
	// it for the join tree, and runs the heavy/light pre-pass.
	const triangle = `
		SELECT COUNT(*) FROM r, s, t
		WHERE r.b = s.b AND s.c = t.c AND t.a = r.a`

	for _, theta := range []float64{0, 1, 1e9} {
		ex := core.NewExecutor(g, bsp.Options{})
		ex.Theta = theta
		start := time.Now()
		out, err := ex.Query(triangle)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("θ=%g", theta)
		if theta == 0 {
			label = "θ=√IN (paper default)"
		}
		got := out.Tuples[0][0].AsInt()
		fmt.Printf("%-24s triangles=%v  cyclic=%v  time=%v  %v\n",
			label, got, !ex.Info.Acyclic,
			time.Since(start).Round(time.Microsecond), ex.Stats())
		if got != want {
			log.Fatalf("%s counted %d triangles, brute force says %d", label, got, want)
		}
	}
	fmt.Printf("triangle count %d verified OK at every θ\n", want)

	// Cyclic queries compose with everything else: filter the triangles
	// through one more (acyclic) join.
	names := relation.New("names", relation.MustSchema(
		relation.Col("id", relation.KindInt), relation.Col("label", relation.KindString)))
	for i := 0; i < 4; i++ {
		names.MustAppend(relation.Int(int64(i)), relation.Str(fmt.Sprintf("celebrity-%d", i)))
	}
	cat2 := relation.NewCatalog()
	cat2.MustAdd(r)
	cat2.MustAdd(s)
	cat2.MustAdd(t)
	cat2.MustAdd(names)
	g2, err := tag.Build(cat2, tag.MaterializeAll)
	if err != nil {
		log.Fatal(err)
	}
	ex := core.NewExecutor(g2, bsp.Options{})
	out, err := ex.Query(`
		SELECT label, COUNT(*) AS triangles FROM r, s, t, names
		WHERE r.b = s.b AND s.c = t.c AND t.a = r.a AND names.id = r.a
		GROUP BY label`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntriangles through the celebrity vertices:")
	fmt.Print(out)
}
