// Connected components: the BSP engine as a general graph engine (§2).
// Encodes a random undirected graph straight into bsp.Graph (no SQL, no
// TAG encoding) and runs the classic Pregel label-propagation program:
// every vertex starts as its own component, floods the minimum label it
// has seen along its edges, and the run halts when no label improves.
// A min-combiner folds the flood at Send time, so each vertex receives
// at most one message per superstep regardless of degree.
//
// The result is verified against a union-find over the same edge list,
// and the program is run at several worker counts to show the sharded
// message plane computes the identical partition.
//
//	go run ./examples/components -nodes 4000 -edges 6000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/bsp"
)

// minCombiner folds a label flood to its minimum: one message per
// (vertex, superstep) survives no matter how many neighbors sent.
type minCombiner struct{}

func (minCombiner) Slot(any) int { return 0 }

func (minCombiner) Fold(acc any, _ bsp.VertexID, payload any) any {
	if acc == nil || payload.(int64) < acc.(int64) {
		return payload
	}
	return acc
}

func (minCombiner) Merge(acc, other any) any {
	if other.(int64) < acc.(int64) {
		return other
	}
	return acc
}

// ccProgram is min-label propagation: vertex data holds the smallest
// component label seen so far.
type ccProgram struct{ edge bsp.LabelID }

func (p ccProgram) Compute(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
	g := ctx.Graph()
	cur := g.Data(v).(int64)
	if ctx.Step() == 0 {
		ctx.SendAlong(v, p.edge, cur)
		return
	}
	best := cur
	for i := range inbox {
		if l := inbox[i].Payload.(int64); l < best {
			best = l
		}
	}
	if best < cur {
		g.SetData(v, best)
		ctx.SendAlong(v, p.edge, best)
	}
}

func main() {
	nodes := flag.Int("nodes", 4000, "vertex count")
	edges := flag.Int("edges", 6000, "undirected edge count")
	seed := flag.Int64("seed", 7, "graph seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	type pair struct{ a, b int }
	edgeList := make([]pair, *edges)
	for i := range edgeList {
		edgeList[i] = pair{rng.Intn(*nodes), rng.Intn(*nodes)}
	}

	// Ground truth: union-find over the same edges.
	parent := make([]int, *nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edgeList {
		if ra, rb := find(e.a), find(e.b); ra != rb {
			parent[ra] = rb
		}
	}
	want := map[int]bool{}
	for i := range parent {
		want[find(i)] = true
	}

	build := func() (*bsp.Graph, bsp.LabelID, []bsp.VertexID) {
		labels := bsp.NewSymbolTable()
		node, edge := labels.Intern("node"), labels.Intern("edge")
		g := bsp.NewGraph()
		ids := make([]bsp.VertexID, *nodes)
		for i := range ids {
			ids[i] = g.AddVertex(node, int64(i))
		}
		for _, e := range edgeList {
			g.AddUndirectedEdge(ids[e.a], ids[e.b], edge)
		}
		g.Freeze()
		return g, edge, ids
	}

	fmt.Printf("random graph: %d nodes, %d undirected edges, %d components by union-find\n",
		*nodes, len(edgeList), len(want))

	var counts []int
	for _, workers := range []int{1, 4} {
		g, edge, ids := build()
		eng := bsp.NewEngine(g, bsp.Options{Workers: workers})
		prog := bsp.WithCombiner(ccProgram{edge: edge}, minCombiner{})
		start := time.Now()
		stats := eng.Run(prog, ids)
		got := map[int64]bool{}
		for _, v := range ids {
			got[g.Data(v).(int64)] = true
		}
		counts = append(counts, len(got))
		fmt.Printf("workers=%d  components=%d  time=%v  %v\n",
			workers, len(got), time.Since(start).Round(time.Microsecond), stats)
	}

	for _, n := range counts {
		if n != len(want) {
			log.Fatalf("component count %d disagrees with union-find %d", n, len(want))
		}
	}
	fmt.Printf("components=%d verified OK\n", len(want))
}
