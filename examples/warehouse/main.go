// Warehouse: the paper's sweet spot — snowflake-schema analytics with
// local vs global aggregation (§7, §8.4). Runs three TPC-DS-like queries
// on the TAG engine and the baseline row engine and compares both results
// and runtimes.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/tpcds"
)

func main() {
	cat := tpcds.Generate(1, 42)
	fmt.Println("snowflake warehouse loaded:")
	fmt.Print(cat)

	g, err := tag.Build(cat, nil)
	if err != nil {
		log.Fatal(err)
	}
	ex := core.NewExecutor(g, bsp.Options{})
	ref := baseline.New(cat)

	queries := []struct{ name, sql string }{
		{"local aggregation (revenue per category — one vertex per group)", `
			SELECT i_category, SUM(ss_ext_sales_price) AS revenue
			FROM store_sales, item, date_dim
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
			  AND d_year = 2000 AND i_category IS NOT NULL
			GROUP BY i_category`},
		{"global aggregation (category x state — single aggregator vertex)", `
			SELECT i_category, ca_state, COUNT(*) AS sales
			FROM catalog_sales, item, customer, customer_address
			WHERE cs_item_sk = i_item_sk AND cs_bill_customer_sk = c_customer_sk
			  AND c_current_addr_sk = ca_address_sk AND i_category = 'Music'
			GROUP BY i_category, ca_state`},
		{"cross-channel union (store + web revenue per item)", `
			SELECT i_item_id, SUM(ss_ext_sales_price) FROM store_sales, item
			WHERE ss_item_sk = i_item_sk GROUP BY i_item_id
			UNION ALL
			SELECT i_item_id, SUM(ws_ext_sales_price) FROM web_sales, item
			WHERE ws_item_sk = i_item_sk GROUP BY i_item_id`},
	}

	for _, q := range queries {
		fmt.Printf("\n== %s\n", q.name)
		start := time.Now()
		tagOut, err := ex.Query(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		tagTime := time.Since(start)

		start = time.Now()
		refOut, err := ref.Query(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		refTime := time.Since(start)

		fmt.Printf("tag-join: %d rows in %v (class %s)\n", tagOut.Len(), tagTime.Round(time.Microsecond), ex.Info.Agg)
		fmt.Printf("baseline: %d rows in %v\n", refOut.Len(), refTime.Round(time.Microsecond))
		if !relation.EqualMultisetFuzzy(tagOut, refOut) {
			log.Fatal("engines disagree!")
		}
		fmt.Println("results agree ✓")
	}
}
