// Quickstart: build a TAG graph from a small relational database and run
// SQL on it with the vertex-centric TAG-join executor.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
)

func main() {
	// 1. Define a relational database (the paper's Figure 1 flavor).
	cat := relation.NewCatalog()

	nation := relation.New("nation", relation.MustSchema(
		relation.Col("n_nationkey", relation.KindInt),
		relation.Col("n_name", relation.KindString)))
	nation.MustAppend(relation.Int(1), relation.Str("USA"))
	nation.MustAppend(relation.Int(2), relation.Str("FRANCE"))
	cat.MustAdd(nation)
	cat.SetPrimaryKey("nation", "n_nationkey")

	customer := relation.New("customer", relation.MustSchema(
		relation.Col("c_custkey", relation.KindInt),
		relation.Col("c_name", relation.KindString),
		relation.Col("c_nationkey", relation.KindInt)))
	customer.MustAppend(relation.Int(10), relation.Str("alice"), relation.Int(1))
	customer.MustAppend(relation.Int(20), relation.Str("bob"), relation.Int(1))
	customer.MustAppend(relation.Int(30), relation.Str("chloe"), relation.Int(2))
	cat.MustAdd(customer)
	cat.SetPrimaryKey("customer", "c_custkey")
	cat.AddForeignKey(relation.ForeignKey{
		Table: "customer", Column: "c_nationkey",
		RefTable: "nation", RefColumn: "n_nationkey"})

	orders := relation.New("orders", relation.MustSchema(
		relation.Col("o_orderkey", relation.KindInt),
		relation.Col("o_custkey", relation.KindInt),
		relation.Col("o_total", relation.KindInt)))
	orders.MustAppend(relation.Int(100), relation.Int(10), relation.Int(70))
	orders.MustAppend(relation.Int(101), relation.Int(10), relation.Int(30))
	orders.MustAppend(relation.Int(102), relation.Int(30), relation.Int(50))
	cat.MustAdd(orders)
	cat.SetPrimaryKey("orders", "o_orderkey")

	// 2. Encode it as a Tuple-Attribute Graph (§3): one vertex per tuple,
	// one shared vertex per attribute value, edges labeled table.column.
	g, err := tag.Build(cat, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("encoded:", g)

	// 3. Run SQL with the TAG-join vertex program (§4-§7).
	ex := core.NewExecutor(g, bsp.Options{})
	out, err := ex.Query(`
		SELECT n_name, SUM(o_total) AS revenue
		FROM nation, customer, orders
		WHERE c_nationkey = n_nationkey AND o_custkey = c_custkey
		GROUP BY n_name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	// 4. Inspect how it executed: aggregation class, plan shape and the
	// BSP cost measures (§2) — supersteps, messages, computation.
	fmt.Printf("aggregation class: %s (computed in parallel at the group-key attribute vertices)\n", ex.Info.Agg)
	fmt.Println("cost:", ex.Stats())

	// 5. The TAG graph is query-independent and cheap to maintain (§3):
	// insert a tuple and query again without rebuilding anything.
	if _, err := g.InsertTuple("orders", relation.Tuple{
		relation.Int(103), relation.Int(20), relation.Int(99)}); err != nil {
		log.Fatal(err)
	}
	out, err = ex.Query("SELECT c_name FROM customer, orders WHERE o_custkey = c_custkey AND o_total > 90")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
