// Distributed: the §8.6 cluster experiment in miniature. Partitions a
// TPC-H-like TAG graph over six simulated machines, runs a few queries on
// the vertex-centric engine and the Spark-SQL-like shuffle engine, and
// compares network traffic — the reshuffling-free property that drives
// Figure 16.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/tpch"
)

func main() {
	const machines = 6
	cat := tpch.Generate(1, 2021)
	c, err := cluster.New(cat, machines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TPC-H-like database partitioned over %d machines\n", machines)
	fmt.Printf("graph: %v\n\n", c.TAG)

	fmt.Printf("%-6s %12s %12s %14s %14s\n",
		"query", "tag_ms", "shuffle_ms", "tag_net_kb", "shuffle_net_kb")
	var tagNet, shfNet int64
	for _, id := range []string{"q3", "q4", "q5", "q10", "q12", "q14"} {
		q := tpch.ByID(id)
		tr, err := c.RunTAG(q.ID, q.SQL)
		if err != nil {
			log.Fatal(err)
		}
		sr, err := c.RunShuffle(q.ID, q.SQL)
		if err != nil {
			log.Fatal(err)
		}
		if tr.Rows != sr.Rows {
			log.Fatalf("%s: engines disagree (%d vs %d rows)", id, tr.Rows, sr.Rows)
		}
		tagNet += tr.NetworkBytes
		shfNet += sr.NetworkBytes
		fmt.Printf("%-6s %12.3f %12.3f %14d %14d\n", id,
			float64(tr.Elapsed.Microseconds())/1000,
			float64(sr.Elapsed.Microseconds())/1000,
			tr.NetworkBytes/1024, sr.NetworkBytes/1024)
	}
	fmt.Printf("\ntotal network traffic: tag=%dKB shuffle=%dKB (shuffle/tag = %.2fx)\n",
		tagNet/1024, shfNet/1024, float64(shfNet)/float64(tagNet))
	fmt.Println("\nThe TAG graph is partitioned once and never reshuffled; the shuffle")
	fmt.Println("engine re-exchanges both inputs of every join (or broadcasts the")
	fmt.Println("smaller one), which is where Figure 16's traffic gap comes from.")
}
