// Maintenance: serve queries continuously while writes land.
//
// PR 1's serving layer required full quiescence for writes. This
// example shows the generation scheme that removed that restriction: a
// serve.Maintainer applies each insert/delete batch to a copy-on-write
// clone of the served TAG graph and publishes it as the next epoch with
// an atomic pointer swap. Readers pin the generation they start on, so
// they are never blocked and never see a half-applied batch.
//
//	go run ./examples/maintenance
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/tpch"
)

func main() {
	cat := tpch.Generate(0.1, 2021)
	g, err := tag.Build(cat, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv := serve.New(g, serve.Options{Sessions: 4})
	maint := srv.Maintainer()

	// Writer: ten batches of fresh nation rows, back to back. Each batch
	// becomes one published generation (epoch).
	var writerDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer writerDone.Store(true)
		for b := 0; b < 10; b++ {
			rows := []relation.Tuple{{
				relation.Int(int64(100 + b)),
				relation.Str(fmt.Sprintf("NATION_%d", b)),
				relation.Int(int64(b % 5)),
				relation.Str("added while serving"),
			}}
			res, err := maint.InsertBatch("nation", rows)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("writer: published epoch %d (+%d row) in %v\n",
				res.Epoch, len(rows), res.Elapsed.Round(time.Microsecond))
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Readers: query throughout the write stream. Counts only ever move
	// forward in whole batches — never a torn in-between value.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for !writerDone.Load() {
				res, err := srv.Query("SELECT COUNT(*) FROM nation")
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("reader %d: epoch %d sees %v nations\n",
					c, res.Epoch, res.Rows.Tuples[0][0])
				time.Sleep(3 * time.Millisecond)
			}
		}(c)
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("\nfinal: epoch=%d swaps=%d inserted=%d live_generations=%d\n",
		st.Epoch, st.Swaps, st.RowsInserted, st.GenerationsLive)
}
