// Serving: share one frozen TAG graph across concurrent queries.
//
// The TAG encoding is query-independent (§3): building it once and
// serving many readers is the paper's intended deployment shape. This
// example encodes a TPC-H-like database once, then answers a mixed
// query stream three ways — through the serve.Server session pool,
// through one serialized session, and with the naive rebuild-per-query
// pattern — and prints the throughput of each.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/tpch"
)

func main() {
	cat := tpch.Generate(0.1, 2021)
	start := time.Now()
	g, err := tag.Build(cat, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %s in %v\n", g.G.String(), time.Since(start).Round(time.Millisecond))

	queries := []string{
		"SELECT COUNT(*) FROM orders WHERE o_orderpriority = '1-URGENT'",
		"SELECT n_name, COUNT(*) FROM nation, customer WHERE c_nationkey = n_nationkey GROUP BY n_name",
		"SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE l_discount > 0.05",
	}
	const clients = 4
	const perClient = 50

	// Mode 1: the serving layer — session pool + prepared statements.
	srv := serve.New(g, serve.Options{Sessions: clients})
	elapsed := drive(clients, perClient, queries, func(q string) error {
		_, err := srv.Query(q)
		return err
	})
	fmt.Printf("%-22s %8.0f qps   (%s)\n", "session pool:",
		float64(clients*perClient)/elapsed.Seconds(), srv.Stats())

	// Mode 2: one session, all clients serialized behind a mutex.
	var mu sync.Mutex
	sess := core.NewSession(g, bsp.Options{Workers: 1})
	elapsed = drive(clients, perClient, queries, func(q string) error {
		mu.Lock()
		defer mu.Unlock()
		_, err := sess.Query(q)
		return err
	})
	fmt.Printf("%-22s %8.0f qps\n", "serialized session:",
		float64(clients*perClient)/elapsed.Seconds())

	// Mode 3: what a naive deployment does — re-encode the graph per query.
	elapsed = drive(clients, perClient/10, queries, func(q string) error {
		mu.Lock()
		defer mu.Unlock()
		fresh, err := tag.Build(cat, nil)
		if err != nil {
			return err
		}
		_, err = core.NewExecutor(fresh, bsp.Options{Workers: 1}).Query(q)
		return err
	})
	fmt.Printf("%-22s %8.0f qps\n", "rebuild per query:",
		float64(clients*perClient/10)/elapsed.Seconds())
}

// drive fans perClient queries out over n concurrent clients.
func drive(n, perClient int, queries []string, run func(string) error) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if err := run(queries[(c+i)%len(queries)]); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	return time.Since(start)
}
