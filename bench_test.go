// Benchmarks regenerating every table and figure of the paper's
// evaluation (§8), one testing.B target per artifact, plus the ablation
// benches DESIGN.md calls out. Custom metrics expose the paper's cost
// measures (messages, network bytes) alongside wall time.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkFig16Distributed
// Larger data:      use cmd/tagbench, which prints the full tables.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/bench"
)

const (
	benchScale = 0.5 // laptop-sized stand-in for the paper's SF series
	benchSeed  = 2021
)

func workloadBench(b *testing.B, workload string) {
	env, err := bench.NewEnv(workload, benchScale, benchSeed, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.Config{Runs: 1}
	b.ResetTimer()
	var last bench.WorkloadResult
	for i := 0; i < b.N; i++ {
		last, err = bench.RunWorkload(cfg, env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, q := range last.Queries {
		if !q.Agree {
			b.Fatalf("%s: engines disagree", q.ID)
		}
	}
	b.ReportMetric(bench.Ms(last.Aggregate["tag"]), "tag_ms/op")
	b.ReportMetric(bench.Ms(last.Aggregate["refdb"]), "refdb_ms/op")
}

// BenchmarkFig13aTPCHAggregate regenerates Figure 13(a): aggregate TPC-H
// runtimes over all 22 queries on all engines (Table 14's summary row).
func BenchmarkFig13aTPCHAggregate(b *testing.B) { workloadBench(b, "tpch") }

// BenchmarkFig13bTPCDSAggregate regenerates Figure 13(b) for TPC-DS.
func BenchmarkFig13bTPCDSAggregate(b *testing.B) { workloadBench(b, "tpcds") }

// BenchmarkTables8to10TPCHPerQuery regenerates the per-query TPC-H tables
// (Tables 8-10; one scale point per run — sweep scales via cmd/tagbench).
func BenchmarkTables8to10TPCHPerQuery(b *testing.B) { workloadBench(b, "tpch") }

// BenchmarkTables11to13TPCDSPerQuery regenerates the per-query TPC-DS
// tables (Tables 11-13).
func BenchmarkTables11to13TPCDSPerQuery(b *testing.B) { workloadBench(b, "tpcds") }

// BenchmarkTable1TPCHLoad regenerates Table 1 (TPC-H loading time) and
// the TPC-H bars of Figure 14 (loaded sizes).
func BenchmarkTable1TPCHLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.MeasureLoad("tpch", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TAGBytes)/1024, "tag_kb")
		b.ReportMetric(float64(res.RowBytes)/1024, "row_kb")
	}
}

// BenchmarkTable2TPCDSLoad regenerates Table 2 (TPC-DS loading time).
func BenchmarkTable2TPCDSLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.MeasureLoad("tpcds", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TAGBytes)/1024, "tag_kb")
	}
}

// BenchmarkFig14LoadedSize regenerates Figure 14's loaded-size comparison
// (row store + indexes vs TAG graph) and Table 15's column-store size.
func BenchmarkFig14LoadedSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.MeasureLoad("tpch", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.RowBytes)/1024, "row_idx_kb")
		b.ReportMetric(float64(res.ColStoreBytes)/1024, "col_kb")
		b.ReportMetric(float64(res.TAGBytes)/1024, "tag_kb")
	}
}

// BenchmarkTable15ColumnStoreSize isolates Table 15 (in-memory column
// store footprint vs raw data size).
func BenchmarkTable15ColumnStoreSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.MeasureLoad("tpcds", benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.RawBytes)/1024, "raw_kb")
		b.ReportMetric(float64(res.ColStoreBytes)/1024, "col_kb")
	}
}

// selectedBench times a subset of a workload on the TAG engine only,
// reporting the aggregate (Tables 3/4/6 derive speedups from the full
// per-query tables; cmd/tagbench prints them directly).
func selectedBench(b *testing.B, workload string, ids []string) {
	env, err := bench.NewEnv(workload, benchScale, benchSeed, 0)
	if err != nil {
		b.Fatal(err)
	}
	sqlOf := map[string]string{}
	for _, q := range bench.WorkloadQueries(workload) {
		sqlOf[q.ID] = q.SQL
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			if _, err := bench.RunOn(env, "tag", sqlOf[id]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3TPCHLocalAgg regenerates Table 3's query set (LA and
// correlated-subquery TPC-H queries).
func BenchmarkTable3TPCHLocalAgg(b *testing.B) {
	selectedBench(b, "tpch", []string{"q3", "q4", "q5", "q10", "q2", "q17", "q20", "q21"})
}

// BenchmarkTable4TPCHGlobalAgg regenerates Table 4's query set (GA and
// scalar TPC-H queries).
func BenchmarkTable4TPCHGlobalAgg(b *testing.B) {
	selectedBench(b, "tpch", []string{"q1", "q6", "q7", "q9", "q16", "q19"})
}

// BenchmarkTable5TPCDSWins regenerates the Table 5 win/competitive/worse
// classification over the TPC-DS workload.
func BenchmarkTable5TPCDSWins(b *testing.B) {
	env, err := bench.NewEnv("tpcds", benchScale, benchSeed, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.Config{Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunWorkload(cfg, env)
		if err != nil {
			b.Fatal(err)
		}
		o, c, w := res.WinCounts("refdb")
		b.ReportMetric(float64(o), "outperforms")
		b.ReportMetric(float64(c), "competitive")
		b.ReportMetric(float64(w), "worse")
	}
}

// BenchmarkTable6TPCDSSelected regenerates Table 6's selected TPC-DS
// queries across the aggregation classes.
func BenchmarkTable6TPCDSSelected(b *testing.B) {
	selectedBench(b, "tpcds", []string{"q37", "q82", "q84", "q7", "q12", "q56", "q22", "q45", "q69", "q74", "q32", "q94"})
}

// BenchmarkTable7PeakRAM regenerates Table 7: peak heap while the TPC-H
// workload runs on the TAG engine.
func BenchmarkTable7PeakRAM(b *testing.B) {
	env, err := bench.NewEnv("tpch", benchScale, benchSeed, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peak, err := bench.PeakRAM(func() error {
			for _, q := range bench.WorkloadQueries("tpch") {
				if _, err := bench.RunOn(env, "tag", q.SQL); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak_mb")
	}
}

// BenchmarkFig15AggClasses regenerates Figure 15: TPC-DS aggregate
// runtimes grouped by aggregation class.
func BenchmarkFig15AggClasses(b *testing.B) {
	env, err := bench.NewEnv("tpcds", benchScale, benchSeed, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bench.Config{Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunWorkload(cfg, env)
		if err != nil {
			b.Fatal(err)
		}
		byClass := res.ByClass()
		b.ReportMetric(bench.Ms(byClass["local"]["tag"]), "la_tag_ms")
		b.ReportMetric(bench.Ms(byClass["global"]["tag"]), "ga_tag_ms")
	}
}

// BenchmarkFig16Distributed regenerates Figure 16: aggregate runtime and
// network traffic on the 6-machine simulated cluster (TPC-H side).
func BenchmarkFig16Distributed(b *testing.B) {
	cfg := bench.Config{Runs: 1, Machines: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.RunDistributed(cfg, "tpch", benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TagTraffic)/1024, "tag_net_kb")
		b.ReportMetric(float64(res.ShuffleTraffic)/1024, "shuffle_net_kb")
	}
}

// BenchmarkTable16DistributedTPCH regenerates Table 16 (per-query
// distributed TPC-H; cmd/tagbench prints the rows).
func BenchmarkTable16DistributedTPCH(b *testing.B) {
	cfg := bench.Config{Runs: 1, Machines: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunDistributed(cfg, "tpch", benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable17DistributedTPCDS regenerates Table 17 for TPC-DS.
func BenchmarkTable17DistributedTPCDS(b *testing.B) {
	cfg := bench.Config{Runs: 1, Machines: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunDistributed(cfg, "tpcds", benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §2) ---

// BenchmarkAblationThetaSweep sweeps the §6.1.2 heavy/light threshold.
func BenchmarkAblationThetaSweep(b *testing.B) {
	cfg := bench.Config{Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationTheta(cfg, benchScale, []float64{0, 1, 1e9})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res[0].Messages), "sqrtIN_msgs")
		b.ReportMetric(float64(res[1].Messages), "allheavy_msgs")
		b.ReportMetric(float64(res[2].Messages), "alllight_msgs")
	}
}

// BenchmarkAblationCartesian compares §6.3's Algorithms A and B.
func BenchmarkAblationCartesian(b *testing.B) {
	cfg := bench.Config{Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationCartesian(cfg, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res[0].Messages), "algA_msgs")
		b.ReportMetric(float64(res[1].Messages), "algB_msgs")
	}
}

// BenchmarkAblationAggPath compares the LA and (forced) GA paths of §7.
func BenchmarkAblationAggPath(b *testing.B) {
	cfg := bench.Config{Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationAggPath(cfg, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.Ms(res[0].Elapsed), "la_ms")
		b.ReportMetric(bench.Ms(res[1].Elapsed), "ga_ms")
	}
}

// BenchmarkAblationWorkers measures intra-server thread scaling.
func BenchmarkAblationWorkers(b *testing.B) {
	cfg := bench.Config{Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationWorkers(cfg, benchScale, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.Ms(res[0].Elapsed), "w1_ms")
		b.ReportMetric(bench.Ms(res[1].Elapsed), "w4_ms")
	}
}

// BenchmarkAblationPolicy compares TAG materialization policies (§3).
func BenchmarkAblationPolicy(b *testing.B) {
	cfg := bench.Config{Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.AblationPolicy(cfg, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res[0].Bytes)/1024, "default_kb")
		b.ReportMetric(float64(res[1].Bytes)/1024, "all_kb")
	}
}

// BenchmarkConcurrentServe measures aggregate serving throughput over one
// frozen TAG graph: the internal/serve session pool against a serialized
// single session and against re-encoding the graph per query.
func BenchmarkConcurrentServe(b *testing.B) {
	cfg := bench.Config{Scales: []float64{0.2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bench.Concurrency(cfg, "tpch", []int{4}, 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res[0].QPS["pooled"], "pooled_qps")
		b.ReportMetric(res[0].QPS["serial"], "serial_qps")
		b.ReportMetric(res[0].QPS["rebuild"], "rebuild_qps")
	}
}
