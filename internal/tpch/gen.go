// Package tpch generates a TPC-H-like benchmark database and query
// workload (§8.1.1 of the paper). The official dbgen tool is not
// redistributable, so the generator is a deterministic synthetic
// equivalent with the same 8-table 3NF schema, the same PK/FK structure,
// and the same scaling discipline (all tables scale linearly with the
// scale factor). Scale factor 1.0 here corresponds to roughly 1/1000 of
// the row counts of TPC-H SF-1, keeping warm-run benchmarks laptop-sized
// while preserving the relative table-size ratios.
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// Row counts at scale factor 1.0 (1/1000 of TPC-H SF-1).
const (
	regionRows    = 5
	nationRows    = 25
	supplierBase  = 10
	customerBase  = 150
	partBase      = 200
	partsuppPerP  = 4
	ordersPerCust = 10
	maxLinesPerO  = 7
)

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP PACK"}
	brands     = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33"}
	types      = []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED BRASS", "ECONOMY BRUSHED STEEL", "PROMO BURNISHED NICKEL", "LARGE ANODIZED BRASS"}
	returnFlag = []string{"R", "A", "N"}
	lineStatus = []string{"O", "F"}
	orderStati = []string{"O", "F", "P"}
)

// Generate builds the catalog at the given scale factor, deterministically
// from the seed. Scale 1.0 is ~150 customers / 1500 orders / ~6000
// lineitems; the benchmark harness uses scales in [0.5, 4].
func Generate(scale float64, seed int64) *relation.Catalog {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	cat := relation.NewCatalog()

	nSupp := scaled(supplierBase, scale)
	nCust := scaled(customerBase, scale)
	nPart := scaled(partBase, scale)

	// region
	region := relation.New("region", relation.MustSchema(
		relation.Col("r_regionkey", relation.KindInt),
		relation.Col("r_name", relation.KindString),
		relation.Col("r_comment", relation.KindString)))
	for i := 0; i < regionRows; i++ {
		region.MustAppend(relation.Int(int64(i)), relation.Str(regionNames[i]), comment(rng))
	}
	cat.MustAdd(region)
	cat.SetPrimaryKey("region", "r_regionkey")

	// nation
	nation := relation.New("nation", relation.MustSchema(
		relation.Col("n_nationkey", relation.KindInt),
		relation.Col("n_name", relation.KindString),
		relation.Col("n_regionkey", relation.KindInt),
		relation.Col("n_comment", relation.KindString)))
	for i := 0; i < nationRows; i++ {
		nation.MustAppend(relation.Int(int64(i)), relation.Str(nationNames[i]),
			relation.Int(int64(i%regionRows)), comment(rng))
	}
	cat.MustAdd(nation)
	cat.SetPrimaryKey("nation", "n_nationkey")
	cat.AddForeignKey(relation.ForeignKey{Table: "nation", Column: "n_regionkey", RefTable: "region", RefColumn: "r_regionkey"})

	// supplier
	supplier := relation.New("supplier", relation.MustSchema(
		relation.Col("s_suppkey", relation.KindInt),
		relation.Col("s_name", relation.KindString),
		relation.Col("s_nationkey", relation.KindInt),
		relation.Col("s_acctbal", relation.KindFloat),
		relation.Col("s_comment", relation.KindString)))
	for i := 1; i <= nSupp; i++ {
		supplier.MustAppend(relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("Supplier#%09d", i)),
			relation.Int(int64(rng.Intn(nationRows))),
			relation.Float(money(rng, -999, 9999)),
			supplierComment(rng))
	}
	cat.MustAdd(supplier)
	cat.SetPrimaryKey("supplier", "s_suppkey")
	cat.AddForeignKey(relation.ForeignKey{Table: "supplier", Column: "s_nationkey", RefTable: "nation", RefColumn: "n_nationkey"})

	// customer
	customer := relation.New("customer", relation.MustSchema(
		relation.Col("c_custkey", relation.KindInt),
		relation.Col("c_name", relation.KindString),
		relation.Col("c_nationkey", relation.KindInt),
		relation.Col("c_mktsegment", relation.KindString),
		relation.Col("c_acctbal", relation.KindFloat),
		relation.Col("c_comment", relation.KindString)))
	for i := 1; i <= nCust; i++ {
		customer.MustAppend(relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("Customer#%09d", i)),
			relation.Int(int64(rng.Intn(nationRows))),
			relation.Str(segments[rng.Intn(len(segments))]),
			relation.Float(money(rng, -999, 9999)),
			comment(rng))
	}
	cat.MustAdd(customer)
	cat.SetPrimaryKey("customer", "c_custkey")
	cat.AddForeignKey(relation.ForeignKey{Table: "customer", Column: "c_nationkey", RefTable: "nation", RefColumn: "n_nationkey"})

	// part
	part := relation.New("part", relation.MustSchema(
		relation.Col("p_partkey", relation.KindInt),
		relation.Col("p_name", relation.KindString),
		relation.Col("p_brand", relation.KindString),
		relation.Col("p_type", relation.KindString),
		relation.Col("p_size", relation.KindInt),
		relation.Col("p_container", relation.KindString),
		relation.Col("p_retailprice", relation.KindFloat)))
	for i := 1; i <= nPart; i++ {
		part.MustAppend(relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("part %s %d", types[rng.Intn(len(types))], i)),
			relation.Str(brands[rng.Intn(len(brands))]),
			relation.Str(types[rng.Intn(len(types))]),
			relation.Int(int64(1+rng.Intn(50))),
			relation.Str(containers[rng.Intn(len(containers))]),
			relation.Float(money(rng, 900, 2000)))
	}
	cat.MustAdd(part)
	cat.SetPrimaryKey("part", "p_partkey")

	// partsupp
	partsupp := relation.New("partsupp", relation.MustSchema(
		relation.Col("ps_partkey", relation.KindInt),
		relation.Col("ps_suppkey", relation.KindInt),
		relation.Col("ps_availqty", relation.KindInt),
		relation.Col("ps_supplycost", relation.KindFloat)))
	for p := 1; p <= nPart; p++ {
		for k := 0; k < partsuppPerP; k++ {
			s := 1 + (p+k*(nPart/partsuppPerP+1))%nSupp
			partsupp.MustAppend(relation.Int(int64(p)), relation.Int(int64(s)),
				relation.Int(int64(1+rng.Intn(9999))),
				relation.Float(money(rng, 1, 1000)))
		}
	}
	cat.MustAdd(partsupp)
	cat.AddForeignKey(relation.ForeignKey{Table: "partsupp", Column: "ps_partkey", RefTable: "part", RefColumn: "p_partkey"})
	cat.AddForeignKey(relation.ForeignKey{Table: "partsupp", Column: "ps_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"})

	// orders + lineitem
	orders := relation.New("orders", relation.MustSchema(
		relation.Col("o_orderkey", relation.KindInt),
		relation.Col("o_custkey", relation.KindInt),
		relation.Col("o_orderstatus", relation.KindString),
		relation.Col("o_totalprice", relation.KindFloat),
		relation.Col("o_orderdate", relation.KindDate),
		relation.Col("o_orderpriority", relation.KindString),
		relation.Col("o_shippriority", relation.KindInt),
		relation.Col("o_comment", relation.KindString)))
	lineitem := relation.New("lineitem", relation.MustSchema(
		relation.Col("l_orderkey", relation.KindInt),
		relation.Col("l_partkey", relation.KindInt),
		relation.Col("l_suppkey", relation.KindInt),
		relation.Col("l_linenumber", relation.KindInt),
		relation.Col("l_quantity", relation.KindInt),
		relation.Col("l_extendedprice", relation.KindFloat),
		relation.Col("l_discount", relation.KindFloat),
		relation.Col("l_tax", relation.KindFloat),
		relation.Col("l_returnflag", relation.KindString),
		relation.Col("l_linestatus", relation.KindString),
		relation.Col("l_shipdate", relation.KindDate),
		relation.Col("l_commitdate", relation.KindDate),
		relation.Col("l_receiptdate", relation.KindDate),
		relation.Col("l_shipinstruct", relation.KindString),
		relation.Col("l_shipmode", relation.KindString)))

	epoch92 := relation.DateOf(1992, 1, 1).AsInt()
	okey := int64(0)
	for c := 1; c <= nCust; c++ {
		// Roughly a third of customers place no orders (TPC-H property).
		n := ordersPerCust + rng.Intn(7) - 3
		if c%3 == 0 {
			n = 0
		}
		for o := 0; o < n; o++ {
			okey++
			odate := epoch92 + int64(rng.Intn(2400)) // 1992..mid-1998
			lines := 1 + rng.Intn(maxLinesPerO)
			total := 0.0
			for ln := 1; ln <= lines; ln++ {
				qty := 1 + rng.Intn(50)
				price := money(rng, 900, 10000)
				disc := float64(rng.Intn(11)) / 100
				tax := float64(rng.Intn(9)) / 100
				ship := odate + 1 + int64(rng.Intn(121))
				commit := odate + 30 + int64(rng.Intn(61))
				receipt := ship + 1 + int64(rng.Intn(30))
				total += price * float64(qty) * (1 - disc)
				lineitem.MustAppend(
					relation.Int(okey),
					relation.Int(int64(1+rng.Intn(nPart))),
					relation.Int(int64(1+rng.Intn(nSupp))),
					relation.Int(int64(ln)),
					relation.Int(int64(qty)),
					relation.Float(price*float64(qty)),
					relation.Float(disc),
					relation.Float(tax),
					relation.Str(returnFlag[rng.Intn(len(returnFlag))]),
					relation.Str(lineStatus[rng.Intn(len(lineStatus))]),
					relation.Date(ship),
					relation.Date(commit),
					relation.Date(receipt),
					relation.Str(instructs[rng.Intn(len(instructs))]),
					relation.Str(shipModes[rng.Intn(len(shipModes))]))
			}
			orders.MustAppend(
				relation.Int(okey),
				relation.Int(int64(c)),
				relation.Str(orderStati[rng.Intn(len(orderStati))]),
				relation.Float(total),
				relation.Date(odate),
				relation.Str(priorities[rng.Intn(len(priorities))]),
				relation.Int(int64(rng.Intn(2))),
				comment(rng))
		}
	}
	cat.MustAdd(orders)
	cat.SetPrimaryKey("orders", "o_orderkey")
	cat.AddForeignKey(relation.ForeignKey{Table: "orders", Column: "o_custkey", RefTable: "customer", RefColumn: "c_custkey"})
	cat.MustAdd(lineitem)
	cat.AddForeignKey(relation.ForeignKey{Table: "lineitem", Column: "l_orderkey", RefTable: "orders", RefColumn: "o_orderkey"})
	cat.AddForeignKey(relation.ForeignKey{Table: "lineitem", Column: "l_partkey", RefTable: "part", RefColumn: "p_partkey"})
	cat.AddForeignKey(relation.ForeignKey{Table: "lineitem", Column: "l_suppkey", RefTable: "supplier", RefColumn: "s_suppkey"})

	return cat
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 2 {
		n = 2
	}
	return n
}

func money(rng *rand.Rand, lo, hi float64) float64 {
	return float64(int((lo+rng.Float64()*(hi-lo))*100)) / 100
}

var commentWords = []string{
	"carefully", "final", "deposits", "sleep", "quickly", "special",
	"requests", "haggle", "furiously", "ironic", "packages", "bold",
	"pending", "accounts", "express", "instructions",
}

func comment(rng *rand.Rand) relation.Value {
	n := 3 + rng.Intn(5)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += commentWords[rng.Intn(len(commentWords))]
	}
	return relation.Str(out)
}

// supplierComment occasionally embeds the q16 "Customer Complaints"
// marker so LIKE predicates select something.
func supplierComment(rng *rand.Rand) relation.Value {
	if rng.Intn(20) == 0 {
		return relation.Str("wake up Customer Complaints quickly")
	}
	return comment(rng)
}
