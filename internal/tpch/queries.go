package tpch

// Query is one workload entry with its aggregation-class annotation used
// by the experiment groupings (Tables 3-4, Figure 15 methodology).
type Query struct {
	ID    string
	SQL   string
	Class string // "noagg", "local", "global", "scalar"
	Corr  bool   // contains a correlated subquery
	Cycle bool   // cyclic join graph
	Note  string // adaptation applied vs. the official query, if any
}

// Queries returns the 22-query TPC-H workload in the supported dialect.
// Per §8.1.1 all queries run without ORDER BY and LIMIT. Queries whose
// official form needs unsupported constructs (derived tables, views,
// substring) are adapted to the nearest shape that preserves their join
// structure and aggregation class; each adaptation is noted.
func Queries() []Query {
	return []Query{
		{ID: "q1", Class: "global", SQL: `
SELECT l_returnflag, l_linestatus, SUM(l_quantity), SUM(l_extendedprice),
       SUM(l_extendedprice * (1 - l_discount)),
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)),
       AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*)
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus`},

		{ID: "q2", Class: "noagg", Corr: true, Note: "min-cost subquery keeps only the partsupp correlation (no nested region join)", SQL: `
SELECT s_acctbal, s_name, n_name, p_partkey
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey AND p_size = 15
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey AND r_name = 'EUROPE'
  AND ps_supplycost = (SELECT MIN(ps2.ps_supplycost) FROM partsupp ps2
                       WHERE ps2.ps_partkey = p_partkey)`},

		{ID: "q3", Class: "local", SQL: `
SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority`},

		{ID: "q4", Class: "local", Corr: true, SQL: `
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-07-01' + INTERVAL '90' DAY
  AND EXISTS (SELECT 1 FROM lineitem
              WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority`},

		{ID: "q5", Class: "local", Cycle: true, SQL: `
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1994-01-01' + INTERVAL '365' DAY
GROUP BY n_name`},

		{ID: "q6", Class: "scalar", SQL: `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1994-01-01' + INTERVAL '365' DAY
  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`},

		{ID: "q7", Class: "global", SQL: `
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
       YEAR(l_shipdate) AS l_year, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM supplier, lineitem, orders, customer, nation n1, nation n2
WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey
  AND s_nationkey = n1.n_nationkey AND c_nationkey = n2.n_nationkey
  AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
    OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
  AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
GROUP BY n1.n_name, n2.n_name, YEAR(l_shipdate)`},

		{ID: "q8", Class: "global", Note: "nation-volume CASE folded into the top-level aggregation (no derived table)", SQL: `
SELECT YEAR(o_orderdate) AS o_year,
       SUM(CASE WHEN n2.n_name = 'BRAZIL' THEN l_extendedprice * (1 - l_discount) ELSE 0 END)
         / SUM(l_extendedprice * (1 - l_discount)) AS mkt_share
FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, region
WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = o_orderkey
  AND o_custkey = c_custkey AND c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = r_regionkey AND r_name = 'AMERICA'
  AND s_nationkey = n2.n_nationkey
  AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
  AND p_type = 'ECONOMY BRUSHED STEEL'
GROUP BY YEAR(o_orderdate)`},

		{ID: "q9", Class: "global", SQL: `
SELECT n_name, YEAR(o_orderdate) AS o_year,
       SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS profit
FROM part, supplier, lineitem, partsupp, orders, nation
WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey
  AND p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
  AND p_name LIKE '%POLISHED%'
GROUP BY n_name, YEAR(o_orderdate)`},

		{ID: "q10", Class: "local", SQL: `
SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1993-10-01' + INTERVAL '90' DAY
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, n_name`},

		{ID: "q11", Class: "local", SQL: `
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey AND n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING SUM(ps_supplycost * ps_availqty) >
       (SELECT SUM(ps2.ps_supplycost * ps2.ps_availqty) * 0.01
        FROM partsupp ps2, supplier s2, nation n2
        WHERE ps2.ps_suppkey = s2.s_suppkey AND s2.s_nationkey = n2.n_nationkey
          AND n2.n_name = 'GERMANY')`},

		{ID: "q12", Class: "local", SQL: `
SELECT l_shipmode,
       SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count,
       SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1994-01-01' + INTERVAL '365' DAY
GROUP BY l_shipmode`},

		{ID: "q13", Class: "local", Note: "reports per-customer order counts directly (the official outer distribution needs a derived table)", SQL: `
SELECT c_custkey, COUNT(o_orderkey) AS c_count
FROM customer LEFT JOIN orders
  ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%'
GROUP BY c_custkey`},

		{ID: "q14", Class: "scalar", SQL: `
SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0 END)
       / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey AND l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-09-01' + INTERVAL '30' DAY`},

		{ID: "q15", Class: "local", Note: "top supplier threshold uses 2x the average revenue share (the official MAX-over-view needs a view)", SQL: `
SELECT s_suppkey, s_name, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
FROM supplier, lineitem
WHERE s_suppkey = l_suppkey AND l_shipdate >= DATE '1996-01-01'
  AND l_shipdate < DATE '1996-01-01' + INTERVAL '90' DAY
GROUP BY s_suppkey, s_name
HAVING SUM(l_extendedprice * (1 - l_discount)) >
       (SELECT 2 * SUM(l2.l_extendedprice * (1 - l2.l_discount)) / COUNT(DISTINCT l2.l_suppkey)
        FROM lineitem l2
        WHERE l2.l_shipdate >= DATE '1996-01-01'
          AND l2.l_shipdate < DATE '1996-01-01' + INTERVAL '90' DAY)`},

		{ID: "q16", Class: "global", SQL: `
SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#33'
  AND p_size IN (9, 14, 19, 23, 36, 45, 49, 3)
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                         WHERE s_comment LIKE '%Customer%Complaints%')
GROUP BY p_brand, p_type, p_size`},

		{ID: "q17", Class: "scalar", Corr: true, SQL: `
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey AND p_brand = 'Brand#23' AND p_container = 'MED BOX'
  AND l_quantity < (SELECT 0.5 * AVG(l2.l_quantity) FROM lineitem l2
                    WHERE l2.l_partkey = p_partkey)`},

		{ID: "q18", Class: "global", SQL: `
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity)
FROM customer, orders, lineitem
WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                     GROUP BY l_orderkey HAVING SUM(l_quantity) > 210)
  AND c_custkey = o_custkey AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice`},

		{ID: "q19", Class: "scalar", SQL: `
SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND ((p_brand = 'Brand#12' AND p_container IN ('SM CASE', 'SM BOX')
        AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5
        AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON')
    OR (p_brand = 'Brand#23' AND p_container IN ('MED BAG', 'MED BOX')
        AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10
        AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON')
    OR (p_brand = 'Brand#31' AND p_container IN ('LG CASE', 'LG BOX')
        AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15
        AND l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON'))`},

		{ID: "q20", Class: "noagg", Corr: true, SQL: `
SELECT s_name, s_acctbal
FROM supplier, nation
WHERE s_suppkey IN (SELECT ps_suppkey FROM partsupp
                    WHERE ps_partkey IN (SELECT p_partkey FROM part
                                         WHERE p_name LIKE 'part SMALL%')
                      AND ps_availqty > (SELECT 0.5 * SUM(l_quantity) FROM lineitem
                                         WHERE l_partkey = ps_partkey
                                           AND l_suppkey = ps_suppkey
                                           AND l_shipdate >= DATE '1994-01-01'
                                           AND l_shipdate < DATE '1994-01-01' + INTERVAL '365' DAY))
  AND s_nationkey = n_nationkey AND n_name = 'CANADA'`},

		{ID: "q21", Class: "local", Corr: true, Note: "the suppkey-inequality arms of the official EXISTS pair are dropped (equality-only correlation)", SQL: `
SELECT s_name, COUNT(*) AS numwait
FROM supplier, lineitem, orders, nation
WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey AND o_orderstatus = 'F'
  AND l_receiptdate > l_commitdate AND s_nationkey = n_nationkey
  AND n_name = 'SAUDI ARABIA'
  AND EXISTS (SELECT 1 FROM lineitem l2 WHERE l2.l_orderkey = l_orderkey)
  AND NOT EXISTS (SELECT 1 FROM lineitem l3
                  WHERE l3.l_orderkey = l_orderkey
                    AND l3.l_receiptdate > l3.l_commitdate AND l3.l_shipmode = 'AIR')
GROUP BY s_name`},

		{ID: "q22", Class: "local", Note: "country-code substring folded to nation-key IN list", SQL: `
SELECT c_nationkey, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
FROM customer
WHERE c_acctbal > (SELECT AVG(c2.c_acctbal) FROM customer c2 WHERE c2.c_acctbal > 0.00)
  AND NOT EXISTS (SELECT 1 FROM orders WHERE o_custkey = c_custkey)
  AND c_nationkey IN (7, 9, 11, 13, 17, 19, 23)
GROUP BY c_nationkey`},
	}
}

// ByID returns the query with the given id, or nil.
func ByID(id string) *Query {
	for _, q := range Queries() {
		if q.ID == id {
			return &q
		}
	}
	return nil
}
