package tpch

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1, 42)
	b := Generate(1, 42)
	for _, name := range a.Names() {
		if !relation.EqualMultiset(a.Get(name), b.Get(name)) {
			t.Errorf("table %s not deterministic", name)
		}
	}
	c := Generate(1, 43)
	if relation.EqualMultiset(a.Get("lineitem"), c.Get("lineitem")) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateScaling(t *testing.T) {
	small := Generate(1, 1)
	big := Generate(2, 1)
	if big.Get("customer").Len() != 2*small.Get("customer").Len() {
		t.Errorf("customer scaling: %d vs %d", small.Get("customer").Len(), big.Get("customer").Len())
	}
	// Region/nation are fixed-size.
	if big.Get("nation").Len() != 25 || big.Get("region").Len() != 5 {
		t.Error("nation/region must not scale")
	}
	// Rough table ratio sanity: lineitem is the largest table.
	if big.Get("lineitem").Len() <= big.Get("orders").Len() {
		t.Error("lineitem should dominate orders")
	}
}

func TestForeignKeysResolve(t *testing.T) {
	cat := Generate(1, 7)
	orders := cat.Get("orders")
	custs := map[int64]bool{}
	for _, tp := range cat.Get("customer").Tuples {
		custs[tp[0].AsInt()] = true
	}
	for _, tp := range orders.Tuples {
		if !custs[tp[1].AsInt()] {
			t.Fatalf("order %v references missing customer %v", tp[0], tp[1])
		}
	}
	okeys := map[int64]bool{}
	for _, tp := range orders.Tuples {
		okeys[tp[0].AsInt()] = true
	}
	for _, tp := range cat.Get("lineitem").Tuples {
		if !okeys[tp[0].AsInt()] {
			t.Fatalf("lineitem references missing order %v", tp[0])
		}
	}
}

func TestAllQueriesParseAndAnalyze(t *testing.T) {
	cat := Generate(0.5, 1)
	for _, q := range Queries() {
		if _, err := sql.AnalyzeString(cat, q.SQL); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
	}
	if len(Queries()) != 22 {
		t.Errorf("workload has %d queries, want 22", len(Queries()))
	}
	if ByID("q5") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
}

// TestEnginesAgreeOnWorkload is the headline integration test: every
// TPC-H query returns identical multisets on the TAG-join executor and
// the baseline relational engine.
func TestEnginesAgreeOnWorkload(t *testing.T) {
	cat := Generate(0.5, 11)
	g, err := tag.Build(cat, nil) // default policy: floats/comments unmaterialized
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutor(g, bsp.Options{Workers: 4})
	base := baseline.New(cat)

	for _, q := range Queries() {
		got, err := ex.Query(q.SQL)
		if err != nil {
			t.Errorf("%s TAG: %v", q.ID, err)
			continue
		}
		want, err := base.Query(q.SQL)
		if err != nil {
			t.Errorf("%s baseline: %v", q.ID, err)
			continue
		}
		if !relation.EqualMultisetFuzzy(got, want) {
			onlyG, onlyW := relation.DiffMultiset(got, want, 3)
			t.Errorf("%s MISMATCH: TAG %d rows vs baseline %d rows\nonly TAG: %v\nonly base: %v",
				q.ID, got.Len(), want.Len(), onlyG, onlyW)
		}
	}
}

func TestQueryClassesDetected(t *testing.T) {
	cat := Generate(0.5, 11)
	g, err := tag.Build(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutor(g, bsp.Options{Workers: 4})
	want := map[string]core.AggClass{
		"q1": core.AggGlobal, "q3": core.AggLocal, "q4": core.AggLocal,
		"q5": core.AggLocal, "q6": core.AggScalar, "q7": core.AggGlobal,
		"q10": core.AggLocal, "q16": core.AggGlobal, "q19": core.AggScalar,
	}
	for id, cls := range want {
		q := ByID(id)
		if _, err := ex.Query(q.SQL); err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if ex.Info.Agg != cls {
			t.Errorf("%s class = %v, want %v", id, ex.Info.Agg, cls)
		}
	}
	// q5 is the 5-way cycle query.
	if _, err := ex.Query(ByID("q5").SQL); err != nil {
		t.Fatal(err)
	}
	if ex.Info.Acyclic {
		t.Error("q5 should be cyclic")
	}
}
