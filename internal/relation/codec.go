package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/codec"
)

// This file is the binary (de)serialization of the relational layer,
// built on the shared frame codec. The value encoding is the one the
// WAL has always written (kind byte, varint ints, raw float bits,
// length-prefixed strings) — extracted here so log records and
// checkpoint files agree byte-for-byte on how a value looks on disk.

// AppendValue appends the kind-tagged binary encoding of v to b:
// a kind byte, then Int/Date/Bool as a signed varint, Float as raw
// little-endian bits, String length-prefixed; Null is the kind alone.
func AppendValue(b []byte, v Value) ([]byte, error) {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case KindNull:
	case KindInt, KindDate, KindBool:
		b = binary.AppendVarint(b, v.I)
	case KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case KindString:
		b = codec.AppendString(b, v.S)
	default:
		return nil, fmt.Errorf("relation: unencodable value kind %v", v.Kind)
	}
	return b, nil
}

// DecodeValue decodes one AppendValue encoding from d.
func DecodeValue(d *codec.Decoder) (Value, error) {
	k, err := d.Byte()
	if err != nil {
		return Null, err
	}
	switch kind := Kind(k); kind {
	case KindNull:
		return Null, nil
	case KindInt, KindDate, KindBool:
		i, err := d.Varint()
		if err != nil {
			return Null, err
		}
		return Value{Kind: kind, I: i}, nil
	case KindFloat:
		fb, err := d.Take(8)
		if err != nil {
			return Null, err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(fb))), nil
	case KindString:
		s, err := d.Str()
		if err != nil {
			return Null, err
		}
		return Str(s), nil
	default:
		return Null, codec.ErrCorrupt
	}
}

// AppendTuple appends row as a uvarint arity followed by its values.
func AppendTuple(b []byte, row Tuple) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(row)))
	for _, v := range row {
		var err error
		if b, err = AppendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeTuple decodes one AppendTuple encoding from d.
func DecodeTuple(d *codec.Decoder) (Tuple, error) {
	arity, err := d.Length()
	if err != nil {
		return nil, err
	}
	row := make(Tuple, 0, codec.CapHint(arity))
	for i := 0; i < arity; i++ {
		v, err := DecodeValue(d)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// AppendBinary appends the schema as a uvarint column count followed by
// each column's name and kind byte.
func (s *Schema) AppendBinary(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s.Columns)))
	for _, c := range s.Columns {
		b = codec.AppendString(b, c.Name)
		b = append(b, byte(c.Kind))
	}
	return b
}

// DecodeSchema decodes one AppendBinary encoding from d, rebuilding the
// by-name index via NewSchema (so a decoded schema behaves exactly like
// a constructed one).
func DecodeSchema(d *codec.Decoder) (*Schema, error) {
	n, err := d.Length()
	if err != nil {
		return nil, err
	}
	cols := make([]Column, 0, codec.CapHint(n))
	for i := 0; i < n; i++ {
		name, err := d.Str()
		if err != nil {
			return nil, err
		}
		k, err := d.Byte()
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: name, Kind: Kind(k)})
	}
	s, err := NewSchema(cols...)
	if err != nil {
		return nil, codec.ErrCorrupt
	}
	return s, nil
}

const (
	// catalogVersion stamps the catalog section layout.
	catalogVersion = 1
	// Row chunks are bounded so one frame stays far below the codec's
	// frame cap even for SF-scale relations (lineitem at SF 1 is ~1GB of
	// encoded rows — never a single frame).
	catalogChunkRows  = 16 << 10
	catalogChunkBytes = 4 << 20
)

// WriteBinary writes the catalog to w as a deterministic sequence of
// frames: one metadata frame (names, schemas, keys, row counts in
// insertion order) followed by bounded row chunks, each tagged with its
// table index. Determinism matters: two snapshots of the same state are
// byte-identical, so a checkpoint's bytes are a function of the state
// it captures.
func (c *Catalog) WriteBinary(w io.Writer) error {
	var meta []byte
	meta = binary.AppendUvarint(meta, catalogVersion)
	meta = binary.AppendUvarint(meta, uint64(len(c.order)))
	for _, key := range c.order {
		rel := c.relations[key]
		meta = codec.AppendString(meta, rel.Name)
		meta = rel.Schema.AppendBinary(meta)
		meta = codec.AppendString(meta, c.primary[key])
		meta = binary.AppendUvarint(meta, uint64(len(rel.Tuples)))
	}
	meta = binary.AppendUvarint(meta, uint64(len(c.foreign)))
	for _, fk := range c.foreign {
		meta = codec.AppendString(meta, fk.Table)
		meta = codec.AppendString(meta, fk.Column)
		meta = codec.AppendString(meta, fk.RefTable)
		meta = codec.AppendString(meta, fk.RefColumn)
	}
	if err := codec.WriteFrame(w, meta); err != nil {
		return err
	}

	for ti, key := range c.order {
		rel := c.relations[key]
		rows := rel.Tuples
		for len(rows) > 0 {
			// One chunk: up to catalogChunkRows rows or ~catalogChunkBytes
			// of payload, whichever fills first.
			var buf []byte
			n := 0
			for n < len(rows) && n < catalogChunkRows && len(buf) < catalogChunkBytes {
				var err error
				if buf, err = AppendTuple(buf, rows[n]); err != nil {
					return err
				}
				n++
			}
			var chunk []byte
			chunk = binary.AppendUvarint(chunk, uint64(ti))
			chunk = binary.AppendUvarint(chunk, uint64(n))
			chunk = append(chunk, buf...)
			if err := codec.WriteFrame(w, chunk); err != nil {
				return err
			}
			rows = rows[n:]
		}
	}
	return nil
}

// ReadCatalog reads one WriteBinary encoding from br, consuming exactly
// the catalog's frames (the reader is left positioned at whatever
// follows). Torn or corrupt frames surface as codec.ErrCorrupt.
func ReadCatalog(br *bufio.Reader) (*Catalog, error) {
	meta, _, err := codec.ReadFrame(br)
	if err != nil {
		if err == io.EOF {
			return nil, codec.ErrCorrupt
		}
		return nil, err
	}
	d := codec.NewDecoder(meta)
	ver, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != catalogVersion {
		return nil, fmt.Errorf("relation: unsupported catalog version %d", ver)
	}
	ntables, err := d.Length()
	if err != nil {
		return nil, err
	}
	c := NewCatalog()
	remaining := make([]uint64, 0, codec.CapHint(ntables))
	for i := 0; i < ntables; i++ {
		name, err := d.Str()
		if err != nil {
			return nil, err
		}
		schema, err := DecodeSchema(d)
		if err != nil {
			return nil, err
		}
		pk, err := d.Str()
		if err != nil {
			return nil, err
		}
		nrows, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if err := c.Add(New(name, schema)); err != nil {
			return nil, codec.ErrCorrupt
		}
		if pk != "" {
			c.SetPrimaryKey(name, pk)
		}
		remaining = append(remaining, nrows)
	}
	nfks, err := d.Length()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nfks; i++ {
		var fk ForeignKey
		if fk.Table, err = d.Str(); err != nil {
			return nil, err
		}
		if fk.Column, err = d.Str(); err != nil {
			return nil, err
		}
		if fk.RefTable, err = d.Str(); err != nil {
			return nil, err
		}
		if fk.RefColumn, err = d.Str(); err != nil {
			return nil, err
		}
		c.AddForeignKey(fk)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}

	// Row chunks arrive in table order; stop once every declared count
	// has been consumed.
	var pending uint64
	for _, r := range remaining {
		pending += r
	}
	for pending > 0 {
		chunk, _, err := codec.ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				return nil, codec.ErrCorrupt
			}
			return nil, err
		}
		cd := codec.NewDecoder(chunk)
		ti, err := cd.Uvarint()
		if err != nil {
			return nil, err
		}
		if ti >= uint64(len(c.order)) {
			return nil, codec.ErrCorrupt
		}
		n, err := cd.Length()
		if err != nil {
			return nil, err
		}
		if uint64(n) > remaining[ti] {
			return nil, codec.ErrCorrupt
		}
		rel := c.relations[c.order[ti]]
		for i := 0; i < n; i++ {
			row, err := DecodeTuple(cd)
			if err != nil {
				return nil, err
			}
			rel.Tuples = append(rel.Tuples, row)
		}
		if err := cd.Finish(); err != nil {
			return nil, err
		}
		remaining[ti] -= uint64(n)
		pending -= uint64(n)
	}
	return c, nil
}
