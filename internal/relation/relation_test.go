package relation

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRelation(t *testing.T) *Relation {
	t.Helper()
	r := New("nation", MustSchema(Col("nationkey", KindInt), Col("name", KindString)))
	r.MustAppend(Int(1), Str("USA"))
	r.MustAppend(Int(2), Str("FRANCE"))
	r.MustAppend(Int(3), Str("PERU"))
	return r
}

func TestSchemaLookup(t *testing.T) {
	s := MustSchema(Col("A", KindInt), Col("b", KindString))
	if s.Index("a") != 0 || s.Index("B") != 1 {
		t.Error("case-insensitive index lookup failed")
	}
	if s.Index("missing") != -1 {
		t.Error("missing column should return -1")
	}
	if _, err := NewSchema(Col("x", KindInt), Col("X", KindInt)); err == nil {
		t.Error("duplicate columns should error")
	}
	if got := s.String(); got != "(A INT, b STRING)" {
		t.Errorf("String() = %q", got)
	}
}

func TestRelationAppendArity(t *testing.T) {
	r := sampleRelation(t)
	if err := r.Append(Tuple{Int(9)}); err == nil {
		t.Error("arity mismatch should error")
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestProjectAndColumn(t *testing.T) {
	r := sampleRelation(t)
	p, err := r.Project("name")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.Len() != 1 || p.Len() != 3 {
		t.Fatalf("project shape wrong: %v", p)
	}
	if p.Tuples[0][0] != Str("USA") {
		t.Errorf("projected value = %v", p.Tuples[0][0])
	}
	col, err := r.Column("nationkey")
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 3 || col[2] != Int(3) {
		t.Errorf("column = %v", col)
	}
	if _, err := r.Project("nope"); err == nil {
		t.Error("projecting missing column should error")
	}
}

func TestFilter(t *testing.T) {
	r := sampleRelation(t)
	f := r.Filter(func(tp Tuple) bool { return tp[0].AsInt() >= 2 })
	if f.Len() != 2 {
		t.Errorf("filter kept %d rows, want 2", f.Len())
	}
}

func TestEqualMultiset(t *testing.T) {
	a := sampleRelation(t)
	b := New("other", a.Schema)
	// Same tuples in different order.
	b.MustAppend(Int(3), Str("PERU"))
	b.MustAppend(Int(1), Str("USA"))
	b.MustAppend(Int(2), Str("FRANCE"))
	if !EqualMultiset(a, b) {
		t.Error("order should not matter")
	}
	b.MustAppend(Int(2), Str("FRANCE"))
	if EqualMultiset(a, b) {
		t.Error("multiplicity should matter")
	}
	onlyA, onlyB := DiffMultiset(a, b, 5)
	if len(onlyA) != 0 || len(onlyB) != 1 {
		t.Errorf("diff = %v / %v", onlyA, onlyB)
	}
}

func TestTupleConcatClone(t *testing.T) {
	a := Tuple{Int(1)}
	b := Tuple{Str("x"), Int(2)}
	c := a.Concat(b)
	if len(c) != 3 || c[1] != Str("x") {
		t.Errorf("concat = %v", c)
	}
	cl := a.Clone()
	cl[0] = Int(99)
	if a[0] != Int(1) {
		t.Error("clone must not alias")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	c.MustAdd(sampleRelation(t))
	if c.Get("NATION") == nil {
		t.Error("case-insensitive get failed")
	}
	if err := c.Add(sampleRelation(t)); err == nil {
		t.Error("duplicate add should error")
	}
	c.SetPrimaryKey("nation", "nationkey")
	c.AddForeignKey(ForeignKey{Table: "customer", Column: "nationkey", RefTable: "nation", RefColumn: "nationkey"})
	if !c.IsPKFKJoin("customer", "nationkey", "nation", "nationkey") {
		t.Error("declared FK should be detected")
	}
	if !c.IsPKFKJoin("nation", "nationkey", "customer", "nationkey") {
		t.Error("PK side should be detected symmetrically")
	}
	if c.IsPKFKJoin("a", "x", "b", "y") {
		t.Error("unknown join should not be PK-FK")
	}
	if c.TotalTuples() != 3 {
		t.Errorf("TotalTuples = %d", c.TotalTuples())
	}
	if !strings.Contains(c.String(), "nation") {
		t.Error("String should mention relation")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := New("t", MustSchema(
		Col("i", KindInt), Col("f", KindFloat), Col("s", KindString),
		Col("b", KindBool), Col("d", KindDate)))
	r.MustAppend(Int(1), Float(1.5), Str("alpha"), Bool(true), DateOf(2020, 1, 2))
	r.MustAppend(Null, Null, Null, Null, Null)

	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", r.Schema, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMultiset(r, back) {
		t.Errorf("round trip mismatch:\n%v\nvs\n%v", r, back)
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := MustSchema(Col("i", KindInt))
	if _, err := ReadCSV("t", s, strings.NewReader("wrong\n1\n")); err == nil {
		t.Error("bad header should error")
	}
	if _, err := ReadCSV("t", s, strings.NewReader("i\nnotint\n")); err == nil {
		t.Error("bad int should error")
	}
}

func TestParseValueAllKinds(t *testing.T) {
	cases := []struct {
		kind Kind
		in   string
		want Value
	}{
		{KindInt, "42", Int(42)},
		{KindFloat, "2.5", Float(2.5)},
		{KindString, "hi", Str("hi")},
		{KindBool, "true", Bool(true)},
		{KindDate, "1999-12-31", DateOf(1999, 12, 31)},
		{KindInt, "", Null},
	}
	for _, c := range cases {
		got, err := ParseValue(c.kind, c.in)
		if err != nil {
			t.Errorf("ParseValue(%v,%q): %v", c.kind, c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseValue(%v,%q) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}
