package relation

import (
	"fmt"
	"sort"
	"strings"
)

// ForeignKey records a PK-FK relationship used by the planner's PK-FK
// detection (§6.1.1 of the paper) and by baseline index construction.
type ForeignKey struct {
	Table, Column       string
	RefTable, RefColumn string
}

// Catalog is a named collection of relations plus key metadata.
type Catalog struct {
	relations map[string]*Relation
	order     []string
	primary   map[string]string // table -> pk column
	foreign   []ForeignKey
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		relations: make(map[string]*Relation),
		primary:   make(map[string]string),
	}
}

// Add registers a relation; the name must be unused.
func (c *Catalog) Add(r *Relation) error {
	key := strings.ToLower(r.Name)
	if _, dup := c.relations[key]; dup {
		return fmt.Errorf("catalog: duplicate relation %q", r.Name)
	}
	c.relations[key] = r
	c.order = append(c.order, key)
	return nil
}

// MustAdd is Add that panics on duplicates.
func (c *Catalog) MustAdd(r *Relation) {
	if err := c.Add(r); err != nil {
		panic(err)
	}
}

// Clone returns a snapshot of the catalog that can be mutated (tuples
// appended or removed) without affecting the receiver. Relation structs
// are copied; schemas, key metadata, and the tuples themselves are
// shared, since they are immutable after construction. Tuple slices are
// shared copy-on-append: incremental maintenance only ever appends past
// the snapshot's length or reallocates, never writes in place.
func (c *Catalog) Clone() *Catalog {
	nc := &Catalog{
		relations: make(map[string]*Relation, len(c.relations)),
		order:     c.order,
		primary:   c.primary,
		foreign:   c.foreign,
	}
	for k, r := range c.relations {
		nr := *r
		// Cap the tuple slice at its current length so a later append in
		// one clone cannot write into backing memory that a sibling clone
		// of the same snapshot has already claimed.
		nr.Tuples = nr.Tuples[:len(nr.Tuples):len(nr.Tuples)]
		nc.relations[k] = &nr
	}
	return nc
}

// Get returns the named relation, or nil.
func (c *Catalog) Get(name string) *Relation {
	return c.relations[strings.ToLower(name)]
}

// Names returns registered relation names in insertion order.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.order))
	for i, k := range c.order {
		out[i] = c.relations[k].Name
	}
	return out
}

// SetPrimaryKey declares the primary key column of a table.
func (c *Catalog) SetPrimaryKey(table, column string) {
	c.primary[strings.ToLower(table)] = strings.ToLower(column)
}

// PrimaryKey returns the PK column of a table ("" if none declared).
func (c *Catalog) PrimaryKey(table string) string {
	return c.primary[strings.ToLower(table)]
}

// AddForeignKey declares a FK relationship.
func (c *Catalog) AddForeignKey(fk ForeignKey) {
	fk.Table = strings.ToLower(fk.Table)
	fk.Column = strings.ToLower(fk.Column)
	fk.RefTable = strings.ToLower(fk.RefTable)
	fk.RefColumn = strings.ToLower(fk.RefColumn)
	c.foreign = append(c.foreign, fk)
}

// ForeignKeys returns all declared FK relationships.
func (c *Catalog) ForeignKeys() []ForeignKey { return c.foreign }

// IsPKFKJoin reports whether joining ta.ca = tb.cb is a PK-FK join in
// either direction per the declared key metadata.
func (c *Catalog) IsPKFKJoin(ta, ca, tb, cb string) bool {
	ta, ca = strings.ToLower(ta), strings.ToLower(ca)
	tb, cb = strings.ToLower(tb), strings.ToLower(cb)
	if c.primary[ta] == ca || c.primary[tb] == cb {
		return true
	}
	for _, fk := range c.foreign {
		if fk.Table == ta && fk.Column == ca && fk.RefTable == tb && fk.RefColumn == cb {
			return true
		}
		if fk.Table == tb && fk.Column == cb && fk.RefTable == ta && fk.RefColumn == ca {
			return true
		}
	}
	return false
}

// TotalTuples returns the number of tuples across all relations (the
// paper's IN measure).
func (c *Catalog) TotalTuples() int {
	n := 0
	for _, r := range c.relations {
		n += r.Len()
	}
	return n
}

// TotalBytes returns the data footprint across all relations.
func (c *Catalog) TotalBytes() int {
	n := 0
	for _, r := range c.relations {
		n += r.ByteSize()
	}
	return n
}

// String summarizes the catalog, sorted by name for determinism.
func (c *Catalog) String() string {
	names := make([]string, 0, len(c.relations))
	for k := range c.relations {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r := c.relations[n]
		fmt.Fprintf(&b, "%s%s: %d rows\n", r.Name, r.Schema, r.Len())
	}
	return b.String()
}
