package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the relation with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return err
	}
	row := make([]string, r.Schema.Len())
	for _, t := range r.Tuples {
		for i, v := range t {
			if v.IsNull() {
				row[i] = ""
			} else {
				row[i] = v.String()
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads rows (with header) into a relation with the given schema.
// Empty fields become NULL.
func ReadCSV(name string, schema *Schema, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = schema.Len()
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading %s header: %w", name, err)
	}
	for i, h := range header {
		if schema.Index(h) != i {
			return nil, fmt.Errorf("relation: %s header column %d is %q, want %q", name, i, h, schema.Columns[i].Name)
		}
	}
	out := New(name, schema)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading %s: %w", name, err)
		}
		t := make(Tuple, len(rec))
		for i, field := range rec {
			v, err := ParseValue(schema.Columns[i].Kind, field)
			if err != nil {
				return nil, fmt.Errorf("relation: %s row %d col %s: %w", name, len(out.Tuples)+1, schema.Columns[i].Name, err)
			}
			t[i] = v
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, nil
}

// ParseValue parses a textual field into a value of the given kind.
// The empty string parses to NULL for every kind.
func ParseValue(kind Kind, field string) (Value, error) {
	if field == "" {
		return Null, nil
	}
	switch kind {
	case KindInt:
		n, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Null, err
		}
		return Int(n), nil
	case KindFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Null, err
		}
		return Float(f), nil
	case KindString:
		return Str(field), nil
	case KindBool:
		b, err := strconv.ParseBool(field)
		if err != nil {
			return Null, err
		}
		return Bool(b), nil
	case KindDate:
		return ParseDate(field)
	}
	return Null, fmt.Errorf("unsupported kind %v", kind)
}
