package relation

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("hello"), KindString, "hello"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Null, KindNull, "NULL"},
		{DateOf(1995, time.March, 15), KindDate, "1995-03-15"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestParseDateRoundTrip(t *testing.T) {
	v, err := ParseDate("2021-06-20")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "2021-06-20" {
		t.Fatalf("round trip got %q", v.String())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Fatal("expected error for bad date")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(2.0), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Null, Null, 0},
		{Date(10), Date(20), -1},
		{Date(10), Int(10), 0}, // numeric cross-kind
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Null.Equal(Null) {
		t.Error("NULL must not equal NULL")
	}
	if Null.Equal(Int(0)) || Int(0).Equal(Null) {
		t.Error("NULL must not equal 0")
	}
	if !Int(5).Equal(Int(5)) {
		t.Error("5 should equal 5")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	if Float(2.0).Key() != Int(2) {
		t.Error("integral float should fold to int key")
	}
	if Float(2.5).Key() != Float(2.5) {
		t.Error("fractional float should keep its identity")
	}
	if Bool(true).Key() != Int(1) {
		t.Error("bool should fold to int key")
	}
	if Str("x").Key() != Str("x") {
		t.Error("string key should be stable")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		got, want Value
	}{
		{Add(Int(2), Int(3)), Int(5)},
		{Sub(Int(2), Int(3)), Int(-1)},
		{Mul(Int(4), Int(3)), Int(12)},
		{Div(Int(7), Int(2)), Float(3.5)},
		{Add(Float(1.5), Int(1)), Float(2.5)},
		{Add(Date(10), Int(5)), Date(15)},
		{Sub(Date(10), Int(5)), Date(5)},
		{Div(Int(1), Int(0)), Null},
		{Add(Null, Int(1)), Null},
		{Mul(Int(1), Null), Null},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %v, want %v", i, c.got, c.want)
		}
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		va, vb, vc := Float(a), Float(b), Float(c)
		if va.Compare(vb) <= 0 && vb.Compare(vc) <= 0 {
			return va.Compare(vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEquivalenceProperty(t *testing.T) {
	// Values with equal keys must compare equal (join soundness for the
	// attribute-vertex dedup rule).
	f := func(n int32) bool {
		// int32 range is exactly representable in float64.
		return Int(int64(n)).Key() == Float(float64(n)).Key()
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestValueSize(t *testing.T) {
	if Int(1).Size() != 17 {
		t.Errorf("int size = %d", Int(1).Size())
	}
	if Str("abcd").Size() != 21 {
		t.Errorf("str size = %d", Str("abcd").Size())
	}
}
