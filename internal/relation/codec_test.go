package relation

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/codec"
)

func sampleTuples() []Tuple {
	return []Tuple{
		{Int(42), Str("hello"), Float(3.25)},
		{Null, Bool(true), Date(19000)},
		{Int(-5), Str(""), Float(-0.0)},
	}
}

// TestValueTupleRoundTrip: every value kind survives encode/decode, and
// the encoding matches the WAL's historical layout byte for byte.
func TestValueTupleRoundTrip(t *testing.T) {
	for _, row := range sampleTuples() {
		b, err := AppendTuple(nil, row)
		if err != nil {
			t.Fatal(err)
		}
		d := codec.NewDecoder(b)
		got, err := DecodeTuple(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, row) {
			t.Fatalf("tuple round trip: got %v, want %v", got, row)
		}
	}

	// Pinned bytes: kind tag, then varint / raw float bits / len-prefixed
	// string — the exact layout every WAL record has always used.
	b, err := AppendValue(nil, Int(42))
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{byte(KindInt), 0x54}; !bytes.Equal(b, want) {
		t.Fatalf("Int(42) encodes as %x, want %x", b, want)
	}
	b, err = AppendValue(nil, Str("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{byte(KindString), 2, 'h', 'i'}; !bytes.Equal(b, want) {
		t.Fatalf("Str(hi) encodes as %x, want %x", b, want)
	}

	// An unknown kind byte is corruption, not a panic.
	d := codec.NewDecoder([]byte{0x7f})
	if _, err := DecodeValue(d); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("unknown kind err = %v, want ErrCorrupt", err)
	}
}

// TestSchemaRoundTrip: a decoded schema behaves like a constructed one
// (by-name lookup included).
func TestSchemaRoundTrip(t *testing.T) {
	s := MustSchema(Col("id", KindInt), Col("name", KindString), Col("price", KindFloat))
	d := codec.NewDecoder(s.AppendBinary(nil))
	got, err := DecodeSchema(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns, s.Columns) {
		t.Fatalf("columns: got %v, want %v", got.Columns, s.Columns)
	}
	if got.Index("NAME") != 1 {
		t.Fatalf("decoded schema lost its by-name index: Index(NAME) = %d", got.Index("NAME"))
	}
}

func buildCatalog(t *testing.T, rowsPerTable int) *Catalog {
	t.Helper()
	c := NewCatalog()
	items := New("Items", MustSchema(Col("id", KindInt), Col("name", KindString)))
	for i := 0; i < rowsPerTable; i++ {
		items.Tuples = append(items.Tuples, Tuple{Int(int64(i)), Str("n")})
	}
	c.MustAdd(items)
	groups := New("groups", MustSchema(Col("gid", KindInt), Col("item", KindInt)))
	for i := 0; i < rowsPerTable/2; i++ {
		groups.Tuples = append(groups.Tuples, Tuple{Int(int64(i % 7)), Int(int64(i))})
	}
	c.MustAdd(groups)
	c.MustAdd(New("empty", MustSchema(Col("x", KindBool))))
	c.SetPrimaryKey("items", "id")
	c.AddForeignKey(ForeignKey{Table: "groups", Column: "item", RefTable: "items", RefColumn: "id"})
	return c
}

func catalogsEqual(t *testing.T, got, want *Catalog) {
	t.Helper()
	if !reflect.DeepEqual(got.Names(), want.Names()) {
		t.Fatalf("names: got %v, want %v", got.Names(), want.Names())
	}
	for _, name := range want.Names() {
		gr, wr := got.Get(name), want.Get(name)
		if !reflect.DeepEqual(gr.Schema.Columns, wr.Schema.Columns) {
			t.Fatalf("%s schema: got %v, want %v", name, gr.Schema.Columns, wr.Schema.Columns)
		}
		if len(gr.Tuples) != len(wr.Tuples) || !reflect.DeepEqual(gr.Tuples, wr.Tuples) {
			t.Fatalf("%s rows differ (%d vs %d)", name, len(gr.Tuples), len(wr.Tuples))
		}
		if got.PrimaryKey(name) != want.PrimaryKey(name) {
			t.Fatalf("%s pk: got %q, want %q", name, got.PrimaryKey(name), want.PrimaryKey(name))
		}
	}
	if !reflect.DeepEqual(got.ForeignKeys(), want.ForeignKeys()) {
		t.Fatalf("fks: got %v, want %v", got.ForeignKeys(), want.ForeignKeys())
	}
}

// TestCatalogRoundTrip: names (original case), schemas, rows (in order),
// keys — all survive; rows spanning multiple chunks reassemble; the
// encoding is deterministic; trailing input is left unconsumed.
func TestCatalogRoundTrip(t *testing.T) {
	// 3x the chunk row bound forces multiple row frames for one table.
	c := buildCatalog(t, 3*catalogChunkRows+17)
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := c.WriteBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteBinary is not deterministic")
	}

	trailer := []byte("unrelated next section")
	buf.Write(trailer)
	br := bufio.NewReader(&buf)
	got, err := ReadCatalog(br)
	if err != nil {
		t.Fatal(err)
	}
	catalogsEqual(t, got, c)
	rest := make([]byte, len(trailer))
	if _, err := br.Read(rest); err != nil || !bytes.Equal(rest, trailer) {
		t.Fatalf("catalog read consumed past its frames: %q, %v", rest, err)
	}
}

// TestCatalogCorruption: a flipped bit in any frame surfaces as
// ErrCorrupt; a truncated stream does too.
func TestCatalogCorruption(t *testing.T) {
	c := buildCatalog(t, 100)
	var buf bytes.Buffer
	if err := c.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := ReadCatalog(bufio.NewReader(bytes.NewReader(flipped))); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("bit flip err = %v, want ErrCorrupt", err)
	}
	if _, err := ReadCatalog(bufio.NewReader(bytes.NewReader(data[:len(data)-4]))); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("truncation err = %v, want ErrCorrupt", err)
	}
	if _, err := ReadCatalog(bufio.NewReader(bytes.NewReader(nil))); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("empty err = %v, want ErrCorrupt", err)
	}
}
