package relation

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tuple is one row of a relation.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation t ++ o as a fresh tuple.
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	out = append(out, o...)
	return out
}

// Size returns the approximate byte footprint of the tuple.
func (t Tuple) Size() int {
	n := 0
	for _, v := range t {
		n += v.Size()
	}
	return n
}

// key renders a canonical string for multiset comparison and hashing.
func (t Tuple) key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteByte(byte(v.Kind) + '0')
		b.WriteString(v.String())
	}
	return b.String()
}

// Relation is a named multiset of tuples conforming to a schema.
type Relation struct {
	Name   string
	Schema *Schema
	Tuples []Tuple
}

// New creates an empty relation.
func New(name string, schema *Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds a tuple after checking arity.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.Schema.Len() {
		return fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.Name, len(t), r.Schema.Len())
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend is Append that panics on arity mismatch.
func (r *Relation) MustAppend(vals ...Value) {
	if err := r.Append(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.Tuples) }

// ByteSize returns the approximate data footprint of the relation.
func (r *Relation) ByteSize() int {
	n := 0
	for _, t := range r.Tuples {
		n += t.Size()
	}
	return n
}

// Column returns the values of the named column in row order.
func (r *Relation) Column(name string) ([]Value, error) {
	i := r.Schema.Index(name)
	if i < 0 {
		return nil, fmt.Errorf("relation %s: no column %q", r.Name, name)
	}
	out := make([]Value, len(r.Tuples))
	for j, t := range r.Tuples {
		out[j] = t[i]
	}
	return out, nil
}

// Project returns a new relation with only the named columns.
func (r *Relation) Project(names ...string) (*Relation, error) {
	idx := make([]int, len(names))
	cols := make([]Column, len(names))
	for k, n := range names {
		i := r.Schema.Index(n)
		if i < 0 {
			return nil, fmt.Errorf("relation %s: no column %q", r.Name, n)
		}
		idx[k] = i
		cols[k] = r.Schema.Columns[i]
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := New(r.Name, schema)
	for _, t := range r.Tuples {
		nt := make(Tuple, len(idx))
		for k, i := range idx {
			nt[k] = t[i]
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// Filter returns a new relation with tuples satisfying pred.
func (r *Relation) Filter(pred func(Tuple) bool) *Relation {
	out := New(r.Name, r.Schema)
	for _, t := range r.Tuples {
		if pred(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// SortedKeys returns canonical row keys in sorted order; used by
// EqualMultiset and deterministic output.
func (r *Relation) SortedKeys() []string {
	keys := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		keys[i] = t.key()
	}
	sort.Strings(keys)
	return keys
}

// EqualMultiset reports whether two relations hold the same multiset of
// tuples (schemas are compared by arity only; names may differ between
// engines).
func EqualMultiset(a, b *Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	ka, kb := a.SortedKeys(), b.SortedKeys()
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// nonFloatKey renders a canonical row key with float slots wildcarded,
// used to bucket rows for tolerance-based multiset matching.
func (t Tuple) nonFloatKey() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		if v.Kind == KindFloat {
			b.WriteByte('F')
			continue
		}
		b.WriteByte(byte(v.Kind) + '0')
		b.WriteString(v.String())
	}
	return b.String()
}

// approxEqualRow compares tuples with relative float tolerance.
func approxEqualRow(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind == KindFloat && b[i].Kind == KindFloat {
			x, y := a[i].F, b[i].F
			diff := x - y
			if diff < 0 {
				diff = -diff
			}
			scale := 1.0
			if ax := math.Abs(x); ax > scale {
				scale = ax
			}
			if ay := math.Abs(y); ay > scale {
				scale = ay
			}
			if diff > 1e-6*scale {
				return false
			}
			continue
		}
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EqualMultisetFuzzy is EqualMultiset with relative float tolerance, for
// comparing engines whose aggregation (summation) order differs.
func EqualMultisetFuzzy(a, b *Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	buckets := map[string][]Tuple{}
	for _, t := range b.Tuples {
		k := t.nonFloatKey()
		buckets[k] = append(buckets[k], t)
	}
	for _, t := range a.Tuples {
		k := t.nonFloatKey()
		cand := buckets[k]
		found := -1
		for i, c := range cand {
			if approxEqualRow(t, c) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		cand[found] = cand[len(cand)-1]
		buckets[k] = cand[:len(cand)-1]
	}
	return true
}

// DiffMultiset returns up to max rows present in a but not b and vice
// versa, for test failure messages.
func DiffMultiset(a, b *Relation, max int) (onlyA, onlyB []string) {
	count := map[string]int{}
	for _, t := range a.Tuples {
		count[t.key()]++
	}
	for _, t := range b.Tuples {
		count[t.key()]--
	}
	for k, c := range count {
		for ; c > 0 && len(onlyA) < max; c-- {
			onlyA = append(onlyA, k)
		}
		for ; c < 0 && len(onlyB) < max; c++ {
			onlyB = append(onlyB, k)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}

// String renders the relation as a small table (capped at 20 rows).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s [%d rows]\n", r.Name, r.Schema, len(r.Tuples))
	for i, t := range r.Tuples {
		if i == 20 {
			fmt.Fprintf(&b, "  ... (%d more)\n", len(r.Tuples)-20)
			break
		}
		b.WriteString("  ")
		for j, v := range t {
			if j > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
