// Package relation implements the relational substrate of the TAG-join
// reproduction: typed values, schemas, relations, catalogs and CSV I/O.
//
// Values are small comparable structs (no interface boxing), so they can be
// used directly as map keys in join and aggregation hash tables and as the
// identity of TAG attribute vertices.
package relation

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the value domains supported by the engine.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate // days since 1970-01-01, stored in I
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	case KindDate:
		return "DATE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single typed datum. The zero Value is NULL.
//
// Exactly one payload field is meaningful for a given kind; constructors
// zero the others so that Value is safely comparable with == and usable as
// a map key.
type Value struct {
	Kind Kind
	I    int64 // KindInt, KindDate (days since epoch), KindBool (0/1)
	F    float64
	S    string
}

// Null is the NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Str returns a string value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	if v {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool}
}

// Date returns a date value holding days since 1970-01-01.
func Date(days int64) Value { return Value{Kind: KindDate, I: days} }

// DateOf converts a calendar date to a Value.
func DateOf(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Date(t.Unix() / 86400)
}

// ParseDate parses "YYYY-MM-DD" into a date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("relation: bad date %q: %w", s, err)
	}
	return Date(t.Unix() / 86400), nil
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsBool reports the truth value of v; NULL and non-bool values are false.
func (v Value) AsBool() bool { return v.Kind == KindBool && v.I != 0 }

// AsFloat converts numeric values to float64 for arithmetic.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return 0
}

// AsInt converts numeric values to int64.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt, KindDate, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	}
	return 0
}

// String renders the value in a stable, human-readable form.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	}
	return "?"
}

// numericKind reports whether k participates in numeric comparison.
func numericKind(k Kind) bool {
	return k == KindInt || k == KindFloat || k == KindDate || k == KindBool
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything. Numeric kinds compare by value across
// int/float/date; other cross-kind comparisons order by kind.
func (v Value) Compare(o Value) int {
	if v.Kind == KindNull || o.Kind == KindNull {
		switch {
		case v.Kind == o.Kind:
			return 0
		case v.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if numericKind(v.Kind) && numericKind(o.Kind) {
		if v.Kind == o.Kind && v.Kind != KindFloat {
			switch {
			case v.I < o.I:
				return -1
			case v.I > o.I:
				return 1
			}
			return 0
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.Kind != o.Kind {
		switch {
		case v.Kind < o.Kind:
			return -1
		default:
			return 1
		}
	}
	// Same non-numeric kind: strings.
	switch {
	case v.S < o.S:
		return -1
	case v.S > o.S:
		return 1
	}
	return 0
}

// Equal reports SQL equality (NULL equals nothing, including NULL).
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return false
	}
	return v.Compare(o) == 0
}

// Key canonicalizes v for use as a join/group key: integral floats fold
// into ints so that 2 and 2.0 land on the same attribute vertex, matching
// the TAG model's one-vertex-per-active-domain-value rule.
func (v Value) Key() Value {
	if v.Kind == KindFloat {
		if t := math.Trunc(v.F); t == v.F && !math.IsInf(v.F, 0) {
			return Int(int64(t))
		}
	}
	if v.Kind == KindBool {
		return Int(v.I)
	}
	return v
}

// Size returns the approximate in-memory footprint of the value in bytes,
// used by load-size and message-traffic accounting.
func (v Value) Size() int {
	return 17 + len(v.S) // kind byte + two 8-byte payloads + string bytes
}

// Add returns v + o with numeric promotion; NULL propagates.
func Add(v, o Value) Value { return arith(v, o, '+') }

// Sub returns v - o with numeric promotion; NULL propagates.
func Sub(v, o Value) Value { return arith(v, o, '-') }

// Mul returns v * o with numeric promotion; NULL propagates.
func Mul(v, o Value) Value { return arith(v, o, '*') }

// Div returns v / o with numeric promotion; NULL propagates and division
// by zero yields NULL.
func Div(v, o Value) Value { return arith(v, o, '/') }

func arith(v, o Value, op byte) Value {
	if v.IsNull() || o.IsNull() {
		return Null
	}
	if v.Kind == KindInt && o.Kind == KindInt && op != '/' {
		switch op {
		case '+':
			return Int(v.I + o.I)
		case '-':
			return Int(v.I - o.I)
		case '*':
			return Int(v.I * o.I)
		}
	}
	if v.Kind == KindDate && o.Kind == KindInt {
		switch op {
		case '+':
			return Date(v.I + o.I)
		case '-':
			return Date(v.I - o.I)
		}
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch op {
	case '+':
		return Float(a + b)
	case '-':
		return Float(a - b)
	case '*':
		return Float(a * b)
	case '/':
		if b == 0 {
			return Null
		}
		return Float(a / b)
	}
	return Null
}
