package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns with by-name lookup.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from columns; column names must be unique
// (case-insensitive).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically-known schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Col is shorthand for constructing a Column.
func Col(name string, kind Kind) Column { return Column{Name: name, Kind: kind} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Columns) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a INT, b STRING)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}
