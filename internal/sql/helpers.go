package sql

// SubSelects returns the subquery Selects directly nested in an
// expression (not descending into the subqueries themselves).
func SubSelects(e Expr) []*Select {
	var out []*Select
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case nil:
		case *Unary:
			walk(n.X)
		case *Binary:
			walk(n.L)
			walk(n.R)
		case *Between:
			walk(n.X)
			walk(n.Lo)
			walk(n.Hi)
		case *InList:
			walk(n.X)
			for _, it := range n.List {
				walk(it)
			}
		case *Like:
			walk(n.X)
		case *IsNull:
			walk(n.X)
		case *Case:
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(n.Else)
		case *FuncCall:
			for _, a := range n.Args {
				walk(a)
			}
		case *Exists:
			out = append(out, n.Sub)
		case *InSubquery:
			walk(n.X)
			out = append(out, n.Sub)
		case *ScalarSubquery:
			out = append(out, n.Sub)
		}
	}
	walk(e)
	return out
}

// VisitBlockExprs applies visit to every expression of a block (and its
// UNION ALL arms) with the given depth offset.
func VisitBlockExprs(b *Analyzed, off int, visit func(Expr, int)) {
	for _, it := range b.Sel.Items {
		visit(it.Expr, off)
	}
	for _, fi := range b.Sel.From {
		visit(fi.On, off)
	}
	visit(b.Sel.Where, off)
	for _, g := range b.Sel.GroupBy {
		visit(g, off)
	}
	visit(b.Sel.Having, off)
	if b.UnionNext != nil {
		VisitBlockExprs(b.UnionNext, off, visit)
	}
}

// AliasesOf returns the aliases of the block at the given depth offset
// that e references, descending into nested subqueries (whose references
// to that block appear at a correspondingly higher Depth).
func AliasesOf(an *Analysis, e Expr, offset int) map[string]bool {
	out := map[string]bool{}
	var visit func(x Expr, off int)
	visit = func(x Expr, off int) {
		if x == nil {
			return
		}
		for _, c := range ColRefs(x) {
			if c.Depth == off {
				out[c.Alias] = true
			}
		}
		for _, subSel := range SubSelects(x) {
			if blk := an.Blocks[subSel]; blk != nil {
				VisitBlockExprs(blk, off+1, visit)
			}
		}
	}
	visit(e, offset)
	return out
}

// BlockIsCorrelated reports whether blk (or any nested block) references
// columns from a scope enclosing blk itself.
func BlockIsCorrelated(an *Analysis, blk *Analyzed) bool {
	correlated := false
	var visit func(x Expr, depth int)
	visit = func(x Expr, depth int) {
		if x == nil {
			return
		}
		for _, c := range ColRefs(x) {
			if c.Depth > depth {
				correlated = true
			}
		}
		for _, subSel := range SubSelects(x) {
			if b := an.Blocks[subSel]; b != nil {
				VisitBlockExprs(b, depth+1, visit)
			}
		}
	}
	VisitBlockExprs(blk, 0, visit)
	return correlated
}

// OuterRefs returns the ColRefs inside blk (including nested blocks) that
// resolve exactly one scope outside blk — i.e. blk's direct correlation
// points.
func OuterRefs(an *Analysis, blk *Analyzed) []*ColRef {
	var out []*ColRef
	var visit func(x Expr, depth int)
	visit = func(x Expr, depth int) {
		if x == nil {
			return
		}
		for _, c := range ColRefs(x) {
			if c.Depth == depth+1 {
				out = append(out, c)
			}
		}
		for _, subSel := range SubSelects(x) {
			if b := an.Blocks[subSel]; b != nil {
				VisitBlockExprs(b, depth+1, visit)
			}
		}
	}
	VisitBlockExprs(blk, 0, visit)
	return out
}
