package sql

import (
	"encoding/binary"
	"slices"

	"repro/internal/codec"
	"repro/internal/relation"
)

// This file is the binary (de)serialization of partial aggregation
// state, so a distributed engine can ship sql.Aggregator accumulators
// between processes exactly as the simulated message plane ships them
// between partitions. The encoding is self-describing — it carries the
// function name and flags — because the receiving process rebuilds the
// accumulator without access to the sender's *FuncCall.

// AppendBinary appends a's complete partial state: function name, a
// flags byte (star, distinct), the observation count, the sum/min/max
// values, and (for DISTINCT) the deferred value set in a canonical
// order so the encoding of a given state is deterministic.
func (a *Aggregator) AppendBinary(b []byte) ([]byte, error) {
	b = codec.AppendString(b, a.fn.Name)
	var flags byte
	if a.fn.Star {
		flags |= 1
	}
	if a.distinct != nil {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.AppendVarint(b, a.count)
	var err error
	for _, v := range [...]relation.Value{a.sum, a.min, a.max} {
		if b, err = relation.AppendValue(b, v); err != nil {
			return nil, err
		}
	}
	if a.distinct != nil {
		vals := make([]relation.Value, 0, len(a.distinct))
		for v := range a.distinct {
			vals = append(vals, v)
		}
		slices.SortFunc(vals, func(x, y relation.Value) int {
			if x.Kind != y.Kind {
				return int(x.Kind) - int(y.Kind)
			}
			return x.Compare(y)
		})
		b = binary.AppendUvarint(b, uint64(len(vals)))
		for _, v := range vals {
			if b, err = relation.AppendValue(b, v); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// DecodeAggregator decodes one AppendBinary encoding from d. The
// rebuilt accumulator merges and finalizes exactly like the original;
// its FuncCall is synthesized from the encoded name and flags.
func DecodeAggregator(d *codec.Decoder) (*Aggregator, error) {
	name, err := d.Str()
	if err != nil {
		return nil, err
	}
	flags, err := d.Byte()
	if err != nil {
		return nil, err
	}
	a := NewAggregator(&FuncCall{Name: name, Star: flags&1 != 0, Distinct: flags&2 != 0})
	if a.count, err = d.Varint(); err != nil {
		return nil, err
	}
	for _, dst := range [...]*relation.Value{&a.sum, &a.min, &a.max} {
		if *dst, err = relation.DecodeValue(d); err != nil {
			return nil, err
		}
	}
	if a.distinct != nil {
		n, err := d.Length()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v, err := relation.DecodeValue(d)
			if err != nil {
				return nil, err
			}
			a.distinct[v] = struct{}{}
		}
	}
	return a, nil
}
