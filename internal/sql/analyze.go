package sql

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// BoundTable is one FROM-clause binding after analysis.
type BoundTable struct {
	Alias  string // lower-cased binding name
	Table  string // lower-cased relation name
	Schema *relation.Schema
}

// Analyzed is the analysis result for one query block.
type Analyzed struct {
	Sel      *Select
	Tables   []BoundTable
	OutNames []string
	OutKinds []relation.Kind
	HasAgg   bool
	// Aggregates in SELECT items and HAVING, in discovery order.
	Aggregates []*FuncCall
	// Parent is the enclosing block for correlated subqueries (nil at root).
	Parent *Analyzed
	// Next arm of a UNION ALL chain.
	UnionNext *Analyzed
}

// Analysis is the whole-query analysis: the root block plus every
// subquery block, addressable by its AST node.
type Analysis struct {
	Catalog *relation.Catalog
	Root    *Analyzed
	Blocks  map[*Select]*Analyzed
}

// Analyze resolves names and infers output schemas for sel and all of its
// subqueries against the catalog.
func Analyze(cat *relation.Catalog, sel *Select) (*Analysis, error) {
	a := &Analysis{Catalog: cat, Blocks: make(map[*Select]*Analyzed)}
	root, err := a.analyzeBlock(sel, nil)
	if err != nil {
		return nil, err
	}
	a.Root = root
	return a, nil
}

// AnalyzeString parses and analyzes in one step.
func AnalyzeString(cat *relation.Catalog, query string) (*Analysis, error) {
	sel, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Analyze(cat, sel)
}

func (a *Analysis) analyzeBlock(sel *Select, parent *Analyzed) (*Analyzed, error) {
	blk := &Analyzed{Sel: sel, Parent: parent}
	a.Blocks[sel] = blk

	// Bind FROM tables.
	seen := map[string]bool{}
	for _, fi := range sel.From {
		rel := a.Catalog.Get(fi.Ref.Table)
		if rel == nil {
			return nil, fmt.Errorf("sql: unknown table %q", fi.Ref.Table)
		}
		bt := BoundTable{
			Alias:  fi.Ref.Key(),
			Table:  strings.ToLower(rel.Name),
			Schema: rel.Schema,
		}
		if seen[bt.Alias] {
			return nil, fmt.Errorf("sql: duplicate table alias %q", bt.Alias)
		}
		seen[bt.Alias] = true
		blk.Tables = append(blk.Tables, bt)
	}

	// Expand SELECT *.
	if sel.Star {
		for _, bt := range blk.Tables {
			for _, col := range bt.Schema.Columns {
				sel.Items = append(sel.Items, SelectItem{
					Expr: &ColRef{Qualifier: bt.Alias, Column: col.Name},
				})
			}
		}
		sel.Star = false
	}

	// Resolve expressions.
	resolve := func(e Expr) error { return a.resolveExpr(e, blk) }
	for _, item := range sel.Items {
		if err := resolve(item.Expr); err != nil {
			return nil, err
		}
	}
	for _, fi := range sel.From {
		if fi.On != nil {
			if err := resolve(fi.On); err != nil {
				return nil, err
			}
		}
	}
	if sel.Where != nil {
		if err := resolve(sel.Where); err != nil {
			return nil, err
		}
	}
	for _, g := range sel.GroupBy {
		if err := resolve(g); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := resolve(sel.Having); err != nil {
			return nil, err
		}
	}

	// Aggregates and output schema.
	for _, item := range sel.Items {
		blk.Aggregates = append(blk.Aggregates, CollectAggregates(item.Expr)...)
	}
	if sel.Having != nil {
		blk.Aggregates = append(blk.Aggregates, CollectAggregates(sel.Having)...)
	}
	blk.HasAgg = len(blk.Aggregates) > 0

	for i, item := range sel.Items {
		name := item.Alias
		if name == "" {
			if c, ok := item.Expr.(*ColRef); ok {
				name = c.Column
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		blk.OutNames = append(blk.OutNames, name)
		blk.OutKinds = append(blk.OutKinds, a.inferKind(item.Expr, blk))
	}

	// UNION ALL arms share the enclosing scope's parent, not this block.
	if sel.Union != nil {
		next, err := a.analyzeBlock(sel.Union, parent)
		if err != nil {
			return nil, err
		}
		if len(next.OutNames) != len(blk.OutNames) {
			return nil, fmt.Errorf("sql: UNION ALL arms have different widths (%d vs %d)", len(blk.OutNames), len(next.OutNames))
		}
		blk.UnionNext = next
	}
	return blk, nil
}

// resolveExpr resolves column references and analyzes nested subqueries.
func (a *Analysis) resolveExpr(e Expr, blk *Analyzed) error {
	var resolveErr error
	walkExpr(e, func(x Expr) bool {
		if resolveErr != nil {
			return false
		}
		switch n := x.(type) {
		case *ColRef:
			resolveErr = a.resolveColRef(n, blk)
		case *Exists:
			_, resolveErr = a.analyzeBlock(n.Sub, blk)
			return false
		case *InSubquery:
			if resolveErr = a.resolveExpr(n.X, blk); resolveErr == nil {
				_, resolveErr = a.analyzeBlock(n.Sub, blk)
			}
			return false
		case *ScalarSubquery:
			_, resolveErr = a.analyzeBlock(n.Sub, blk)
			return false
		}
		return true
	})
	return resolveErr
}

func (a *Analysis) resolveColRef(c *ColRef, blk *Analyzed) error {
	qual := strings.ToLower(c.Qualifier)
	col := strings.ToLower(c.Column)
	depth := 0
	for scope := blk; scope != nil; scope = scope.Parent {
		for _, bt := range scope.Tables {
			if qual != "" && bt.Alias != qual {
				continue
			}
			if bt.Schema.Index(col) < 0 {
				if qual != "" {
					return fmt.Errorf("sql: table %q has no column %q", c.Qualifier, c.Column)
				}
				continue
			}
			if qual == "" {
				// Ensure uniqueness within this scope level.
				matches := 0
				for _, other := range scope.Tables {
					if other.Schema.Index(col) >= 0 {
						matches++
					}
				}
				if matches > 1 {
					return fmt.Errorf("sql: ambiguous column %q", c.Column)
				}
			}
			c.Alias = bt.Alias
			c.Table = bt.Table
			c.Column = col
			c.Depth = depth
			return nil
		}
		depth++
	}
	if qual != "" {
		return fmt.Errorf("sql: unknown table or alias %q", c.Qualifier)
	}
	return fmt.Errorf("sql: unknown column %q", c.Column)
}

// inferKind computes the (approximate) output kind of an expression.
func (a *Analysis) inferKind(e Expr, blk *Analyzed) relation.Kind {
	switch n := e.(type) {
	case *Literal:
		return n.Val.Kind
	case *ColRef:
		scope := blk
		for d := 0; d < n.Depth && scope != nil; d++ {
			scope = scope.Parent
		}
		if scope != nil {
			for _, bt := range scope.Tables {
				if bt.Alias == n.Alias {
					if i := bt.Schema.Index(n.Column); i >= 0 {
						return bt.Schema.Columns[i].Kind
					}
				}
			}
		}
		return relation.KindNull
	case *Unary:
		if n.Op == "NOT" {
			return relation.KindBool
		}
		return a.inferKind(n.X, blk)
	case *Binary:
		switch n.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return relation.KindBool
		case "||":
			return relation.KindString
		}
		lk, rk := a.inferKind(n.L, blk), a.inferKind(n.R, blk)
		if n.Op == "/" || lk == relation.KindFloat || rk == relation.KindFloat {
			return relation.KindFloat
		}
		if lk == relation.KindDate {
			return relation.KindDate
		}
		return relation.KindInt
	case *Between, *InList, *InSubquery, *Exists, *Like, *IsNull:
		return relation.KindBool
	case *Case:
		if len(n.Whens) > 0 {
			return a.inferKind(n.Whens[0].Then, blk)
		}
		return relation.KindNull
	case *ScalarSubquery:
		if sub, ok := a.Blocks[n.Sub]; ok && len(sub.OutKinds) == 1 {
			return sub.OutKinds[0]
		}
		return relation.KindFloat
	case *FuncCall:
		switch n.Name {
		case "COUNT":
			return relation.KindInt
		case "AVG":
			return relation.KindFloat
		case "SUM":
			if len(n.Args) == 1 && a.inferKind(n.Args[0], blk) == relation.KindInt {
				return relation.KindInt
			}
			return relation.KindFloat
		case "MIN", "MAX":
			if len(n.Args) == 1 {
				return a.inferKind(n.Args[0], blk)
			}
		case "YEAR", "MONTH", "DAY":
			return relation.KindInt
		}
		return relation.KindFloat
	}
	return relation.KindNull
}

// OutputSchema builds the relation schema of the block's result.
func (b *Analyzed) OutputSchema() *relation.Schema {
	cols := make([]relation.Column, len(b.OutNames))
	used := map[string]int{}
	for i, n := range b.OutNames {
		name := n
		if c := used[strings.ToLower(n)]; c > 0 {
			name = fmt.Sprintf("%s_%d", n, c)
		}
		used[strings.ToLower(n)]++
		cols[i] = relation.Column{Name: name, Kind: b.OutKinds[i]}
	}
	return relation.MustSchema(cols...)
}

// FindTable returns the bound table for an alias, or nil.
func (b *Analyzed) FindTable(alias string) *BoundTable {
	alias = strings.ToLower(alias)
	for i := range b.Tables {
		if b.Tables[i].Alias == alias {
			return &b.Tables[i]
		}
	}
	return nil
}
