package sql

import (
	"testing"

	"repro/internal/relation"
)

func TestCloneSelectIsDeep(t *testing.T) {
	orig := MustParse(`SELECT a, COUNT(*) FROM r WHERE a > 1 AND b IN (SELECT b FROM s)
		GROUP BY a HAVING COUNT(*) > 2 UNION ALL SELECT a, 0 FROM r`)
	cl := CloneSelect(orig)

	// Mutate the clone's resolved fields; the original must not change.
	cl.Items[0].Expr.(*ColRef).Alias = "mutated"
	cl.Where.(*Binary).L.(*Binary).Op = "<"
	cl.Union.Items[0].Expr.(*ColRef).Column = "zzz"

	if orig.Items[0].Expr.(*ColRef).Alias == "mutated" {
		t.Error("clone shares item exprs")
	}
	if orig.Where.(*Binary).L.(*Binary).Op != ">" {
		t.Error("clone shares where exprs")
	}
	if orig.Union.Items[0].Expr.(*ColRef).Column == "zzz" {
		t.Error("clone shares union arm")
	}
	// Subquery Selects are distinct objects too.
	origSub := SubSelects(orig.Where)[0]
	clSub := SubSelects(cl.Where)[0]
	if origSub == clSub {
		t.Error("clone shares subquery Select")
	}
}

func TestCloneExprCoversAllNodes(t *testing.T) {
	exprs := []Expr{
		&Literal{Val: relation.Int(1)},
		&ColRef{Column: "a"},
		&AggRef{Slot: 2},
		&Unary{Op: "NOT", X: &Literal{Val: relation.Bool(true)}},
		&Between{X: &ColRef{Column: "a"}, Lo: &Literal{}, Hi: &Literal{}},
		&InList{X: &ColRef{Column: "a"}, List: []Expr{&Literal{}}},
		&Like{X: &ColRef{Column: "a"}, Pattern: "x%"},
		&IsNull{X: &ColRef{Column: "a"}},
		&Case{Whens: []When{{Cond: &Literal{}, Then: &Literal{}}}, Else: &Literal{}},
		&FuncCall{Name: "YEAR", Args: []Expr{&ColRef{Column: "d"}}},
		&ScalarSubquery{Sub: MustParse("SELECT 1 FROM r")},
		&Exists{Sub: MustParse("SELECT 1 FROM r"), Not: true},
		&InSubquery{X: &ColRef{Column: "a"}, Sub: MustParse("SELECT 1 FROM r")},
	}
	for _, e := range exprs {
		cl := CloneExpr(e)
		if cl == nil {
			t.Errorf("clone of %T is nil", e)
		}
		if cl == e {
			t.Errorf("clone of %T aliases the original", e)
		}
	}
	if CloneExpr(nil) != nil {
		t.Error("clone of nil should be nil")
	}
}

func TestAliasesOfDescendsSubqueries(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat,
		"SELECT r.a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a AND s.c > 0)")
	if err != nil {
		t.Fatal(err)
	}
	conj := an.Root.Sel.Where
	refs := AliasesOf(an, conj, 0)
	if !refs["r"] {
		t.Errorf("correlated outer ref not attributed to current block: %v", refs)
	}
	if refs["s"] {
		t.Errorf("subquery-local alias leaked into current block: %v", refs)
	}
}

func TestBlockIsCorrelated(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat,
		"SELECT a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a) AND a IN (SELECT a FROM s)")
	if err != nil {
		t.Fatal(err)
	}
	conjs := SplitConjuncts(an.Root.Sel.Where)
	corr := an.Blocks[conjs[0].(*Exists).Sub]
	uncorr := an.Blocks[conjs[1].(*InSubquery).Sub]
	if !BlockIsCorrelated(an, corr) {
		t.Error("EXISTS block should be correlated")
	}
	if BlockIsCorrelated(an, uncorr) {
		t.Error("IN block should not be correlated")
	}
	if BlockIsCorrelated(an, an.Root) {
		t.Error("root block is never correlated")
	}
}

func TestOuterRefs(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat,
		"SELECT a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a AND s.c > r.a)")
	if err != nil {
		t.Fatal(err)
	}
	sub := an.Blocks[an.Root.Sel.Where.(*Exists).Sub]
	refs := OuterRefs(an, sub)
	if len(refs) != 2 {
		t.Fatalf("outer refs = %d, want 2", len(refs))
	}
	for _, r := range refs {
		if r.Alias != "r" || r.Column != "a" {
			t.Errorf("outer ref = %+v", r)
		}
	}
}

func TestSubSelectsFindsAllForms(t *testing.T) {
	s := MustParse(`SELECT (SELECT 1 FROM r) FROM r
		WHERE EXISTS (SELECT 1 FROM s) AND a IN (SELECT a FROM s)
		AND CASE WHEN b = 'x' THEN a ELSE (SELECT 2 FROM s) END > 0`)
	n := len(SubSelects(s.Items[0].Expr)) + len(SubSelects(s.Where))
	if n != 4 {
		t.Errorf("subselects = %d, want 4", n)
	}
}
