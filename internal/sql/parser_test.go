package sql

import (
	"testing"

	"repro/internal/relation"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', 1.5 <> 2 -- trailing\nFROM t;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "1.5", "<>", "2", "FROM", "t", ";"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := Lex("SELECT @"); err == nil {
		t.Error("bad character should error")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := MustParse("SELECT a, b AS bee FROM t WHERE a = 1 GROUP BY a HAVING COUNT(*) > 2")
	if len(s.Items) != 2 || s.Items[1].Alias != "bee" {
		t.Errorf("items = %+v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Ref.Table != "t" {
		t.Errorf("from = %+v", s.From)
	}
	if s.Where == nil || len(s.GroupBy) != 1 || s.Having == nil {
		t.Error("missing clauses")
	}
}

func TestParseJoins(t *testing.T) {
	s := MustParse(`SELECT * FROM a, b JOIN c ON a.x = c.x LEFT JOIN d ON c.y = d.y
		RIGHT OUTER JOIN e ON d.z = e.z FULL OUTER JOIN f ON e.w = f.w`)
	types := []JoinType{JoinComma, JoinComma, JoinInner, JoinLeft, JoinRight, JoinFull}
	if len(s.From) != len(types) {
		t.Fatalf("from count = %d", len(s.From))
	}
	for i, want := range types {
		if s.From[i].Join != want {
			t.Errorf("from[%d].Join = %v, want %v", i, s.From[i].Join, want)
		}
		if i >= 2 && s.From[i].On == nil {
			t.Errorf("from[%d] missing ON", i)
		}
	}
}

func TestParseSubqueries(t *testing.T) {
	s := MustParse(`SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)
		AND b IN (SELECT b FROM v) AND c NOT IN (1, 2, 3)
		AND d > (SELECT MAX(d) FROM w)`)
	conjs := SplitConjuncts(s.Where)
	if len(conjs) != 4 {
		t.Fatalf("conjuncts = %d, want 4", len(conjs))
	}
	if _, ok := conjs[0].(*Exists); !ok {
		t.Errorf("conj 0 = %T", conjs[0])
	}
	if in, ok := conjs[1].(*InSubquery); !ok || in.Not {
		t.Errorf("conj 1 = %T", conjs[1])
	}
	if in, ok := conjs[2].(*InList); !ok || !in.Not {
		t.Errorf("conj 2 = %T", conjs[2])
	}
	if b, ok := conjs[3].(*Binary); !ok || b.Op != ">" {
		t.Errorf("conj 3 = %T", conjs[3])
	} else if _, ok := b.R.(*ScalarSubquery); !ok {
		t.Errorf("conj 3 rhs = %T", b.R)
	}
}

func TestParseNotFolding(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
	ex, ok := s.Where.(*Exists)
	if !ok || !ex.Not {
		t.Errorf("NOT EXISTS should fold into Exists.Not, got %T", s.Where)
	}
}

func TestParseDateAndInterval(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE d >= DATE '1995-01-01' AND d < DATE '1995-01-01' + INTERVAL '90' DAY")
	conjs := SplitConjuncts(s.Where)
	b := conjs[0].(*Binary)
	lit := b.R.(*Literal)
	if lit.Val.Kind != relation.KindDate {
		t.Errorf("date literal kind = %v", lit.Val.Kind)
	}
	add := conjs[1].(*Binary).R.(*Binary)
	if add.Op != "+" {
		t.Errorf("interval arithmetic = %v", add.Op)
	}
	if iv := add.R.(*Literal); iv.Val != relation.Int(90) {
		t.Errorf("interval = %v", iv.Val)
	}
}

func TestParseCase(t *testing.T) {
	s := MustParse("SELECT CASE WHEN a = 1 THEN 'one' WHEN a = 2 THEN 'two' ELSE 'many' END FROM t")
	c, ok := s.Items[0].Expr.(*Case)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %+v", s.Items[0].Expr)
	}
}

func TestParseAggregates(t *testing.T) {
	s := MustParse("SELECT COUNT(*), COUNT(DISTINCT a), SUM(b * c) FROM t")
	f0 := s.Items[0].Expr.(*FuncCall)
	if !f0.Star || f0.Name != "COUNT" {
		t.Errorf("f0 = %+v", f0)
	}
	f1 := s.Items[1].Expr.(*FuncCall)
	if !f1.Distinct {
		t.Errorf("f1 = %+v", f1)
	}
	f2 := s.Items[2].Expr.(*FuncCall)
	if f2.Name != "SUM" || len(f2.Args) != 1 {
		t.Errorf("f2 = %+v", f2)
	}
	aggs := CollectAggregates(s.Items[2].Expr)
	if len(aggs) != 1 {
		t.Errorf("CollectAggregates = %d", len(aggs))
	}
}

func TestParseUnionAll(t *testing.T) {
	s := MustParse("SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v")
	n := 0
	for cur := s; cur != nil; cur = cur.Union {
		n++
	}
	if n != 3 {
		t.Errorf("union arms = %d, want 3", n)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := MustParse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := s.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %T %v", s.Where, s.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != "AND" {
		t.Errorf("AND should bind tighter, got %T", or.R)
	}

	s2 := MustParse("SELECT 1 + 2 * 3 FROM t")
	add := s2.Items[0].Expr.(*Binary)
	if add.Op != "+" {
		t.Errorf("top arith = %v", add.Op)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t trailing garbage (",
		"SELECT a FROM t WHERE a LIKE b",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT CASE END FROM t",
		"SELECT a FROM t JOIN u",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseNegativeLiteral(t *testing.T) {
	s := MustParse("SELECT -5, -2.5 FROM t")
	if s.Items[0].Expr.(*Literal).Val != relation.Int(-5) {
		t.Error("negative int literal not folded")
	}
	if s.Items[1].Expr.(*Literal).Val != relation.Float(-2.5) {
		t.Error("negative float literal not folded")
	}
}
