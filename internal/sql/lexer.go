package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// Lex tokenizes a SQL string.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if _, ok := keywords[upper]; ok {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < n && (input[i] >= '0' && input[i] <= '9') {
				i++
			}
			if i < n && input[i] == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && input[i] >= '0' && input[i] <= '9' {
					i++
				}
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{Kind: kind, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "!=", "<=", ">=", "||":
				toks = append(toks, Token{Kind: TokOp, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';', '%':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", rune(c), i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || (c >= '0' && c <= '9')
}
