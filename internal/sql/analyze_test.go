package sql

import (
	"testing"

	"repro/internal/relation"
)

func testCatalog() *relation.Catalog {
	cat := relation.NewCatalog()
	r := relation.New("r", relation.MustSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("b", relation.KindString),
		relation.Col("d", relation.KindDate)))
	cat.MustAdd(r)
	s := relation.New("s", relation.MustSchema(
		relation.Col("a", relation.KindInt),
		relation.Col("c", relation.KindFloat)))
	cat.MustAdd(s)
	return cat
}

func TestAnalyzeResolution(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat, "SELECT r.a, c FROM r, s WHERE r.a = s.a")
	if err != nil {
		t.Fatal(err)
	}
	blk := an.Root
	if len(blk.Tables) != 2 {
		t.Fatalf("tables = %d", len(blk.Tables))
	}
	// Unqualified c resolves uniquely to s.
	c := blk.Sel.Items[1].Expr.(*ColRef)
	if c.Alias != "s" || c.Table != "s" || c.Depth != 0 {
		t.Errorf("c resolved to %+v", c)
	}
	if blk.OutNames[0] != "a" || blk.OutNames[1] != "c" {
		t.Errorf("out names = %v", blk.OutNames)
	}
	if blk.OutKinds[1] != relation.KindFloat {
		t.Errorf("kind of c = %v", blk.OutKinds[1])
	}
}

func TestAnalyzeAmbiguousAndUnknown(t *testing.T) {
	cat := testCatalog()
	cases := []string{
		"SELECT a FROM r, s",                           // ambiguous
		"SELECT z FROM r",                              // unknown column
		"SELECT r.z FROM r",                            // unknown qualified column
		"SELECT x.a FROM r",                            // unknown alias
		"SELECT a FROM nope",                           // unknown table
		"SELECT r.a FROM r, r",                         // duplicate alias
		"SELECT a FROM r UNION ALL SELECT a, b FROM r", // width mismatch
	}
	for _, q := range cases {
		if _, err := AnalyzeString(cat, q); err == nil {
			t.Errorf("Analyze(%q) should fail", q)
		}
	}
}

func TestAnalyzeAlias(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat, "SELECT x.a FROM r AS x WHERE x.b = 'q'")
	if err != nil {
		t.Fatal(err)
	}
	c := an.Root.Sel.Items[0].Expr.(*ColRef)
	if c.Alias != "x" || c.Table != "r" {
		t.Errorf("aliased ref = %+v", c)
	}
}

func TestAnalyzeCorrelatedDepth(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat,
		"SELECT a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a)")
	if err != nil {
		t.Fatal(err)
	}
	ex := an.Root.Sel.Where.(*Exists)
	sub := an.Blocks[ex.Sub]
	if sub == nil {
		t.Fatal("subquery block not analyzed")
	}
	if sub.Parent != an.Root {
		t.Error("subquery parent not linked")
	}
	eq := ex.Sub.Where.(*Binary)
	inner := eq.L.(*ColRef)
	outer := eq.R.(*ColRef)
	if inner.Depth != 0 || inner.Alias != "s" {
		t.Errorf("inner ref = %+v", inner)
	}
	if outer.Depth != 1 || outer.Alias != "r" {
		t.Errorf("outer ref should have depth 1, got %+v", outer)
	}
}

func TestAnalyzeStarExpansion(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat, "SELECT * FROM r, s")
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Root.Sel.Items) != 5 {
		t.Errorf("star expanded to %d items", len(an.Root.Sel.Items))
	}
	schema := an.Root.OutputSchema()
	// Duplicate column name a gets deduped.
	if schema.Len() != 5 {
		t.Errorf("schema = %v", schema)
	}
	if schema.Index("a_1") < 0 {
		t.Errorf("expected deduped a_1 in %v", schema)
	}
}

func TestAnalyzeAggregates(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat,
		"SELECT b, SUM(a), COUNT(*) FROM r GROUP BY b HAVING SUM(a) > 10")
	if err != nil {
		t.Fatal(err)
	}
	if !an.Root.HasAgg {
		t.Error("HasAgg should be true")
	}
	if len(an.Root.Aggregates) != 3 { // SUM, COUNT, SUM (having)
		t.Errorf("aggregates = %d", len(an.Root.Aggregates))
	}
	if an.Root.OutKinds[1] != relation.KindInt {
		t.Errorf("SUM(int) kind = %v", an.Root.OutKinds[1])
	}
	if an.Root.OutKinds[2] != relation.KindInt {
		t.Errorf("COUNT kind = %v", an.Root.OutKinds[2])
	}
}

func TestAnalyzeKindInference(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat,
		"SELECT r.a + 1, r.a / 2, c * 2, r.a = 1, b || 'x', YEAR(d), AVG(r.a) FROM r, s GROUP BY r.a, b, c, d")
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Kind{
		relation.KindInt, relation.KindFloat, relation.KindFloat,
		relation.KindBool, relation.KindString, relation.KindInt, relation.KindFloat,
	}
	for i, k := range want {
		if an.Root.OutKinds[i] != k {
			t.Errorf("kind[%d] = %v, want %v", i, an.Root.OutKinds[i], k)
		}
	}
}

func TestFindTable(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat, "SELECT r.a FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if an.Root.FindTable("R") == nil {
		t.Error("FindTable should be case-insensitive")
	}
	if an.Root.FindTable("zz") != nil {
		t.Error("unknown alias should be nil")
	}
}
