package sql

// CloneSelect deep-copies a Select and all nested expressions and
// subqueries. The TAG-join executor uses it to build decorrelated
// variants of subqueries without mutating the shared AST.
func CloneSelect(s *Select) *Select {
	if s == nil {
		return nil
	}
	out := &Select{
		Distinct: s.Distinct,
		Star:     s.Star,
		Where:    CloneExpr(s.Where),
		Having:   CloneExpr(s.Having),
		Union:    CloneSelect(s.Union),
	}
	for _, it := range s.Items {
		out.Items = append(out.Items, SelectItem{Expr: CloneExpr(it.Expr), Alias: it.Alias})
	}
	for _, fi := range s.From {
		out.From = append(out.From, FromItem{Ref: fi.Ref, Join: fi.Join, On: CloneExpr(fi.On)})
	}
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, CloneExpr(g))
	}
	return out
}

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Literal:
		v := *x
		return &v
	case *ColRef:
		v := *x
		return &v
	case *AggRef:
		v := *x
		return &v
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Between:
		return &Between{X: CloneExpr(x.X), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Not: x.Not}
	case *InList:
		out := &InList{X: CloneExpr(x.X), Not: x.Not}
		for _, it := range x.List {
			out.List = append(out.List, CloneExpr(it))
		}
		return out
	case *InSubquery:
		return &InSubquery{X: CloneExpr(x.X), Sub: CloneSelect(x.Sub), Not: x.Not}
	case *Exists:
		return &Exists{Sub: CloneSelect(x.Sub), Not: x.Not}
	case *ScalarSubquery:
		return &ScalarSubquery{Sub: CloneSelect(x.Sub)}
	case *Like:
		return &Like{X: CloneExpr(x.X), Pattern: x.Pattern, Not: x.Not}
	case *IsNull:
		return &IsNull{X: CloneExpr(x.X), Not: x.Not}
	case *Case:
		out := &Case{Else: CloneExpr(x.Else)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, When{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)})
		}
		return out
	case *FuncCall:
		out := &FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, CloneExpr(a))
		}
		return out
	}
	return e
}
