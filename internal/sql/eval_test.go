package sql

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// evalExpr parses "SELECT <expr> FROM r" against a one-table catalog and
// evaluates it under the supplied row.
func evalExpr(t *testing.T, exprSQL string, row relation.Tuple) relation.Value {
	t.Helper()
	cat := testCatalog()
	an, err := AnalyzeString(cat, "SELECT "+exprSQL+" FROM r")
	if err != nil {
		t.Fatalf("analyze %q: %v", exprSQL, err)
	}
	env := &Env{
		Binding: Binding{"r.a": 0, "r.b": 1, "r.d": 2},
		Row:     row,
	}
	v, err := Eval(an.Root.Sel.Items[0].Expr, env, nil)
	if err != nil {
		t.Fatalf("eval %q: %v", exprSQL, err)
	}
	return v
}

func TestEvalArithmeticAndComparison(t *testing.T) {
	row := relation.Tuple{relation.Int(7), relation.Str("abc"), relation.DateOf(2020, 6, 15)}
	cases := []struct {
		expr string
		want relation.Value
	}{
		{"a + 1", relation.Int(8)},
		{"a - 10", relation.Int(-3)},
		{"a * 2", relation.Int(14)},
		{"a / 2", relation.Float(3.5)},
		{"-a", relation.Int(-7)},
		{"a = 7", relation.Bool(true)},
		{"a <> 7", relation.Bool(false)},
		{"a < 10 AND a > 5", relation.Bool(true)},
		{"a < 5 OR a > 6", relation.Bool(true)},
		{"NOT a = 7", relation.Bool(false)},
		{"a BETWEEN 5 AND 10", relation.Bool(true)},
		{"a NOT BETWEEN 5 AND 10", relation.Bool(false)},
		{"a IN (1, 7, 9)", relation.Bool(true)},
		{"a NOT IN (1, 7, 9)", relation.Bool(false)},
		{"b LIKE 'a%'", relation.Bool(true)},
		{"b LIKE '%b%'", relation.Bool(true)},
		{"b LIKE 'a_c'", relation.Bool(true)},
		{"b NOT LIKE 'z%'", relation.Bool(true)},
		{"b || 'd'", relation.Str("abcd")},
		{"a IS NULL", relation.Bool(false)},
		{"a IS NOT NULL", relation.Bool(true)},
		{"YEAR(d)", relation.Int(2020)},
		{"MONTH(d)", relation.Int(6)},
		{"DAY(d)", relation.Int(15)},
		{"CASE WHEN a > 5 THEN 'big' ELSE 'small' END", relation.Str("big")},
		{"CASE WHEN a > 50 THEN 'big' END", relation.Null},
		{"d + 10 > d", relation.Bool(true)},
	}
	for _, c := range cases {
		if got := evalExpr(t, c.expr, row); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	row := relation.Tuple{relation.Null, relation.Null, relation.Null}
	cases := []struct {
		expr string
		want relation.Value
	}{
		{"a = 1", relation.Null},
		{"a = 1 AND 1 = 1", relation.Null},
		{"a = 1 AND 1 = 2", relation.Bool(false)},
		{"a = 1 OR 1 = 1", relation.Bool(true)},
		{"a = 1 OR 1 = 2", relation.Null},
		{"NOT a = 1", relation.Null},
		{"a IS NULL", relation.Bool(true)},
		{"a + 1", relation.Null},
		{"a IN (1, 2)", relation.Null},
		{"a BETWEEN 1 AND 2", relation.Null},
		{"b LIKE 'x%'", relation.Null},
		{"5 IN (1, a)", relation.Null}, // no match but NULL present
		{"1 IN (1, a)", relation.Bool(true)},
	}
	for _, c := range cases {
		if got := evalExpr(t, c.expr, row); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "x%", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%", true},
		{"abc", "a%c%", true},
		{"special offer", "%special%offer%", true},
	}
	for _, c := range cases {
		if got := MatchLike(c.s, c.p); got != c.want {
			t.Errorf("MatchLike(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestMatchLikePrefixProperty(t *testing.T) {
	f := func(s string) bool {
		return MatchLike(s, "%") && MatchLike(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalCorrelatedOuterRef(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat, "SELECT a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a)")
	if err != nil {
		t.Fatal(err)
	}
	ex := an.Root.Sel.Where.(*Exists)
	cmp := ex.Sub.Where.(*Binary)

	outerEnv := &Env{Binding: Binding{"r.a": 0}, Row: relation.Tuple{relation.Int(42)}}
	innerEnv := &Env{Binding: Binding{"s.a": 0}, Row: relation.Tuple{relation.Int(42)}, Parent: outerEnv}
	v, err := Eval(cmp, innerEnv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != relation.Bool(true) {
		t.Errorf("correlated compare = %v", v)
	}
}

func TestEvalSubqueryCallback(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat, "SELECT a FROM r WHERE a IN (SELECT a FROM s) AND EXISTS (SELECT 1 FROM s) AND a > (SELECT c FROM s)")
	if err != nil {
		t.Fatal(err)
	}
	subResult := relation.New("sub", relation.MustSchema(relation.Col("a", relation.KindInt)))
	subResult.MustAppend(relation.Int(5))
	subq := func(sub *Select, env *Env) (*relation.Relation, error) {
		return subResult, nil
	}
	env := &Env{Binding: Binding{"r.a": 0}, Row: relation.Tuple{relation.Int(5)}}
	conjs := SplitConjuncts(an.Root.Sel.Where)
	if v, _ := Eval(conjs[0], env, subq); v != relation.Bool(true) {
		t.Errorf("IN subquery = %v", v)
	}
	if v, _ := Eval(conjs[1], env, subq); v != relation.Bool(true) {
		t.Errorf("EXISTS = %v", v)
	}
	if v, _ := Eval(conjs[2], env, subq); v != relation.Bool(false) {
		t.Errorf("scalar compare = %v", v)
	}
}

func TestAggregator(t *testing.T) {
	sum := NewAggregator(&FuncCall{Name: "SUM"})
	avg := NewAggregator(&FuncCall{Name: "AVG"})
	cnt := NewAggregator(&FuncCall{Name: "COUNT"})
	cntStar := NewAggregator(&FuncCall{Name: "COUNT", Star: true})
	mn := NewAggregator(&FuncCall{Name: "MIN"})
	mx := NewAggregator(&FuncCall{Name: "MAX"})
	dcnt := NewAggregator(&FuncCall{Name: "COUNT", Distinct: true})

	vals := []relation.Value{relation.Int(3), relation.Int(1), relation.Null, relation.Int(3)}
	for _, v := range vals {
		sum.Observe(v)
		avg.Observe(v)
		cnt.Observe(v)
		cntStar.Observe(v)
		mn.Observe(v)
		mx.Observe(v)
		dcnt.Observe(v)
	}
	if sum.Result() != relation.Int(7) {
		t.Errorf("SUM = %v", sum.Result())
	}
	if avg.Result() != relation.Float(7.0/3.0) {
		t.Errorf("AVG = %v", avg.Result())
	}
	if cnt.Result() != relation.Int(3) {
		t.Errorf("COUNT = %v (NULL must be skipped)", cnt.Result())
	}
	if cntStar.Result() != relation.Int(4) {
		t.Errorf("COUNT(*) = %v", cntStar.Result())
	}
	if mn.Result() != relation.Int(1) || mx.Result() != relation.Int(3) {
		t.Errorf("MIN/MAX = %v/%v", mn.Result(), mx.Result())
	}
	if dcnt.Result() != relation.Int(2) {
		t.Errorf("COUNT(DISTINCT) = %v", dcnt.Result())
	}
}

func TestAggregatorMerge(t *testing.T) {
	a := NewAggregator(&FuncCall{Name: "SUM"})
	b := NewAggregator(&FuncCall{Name: "SUM"})
	a.Observe(relation.Int(1))
	b.Observe(relation.Int(2))
	b.Observe(relation.Int(3))
	a.Merge(b)
	if a.Result() != relation.Int(6) {
		t.Errorf("merged SUM = %v", a.Result())
	}
	empty := NewAggregator(&FuncCall{Name: "SUM"})
	a.Merge(empty)
	if a.Result() != relation.Int(6) {
		t.Errorf("merge with empty = %v", a.Result())
	}
	mn := NewAggregator(&FuncCall{Name: "MIN"})
	mn2 := NewAggregator(&FuncCall{Name: "MIN"})
	mn.Observe(relation.Int(5))
	mn2.Observe(relation.Int(2))
	mn.Merge(mn2)
	if mn.Result() != relation.Int(2) {
		t.Errorf("merged MIN = %v", mn.Result())
	}
}

func TestRewriteAggregates(t *testing.T) {
	cat := testCatalog()
	an, err := AnalyzeString(cat, "SELECT SUM(a) + COUNT(*) * 2 FROM r")
	if err != nil {
		t.Fatal(err)
	}
	orig := an.Root.Sel.Items[0].Expr
	slots := map[*FuncCall]int{}
	rewritten := RewriteAggregates(orig, func(f *FuncCall) int {
		if s, ok := slots[f]; ok {
			return s
		}
		s := len(slots)
		slots[f] = s
		return s
	})
	if len(slots) != 2 {
		t.Fatalf("slots = %d", len(slots))
	}
	env := &Env{Aggs: []relation.Value{relation.Int(10), relation.Int(3)}}
	v, err := Eval(rewritten, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != relation.Int(16) {
		t.Errorf("rewritten eval = %v, want 16", v)
	}
	// Original AST is untouched.
	if _, ok := orig.(*Binary).L.(*FuncCall); !ok {
		t.Error("original tree was mutated")
	}
	// Aggregates inside the original still error.
	if _, err := Eval(orig, env, nil); err == nil {
		t.Error("aggregate outside context should error")
	}
}
