// Package sql implements the SQL frontend of the reproduction: a lexer,
// a recursive-descent parser producing an AST, a name-resolution analyzer,
// and a row-at-a-time expression evaluator shared by the TAG-join executor
// and the baseline relational engines.
//
// The dialect covers the query shapes of the paper's TPC-H/TPC-DS
// workloads (§8.1.1): SELECT [DISTINCT] with expressions and aggregates,
// FROM with comma joins and INNER/LEFT/RIGHT/FULL OUTER JOIN ... ON,
// WHERE with AND/OR/NOT, comparisons, BETWEEN, IN (list or subquery),
// LIKE, EXISTS/NOT EXISTS, scalar subqueries (including correlated ones),
// GROUP BY and HAVING. ORDER BY and LIMIT are intentionally absent — the
// paper runs all queries without them.
package sql

import "fmt"

// TokKind classifies lexer tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokOp    // = <> != < <= > >= + - * / ( ) , . ;
	TokParam // unused placeholder for future
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased, identifiers preserved
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords recognized by the lexer (value is struct{} set).
var keywords = map[string]struct{}{
	"SELECT": {}, "DISTINCT": {}, "FROM": {}, "WHERE": {}, "GROUP": {},
	"BY": {}, "HAVING": {}, "AS": {}, "AND": {}, "OR": {}, "NOT": {},
	"IN": {}, "EXISTS": {}, "BETWEEN": {}, "LIKE": {}, "IS": {},
	"NULL": {}, "TRUE": {}, "FALSE": {}, "JOIN": {}, "INNER": {},
	"LEFT": {}, "RIGHT": {}, "FULL": {}, "OUTER": {}, "ON": {},
	"CASE": {}, "WHEN": {}, "THEN": {}, "ELSE": {}, "END": {},
	"DATE": {}, "INTERVAL": {}, "DAY": {}, "MONTH": {}, "YEAR": {},
	"UNION": {}, "ALL": {},
}
