package sql

import (
	"strconv"
	"strings"
)

// Fingerprint returns a normalized form of a SQL string suitable as a
// prepared-statement cache key: two queries that differ only in
// whitespace, keyword/identifier case, or numeric literal spelling map
// to the same fingerprint. Literal *values* are preserved — the analyzed
// plan depends on them (e.g. decorrelation lookup tables), so only
// lexical noise is folded, never semantics.
//
// Fingerprint is token-exact: it fails (returning the error from the
// lexer) on input the dialect cannot tokenize, so cache keys are only
// ever built from lexable queries.
func Fingerprint(query string) (string, error) {
	toks, err := Lex(query)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(query))
	for i, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if i > 0 && needsSpace(toks[i-1], t) {
			b.WriteByte(' ')
		}
		switch t.Kind {
		case TokKeyword:
			b.WriteString(t.Text) // already upper-cased by the lexer
		case TokIdent:
			b.WriteString(strings.ToLower(t.Text))
		case TokInt:
			b.WriteString(t.Text)
		case TokFloat:
			// Fold "1.50" / "1.5" / "15e-1" to one spelling.
			if f, ferr := strconv.ParseFloat(t.Text, 64); ferr == nil {
				b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
			} else {
				b.WriteString(t.Text)
			}
		case TokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			b.WriteByte('\'')
		default:
			b.WriteString(t.Text)
		}
	}
	return b.String(), nil
}

// needsSpace reports whether a separator is required between two adjacent
// normalized tokens so that re-lexing the fingerprint yields the same
// token stream (words must not fuse; operators never fuse with words in
// this dialect).
func needsSpace(prev, cur Token) bool {
	wordy := func(t Token) bool {
		switch t.Kind {
		case TokKeyword, TokIdent, TokInt, TokFloat, TokString:
			return true
		}
		return false
	}
	if wordy(prev) && wordy(cur) {
		return true
	}
	// Keep "a . b" unfused but compact: dots and commas bind tightly.
	switch cur.Text {
	case ".", ",", ")", ";":
		return false
	}
	if prev.Text == "." || prev.Text == "(" {
		return false
	}
	return wordy(prev) || wordy(cur)
}
