package sql

import "testing"

func TestFingerprintNormalizes(t *testing.T) {
	groups := [][]string{
		{
			"SELECT a FROM t WHERE x = 1",
			"select  a\nfrom t  where x=1",
			"Select A From T Where X = 1",
		},
		{
			"SELECT COUNT(*) FROM t WHERE p = 1.50",
			"SELECT count( * ) FROM t WHERE p = 1.5",
		},
		{
			"SELECT a FROM t WHERE s = 'It''s'",
			"SELECT a FROM t WHERE s='It''s'",
		},
	}
	for gi, g := range groups {
		want, err := Fingerprint(g[0])
		if err != nil {
			t.Fatalf("group %d: %v", gi, err)
		}
		for _, q := range g[1:] {
			got, err := Fingerprint(q)
			if err != nil {
				t.Fatalf("group %d %q: %v", gi, q, err)
			}
			if got != want {
				t.Errorf("group %d: %q -> %q, want %q", gi, q, got, want)
			}
		}
	}
}

func TestFingerprintDistinguishesLiterals(t *testing.T) {
	pairs := [][2]string{
		{"SELECT a FROM t WHERE x = 1", "SELECT a FROM t WHERE x = 2"},
		{"SELECT a FROM t WHERE s = 'x'", "SELECT a FROM t WHERE s = 'y'"},
		{"SELECT a FROM t", "SELECT b FROM t"},
		// Case differs inside a string literal: semantically distinct.
		{"SELECT a FROM t WHERE s = 'abc'", "SELECT a FROM t WHERE s = 'ABC'"},
	}
	for i, p := range pairs {
		a, err1 := Fingerprint(p[0])
		b, err2 := Fingerprint(p[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("pair %d: %v %v", i, err1, err2)
		}
		if a == b {
			t.Errorf("pair %d: %q and %q collide on %q", i, p[0], p[1], a)
		}
	}
}

// TestFingerprintRoundTrips: the fingerprint must itself lex and parse to
// the same normalized form (idempotence), so it is safe as a cache key
// for any lexable input.
func TestFingerprintRoundTrips(t *testing.T) {
	queries := []string{
		"SELECT a, b FROM t, u WHERE t.k = u.k AND b BETWEEN 1 AND 10",
		"SELECT COUNT(*) FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)",
		"SELECT a FROM t WHERE d >= DATE '1994-01-01' GROUP BY a HAVING COUNT(*) > 2",
		"SELECT x + -1, y * 2.5 FROM t WHERE s LIKE 'a%b' OR s IS NOT NULL",
	}
	for _, q := range queries {
		fp, err := Fingerprint(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		again, err := Fingerprint(fp)
		if err != nil {
			t.Fatalf("re-fingerprint %q: %v", fp, err)
		}
		if again != fp {
			t.Errorf("not idempotent: %q -> %q", fp, again)
		}
		if _, err := Parse(fp); err != nil {
			t.Errorf("fingerprint %q no longer parses: %v", fp, err)
		}
	}
}
