package sql

import (
	"strings"

	"repro/internal/relation"
)

// Expr is a SQL expression AST node.
type Expr interface{ exprNode() }

// Literal is a constant value.
type Literal struct{ Val relation.Value }

// ColRef is a (possibly qualified) column reference. The analyzer fills
// the resolution fields: Alias is the binding table alias, Table the real
// relation name, and Depth how many query scopes outward the binding lives
// (0 = current query, 1 = immediately enclosing query, ...).
type ColRef struct {
	Qualifier string // as written; "" if unqualified
	Column    string

	// Set by Analyze:
	Alias string
	Table string
	Depth int
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// Binary is a binary operation: AND OR = <> < <= > >= + - * / ||.
type Binary struct {
	Op   string
	L, R Expr
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// InList is x [NOT] IN (e1, e2, ...).
type InList struct {
	X    Expr
	List []Expr
	Not  bool
}

// InSubquery is x [NOT] IN (SELECT ...).
type InSubquery struct {
	X   Expr
	Sub *Select
	Not bool
}

// Exists is [NOT] EXISTS (SELECT ...).
type Exists struct {
	Sub *Select
	Not bool
}

// ScalarSubquery is a subquery used as a value.
type ScalarSubquery struct{ Sub *Select }

// Like is x [NOT] LIKE 'pattern' with % and _ wildcards.
type Like struct {
	X       Expr
	Pattern string
	Not     bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// When is one CASE arm.
type When struct{ Cond, Then Expr }

// Case is CASE WHEN ... THEN ... [ELSE ...] END (searched form).
type Case struct {
	Whens []When
	Else  Expr
}

// FuncCall is an aggregate (SUM/COUNT/AVG/MIN/MAX) or scalar function
// (YEAR/MONTH) application. Star marks COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Distinct bool
	Star     bool
	Args     []Expr
}

func (*Literal) exprNode()        {}
func (*ColRef) exprNode()         {}
func (*Unary) exprNode()          {}
func (*Binary) exprNode()         {}
func (*Between) exprNode()        {}
func (*InList) exprNode()         {}
func (*InSubquery) exprNode()     {}
func (*Exists) exprNode()         {}
func (*ScalarSubquery) exprNode() {}
func (*Like) exprNode()           {}
func (*IsNull) exprNode()         {}
func (*Case) exprNode()           {}
func (*FuncCall) exprNode()       {}

// IsAggregate reports whether the function name is an aggregate.
func (f *FuncCall) IsAggregate() bool {
	switch f.Name {
	case "SUM", "COUNT", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// JoinType distinguishes the FROM-clause join forms.
type JoinType int

// Join types; JoinComma covers both the leading table and comma joins,
// whose join predicates live in WHERE.
const (
	JoinComma JoinType = iota
	JoinInner
	JoinLeft
	JoinRight
	JoinFull
)

func (j JoinType) String() string {
	switch j {
	case JoinComma:
		return ","
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	}
	return "?"
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Key returns the lower-cased binding alias.
func (t TableRef) Key() string {
	if t.Alias != "" {
		return strings.ToLower(t.Alias)
	}
	return strings.ToLower(t.Table)
}

// FromItem is one entry of the FROM clause: the first item and comma items
// have JoinComma and nil On.
type FromItem struct {
	Ref  TableRef
	Join JoinType
	On   Expr
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// Select is a (sub)query block. UNION ALL chains are held in Union.
type Select struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	Union    *Select // next arm of a UNION ALL chain, if any
}

// walkExpr applies fn to e and all children (pre-order); fn returning
// false prunes the subtree.
func walkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Unary:
		walkExpr(x.X, fn)
	case *Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Between:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *InList:
		walkExpr(x.X, fn)
		for _, it := range x.List {
			walkExpr(it, fn)
		}
	case *InSubquery:
		walkExpr(x.X, fn)
	case *Like:
		walkExpr(x.X, fn)
	case *IsNull:
		walkExpr(x.X, fn)
	case *Case:
		for _, w := range x.Whens {
			walkExpr(w.Cond, fn)
			walkExpr(w.Then, fn)
		}
		walkExpr(x.Else, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	}
}

// CollectAggregates returns the aggregate FuncCall nodes in e, in
// pre-order. walkExpr never descends into subquery bodies, so aggregates
// inside nested SELECTs are not reported (they belong to their own block).
func CollectAggregates(e Expr) []*FuncCall {
	var out []*FuncCall
	walkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			out = append(out, f)
			return false // aggregate args are evaluated per input row
		}
		return true
	})
	return out
}

// ColRefs returns the column references in e (current scope and outer).
// Subquery bodies are not descended into, but the comparison side of
// IN (SELECT ...) is.
func ColRefs(e Expr) []*ColRef {
	var out []*ColRef
	walkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// SplitConjuncts flattens a chain of ANDs into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll rebuilds a conjunction from parts (nil for empty).
func AndAll(parts []Expr) Expr {
	var out Expr
	for _, p := range parts {
		if out == nil {
			out = p
		} else {
			out = &Binary{Op: "AND", L: out, R: p}
		}
	}
	return out
}
