package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Parse parses a single SQL query (optionally UNION ALL chained).
func Parse(input string) (*Select, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if p.peek().Kind != TokEOF {
		return nil, p.errorf("unexpected %s after query", p.peek())
	}
	return sel, nil
}

// MustParse is Parse that panics; for statically-known workload queries.
func MustParse(input string) *Select {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

// next consumes and returns the next token; EOF is sticky so error paths
// can keep peeking safely.
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error near offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it matches kind/text.
func (p *parser) accept(kind TokKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.accept(TokKeyword, kw) {
		return p.errorf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.accept(TokOp, op) {
		return p.errorf("expected %q, got %s", op, p.peek())
	}
	return nil
}

func (p *parser) parseQuery() (*Select, error) {
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	head := sel
	for p.accept(TokKeyword, "UNION") {
		if err := p.expectKeyword("ALL"); err != nil {
			return nil, err
		}
		arm, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.Union = arm
		sel = arm
	}
	return head, nil
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &Select{}
	s.Distinct = p.accept(TokKeyword, "DISTINCT")

	if p.accept(TokOp, "*") {
		s.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := p.parseFrom(s); err != nil {
		return nil, err
	}

	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		t := p.next()
		if t.Kind != TokIdent {
			return SelectItem{}, p.errorf("expected alias after AS, got %s", t)
		}
		item.Alias = t.Text
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseFrom(s *Select) error {
	ref, err := p.parseTableRef()
	if err != nil {
		return err
	}
	s.From = append(s.From, FromItem{Ref: ref, Join: JoinComma})
	for {
		var jt JoinType
		switch {
		case p.accept(TokOp, ","):
			jt = JoinComma
		case p.accept(TokKeyword, "JOIN"):
			jt = JoinInner
		case p.accept(TokKeyword, "INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return err
			}
			jt = JoinInner
		case p.accept(TokKeyword, "LEFT"):
			p.accept(TokKeyword, "OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return err
			}
			jt = JoinLeft
		case p.accept(TokKeyword, "RIGHT"):
			p.accept(TokKeyword, "OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return err
			}
			jt = JoinRight
		case p.accept(TokKeyword, "FULL"):
			p.accept(TokKeyword, "OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return err
			}
			jt = JoinFull
		default:
			return nil
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return err
		}
		item := FromItem{Ref: ref, Join: jt}
		if jt != JoinComma {
			if err := p.expectKeyword("ON"); err != nil {
				return err
			}
			on, err := p.parseExpr()
			if err != nil {
				return err
			}
			item.On = on
		}
		s.From = append(s.From, item)
	}
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return TableRef{}, p.errorf("expected table name, got %s", t)
	}
	ref := TableRef{Table: t.Text}
	if p.accept(TokKeyword, "AS") {
		a := p.next()
		if a.Kind != TokIdent {
			return TableRef{}, p.errorf("expected alias after AS, got %s", a)
		}
		ref.Alias = a.Text
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// Expression precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(TokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(TokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		// NOT EXISTS / NOT IN fold into their node's Not flag.
		switch e := x.(type) {
		case *Exists:
			e.Not = !e.Not
			return e, nil
		case *InSubquery:
			e.Not = !e.Not
			return e, nil
		case *InList:
			e.Not = !e.Not
			return e, nil
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	if p.accept(TokKeyword, "EXISTS") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		sub, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &Exists{Sub: sub}, nil
	}
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.accept(TokOp, op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	not := p.accept(TokKeyword, "NOT")
	switch {
	case p.accept(TokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.accept(TokKeyword, "IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &InSubquery{X: l, Sub: sub, Not: not}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InList{X: l, List: list, Not: not}, nil
	case p.accept(TokKeyword, "LIKE"):
		t := p.next()
		if t.Kind != TokString {
			return nil, p.errorf("LIKE requires a string pattern, got %s", t)
		}
		return &Like{X: l, Pattern: t.Text, Not: not}, nil
	case p.accept(TokKeyword, "IS"):
		isNot := p.accept(TokKeyword, "NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Not: isNot != not}, nil
	}
	if not {
		return nil, p.errorf("expected BETWEEN, IN, LIKE or IS after NOT")
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokOp, "+"):
			op = "+"
		case p.accept(TokOp, "-"):
			op = "-"
		case p.accept(TokOp, "||"):
			op = "||"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(TokOp, "*"):
			op = "*"
		case p.accept(TokOp, "/"):
			op = "/"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(TokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok { // fold negative literals
			switch lit.Val.Kind {
			case relation.KindInt:
				return &Literal{Val: relation.Int(-lit.Val.I)}, nil
			case relation.KindFloat:
				return &Literal{Val: relation.Float(-lit.Val.F)}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", t.Text)
		}
		return &Literal{Val: relation.Int(n)}, nil
	case TokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float %q", t.Text)
		}
		return &Literal{Val: relation.Float(f)}, nil
	case TokString:
		p.next()
		return &Literal{Val: relation.Str(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Val: relation.Null}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: relation.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: relation.Bool(false)}, nil
		case "DATE":
			p.next()
			st := p.next()
			if st.Kind != TokString {
				return nil, p.errorf("DATE requires a string literal")
			}
			v, err := relation.ParseDate(st.Text)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			return &Literal{Val: v}, nil
		case "INTERVAL":
			// INTERVAL 'n' DAY|MONTH|YEAR as an integer day count
			// (months ≈ 30 days, years ≈ 365; the generated workloads
			// only use DAY).
			p.next()
			st := p.next()
			if st.Kind != TokString {
				return nil, p.errorf("INTERVAL requires a string literal")
			}
			n, err := strconv.ParseInt(strings.TrimSpace(st.Text), 10, 64)
			if err != nil {
				return nil, p.errorf("bad interval %q", st.Text)
			}
			switch {
			case p.accept(TokKeyword, "DAY"):
			case p.accept(TokKeyword, "MONTH"):
				n *= 30
			case p.accept(TokKeyword, "YEAR"):
				n *= 365
			default:
				return nil, p.errorf("expected DAY, MONTH or YEAR after INTERVAL")
			}
			return &Literal{Val: relation.Int(n)}, nil
		case "YEAR", "MONTH", "DAY":
			// Scalar date-part function form: YEAR(expr).
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: t.Text, Args: []Expr{arg}}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errorf("unexpected keyword %s", t)
	case TokOp:
		if t.Text == "(" {
			p.next()
			if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseQuery()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &ScalarSubquery{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s", t)
	case TokIdent:
		p.next()
		// Function call?
		if p.peek().Kind == TokOp && p.peek().Text == "(" {
			name := strings.ToUpper(t.Text)
			p.next() // consume (
			f := &FuncCall{Name: name}
			if p.accept(TokOp, "*") {
				f.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return f, nil
			}
			f.Distinct = p.accept(TokKeyword, "DISTINCT")
			if !p.accept(TokOp, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					f.Args = append(f.Args, a)
					if !p.accept(TokOp, ",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return f, nil
		}
		// Column reference, possibly qualified.
		if p.accept(TokOp, ".") {
			c := p.next()
			if c.Kind != TokIdent {
				return nil, p.errorf("expected column after '.', got %s", c)
			}
			return &ColRef{Qualifier: t.Text, Column: c.Text}, nil
		}
		return &ColRef{Column: t.Text}, nil
	}
	return nil, p.errorf("unexpected %s", t)
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &Case{}
	for p.accept(TokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept(TokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
