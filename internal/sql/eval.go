package sql

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/relation"
)

// Binding maps lower-cased "alias.column" keys to slot indexes in the row
// an executor supplies at evaluation time.
type Binding map[string]int

// BindKey builds the canonical binding key.
func BindKey(alias, column string) string {
	return strings.ToLower(alias) + "." + strings.ToLower(column)
}

// Env is the evaluation environment of one row, chained outward for
// correlated subqueries. Aggs holds precomputed aggregate values for
// AggRef nodes installed by RewriteAggregates.
type Env struct {
	Binding Binding
	Row     relation.Tuple
	Aggs    []relation.Value
	Parent  *Env
}

// SubqueryFn evaluates a subquery under env and returns its rows.
// Engines plug in their own implementation (the baseline engine runs the
// block recursively; the TAG engine runs a vertex program).
type SubqueryFn func(sub *Select, env *Env) (*relation.Relation, error)

// AggRef refers to the i-th precomputed aggregate in Env.Aggs. It is
// installed by RewriteAggregates and never produced by the parser.
type AggRef struct{ Slot int }

func (*AggRef) exprNode() {}

// RewriteAggregates returns a copy of e in which every aggregate FuncCall
// is replaced by an AggRef with the slot assigned by slotOf. The input
// tree is not mutated (query ASTs are shared between engines).
func RewriteAggregates(e Expr, slotOf func(*FuncCall) int) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Literal, *ColRef, *AggRef, *Exists, *InSubquery, *ScalarSubquery:
		return e
	case *Unary:
		return &Unary{Op: x.Op, X: RewriteAggregates(x.X, slotOf)}
	case *Binary:
		return &Binary{Op: x.Op, L: RewriteAggregates(x.L, slotOf), R: RewriteAggregates(x.R, slotOf)}
	case *Between:
		return &Between{X: RewriteAggregates(x.X, slotOf), Lo: RewriteAggregates(x.Lo, slotOf), Hi: RewriteAggregates(x.Hi, slotOf), Not: x.Not}
	case *InList:
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			list[i] = RewriteAggregates(it, slotOf)
		}
		return &InList{X: RewriteAggregates(x.X, slotOf), List: list, Not: x.Not}
	case *Like:
		return &Like{X: RewriteAggregates(x.X, slotOf), Pattern: x.Pattern, Not: x.Not}
	case *IsNull:
		return &IsNull{X: RewriteAggregates(x.X, slotOf), Not: x.Not}
	case *Case:
		whens := make([]When, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = When{Cond: RewriteAggregates(w.Cond, slotOf), Then: RewriteAggregates(w.Then, slotOf)}
		}
		return &Case{Whens: whens, Else: RewriteAggregates(x.Else, slotOf)}
	case *FuncCall:
		if x.IsAggregate() {
			return &AggRef{Slot: slotOf(x)}
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteAggregates(a, slotOf)
		}
		return &FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star, Args: args}
	}
	return e
}

// Eval evaluates e under env with SQL three-valued logic. Comparisons
// involving NULL yield NULL; filters must treat anything but TRUE as
// non-qualifying. subq may be nil if e contains no subqueries.
func Eval(e Expr, env *Env, subq SubqueryFn) (relation.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *AggRef:
		for sc := env; sc != nil; sc = sc.Parent {
			if x.Slot < len(sc.Aggs) {
				return sc.Aggs[x.Slot], nil
			}
		}
		return relation.Null, fmt.Errorf("sql: unbound aggregate slot %d", x.Slot)
	case *ColRef:
		scope := env
		for d := 0; d < x.Depth; d++ {
			if scope == nil {
				break
			}
			scope = scope.Parent
		}
		for ; scope != nil; scope = scope.Parent {
			if i, ok := scope.Binding[BindKey(x.Alias, x.Column)]; ok {
				return scope.Row[i], nil
			}
		}
		return relation.Null, fmt.Errorf("sql: unbound column %s.%s", x.Alias, x.Column)
	case *Unary:
		v, err := Eval(x.X, env, subq)
		if err != nil {
			return relation.Null, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return relation.Null, nil
			}
			return relation.Bool(!v.AsBool()), nil
		case "-":
			return relation.Sub(relation.Int(0), v), nil
		}
		return relation.Null, fmt.Errorf("sql: unknown unary op %q", x.Op)
	case *Binary:
		return evalBinary(x, env, subq)
	case *Between:
		v, err := Eval(x.X, env, subq)
		if err != nil {
			return relation.Null, err
		}
		lo, err := Eval(x.Lo, env, subq)
		if err != nil {
			return relation.Null, err
		}
		hi, err := Eval(x.Hi, env, subq)
		if err != nil {
			return relation.Null, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return relation.Null, nil
		}
		in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
		return relation.Bool(in != x.Not), nil
	case *InList:
		v, err := Eval(x.X, env, subq)
		if err != nil {
			return relation.Null, err
		}
		if v.IsNull() {
			return relation.Null, nil
		}
		sawNull := false
		for _, item := range x.List {
			iv, err := Eval(item, env, subq)
			if err != nil {
				return relation.Null, err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if v.Equal(iv) {
				return relation.Bool(!x.Not), nil
			}
		}
		if sawNull {
			return relation.Null, nil
		}
		return relation.Bool(x.Not), nil
	case *InSubquery:
		if subq == nil {
			return relation.Null, fmt.Errorf("sql: subquery evaluation not available")
		}
		v, err := Eval(x.X, env, subq)
		if err != nil {
			return relation.Null, err
		}
		if v.IsNull() {
			return relation.Null, nil
		}
		rows, err := subq(x.Sub, env)
		if err != nil {
			return relation.Null, err
		}
		sawNull := false
		for _, t := range rows.Tuples {
			if t[0].IsNull() {
				sawNull = true
				continue
			}
			if v.Equal(t[0]) {
				return relation.Bool(!x.Not), nil
			}
		}
		if sawNull {
			return relation.Null, nil
		}
		return relation.Bool(x.Not), nil
	case *Exists:
		if subq == nil {
			return relation.Null, fmt.Errorf("sql: subquery evaluation not available")
		}
		rows, err := subq(x.Sub, env)
		if err != nil {
			return relation.Null, err
		}
		return relation.Bool((rows.Len() > 0) != x.Not), nil
	case *ScalarSubquery:
		if subq == nil {
			return relation.Null, fmt.Errorf("sql: subquery evaluation not available")
		}
		rows, err := subq(x.Sub, env)
		if err != nil {
			return relation.Null, err
		}
		if rows.Len() == 0 {
			return relation.Null, nil
		}
		if rows.Len() > 1 {
			return relation.Null, fmt.Errorf("sql: scalar subquery returned %d rows", rows.Len())
		}
		return rows.Tuples[0][0], nil
	case *Like:
		v, err := Eval(x.X, env, subq)
		if err != nil {
			return relation.Null, err
		}
		if v.IsNull() {
			return relation.Null, nil
		}
		return relation.Bool(MatchLike(v.String(), x.Pattern) != x.Not), nil
	case *IsNull:
		v, err := Eval(x.X, env, subq)
		if err != nil {
			return relation.Null, err
		}
		return relation.Bool(v.IsNull() != x.Not), nil
	case *Case:
		for _, w := range x.Whens {
			c, err := Eval(w.Cond, env, subq)
			if err != nil {
				return relation.Null, err
			}
			if c.AsBool() {
				return Eval(w.Then, env, subq)
			}
		}
		if x.Else != nil {
			return Eval(x.Else, env, subq)
		}
		return relation.Null, nil
	case *FuncCall:
		if x.IsAggregate() {
			return relation.Null, fmt.Errorf("sql: aggregate %s outside aggregation context", x.Name)
		}
		return evalScalarFunc(x, env, subq)
	}
	return relation.Null, fmt.Errorf("sql: cannot evaluate %T", e)
}

func evalBinary(x *Binary, env *Env, subq SubqueryFn) (relation.Value, error) {
	// Three-valued AND/OR with short-circuiting.
	switch x.Op {
	case "AND", "OR":
		l, err := Eval(x.L, env, subq)
		if err != nil {
			return relation.Null, err
		}
		if x.Op == "AND" && !l.IsNull() && !l.AsBool() {
			return relation.Bool(false), nil
		}
		if x.Op == "OR" && l.AsBool() {
			return relation.Bool(true), nil
		}
		r, err := Eval(x.R, env, subq)
		if err != nil {
			return relation.Null, err
		}
		if x.Op == "AND" {
			if !r.IsNull() && !r.AsBool() {
				return relation.Bool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return relation.Null, nil
			}
			return relation.Bool(true), nil
		}
		if r.AsBool() {
			return relation.Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return relation.Null, nil
		}
		return relation.Bool(false), nil
	}

	l, err := Eval(x.L, env, subq)
	if err != nil {
		return relation.Null, err
	}
	r, err := Eval(x.R, env, subq)
	if err != nil {
		return relation.Null, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return relation.Null, nil
		}
		c := l.Compare(r)
		var ok bool
		switch x.Op {
		case "=":
			ok = c == 0
		case "<>":
			ok = c != 0
		case "<":
			ok = c < 0
		case "<=":
			ok = c <= 0
		case ">":
			ok = c > 0
		case ">=":
			ok = c >= 0
		}
		return relation.Bool(ok), nil
	case "+":
		return relation.Add(l, r), nil
	case "-":
		return relation.Sub(l, r), nil
	case "*":
		return relation.Mul(l, r), nil
	case "/":
		return relation.Div(l, r), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return relation.Null, nil
		}
		return relation.Str(l.String() + r.String()), nil
	}
	return relation.Null, fmt.Errorf("sql: unknown operator %q", x.Op)
}

func evalScalarFunc(x *FuncCall, env *Env, subq SubqueryFn) (relation.Value, error) {
	switch x.Name {
	case "YEAR", "MONTH", "DAY":
		if len(x.Args) != 1 {
			return relation.Null, fmt.Errorf("sql: %s takes one argument", x.Name)
		}
		v, err := Eval(x.Args[0], env, subq)
		if err != nil || v.IsNull() {
			return relation.Null, err
		}
		t := time.Unix(v.AsInt()*86400, 0).UTC()
		switch x.Name {
		case "YEAR":
			return relation.Int(int64(t.Year())), nil
		case "MONTH":
			return relation.Int(int64(t.Month())), nil
		default:
			return relation.Int(int64(t.Day())), nil
		}
	}
	return relation.Null, fmt.Errorf("sql: unknown function %s", x.Name)
}

// MatchLike implements SQL LIKE with % (any run) and _ (any one byte)
// wildcards, matching greedily with backtracking.
func MatchLike(s, pattern string) bool {
	var match func(si, pi int) bool
	match = func(si, pi int) bool {
		for pi < len(pattern) {
			switch pattern[pi] {
			case '%':
				// Collapse consecutive %.
				for pi < len(pattern) && pattern[pi] == '%' {
					pi++
				}
				if pi == len(pattern) {
					return true
				}
				for k := si; k <= len(s); k++ {
					if match(k, pi) {
						return true
					}
				}
				return false
			case '_':
				if si >= len(s) {
					return false
				}
				si++
				pi++
			default:
				if si >= len(s) || s[si] != pattern[pi] {
					return false
				}
				si++
				pi++
			}
		}
		return si == len(s)
	}
	return match(0, 0)
}

// Aggregator accumulates one aggregate function incrementally; used by
// both engines and by the TAG eager-aggregation path.
type Aggregator struct {
	fn       *FuncCall
	count    int64
	sum      relation.Value
	min, max relation.Value
	distinct map[relation.Value]struct{}
}

// NewAggregator prepares an accumulator for fn.
func NewAggregator(fn *FuncCall) *Aggregator {
	a := &Aggregator{fn: fn, sum: relation.Null, min: relation.Null, max: relation.Null}
	if fn.Distinct {
		a.distinct = make(map[relation.Value]struct{})
	}
	return a
}

// Observe folds one input value (the evaluated argument; ignored for
// COUNT(*), where any value counts the row). DISTINCT aggregates defer
// folding to Result so that partial accumulators remain mergeable.
func (a *Aggregator) Observe(v relation.Value) {
	if !a.fn.Star && v.IsNull() {
		return // SQL aggregates skip NULLs
	}
	if a.distinct != nil {
		a.distinct[v.Key()] = struct{}{}
		return
	}
	a.observeRaw(v)
}

func (a *Aggregator) observeRaw(v relation.Value) {
	a.count++
	if a.fn.Name == "SUM" || a.fn.Name == "AVG" {
		if a.sum.IsNull() {
			a.sum = v
		} else {
			a.sum = relation.Add(a.sum, v)
		}
	}
	if a.fn.Name == "MIN" && (a.min.IsNull() || v.Compare(a.min) < 0) {
		a.min = v
	}
	if a.fn.Name == "MAX" && (a.max.IsNull() || v.Compare(a.max) > 0) {
		a.max = v
	}
}

// Merge folds another partial accumulator of the same function into a,
// enabling the eager/partial aggregation of §7 (DISTINCT sets are
// unioned).
func (a *Aggregator) Merge(b *Aggregator) {
	if a.distinct != nil {
		for v := range b.distinct {
			a.distinct[v] = struct{}{}
		}
		return
	}
	a.count += b.count
	if b.sum.IsNull() {
		// nothing
	} else if a.sum.IsNull() {
		a.sum = b.sum
	} else {
		a.sum = relation.Add(a.sum, b.sum)
	}
	if !b.min.IsNull() && (a.min.IsNull() || b.min.Compare(a.min) < 0) {
		a.min = b.min
	}
	if !b.max.IsNull() && (a.max.IsNull() || b.max.Compare(a.max) > 0) {
		a.max = b.max
	}
}

// MergeExact reports whether merging b into a commutes with any fold
// order — the merge is a set union (DISTINCT), an exact integer
// addition, or a pure comparison (MIN/MAX), never a float rounding.
// Message combiners consult it before folding partials eagerly: an
// order-sensitive merge (float SUM/AVG) must instead be left to the
// receiving vertex so results stay bit-identical to an uncombined run.
func (a *Aggregator) MergeExact(b *Aggregator) bool {
	if a.distinct != nil {
		return true
	}
	switch a.fn.Name {
	case "SUM", "AVG":
		return a.sum.Kind != relation.KindFloat && b.sum.Kind != relation.KindFloat
	}
	return true // COUNT, MIN, MAX: counting and comparisons are order-free
}

// Result returns the aggregate's final value.
func (a *Aggregator) Result() relation.Value {
	if a.distinct != nil {
		fold := &Aggregator{fn: &FuncCall{Name: a.fn.Name, Star: a.fn.Star}, sum: relation.Null, min: relation.Null, max: relation.Null}
		for v := range a.distinct {
			fold.observeRaw(v)
		}
		return fold.Result()
	}
	switch a.fn.Name {
	case "COUNT":
		return relation.Int(a.count)
	case "SUM":
		return a.sum
	case "AVG":
		if a.count == 0 {
			return relation.Null
		}
		return relation.Float(a.sum.AsFloat() / float64(a.count))
	case "MIN":
		return a.min
	case "MAX":
		return a.max
	}
	return relation.Null
}
