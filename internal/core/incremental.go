package core

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/sql"
)

// This file is the incremental query maintenance layer: a pinned
// (prepared) query keeps a QueryState — the pre-projection aggregation
// groups, or the raw result rows — and advances it across graph
// generations by folding the write delta instead of re-running the
// full BSP reduction.
//
// The delta split is a vertex-ID window: tag.Clone records the vertex
// count at clone time (DeltaBase), so every tuple the batch inserted
// sits at an ID >= base and every pre-existing tuple below it. For an
// insert-only batch, Q(new) - Q(old) decomposes seminaïve-style into
// one term per FROM alias whose table received inserts:
//
//	term j = Q(A_1^new, ..., A_{j-1}^new, ΔA_j, A_{j+1}^old, ..., A_n^old)
//
// Each term is the original query run with alias j restricted to the
// delta window, later aliases to the old window, and earlier aliases
// unrestricted — the windows are enforced at the single vertex
// admission chokepoint (componentRun.passes), the reduction seeds from
// the delta window, and planning biases the delta alias to the start
// leaf, so a term touches the batch's vertices and their join
// frontier, not the graph.
//
// Folding a term into the cached state reuses the combiner Merge path:
// aggregate terms merge group-by-group (guarded by MergeExact — an
// order-sensitive float SUM/AVG merge detects itself and forces a full
// recompute), non-aggregate terms append rows. Deletes, outer joins,
// cyclic plans, subqueries and rep-dependent projections are
// non-monotone or non-capturable here and fall back to a cold re-run.

// vertexWindow is a half-open vertex-ID interval [Lo, Hi); Hi < 0 means
// unbounded above. With DeltaBase b, the "old" window is [0, b) and the
// "delta" window is [b, ∞).
type vertexWindow struct {
	lo, hi bsp.VertexID
}

func (w vertexWindow) contains(v bsp.VertexID) bool {
	return v >= w.lo && (w.hi < 0 || v < w.hi)
}

// slice narrows an ascending vertex-ID list to the window by binary
// search, returning a sub-slice of the input.
func (w vertexWindow) slice(verts []bsp.VertexID) []bsp.VertexID {
	i := sort.Search(len(verts), func(k int) bool { return verts[k] >= w.lo })
	j := len(verts)
	if w.hi >= 0 {
		j = sort.Search(len(verts), func(k int) bool { return verts[k] >= w.hi })
	}
	if i > j {
		i = j
	}
	return verts[i:j]
}

// stateCapture snapshots the pre-projection group state of one
// aggregate run (hooked into projectGroups). Representative rows are
// remapped to the block's canonical header so states captured under
// different plan shapes (cold run vs delta terms, whose join trees
// differ) fold against each other.
type stateCapture struct {
	done   bool
	header []string
	groups map[string]*groupAcc
	order  []string
}

func (sc *stateCapture) record(c *compiled, groups map[string]*groupAcc, order []string, srcHeader []string) {
	sc.done = true
	canon := c.canonicalHeader()
	idx := buildIndex(srcHeader)
	sc.header = canon
	sc.order = append([]string(nil), order...)
	sc.groups = make(map[string]*groupAcc, len(groups))
	for ks, g := range groups {
		rep := make([]relation.Value, len(canon))
		for i, col := range canon {
			if j, ok := idx[col]; ok && j < len(g.rep) {
				rep[i] = g.rep[j]
			} else {
				rep[i] = relation.Null
			}
		}
		sc.groups[ks] = &groupAcc{key: g.key, rep: rep, aggs: g.aggs}
	}
}

// QueryState is the resumable state of one pinned query: the epoch it
// answers for, the canonically sorted answer at that epoch, and the
// foldable pre-projection state (groups for aggregate queries, rows
// otherwise).
type QueryState struct {
	An    *sql.Analysis
	Epoch uint64
	// Answer is the result at Epoch in canonical (sorted) row order.
	Answer *relation.Relation

	agg      bool
	distinct bool
	header   []string
	groups   map[string]*groupAcc
	order    []string
	rows     *relation.Relation
}

// FoldOutcome reports how FoldDelta advanced a state.
type FoldOutcome int

// FoldDelta outcomes.
const (
	// FoldHit: the cached answer was advanced by folding the delta (or
	// the batch did not touch any referenced table) — O(delta) work.
	FoldHit FoldOutcome = iota
	// FoldFallback: the state was rebuilt by a full cold re-run
	// (deletes, an order-sensitive merge, a missed epoch, …).
	FoldFallback
)

func (o FoldOutcome) String() string {
	if o == FoldHit {
		return "hit"
	}
	return "fallback"
}

// IncrementalEligible reports whether an analyzed query's state can be
// maintained incrementally at all, with the disqualifying reason
// otherwise. Eligibility is static: even an eligible query falls back
// dynamically on batches it cannot fold (deletes, inexact merges).
func (e *Session) IncrementalEligible(an *sql.Analysis) (bool, string) {
	if len(an.Blocks) != 1 || an.Root.UnionNext != nil {
		return false, "subqueries or UNION"
	}
	c, err := e.compileBlock(an, an.Root)
	if err != nil {
		return false, err.Error()
	}
	if c.hasOuter {
		return false, "outer join (non-monotone under inserts)"
	}
	if c.qp == nil || !c.qp.Acyclic {
		return false, "cyclic join plan"
	}
	if c.agg != AggNone {
		if len(c.qp.Components) != 1 || !c.residualVertexSafe() {
			return false, "aggregation finalizes centrally (state not capturable)"
		}
		if !repIndependent(an.Root) {
			return false, "projects non-grouped columns (representative-dependent)"
		}
	}
	return true, ""
}

// repIndependent reports whether every non-aggregate column reference
// in the SELECT list and HAVING clause is itself a GROUP BY column, so
// projecting from a merged group's representative row cannot depend on
// which source row became the representative.
func repIndependent(blk *sql.Analyzed) bool {
	allowed := map[string]bool{}
	for _, g := range blk.Sel.GroupBy {
		if r, ok := g.(*sql.ColRef); ok && r.Depth == 0 {
			allowed[sql.BindKey(r.Alias, r.Column)] = true
		}
	}
	setup := newAggSetup(blk)
	ok := func(x sql.Expr) bool {
		if x == nil {
			return true
		}
		for _, r := range sql.ColRefs(x) {
			if r.Depth == 0 && !allowed[sql.BindKey(r.Alias, r.Column)] {
				return false
			}
		}
		return true
	}
	for _, it := range setup.items {
		if !ok(it) {
			return false
		}
	}
	return ok(setup.having)
}

// BuildState runs an eligible query cold on this session's graph and
// captures its foldable state for the given epoch.
func (e *Session) BuildState(an *sql.Analysis, epoch uint64) (*QueryState, error) {
	blk := an.Root
	st := &QueryState{
		An:       an,
		Epoch:    epoch,
		agg:      blk.HasAgg || len(blk.Sel.GroupBy) > 0,
		distinct: blk.Sel.Distinct,
	}
	if st.agg {
		e.capture = &stateCapture{}
		defer func() { e.capture = nil }()
	}
	out, err := e.Run(an)
	if err != nil {
		return nil, err
	}
	if st.agg {
		if !e.capture.done {
			return nil, fmt.Errorf("core: aggregate state not captured (central projection path)")
		}
		st.header = e.capture.header
		st.groups = e.capture.groups
		st.order = e.capture.order
	} else {
		st.rows = out
	}
	st.Answer = SortCanonical(out)
	return st, nil
}

// FoldDelta advances st from st.Epoch to epoch using the write delta
// recorded on this session's graph, which must be the generation built
// by cloning the st.Epoch generation (tag.Clone arms the tracking).
// When the batch cannot be folded — deletes on a referenced table, a
// missed epoch, an order-sensitive aggregate merge — the state is
// rebuilt by a cold re-run and the call reports FoldFallback; st is
// correct for epoch either way.
func (e *Session) FoldDelta(st *QueryState, epoch uint64) (FoldOutcome, error) {
	rebuild := func() (FoldOutcome, error) {
		ns, err := e.BuildState(st.An, epoch)
		if err != nil {
			return FoldFallback, err
		}
		*st = *ns
		return FoldFallback, nil
	}

	t := e.TAG
	if !t.DeltaTracked() || st.Epoch+1 != epoch {
		return rebuild()
	}
	blk := st.An.Root
	touched := false
	for _, bt := range blk.Tables {
		if t.DeltaDeletes(bt.Table) > 0 {
			// A delete is a retraction; the Merge path only adds.
			return rebuild()
		}
		if t.DeltaInserts(bt.Table) > 0 {
			touched = true
		}
	}
	if !touched {
		st.Epoch = epoch
		return FoldHit, nil
	}

	base := t.DeltaBase()
	var termRows []*relation.Relation
	var termCaps []*stateCapture
	for j, bt := range blk.Tables {
		if t.DeltaInserts(bt.Table) == 0 {
			continue
		}
		win := map[string]vertexWindow{bt.Alias: {lo: base, hi: -1}}
		for i, ot := range blk.Tables {
			if i > j {
				win[ot.Alias] = vertexWindow{lo: 0, hi: base}
			}
		}
		e.restrict, e.deltaAlias = win, bt.Alias
		if st.agg {
			e.capture = &stateCapture{}
		}
		out, err := e.Run(st.An)
		sc := e.capture
		e.restrict, e.deltaAlias, e.capture = nil, "", nil
		if err != nil {
			return FoldFallback, err
		}
		if st.agg {
			if !sc.done {
				return rebuild()
			}
			termCaps = append(termCaps, sc)
		} else {
			termRows = append(termRows, out)
		}
	}

	if !st.agg {
		nr := relation.New("result", blk.OutputSchema())
		nr.Tuples = append([]relation.Tuple{}, st.rows.Tuples...)
		for _, d := range termRows {
			nr.Tuples = append(nr.Tuples, d.Tuples...)
		}
		st.rows = dedup(nr, st.distinct)
		st.Answer = SortCanonical(st.rows)
		st.Epoch = epoch
		return FoldHit, nil
	}

	// Fold each term's groups into the cached state via the combiner
	// Merge path, guarding every slot with MergeExact: a float SUM/AVG
	// merge is order-sensitive, so the fold would not be byte-identical
	// to a cold run — detect it and recompute instead. (A failed guard
	// leaves st half-merged; rebuild discards it wholesale.)
	for _, sc := range termCaps {
		for _, ks := range sc.order {
			g := sc.groups[ks]
			have := st.groups[ks]
			if have == nil {
				st.groups[ks] = g
				st.order = append(st.order, ks)
				continue
			}
			for i := range have.aggs {
				if !have.aggs[i].MergeExact(g.aggs[i]) {
					return rebuild()
				}
				have.aggs[i].Merge(g.aggs[i])
			}
		}
	}

	c, err := e.compileBlock(st.An, blk)
	if err != nil {
		return FoldFallback, err
	}
	out, err := e.projectGroups(c, newAggSetup(blk), st.groups, st.order, st.header, nil, nil)
	if err != nil {
		return FoldFallback, err
	}
	st.Answer = SortCanonical(out)
	st.Epoch = epoch
	return FoldHit, nil
}

// CanonicalBytes serializes a result deterministically: each row in the
// exact binary value encoding (raw float bits included), rows sorted
// bytewise. Two results are the same multiset iff their canonical bytes
// are equal — the byte-identity contract incremental answers are
// verified against (the dialect has no ORDER BY, so results are
// multisets and row order is not part of the answer).
func CanonicalBytes(r *relation.Relation) []byte {
	rows := canonicalRows(r)
	sort.Slice(rows, func(a, b int) bool { return bytes.Compare(rows[a], rows[b]) < 0 })
	n := 0
	for _, b := range rows {
		n += len(b)
	}
	out := make([]byte, 0, n)
	for _, b := range rows {
		out = append(out, b...)
	}
	return out
}

// SortCanonical returns a copy of r (sharing tuples) with the rows in
// canonical byte order, so equal multisets render identically.
func SortCanonical(r *relation.Relation) *relation.Relation {
	keys := canonicalRows(r)
	idx := make([]int, len(r.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return bytes.Compare(keys[idx[a]], keys[idx[b]]) < 0 })
	out := relation.New(r.Name, r.Schema)
	out.Tuples = make([]relation.Tuple, len(r.Tuples))
	for i, j := range idx {
		out.Tuples[i] = r.Tuples[j]
	}
	return out
}

// canonicalRows encodes each tuple of r in the exact binary value
// encoding, index-aligned with r.Tuples.
func canonicalRows(r *relation.Relation) [][]byte {
	rows := make([][]byte, len(r.Tuples))
	for i, t := range r.Tuples {
		b, err := relation.AppendTuple(nil, t)
		if err != nil {
			// Unencodable kind (cannot happen for SQL results): fall back
			// to the canonical key form rather than failing a fold.
			b = []byte(groupKeyString(t))
		}
		rows[i] = b
	}
	return rows
}
