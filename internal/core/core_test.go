package core

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/tag"
)

// shopCatalog mirrors the baseline package's test database.
func shopCatalog() *relation.Catalog {
	cat := relation.NewCatalog()

	nation := relation.New("nation", relation.MustSchema(
		relation.Col("nkey", relation.KindInt),
		relation.Col("nname", relation.KindString)))
	nation.MustAppend(relation.Int(1), relation.Str("USA"))
	nation.MustAppend(relation.Int(2), relation.Str("FRANCE"))
	nation.MustAppend(relation.Int(3), relation.Str("PERU"))
	cat.MustAdd(nation)
	cat.SetPrimaryKey("nation", "nkey")

	cust := relation.New("cust", relation.MustSchema(
		relation.Col("ckey", relation.KindInt),
		relation.Col("cnation", relation.KindInt),
		relation.Col("cname", relation.KindString)))
	cust.MustAppend(relation.Int(10), relation.Int(1), relation.Str("alice"))
	cust.MustAppend(relation.Int(20), relation.Int(1), relation.Str("bob"))
	cust.MustAppend(relation.Int(30), relation.Int(2), relation.Str("chloe"))
	cust.MustAppend(relation.Int(40), relation.Null, relation.Str("drift"))
	cat.MustAdd(cust)
	cat.SetPrimaryKey("cust", "ckey")

	ord := relation.New("ord", relation.MustSchema(
		relation.Col("okey", relation.KindInt),
		relation.Col("ocust", relation.KindInt),
		relation.Col("price", relation.KindInt)))
	ord.MustAppend(relation.Int(100), relation.Int(10), relation.Int(5))
	ord.MustAppend(relation.Int(101), relation.Int(10), relation.Int(7))
	ord.MustAppend(relation.Int(102), relation.Int(20), relation.Int(11))
	ord.MustAppend(relation.Int(103), relation.Int(30), relation.Int(2))
	ord.MustAppend(relation.Int(104), relation.Int(99), relation.Int(50))
	cat.MustAdd(ord)
	cat.SetPrimaryKey("ord", "okey")

	return cat
}

// triangleCatalog builds R(A,B), S(B,C), T(C,A) with two triangles and
// dangling tuples.
func triangleCatalog() *relation.Catalog {
	cat := relation.NewCatalog()
	r := relation.New("r", relation.MustSchema(relation.Col("a", relation.KindInt), relation.Col("b", relation.KindInt)))
	s := relation.New("s", relation.MustSchema(relation.Col("b", relation.KindInt), relation.Col("c", relation.KindInt)))
	t := relation.New("t", relation.MustSchema(relation.Col("c", relation.KindInt), relation.Col("a", relation.KindInt)))
	// Triangle 1: a=1,b=10,c=100. Triangle 2: a=2,b=20,c=200.
	r.MustAppend(relation.Int(1), relation.Int(10))
	r.MustAppend(relation.Int(2), relation.Int(20))
	r.MustAppend(relation.Int(3), relation.Int(30)) // dangling
	s.MustAppend(relation.Int(10), relation.Int(100))
	s.MustAppend(relation.Int(20), relation.Int(200))
	s.MustAppend(relation.Int(30), relation.Int(999)) // no T partner
	t.MustAppend(relation.Int(100), relation.Int(1))
	t.MustAppend(relation.Int(200), relation.Int(2))
	t.MustAppend(relation.Int(300), relation.Int(7)) // dangling
	cat.MustAdd(r)
	cat.MustAdd(s)
	cat.MustAdd(t)
	return cat
}

func newExec(t *testing.T, cat *relation.Catalog) *Executor {
	t.Helper()
	g, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	return NewExecutor(g, bsp.Options{Workers: 4})
}

// checkAgainstBaseline runs the query on both engines and compares
// multisets.
func checkAgainstBaseline(t *testing.T, cat *relation.Catalog, query string) *relation.Relation {
	t.Helper()
	ex := newExec(t, cat)
	got, err := ex.Query(query)
	if err != nil {
		t.Fatalf("TAG %q: %v", query, err)
	}
	want, err := baseline.New(cat).Query(query)
	if err != nil {
		t.Fatalf("baseline %q: %v", query, err)
	}
	if !relation.EqualMultiset(got, want) {
		onlyG, onlyW := relation.DiffMultiset(got, want, 5)
		t.Fatalf("mismatch on %q:\nTAG rows %d, baseline rows %d\nonly TAG: %v\nonly baseline: %v",
			query, got.Len(), want.Len(), onlyG, onlyW)
	}
	return got
}

func TestSingleTableFilter(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(), "SELECT cname FROM cust WHERE ckey > 15")
}

func TestTwoWayJoin(t *testing.T) {
	got := checkAgainstBaseline(t, shopCatalog(),
		"SELECT cname, nname FROM cust, nation WHERE cnation = nkey")
	if got.Len() != 3 {
		t.Errorf("rows = %d, want 3", got.Len())
	}
}

func TestThreeWayJoinWithFilters(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(), `SELECT nname, price FROM nation, cust, ord
		WHERE cnation = nkey AND ocust = ckey AND price > 4`)
}

func TestTwoWayJoinMessageBounds(t *testing.T) {
	// §4.1.2: reduction messages are bounded by min(IN, OUT) per pass and
	// the total communication by O(IN + OUT).
	cat := shopCatalog()
	ex := newExec(t, cat)
	ex.ResetStats()
	out, err := ex.Query("SELECT cname, nname FROM cust, nation WHERE cnation = nkey")
	if err != nil {
		t.Fatal(err)
	}
	in := int64(cat.Get("cust").Len() + cat.Get("nation").Len())
	outN := int64(out.Len())
	msgs := ex.Stats().Messages
	// Reduction (3 passes over marked edges) + collection + finalize:
	// generous constant factor, but strictly linear.
	if msgs > 6*(in+outN) {
		t.Errorf("messages = %d exceeds 6*(IN+OUT) = %d", msgs, 6*(in+outN))
	}
}

func TestGroupByLocalAggregation(t *testing.T) {
	cat := shopCatalog()
	ex := newExec(t, cat)
	got, err := ex.Query("SELECT ocust, SUM(price), COUNT(*) FROM ord GROUP BY ocust HAVING SUM(price) > 5")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Info.Agg != AggLocal {
		t.Errorf("agg class = %v, want local", ex.Info.Agg)
	}
	want, _ := baseline.New(cat).Query("SELECT ocust, SUM(price), COUNT(*) FROM ord GROUP BY ocust HAVING SUM(price) > 5")
	if !relation.EqualMultiset(got, want) {
		t.Errorf("LA mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestGroupByMultiAliasIsGlobal(t *testing.T) {
	cat := shopCatalog()
	ex := newExec(t, cat)
	q := `SELECT nname, cname, COUNT(*) FROM nation, cust, ord
		WHERE cnation = nkey AND ocust = ckey GROUP BY nname, cname`
	got, err := ex.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Info.Agg != AggGlobal {
		t.Errorf("agg class = %v, want global", ex.Info.Agg)
	}
	want, _ := baseline.New(cat).Query(q)
	if !relation.EqualMultiset(got, want) {
		t.Errorf("GA mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestScalarAggregation(t *testing.T) {
	cat := shopCatalog()
	ex := newExec(t, cat)
	got, err := ex.Query("SELECT COUNT(*), SUM(price), MIN(price), MAX(price), AVG(price) FROM ord WHERE price > 4")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Info.Agg != AggScalar {
		t.Errorf("agg class = %v", ex.Info.Agg)
	}
	row := got.Tuples[0]
	if row[0] != relation.Int(4) || row[1] != relation.Int(73) {
		t.Errorf("scalar row = %v", row)
	}
}

func TestScalarAggregationEmptyInput(t *testing.T) {
	got := checkAgainstBaseline(t, shopCatalog(), "SELECT COUNT(*), SUM(price) FROM ord WHERE price > 1000")
	if got.Len() != 1 || got.Tuples[0][0] != relation.Int(0) {
		t.Errorf("empty scalar = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	got := checkAgainstBaseline(t, shopCatalog(), "SELECT DISTINCT cnation FROM cust WHERE cnation IS NOT NULL")
	if got.Len() != 2 {
		t.Errorf("distinct rows = %d", got.Len())
	}
}

func TestDanglingTuplesEliminated(t *testing.T) {
	// Order 104 references a missing customer; drift has NULL nation.
	got := checkAgainstBaseline(t, shopCatalog(),
		"SELECT okey FROM ord, cust WHERE ocust = ckey")
	if got.Len() != 4 {
		t.Errorf("rows = %d, want 4", got.Len())
	}
}

func TestCorrelatedExistsSemiJoin(t *testing.T) {
	got := checkAgainstBaseline(t, shopCatalog(),
		"SELECT cname FROM cust WHERE EXISTS (SELECT 1 FROM ord WHERE ocust = ckey AND price > 10)")
	if got.Len() != 1 || got.Tuples[0][0] != relation.Str("bob") {
		t.Errorf("rows = %v", got)
	}
}

func TestNotExistsAntiJoin(t *testing.T) {
	got := checkAgainstBaseline(t, shopCatalog(),
		"SELECT cname FROM cust WHERE NOT EXISTS (SELECT 1 FROM ord WHERE ocust = ckey)")
	if got.Len() != 1 || got.Tuples[0][0] != relation.Str("drift") {
		t.Errorf("rows = %v", got)
	}
}

func TestInSubquery(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(),
		"SELECT okey FROM ord WHERE ocust IN (SELECT ckey FROM cust WHERE cnation = 1)")
}

func TestNotInSubquery(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(),
		"SELECT okey FROM ord WHERE ocust NOT IN (SELECT ckey FROM cust)")
}

func TestScalarSubqueryUncorrelated(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(),
		"SELECT okey FROM ord WHERE price > (SELECT AVG(price) FROM ord)")
}

func TestScalarSubqueryCorrelated(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(), `SELECT okey FROM ord o
		WHERE price > (SELECT 1.5 * AVG(price) FROM ord i WHERE i.ocust = o.ocust)`)
}

func TestExistsJoinInside(t *testing.T) {
	// Subquery with its own join (q21-style shape).
	checkAgainstBaseline(t, shopCatalog(), `SELECT nname FROM nation
		WHERE EXISTS (SELECT 1 FROM cust, ord WHERE ocust = ckey AND cnation = nkey AND price > 6)`)
}

func TestTriangleQuery(t *testing.T) {
	cat := triangleCatalog()
	ex := newExec(t, cat)
	got, err := ex.Query("SELECT r.a, r.b, s.c FROM r, s, t WHERE r.b = s.b AND s.c = t.c AND t.a = r.a")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Info.Acyclic == false {
		t.Errorf("triangle should be detected as cyclic, info=%+v", ex.Info)
	}
	if ex.Info.Cycles != 1 {
		t.Errorf("cycles = %d", ex.Info.Cycles)
	}
	if got.Len() != 2 {
		t.Fatalf("triangles = %d, want 2\n%v", got.Len(), got)
	}
	want, _ := baseline.New(cat).Query("SELECT r.a, r.b, s.c FROM r, s, t WHERE r.b = s.b AND s.c = t.c AND t.a = r.a")
	if !relation.EqualMultiset(got, want) {
		t.Errorf("triangle mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestTriangleThetaSweep(t *testing.T) {
	// Correctness must not depend on the heavy/light threshold (§6.1.2).
	cat := triangleCatalog()
	q := "SELECT r.a, r.b, s.c FROM r, s, t WHERE r.b = s.b AND s.c = t.c AND t.a = r.a"
	want, _ := baseline.New(cat).Query(q)
	for _, theta := range []float64{0.5, 1, 2, 1e9} {
		ex := newExec(t, cat)
		ex.Theta = theta
		got, err := ex.Query(q)
		if err != nil {
			t.Fatalf("theta=%v: %v", theta, err)
		}
		if !relation.EqualMultiset(got, want) {
			t.Errorf("theta=%v: mismatch (%d vs %d rows)", theta, got.Len(), want.Len())
		}
	}
}

func TestFiveCycleQuery(t *testing.T) {
	cat := relation.NewCatalog()
	names := []string{"r1", "r2", "r3", "r4", "r5"}
	for i, n := range names {
		rel := relation.New(n, relation.MustSchema(
			relation.Col(fmt.Sprintf("x%d", i+1), relation.KindInt),
			relation.Col(fmt.Sprintf("x%d", (i+1)%5+1), relation.KindInt)))
		// Two full cycles (k=0, k=1) plus noise.
		for k := 0; k < 2; k++ {
			rel.MustAppend(relation.Int(int64(10*(i+1)+k)), relation.Int(int64(10*((i+1)%5+1)+k)))
		}
		rel.MustAppend(relation.Int(int64(900+i)), relation.Int(int64(950+i)))
		cat.MustAdd(rel)
	}
	q := `SELECT r1.x1 FROM r1, r2, r3, r4, r5
		WHERE r1.x2 = r2.x2 AND r2.x3 = r3.x3 AND r3.x4 = r4.x4 AND r4.x5 = r5.x5 AND r5.x1 = r1.x1`
	checkAgainstBaseline(t, cat, q)
}

func TestCartesianProductQuery(t *testing.T) {
	got := checkAgainstBaseline(t, shopCatalog(),
		"SELECT nname, okey FROM nation, ord WHERE price > 10")
	if got.Len() != 6 { // 3 nations × 2 orders
		t.Errorf("rows = %d, want 6", got.Len())
	}
}

func TestCartesianAlgorithmsAgree(t *testing.T) {
	cat := shopCatalog()
	ex := newExec(t, cat)
	a, err := ex.CartesianA("nation", "ord")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ex.CartesianB("nation", "ord")
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 15 || b.Len() != 15 {
		t.Fatalf("product sizes = %d, %d, want 15", a.Len(), b.Len())
	}
	if !relation.EqualMultiset(a, b) {
		t.Error("algorithms A and B disagree")
	}
}

func TestLeftOuterJoinVertexProgram(t *testing.T) {
	got := checkAgainstBaseline(t, shopCatalog(),
		"SELECT cname, nname FROM cust LEFT JOIN nation ON cnation = nkey")
	if got.Len() != 4 {
		t.Errorf("rows = %d, want 4", got.Len())
	}
}

func TestRightAndFullOuterJoin(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(),
		"SELECT cname, nname FROM cust RIGHT JOIN nation ON cnation = nkey")
	checkAgainstBaseline(t, shopCatalog(),
		"SELECT cname, nname FROM cust FULL JOIN nation ON cnation = nkey")
}

func TestMultiTableOuterJoin(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(), `SELECT okey, cname, nname FROM ord
		JOIN cust ON ocust = ckey LEFT JOIN nation ON cnation = nkey`)
}

func TestOuterJoinWithAggregation(t *testing.T) {
	// TPC-H q13 shape: customers counted with their order counts.
	checkAgainstBaseline(t, shopCatalog(), `SELECT ckey, COUNT(okey) FROM cust
		LEFT JOIN ord ON ocust = ckey GROUP BY ckey`)
}

func TestUnionAll(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(),
		"SELECT ckey FROM cust UNION ALL SELECT okey FROM ord WHERE price < 10")
}

func TestMultiAttributeJoin(t *testing.T) {
	cat := relation.NewCatalog()
	r := relation.New("r", relation.MustSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindInt), relation.Col("c", relation.KindInt)))
	s := relation.New("s", relation.MustSchema(
		relation.Col("a", relation.KindInt), relation.Col("b", relation.KindInt), relation.Col("d", relation.KindInt)))
	// Figure 3's instance: R2/S2 agree on B but not on A.
	r.MustAppend(relation.Int(1), relation.Int(10), relation.Int(7))
	r.MustAppend(relation.Int(2), relation.Int(20), relation.Int(8))
	s.MustAppend(relation.Int(1), relation.Int(10), relation.Int(70))
	s.MustAppend(relation.Int(3), relation.Int(20), relation.Int(80))
	cat.MustAdd(r)
	cat.MustAdd(s)
	got := checkAgainstBaseline(t, cat,
		"SELECT c, d FROM r, s WHERE r.a = s.a AND r.b = s.b")
	if got.Len() != 1 {
		t.Errorf("rows = %d, want 1 (only the (1,10) pair joins)", got.Len())
	}
}

func TestSelfJoin(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(),
		"SELECT o1.okey, o2.okey FROM ord o1, ord o2 WHERE o1.ocust = o2.ocust AND o1.okey < o2.okey")
}

func TestDuplicateTuplesMultiplicity(t *testing.T) {
	cat := shopCatalog()
	// Duplicate an order: join multiplicities must double for that key.
	cat.Get("ord").MustAppend(relation.Int(100), relation.Int(10), relation.Int(5))
	checkAgainstBaseline(t, cat, "SELECT okey, cname FROM ord, cust WHERE ocust = ckey")
}

func TestSnowflakeAggregation(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(), `SELECT nname, SUM(price) FROM nation, cust, ord
		WHERE cnation = nkey AND ocust = ckey GROUP BY nname`)
}

func TestExpressionsInSelect(t *testing.T) {
	checkAgainstBaseline(t, shopCatalog(),
		"SELECT okey * 2, price + 1, CASE WHEN price > 10 THEN 'hi' ELSE 'lo' END FROM ord")
}

func TestStatsAccumulate(t *testing.T) {
	ex := newExec(t, shopCatalog())
	if _, err := ex.Query("SELECT cname FROM cust, nation WHERE cnation = nkey"); err != nil {
		t.Fatal(err)
	}
	st := ex.Stats()
	if st.Messages == 0 || st.Supersteps == 0 {
		t.Errorf("stats not recorded: %v", st)
	}
	ex.ResetStats()
	if ex.Stats().Messages != 0 {
		t.Error("reset failed")
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	q := "SELECT nname, SUM(price) FROM nation, cust, ord WHERE cnation = nkey AND ocust = ckey GROUP BY nname"
	var first []string
	for i, w := range []int{1, 2, 8} {
		cat := shopCatalog()
		g, _ := tag.Build(cat, tag.MaterializeAll)
		ex := NewExecutor(g, bsp.Options{Workers: w})
		got, err := ex.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		keys := got.SortedKeys()
		if i == 0 {
			first = keys
			continue
		}
		if fmt.Sprint(keys) != fmt.Sprint(first) {
			t.Errorf("workers=%d produced different result", w)
		}
	}
}
