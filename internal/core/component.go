package core

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/sql"
)

// componentRun is the per-component execution state shared by the
// reduction and collection vertex programs (Algorithm 2).
type componentRun struct {
	ex    *Session
	c     *compiled
	comp  *plan.Component
	outer *sql.Env
	subq  sql.SubqueryFn

	// steps is the full reduction schedule: the connected bottom-up UP
	// list followed by its reversal (DOWN).
	steps []stepInfo
	nUp   int

	// marks[v][edgeID] records the senders v received from on that plan
	// edge (most recent pass wins); DOWN and collection sends follow it.
	marks []map[int]map[bsp.VertexID]struct{}

	// filterOK memoizes pushed-filter evaluation per alias and vertex.
	filterOK map[string][]int8 // 0 unknown, 1 pass, 2 fail
	// bindings caches per-alias tuple bindings (read-only once built).
	bindings map[string]sql.Binding
	// prefilter restricts aliases whose filters could not run at vertices
	// (vertex-unsafe subqueries) or that were reduced by a cycle pre-pass.
	prefilter map[string]map[bsp.VertexID]bool

	// values holds the final collection value of root-alias survivors.
	values []*table

	// joiner carries the shared join-shape cache of the collection phase.
	joiner *joiner

	// collectPreds are the vertex-safe residual predicates eligible for
	// early application during collection (§7 pushed selections).
	collectPreds []*predicate
}

// stepInfo is one traversal step resolved against the TAG graph.
type stepInfo struct {
	step   plan.Step
	label  bsp.LabelID // TAG edge label (table.column)
	edgeID int         // plan tree edge: the child node's id
	// toRel is the alias if the receiving side is a relation node
	// (filters apply there); "" for attribute nodes.
	toRel string
	// fromRel mirrors it for the sending side.
	fromRel string
}

// componentResult is the distributed output of one component run.
type componentResult struct {
	run       *componentRun
	rootAlias string
	survivors []bsp.VertexID
	// values[v] is the final table at root vertex v; nil values slice
	// means a single-alias component (rows come from the vertices).
	values []*table
}

// runComponent executes TAG-join for one plan component: the optional
// cycle pre-pass (§6), the reduction phase (UP+DOWN semijoin marking),
// then the collection phase.
func (e *Session) runComponent(c *compiled, comp *plan.Component, outer *sql.Env, subq sql.SubqueryFn) (*componentResult, error) {
	r := &componentRun{ex: e, c: c, comp: comp, outer: outer, subq: subq,
		filterOK:  map[string][]int8{},
		prefilter: map[string]map[bsp.VertexID]bool{},
		bindings:  map[string]sql.Binding{},
		joiner:    newJoiner(c.classCols),
	}
	for _, bt := range c.blk.Tables {
		binding := sql.Binding{}
		for i, col := range bt.Schema.Columns {
			binding[sql.BindKey(bt.Alias, col.Name)] = i
		}
		r.bindings[bt.Alias] = binding
	}
	for _, pr := range c.residual {
		if len(pr.cols) > 0 && (pr.fn != nil || len(sql.SubSelects(pr.expr)) == 0) {
			r.collectPreds = append(r.collectPreds, pr)
		}
	}
	if err := r.hoistUnsafeFilters(); err != nil {
		return nil, err
	}

	p := comp.TAGPlan
	if len(p.Steps) == 0 {
		// Single-alias component: one filtering superstep.
		return r.runSingle(p.StartAlias)
	}

	// Cycle pre-pass: reduce cycle members before the tree reduction.
	// Cycles whose predicates are all PK-FK joins skip the heavy/light
	// propagation (§6.1.1): the join sizes are bounded by the largest
	// relation, so the tree reduction plus the collection-phase class
	// agreement on the broken predicate already stay within budget.
	for _, cyc := range comp.Cycles {
		if r.cycleIsPKFK(cyc) && !e.ForceCyclePrePass {
			continue
		}
		if err := r.runCyclePass(cyc); err != nil {
			return nil, err
		}
	}

	if err := r.resolveSteps(); err != nil {
		return nil, err
	}
	r.marks = make([]map[int]map[bsp.VertexID]struct{}, e.TAG.G.NumVertices())

	survivors, err := r.runReduction()
	if err != nil {
		return nil, err
	}
	return r.runCollection(survivors)
}

// cycleIsPKFK reports whether the cycle is PK-FK dominated: at most one
// predicate is not a declared primary-foreign key join. Per §6.1.1 the
// replication rate of PK-FK joins is bounded by the foreign-key relation,
// so walking the cycle as a (broken) tree cannot blow up beyond the fact
// table, and the one remaining equality is enforced by the collection
// phase's class agreement. Genuinely many-to-many cycles (triangles over
// non-key attributes) still take the heavy/light pre-pass of §6.1.2.
func (r *componentRun) cycleIsPKFK(cyc plan.Cycle) bool {
	cat := r.ex.TAG.Catalog
	nonKey := 0
	for _, p := range cyc.Preds {
		if !cat.IsPKFKJoin(r.c.aliasTable[p.A.Alias], p.A.Column, r.c.aliasTable[p.B.Alias], p.B.Column) {
			nonKey++
		}
	}
	return nonKey <= 1
}

// resolveSteps maps plan steps to TAG labels and plan edges.
func (r *componentRun) resolveSteps() error {
	p := r.comp.TAGPlan
	up := p.Steps
	all := append(append([]plan.Step{}, up...), plan.Reversed(up)...)
	r.nUp = len(up)
	for _, s := range all {
		info, err := r.resolveStep(s)
		if err != nil {
			return err
		}
		r.steps = append(r.steps, info)
	}
	return nil
}

func (r *componentRun) resolveStep(s plan.Step) (stepInfo, error) {
	table := r.c.aliasTable[s.Label.Alias]
	lbl, ok := r.ex.TAG.EdgeLabel(table, s.Label.Column)
	if !ok || !r.ex.TAG.Materialized(table, s.Label.Column) {
		return stepInfo{}, fmt.Errorf("core: join column %s.%s is not materialized in the TAG graph", table, s.Label.Column)
	}
	p := r.comp.TAGPlan
	edge := s.From
	if p.Nodes[s.From].Parent == s.To {
		edge = s.From
	} else {
		edge = s.To
	}
	info := stepInfo{step: s, label: lbl, edgeID: edge}
	if p.Nodes[s.To].Kind == plan.RelNode {
		info.toRel = p.Nodes[s.To].Alias
	}
	if p.Nodes[s.From].Kind == plan.RelNode {
		info.fromRel = p.Nodes[s.From].Alias
	}
	return info, nil
}

// hoistUnsafeFilters pre-evaluates pushed filters that contain
// un-decorrelated subqueries (they would re-enter the engine if run
// inside a vertex program) into per-alias allowed sets.
func (r *componentRun) hoistUnsafeFilters() error {
	for alias, preds := range r.c.filters {
		var unsafe []*predicate
		for _, p := range preds {
			if p.fn == nil && len(sql.SubSelects(p.expr)) > 0 {
				unsafe = append(unsafe, p)
			}
		}
		if len(unsafe) == 0 {
			continue
		}
		allowed := map[bsp.VertexID]bool{}
		table := r.c.aliasTable[alias]
		binding := r.aliasBinding(alias)
		env := &sql.Env{Binding: binding, Parent: r.outer}
		for _, v := range r.ex.TAG.TupleVertices(table) {
			d := r.ex.TAG.TupleData(v)
			if d == nil || d.Dead {
				continue
			}
			env.Row = d.Row
			ok := true
			for _, p := range unsafe {
				pass, err := p.eval(env, r.subq)
				if err != nil {
					return err
				}
				if !pass {
					ok = false
					break
				}
			}
			if ok {
				allowed[v] = true
			}
		}
		r.intersectPrefilter(alias, allowed)
	}
	return nil
}

// intersectPrefilter narrows the allowed set of an alias.
func (r *componentRun) intersectPrefilter(alias string, allowed map[bsp.VertexID]bool) {
	if prev, ok := r.prefilter[alias]; ok {
		for v := range prev {
			if !allowed[v] {
				delete(prev, v)
			}
		}
		return
	}
	r.prefilter[alias] = allowed
}

// aliasBinding returns the cached tuple binding of an alias.
func (r *componentRun) aliasBinding(alias string) sql.Binding {
	return r.bindings[alias]
}

// passes evaluates (and memoizes) the vertex-safe pushed filters of an
// alias for vertex v; unsafe filters were hoisted into prefilter.
// Safe for concurrent use: the memo slice is per-alias, per-vertex slot.
func (r *componentRun) passes(alias string, v bsp.VertexID) bool {
	if w, ok := r.ex.restrict[alias]; ok && !w.contains(v) {
		return false
	}
	if pre, ok := r.prefilter[alias]; ok && !pre[v] {
		return false
	}
	d := r.ex.TAG.TupleData(v)
	if d == nil || d.Dead || d.Table != r.c.aliasTable[alias] {
		return false
	}
	memo := r.filterOK[alias]
	if memo == nil {
		return r.evalFilters(alias, v, d.Row)
	}
	switch memo[v] {
	case 1:
		return true
	case 2:
		return false
	}
	ok := r.evalFilters(alias, v, d.Row)
	if ok {
		memo[v] = 1
	} else {
		memo[v] = 2
	}
	return ok
}

// prepareFilterMemo allocates the memo slice for aliases with filters.
func (r *componentRun) prepareFilterMemo() {
	for alias, preds := range r.c.filters {
		hasSafe := false
		for _, p := range preds {
			if p.fn != nil || len(sql.SubSelects(p.expr)) == 0 {
				hasSafe = true
			}
		}
		if hasSafe {
			r.filterOK[alias] = make([]int8, r.ex.TAG.G.NumVertices())
		}
	}
}

func (r *componentRun) evalFilters(alias string, v bsp.VertexID, row relation.Tuple) bool {
	preds := r.c.filters[alias]
	if len(preds) == 0 {
		return true
	}
	env := &sql.Env{Binding: r.aliasBinding(alias), Row: row, Parent: r.outer}
	for _, p := range preds {
		if p.fn == nil && len(sql.SubSelects(p.expr)) > 0 {
			continue // hoisted
		}
		ok, err := p.eval(env, nil)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// initialActives returns the filtered tuple vertices of an alias.
func (r *componentRun) initialActives(alias string) []bsp.VertexID {
	var out []bsp.VertexID
	for _, v := range r.seedVertices(alias) {
		if r.passes(alias, v) {
			out = append(out, v)
		}
	}
	return out
}

// seedVertices returns the alias's tuple vertices narrowed to its
// restriction window, if any. The per-relation vertex lists are in
// ascending ID order (vertices are appended as they are created), so a
// window is a contiguous sub-slice found by binary search — this is
// what makes a delta-restricted seed O(log n + |delta|) instead of a
// scan of the whole relation.
func (r *componentRun) seedVertices(alias string) []bsp.VertexID {
	verts := r.ex.TAG.TupleVertices(r.c.aliasTable[alias])
	w, ok := r.ex.restrict[alias]
	if !ok {
		return verts
	}
	return w.slice(verts)
}

// applyCollectPreds filters a partial table by every residual predicate
// whose columns just became available (present now, absent before this
// vertex's join with its own tuple).
func (r *componentRun) applyCollectPreds(ctx *bsp.Context, t *table, pre map[string]int) *table {
	var apply []*predicate
	for _, p := range r.collectPreds {
		complete := true
		wasComplete := pre != nil
		for _, col := range p.cols {
			if _, ok := t.index[col]; !ok {
				complete = false
				break
			}
			if wasComplete {
				if _, ok := pre[col]; !ok {
					wasComplete = false
				}
			}
		}
		if complete && !wasComplete {
			apply = append(apply, p)
		}
	}
	if len(apply) == 0 {
		return t
	}
	out := newTableShared(t.header, t.index)
	env := &sql.Env{Binding: sql.Binding(t.index), Parent: r.outer}
	for _, row := range t.rows {
		env.Row = row
		keep := true
		for _, p := range apply {
			ok, err := p.eval(env, nil)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out.rows = append(out.rows, row)
		}
	}
	ctx.AddOps(len(t.rows))
	return out
}

// runSingle handles a single-alias component: one superstep in which the
// alias's vertices filter themselves and report survival.
func (r *componentRun) runSingle(alias string) (*componentResult, error) {
	r.prepareFilterMemo()
	res := &componentResult{run: r, rootAlias: alias}
	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		ctx.AddOps(1)
		if r.passes(alias, v) {
			ctx.Emit(v)
		}
	})
	if err := r.ex.runProg(prog, r.seedVertices(alias)); err != nil {
		return nil, err
	}
	for _, e := range r.ex.eng.Emitted() {
		res.survivors = append(res.survivors, e.(bsp.VertexID))
	}
	return res, nil
}

// ownRow builds the needed-columns row table of a tuple vertex; the
// header and index are the alias's shared shapes.
func (r *componentRun) ownRow(alias string, v bsp.VertexID) *table {
	d := r.ex.TAG.TupleData(v)
	header := r.c.ownHeader[alias]
	t := newTableShared(header, r.c.ownIndex[alias])
	out := make([]relation.Value, 0, len(header))
	for _, si := range r.c.neededIdx[alias] {
		out = append(out, d.Row[si])
	}
	out = append(out, relation.Int(int64(v)))
	t.rows = [][]relation.Value{out}
	return t
}

// canonicalHeader lists every alias's bind keys plus id columns; used for
// empty results so downstream bindings resolve.
func (c *compiled) canonicalHeader() []string {
	var out []string
	for _, alias := range c.sortAliases() {
		out = append(out, c.bindKeys[alias]...)
		out = append(out, idCol(alias))
	}
	return out
}

// assemble unions the distributed values into one table (the "collect
// output at a central location" convention; the communication cost of
// doing so is OUT, §4.1.2).
func (res *componentResult) assemble(c *compiled) *table {
	if res.values == nil {
		// Single-alias component.
		alias := res.rootAlias
		header := append(append([]string{}, c.bindKeys[alias]...), idCol(alias))
		out := newTable(header)
		for _, v := range res.survivors {
			out.rows = append(out.rows, res.run.ownRow(alias, v).rows[0])
		}
		return out
	}
	var out *table
	for _, v := range res.survivors {
		t := res.values[v]
		if t == nil {
			continue
		}
		if out == nil {
			out = t.clone()
			out.rows = append([][]relation.Value{}, t.rows...)
		} else {
			out.rows = append(out.rows, t.rows...)
		}
	}
	if out == nil {
		out = newTable(c.componentHeader(res.run.comp))
	}
	return out
}

// componentHeader is the canonical header of a component's aliases.
func (c *compiled) componentHeader(comp *plan.Component) []string {
	var out []string
	for _, alias := range comp.Aliases {
		out = append(out, c.bindKeys[alias]...)
		out = append(out, idCol(alias))
	}
	return out
}
