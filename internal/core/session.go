package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

// Session holds all per-query mutable state of one evaluation over a
// shared, frozen TAG graph: its own BSP engine (sparse inboxes, stats),
// the subquery memoization caches, the decorrelation tables, and a
// snapshot of the ablation knobs. A Session runs one query at a time,
// but any number of Sessions may evaluate concurrently over the same
// tag.Graph — the TAG encoding is query-independent, so serving N
// queries means N Sessions over one graph. The engine's message plane
// is sparse and pooled, so an idle Session holds O(active-frontier)
// memory, not O(|V|), and building one is cheap enough to do on the
// serving path.
//
// A Session is pinned to the graph it was created on, which must stay
// frozen and unmutated for the Session's lifetime. Incremental
// maintenance therefore never touches a graph with live Sessions:
// internal/serve clones the graph copy-on-write, applies the batch to
// the clone, publishes it as a new generation with fresh Sessions, and
// lets the old generation's Sessions drain.
type Session struct {
	TAG  *tag.Graph
	Opts bsp.Options

	// Theta overrides the heavy/light threshold of cyclic queries
	// (§6.1.2); 0 means the default θ = √IN.
	Theta float64

	// DisablePartialAgg turns off the eager/partial aggregation of §7.
	DisablePartialAgg bool

	// ForceCyclePrePass runs the §6.2 heavy/light cycle reduction even on
	// PK-FK-dominated cycles that would normally take the §6.1.1 shortcut.
	ForceCyclePrePass bool

	// ForceGlobalAgg routes local-aggregation queries through the global
	// aggregator vertex instead of parallel per-attribute-vertex
	// aggregation (§7/§8.3).
	ForceGlobalAgg bool

	eng  *bsp.Engine
	Info ExecInfo

	subCache  map[*sql.Select]*relation.Relation
	corrCache map[string]*relation.Relation
	decorr    map[*sql.Select]*decorrTable

	// restrict limits which tuple vertices of an alias participate in a
	// run, by vertex-ID window (incremental maintenance's old/delta
	// split); nil means unrestricted. deltaAlias names the alias whose
	// window is the write delta, so planning can seed the reduction
	// there. capture, when non-nil, snapshots the pre-projection group
	// state of the next aggregate run. All three are managed by the
	// incremental runner (incremental.go) and are nil/"" for ordinary
	// queries.
	restrict   map[string]vertexWindow
	deltaAlias string
	capture    *stateCapture
}

// NewSession prepares an independent evaluation session over t. The
// returned Session owns a private BSP engine, so it shares nothing
// mutable with other sessions on the same graph.
func NewSession(t *tag.Graph, opts bsp.Options) *Session {
	if opts.PayloadSize == nil {
		opts.PayloadSize = payloadSize
	}
	if opts.Codec == nil {
		// The SQL layer's payload registry: lets the engine put this
		// package's message and emit types on the wire (and price the
		// simulated exchange in exactly those bytes).
		opts.Codec = sessionCodec{}
	}
	return &Session{
		TAG:  t,
		Opts: opts,
		eng:  bsp.NewEngine(t.G, opts),
	}
}

// runProg runs one vertex program on the session's engine and surfaces
// the engine-level error: a Context.Fail raised by any partition (made
// global at the barrier) or a transport/codec failure. Phases must
// check it before consuming Emitted(), which may be partial after an
// aborted run.
func (e *Session) runProg(prog bsp.Program, initial []bsp.VertexID) error {
	e.eng.Run(prog, initial)
	return e.eng.RunErr()
}

// partitionRelays returns one vertex per simulated machine (partition)
// to act as the per-machine aggregation combiner; with a single partition
// it returns nil and aggregation messages go straight to the global
// aggregator vertex.
func (e *Session) partitionRelays() []bsp.VertexID {
	opts := e.Opts
	if opts.Partitions <= 1 {
		return nil
	}
	partOf := opts.PartitionOf
	if partOf == nil {
		p := opts.Partitions
		partOf = func(v bsp.VertexID) int { return int(v) % p }
	}
	relays := make([]bsp.VertexID, opts.Partitions)
	seen := 0
	assigned := make([]bool, opts.Partitions)
	for v := 0; v < e.TAG.G.NumVertices() && seen < opts.Partitions; v++ {
		p := partOf(bsp.VertexID(v))
		if p >= 0 && p < opts.Partitions && !assigned[p] {
			assigned[p] = true
			relays[p] = bsp.VertexID(v)
			seen++
		}
	}
	return relays
}

// Stats returns the accumulated BSP cost measures across this session's
// queries.
func (e *Session) Stats() bsp.Stats { return e.eng.Stats() }

// ResetStats zeroes the accumulated cost measures.
func (e *Session) ResetStats() { e.eng.ResetStats() }

// DistErr reports the sticky transport failure that has permanently
// degraded this session's distributed engine (nil on loopback sessions
// and while a distributed transport stays healthy). Query errors do
// not set it; a node that reports one can no longer participate in its
// topology.
func (e *Session) DistErr() error { return e.eng.DistErr() }

// InboxBytes reports the resident memory of this session's sparse BSP
// message plane (live inbox entries plus pooled buffers); compare with
// bsp.DenseInboxBytes for the dense O(|V|) plane it replaced.
func (e *Session) InboxBytes() int64 { return e.eng.InboxBytes() }

// PeakInboxBytes reports the largest resident inbox footprint any of
// this session's supersteps reached (requires Opts.Profile). Together
// with Stats().MessagesCombined / InboxBytesSaved it quantifies what
// Send-time combining kept out of the message plane.
func (e *Session) PeakInboxBytes() int64 { return e.eng.PeakInboxBytes() }

// MergeDuration reports the cumulative communication-stage wall time of
// this session's supersteps (requires Opts.Profile).
func (e *Session) MergeDuration() time.Duration { return e.eng.MergeDuration() }

// Query parses, analyzes and executes a SQL string.
func (e *Session) Query(query string) (*relation.Relation, error) {
	an, err := sql.AnalyzeString(e.TAG.Catalog, query)
	if err != nil {
		return nil, err
	}
	return e.Run(an)
}

// Run executes an analyzed query. The Analysis may be shared across
// sessions (prepared-statement style): execution never mutates it.
func (e *Session) Run(an *sql.Analysis) (*relation.Relation, error) {
	e.subCache = map[*sql.Select]*relation.Relation{}
	e.corrCache = map[string]*relation.Relation{}
	e.decorr = map[*sql.Select]*decorrTable{}
	e.Info = ExecInfo{Acyclic: true}
	return e.runChain(an, an.Root, nil)
}

// RunContext is Run with cooperative cancellation: once ctx is done
// (deadline or explicit cancel), the session's engine stops at the
// next superstep barrier and RunContext returns ctx's error. The
// abort point is a barrier, never mid-superstep, so the engine's
// pooled planes go through their normal end-of-Run cleanup and the
// session stays safe to reuse for the next query — which is what lets
// a serving layer return a cancelled query's session to its pool.
//
// The execution phases between engine runs see partial frontiers
// after an abort; whatever they derive is discarded, and a panic they
// raise while ctx is cancelled is converted into the cancellation
// error (a panic with ctx still live propagates unchanged, exactly as
// under Run). A context that can never be cancelled costs nothing:
// RunContext then is Run.
func (e *Session) RunContext(ctx context.Context, an *sql.Analysis) (out *relation.Relation, err error) {
	if ctx == nil || ctx.Done() == nil {
		return e.Run(an)
	}
	deadline, hasDeadline := ctx.Deadline()
	e.eng.SetContext(ctx)
	defer e.eng.SetContext(nil)
	defer func() {
		cerr := ctx.Err()
		if cerr == nil && hasDeadline && time.Now().After(deadline) {
			// ctx.Err turns non-nil only when a runtime timer fires, and
			// on a single-P runtime a compute-bound query can hold the
			// only P past its whole deadline window. The deadline is a
			// wall-clock fact (the engine's barriers treat it the same
			// way); a run that finished past it is reported aborted.
			cerr = context.DeadlineExceeded
		}
		if cerr != nil {
			recover() // partial-frontier panic caused by the abort, if any
			out, err = nil, fmt.Errorf("core: query aborted: %w", cerr)
		}
	}()
	return e.Run(an)
}

func (e *Session) runChain(an *sql.Analysis, blk *sql.Analyzed, outer *sql.Env) (*relation.Relation, error) {
	out, err := e.runBlock(an, blk, outer)
	if err != nil {
		return nil, err
	}
	for next := blk.UnionNext; next != nil; next = next.UnionNext {
		arm, err := e.runBlock(an, next, outer)
		if err != nil {
			return nil, err
		}
		out.Tuples = append(out.Tuples, arm.Tuples...)
	}
	return out, nil
}

// subqueryFn evaluates nested blocks: uncorrelated blocks run once and
// cache; correlated ones run per distinct correlation key (memoized),
// each as its own TAG vertex program.
func (e *Session) subqueryFn(an *sql.Analysis) sql.SubqueryFn {
	return func(sub *sql.Select, env *sql.Env) (*relation.Relation, error) {
		// Decorrelated subqueries answer from their prebuilt lookup table.
		if dt := e.decorr[sub]; dt != nil {
			return dt.lookup(env)
		}
		blk := an.Blocks[sub]
		if blk == nil {
			return nil, fmt.Errorf("core: unanalyzed subquery")
		}
		if !sql.BlockIsCorrelated(an, blk) {
			if cached, ok := e.subCache[sub]; ok {
				return cached, nil
			}
			out, err := e.runChain(an, blk, env)
			if err != nil {
				return nil, err
			}
			e.subCache[sub] = out
			return out, nil
		}
		key := e.corrKey(an, blk, sub, env)
		if cached, ok := e.corrCache[key]; ok {
			return cached, nil
		}
		out, err := e.runChain(an, blk, env)
		if err != nil {
			return nil, err
		}
		e.corrCache[key] = out
		return out, nil
	}
}

// corrKey builds the memoization key of a correlated subquery: the values
// of its outer references under env.
func (e *Session) corrKey(an *sql.Analysis, blk *sql.Analyzed, sub *sql.Select, env *sql.Env) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%p", sub)
	for _, ref := range sql.OuterRefs(an, blk) {
		v, err := sql.Eval(&sql.ColRef{Alias: ref.Alias, Column: ref.Column, Table: ref.Table}, env, nil)
		if err != nil {
			v = relation.Null
		}
		b.WriteByte('\x1f')
		k := v.Key()
		b.WriteByte(byte(k.Kind) + '0')
		b.WriteString(k.String())
	}
	return b.String()
}

// runBlock executes one SELECT block.
func (e *Session) runBlock(an *sql.Analysis, blk *sql.Analyzed, outer *sql.Env) (*relation.Relation, error) {
	c, err := e.compileBlock(an, blk)
	if err != nil {
		return nil, err
	}
	if c.agg > e.Info.Agg {
		e.Info.Agg = c.agg
	}

	if c.hasOuter {
		e.Info.Fallbacks++
		return e.runOuterBlock(c, outer)
	}

	e.Info.Components += len(c.qp.Components)
	if !c.qp.Acyclic {
		e.Info.Acyclic = false
	}

	subq := e.subqueryFn(an)

	// One TAG-join run per component, then Cartesian-combine (§6.3/§6.4).
	var combined *table
	j := newJoiner(c.classCols)
	var singleRes *componentResult
	for _, comp := range c.qp.Components {
		e.Info.Cycles += len(comp.Cycles)
		res, err := e.runComponent(c, comp, outer, subq)
		if err != nil {
			return nil, err
		}
		if len(c.qp.Components) == 1 {
			singleRes = res
			break
		}
		t := res.assemble(c)
		if combined == nil {
			combined = t
		} else {
			// Cartesian product of components: account the Algorithm B
			// communication cost (|L|·|R| messages, §6.3).
			e.eng.AddExternal(int64(len(combined.rows))*int64(len(t.rows)), int64(combined.size()))
			combined = j.join(combined, t)
		}
	}

	// Distributed finalization for single-component blocks whose residual
	// predicates are vertex-safe; central finalization otherwise.
	if singleRes != nil && c.residualVertexSafe() {
		switch c.agg {
		case AggLocal:
			if _, ok := c.localAggKey(e.TAG); ok && !e.ForceGlobalAgg {
				return e.finalizeLocal(c, singleRes, outer, subq)
			}
			return e.finalizeGlobal(c, singleRes, outer, subq)
		case AggGlobal, AggScalar:
			return e.finalizeGlobal(c, singleRes, outer, subq)
		default:
			return e.finalizeNone(c, singleRes, outer, subq)
		}
	}
	if singleRes != nil {
		combined = singleRes.assemble(c)
	}
	combined, err = e.applyResidualCentral(c, combined, outer, subq)
	if err != nil {
		return nil, err
	}
	return e.projectCentral(c, combined, outer, subq)
}

// applyResidualCentral filters an assembled table by the residual
// predicates.
func (e *Session) applyResidualCentral(c *compiled, t *table, outer *sql.Env, subq sql.SubqueryFn) (*table, error) {
	if len(c.residual) == 0 || t == nil {
		return t, nil
	}
	out := newTableShared(t.header, t.index)
	env := &sql.Env{Binding: sql.Binding(t.index), Parent: outer}
	for _, row := range t.rows {
		env.Row = relation.Tuple(row)
		keep := true
		for _, p := range c.residual {
			ok, err := p.eval(env, subq)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// projectCentral applies grouping, aggregation, HAVING, the SELECT list
// and DISTINCT to an assembled table (used for multi-component blocks and
// blocks with vertex-unsafe expressions).
func (e *Session) projectCentral(c *compiled, t *table, outer *sql.Env, subq sql.SubqueryFn) (*relation.Relation, error) {
	if t == nil {
		t = unitTable()
		t.rows = nil
	}
	rows := make([]relation.Tuple, len(t.rows))
	for i, r := range t.rows {
		rows[i] = relation.Tuple(r)
	}
	return projectRows(c.blk, sql.Binding(t.index), rows, outer, subq)
}
