package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/tag"
)

// randCatalog builds a random 4-table catalog with small integer domains
// (lots of join matches, duplicates and NULLs) plus a string column.
func randCatalog(rng *rand.Rand) *relation.Catalog {
	cat := relation.NewCatalog()
	names := []string{"t0", "t1", "t2", "t3"}
	labels := []string{"x", "y", "z"}
	for _, n := range names {
		r := relation.New(n, relation.MustSchema(
			relation.Col("a", relation.KindInt),
			relation.Col("b", relation.KindInt),
			relation.Col("c", relation.KindInt),
			relation.Col("s", relation.KindString)))
		rows := 4 + rng.Intn(24)
		for i := 0; i < rows; i++ {
			val := func() relation.Value {
				if rng.Intn(12) == 0 {
					return relation.Null
				}
				return relation.Int(int64(rng.Intn(6)))
			}
			r.MustAppend(val(), val(), val(), relation.Str(labels[rng.Intn(len(labels))]))
		}
		cat.MustAdd(r)
	}
	return cat
}

// randQuery builds a random supported query over the catalog.
func randQuery(rng *rand.Rand) string {
	nAliases := 1 + rng.Intn(3)
	aliases := make([]string, nAliases)
	var from []string
	for i := range aliases {
		aliases[i] = fmt.Sprintf("r%d", i)
		from = append(from, fmt.Sprintf("t%d %s", rng.Intn(4), aliases[i]))
	}
	cols := []string{"a", "b", "c"}
	col := func(i int) string { return aliases[i] + "." + cols[rng.Intn(3)] }

	var conjs []string
	// Join predicates: connect alias i to a previous alias (usually).
	for i := 1; i < nAliases; i++ {
		if rng.Intn(6) == 0 {
			continue // occasionally leave a Cartesian component
		}
		conjs = append(conjs, fmt.Sprintf("%s = %s", col(rng.Intn(i)), col(i)))
	}
	// Filters.
	for i := 0; i < rng.Intn(3); i++ {
		a := rng.Intn(nAliases)
		switch rng.Intn(5) {
		case 0:
			conjs = append(conjs, fmt.Sprintf("%s > %d", col(a), rng.Intn(4)))
		case 1:
			conjs = append(conjs, fmt.Sprintf("%s IN (%d, %d)", col(a), rng.Intn(6), rng.Intn(6)))
		case 2:
			conjs = append(conjs, fmt.Sprintf("%s.s LIKE '%s%%'", aliases[a], []string{"x", "y", "z"}[rng.Intn(3)]))
		case 3:
			conjs = append(conjs, fmt.Sprintf("%s IS NOT NULL", col(a)))
		case 4:
			conjs = append(conjs, fmt.Sprintf("%s BETWEEN %d AND %d", col(a), rng.Intn(3), 2+rng.Intn(4)))
		}
	}
	// Occasionally a subquery predicate.
	if rng.Intn(4) == 0 {
		inner := rng.Intn(4)
		a := rng.Intn(nAliases)
		switch rng.Intn(3) {
		case 0:
			conjs = append(conjs, fmt.Sprintf("EXISTS (SELECT 1 FROM t%d sub WHERE sub.a = %s)", inner, col(a)))
		case 1:
			conjs = append(conjs, fmt.Sprintf("%s IN (SELECT sub.b FROM t%d sub WHERE sub.c > 1)", col(a), inner))
		case 2:
			conjs = append(conjs, fmt.Sprintf("%s.a NOT IN (SELECT sub.c FROM t%d sub WHERE sub.c IS NOT NULL)", aliases[a], inner))
		}
	}

	where := ""
	if len(conjs) > 0 {
		where = " WHERE " + strings.Join(conjs, " AND ")
	}

	switch rng.Intn(4) {
	case 0: // plain projection
		return fmt.Sprintf("SELECT %s, %s FROM %s%s",
			col(0), col(rng.Intn(nAliases)), strings.Join(from, ", "), where)
	case 1: // DISTINCT
		return fmt.Sprintf("SELECT DISTINCT %s FROM %s%s",
			col(0), strings.Join(from, ", "), where)
	case 2: // group by + aggregates
		g := col(rng.Intn(nAliases))
		return fmt.Sprintf("SELECT %s, COUNT(*), SUM(%s), MIN(%s) FROM %s%s GROUP BY %s",
			g, col(rng.Intn(nAliases)), col(rng.Intn(nAliases)),
			strings.Join(from, ", "), where, g)
	default: // scalar aggregation
		return fmt.Sprintf("SELECT COUNT(*), SUM(%s), MAX(%s) FROM %s%s",
			col(rng.Intn(nAliases)), col(0), strings.Join(from, ", "), where)
	}
}

// TestRandomizedDifferential cross-checks the TAG-join executor against
// the baseline engine on hundreds of randomly generated queries over
// randomly generated databases (small domains: duplicate-heavy,
// NULL-heavy, skewed).
func TestRandomizedDifferential(t *testing.T) {
	const rounds = 30
	const queriesPerRound = 12
	rng := rand.New(rand.NewSource(99))

	for round := 0; round < rounds; round++ {
		cat := randCatalog(rng)
		g, err := tag.Build(cat, tag.MaterializeAll)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(g, bsp.Options{Workers: 4})
		ref := baseline.New(cat)

		for qi := 0; qi < queriesPerRound; qi++ {
			q := randQuery(rng)
			got, err1 := ex.Query(q)
			want, err2 := ref.Query(q)
			if err1 != nil || err2 != nil {
				t.Fatalf("round %d q %d errors: tag=%v base=%v\nquery: %s", round, qi, err1, err2, q)
			}
			if !relation.EqualMultisetFuzzy(got, want) {
				onlyG, onlyW := relation.DiffMultiset(got, want, 4)
				t.Fatalf("round %d mismatch (%d vs %d rows)\nquery: %s\nonly TAG: %v\nonly base: %v",
					round, got.Len(), want.Len(), q, onlyG, onlyW)
			}
		}
	}
}

// TestRandomizedOuterJoins cross-checks LEFT/RIGHT/FULL joins (both the
// §7 two-way vertex program and the table-level path) against the
// baseline on random data.
func TestRandomizedOuterJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 12; round++ {
		cat := randCatalog(rng)
		g, err := tag.Build(cat, tag.MaterializeAll)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(g, bsp.Options{Workers: 4})
		ref := baseline.New(cat)
		jt := []string{"LEFT JOIN", "RIGHT JOIN", "FULL JOIN"}[rng.Intn(3)]
		c1, c2 := []string{"a", "b", "c"}[rng.Intn(3)], []string{"a", "b", "c"}[rng.Intn(3)]
		q := fmt.Sprintf("SELECT l.a, l.b, r.c FROM t%d l %s t%d r ON l.%s = r.%s",
			rng.Intn(4), jt, rng.Intn(4), c1, c2)
		if rng.Intn(2) == 0 {
			// Three-way: an inner join before the outer one (table path).
			q = fmt.Sprintf("SELECT l.a, m.b, r.c FROM t%d l JOIN t%d m ON l.a = m.a %s t%d r ON m.%s = r.%s",
				rng.Intn(4), rng.Intn(4), jt, rng.Intn(4), c1, c2)
		}
		got, err1 := ex.Query(q)
		want, err2 := ref.Query(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("round %d errors: tag=%v base=%v\nquery: %s", round, err1, err2, q)
		}
		if !relation.EqualMultiset(got, want) {
			onlyG, onlyW := relation.DiffMultiset(got, want, 4)
			t.Fatalf("round %d outer-join mismatch (%d vs %d rows)\nquery: %s\nonly TAG: %v\nonly base: %v",
				round, got.Len(), want.Len(), q, onlyG, onlyW)
		}
	}
}

// TestRandomizedSelfJoins stresses the plan-edge-keyed marking that makes
// self-joins sound.
func TestRandomizedSelfJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 10; round++ {
		cat := randCatalog(rng)
		g, err := tag.Build(cat, tag.MaterializeAll)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(g, bsp.Options{Workers: 4})
		ref := baseline.New(cat)
		tbl := rng.Intn(4)
		q := fmt.Sprintf(`SELECT p.a, q.b FROM t%d p, t%d q WHERE p.b = q.b AND p.a < q.a`, tbl, tbl)
		got, err1 := ex.Query(q)
		want, err2 := ref.Query(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors: %v %v", err1, err2)
		}
		if !relation.EqualMultiset(got, want) {
			t.Fatalf("self-join mismatch on %s: %d vs %d rows", q, got.Len(), want.Len())
		}
	}
}

// TestQueryAfterMaintenance verifies that incremental TAG inserts and
// deletes are visible to subsequent queries without rebuilding (the §3
// maintenance claim), including engine-internal growth.
func TestQueryAfterMaintenance(t *testing.T) {
	cat := shopCatalog()
	g, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(g, bsp.Options{Workers: 2})
	q := "SELECT cname, nname FROM cust, nation WHERE cnation = nkey"
	out, err := ex.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	before := out.Len()

	// Insert a customer in PERU (new attribute linkage) and re-query.
	if _, err := g.InsertTuple("cust", relation.Tuple{
		relation.Int(50), relation.Int(3), relation.Str("eve")}); err != nil {
		t.Fatal(err)
	}
	out, err = ex.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != before+1 {
		t.Fatalf("after insert rows = %d, want %d", out.Len(), before+1)
	}

	// Delete it again.
	verts := g.TupleVertices("cust")
	if err := g.DeleteTuple(verts[len(verts)-1]); err != nil {
		t.Fatal(err)
	}
	out, err = ex.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != before {
		t.Fatalf("after delete rows = %d, want %d", out.Len(), before)
	}
}
