package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
	"repro/internal/tpch"
)

func buildGraph(t *testing.T, cat *relation.Catalog) *tag.Graph {
	t.Helper()
	g, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pinQuery(t *testing.T, g *tag.Graph, opts bsp.Options, query string, epoch uint64) (*sql.Analysis, *QueryState) {
	t.Helper()
	an, err := sql.AnalyzeString(g.Catalog, query)
	if err != nil {
		t.Fatalf("analyze %q: %v", query, err)
	}
	sess := NewSession(g, opts)
	if ok, why := sess.IncrementalEligible(an); !ok {
		t.Fatalf("expected %q eligible, got: %s", query, why)
	}
	st, err := sess.BuildState(an, epoch)
	if err != nil {
		t.Fatalf("BuildState %q: %v", query, err)
	}
	return an, st
}

// checkFoldedAnswer asserts the byte-identity contract: the folded
// answer for an epoch must equal a cold re-run of the same query on the
// same generation, canonically serialized.
func checkFoldedAnswer(t *testing.T, g *tag.Graph, opts bsp.Options, st *QueryState, label string) {
	t.Helper()
	cold := NewSession(g, opts)
	want, err := cold.Run(st.An)
	if err != nil {
		t.Fatalf("%s: cold run: %v", label, err)
	}
	got, wantB := CanonicalBytes(st.Answer), CanonicalBytes(want)
	if !bytes.Equal(got, wantB) {
		t.Fatalf("%s: folded answer diverges from cold run\nfold rows %d: %v\ncold rows %d: %v",
			label, st.Answer.Len(), st.Answer.Tuples, want.Len(), want.Tuples)
	}
}

func TestIncrementalEligible(t *testing.T) {
	g := buildGraph(t, shopCatalog())
	sess := NewSession(g, bsp.Options{Workers: 2})
	cases := []struct {
		query string
		want  bool
	}{
		{"SELECT cname FROM cust WHERE ckey > 15", true},
		{"SELECT cname, nname FROM cust, nation WHERE cnation = nkey", true},
		{"SELECT cnation, COUNT(*) FROM cust GROUP BY cnation", true},
		{"SELECT cnation, MIN(cname) FROM cust GROUP BY cnation", true},
		{"SELECT COUNT(*), SUM(price) FROM ord", true},
		{"SELECT DISTINCT cnation FROM cust", true},
		{"SELECT cname, nname FROM cust LEFT JOIN nation ON cnation = nkey", false},
		{"SELECT cname FROM cust WHERE cnation IN (SELECT nkey FROM nation)", false},
	}
	for _, c := range cases {
		an, err := sql.AnalyzeString(g.Catalog, c.query)
		if err != nil {
			t.Fatalf("analyze %q: %v", c.query, err)
		}
		got, why := sess.IncrementalEligible(an)
		if got != c.want {
			t.Errorf("IncrementalEligible(%q) = %v (%s), want %v", c.query, got, why, c.want)
		}
	}

	tri := NewSession(buildGraph(t, triangleCatalog()), bsp.Options{Workers: 2})
	an, err := sql.AnalyzeString(tri.TAG.Catalog,
		"SELECT COUNT(*) FROM r, s, t WHERE r.b = s.b AND s.c = t.c AND t.a = r.a")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := tri.IncrementalEligible(an); ok {
		t.Error("cyclic triangle query reported eligible")
	}
}

// TestFoldDeltaChain advances pinned queries across a chain of
// insert-only generations and checks every folded answer against a cold
// re-run. All aggregates are integer-valued, so every epoch must fold
// (FoldHit), including epochs that only touch unreferenced tables.
func TestFoldDeltaChain(t *testing.T) {
	opts := bsp.Options{Workers: 2}
	g := buildGraph(t, shopCatalog())

	queries := []string{
		"SELECT cname, nname FROM cust, nation WHERE cnation = nkey",
		"SELECT nname, COUNT(*), SUM(price) FROM nation, cust, ord WHERE cnation = nkey AND ocust = ckey GROUP BY nname",
		"SELECT COUNT(*) FROM cust",
		"SELECT DISTINCT cnation FROM cust",
		"SELECT a.cname, b.cname FROM cust a, cust b WHERE a.cnation = b.cnation",
	}
	states := make([]*QueryState, len(queries))
	for i, q := range queries {
		_, states[i] = pinQuery(t, g, opts, q, 1)
	}

	batches := [][]struct {
		table string
		rows  []relation.Tuple
	}{
		{{"cust", []relation.Tuple{
			{relation.Int(50), relation.Int(2), relation.Str("erin")},
			{relation.Int(60), relation.Int(3), relation.Str("femi")},
		}}},
		{{"ord", []relation.Tuple{
			{relation.Int(105), relation.Int(50), relation.Int(9)},
			{relation.Int(106), relation.Int(20), relation.Int(3)},
		}}, {"cust", []relation.Tuple{
			{relation.Int(70), relation.Int(1), relation.Str("gus")},
		}}},
		{{"nation", []relation.Tuple{
			{relation.Int(4), relation.Str("CHILE")},
		}}},
	}

	cur := g
	for bi, batch := range batches {
		epoch := uint64(bi + 2)
		next := cur.Clone()
		for _, w := range batch {
			if _, err := next.InsertBatch(w.table, w.rows); err != nil {
				t.Fatal(err)
			}
		}
		sess := NewSession(next, opts)
		for i, q := range queries {
			outcome, err := sess.FoldDelta(states[i], epoch)
			if err != nil {
				t.Fatalf("FoldDelta %q epoch %d: %v", q, epoch, err)
			}
			if outcome != FoldHit {
				t.Errorf("FoldDelta %q epoch %d = %v, want hit", q, epoch, outcome)
			}
			if states[i].Epoch != epoch {
				t.Fatalf("state epoch = %d, want %d", states[i].Epoch, epoch)
			}
			checkFoldedAnswer(t, next, opts, states[i], q)
		}
		cur = next
	}
}

// Deletes are retractions the Merge path cannot express: the fold must
// detect them and rebuild, and the rebuilt answer must still match cold.
func TestFoldDeltaDeleteFallsBack(t *testing.T) {
	opts := bsp.Options{Workers: 2}
	g := buildGraph(t, shopCatalog())
	_, st := pinQuery(t, g, opts, "SELECT cnation, COUNT(*) FROM cust GROUP BY cnation", 1)

	next := g.Clone()
	if err := next.DeleteBatch([]bsp.VertexID{next.TupleVertices("cust")[0]}); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(next, opts)
	outcome, err := sess.FoldDelta(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != FoldFallback {
		t.Errorf("delete batch folded as %v, want fallback", outcome)
	}
	checkFoldedAnswer(t, next, opts, st, "delete fallback")

	// A delete on a table the query never references is foldable: nothing
	// the query can see changed.
	next2 := next.Clone()
	if err := next2.DeleteBatch([]bsp.VertexID{next2.TupleVertices("ord")[0]}); err != nil {
		t.Fatal(err)
	}
	sess2 := NewSession(next2, opts)
	outcome, err = sess2.FoldDelta(st, 3)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != FoldHit {
		t.Errorf("unreferenced delete folded as %v, want hit", outcome)
	}
	checkFoldedAnswer(t, next2, opts, st, "unreferenced delete")
}

// A float SUM/AVG merge is order-sensitive; MergeExact must refuse it
// and force the rebuild path.
func TestFoldDeltaFloatMergeFallsBack(t *testing.T) {
	cat := relation.NewCatalog()
	f := relation.New("f", relation.MustSchema(
		relation.Col("k", relation.KindInt),
		relation.Col("x", relation.KindFloat)))
	f.MustAppend(relation.Int(1), relation.Float(0.1))
	f.MustAppend(relation.Int(1), relation.Float(0.2))
	f.MustAppend(relation.Int(2), relation.Float(1.5))
	cat.MustAdd(f)

	opts := bsp.Options{Workers: 1}
	g := buildGraph(t, cat)
	_, st := pinQuery(t, g, opts, "SELECT k, SUM(x) FROM f GROUP BY k", 1)

	next := g.Clone()
	if _, err := next.InsertBatch("f", []relation.Tuple{{relation.Int(1), relation.Float(0.3)}}); err != nil {
		t.Fatal(err)
	}
	sess := NewSession(next, opts)
	outcome, err := sess.FoldDelta(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != FoldFallback {
		t.Errorf("float SUM merge folded as %v, want fallback", outcome)
	}
	checkFoldedAnswer(t, next, opts, st, "float fallback")
}

// A missed epoch (the state lags more than one generation behind, or
// the graph carries no delta tracking) must rebuild, never fold.
func TestFoldDeltaMissedEpochRebuilds(t *testing.T) {
	opts := bsp.Options{Workers: 2}
	g := buildGraph(t, shopCatalog())
	_, st := pinQuery(t, g, opts, "SELECT COUNT(*) FROM cust", 1)

	// Untracked graph (fresh Build, no Clone): always a rebuild.
	sess := NewSession(g, opts)
	outcome, err := sess.FoldDelta(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != FoldFallback {
		t.Errorf("untracked graph folded as %v, want fallback", outcome)
	}

	next := g.Clone()
	if _, err := next.InsertBatch("cust", []relation.Tuple{{relation.Int(80), relation.Int(1), relation.Str("hana")}}); err != nil {
		t.Fatal(err)
	}
	sess2 := NewSession(next, opts)
	outcome, err = sess2.FoldDelta(st, 7) // state answers epoch 2; generation is 3
	if err != nil {
		t.Fatal(err)
	}
	if outcome != FoldFallback {
		t.Errorf("missed epoch folded as %v, want fallback", outcome)
	}
	if st.Epoch != 7 {
		t.Fatalf("state epoch = %d, want 7", st.Epoch)
	}
	checkFoldedAnswer(t, next, opts, st, "missed epoch")
}

// TestIncrementalTPCHProperty is the randomized correctness property of
// the maintenance layer: across random insert/delete batches over the
// TPC-H schema, every pinned eligible query's folded answer is
// byte-identical to a cold re-run of the same epoch, for all 22 queries
// (ineligible ones are checked for cold-run determinism, which is what
// the serving layer's always-recompute fallback relies on).
func TestIncrementalTPCHProperty(t *testing.T) {
	scale := 0.04
	epochs := uint64(4)
	if testing.Short() {
		scale, epochs = 0.02, 2
	}
	cat := tpch.Generate(scale, 42)
	g := buildGraph(t, cat)
	opts := bsp.Options{Workers: 1} // deterministic float accumulation order

	type pin struct {
		q  tpch.Query
		st *QueryState
	}
	var pins []pin
	var ineligible []tpch.Query
	hadReason := map[string]bool{}
	for _, q := range tpch.Queries() {
		an, err := sql.AnalyzeString(g.Catalog, q.SQL)
		if err != nil {
			t.Fatalf("analyze %s: %v", q.ID, err)
		}
		sess := NewSession(g, opts)
		if ok, why := sess.IncrementalEligible(an); !ok {
			hadReason[why] = true
			ineligible = append(ineligible, q)
			continue
		}
		st, err := sess.BuildState(an, 1)
		if err != nil {
			t.Fatalf("BuildState %s: %v", q.ID, err)
		}
		pins = append(pins, pin{q: q, st: st})
	}
	if len(pins) == 0 {
		t.Fatal("no TPC-H query was incrementally eligible")
	}
	t.Logf("eligible %d/22; ineligible reasons: %v", len(pins), hadReason)

	rng := rand.New(rand.NewSource(42))
	tables := []string{"lineitem", "orders", "customer", "supplier", "part", "partsupp"}
	hits, fallbacks := 0, 0
	cur := g
	for epoch := uint64(2); epoch <= 1+epochs; epoch++ {
		next := cur.Clone()
		// Random write batch: re-insert sampled rows into 1-2 tables (the
		// graph layer has no uniqueness constraint, so duplicates are legal
		// rows), and on some epochs delete a couple of lineitem vertices to
		// force the retraction fallback.
		for n := 1 + rng.Intn(2); n > 0; n-- {
			tbl := tables[rng.Intn(len(tables))]
			src := next.Catalog.Get(tbl).Tuples
			var rows []relation.Tuple
			for k := 1 + rng.Intn(3); k > 0 && len(src) > 0; k-- {
				rows = append(rows, src[rng.Intn(len(src))])
			}
			if _, err := next.InsertBatch(tbl, rows); err != nil {
				t.Fatal(err)
			}
		}
		if epoch%2 == 1 {
			verts := next.TupleVertices("lineitem")
			if err := next.DeleteBatch([]bsp.VertexID{verts[rng.Intn(len(verts))]}); err != nil {
				t.Fatal(err)
			}
		}

		sess := NewSession(next, opts)
		for _, p := range pins {
			outcome, err := sess.FoldDelta(p.st, epoch)
			if err != nil {
				t.Fatalf("FoldDelta %s epoch %d: %v", p.q.ID, epoch, err)
			}
			if outcome == FoldHit {
				hits++
			} else {
				fallbacks++
			}
			cold := NewSession(next, opts)
			want, err := cold.Run(p.st.An)
			if err != nil {
				t.Fatalf("cold %s epoch %d: %v", p.q.ID, epoch, err)
			}
			if !bytes.Equal(CanonicalBytes(p.st.Answer), CanonicalBytes(want)) {
				t.Fatalf("%s epoch %d (%v): folded answer diverges from cold run", p.q.ID, epoch, outcome)
			}
		}
		cur = next
	}
	if hits == 0 {
		t.Error("no fold ever hit — the incremental path never exercised")
	}
	if fallbacks == 0 {
		t.Error("no fold ever fell back — the delete/inexact-merge guards never exercised")
	}
	t.Logf("folds: %d hits, %d fallbacks", hits, fallbacks)

	// Ineligible queries are maintained by cold re-runs; that is only a
	// sound fallback if a cold run is deterministic on a fixed generation.
	for _, q := range ineligible {
		an, err := sql.AnalyzeString(cur.Catalog, q.SQL)
		if err != nil {
			t.Fatalf("analyze %s: %v", q.ID, err)
		}
		a, err := NewSession(cur, opts).Run(an)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		b, err := NewSession(cur, opts).Run(an)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if !bytes.Equal(CanonicalBytes(a), CanonicalBytes(b)) {
			t.Errorf("%s: cold runs disagree on a fixed generation", q.ID)
		}
	}
}
