package core

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// decorrTable is the lookup structure of a decorrelated subquery: the
// subquery was executed once with its correlation predicates removed and
// the correlated inner columns prepended to its SELECT list; rows are
// grouped by the correlation key. Looking it up per outer row realizes
// the semi-join/anti-join evaluation of §7 (EXISTS/IN) and the grouped
// rewrite of correlated scalar aggregates.
type decorrTable struct {
	outerCols []*sql.ColRef // evaluated in the outer row's env, in key order
	rows      map[string]*relation.Relation
	empty     *relation.Relation
}

// lookup serves the subquery's result for the outer row in env.
func (dt *decorrTable) lookup(env *sql.Env) (*relation.Relation, error) {
	var b strings.Builder
	for _, c := range dt.outerCols {
		v, err := sql.Eval(c, env, nil)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return dt.empty, nil // NULL correlations match nothing
		}
		k := v.Key()
		b.WriteByte(byte(k.Kind) + '0')
		b.WriteString(k.String())
		b.WriteByte('\x1f')
	}
	if r, ok := dt.rows[b.String()]; ok {
		return r, nil
	}
	return dt.empty, nil
}

// tryDecorrelate attempts to turn a conjunct containing subqueries into a
// vertex-safe closure predicate backed by decorrTable lookups. It returns
// nil when any nested subquery does not fit the supported shape (single
// block, correlation only through top-level equality predicates with the
// current block, aggregates only in scalar form).
func (e *Session) tryDecorrelate(an *sql.Analysis, blk *sql.Analyzed, conj sql.Expr) *predicate {
	subs := sql.SubSelects(conj)
	if len(subs) == 0 {
		return nil
	}
	aliases := map[string]bool{}
	var cols []string
	for _, c := range sql.ColRefs(conj) {
		if c.Depth == 0 {
			aliases[c.Alias] = true
			cols = append(cols, sql.BindKey(c.Alias, c.Column))
		}
	}

	for _, sub := range subs {
		dt, done := e.decorr[sub]
		if !done {
			var ok bool
			dt, ok = e.decorrelateSub(an, sub)
			if !ok {
				return nil
			}
			e.decorr[sub] = dt
		}
		for _, oc := range dt.outerCols {
			aliases[oc.Alias] = true
			cols = append(cols, sql.BindKey(oc.Alias, oc.Column))
		}
	}

	dtSubq := func(sub *sql.Select, env *sql.Env) (*relation.Relation, error) {
		dt := e.decorr[sub]
		if dt == nil {
			// Nested deeper subqueries: not expected on this path.
			return nil, errNoDecorr
		}
		return dt.lookup(env)
	}
	return &predicate{
		fn: func(env *sql.Env) (bool, error) {
			v, err := sql.Eval(conj, env, dtSubq)
			if err != nil {
				return false, err
			}
			return v.AsBool(), nil
		},
		aliases: aliases,
		cols:    cols,
	}
}

var errNoDecorr = &decorrError{}

type decorrError struct{}

func (*decorrError) Error() string { return "core: subquery not decorrelated" }

// decorrelateSub checks the shape of one subquery and, if supported,
// executes its decorrelated variant and builds the lookup table.
func (e *Session) decorrelateSub(an *sql.Analysis, sub *sql.Select) (*decorrTable, bool) {
	subBlk := an.Blocks[sub]
	if subBlk == nil || sub.Union != nil {
		return nil, false
	}
	// No subqueries nested inside the subquery (keep the shape simple),
	// and aggregates only in the scalar form.
	if sub.Having != nil {
		return nil, false
	}
	if subBlk.HasAgg && len(sub.GroupBy) > 0 {
		return nil, false
	}
	nested := false
	sql.VisitBlockExprs(subBlk, 0, func(x sql.Expr, _ int) {
		if len(sql.SubSelects(x)) > 0 {
			nested = true
		}
	})
	if nested {
		return nil, false
	}

	// Correlation shape: every outer reference occurs in a top-level
	// WHERE conjunct of the form innerCol = outerCol (either order) and
	// points exactly one scope out.
	type corr struct {
		inner, outer *sql.ColRef
	}
	var corrs []corr
	var keep []sql.Expr
	for _, cj := range sql.SplitConjuncts(sub.Where) {
		b, ok := cj.(*sql.Binary)
		if ok && b.Op == "=" {
			l, lok := b.L.(*sql.ColRef)
			r, rok := b.R.(*sql.ColRef)
			if lok && rok {
				switch {
				case l.Depth == 0 && r.Depth == 1:
					corrs = append(corrs, corr{inner: l, outer: r})
					continue
				case l.Depth == 1 && r.Depth == 0:
					corrs = append(corrs, corr{inner: r, outer: l})
					continue
				}
			}
		}
		// Any other conjunct must be entirely local to the subquery.
		for _, c := range sql.ColRefs(cj) {
			if c.Depth != 0 {
				return nil, false
			}
		}
		keep = append(keep, cj)
	}
	// No outer references anywhere else (SELECT list, GROUP BY).
	outerCount := 0
	sql.VisitBlockExprs(subBlk, 0, func(x sql.Expr, off int) {
		for _, c := range sql.ColRefs(x) {
			if c.Depth > off {
				outerCount++
			}
		}
	})
	if outerCount != len(corrs) {
		return nil, false
	}

	// Build the decorrelated variant: SELECT innerCols..., <items> with
	// correlation conjuncts removed; aggregates become GROUP BY innerCols.
	mod := sql.CloneSelect(sub)
	mod.Where = sql.AndAll(cloneAll(keep))
	var items []sql.SelectItem
	for _, cr := range corrs {
		items = append(items, sql.SelectItem{Expr: &sql.ColRef{Qualifier: cr.inner.Alias, Column: cr.inner.Column}})
	}
	items = append(items, mod.Items...)
	mod.Items = items
	if subBlk.HasAgg {
		mod.GroupBy = nil
		for _, cr := range corrs {
			mod.GroupBy = append(mod.GroupBy, &sql.ColRef{Qualifier: cr.inner.Alias, Column: cr.inner.Column})
		}
	} else if len(corrs) > 0 {
		mod.Distinct = true
	}

	modAn, err := sql.Analyze(e.TAG.Catalog, mod)
	if err != nil {
		return nil, false
	}
	res, err := e.runChain(modAn, modAn.Root, nil)
	if err != nil {
		return nil, false
	}

	// Split rows into the key (first len(corrs) columns) and the payload.
	k := len(corrs)
	payloadSchema := payloadSchemaOf(res, k)
	dt := &decorrTable{
		rows:  map[string]*relation.Relation{},
		empty: relation.New("sub", payloadSchema),
	}
	for _, cr := range corrs {
		dt.outerCols = append(dt.outerCols, &sql.ColRef{
			Alias: cr.outer.Alias, Column: cr.outer.Column, Table: cr.outer.Table,
		})
	}
	for _, row := range res.Tuples {
		var b strings.Builder
		null := false
		for i := 0; i < k; i++ {
			if row[i].IsNull() {
				null = true
				break
			}
			kv := row[i].Key()
			b.WriteByte(byte(kv.Kind) + '0')
			b.WriteString(kv.String())
			b.WriteByte('\x1f')
		}
		if null {
			continue // NULL inner keys never join
		}
		key := b.String()
		bucket := dt.rows[key]
		if bucket == nil {
			bucket = relation.New("sub", payloadSchema)
			dt.rows[key] = bucket
		}
		bucket.Tuples = append(bucket.Tuples, row[k:])
	}
	return dt, true
}

func payloadSchemaOf(res *relation.Relation, skip int) *relation.Schema {
	cols := make([]relation.Column, 0, res.Schema.Len()-skip)
	for i, c := range res.Schema.Columns[skip:] {
		cols = append(cols, relation.Column{Name: fmt.Sprintf("c%d_%s", i+1, c.Name), Kind: c.Kind})
	}
	if len(cols) == 0 {
		cols = append(cols, relation.Col("c1", relation.KindInt))
	}
	return relation.MustSchema(cols...)
}

func cloneAll(exprs []sql.Expr) []sql.Expr {
	out := make([]sql.Expr, len(exprs))
	for i, e := range exprs {
		out[i] = sql.CloneExpr(e)
	}
	return out
}
