package core

import (
	"sort"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

// TestLemma51FullReducer verifies the effect of the reduction phase
// directly (Lemma 5.1 / Example 5.3): after the UP+DOWN passes, the
// surviving start-alias vertices are exactly the tuples of the fully
// reduced relation — those participating in the multi-way join.
func TestLemma51FullReducer(t *testing.T) {
	cat := shopCatalog()
	g, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewSession(g, bsp.Options{Workers: 2})
	an, err := sql.AnalyzeString(cat,
		"SELECT okey FROM nation, cust, ord WHERE cnation = nkey AND ocust = ckey")
	if err != nil {
		t.Fatal(err)
	}
	ex.subCache = map[*sql.Select]*relation.Relation{}
	ex.corrCache = map[string]*relation.Relation{}
	ex.decorr = map[*sql.Select]*decorrTable{}
	c, err := ex.compileBlock(an, an.Root)
	if err != nil {
		t.Fatal(err)
	}
	comp := c.qp.Components[0]
	res, err := ex.runComponent(c, comp, nil, ex.subqueryFn(an))
	if err != nil {
		t.Fatal(err)
	}

	// The collection survivors live at the join tree root (the largest
	// relation, ord). Their keys must be the fully reduced ord tuples.
	if res.rootAlias != "ord" {
		t.Fatalf("root = %s, want ord", res.rootAlias)
	}
	var got []int64
	for _, v := range res.survivors {
		d := ex.TAG.TupleData(v)
		got = append(got, d.Row[0].AsInt())
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })

	// Reference full reduction via semijoins on the baseline engine.
	ref, err := baseline.New(cat).Query(`SELECT okey FROM ord
		WHERE EXISTS (SELECT 1 FROM cust WHERE ckey = ocust
		              AND EXISTS (SELECT 1 FROM nation WHERE nkey = cnation))`)
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for _, row := range ref.Tuples {
		want = append(want, row[0].AsInt())
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	if len(got) != len(want) {
		t.Fatalf("survivors = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("survivors = %v, want %v", got, want)
		}
	}
}

// TestReductionEliminatesBeforeCollection checks the §4.1.2 property that
// dangling tuples never receive collection-phase tables: the number of
// collection messages is bounded by the join output side, not the input.
func TestReductionEliminatesBeforeCollection(t *testing.T) {
	cat := relation.NewCatalog()
	r := relation.New("r", relation.MustSchema(relation.Col("a", relation.KindInt)))
	s := relation.New("s", relation.MustSchema(relation.Col("a", relation.KindInt), relation.Col("b", relation.KindInt)))
	// 100 dangling R tuples, one matching pair.
	for i := 0; i < 100; i++ {
		r.MustAppend(relation.Int(int64(1000 + i)))
	}
	r.MustAppend(relation.Int(7))
	s.MustAppend(relation.Int(7), relation.Int(1))
	cat.MustAdd(r)
	cat.MustAdd(s)

	g, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(g, bsp.Options{Workers: 2})
	out, err := ex.Query("SELECT b FROM r, s WHERE r.a = s.a")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	// Reduction UP pass touches all |R| vertices once (O(IN)), but the
	// DOWN pass and collection follow marks: total messages stay well
	// under a constant multiple of IN.
	if msgs := ex.Stats().Messages; msgs > 4*int64(cat.TotalTuples()) {
		t.Errorf("messages = %d exceed 4*IN = %d", msgs, 4*cat.TotalTuples())
	}
}

// TestEngineGrowsWithGraph is the regression test for querying after
// incremental TAG inserts grew the vertex set beyond the engine's
// original buffers.
func TestEngineGrowsWithGraph(t *testing.T) {
	cat := shopCatalog()
	g, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(g, bsp.Options{Workers: 2})
	if _, err := ex.Query("SELECT COUNT(*) FROM cust"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := g.InsertTuple("cust", relation.Tuple{
			relation.Int(int64(1000 + i)), relation.Int(1), relation.Str("new")}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ex.Query("SELECT COUNT(*) FROM cust")
	if err != nil {
		t.Fatal(err)
	}
	if out.Tuples[0][0] != relation.Int(54) {
		t.Errorf("count after growth = %v, want 54", out.Tuples[0][0])
	}
}

// TestVertexOuterJoinNullKeys exercises the §7 two-way outer join's
// NULL-key sweep: preserved tuples whose join column is NULL have no
// attribute edge at all and must still be NULL-extended.
func TestVertexOuterJoinNullKeys(t *testing.T) {
	cat := relation.NewCatalog()
	l := relation.New("l", relation.MustSchema(
		relation.Col("id", relation.KindInt), relation.Col("k", relation.KindInt)))
	r := relation.New("r", relation.MustSchema(
		relation.Col("k", relation.KindInt), relation.Col("v", relation.KindString)))
	l.MustAppend(relation.Int(1), relation.Int(10))
	l.MustAppend(relation.Int(2), relation.Null) // NULL join key
	l.MustAppend(relation.Int(3), relation.Int(99))
	r.MustAppend(relation.Int(10), relation.Str("hit"))
	cat.MustAdd(l)
	cat.MustAdd(r)

	got := checkAgainstBaseline(t, cat, "SELECT id, v FROM l LEFT JOIN r ON l.k = r.k")
	if got.Len() != 3 {
		t.Fatalf("rows = %d, want 3", got.Len())
	}
	nulls := 0
	for _, row := range got.Tuples {
		if row[1].IsNull() {
			nulls++
		}
	}
	if nulls != 2 {
		t.Errorf("NULL-extended rows = %d, want 2", nulls)
	}
	// FULL variant: the unmatched right side appears too (none here) and
	// the RIGHT variant drops the NULL-key left rows.
	checkAgainstBaseline(t, cat, "SELECT id, v FROM l FULL JOIN r ON l.k = r.k")
	checkAgainstBaseline(t, cat, "SELECT id, v FROM l RIGHT JOIN r ON l.k = r.k")
}

// TestCollectionPushedSelections verifies the §7 optimization of applying
// residual predicates during collection: the cross-alias OR predicate of
// a q7-style query must reduce collection traffic, not just final rows.
func TestCollectionPushedSelections(t *testing.T) {
	cat := shopCatalog()
	g, err := tag.Build(cat, tag.MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(g, bsp.Options{Workers: 2})
	// Cross-alias residual: only one (nation, price) combination passes.
	q := `SELECT nname, price FROM nation, cust, ord
		WHERE cnation = nkey AND ocust = ckey
		AND ((nname = 'USA' AND price > 10) OR (nname = 'NOPE' AND price < 0))`
	got, err := ex.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := baseline.New(cat).Query(q)
	if !relation.EqualMultiset(got, want) {
		t.Fatalf("pushed-selection mismatch: %d vs %d rows", got.Len(), want.Len())
	}
}
