package core

import (
	"repro/internal/bsp"
	"repro/internal/plan"
	"repro/internal/relation"
)

// collectionProgram runs the collection phase of Algorithm 2 (§5.2): a
// second connected bottom-up pass over the marked subgraph in which
// messages carry partial join tables. Each vertex joins the tables it
// receives (union within a superstep — they come from the same plan edge
// — and natural join with its own tuple at relation vertices), then
// forwards its value along the current step's marked edges.
type collectionProgram struct {
	r   *componentRun
	cur int
}

// BeforeSuperstep drives the bottom-up label schedule once more and
// allows one final superstep for the root to absorb its inbox.
func (p *collectionProgram) BeforeSuperstep(step int, eng *bsp.Engine) bool {
	p.cur = step
	return step <= p.r.nUp
}

// Combiner folds the partial tables bound for one parent into a single
// pre-unioned tableBatch, so the fan-in union happens where the tables
// are produced instead of accumulating in the inbox.
func (p *collectionProgram) Combiner() bsp.Combiner { return tableUnionCombiner{} }

// Compute is the per-vertex collection kernel.
func (p *collectionProgram) Compute(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
	r := p.r
	pl := r.comp.TAGPlan

	// Union the incoming tables (same plan edge => same header): a single
	// append pass, not pairwise unions. A combined inbox is one message
	// already carrying the union.
	var value *table
	if len(inbox) == 1 {
		if b, ok := inbox[0].Payload.(*tableBatch); ok {
			value = b.t
		} else {
			value = inbox[0].Payload.(*table)
		}
	} else if len(inbox) > 1 {
		first := inbox[0].Payload.(*table)
		total := 0
		for _, m := range inbox {
			total += len(m.Payload.(*table).rows)
		}
		value = newTableShared(first.header, first.index)
		value.rows = make([][]relation.Value, 0, total)
		for _, m := range inbox {
			value.rows = append(value.rows, m.Payload.(*table).rows...)
		}
	}
	ctx.AddOps(1 + bsp.InboxCount(inbox))

	// Determine the plan node this superstep addresses: the To node of
	// the previous step (or the start leaf at superstep 0).
	var node plan.Node
	if p.cur == 0 {
		node = pl.Nodes[pl.Steps[0].From]
	} else {
		node = pl.Nodes[r.steps[p.cur-1].step.To]
	}

	// Relation vertices join their own tuple (lines 32-36); the hidden
	// id column keeps only rows that originated here when a table passes
	// through the same vertex again on the Euler walk.
	var preHeader map[string]int
	if value != nil {
		preHeader = value.index
	}
	if node.Kind == plan.RelNode {
		own := r.ownRow(node.Alias, v)
		if value == nil {
			value = own
		} else {
			value = r.joiner.join(value, own)
			ctx.AddOps(len(value.rows))
		}
	}
	if value == nil {
		return
	}

	// Pushed selections (§7): apply residual predicates at the earliest
	// round where the partial table contains their columns — i.e. they
	// just became complete at this vertex.
	if len(r.collectPreds) > 0 {
		value = r.applyCollectPreds(ctx, value, preHeader)
		if len(value.rows) == 0 {
			return
		}
	}

	if p.cur >= r.nUp {
		// Root reached: emit the distributed output (line 42). The value
		// rides the emit stream instead of being written into r.values
		// directly so that, under a distributed transport, every process
		// reconstructs the full survivor set from the emit allgather.
		ctx.Emit(rootVal{v: v, t: value})
		return
	}

	// Forward along the current step's marked edges (lines 37-40).
	cur := r.steps[p.cur]
	for t := range r.markSet(v, cur.edgeID) {
		ctx.Send(v, t, value)
	}
}

// rootVal is the emitted collection output of one root-alias survivor:
// the vertex and its final partial-join table.
type rootVal struct {
	v bsp.VertexID
	t *table
}

// runCollection executes the collection phase from the reduction
// survivors of the start alias and returns the distributed result.
func (r *componentRun) runCollection(starters []bsp.VertexID) (*componentResult, error) {
	r.values = make([]*table, r.ex.TAG.G.NumVertices())
	prog := &collectionProgram{r: r}
	if err := r.ex.runProg(prog, starters); err != nil {
		return nil, err
	}

	res := &componentResult{
		run:       r,
		rootAlias: r.comp.Tree.Root,
		values:    r.values,
	}
	for _, e := range r.ex.eng.Emitted() {
		rv := e.(rootVal)
		r.values[rv.v] = rv.t
		res.survivors = append(res.survivors, rv.v)
	}
	return res, nil
}
