package core

import (
	"repro/internal/bsp"
)

// reductionProgram runs the reduction phase of Algorithm 2: a connected
// bottom-up (UP) pass that marks join-relevant edges, followed by the
// reversed top-down (DOWN) pass that only signals along marked edges,
// leaving marks that correspond to the fully reduced relations (§5.2).
//
// Superstep s processes the messages sent along step s-1 (recording
// marks) and sends along step s; UP steps send along every edge with the
// step's label, DOWN steps only along marked ones.
type reductionProgram struct {
	r *componentRun
	// current superstep's index into r.steps (set by the master hook).
	cur int
}

// BeforeSuperstep drives the label schedule (the stack-popping master of
// Algorithm 2) and stops one superstep after the schedule is exhausted so
// the final DOWN recipients can record survival.
func (p *reductionProgram) BeforeSuperstep(step int, eng *bsp.Engine) bool {
	p.cur = step
	return step <= len(p.r.steps)
}

// Combiner folds the reduction's nil-payload signals into one
// senderBatch per destination: mark() only needs the sender set, so the
// plane can carry it as ids instead of Message slots.
func (p *reductionProgram) Combiner() bsp.Combiner { return senderCombiner{} }

// Compute is the per-vertex reduction kernel.
func (p *reductionProgram) Compute(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
	r := p.r
	ctx.AddOps(1 + bsp.InboxCount(inbox))

	// Computation stage: process receipts from the previous step.
	if p.cur > 0 {
		prev := r.steps[p.cur-1]
		if prev.toRel != "" && !r.passes(prev.toRel, v) {
			return // filtered out: no marks, no propagation (§7 selections)
		}
		r.mark(v, prev.edgeID, inbox)
	}

	// Communication stage: send along the current step.
	if p.cur >= len(r.steps) {
		ctx.Emit(v) // survivor of the final DOWN step
		return
	}
	cur := r.steps[p.cur]
	if p.cur < r.nUp {
		// UP: along every edge carrying the label (lines 11-13).
		ctx.SendAlong(v, cur.label, nil)
		return
	}
	// DOWN: only along edges marked by the opposite pass (lines 15-18).
	for t := range r.markSet(v, cur.edgeID) {
		ctx.Send(v, t, nil)
	}
}

// mark replaces v's sender set for a plan edge (the most recent, most
// reduced pass wins; line 19's mark update). Combined messages carry
// their folded senders as a senderBatch; plain ones contribute From.
func (r *componentRun) mark(v bsp.VertexID, edge int, inbox []bsp.Message) {
	m := r.marks[v]
	if m == nil {
		m = make(map[int]map[bsp.VertexID]struct{}, 2)
		r.marks[v] = m
	}
	set := make(map[bsp.VertexID]struct{}, bsp.InboxCount(inbox))
	for _, msg := range inbox {
		if b, ok := msg.Payload.(*senderBatch); ok {
			for _, f := range b.from {
				set[f] = struct{}{}
			}
		} else {
			set[msg.From] = struct{}{}
		}
	}
	m[edge] = set
}

// markSet returns v's marked neighbors on a plan edge.
func (r *componentRun) markSet(v bsp.VertexID, edge int) map[bsp.VertexID]struct{} {
	if m := r.marks[v]; m != nil {
		return m[edge]
	}
	return nil
}

// runReduction executes the reduction phase and returns the survivors of
// the start alias (the vertices the collection phase starts from).
func (r *componentRun) runReduction() ([]bsp.VertexID, error) {
	r.prepareFilterMemo()
	prog := &reductionProgram{r: r}
	initial := r.initialActives(r.comp.TAGPlan.StartAlias)
	if err := r.ex.runProg(prog, initial); err != nil {
		return nil, err
	}
	var survivors []bsp.VertexID
	for _, e := range r.ex.eng.Emitted() {
		survivors = append(survivors, e.(bsp.VertexID))
	}
	return survivors, nil
}
