package core

import (
	"fmt"
	"math"

	"repro/internal/bsp"
	"repro/internal/plan"
	"repro/internal/relation"
)

// cycleMsg carries a join-attribute value around a cycle (§6.1/§6.2).
type cycleMsg struct {
	val relation.Value
}

// pathHop is one traversal hop of a cycle propagation path.
type pathHop struct {
	label    bsp.LabelID
	relAlias string // non-empty when the hop lands on tuple vertices
}

// runCyclePass reduces the members of one join cycle before the tree
// reduction (§6.2): attribute values of the cycle-closing class split
// into heavy and light by the θ threshold (θ=√IN by default, matching
// the AGM-bound analysis); heavy values propagate themselves around both
// sides of the cycle to be intersected at the middle attribute, light
// values wake their successor attribute which propagates instead. A
// backward pass marks the tuple vertices that relayed surviving values;
// everything else is excluded from the main reduction.
func (r *componentRun) runCyclePass(cyc plan.Cycle) error {
	n := len(cyc.Aliases)
	if n < 3 {
		return fmt.Errorf("core: degenerate cycle %v", cyc.Aliases)
	}
	classes := r.c.qp.Classes

	// classOfPred[i] is X_{i+1}: the class joining alias i and i+1;
	// classOfPred[n-1] is X1, the cycle-closing class.
	classOf := make([]int, n)
	for i, p := range cyc.Preds {
		classOf[i] = classes.Of[p.A]
	}
	x := func(i int) int { // X_i, 1-based per the paper
		if i == 1 {
			return classOf[n-1]
		}
		return classOf[i-2]
	}
	alias := func(i int) string { return cyc.Aliases[((i-1)%n+n)%n] } // A_i, 1-based

	label := func(class int, a string) (bsp.LabelID, error) {
		col, ok := classes.ColumnOf(class, a)
		if !ok {
			return 0, fmt.Errorf("core: alias %s has no column in class %d", a, class)
		}
		lbl, ok := r.ex.TAG.EdgeLabel(r.c.aliasTable[a], col)
		if !ok {
			return 0, fmt.Errorf("core: unmaterialized cycle column %s.%s", a, col)
		}
		return lbl, nil
	}

	mid := (n+1)/2 + 1 // X_{⌈n/2⌉+1}

	// buildPath walks from attribute X_from around the given direction to
	// X_mid: +1 walks A_from, X_{from+1}, ...; -1 walks A_{from-1},
	// X_{from-1}, ...
	buildPath := func(from, dir int) ([]pathHop, error) {
		var hops []pathHop
		xi := from
		for xi != mid || len(hops) == 0 {
			var a string
			if dir > 0 {
				a = alias(xi)
			} else {
				a = alias(xi - 1)
			}
			l1, err := label(x(xi), a)
			if err != nil {
				return nil, err
			}
			hops = append(hops, pathHop{label: l1, relAlias: a})
			next := xi + dir
			if next > n {
				next = 1
			}
			if next < 1 {
				next = n
			}
			l2, err := label(x(next), a)
			if err != nil {
				return nil, err
			}
			hops = append(hops, pathHop{label: l2})
			xi = next
			if len(hops) > 2*n+2 {
				return nil, fmt.Errorf("core: cycle path construction diverged")
			}
			if xi == mid {
				break
			}
		}
		return hops, nil
	}

	leftH, err := buildPath(1, +1)
	if err != nil {
		return err
	}
	rightH, err := buildPath(1, -1)
	if err != nil {
		return err
	}

	// Split X1 attribute vertices into heavy and light by their R1-side
	// degree against θ (§6.1.2).
	theta := r.ex.Theta
	if theta <= 0 {
		in := 0
		for _, a := range cyc.Aliases {
			in += r.ex.TAG.Catalog.Get(r.c.aliasTable[a]).Len()
		}
		theta = math.Sqrt(float64(in))
	}
	x1Label := leftH[0].label
	var heavy, light []bsp.VertexID
	for _, v := range r.ex.TAG.AttrVertices(x1Label) {
		if float64(r.ex.TAG.G.DegreeWithLabel(v, x1Label)) > theta {
			heavy = append(heavy, v)
		} else {
			light = append(light, v)
		}
	}

	survivors := map[string]map[bsp.VertexID]bool{}
	for _, a := range cyc.Aliases {
		survivors[a] = map[bsp.VertexID]bool{}
	}

	// Heavy: propagate X1 values both ways, intersect at the middle.
	if len(heavy) > 0 {
		if err := r.cycleRound(heavy, leftH, rightH, survivors); err != nil {
			return err
		}
	}
	// Light: wake X2 through R1, then propagate X2 values both ways.
	if len(light) > 0 {
		lightStart, err := r.wakeNeighbors(light, leftH[0], leftH[1])
		if err != nil {
			return err
		}
		if len(lightStart) > 0 {
			left2, err := buildPath(2, +1)
			if err != nil {
				return err
			}
			right2, err := buildPath(2, -1)
			if err != nil {
				return err
			}
			if err := r.cycleRound(lightStart, left2, right2, survivors); err != nil {
				return err
			}
		}
	}

	for a, set := range survivors {
		r.intersectPrefilter(a, set)
	}
	return nil
}

// wakeNeighbors performs the light-case wake-up (§6.1.2 step 3): the
// light X1 vertices signal through R1 tuples to activate X2 vertices.
func (r *componentRun) wakeNeighbors(start []bsp.VertexID, h0, h1 pathHop) ([]bsp.VertexID, error) {
	woken := map[bsp.VertexID]bool{}
	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		switch ctx.Step() {
		case 0:
			ctx.SendAlong(v, h0.label, nil)
		case 1:
			if !r.passes(h0.relAlias, v) {
				return
			}
			ctx.SendAlong(v, h1.label, nil)
		case 2:
			ctx.Emit(v)
		}
		ctx.AddOps(1)
	})
	// The wake-up is a pure activation signal — receivers never read the
	// inbox — so the plane folds it to one message per woken vertex.
	if err := r.ex.runProg(bsp.WithCombiner(prog, bsp.SignalCombiner{}), start); err != nil {
		return nil, err
	}
	var out []bsp.VertexID
	for _, e := range r.ex.eng.Emitted() {
		vid := e.(bsp.VertexID)
		if !woken[vid] {
			woken[vid] = true
			out = append(out, vid)
		}
	}
	return out, nil
}

// cycleRound runs one forward+backward propagation round: start vertices
// send their own value down both paths; arrivals intersect at the middle
// attribute vertices; surviving values travel back, marking every tuple
// vertex that relayed them.
func (r *componentRun) cycleRound(start []bsp.VertexID, left, right []pathHop, survivors map[string]map[bsp.VertexID]bool) error {
	nv := r.ex.TAG.G.NumVertices()
	leftFwd := make([]map[relation.Value]struct{}, nv)
	rightFwd := make([]map[relation.Value]struct{}, nv)
	leftArr := make([]map[relation.Value]struct{}, nv)
	rightArr := make([]map[relation.Value]struct{}, nv)

	if err := r.cycleForward(start, left, leftFwd, leftArr); err != nil {
		return err
	}
	if err := r.cycleForward(start, right, rightFwd, rightArr); err != nil {
		return err
	}

	// Intersect at the middle attribute vertices.
	surviving := make([]map[relation.Value]struct{}, nv)
	var mids []bsp.VertexID
	for v := range leftArr {
		if leftArr[v] == nil || rightArr[v] == nil {
			continue
		}
		both := map[relation.Value]struct{}{}
		for val := range leftArr[v] {
			if _, ok := rightArr[v][val]; ok {
				both[val] = struct{}{}
			}
		}
		if len(both) > 0 {
			surviving[v] = both
			mids = append(mids, bsp.VertexID(v))
		}
	}

	if err := r.cycleBackward(mids, left, leftFwd, surviving, survivors); err != nil {
		return err
	}
	return r.cycleBackward(mids, right, rightFwd, surviving, survivors)
}

// cycleForwardProgram propagates each start vertex's own value along the
// hop path, recording the values each vertex forwarded and the arrivals
// at the final (middle) attribute vertices.
type cycleForwardProgram struct {
	r    *componentRun
	hops []pathHop
	fwd  []map[relation.Value]struct{}
	arr  []map[relation.Value]struct{}
}

// Combiner folds the propagated values into one valueBatch per
// destination (receivers dedup per value, so within-superstep
// duplicates fold away en route).
func (p *cycleForwardProgram) Combiner() bsp.Combiner { return valueCombiner{} }

// Compute implements the forward propagation kernel.
func (p *cycleForwardProgram) Compute(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
	step := ctx.Step()
	ctx.AddOps(1 + bsp.InboxCount(inbox))

	if step == 0 {
		// Start attribute vertices inject their own value.
		val, ok := p.r.ex.TAG.AttrValue(v)
		if !ok {
			return
		}
		ctx.SendAlong(v, p.hops[0].label, cycleMsg{val: val})
		return
	}
	hop := p.hops[step-1]
	if hop.relAlias != "" && !p.r.passes(hop.relAlias, v) {
		return
	}
	last := step == len(p.hops)
	set := p.fwd[v]
	if last {
		set = p.arr[v]
	}
	if set == nil {
		set = map[relation.Value]struct{}{}
		if last {
			p.arr[v] = set
		} else {
			p.fwd[v] = set
		}
	}
	for _, msg := range inbox {
		eachCycleVal(msg, func(val relation.Value) {
			if _, seen := set[val]; seen {
				return
			}
			set[val] = struct{}{}
			if !last {
				ctx.SendAlong(v, p.hops[step].label, cycleMsg{val: val})
			}
		})
	}
}

func (r *componentRun) cycleForward(start []bsp.VertexID, hops []pathHop, fwd, arr []map[relation.Value]struct{}) error {
	return r.ex.runProg(&cycleForwardProgram{r: r, hops: hops, fwd: fwd, arr: arr}, start)
}

// cycleBackwardProgram walks surviving values back from the middle,
// marking every tuple vertex that relayed one (§6.2's signal-back).
type cycleBackwardProgram struct {
	r         *componentRun
	hops      []pathHop
	fwd       []map[relation.Value]struct{}
	surviving []map[relation.Value]struct{}
	seen      []map[relation.Value]struct{}
}

// Combiner folds the surviving values walking back into one valueBatch
// per destination.
func (p *cycleBackwardProgram) Combiner() bsp.Combiner { return valueCombiner{} }

// Compute implements the backward marking kernel. Backward superstep s
// lands on the source vertices of hop len(hops)-s.
func (p *cycleBackwardProgram) Compute(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
	step := ctx.Step()
	ctx.AddOps(1 + bsp.InboxCount(inbox))
	if step == 0 {
		for val := range p.surviving[v] {
			ctx.SendAlong(v, p.hops[len(p.hops)-1].label, cycleMsg{val: val})
		}
		return
	}
	idx := len(p.hops) - step // this vertex is the source of hop idx
	have := p.fwd[v]
	if idx == 0 {
		// Back at the start attribute vertices: nothing left to mark.
		return
	}
	if have == nil {
		return
	}
	landedAlias := p.hops[idx-1].relAlias
	seen := p.seen[v]
	if seen == nil {
		seen = map[relation.Value]struct{}{}
		p.seen[v] = seen
	}
	for _, msg := range inbox {
		eachCycleVal(msg, func(val relation.Value) {
			if _, ok := have[val]; !ok {
				return
			}
			if _, dup := seen[val]; dup {
				return
			}
			seen[val] = struct{}{}
			if landedAlias != "" {
				ctx.Emit(relayMark{alias: landedAlias, v: v})
			}
			ctx.SendAlong(v, p.hops[idx-1].label, cycleMsg{val: val})
		})
	}
}

func (r *componentRun) cycleBackward(mids []bsp.VertexID, hops []pathHop, fwd []map[relation.Value]struct{}, surviving []map[relation.Value]struct{}, survivors map[string]map[bsp.VertexID]bool) error {
	prog := &cycleBackwardProgram{
		r: r, hops: hops, fwd: fwd, surviving: surviving,
		seen: make([]map[relation.Value]struct{}, r.ex.TAG.G.NumVertices()),
	}
	if err := r.ex.runProg(prog, mids); err != nil {
		return err
	}
	for _, e := range r.ex.eng.Emitted() {
		mk := e.(relayMark)
		survivors[mk.alias][mk.v] = true
	}
	return nil
}

// relayMark reports a tuple vertex that relayed a surviving cycle value.
type relayMark struct {
	alias string
	v     bsp.VertexID
}
