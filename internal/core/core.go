package core
