package core

import (
	"repro/internal/bsp"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

// ExecInfo reports how the last query was executed.
type ExecInfo struct {
	Agg        AggClass
	Acyclic    bool
	Components int
	Cycles     int
	Fallbacks  int // blocks executed on the table-level (outer join) path
}

// Executor evaluates SQL queries with TAG-join vertex programs over a TAG
// graph. It is a convenience wrapper around a single Session and, like a
// Session, is not safe for concurrent use (one query at a time). For
// concurrent serving, create one Session per in-flight query with
// NewSession (or use internal/serve's session pool): all per-query state
// lives on the Session, so N sessions can evaluate simultaneously over
// one frozen tag.Graph.
type Executor struct {
	TAG  *tag.Graph
	Opts bsp.Options

	// Theta overrides the heavy/light threshold of cyclic queries
	// (§6.1.2); 0 means the default θ = √IN. Exposed for the θ-sweep
	// ablation benchmark.
	Theta float64

	// DisablePartialAgg turns off the eager/partial aggregation of §7:
	// vertices then ship one group per input row instead of locally
	// pre-aggregated partials, inflating aggregation-message volume.
	// Exposed for the eager-aggregation ablation benchmark.
	DisablePartialAgg bool

	// ForceCyclePrePass runs the §6.2 heavy/light cycle reduction even on
	// PK-FK-dominated cycles that would normally take the §6.1.1 shortcut;
	// used by the θ-sweep ablation.
	ForceCyclePrePass bool

	// ForceGlobalAgg routes local-aggregation queries through the global
	// aggregator vertex instead of parallel per-attribute-vertex
	// aggregation, exposing the LA-vs-GA bottleneck of §7/§8.3 as an
	// ablation.
	ForceGlobalAgg bool

	// Info reports how the most recent query was executed.
	Info ExecInfo

	sess *Session
}

// NewExecutor prepares an executor; opts configure the BSP engine
// (workers, partitions for the cluster simulation, ...).
func NewExecutor(t *tag.Graph, opts bsp.Options) *Executor {
	return &Executor{
		TAG:  t,
		Opts: opts,
		sess: NewSession(t, opts),
	}
}

// Session returns the executor's underlying single session with the
// current ablation knobs applied.
func (e *Executor) Session() *Session {
	s := e.sess
	s.Theta = e.Theta
	s.DisablePartialAgg = e.DisablePartialAgg
	s.ForceCyclePrePass = e.ForceCyclePrePass
	s.ForceGlobalAgg = e.ForceGlobalAgg
	return s
}

// payloadSize estimates message wire sizes for the cost accounting.
func payloadSize(p any) int {
	switch m := p.(type) {
	case nil:
		return 8
	case *table:
		return m.size()
	case relation.Value:
		return m.Size()
	case cycleMsg:
		return 8 + m.val.Size()
	case *partialGroups:
		return m.size()
	default:
		return 8
	}
}

// Stats returns the accumulated BSP cost measures across queries.
func (e *Executor) Stats() bsp.Stats { return e.sess.Stats() }

// ResetStats zeroes the accumulated cost measures.
func (e *Executor) ResetStats() { e.sess.ResetStats() }

// Query parses, analyzes and executes a SQL string.
func (e *Executor) Query(query string) (*relation.Relation, error) {
	s := e.Session()
	out, err := s.Query(query)
	e.Info = s.Info
	return out, err
}

// Run executes an analyzed query.
func (e *Executor) Run(an *sql.Analysis) (*relation.Relation, error) {
	s := e.Session()
	out, err := s.Run(an)
	e.Info = s.Info
	return out, err
}

// CartesianA computes R × S with the centralized Algorithm A of §6.3.
func (e *Executor) CartesianA(tableR, tableS string) (*relation.Relation, error) {
	return e.Session().CartesianA(tableR, tableS)
}

// CartesianB computes R × S with the distributed Algorithm B of §6.3.
func (e *Executor) CartesianB(tableR, tableS string) (*relation.Relation, error) {
	return e.Session().CartesianB(tableR, tableS)
}

// residualVertexSafe reports whether all residual predicates can run
// inside vertex programs (no un-decorrelated subqueries that would
// re-enter the engine).
func (c *compiled) residualVertexSafe() bool {
	for _, p := range c.residual {
		if p.fn == nil && len(sql.SubSelects(p.expr)) > 0 {
			return false
		}
	}
	// The same restriction applies to GROUP BY and HAVING expressions and
	// aggregate arguments evaluated at vertices.
	for _, g := range c.blk.Sel.GroupBy {
		if len(sql.SubSelects(g)) > 0 {
			return false
		}
	}
	for _, f := range c.blk.Aggregates {
		for _, a := range f.Args {
			if len(sql.SubSelects(a)) > 0 {
				return false
			}
		}
	}
	return true
}

// localAggKey returns the group-key column for the LA path if the first
// GROUP BY column is TAG-materialized.
func (c *compiled) localAggKey(t *tag.Graph) (plan.ColRef, bool) {
	ref, ok := c.blk.Sel.GroupBy[0].(*sql.ColRef)
	if !ok {
		return plan.ColRef{}, false
	}
	if !t.Materialized(c.aliasTable[ref.Alias], ref.Column) {
		return plan.ColRef{}, false
	}
	return plan.NewColRef(ref.Alias, ref.Column), true
}
