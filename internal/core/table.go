// Package core implements TAG-join (§4–§7 of the paper): vertex-centric
// evaluation of SQL equi-join queries over the TAG encoding, running on
// the bsp engine. The executor compiles analyzed SQL into TAG traversal
// plans, runs Algorithm 2's reduction and collection phases as vertex
// programs, handles cyclic fragments with the heavy/light strategy,
// Cartesian products, outer joins, subqueries, and the three aggregation
// classes (local, global, scalar).
//
// Per-query state lives on a Session; any number of Sessions evaluate
// concurrently over one frozen, immutable tag.Graph. A Session is bound
// for life to the graph generation it was created on: under the serving
// layer's generation scheme, incremental maintenance never mutates a
// served graph — it publishes a clone as a new generation with fresh
// sessions and drains the old. Executor remains as a single-session
// convenience wrapper for benchmarks, tests, and tagsql.
package core

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/relation"
)

// idCol returns the hidden provenance column name for an alias. Every
// tuple vertex contributes its vertex id under this column, so that
// re-joining a table with a tuple vertex's own row during the Euler
// traversal of the collection phase keeps exactly the rows that
// originated there (correct multiplicities even with duplicate tuples).
func idCol(alias string) string { return "#" + alias }

// table is a partial join result flowing through the collection phase:
// a header of "alias.column" bind keys (plus hidden #alias id columns)
// over rows of values. The header and index are immutable and shared
// between tables of the same shape (they are per-plan-edge, not per-row).
type table struct {
	header []string
	index  map[string]int
	rows   [][]relation.Value
}

func buildIndex(header []string) map[string]int {
	idx := make(map[string]int, len(header))
	for i, h := range header {
		idx[h] = i
	}
	return idx
}

func newTable(header []string) *table {
	return &table{header: header, index: buildIndex(header)}
}

// newTableShared reuses a prebuilt index (read-only).
func newTableShared(header []string, index map[string]int) *table {
	return &table{header: header, index: index}
}

// unitTable is the join identity: one empty row.
func unitTable() *table {
	t := newTable(nil)
	t.rows = [][]relation.Value{{}}
	return t
}

// clone returns a shallow copy sharing rows and index.
func (t *table) clone() *table {
	return &table{header: t.header, index: t.index, rows: t.rows}
}

// size estimates the wire size of the table in bytes (message
// accounting). The header/schema is negotiated once per query, so only
// row payloads count.
func (t *table) size() int {
	n := 8
	for _, r := range t.rows {
		for _, v := range r {
			n += v.Size()
		}
	}
	return n
}

// union appends other's rows; headers must be identical (same plan edge).
func (t *table) union(other *table) *table {
	if len(t.header) != len(other.header) {
		panic("core: union of incompatible tables")
	}
	out := newTableShared(t.header, t.index)
	out.rows = make([][]relation.Value, 0, len(t.rows)+len(other.rows))
	out.rows = append(out.rows, t.rows...)
	out.rows = append(out.rows, other.rows...)
	return out
}

// classAgreement describes, for one join-attribute class, the bind keys
// of its member columns; a joined row is valid only if all present member
// columns hold equal non-NULL values (this enforces multi-attribute join
// conditions and broken cycle-closing predicates, §4.2/§6.2).
type classAgreement [][]string

// joinShape is the precomputed plan of joining two table shapes: shared
// column slot pairs, the t2-only slots, the merged header/index, and the
// class-agreement slot sets. Shapes recur across every vertex of a
// superstep, so they are cached by header identity.
type joinShape struct {
	shared    [][2]int
	extra     []int
	header    []string
	index     map[string]int
	agreeSets [][]int
}

type shapeKey struct {
	h1, h2 *string
	l1, l2 int
}

func keyOf(h1, h2 []string) shapeKey {
	k := shapeKey{l1: len(h1), l2: len(h2)}
	if len(h1) > 0 {
		k.h1 = &h1[0]
	}
	if len(h2) > 0 {
		k.h2 = &h2[0]
	}
	return k
}

// joiner joins tables with shared-column natural-join semantics plus
// class agreement; it is safe for concurrent use by the vertex workers.
type joiner struct {
	classes classAgreement

	mu     sync.Mutex
	shapes map[shapeKey]*joinShape
}

func newJoiner(classes classAgreement) *joiner {
	return &joiner{classes: classes, shapes: make(map[shapeKey]*joinShape)}
}

func (j *joiner) shape(t1, t2 *table) *joinShape {
	k := keyOf(t1.header, t2.header)
	j.mu.Lock()
	if s, ok := j.shapes[k]; ok {
		j.mu.Unlock()
		return s
	}
	j.mu.Unlock()

	s := &joinShape{}
	for i2, h := range t2.header {
		if i1, ok := t1.index[h]; ok {
			s.shared = append(s.shared, [2]int{i1, i2})
		} else {
			s.extra = append(s.extra, i2)
		}
	}
	s.header = append([]string{}, t1.header...)
	for _, i2 := range s.extra {
		s.header = append(s.header, t2.header[i2])
	}
	s.index = buildIndex(s.header)
	for _, members := range j.classes {
		var slots []int
		for _, m := range members {
			if sl, ok := s.index[m]; ok {
				slots = append(slots, sl)
			}
		}
		if len(slots) >= 2 {
			s.agreeSets = append(s.agreeSets, slots)
		}
	}

	j.mu.Lock()
	j.shapes[k] = s
	j.mu.Unlock()
	return s
}

// join computes t1 ⋈ t2: rows must agree on shared header columns and on
// all class member columns present in the merged header.
func (j *joiner) join(t1, t2 *table) *table {
	s := j.shape(t1, t2)
	out := newTableShared(s.header, s.index)

	// Hash t2 on the shared columns for better-than-quadratic joins.
	if len(s.shared) > 0 {
		buckets := make(map[string][]int, len(t2.rows))
		var sb strings.Builder
		for i, row := range t2.rows {
			sb.Reset()
			for _, p := range s.shared {
				v := row[p[1]].Key()
				sb.WriteByte(byte(v.Kind) + '0')
				sb.WriteString(v.String())
				sb.WriteByte('\x1f')
			}
			buckets[sb.String()] = append(buckets[sb.String()], i)
		}
		for _, r1 := range t1.rows {
			sb.Reset()
			for _, p := range s.shared {
				v := r1[p[0]].Key()
				sb.WriteByte(byte(v.Kind) + '0')
				sb.WriteString(v.String())
				sb.WriteByte('\x1f')
			}
			for _, i2 := range buckets[sb.String()] {
				emitJoined(out, r1, t2.rows[i2], s)
			}
		}
		return out
	}
	for _, r1 := range t1.rows {
		for _, r2 := range t2.rows {
			emitJoined(out, r1, r2, s)
		}
	}
	return out
}

func emitJoined(out *table, r1, r2 []relation.Value, s *joinShape) {
	row := make([]relation.Value, 0, len(s.header))
	row = append(row, r1...)
	for _, i2 := range s.extra {
		row = append(row, r2[i2])
	}
	for _, slots := range s.agreeSets {
		first := row[slots[0]]
		for _, sl := range slots[1:] {
			if !first.Equal(row[sl]) {
				return
			}
		}
	}
	out.rows = append(out.rows, row)
}

// project keeps only the named columns (which must exist), in order.
func (t *table) project(cols []string) *table {
	slots := make([]int, len(cols))
	for i, c := range cols {
		slots[i] = t.index[c]
	}
	out := newTable(cols)
	out.rows = make([][]relation.Value, len(t.rows))
	for r, row := range t.rows {
		nr := make([]relation.Value, len(cols))
		for i, s := range slots {
			nr[i] = row[s]
		}
		out.rows[r] = nr
	}
	return out
}

// dropHidden removes #alias provenance columns.
func (t *table) dropHidden() *table {
	var keep []string
	for _, h := range t.header {
		if !strings.HasPrefix(h, "#") {
			keep = append(keep, h)
		}
	}
	return t.project(keep)
}

// sortedKeys returns map keys sorted (test/determinism helper).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
