package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/relation"
	"repro/internal/sql"
)

// sessionCodec is the bsp.PayloadCodec of the SQL execution layer: it
// serializes every payload, combiner accumulator and emit value the
// vertex programs of this package put on the message plane, so the
// same programs run unchanged whether the partitions are simulated in
// one process or spread over internal/dist workers. The simulated
// engine prices the exact bytes this codec produces, which is what
// makes Stats.NetworkBytes equal measured bytes-on-wire.
//
// Every encoding starts with a tag byte; tag ctBasic defers to
// bsp.BasicCodec for the primitive vocabulary (nil, bool, ints,
// strings, vertex ids), so core programs can keep using primitives
// freely.
type sessionCodec struct {
	basic bsp.BasicCodec
}

const (
	ctBasic byte = iota
	ctCycleMsg
	ctValueBatch
	ctSenderBatch
	ctTable
	ctTableBatch
	ctPartialGroups
	ctGroupAcc
	ctTuple
	ctValueSlice
	ctCartMsg
	ctOJReply
	ctRootVal
	ctRelayMark
	ctValue
)

// Append implements bsp.PayloadCodec.
func (c sessionCodec) Append(dst []byte, pay any) ([]byte, error) {
	switch m := pay.(type) {
	case cycleMsg:
		return relation.AppendValue(append(dst, ctCycleMsg), m.val)
	case *valueBatch:
		return appendValues(append(dst, ctValueBatch), m.vals)
	case *senderBatch:
		dst = binary.AppendUvarint(append(dst, ctSenderBatch), uint64(len(m.from)))
		for _, v := range m.from {
			dst = binary.AppendUvarint(dst, uint64(v))
		}
		return dst, nil
	case *table:
		return appendTable(append(dst, ctTable), m)
	case *tableBatch:
		return appendTable(append(dst, ctTableBatch), m.t)
	case *partialGroups:
		return appendPartialGroups(append(dst, ctPartialGroups), m)
	case *groupAcc:
		return appendGroup(append(dst, ctGroupAcc), m)
	case relation.Tuple:
		return appendValues(append(dst, ctTuple), m)
	case []relation.Value:
		return appendValues(append(dst, ctValueSlice), m)
	case cartMsg:
		dst = appendBool(append(dst, ctCartMsg), m.left)
		return appendValues(dst, m.row)
	case ojReply:
		dst = appendBool(append(dst, ctOJReply), m.left)
		return appendValues(dst, m.row)
	case rootVal:
		dst = binary.AppendUvarint(append(dst, ctRootVal), uint64(m.v))
		return appendTable(dst, m.t)
	case relayMark:
		dst = codec.AppendString(append(dst, ctRelayMark), m.alias)
		return binary.AppendUvarint(dst, uint64(m.v)), nil
	case relation.Value:
		return relation.AppendValue(append(dst, ctValue), m)
	default:
		return c.basic.Append(append(dst, ctBasic), pay)
	}
}

// Decode implements bsp.PayloadCodec. Every non-basic decode consumes
// the full buffer (Finish), so trailing garbage surfaces as an error
// instead of being silently dropped.
func (c sessionCodec) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty payload encoding")
	}
	if data[0] == ctBasic {
		return c.basic.Decode(data[1:])
	}
	d := codec.NewDecoder(data[1:])
	pay, err := decodeTagged(data[0], d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return pay, nil
}

func decodeTagged(tag byte, d *codec.Decoder) (any, error) {
	switch tag {
	case ctCycleMsg:
		v, err := relation.DecodeValue(d)
		if err != nil {
			return nil, err
		}
		return cycleMsg{val: v}, nil
	case ctValueBatch:
		vals, err := decodeValues(d)
		if err != nil {
			return nil, err
		}
		b := &valueBatch{vals: vals, seen: make(map[relation.Value]struct{}, len(vals))}
		for _, v := range vals {
			b.seen[v] = struct{}{}
		}
		return b, nil
	case ctSenderBatch:
		n, err := d.Length()
		if err != nil {
			return nil, err
		}
		b := &senderBatch{from: make([]bsp.VertexID, 0, codec.CapHint(n))}
		for i := 0; i < n; i++ {
			v, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			b.from = append(b.from, bsp.VertexID(v))
		}
		return b, nil
	case ctTable:
		return decodeTable(d)
	case ctTableBatch:
		t, err := decodeTable(d)
		if err != nil {
			return nil, err
		}
		return &tableBatch{t: t, owned: true}, nil
	case ctPartialGroups:
		return decodePartialGroups(d)
	case ctGroupAcc:
		return decodeGroup(d)
	case ctTuple:
		vals, err := decodeValues(d)
		if err != nil {
			return nil, err
		}
		return relation.Tuple(vals), nil
	case ctValueSlice:
		return decodeValues(d)
	case ctCartMsg:
		left, err := decodeBool(d)
		if err != nil {
			return nil, err
		}
		row, err := decodeValues(d)
		if err != nil {
			return nil, err
		}
		return cartMsg{left: left, row: row}, nil
	case ctOJReply:
		left, err := decodeBool(d)
		if err != nil {
			return nil, err
		}
		row, err := decodeValues(d)
		if err != nil {
			return nil, err
		}
		return ojReply{left: left, row: row}, nil
	case ctRootVal:
		v, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		t, err := decodeTable(d)
		if err != nil {
			return nil, err
		}
		return rootVal{v: bsp.VertexID(v), t: t}, nil
	case ctRelayMark:
		alias, err := d.Str()
		if err != nil {
			return nil, err
		}
		v, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		return relayMark{alias: alias, v: bsp.VertexID(v)}, nil
	case ctValue:
		return relation.DecodeValue(d)
	default:
		return nil, fmt.Errorf("core: unknown payload tag %#x", tag)
	}
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func decodeBool(d *codec.Decoder) (bool, error) {
	b, err := d.Byte()
	return b != 0, err
}

func appendValues(b []byte, vals []relation.Value) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(vals)))
	var err error
	for _, v := range vals {
		if b, err = relation.AppendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeValues(d *codec.Decoder) ([]relation.Value, error) {
	n, err := d.Length()
	if err != nil {
		return nil, err
	}
	vals := make([]relation.Value, 0, codec.CapHint(n))
	for i := 0; i < n; i++ {
		v, err := relation.DecodeValue(d)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	return vals, nil
}

func appendStrings(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = codec.AppendString(b, s)
	}
	return b
}

func decodeStrings(d *codec.Decoder) ([]string, error) {
	n, err := d.Length()
	if err != nil {
		return nil, err
	}
	ss := make([]string, 0, codec.CapHint(n))
	for i := 0; i < n; i++ {
		s, err := d.Str()
		if err != nil {
			return nil, err
		}
		ss = append(ss, s)
	}
	return ss, nil
}

// appendTable encodes header and rows; the index is rebuilt on decode.
// Every row of a plane-crossing table has header arity (they are built
// against the header by construction), so rows encode values only.
func appendTable(b []byte, t *table) ([]byte, error) {
	b = appendStrings(b, t.header)
	b = binary.AppendUvarint(b, uint64(len(t.rows)))
	var err error
	for _, row := range t.rows {
		if len(row) != len(t.header) {
			return nil, fmt.Errorf("core: table row arity %d != header arity %d", len(row), len(t.header))
		}
		for _, v := range row {
			if b, err = relation.AppendValue(b, v); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func decodeTable(d *codec.Decoder) (*table, error) {
	header, err := decodeStrings(d)
	if err != nil {
		return nil, err
	}
	nrows, err := d.Length()
	if err != nil {
		return nil, err
	}
	t := newTable(header)
	t.rows = make([][]relation.Value, 0, codec.CapHint(nrows))
	for i := 0; i < nrows; i++ {
		row := make([]relation.Value, len(header))
		for j := range row {
			if row[j], err = relation.DecodeValue(d); err != nil {
				return nil, err
			}
		}
		t.rows = append(t.rows, row)
	}
	return t, nil
}

// appendGroup encodes one partial aggregation group: key tuple, the
// representative row, and the aggregator states.
func appendGroup(b []byte, g *groupAcc) ([]byte, error) {
	b, err := appendValues(b, g.key)
	if err != nil {
		return nil, err
	}
	if b, err = appendValues(b, g.rep); err != nil {
		return nil, err
	}
	b = binary.AppendUvarint(b, uint64(len(g.aggs)))
	for _, a := range g.aggs {
		if b, err = a.AppendBinary(b); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeGroup(d *codec.Decoder) (*groupAcc, error) {
	key, err := decodeValues(d)
	if err != nil {
		return nil, err
	}
	rep, err := decodeValues(d)
	if err != nil {
		return nil, err
	}
	n, err := d.Length()
	if err != nil {
		return nil, err
	}
	g := &groupAcc{key: key, rep: rep, aggs: make([]*sql.Aggregator, 0, codec.CapHint(n))}
	for i := 0; i < n; i++ {
		a, err := sql.DecodeAggregator(d)
		if err != nil {
			return nil, err
		}
		g.aggs = append(g.aggs, a)
	}
	return g, nil
}

// appendPartialGroups encodes the aggregation fold stream: the shared
// source header, the logical pre-combine group count, and the groups in
// fold order (the receiver's merge replays concatenation-deferred keys
// in exactly this order, preserving float byte-identity).
func appendPartialGroups(b []byte, pg *partialGroups) ([]byte, error) {
	b = appendStrings(b, pg.header)
	b = binary.AppendUvarint(b, uint64(pg.logicalGroups()))
	b = binary.AppendUvarint(b, uint64(len(pg.groups)))
	var err error
	for _, g := range pg.groups {
		if b, err = appendGroup(b, g); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodePartialGroups(d *codec.Decoder) (*partialGroups, error) {
	header, err := decodeStrings(d)
	if err != nil {
		return nil, err
	}
	logical, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	n, err := d.Length()
	if err != nil {
		return nil, err
	}
	pg := &partialGroups{header: header, logical: int(logical),
		groups: make([]*groupAcc, 0, codec.CapHint(n))}
	for i := 0; i < n; i++ {
		g, err := decodeGroup(d)
		if err != nil {
			return nil, err
		}
		pg.groups = append(pg.groups, g)
	}
	return pg, nil
}
