package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/tag"
)

// AggClass classifies a query block's aggregation per §7, which drives
// both the execution strategy and the experiment groupings of Figure 15.
type AggClass int

// Aggregation classes.
const (
	AggNone   AggClass = iota // no aggregation
	AggLocal                  // GROUP BY keyed by one attribute (vertex-local)
	AggGlobal                 // multi-attribute GROUP BY (global aggregator)
	AggScalar                 // aggregates without GROUP BY (single value)
)

func (a AggClass) String() string {
	switch a {
	case AggNone:
		return "none"
	case AggLocal:
		return "local"
	case AggGlobal:
		return "global"
	case AggScalar:
		return "scalar"
	}
	return "?"
}

// predicate is a filter: either an AST expression or a compiled closure
// (produced by subquery decorrelation), tagged with the block aliases it
// reads so it can be pushed to the right vertices.
type predicate struct {
	expr    sql.Expr
	fn      func(env *sql.Env) (bool, error)
	aliases map[string]bool
	// cols lists "alias.column" bind keys a closure predicate reads (so
	// the compiler can carry them through collection).
	cols []string
}

// eval evaluates the predicate under env.
func (p *predicate) eval(env *sql.Env, subq sql.SubqueryFn) (bool, error) {
	if p.fn != nil {
		return p.fn(env)
	}
	v, err := sql.Eval(p.expr, env, subq)
	if err != nil {
		return false, err
	}
	return v.AsBool(), nil
}

// compiled is the executable form of one SELECT block on the TAG engine.
type compiled struct {
	an  *sql.Analysis
	blk *sql.Analyzed

	aliasTable map[string]string // alias -> relation name (lower)
	filters    map[string][]*predicate
	residual   []*predicate
	equi       []plan.EquiPred
	qp         *plan.QueryPlan

	// needed lists, per alias, the columns carried through collection
	// (referenced columns plus all join-class columns), with their schema
	// slots; bindKeys are the "alias.column" header names in order.
	// ownHeader/ownIndex are the per-alias single-row table shapes,
	// shared read-only by every tuple vertex of the alias.
	needed    map[string][]string
	neededIdx map[string][]int
	bindKeys  map[string][]string
	ownHeader map[string][]string
	ownIndex  map[string]map[string]int

	// classCols lists, per join class, the member bind keys inside this
	// block: the agreement sets enforced at collection joins.
	classCols classAgreement

	agg AggClass
	// hasOuter marks blocks with LEFT/RIGHT/FULL joins (table-level path).
	hasOuter bool
}

// compileBlock builds the executable form of blk.
func (e *Session) compileBlock(an *sql.Analysis, blk *sql.Analyzed) (*compiled, error) {
	c := &compiled{
		an:         an,
		blk:        blk,
		aliasTable: map[string]string{},
		filters:    map[string][]*predicate{},
		needed:     map[string][]string{},
		neededIdx:  map[string][]int{},
		bindKeys:   map[string][]string{},
		ownHeader:  map[string][]string{},
		ownIndex:   map[string]map[string]int{},
	}
	sel := blk.Sel
	card := map[string]int{}
	for _, bt := range blk.Tables {
		c.aliasTable[bt.Alias] = bt.Table
		rel := e.TAG.Catalog.Get(bt.Table)
		if rel == nil {
			return nil, fmt.Errorf("core: table %q not in TAG catalog", bt.Table)
		}
		card[bt.Alias] = rel.Len()
		if w, ok := e.restrict[bt.Alias]; ok {
			// A window-restricted alias contributes only its windowed
			// vertices; using that count makes GYO remove the (tiny)
			// delta alias first, so it lands at a leaf of the join tree.
			card[bt.Alias] = len(w.slice(e.TAG.TupleVertices(bt.Table)))
		}
	}
	for _, fi := range sel.From {
		switch fi.Join {
		case sql.JoinLeft, sql.JoinRight, sql.JoinFull:
			c.hasOuter = true
		}
	}

	// Conjuncts: WHERE plus inner ON (outer ONs stay with their join in
	// the outer path).
	var conjs []sql.Expr
	conjs = append(conjs, sql.SplitConjuncts(sel.Where)...)
	for _, fi := range sel.From {
		if fi.Join == sql.JoinInner {
			conjs = append(conjs, sql.SplitConjuncts(fi.On)...)
		}
	}

	for _, conj := range conjs {
		p := e.compilePredicate(an, blk, conj)
		switch {
		case len(p.aliases) == 1 && !c.hasOuter:
			var a string
			for x := range p.aliases {
				a = x
			}
			c.filters[a] = append(c.filters[a], p)
		case p.expr != nil && !c.hasOuter:
			if ep, ok := asEqui(p.expr); ok {
				c.equi = append(c.equi, ep)
				continue
			}
			c.residual = append(c.residual, p)
		default:
			c.residual = append(c.residual, p)
		}
	}

	// Structural plan (inner blocks only; outer blocks use the table path).
	if !c.hasOuter {
		var aliases []string
		for _, bt := range blk.Tables {
			aliases = append(aliases, bt.Alias)
		}
		qp, err := plan.Build(aliases, c.equi, plan.Options{Cardinality: card, PreferStart: e.deltaAlias})
		if err != nil {
			return nil, err
		}
		c.qp = qp
	}

	c.computeNeeded()
	c.classifyAggregation(e.TAG)

	// Residual predicates that are vertex-safe learn which bind keys they
	// need, so the collection phase can apply them as soon as a partial
	// table contains those columns (§7's pushed selections, line 31).
	for _, pr := range c.residual {
		if pr.fn != nil {
			continue // closures already carry cols
		}
		if len(sql.SubSelects(pr.expr)) > 0 {
			continue // vertex-unsafe: central evaluation only
		}
		for _, ref := range sql.ColRefs(pr.expr) {
			if ref.Depth == 0 {
				pr.cols = append(pr.cols, sql.BindKey(ref.Alias, ref.Column))
			}
		}
	}
	return c, nil
}

// compilePredicate wraps a conjunct, attempting subquery decorrelation.
func (e *Session) compilePredicate(an *sql.Analysis, blk *sql.Analyzed, conj sql.Expr) *predicate {
	if p := e.tryDecorrelate(an, blk, conj); p != nil {
		return p
	}
	return &predicate{expr: conj, aliases: sql.AliasesOf(an, conj, 0)}
}

// asEqui recognizes a.x = b.y between distinct block aliases.
func asEqui(e sql.Expr) (plan.EquiPred, bool) {
	b, ok := e.(*sql.Binary)
	if !ok || b.Op != "=" {
		return plan.EquiPred{}, false
	}
	l, ok := b.L.(*sql.ColRef)
	if !ok || l.Depth != 0 {
		return plan.EquiPred{}, false
	}
	r, ok := b.R.(*sql.ColRef)
	if !ok || r.Depth != 0 || r.Alias == l.Alias {
		return plan.EquiPred{}, false
	}
	return plan.EquiPred{A: plan.NewColRef(l.Alias, l.Column), B: plan.NewColRef(r.Alias, r.Column)}, true
}

// computeNeeded collects the columns each alias must carry through the
// collection phase: columns referenced by SELECT/GROUP BY/HAVING and
// residual predicates, plus every join-class column (agreement checks).
func (c *compiled) computeNeeded() {
	want := map[string]map[string]bool{}
	add := func(alias, col string) {
		if _, ok := c.aliasTable[alias]; !ok {
			return
		}
		if want[alias] == nil {
			want[alias] = map[string]bool{}
		}
		want[alias][col] = true
	}
	addExpr := func(x sql.Expr) {
		if x == nil {
			return
		}
		// Current-block refs at any nesting depth.
		var visit func(e sql.Expr, off int)
		visit = func(e sql.Expr, off int) {
			if e == nil {
				return
			}
			for _, r := range sql.ColRefs(e) {
				if r.Depth == off {
					add(r.Alias, r.Column)
				}
			}
			for _, subSel := range sql.SubSelects(e) {
				if b := c.an.Blocks[subSel]; b != nil {
					sql.VisitBlockExprs(b, off+1, visit)
				}
			}
		}
		visit(x, 0)
	}
	for _, it := range c.blk.Sel.Items {
		addExpr(it.Expr)
	}
	for _, g := range c.blk.Sel.GroupBy {
		addExpr(g)
	}
	addExpr(c.blk.Sel.Having)
	for _, fi := range c.blk.Sel.From {
		addExpr(fi.On) // outer-join ONs are not part of conjs
	}
	for _, p := range c.residual {
		if p.expr != nil {
			addExpr(p.expr)
		}
		for a := range p.aliases {
			// Closure predicates record the columns they need as
			// "alias.column" keys in their alias set encoding; see
			// tryDecorrelate. Fallback: keep all join columns below.
			_ = a
		}
	}
	if c.qp != nil {
		for _, m := range flattenClasses(c.qp.Classes) {
			add(m.Alias, m.Column)
		}
		// Class agreement sets.
		for cid := range c.qp.Classes.Members {
			var keys []string
			for _, m := range c.qp.Classes.Members[cid] {
				if _, ok := c.aliasTable[m.Alias]; ok {
					keys = append(keys, sql.BindKey(m.Alias, m.Column))
				}
			}
			if len(keys) >= 2 {
				c.classCols = append(c.classCols, keys)
			}
		}
	}
	// Closure predicates: their column needs were recorded via needCols.
	for _, p := range c.residual {
		for _, key := range p.needCols() {
			parts := strings.SplitN(key, ".", 2)
			if len(parts) == 2 {
				add(parts[0], parts[1])
			}
		}
	}

	for _, bt := range c.blk.Tables {
		alias := bt.Alias
		cols := sortedKeys(want[alias])
		c.needed[alias] = cols
		idx := make([]int, len(cols))
		keys := make([]string, len(cols))
		for i, col := range cols {
			idx[i] = bt.Schema.Index(col)
			keys[i] = sql.BindKey(alias, col)
		}
		c.neededIdx[alias] = idx
		c.bindKeys[alias] = keys
		header := append(append([]string{}, keys...), idCol(alias))
		c.ownHeader[alias] = header
		c.ownIndex[alias] = buildIndex(header)
	}
}

func flattenClasses(cl *plan.Classes) []plan.ColRef {
	var out []plan.ColRef
	for _, ms := range cl.Members {
		out = append(out, ms...)
	}
	return out
}

// classifyAggregation assigns the §7 aggregation class. Local aggregation
// (LA) applies when the GROUP BY is keyed by one attribute: a single
// column, or a leading column that functionally determines the rest
// (detected via declared primary keys, possibly through a join class —
// e.g. GROUP BY l_orderkey, o_orderdate where l_orderkey joins the orders
// PK).
func (c *compiled) classifyAggregation(t *tag.Graph) {
	sel := c.blk.Sel
	switch {
	case len(sel.GroupBy) == 0 && !c.blk.HasAgg:
		c.agg = AggNone
	case len(sel.GroupBy) == 0:
		c.agg = AggScalar
	default:
		ref, ok := sel.GroupBy[0].(*sql.ColRef)
		if ok && ref.Depth == 0 && (len(sel.GroupBy) == 1 || c.isKeyColumn(t, ref)) {
			c.agg = AggLocal
		} else {
			c.agg = AggGlobal
		}
	}
}

// isKeyColumn reports whether ref is a declared primary key column or
// equi-joined to one.
func (c *compiled) isKeyColumn(t *tag.Graph, ref *sql.ColRef) bool {
	cat := t.Catalog
	if cat.PrimaryKey(c.aliasTable[ref.Alias]) == ref.Column {
		return true
	}
	if c.qp == nil {
		return false
	}
	cr := plan.NewColRef(ref.Alias, ref.Column)
	cid, ok := c.qp.Classes.Of[cr]
	if !ok {
		return false
	}
	for _, m := range c.qp.Classes.Members[cid] {
		if table, ok := c.aliasTable[m.Alias]; ok && cat.PrimaryKey(table) == m.Column {
			return true
		}
	}
	return false
}

// needCols lets closure predicates declare the block columns they read.
func (p *predicate) needCols() []string { return p.cols }

// sortAliases returns the block's aliases sorted (determinism helper).
func (c *compiled) sortAliases() []string {
	out := make([]string, 0, len(c.aliasTable))
	for a := range c.aliasTable {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
