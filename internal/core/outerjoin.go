package core

import (
	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/sql"
)

// runOuterBlock executes blocks containing LEFT/RIGHT/FULL joins. The
// two-table case runs the §7 vertex program (attribute vertices decide
// which side to NULL-extend); larger outer queries scan each table
// vertex-parallel and perform the left-deep outer joins at the executor,
// which §7 describes only for the two-way case.
func (e *Session) runOuterBlock(c *compiled, outer *sql.Env) (*relation.Relation, error) {
	an := c.an
	subq := e.subqueryFn(an)

	if t, ok, err := e.tryVertexOuter(c, outer, subq); ok || err != nil {
		if err != nil {
			return nil, err
		}
		t, err = e.applyResidualCentral(c, t, outer, subq)
		if err != nil {
			return nil, err
		}
		return e.projectCentral(c, t, outer, subq)
	}

	var cur *table
	j := newJoiner(c.classCols)
	for i, fi := range c.blk.Sel.From {
		alias := c.blk.Tables[i].Alias
		right, err := e.scanAlias(c, alias)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = right
			continue
		}
		switch fi.Join {
		case sql.JoinComma:
			cur = j.join(cur, right)
		case sql.JoinInner:
			cur, err = e.tableJoinOn(c, cur, right, fi.On, outer, subq, false, false)
		case sql.JoinLeft:
			cur, err = e.tableJoinOn(c, cur, right, fi.On, outer, subq, true, false)
		case sql.JoinRight:
			cur, err = e.tableJoinOn(c, cur, right, fi.On, outer, subq, false, true)
		case sql.JoinFull:
			cur, err = e.tableJoinOn(c, cur, right, fi.On, outer, subq, true, true)
		}
		if err != nil {
			return nil, err
		}
	}
	cur, err := e.applyResidualCentral(c, cur, outer, subq)
	if err != nil {
		return nil, err
	}
	return e.projectCentral(c, cur, outer, subq)
}

// scanAlias materializes an alias's needed columns vertex-parallel.
func (e *Session) scanAlias(c *compiled, alias string) (*table, error) {
	header := append(append([]string{}, c.bindKeys[alias]...), idCol(alias))
	out := newTable(header)
	idx := c.neededIdx[alias]
	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		d := e.TAG.TupleData(v)
		if d == nil || d.Dead {
			return
		}
		ctx.AddOps(1)
		row := make([]relation.Value, 0, len(header))
		for _, si := range idx {
			row = append(row, d.Row[si])
		}
		row = append(row, relation.Int(int64(v)))
		ctx.Emit(row)
	})
	if err := e.runProg(prog, e.TAG.TupleVertices(c.aliasTable[alias])); err != nil {
		return nil, err
	}
	for _, em := range e.eng.Emitted() {
		out.rows = append(out.rows, em.([]relation.Value))
	}
	return out, nil
}

// ojReply is the tuple-vertex reply of the §7 two-way outer join: which
// side the replying tuple belongs to, and its projected row.
type ojReply struct {
	left bool
	row  []relation.Value
}

// tableJoinOn hash-joins two tables on the equi conjuncts of ON and
// evaluates the remaining conjuncts row-wise; leftOuter/rightOuter select
// NULL-extension sides.
func (e *Session) tableJoinOn(c *compiled, l, r *table, on sql.Expr, outer *sql.Env, subq sql.SubqueryFn, leftOuter, rightOuter bool) (*table, error) {
	type hashPair struct{ ls, rs int }
	var pairs []hashPair
	var rest []sql.Expr
	for _, cj := range sql.SplitConjuncts(on) {
		if ep, ok := asEqui(cj); ok {
			lk, rk := sql.BindKey(ep.A.Alias, ep.A.Column), sql.BindKey(ep.B.Alias, ep.B.Column)
			if ls, ok1 := l.index[lk]; ok1 {
				if rs, ok2 := r.index[rk]; ok2 {
					pairs = append(pairs, hashPair{ls, rs})
					continue
				}
			}
			if ls, ok1 := l.index[rk]; ok1 {
				if rs, ok2 := r.index[lk]; ok2 {
					pairs = append(pairs, hashPair{ls, rs})
					continue
				}
			}
		}
		rest = append(rest, cj)
	}

	header := append(append([]string{}, l.header...), r.header...)
	out := newTable(header)
	binding := sql.Binding{}
	for i, h := range header {
		binding[h] = i
	}
	env := &sql.Env{Binding: binding, Parent: outer}

	buckets := map[string][]int{}
	key := make([]relation.Value, len(pairs))
	for i, row := range r.rows {
		null := false
		for k, p := range pairs {
			if row[p.rs].IsNull() {
				null = true
				break
			}
			key[k] = row[p.rs]
		}
		if null {
			continue
		}
		ks := groupKeyString(key)
		buckets[ks] = append(buckets[ks], i)
	}

	matchedRight := make([]bool, len(r.rows))
	nullRight := make([]relation.Value, len(r.header))
	nullLeft := make([]relation.Value, len(l.header))

	for _, lrow := range l.rows {
		var candidates []int
		null := false
		for k, p := range pairs {
			if lrow[p.ls].IsNull() {
				null = true
				break
			}
			key[k] = lrow[p.ls]
		}
		if !null {
			if len(pairs) > 0 {
				candidates = buckets[groupKeyString(key)]
			} else {
				candidates = allIdx(len(r.rows))
			}
		}
		matched := false
		for _, ri := range candidates {
			joined := append(append([]relation.Value{}, lrow...), r.rows[ri]...)
			ok := true
			for _, cj := range rest {
				env.Row = joined
				v, err := sql.Eval(cj, env, subq)
				if err != nil {
					return nil, err
				}
				if !v.AsBool() {
					ok = false
					break
				}
			}
			if ok {
				matched = true
				matchedRight[ri] = true
				out.rows = append(out.rows, joined)
			}
		}
		if !matched && leftOuter {
			out.rows = append(out.rows, append(append([]relation.Value{}, lrow...), nullRight...))
		}
	}
	if rightOuter {
		for ri, m := range matchedRight {
			if !m {
				out.rows = append(out.rows, append(append([]relation.Value{}, nullLeft...), r.rows[ri]...))
			}
		}
	}
	return out, nil
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// tryVertexOuter runs the faithful §7 two-way outer join vertex program
// when the block is exactly two tables joined by one outer join whose ON
// clause is a single equality on materialized columns. It returns
// (table, handled, error).
func (e *Session) tryVertexOuter(c *compiled, outer *sql.Env, subq sql.SubqueryFn) (*table, bool, error) {
	sel := c.blk.Sel
	if len(sel.From) != 2 {
		return nil, false, nil
	}
	fi := sel.From[1]
	conjs := sql.SplitConjuncts(fi.On)
	if len(conjs) != 1 {
		return nil, false, nil
	}
	ep, ok := asEqui(conjs[0])
	if !ok {
		return nil, false, nil
	}
	la, ra := c.blk.Tables[0].Alias, c.blk.Tables[1].Alias
	if c.aliasTable[la] == c.aliasTable[ra] {
		// Self outer join: the vertex program tells the two sides apart
		// by table label, so it cannot run here; the table-level path
		// below handles it.
		return nil, false, nil
	}
	// Normalize so A is the left alias.
	if ep.A.Alias != la {
		ep.A, ep.B = ep.B, ep.A
	}
	if ep.A.Alias != la || ep.B.Alias != ra {
		return nil, false, nil
	}
	lLbl, ok1 := e.TAG.EdgeLabel(c.aliasTable[la], ep.A.Column)
	rLbl, ok2 := e.TAG.EdgeLabel(c.aliasTable[ra], ep.B.Column)
	if !ok1 || !ok2 || !e.TAG.Materialized(c.aliasTable[la], ep.A.Column) || !e.TAG.Materialized(c.aliasTable[ra], ep.B.Column) {
		return nil, false, nil
	}
	leftPreserve := fi.Join == sql.JoinLeft || fi.Join == sql.JoinFull
	rightPreserve := fi.Join == sql.JoinRight || fi.Join == sql.JoinFull

	header := append(append([]string{}, c.bindKeys[la]...), idCol(la))
	header = append(header, c.bindKeys[ra]...)
	header = append(header, idCol(ra))
	widthL := len(c.bindKeys[la]) + 1
	out := newTable(header)

	// Superstep 0: both sides report to the join attribute vertices.
	// Superstep 1: each attribute vertex asks the qualifying sides for
	// their values (per §7: a LEFT join needs at least one left edge).
	// Superstep 2: tuple vertices reply with their rows.
	// Superstep 3: attribute vertices build the (possibly NULL-extended)
	// output; preserved-side tuples without a join value at all are
	// handled by the final sweep below.
	matchedLeft := make([]bool, e.TAG.G.NumVertices())
	matchedRight := make([]bool, e.TAG.G.NumVertices())

	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		ctx.AddOps(1 + len(inbox))
		switch ctx.Step() {
		case 0:
			d := e.TAG.TupleData(v)
			if d == nil || d.Dead {
				return
			}
			if d.Table == c.aliasTable[la] {
				ctx.SendAlong(v, lLbl, true)
			} else {
				ctx.SendAlong(v, rLbl, false)
			}
		case 1:
			hasL, hasR := false, false
			for _, m := range inbox {
				if m.Payload.(bool) {
					hasL = true
				} else {
					hasR = true
				}
			}
			qualifies := (hasL && hasR) || (hasL && leftPreserve) || (hasR && rightPreserve)
			if !qualifies {
				return
			}
			for _, m := range inbox {
				ctx.Send(v, m.From, nil)
			}
		case 2:
			d := e.TAG.TupleData(v)
			isLeft := d.Table == c.aliasTable[la]
			alias := la
			if !isLeft {
				alias = ra
			}
			row := make([]relation.Value, 0, len(c.bindKeys[alias])+1)
			for _, si := range c.neededIdx[alias] {
				row = append(row, d.Row[si])
			}
			row = append(row, relation.Int(int64(v)))
			for _, m := range inbox {
				ctx.Send(v, m.From, ojReply{left: isLeft, row: row})
			}
		case 3:
			var lefts, rights [][]relation.Value
			var leftIDs, rightIDs []bsp.VertexID
			for _, m := range inbox {
				rp := m.Payload.(ojReply)
				if rp.left {
					lefts = append(lefts, rp.row)
					leftIDs = append(leftIDs, m.From)
				} else {
					rights = append(rights, rp.row)
					rightIDs = append(rightIDs, m.From)
				}
			}
			switch {
			case len(lefts) > 0 && len(rights) > 0:
				for li, lr := range lefts {
					for ri, rr := range rights {
						ctx.Emit(append(append([]relation.Value{}, lr...), rr...))
						matchedLeft[leftIDs[li]] = true
						matchedRight[rightIDs[ri]] = true
					}
				}
			case len(lefts) > 0 && leftPreserve:
				for li, lr := range lefts {
					matchedLeft[leftIDs[li]] = true
					ctx.Emit(append(append([]relation.Value{}, lr...), make([]relation.Value, len(header)-widthL)...))
				}
			case len(rights) > 0 && rightPreserve:
				for ri, rr := range rights {
					matchedRight[rightIDs[ri]] = true
					ctx.Emit(append(make([]relation.Value, widthL), rr...))
				}
			}
		}
	})
	initial := append(append([]bsp.VertexID{}, e.TAG.TupleVertices(c.aliasTable[la])...),
		e.TAG.TupleVertices(c.aliasTable[ra])...)
	if err := e.runProg(prog, initial); err != nil {
		return nil, false, err
	}
	for _, em := range e.eng.Emitted() {
		out.rows = append(out.rows, em.([]relation.Value))
	}

	// Preserved tuples whose join column is NULL (no attribute edge at
	// all) never reached an attribute vertex: NULL-extend them here.
	sweep := func(alias string, lbl bsp.LabelID, matched []bool, left bool) {
		for _, v := range e.TAG.TupleVertices(c.aliasTable[alias]) {
			d := e.TAG.TupleData(v)
			if d == nil || d.Dead || matched[v] {
				continue
			}
			if e.TAG.G.HasEdgeWithLabel(v, lbl) {
				continue // reached an attr vertex; decided there
			}
			row := make([]relation.Value, 0, len(header))
			if left {
				for _, si := range c.neededIdx[alias] {
					row = append(row, d.Row[si])
				}
				row = append(row, relation.Int(int64(v)))
				row = append(row, make([]relation.Value, len(header)-widthL)...)
			} else {
				row = append(row, make([]relation.Value, widthL)...)
				for _, si := range c.neededIdx[alias] {
					row = append(row, d.Row[si])
				}
				row = append(row, relation.Int(int64(v)))
			}
			out.rows = append(out.rows, row)
		}
	}
	if leftPreserve {
		sweep(la, lLbl, matchedLeft, true)
	}
	if rightPreserve {
		sweep(ra, rLbl, matchedRight, false)
	}
	return out, true, nil
}
