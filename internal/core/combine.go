package core

import (
	"repro/internal/bsp"
	"repro/internal/relation"
)

// This file declares the message combiners of the TAG-join vertex
// programs: folds applied by the BSP engine at Send time (per worker)
// and at the shard merge (across workers), so aggregate-heavy
// traversals deliver one message per (active vertex, slot) instead of
// one per sender. Every combiner here mirrors the exact left-fold its
// receiving vertex performs over an uncombined inbox — same merge
// operations in the same (worker, send) order — so combined execution
// is byte-identical in rows and paper-facing Stats (cross-checked per
// TPC-H query by TestCombinedMatchesUncombinedTPCH in internal/bench).

// pgCombiner folds partialGroups bound for the same aggregation target
// (the global aggregator vertex, a per-machine relay, or an attribute
// vertex on the LA path) into one message per destination, merging
// groups by key with sql.Aggregator.Merge — the COUNT/SUM/MIN/MAX fold
// the receiver would have run on arrival, moved to where the messages
// are produced.
//
// Byte-identity caveat: the receiving vertex left-folds colliding
// groups in delivery order, and a combiner necessarily regroups that
// fold (per-worker partials merge before cross-worker ones). A group
// pair therefore folds eagerly only when every slot's merge is exact
// under regrouping (sql.Aggregator.MergeExact: set unions, counts,
// comparisons, integer sums); order-sensitive merges — float SUM/AVG
// rounding — are instead concatenated in delivery order and left to
// the receiver, so the message still collapses but the arithmetic
// replays in exactly the uncombined sequence.
type pgCombiner struct{}

// Slot implements bsp.Combiner.
func (pgCombiner) Slot(any) int { return 0 }

// Fold implements bsp.Combiner. The first sender's partials are
// borrowed rather than copied: a partialGroups is sent to exactly one
// destination and never touched by its sender again.
func (pgCombiner) Fold(acc any, _ bsp.VertexID, payload any) any {
	pg := payload.(*partialGroups)
	if acc == nil {
		return pg
	}
	return mergePartialGroups(acc.(*partialGroups), pg)
}

// Merge implements bsp.Combiner.
func (pgCombiner) Merge(acc, other any) any {
	return mergePartialGroups(acc.(*partialGroups), other.(*partialGroups))
}

// mergePartialGroups folds b into a in b's group order. Per canonical
// key, the first group is the "open" accumulator: later groups merge
// into it while every slot's merge is exact under regrouping
// (MergeExact); the first order-sensitive pair switches the key to
// concatenation for the rest of the stream (the receiver folds
// concatenated groups into the first one in list order — eager merges
// into any later group would reparenthesize a float sum). The logical
// pre-combine group count is carried so receivers account the paper's
// ComputeOps as if nothing had folded.
func mergePartialGroups(a, b *partialGroups) *partialGroups {
	if a.index == nil {
		a.index = make(map[string]*groupAcc, len(a.groups))
		for _, g := range a.groups {
			a.index[groupKeyString(g.key)] = g
		}
	}
	la, lb := a.logicalGroups(), b.logicalGroups()
	for _, g := range b.groups {
		ks := groupKeyString(g.key)
		open, seen := a.index[ks]
		switch {
		case !seen:
			a.index[ks] = g
			a.groups = append(a.groups, g)
		case open != nil && groupsMergeExact(open, g):
			for i := range open.aggs {
				open.aggs[i].Merge(g.aggs[i])
			}
		default:
			a.index[ks] = nil // order-sensitive: defer this key to the receiver
			a.groups = append(a.groups, g)
		}
	}
	a.logical = la + lb
	if a.header == nil {
		a.header = b.header
	}
	return a
}

// groupsMergeExact reports whether folding b into a is independent of
// fold order for every aggregate slot.
func groupsMergeExact(a, b *groupAcc) bool {
	for i := range a.aggs {
		if !a.aggs[i].MergeExact(b.aggs[i]) {
			return false
		}
	}
	return true
}

// senderBatch is the combined payload of the reduction phase's nil
// messages: the sender ids folded at Send time, in delivery order. The
// receiving mark() records exactly the set it would have built from an
// uncombined inbox, at a third of the Message-slot footprint.
type senderBatch struct {
	from []bsp.VertexID
}

// senderCombiner folds the reduction phase's (From, nil) messages into
// one senderBatch per destination.
type senderCombiner struct{}

// Slot implements bsp.Combiner.
func (senderCombiner) Slot(any) int { return 0 }

// Fold implements bsp.Combiner.
func (senderCombiner) Fold(acc any, from bsp.VertexID, _ any) any {
	if acc == nil {
		return &senderBatch{from: append(make([]bsp.VertexID, 0, 4), from)}
	}
	b := acc.(*senderBatch)
	b.from = append(b.from, from)
	return b
}

// Merge implements bsp.Combiner.
func (senderCombiner) Merge(acc, other any) any {
	a, b := acc.(*senderBatch), other.(*senderBatch)
	a.from = append(a.from, b.from...)
	return a
}

// valueBatch is the combined payload of the cycle pre-pass propagation:
// the distinct join-attribute values folded at Send time, in first-send
// order. Receivers dedup per value anyway (the per-vertex fwd/seen
// sets), so dropping within-superstep duplicates early changes nothing
// they observe — it is the §6 value propagation's natural MIN-style
// fold.
type valueBatch struct {
	vals []relation.Value
	seen map[relation.Value]struct{}
}

func (b *valueBatch) add(val relation.Value) {
	if _, ok := b.seen[val]; !ok {
		b.seen[val] = struct{}{}
		b.vals = append(b.vals, val)
	}
}

// valueCombiner folds cycleMsg payloads into one valueBatch per
// destination.
type valueCombiner struct{}

// Slot implements bsp.Combiner.
func (valueCombiner) Slot(any) int { return 0 }

// Fold implements bsp.Combiner.
func (valueCombiner) Fold(acc any, _ bsp.VertexID, payload any) any {
	val := payload.(cycleMsg).val
	if acc == nil {
		return &valueBatch{
			vals: append(make([]relation.Value, 0, 4), val),
			seen: map[relation.Value]struct{}{val: {}},
		}
	}
	b := acc.(*valueBatch)
	b.add(val)
	return b
}

// Merge implements bsp.Combiner.
func (valueCombiner) Merge(acc, other any) any {
	a, b := acc.(*valueBatch), other.(*valueBatch)
	for _, v := range b.vals {
		a.add(v)
	}
	return a
}

// eachCycleVal visits the propagated values of one delivered message,
// combined or not, in delivery order.
func eachCycleVal(msg bsp.Message, fn func(relation.Value)) {
	if b, ok := msg.Payload.(*valueBatch); ok {
		for _, v := range b.vals {
			fn(v)
		}
		return
	}
	fn(msg.Payload.(cycleMsg).val)
}

// tableBatch is the combined payload of the collection phase: the union
// of the partial tables sent to one destination, rows in delivery
// order — the same single append pass the receiver runs over a
// multi-message inbox. The first table is borrowed without copying
// (collection multicasts one value table to several parents, so the
// batch copies the rows only when a second table actually arrives —
// mirroring the receiver, which also avoids the copy for a one-message
// inbox).
type tableBatch struct {
	t     *table
	owned bool
}

func (b *tableBatch) union(t *table) {
	if !b.owned {
		u := newTableShared(b.t.header, b.t.index)
		u.rows = append(make([][]relation.Value, 0, len(b.t.rows)+len(t.rows)), b.t.rows...)
		b.t = u
		b.owned = true
	}
	b.t.rows = append(b.t.rows, t.rows...)
}

// tableUnionCombiner folds the collection phase's partial-table
// messages into one tableBatch per destination.
type tableUnionCombiner struct{}

// Slot implements bsp.Combiner.
func (tableUnionCombiner) Slot(any) int { return 0 }

// Fold implements bsp.Combiner.
func (tableUnionCombiner) Fold(acc any, _ bsp.VertexID, payload any) any {
	if acc == nil {
		return &tableBatch{t: payload.(*table)}
	}
	b := acc.(*tableBatch)
	b.union(payload.(*table))
	return b
}

// Merge implements bsp.Combiner.
func (tableUnionCombiner) Merge(acc, other any) any {
	a, b := acc.(*tableBatch), other.(*tableBatch)
	a.union(b.t)
	return a
}
