package core

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// CartesianA computes R × S with the naive centralized Algorithm A of
// §6.3: every tuple vertex of both relations sends its data to the global
// aggregator vertex, which builds the product sequentially. Communication
// is O(|R|+|S|) but computation is centralized.
func (e *Session) CartesianA(tableR, tableS string) (*relation.Relation, error) {
	relR, relS := e.TAG.Catalog.Get(tableR), e.TAG.Catalog.Get(tableS)
	if relR == nil || relS == nil {
		return nil, fmt.Errorf("core: unknown relation %q or %q", tableR, tableS)
	}
	out := relation.New("product", productSchema(relR, relS))
	agg := e.TAG.Aggregator

	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		ctx.AddOps(1 + len(inbox))
		if ctx.Step() == 0 {
			d := e.TAG.TupleData(v)
			if d == nil || d.Dead {
				return
			}
			ctx.Send(v, agg, cartMsg{left: d.Table == lower(tableR), row: d.Row})
			return
		}
		// The aggregator vertex combines sequentially (the whole point of
		// Algorithm A's critique).
		var ls, rs []relation.Tuple
		for _, m := range inbox {
			p := m.Payload.(cartMsg)
			if p.left {
				ls = append(ls, p.row)
			} else {
				rs = append(rs, p.row)
			}
		}
		for _, l := range ls {
			for _, r := range rs {
				ctx.Emit(l.Concat(r))
				ctx.AddOps(1)
			}
		}
	})
	initial := append(append([]bsp.VertexID{}, e.TAG.TupleVertices(tableR)...), e.TAG.TupleVertices(tableS)...)
	if err := e.runProg(prog, initial); err != nil {
		return nil, err
	}
	for _, em := range e.eng.Emitted() {
		out.Tuples = append(out.Tuples, em.(relation.Tuple))
	}
	return out, nil
}

// cartMsg is the payload of Algorithm A's tuple relay: which side of
// the product the sender belongs to, and its row.
type cartMsg struct {
	left bool
	row  relation.Tuple
}

// CartesianB computes R × S with the distributed Algorithm B of §6.3: the
// aggregator relays R-vertex ids to every S vertex, S vertices forward
// their tuples to all R vertices, and each R vertex builds its slice of
// the product in parallel. Total communication is O(|R|·|S|) — the size
// of the answer — but the computation is spread over the R vertices.
func (e *Session) CartesianB(tableR, tableS string) (*relation.Relation, error) {
	relR, relS := e.TAG.Catalog.Get(tableR), e.TAG.Catalog.Get(tableS)
	if relR == nil || relS == nil {
		return nil, fmt.Errorf("core: unknown relation %q or %q", tableR, tableS)
	}
	out := relation.New("product", productSchema(relR, relS))
	agg := e.TAG.Aggregator
	lowR := lower(tableR)

	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		ctx.AddOps(1 + len(inbox))
		switch ctx.Step() {
		case 0:
			d := e.TAG.TupleData(v)
			if d == nil || d.Dead {
				return
			}
			ctx.Send(v, agg, d.Table == lowR)
		case 1:
			// Aggregator: transmit the R ids to each S vertex.
			var rIDs []bsp.VertexID
			var sIDs []bsp.VertexID
			for _, m := range inbox {
				if m.Payload.(bool) {
					rIDs = append(rIDs, m.From)
				} else {
					sIDs = append(sIDs, m.From)
				}
			}
			for _, s := range sIDs {
				ctx.Send(v, s, rIDs)
			}
		case 2:
			// S vertices broadcast their tuple to every R vertex.
			d := e.TAG.TupleData(v)
			for _, m := range inbox {
				for _, r := range m.Payload.([]bsp.VertexID) {
					ctx.Send(v, r, d.Row)
				}
			}
		case 3:
			// R vertices combine in parallel; the product stays
			// distributed over them (we emit for collection here).
			d := e.TAG.TupleData(v)
			for _, m := range inbox {
				ctx.Emit(d.Row.Concat(m.Payload.(relation.Tuple)))
				ctx.AddOps(1)
			}
		}
	})
	initial := append(append([]bsp.VertexID{}, e.TAG.TupleVertices(tableR)...), e.TAG.TupleVertices(tableS)...)
	if err := e.runProg(prog, initial); err != nil {
		return nil, err
	}
	for _, em := range e.eng.Emitted() {
		out.Tuples = append(out.Tuples, em.(relation.Tuple))
	}
	return out, nil
}

func productSchema(r, s *relation.Relation) *relation.Schema {
	var cols []relation.Column
	for _, c := range r.Schema.Columns {
		cols = append(cols, relation.Column{Name: r.Name + "_" + c.Name, Kind: c.Kind})
	}
	for _, c := range s.Schema.Columns {
		cols = append(cols, relation.Column{Name: s.Name + "_" + c.Name, Kind: c.Kind})
	}
	return relation.MustSchema(cols...)
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}
