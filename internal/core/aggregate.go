package core

import (
	"fmt"
	"strings"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/sql"
)

// groupAcc is one (partial) aggregation group: the evaluated GROUP BY key
// values, a representative source row, and partial accumulators.
type groupAcc struct {
	key  []relation.Value
	rep  []relation.Value
	aggs []*sql.Aggregator
}

// partialGroups is the message payload of the aggregation finalization:
// a vertex's locally pre-aggregated groups (the eager aggregation of §7).
// When the message plane folds aggregator-bound sends (pgCombiner),
// index and logical track the accumulated state: index dedups groups by
// canonical key across folded senders, logical preserves the
// pre-combine group count for the receiver's ComputeOps accounting.
type partialGroups struct {
	header  []string
	groups  []*groupAcc
	index   map[string]*groupAcc
	logical int
}

// logicalGroups is the number of groups the receiver would have seen
// had nothing folded en route.
func (p *partialGroups) logicalGroups() int {
	if p.logical > 0 {
		return p.logical
	}
	return len(p.groups)
}

func (p *partialGroups) size() int {
	n := 16
	for _, g := range p.groups {
		for _, v := range g.key {
			n += v.Size()
		}
		n += 32 * len(g.aggs)
	}
	return n
}

// aggSetup precomputes the aggregate slot assignment and rewritten
// SELECT/HAVING expressions of a block.
type aggSetup struct {
	list   []*sql.FuncCall
	items  []sql.Expr
	having sql.Expr
}

func newAggSetup(blk *sql.Analyzed) *aggSetup {
	slots := map[*sql.FuncCall]int{}
	for _, f := range blk.Aggregates {
		if _, ok := slots[f]; !ok {
			slots[f] = len(slots)
		}
	}
	s := &aggSetup{list: make([]*sql.FuncCall, len(slots))}
	for f, i := range slots {
		s.list[i] = f
	}
	slotOf := func(f *sql.FuncCall) int { return slots[f] }
	for _, it := range blk.Sel.Items {
		s.items = append(s.items, sql.RewriteAggregates(it.Expr, slotOf))
	}
	s.having = sql.RewriteAggregates(blk.Sel.Having, slotOf)
	return s
}

func (s *aggSetup) newAccs() []*sql.Aggregator {
	out := make([]*sql.Aggregator, len(s.list))
	for i, f := range s.list {
		out[i] = sql.NewAggregator(f)
	}
	return out
}

// groupKeyString canonicalizes a key tuple.
func groupKeyString(key []relation.Value) string {
	var b strings.Builder
	for i, v := range key {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		k := v.Key()
		b.WriteByte(byte(k.Kind) + '0')
		b.WriteString(k.String())
	}
	return b.String()
}

// groupLocally folds rows into per-group partial accumulators; groupBy
// and aggregate arguments must be vertex-safe expressions.
func (e *Session) groupLocally(c *compiled, setup *aggSetup, t *table, rows [][]relation.Value, outer *sql.Env) (map[string]*groupAcc, []string, error) {
	env := &sql.Env{Binding: sql.Binding(t.index), Parent: outer}
	groups := map[string]*groupAcc{}
	var order []string
	for _, row := range rows {
		env.Row = relation.Tuple(row)
		key := make([]relation.Value, len(c.blk.Sel.GroupBy))
		for i, g := range c.blk.Sel.GroupBy {
			v, err := sql.Eval(g, env, nil)
			if err != nil {
				return nil, nil, err
			}
			key[i] = v
		}
		ks := groupKeyString(key)
		grp := groups[ks]
		if grp == nil || e.DisablePartialAgg {
			// With eager aggregation disabled (ablation), every row ships
			// as its own single-row partial; receivers still merge by key.
			if e.DisablePartialAgg {
				ks = fmt.Sprintf("%s\x00%d", ks, len(order))
			}
			grp = &groupAcc{key: key, rep: row, aggs: setup.newAccs()}
			groups[ks] = grp
			order = append(order, ks)
		}
		for i, f := range setup.list {
			var v relation.Value
			if f.Star {
				v = relation.Int(1)
			} else {
				var err error
				v, err = sql.Eval(f.Args[0], env, nil)
				if err != nil {
					return nil, nil, err
				}
			}
			grp.aggs[i].Observe(v)
		}
	}
	return groups, order, nil
}

// residualRows applies the block's residual predicates to a table's rows.
func (e *Session) residualRows(c *compiled, t *table, outer *sql.Env) ([][]relation.Value, error) {
	if len(c.residual) == 0 {
		return t.rows, nil
	}
	env := &sql.Env{Binding: sql.Binding(t.index), Parent: outer}
	var out [][]relation.Value
	for _, row := range t.rows {
		env.Row = relation.Tuple(row)
		keep := true
		for _, p := range c.residual {
			ok, err := p.eval(env, nil)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

// vertexTable returns the collection value of a survivor vertex.
func (res *componentResult) vertexTable(v bsp.VertexID) *table {
	if res.values == nil {
		return res.run.ownRow(res.rootAlias, v)
	}
	return res.values[v]
}

// finalizeNone handles blocks without aggregation: survivors filter their
// tables vertex-parallel and emit rows; projection happens centrally.
func (e *Session) finalizeNone(c *compiled, res *componentResult, outer *sql.Env, subq sql.SubqueryFn) (*relation.Relation, error) {
	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		t := res.vertexTable(v)
		if t == nil {
			return
		}
		rows, err := e.residualRows(c, t, outer)
		ctx.AddOps(len(t.rows))
		if err != nil {
			ctx.Fail(err)
			return
		}
		if len(rows) > 0 {
			out := newTableShared(t.header, t.index)
			out.rows = rows
			ctx.Emit(out)
		}
	})
	if err := e.runProg(prog, res.survivors); err != nil {
		return nil, err
	}
	var all *table
	for _, em := range e.eng.Emitted() {
		t := em.(*table)
		if all == nil {
			all = newTableShared(t.header, t.index)
		}
		all.rows = append(all.rows, t.rows...)
	}
	if all == nil {
		all = newTable(c.componentHeader(c.qp.Components[0]))
	}
	return e.projectCentral(c, all, outer, subq)
}

// finalizeLocal is the §7 local-aggregation path: survivors pre-aggregate
// their rows and send the partial groups to the attribute vertex of the
// group key, where each group's aggregation completes in parallel with
// all other groups.
func (e *Session) finalizeLocal(c *compiled, res *componentResult, outer *sql.Env, subq sql.SubqueryFn) (*relation.Relation, error) {
	setup := newAggSetup(c.blk)
	attrMerged := map[string]*groupAcc{}
	var attrOrder []string
	var srcHeader []string

	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		switch ctx.Step() {
		case 0:
			t := res.vertexTable(v)
			if t == nil {
				return
			}
			rows, err := e.residualRows(c, t, outer)
			if err != nil {
				ctx.Fail(err)
				return
			}
			groups, order, err := e.groupLocally(c, setup, t, rows, outer)
			if err != nil {
				ctx.Fail(err)
				return
			}
			ctx.AddOps(len(t.rows) + len(order))
			// Partition groups by the attribute vertex of the first key.
			byTarget := map[bsp.VertexID]*partialGroups{}
			var targets []bsp.VertexID
			for _, ks := range order {
				g := groups[ks]
				av, ok := e.TAG.AttrVertexOf(g.key[0])
				if !ok {
					av = e.TAG.Aggregator // NULL or unmaterialized key value
				}
				pg := byTarget[av]
				if pg == nil {
					pg = &partialGroups{header: t.header}
					byTarget[av] = pg
					targets = append(targets, av)
				}
				pg.groups = append(pg.groups, g)
			}
			for _, av := range targets {
				ctx.Send(v, av, byTarget[av]) // folds en route (pgCombiner)
			}
		case 1:
			// Attribute vertices merge the partials of their groups; each
			// vertex handles its own groups independently (LA parallelism).
			// The merged groups ride one emitted partialGroups so the
			// source header reaches every process with the result.
			merged := map[string]*groupAcc{}
			var order []string
			var header []string
			for _, m := range inbox {
				pg := m.Payload.(*partialGroups)
				header = pg.header
				for _, g := range pg.groups {
					ks := groupKeyString(g.key)
					if have := merged[ks]; have != nil {
						for i := range have.aggs {
							have.aggs[i].Merge(g.aggs[i])
						}
					} else {
						merged[ks] = g
						order = append(order, ks)
					}
				}
			}
			ctx.AddOps(len(order))
			if len(order) > 0 {
				out := &partialGroups{header: header, groups: make([]*groupAcc, 0, len(order))}
				for _, ks := range order {
					out.groups = append(out.groups, merged[ks])
				}
				ctx.Emit(out)
			}
		}
	})
	if err := e.runProg(bsp.WithCombiner(prog, pgCombiner{}), res.survivors); err != nil {
		return nil, err
	}
	for _, em := range e.eng.Emitted() {
		pg := em.(*partialGroups)
		srcHeader = pg.header
		for _, g := range pg.groups {
			ks := groupKeyString(g.key)
			attrMerged[ks] = g
			attrOrder = append(attrOrder, ks)
		}
	}
	return e.projectGroups(c, setup, attrMerged, attrOrder, srcHeader, outer, subq)
}

// finalizeGlobal is the §7 global/scalar aggregation path: survivors send
// partial groups to the single global aggregator vertex, which merges
// them sequentially (the bottleneck the paper measures on GA queries).
func (e *Session) finalizeGlobal(c *compiled, res *componentResult, outer *sql.Env, subq sql.SubqueryFn) (*relation.Relation, error) {
	setup := newAggSetup(c.blk)
	merged := map[string]*groupAcc{}
	var order []string
	var srcHeader []string

	// With a partitioned (distributed) graph, partials are first combined
	// at one relay vertex per machine, so only one combined message per
	// machine crosses the network to the global aggregator — the
	// per-machine accumulator combining of Pregel-style engines and the
	// partial-aggregation optimization §7 describes.
	relays := e.partitionRelays()
	relayStep := 0
	partOf := e.Opts.PartitionOf
	if partOf == nil {
		pn := e.Opts.Partitions
		partOf = func(v bsp.VertexID) int {
			if pn <= 1 {
				return 0
			}
			return int(v) % pn
		}
	}
	if len(relays) > 1 {
		relayStep = 1
	}
	mergeInbox := func(ctx *bsp.Context, inbox []bsp.Message, local map[string]*groupAcc, lorder *[]string) {
		for _, m := range inbox {
			pg := m.Payload.(*partialGroups)
			for _, g := range pg.groups {
				ks := groupKeyString(g.key)
				if have := local[ks]; have != nil {
					for i := range have.aggs {
						have.aggs[i].Merge(g.aggs[i])
					}
				} else {
					local[ks] = g
					*lorder = append(*lorder, ks)
				}
			}
			// Combined messages carry already-merged groups; account the
			// pre-combine count so ComputeOps matches an uncombined run.
			ctx.AddOps(pg.logicalGroups())
		}
	}
	relayAcc := make([]map[string]*groupAcc, len(relays))
	relayOrder := make([][]string, len(relays))
	relayOf := map[bsp.VertexID]int{}
	for i, rv := range relays {
		relayAcc[i] = map[string]*groupAcc{}
		relayOf[rv] = i
	}
	prog := bsp.ProgramFunc(func(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
		switch {
		case ctx.Step() == 0:
			t := res.vertexTable(v)
			if t == nil {
				return
			}
			rows, err := e.residualRows(c, t, outer)
			if err != nil {
				ctx.Fail(err)
				return
			}
			groups, gorder, err := e.groupLocally(c, setup, t, rows, outer)
			if err != nil {
				ctx.Fail(err)
				return
			}
			ctx.AddOps(len(t.rows) + len(gorder))
			if len(gorder) == 0 {
				return
			}
			pg := &partialGroups{header: t.header}
			for _, ks := range gorder {
				pg.groups = append(pg.groups, groups[ks])
			}
			if len(relays) > 1 {
				ctx.Send(v, relays[partOf(v)], pg)
			} else {
				ctx.Send(v, e.TAG.Aggregator, pg)
			}
		case ctx.Step() == relayStep && len(relays) > 1:
			// Per-machine relay: combine and forward one message.
			var header []string
			for _, m := range inbox {
				header = m.Payload.(*partialGroups).header
				break
			}
			i := relayOf[v]
			mergeInbox(ctx, inbox, relayAcc[i], &relayOrder[i])
			pg := &partialGroups{header: header}
			for _, ks := range relayOrder[i] {
				pg.groups = append(pg.groups, relayAcc[i][ks])
			}
			if len(pg.groups) > 0 {
				ctx.Send(v, e.TAG.Aggregator, pg)
			}
		case ctx.Step() == relayStep+1:
			// The single aggregator vertex merges everything (the GA
			// bottleneck of §8.3 — now fed at most one message per worker
			// per machine, since aggregator-bound partials fold en route).
			// The merged result rides the emit stream so every process —
			// not just the aggregator vertex's owner — can project it.
			local := map[string]*groupAcc{}
			var lorder []string
			var header []string
			for _, m := range inbox {
				header = m.Payload.(*partialGroups).header
				break
			}
			mergeInbox(ctx, inbox, local, &lorder)
			if len(lorder) > 0 {
				out := &partialGroups{header: header, groups: make([]*groupAcc, 0, len(lorder))}
				for _, ks := range lorder {
					out.groups = append(out.groups, local[ks])
				}
				ctx.Emit(out)
			}
		}
	})
	if err := e.runProg(bsp.WithCombiner(prog, pgCombiner{}), res.survivors); err != nil {
		return nil, err
	}
	for _, em := range e.eng.Emitted() {
		pg := em.(*partialGroups)
		srcHeader = pg.header
		for _, g := range pg.groups {
			ks := groupKeyString(g.key)
			merged[ks] = g
			order = append(order, ks)
		}
	}
	return e.projectGroups(c, setup, merged, order, srcHeader, outer, subq)
}

// projectGroups applies HAVING and the SELECT list to merged groups.
// srcHeader is the header the representative rows were built against.
func (e *Session) projectGroups(c *compiled, setup *aggSetup, groups map[string]*groupAcc, order []string, srcHeader []string, outer *sql.Env, subq sql.SubqueryFn) (*relation.Relation, error) {
	blk := c.blk
	out := relation.New("result", blk.OutputSchema())

	header := srcHeader
	if header == nil {
		if c.qp != nil && len(c.qp.Components) == 1 {
			header = c.componentHeader(c.qp.Components[0])
		} else {
			header = c.canonicalHeader()
		}
	}

	// Incremental maintenance snapshots the pre-projection group state
	// here — before the empty-scalar synthesis below, which is a
	// projection-time artifact, not state.
	if e.capture != nil && !e.capture.done {
		e.capture.record(c, groups, order, header)
	}

	// Scalar aggregation over empty input still yields one row.
	if len(blk.Sel.GroupBy) == 0 && blk.HasAgg && len(order) == 0 {
		g := &groupAcc{rep: make([]relation.Value, len(header)), aggs: setup.newAccs()}
		groups = map[string]*groupAcc{"": g}
		order = []string{""}
	}
	binding := sql.Binding{}
	for i, h := range header {
		binding[h] = i
	}

	for _, ks := range order {
		g := groups[ks]
		rep := g.rep
		if len(rep) < len(header) {
			padded := make([]relation.Value, len(header))
			copy(padded, rep)
			rep = padded
		}
		env := &sql.Env{Binding: binding, Row: rep, Parent: outer,
			Aggs: make([]relation.Value, len(g.aggs))}
		for i, a := range g.aggs {
			env.Aggs[i] = a.Result()
		}
		if setup.having != nil {
			v, err := sql.Eval(setup.having, env, subq)
			if err != nil {
				return nil, err
			}
			if !v.AsBool() {
				continue
			}
		}
		row := make(relation.Tuple, len(setup.items))
		for i, it := range setup.items {
			v, err := sql.Eval(it, env, subq)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.Tuples = append(out.Tuples, row)
	}
	return dedup(out, blk.Sel.Distinct), nil
}

// projectRows is the central grouping/projection used by the assembled
// (non-distributed) path.
func projectRows(blk *sql.Analyzed, binding sql.Binding, rows []relation.Tuple, outer *sql.Env, subq sql.SubqueryFn) (*relation.Relation, error) {
	sel := blk.Sel
	out := relation.New("result", blk.OutputSchema())

	if !blk.HasAgg && len(sel.GroupBy) == 0 {
		env := &sql.Env{Binding: binding, Parent: outer}
		for _, row := range rows {
			env.Row = row
			t := make(relation.Tuple, len(sel.Items))
			for i, item := range sel.Items {
				v, err := sql.Eval(item.Expr, env, subq)
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out.Tuples = append(out.Tuples, t)
		}
		return dedup(out, sel.Distinct), nil
	}

	setup := newAggSetup(blk)
	groups := map[string]*groupAcc{}
	var order []string
	env := &sql.Env{Binding: binding, Parent: outer}
	for _, row := range rows {
		env.Row = row
		key := make([]relation.Value, len(sel.GroupBy))
		for i, g := range sel.GroupBy {
			v, err := sql.Eval(g, env, subq)
			if err != nil {
				return nil, err
			}
			key[i] = v
		}
		ks := groupKeyString(key)
		grp := groups[ks]
		if grp == nil {
			grp = &groupAcc{key: key, rep: row, aggs: setup.newAccs()}
			groups[ks] = grp
			order = append(order, ks)
		}
		for i, f := range setup.list {
			var v relation.Value
			if f.Star {
				v = relation.Int(1)
			} else {
				var err error
				v, err = sql.Eval(f.Args[0], env, subq)
				if err != nil {
					return nil, err
				}
			}
			grp.aggs[i].Observe(v)
		}
	}
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		g := &groupAcc{rep: make([]relation.Value, len(binding)), aggs: setup.newAccs()}
		groups[""] = g
		order = append(order, "")
	}
	for _, ks := range order {
		g := groups[ks]
		genv := &sql.Env{Binding: binding, Row: g.rep, Parent: outer,
			Aggs: make([]relation.Value, len(g.aggs))}
		for i, a := range g.aggs {
			genv.Aggs[i] = a.Result()
		}
		if setup.having != nil {
			v, err := sql.Eval(setup.having, genv, subq)
			if err != nil {
				return nil, err
			}
			if !v.AsBool() {
				continue
			}
		}
		row := make(relation.Tuple, len(setup.items))
		for i, it := range setup.items {
			v, err := sql.Eval(it, genv, subq)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.Tuples = append(out.Tuples, row)
	}
	return dedup(out, sel.Distinct), nil
}

// dedup removes duplicate tuples when DISTINCT is set.
func dedup(r *relation.Relation, enabled bool) *relation.Relation {
	if !enabled {
		return r
	}
	seen := map[string]bool{}
	kept := r.Tuples[:0]
	for _, t := range r.Tuples {
		k := groupKeyString(t)
		if !seen[k] {
			seen[k] = true
			kept = append(kept, t)
		}
	}
	r.Tuples = kept
	return r
}
