package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/tag"
)

// workerFormTimeout bounds the worker's side of cluster formation —
// how long it waits for TOPOLOGY (the coordinator may still be
// building its graph or waiting for other joiners), the mesh, and
// CLUSTERUP.
const workerFormTimeout = 5 * time.Minute

// ctrlMsg is one collective release pushed down the control
// connection; payload excludes the leading kind byte.
type ctrlMsg struct {
	kind    byte
	payload []byte
}

// queryMsg is one dispatched query.
type queryMsg struct {
	id  uint64
	sql string
}

// Worker is one non-coordinator node: it joins a coordinator, builds
// the identical graph, meshes with its peers, and then runs every
// dispatched query through its own full session — computing the same
// answer as every other node, with its partition's share of the data
// exchange on the wire.
type Worker struct {
	conn net.Conn
	wmu  sync.Mutex
	wire wireCounters

	part  int
	parts int
	token string

	g      *tag.Graph
	sess   *core.Session
	m      *mesh
	n      *node
	dataLn net.Listener

	ctrl    chan ctrlMsg
	queries chan queryMsg

	mu    sync.Mutex
	err   error
	clean bool

	done chan struct{}

	// formBR carries the control connection's buffered reader from
	// formation to the reader goroutine.
	formBR *bufio.Reader
}

// Join connects to a coordinator, completes formation (JOIN → WELCOME
// → graph build → TOPOLOGY → mesh → READY → CLUSTERUP), and returns a
// Worker already serving queries in the background. workers is the
// node's local BSP worker count (local parallelism only — it never
// changes answers or accounting).
func Join(coordAddr string, workers int, build GraphBuilder) (*Worker, error) {
	conn, err := net.DialTimeout("tcp", coordAddr, handshakeTimeout)
	if err != nil {
		return nil, err
	}
	w := &Worker{
		conn:    conn,
		ctrl:    make(chan ctrlMsg, 2),
		queries: make(chan queryMsg, 4),
		done:    make(chan struct{}),
	}
	if err := w.form(coordAddr, workers, build); err != nil {
		conn.Close()
		if w.dataLn != nil {
			w.dataLn.Close()
		}
		if w.m != nil {
			w.m.closeAll()
		}
		return nil, err
	}
	br := w.formBR
	w.formBR = nil
	go w.readCtrl(br)
	go w.runLoop()
	return w, nil
}

func (w *Worker) form(coordAddr string, workers int, build GraphBuilder) error {
	// The data listener binds the interface that reaches the
	// coordinator, so the address we advertise is one our peers (on the
	// same network) can dial.
	localHost, _, err := net.SplitHostPort(w.conn.LocalAddr().String())
	if err != nil {
		return err
	}
	dataLn, err := net.Listen("tcp", net.JoinHostPort(localHost, "0"))
	if err != nil {
		return err
	}
	w.dataLn = dataLn

	join := []byte{ckJoin}
	join = codec.AppendString(join, joinMagic)
	join = codec.AppendString(join, dataLn.Addr().String())
	if err := w.send(join); err != nil {
		return fmt.Errorf("dist: joining %s: %w", coordAddr, err)
	}

	br := bufio.NewReader(w.conn)
	payload, err := w.readCtrlFrame(br, handshakeTimeout)
	if err != nil {
		return fmt.Errorf("dist: awaiting welcome: %w", err)
	}
	if len(payload) > 0 && payload[0] == ckRefuse {
		d := codec.NewDecoder(payload[1:])
		reason, _ := d.Str()
		return fmt.Errorf("dist: coordinator refused join: %s", reason)
	}
	if len(payload) == 0 || payload[0] != ckWelcome {
		return fmt.Errorf("dist: expected welcome, got kind %#x", frameKind(payload))
	}
	d := codec.NewDecoder(payload[1:])
	part64, err := d.Uvarint()
	if err != nil {
		return err
	}
	parts64, err := d.Uvarint()
	if err != nil {
		return err
	}
	db, err := d.Str()
	if err != nil {
		return err
	}
	scaleRaw, err := d.Take(8)
	if err != nil {
		return err
	}
	scale := math.Float64frombits(binary.LittleEndian.Uint64(scaleRaw))
	seed, err := d.Varint()
	if err != nil {
		return err
	}
	token, err := d.Str()
	if err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}
	w.part, w.parts, w.token = int(part64), int(parts64), token
	if w.part < 1 || w.part >= w.parts {
		return fmt.Errorf("dist: welcome assigned partition %d of %d", w.part, w.parts)
	}

	accept := newAcceptPeers(dataLn, token, w.part, w.parts)
	g, err := build(db, scale, seed)
	if err != nil {
		return fmt.Errorf("dist: worker graph build: %w", err)
	}
	w.g = g

	payload, err = w.readCtrlFrame(br, workerFormTimeout)
	if err != nil {
		return fmt.Errorf("dist: awaiting topology: %w", err)
	}
	if len(payload) == 0 || payload[0] != ckTopology {
		return fmt.Errorf("dist: expected topology, got kind %#x", frameKind(payload))
	}
	d = codec.NewDecoder(payload[1:])
	n64, err := d.Uvarint()
	if err != nil {
		return err
	}
	if int(n64) != w.parts {
		return fmt.Errorf("dist: topology lists %d nodes, expected %d", n64, w.parts)
	}
	addrs := make([]string, w.parts)
	for i := range addrs {
		if addrs[i], err = d.Str(); err != nil {
			return err
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}
	// The coordinator's entry has an empty host: fill in the host we
	// dialed it at — the one address we know reaches it.
	if host, port, err := net.SplitHostPort(addrs[0]); err == nil && host == "" {
		coordHost, _, err := net.SplitHostPort(w.conn.RemoteAddr().String())
		if err != nil {
			return err
		}
		addrs[0] = net.JoinHostPort(coordHost, port)
	}

	w.m = newMesh(w.part, w.parts, &w.wire)
	for i := 0; i < w.part; i++ {
		pc, err := dialPeer(addrs[i], token, w.part)
		if err != nil {
			return fmt.Errorf("dist: dialing node %d at %s: %w", i, addrs[i], err)
		}
		w.m.attach(i, pc, nil)
	}
	admittedPeers, err := accept.wait(workerFormTimeout)
	if err != nil {
		return err
	}
	for part, ad := range admittedPeers {
		w.m.attach(part, ad.conn, ad.br)
	}
	if err := w.m.seal(); err != nil {
		return err
	}

	if err := w.send([]byte{ckReady}); err != nil {
		return fmt.Errorf("dist: sending ready: %w", err)
	}
	payload, err = w.readCtrlFrame(br, workerFormTimeout)
	if err != nil {
		return fmt.Errorf("dist: awaiting cluster-up: %w", err)
	}
	if len(payload) == 0 || payload[0] != ckClusterUp {
		return fmt.Errorf("dist: expected cluster-up, got kind %#x", frameKind(payload))
	}

	w.n = &node{parts: w.parts, local: w.part, mesh: w.m, coll: workerColl{w}}
	w.sess = core.NewSession(g, bsp.Options{
		Workers:     workers,
		Partitions:  w.parts,
		PartitionOf: partitionOf(w.parts),
		Transport:   w.n,
	})
	w.formBR = br
	return nil
}

func frameKind(payload []byte) byte {
	if len(payload) == 0 {
		return 0
	}
	return payload[0]
}

// Part returns this worker's partition number.
func (w *Worker) Part() int { return w.part }

// Parts returns the topology size.
func (w *Worker) Parts() int { return w.parts }

// Wire returns this node's measured transport traffic.
func (w *Worker) Wire() WireStats { return w.wire.snapshot() }

// Err returns the error that took this worker out of the query plane,
// or nil while healthy (and after a clean shutdown).
func (w *Worker) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.clean {
		return nil
	}
	return w.err
}

// Wait blocks until the worker leaves the query plane — a clean
// SHUTDOWN from the coordinator (returns nil) or a failure (returns
// the cause).
func (w *Worker) Wait() error {
	<-w.done
	return w.Err()
}

// Close forces the worker out: it severs the control connection, which
// unwinds the reader, the query loop, and any in-flight collective.
func (w *Worker) Close() error {
	w.fail(fmt.Errorf("dist: worker closed"))
	w.conn.Close()
	return nil
}

func (w *Worker) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

func (w *Worker) markClean() {
	w.mu.Lock()
	w.clean = true
	w.mu.Unlock()
}

func (w *Worker) lastErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.clean {
		return fmt.Errorf("dist: coordinator shut the cluster down mid-run")
	}
	return fmt.Errorf("dist: control connection closed")
}

func (w *Worker) send(payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if err := codec.WriteFrame(w.conn, payload); err != nil {
		return err
	}
	w.wire.controlBytesOut.Add(int64(codec.HeaderSize + len(payload)))
	return nil
}

func (w *Worker) readCtrlFrame(br *bufio.Reader, timeout time.Duration) ([]byte, error) {
	w.conn.SetReadDeadline(time.Now().Add(timeout))
	payload, n, err := codec.ReadFrame(br)
	if err != nil {
		return nil, err
	}
	w.conn.SetReadDeadline(time.Time{})
	w.wire.controlBytesIn.Add(n)
	return payload, nil
}

// readCtrl owns all post-formation reads of the control connection. It
// routes query dispatches to the run loop and collective releases to
// whatever collective call is blocked, and it is the single closer of
// both channels — on SHUTDOWN (clean) or any read error (failure),
// closing them unwinds the run loop and any blocked collective.
func (w *Worker) readCtrl(br *bufio.Reader) {
	defer func() {
		close(w.ctrl)
		close(w.queries)
	}()
	for {
		payload, n, err := codec.ReadFrame(br)
		if err != nil {
			w.fail(fmt.Errorf("dist: control connection: %w", err))
			return
		}
		w.wire.controlBytesIn.Add(n)
		if len(payload) == 0 {
			w.fail(fmt.Errorf("dist: empty control frame"))
			return
		}
		switch payload[0] {
		case ckQuery:
			d := codec.NewDecoder(payload[1:])
			qid, err := d.Uvarint()
			var sql string
			if err == nil {
				sql, err = d.Str()
			}
			if err == nil {
				err = d.Finish()
			}
			if err != nil {
				w.fail(fmt.Errorf("dist: query dispatch frame: %w", err))
				return
			}
			w.queries <- queryMsg{id: qid, sql: sql}
		case ckStartRun, ckBarrier, ckFinishRun:
			w.ctrl <- ctrlMsg{kind: payload[0], payload: payload[1:]}
		case ckShutdown:
			w.markClean()
			return
		default:
			w.fail(fmt.Errorf("dist: unknown control kind %#x", payload[0]))
			return
		}
	}
}

// runLoop executes dispatched queries in order. Every node runs the
// same orchestration on the same graph, so this worker's answer (and
// its error, if any) matches the coordinator's; QUERYDONE reports the
// error string so the coordinator can verify SPMD agreement.
func (w *Worker) runLoop() {
	for q := range w.queries {
		_, qerr := w.sess.Query(q.sql)
		if derr := w.sess.DistErr(); derr != nil {
			// Transport failure: the engine is permanently latched, so
			// this node can never serve another distributed query.
			w.fail(derr)
			break
		}
		errstr := ""
		if qerr != nil {
			errstr = qerr.Error()
		}
		done := []byte{ckQueryDone}
		done = binary.AppendUvarint(done, q.id)
		done = codec.AppendString(done, errstr)
		if err := w.send(done); err != nil {
			w.fail(fmt.Errorf("dist: reporting query done: %w", err))
			break
		}
	}
	w.conn.Close()
	w.m.closeAll()
	w.dataLn.Close()
	close(w.done)
}

// awaitCtrl blocks for the next collective release and checks its
// kind; a mismatch means the node desynced from the topology, which is
// unrecoverable.
func (w *Worker) awaitCtrl(want byte) (ctrlMsg, error) {
	m, ok := <-w.ctrl
	if !ok {
		return ctrlMsg{}, w.lastErr()
	}
	if m.kind != want {
		err := fmt.Errorf("dist: collective desync: awaited %#x, released %#x", want, m.kind)
		w.fail(err)
		w.conn.Close()
		return ctrlMsg{}, err
	}
	return m, nil
}

// workerColl implements the collectives over the control connection:
// send the local contribution, block for the coordinator's release.
type workerColl struct{ w *Worker }

func (wc workerColl) startRun() error {
	if err := wc.w.send([]byte{ckStartRun}); err != nil {
		return err
	}
	_, err := wc.w.awaitCtrl(ckStartRun)
	return err
}

func (wc workerColl) barrier(bf bsp.BarrierFrame) (bsp.BarrierFrame, error) {
	// appendBarrierFrame copies every value out of the engine's reused
	// Aggs scratch map, so no snapshot is needed here.
	if err := wc.w.send(appendBarrierFrame([]byte{ckBarrier}, bf)); err != nil {
		return bsp.BarrierFrame{}, err
	}
	m, err := wc.w.awaitCtrl(ckBarrier)
	if err != nil {
		return bsp.BarrierFrame{}, err
	}
	d := codec.NewDecoder(m.payload)
	gb, err := decodeBarrierFrame(d)
	if err == nil {
		err = d.Finish()
	}
	if err != nil {
		err = fmt.Errorf("dist: barrier release frame: %w", err)
		wc.w.fail(err)
		wc.w.conn.Close()
		return bsp.BarrierFrame{}, err
	}
	return gb, nil
}

func (wc workerColl) finishRun(blob []byte) ([][]byte, error) {
	if err := wc.w.send(append([]byte{ckFinishRun}, blob...)); err != nil {
		return nil, err
	}
	m, err := wc.w.awaitCtrl(ckFinishRun)
	if err != nil {
		return nil, err
	}
	d := codec.NewDecoder(m.payload)
	n, err := d.Length()
	if err != nil {
		return nil, err
	}
	if n != wc.w.parts {
		return nil, fmt.Errorf("dist: finish-run release carries %d blobs, expected %d", n, wc.w.parts)
	}
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		ln, err := d.Length()
		if err != nil {
			return nil, err
		}
		if out[i], err = d.Take(ln); err != nil {
			return nil, err
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}
