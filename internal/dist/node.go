package dist

import (
	"repro/internal/bsp"
)

// collectives is the control-plane side of a node's Transport: the
// StartRun rendezvous, the per-superstep barrier reduce-broadcast and
// the end-of-run emit allgather. The coordinator's node talks to the
// hub in-process; a worker's node talks to the coordinator over its
// control connection. Both resolve to the same bsp.ReduceBarrier
// reduction on the coordinator, so "globally agreed" means one thing.
type collectives interface {
	startRun() error
	barrier(bf bsp.BarrierFrame) (bsp.BarrierFrame, error)
	finishRun(blob []byte) ([][]byte, error)
}

// node implements bsp.Transport for one member of a topology: data
// frames ride the mesh, control collectives ride the coordinator star.
type node struct {
	parts int
	local int
	mesh  *mesh
	coll  collectives
}

var _ bsp.Transport = (*node)(nil)

func (n *node) Parts() int { return n.parts }
func (n *node) Local() int { return n.local }

func (n *node) StartRun() error { return n.coll.startRun() }

func (n *node) Exchange(step int, out []bsp.Frame) ([]bsp.Frame, error) {
	return n.mesh.exchange(out)
}

func (n *node) Barrier(bf bsp.BarrierFrame) (bsp.BarrierFrame, error) {
	return n.coll.barrier(bf)
}

func (n *node) FinishRun(emits []byte) ([][]byte, error) {
	return n.coll.finishRun(emits)
}
