package dist

import (
	"fmt"
	"sync"

	"repro/internal/bsp"
)

// hub is the coordinator's collective state machine. Every collective
// round (StartRun, Barrier, FinishRun, QueryDone) gathers one deposit
// per partition — the coordinator's own node deposits in-process, the
// workers' deposits arrive from their control-connection readers — and
// the last depositor computes the reduction and releases everyone:
// workers by a pushed control frame, the local node by a cond wake.
// SPMD lockstep guarantees rounds never overlap, so one reusable set
// of slots suffices; a deposit for a different kind than the round in
// progress is a protocol violation and degrades the topology.
type hub struct {
	parts int

	mu   sync.Mutex
	cond *sync.Cond
	gen  uint64
	kind byte
	n    int
	err  error

	bfs   []bsp.BarrierFrame
	blobs [][]byte
	strs  []string
	gb    bsp.BarrierFrame
	out   [][]byte

	// broadcast pushes the completed round's release to every worker;
	// called by the last depositor with mu held (worker readers always
	// drain, so the writes cannot deadlock). Nil-safe for parts == 1.
	broadcast func(kind byte) error
	// onFail tears the topology down (closes connections); invoked at
	// most once, outside mu.
	onFail   func()
	failOnce sync.Once
}

func newHub(parts int) *hub {
	h := &hub{
		parts: parts,
		bfs:   make([]bsp.BarrierFrame, parts),
		blobs: make([][]byte, parts),
		strs:  make([]string, parts),
	}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// fail permanently degrades the hub: every blocked and future
// collective returns err, and the teardown hook runs once.
func (h *hub) fail(err error) {
	h.mu.Lock()
	if h.err == nil {
		h.err = err
	}
	h.cond.Broadcast()
	h.mu.Unlock()
	h.failOnce.Do(func() {
		if h.onFail != nil {
			h.onFail()
		}
	})
}

// sticky returns the degradation error, if any.
func (h *hub) sticky() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.err
}

// deposit records one partition's contribution to the current round
// and, when it is the last, reduces and releases. It never blocks on
// the round (worker readers must stay free to read); the local node
// uses await to both deposit and wait.
func (h *hub) deposit(part int, kind byte, bf *bsp.BarrierFrame, blob []byte, str string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.depositLocked(part, kind, bf, blob, str)
}

func (h *hub) depositLocked(part int, kind byte, bf *bsp.BarrierFrame, blob []byte, str string) error {
	if h.err != nil {
		return h.err
	}
	if h.n == 0 {
		h.kind = kind
	} else if kind != h.kind {
		err := fmt.Errorf("dist: node %d deposited %#x into a %#x round — topology out of lockstep", part, kind, h.kind)
		h.failLocked(err)
		return err
	}
	switch kind {
	case ckBarrier:
		h.bfs[part] = *bf
	case ckFinishRun:
		h.blobs[part] = blob
	case ckQueryDone:
		h.strs[part] = str
	}
	h.n++
	if h.n == h.parts {
		switch kind {
		case ckBarrier:
			h.gb = bsp.ReduceBarrier(h.bfs)
		case ckFinishRun:
			h.out = append([][]byte(nil), h.blobs...)
		}
		if h.broadcast != nil && kind != ckQueryDone {
			if err := h.broadcast(kind); err != nil {
				h.failLocked(err)
				return h.err
			}
		}
		h.n = 0
		h.gen++
		h.cond.Broadcast()
	}
	return nil
}

// failLocked mirrors fail for callers already holding mu; the teardown
// hook still runs outside the lock (on a fresh goroutine, since the
// caller keeps holding it).
func (h *hub) failLocked(err error) {
	if h.err == nil {
		h.err = err
	}
	h.cond.Broadcast()
	go h.failOnce.Do(func() {
		if h.onFail != nil {
			h.onFail()
		}
	})
}

// await is the local node's collective call: deposit partition 0's
// contribution and block until the round completes, then return the
// reduction. Worker deposits arriving from connection readers complete
// the round without blocking anyone.
func (h *hub) await(kind byte, bf *bsp.BarrierFrame, blob []byte, str string) (bsp.BarrierFrame, [][]byte, []string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	gen := h.gen
	if err := h.depositLocked(0, kind, bf, blob, str); err != nil {
		return bsp.BarrierFrame{}, nil, nil, err
	}
	for gen == h.gen && h.err == nil {
		h.cond.Wait()
	}
	if h.err != nil {
		return bsp.BarrierFrame{}, nil, nil, h.err
	}
	strs := append([]string(nil), h.strs...)
	return h.gb, h.out, strs, nil
}

// coordColl adapts the hub to the collectives interface for the
// coordinator's own node (partition 0).
type coordColl struct{ h *hub }

func (c coordColl) startRun() error {
	_, _, _, err := c.h.await(ckStartRun, nil, nil, "")
	return err
}

func (c coordColl) barrier(bf bsp.BarrierFrame) (bsp.BarrierFrame, error) {
	// The engine reuses its aggregator scratch map across barriers;
	// snapshot it before parking the frame in a shared slot.
	if bf.Aggs != nil {
		aggs := make(map[string]int64, len(bf.Aggs))
		for k, v := range bf.Aggs {
			aggs[k] = v
		}
		bf.Aggs = aggs
	}
	gb, _, _, err := c.h.await(ckBarrier, &bf, nil, "")
	return gb, err
}

func (c coordColl) finishRun(blob []byte) ([][]byte, error) {
	_, blobs, _, err := c.h.await(ckFinishRun, nil, blob, "")
	return blobs, err
}
