// Package dist runs the TAG-join engine as a real multi-process
// cluster: coordinator and worker roles over persistent TCP, speaking
// codec-framed messages, with each node owning one hash-partition of
// the graph and executing the same SPMD query orchestration.
//
// The design splits traffic onto two planes:
//
//   - The control star: every worker holds one TCP connection to the
//     coordinator. It carries the topology handshake (JOIN → WELCOME →
//     TOPOLOGY → READY → CLUSTERUP), query dispatch, and the run
//     collectives — StartRun rendezvous, per-superstep barrier
//     reduce-broadcast (bsp.ReduceBarrier, the same reduction the
//     in-memory test transport uses), and the end-of-run emit
//     allgather.
//
//   - The data mesh: one TCP connection per unordered node pair (the
//     higher-numbered node dials), carrying exactly one sealed records
//     frame per ordered pair per superstep — the frames internal/bsp's
//     exchange seam builds. Because each mesh connection joins a fixed
//     pair, source and destination are implicit and the wire carries
//     the frame verbatim: codec header + payload, nothing else. That
//     is precisely what the loopback simulation prices, so measured
//     data-plane bytes equal the simulated Stats.NetworkBytes exactly
//     — by construction, not calibration.
//
// Every node (the coordinator included — it owns partition 0) builds
// the identical catalog and TAG graph from the shared (db, scale,
// seed) configuration and runs the full core.Session orchestration for
// every query. All cross-phase state flows through the engine's
// barrier and emit collectives, so each node independently computes
// the byte-identical answer; the coordinator returns its copy to the
// client.
//
// Failure model: fail-stop, no rejoin. Any node death or transport
// error degrades the whole topology — the coordinator closes every
// connection, in-flight queries fail with the transport error, and
// every later query is refused with ErrDegraded (the serving layer
// maps it to 503). Remaining worker processes stay alive (their health
// endpoints keep answering) but leave the query plane. Restarting the
// topology is the recovery path.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/tag"
)

// ErrDegraded is the permanent refusal of a topology that lost a node:
// a worker died or a connection failed, the coordinator tore the
// cluster down, and every query since is refused without touching the
// engine. There is no rejoin; restart the topology to recover.
var ErrDegraded = errors.New("dist: cluster degraded, a node failed")

// GraphBuilder constructs the node's share of the world: the catalog
// and frozen TAG graph for the agreed (db, scale, seed). Every node
// must build the identical graph — the generators are deterministic,
// so agreeing on the triple is agreeing on the data. In-process tests
// (and the coordinator, which usually already built the graph for
// serving) return a pre-built shared graph.
type GraphBuilder func(db string, scale float64, seed int64) (*tag.Graph, error)

// Config fixes one topology.
type Config struct {
	// Parts is the total partition count — coordinator plus joined
	// workers. Parts=1 is a single-node "cluster": no sockets carry
	// data, but queries run through the same distributed code path.
	Parts int
	// DB, Scale, Seed name the dataset every node generates and
	// encodes. The coordinator sends them to joining workers in
	// WELCOME.
	DB    string
	Scale float64
	Seed  int64
	// Workers is the BSP worker count of each node's local engine
	// (defaults to 1). Nodes may disagree — worker counts change only
	// local parallelism, never the answer or the accounting.
	Workers int
	// FormTimeout bounds cluster formation: how long the coordinator
	// waits for all workers to join, mesh and report ready. Defaults
	// to 2 minutes.
	FormTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Parts <= 0 {
		c.Parts = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.FormTimeout <= 0 {
		c.FormTimeout = 2 * time.Minute
	}
	return c
}

// partitionOf is the cluster's one partition function: hash a vertex
// to its owning node. Identical on every node (and to the simulated
// cluster's), so the frames a real node seals are the frames the
// simulation prices.
func partitionOf(parts int) func(bsp.VertexID) int {
	return func(v bsp.VertexID) int { return int(v) % parts }
}

// WireStats is one node's measured transport traffic, codec frame
// headers included. Data-plane counters cover the mesh (the sealed
// per-superstep records frames — the traffic Stats.NetworkBytes and
// Stats.NetworkMessages model); control counters cover the coordinator
// star (handshake, barriers, emit allgather, dispatch), which the
// paper's network-cost model does not price. Summing DataBytesOut
// (resp. DataRecordsOut) across all nodes of a topology yields
// exactly the run's Stats.NetworkBytes (resp. NetworkMessages).
type WireStats struct {
	DataBytesOut    int64
	DataBytesIn     int64
	DataFramesOut   int64
	DataFramesIn    int64
	DataRecordsOut  int64
	ControlBytesOut int64
	ControlBytesIn  int64
}

// wireCounters is the atomic backing store of a node's WireStats.
type wireCounters struct {
	dataBytesOut    atomic.Int64
	dataBytesIn     atomic.Int64
	dataFramesOut   atomic.Int64
	dataFramesIn    atomic.Int64
	dataRecordsOut  atomic.Int64
	controlBytesOut atomic.Int64
	controlBytesIn  atomic.Int64
}

func (w *wireCounters) snapshot() WireStats {
	return WireStats{
		DataBytesOut:    w.dataBytesOut.Load(),
		DataBytesIn:     w.dataBytesIn.Load(),
		DataFramesOut:   w.dataFramesOut.Load(),
		DataFramesIn:    w.dataFramesIn.Load(),
		DataRecordsOut:  w.dataRecordsOut.Load(),
		ControlBytesOut: w.controlBytesOut.Load(),
		ControlBytesIn:  w.controlBytesIn.Load(),
	}
}

// Control-plane message kinds: the first payload byte of every frame
// on a control or mesh connection. Any other leading byte — or any
// frame failing the codec CRC — is a protocol violation: handshake
// connections are refused and closed, admitted connections degrade the
// topology (a peer that desyncs cannot be trusted to stay in
// lockstep).
const (
	ckJoin      = 0x01 // worker → coordinator: magic, data-mesh addr
	ckWelcome   = 0x02 // coordinator → worker: part, parts, db/scale/seed, token
	ckTopology  = 0x03 // coordinator → worker: every node's data-mesh addr
	ckReady     = 0x04 // worker → coordinator: mesh complete
	ckClusterUp = 0x05 // coordinator → worker: all nodes ready, serve queries
	ckPeer      = 0x06 // mesh dial handshake: token, dialer's part
	ckQuery     = 0x10 // coordinator → worker: qid, SQL text
	ckStartRun  = 0x11 // both ways: StartRun rendezvous
	ckBarrier   = 0x12 // worker → coordinator: local frame; back: global
	ckFinishRun = 0x13 // worker → coordinator: emit blob; back: all blobs
	ckQueryDone = 0x14 // worker → coordinator: qid, error string
	ckShutdown  = 0x1e // coordinator → worker: clean stop
	ckRefuse    = 0x1f // coordinator → joiner: refusal, reason string
)

// joinMagic leads every JOIN frame; anything else on a fresh control
// connection is refused.
const joinMagic = "tagdist1"

// handshakeTimeout bounds each synchronous read of the join/mesh
// handshakes, so a hostile connection that sends half a frame cannot
// pin an accept loop.
const handshakeTimeout = 10 * time.Second

// appendBarrierFrame serializes a bsp.BarrierFrame (deterministically:
// aggregator keys sorted) after the leading kind byte. Encoding copies
// every value out, so the engine's reused Aggs scratch map needs no
// separate snapshot.
func appendBarrierFrame(dst []byte, bf bsp.BarrierFrame) []byte {
	dst = binary.AppendVarint(dst, int64(bf.Step))
	dst = binary.AppendVarint(dst, bf.Active)
	if bf.Abort {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = codec.AppendString(dst, bf.Fail)
	keys := make([]string, 0, len(bf.Aggs))
	for k := range bf.Aggs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = codec.AppendString(dst, k)
		dst = binary.AppendVarint(dst, bf.Aggs[k])
	}
	return appendStats(dst, bf.Stats)
}

func decodeBarrierFrame(d *codec.Decoder) (bsp.BarrierFrame, error) {
	var bf bsp.BarrierFrame
	step, err := d.Varint()
	if err != nil {
		return bf, err
	}
	if step < math.MinInt32 || step > math.MaxInt32 {
		return bf, fmt.Errorf("dist: barrier step %d out of range", step)
	}
	bf.Step = int(step)
	if bf.Active, err = d.Varint(); err != nil {
		return bf, err
	}
	ab, err := d.Byte()
	if err != nil {
		return bf, err
	}
	bf.Abort = ab != 0
	if bf.Fail, err = d.Str(); err != nil {
		return bf, err
	}
	n, err := d.Length()
	if err != nil {
		return bf, err
	}
	if n > 0 {
		bf.Aggs = make(map[string]int64, codec.CapHint(n))
		for i := 0; i < n; i++ {
			k, err := d.Str()
			if err != nil {
				return bf, err
			}
			v, err := d.Varint()
			if err != nil {
				return bf, err
			}
			bf.Aggs[k] = v
		}
	}
	bf.Stats, err = decodeStats(d)
	return bf, err
}

func appendStats(dst []byte, st bsp.Stats) []byte {
	dst = binary.AppendVarint(dst, int64(st.Supersteps))
	dst = binary.AppendVarint(dst, st.Messages)
	dst = binary.AppendVarint(dst, st.MessageBytes)
	dst = binary.AppendVarint(dst, st.NetworkMessages)
	dst = binary.AppendVarint(dst, st.NetworkBytes)
	dst = binary.AppendVarint(dst, st.ComputeOps)
	dst = binary.AppendVarint(dst, st.ActiveVisits)
	dst = binary.AppendVarint(dst, st.MessagesCombined)
	dst = binary.AppendVarint(dst, st.InboxBytesSaved)
	return binary.AppendVarint(dst, st.CombineFallbacks)
}

func decodeStats(d *codec.Decoder) (bsp.Stats, error) {
	var st bsp.Stats
	for _, f := range []*int64{
		nil, // Supersteps, handled below (int, not int64)
		&st.Messages, &st.MessageBytes, &st.NetworkMessages,
		&st.NetworkBytes, &st.ComputeOps, &st.ActiveVisits,
		&st.MessagesCombined, &st.InboxBytesSaved, &st.CombineFallbacks,
	} {
		v, err := d.Varint()
		if err != nil {
			return st, err
		}
		if f == nil {
			st.Supersteps = int(v)
		} else {
			*f = v
		}
	}
	return st, nil
}
