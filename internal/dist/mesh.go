package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bsp"
	"repro/internal/codec"
)

// This file is the data mesh: one persistent TCP connection per
// unordered node pair (the higher-numbered node dials the lower), each
// direction carrying exactly one codec frame per superstep — the
// sealed records frame internal/bsp built for that ordered pair.
// Nothing else rides these connections, so source and destination are
// implicit in the pair, and the bytes a node writes are exactly the
// bytes the engine priced: codec.HeaderSize + len(payload) per frame.

// peer is one mesh connection as seen from the local node.
type peer struct {
	part int
	conn net.Conn
	br   *bufio.Reader

	// ch receives incoming frame payloads from the reader goroutine;
	// it is closed (after recording err) when the connection dies. The
	// lockstep protocol keeps at most one frame in flight per
	// direction, so a small buffer never blocks the reader.
	ch chan []byte

	mu  sync.Mutex
	err error
}

func (p *peer) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *peer) lastErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		return fmt.Errorf("dist: mesh connection to node %d closed", p.part)
	}
	return p.err
}

// readLoop pumps incoming frames into p.ch until the connection dies.
func (p *peer) readLoop(wire *wireCounters) {
	for {
		payload, n, err := codec.ReadFrame(p.br)
		if err != nil {
			p.fail(fmt.Errorf("dist: mesh read from node %d: %w", p.part, err))
			close(p.ch)
			return
		}
		wire.dataBytesIn.Add(n)
		wire.dataFramesIn.Add(1)
		p.ch <- payload
	}
}

// mesh is a node's full set of peer connections, ordered by partition.
type mesh struct {
	local int
	parts int
	peers []*peer // ascending part, local excluded; empty at parts == 1
	wire  *wireCounters
}

func newMesh(local, parts int, wire *wireCounters) *mesh {
	return &mesh{local: local, parts: parts, wire: wire}
}

// attach registers an established, validated peer connection and
// starts its reader. br carries any bytes the handshake's buffered
// reader already consumed from the connection; nil on the dialing
// side, which hands over the raw connection.
func (m *mesh) attach(part int, conn net.Conn, br *bufio.Reader) {
	if br == nil {
		br = bufio.NewReader(conn)
	}
	p := &peer{part: part, conn: conn, br: br, ch: make(chan []byte, 4)}
	m.peers = append(m.peers, p)
	go p.readLoop(m.wire)
}

// seal sorts the peers into ascending-partition order (the delivery
// order exchange returns) and verifies the mesh is complete.
func (m *mesh) seal() error {
	if len(m.peers) != m.parts-1 {
		return fmt.Errorf("dist: node %d meshed %d of %d peers", m.local, len(m.peers), m.parts-1)
	}
	for i := 1; i < len(m.peers); i++ {
		for j := i; j > 0 && m.peers[j-1].part > m.peers[j].part; j-- {
			m.peers[j-1], m.peers[j] = m.peers[j], m.peers[j-1]
		}
	}
	return nil
}

func (m *mesh) peerFor(part int) *peer {
	for _, p := range m.peers {
		if p.part == part {
			return p
		}
	}
	return nil
}

// exchange implements the Transport exchange over the mesh: write this
// node's sealed frame to each peer, then collect each peer's frame,
// returning them in ascending source-partition order — the same
// deterministic delivery order the in-memory transport (and the
// loopback merge) uses.
func (m *mesh) exchange(out []bsp.Frame) ([]bsp.Frame, error) {
	for i := range out {
		f := &out[i]
		p := m.peerFor(f.Dst)
		if p == nil {
			return nil, fmt.Errorf("dist: sealed frame for unknown partition %d", f.Dst)
		}
		if err := codec.WriteFrame(p.conn, f.Payload); err != nil {
			return nil, fmt.Errorf("dist: mesh write to node %d: %w", p.part, err)
		}
		m.wire.dataBytesOut.Add(int64(codec.HeaderSize + len(f.Payload)))
		m.wire.dataFramesOut.Add(1)
		if n := bsp.FrameRecordCount(f.Payload); n >= 0 {
			m.wire.dataRecordsOut.Add(n)
		}
	}
	in := make([]bsp.Frame, 0, len(m.peers))
	for _, p := range m.peers {
		payload, ok := <-p.ch
		if !ok {
			return nil, p.lastErr()
		}
		in = append(in, bsp.Frame{Src: p.part, Dst: m.local, Payload: payload})
	}
	return in, nil
}

func (m *mesh) closeAll() {
	for _, p := range m.peers {
		p.conn.Close()
	}
}

// dialPeer opens this node's half of one pair connection: dial the
// lower-numbered node's data address and present the cluster token and
// our partition.
func dialPeer(addr, token string, from int) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, err
	}
	hello := append([]byte{ckPeer}, codec.AppendString(nil, token)...)
	hello = binary.AppendUvarint(hello, uint64(from))
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	if err := codec.WriteFrame(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	return conn, nil
}

// admitted is one validated inbound pair connection, carrying the
// handshake's buffered reader so no early bytes are lost.
type admitted struct {
	conn net.Conn
	br   *bufio.Reader
}

// acceptPeers owns a node's data listener: it validates every incoming
// connection's PEER handshake (cluster token, dialer partition in
// (local, parts), no duplicates) and collects admitted pairs. Invalid
// or hostile connections — garbage bytes, a wrong token, a replayed
// partition — are closed without any effect on the mesh, and the loop
// keeps accepting, so fuzzing the data port can never wedge a barrier.
// The loop exits when the listener closes.
type acceptPeers struct {
	ln    net.Listener
	token string
	local int
	parts int

	mu   sync.Mutex
	seen map[int]admitted
	done chan struct{} // closed once every expected dialer arrived
}

func newAcceptPeers(ln net.Listener, token string, local, parts int) *acceptPeers {
	a := &acceptPeers{
		ln: ln, token: token, local: local, parts: parts,
		seen: make(map[int]admitted),
		done: make(chan struct{}),
	}
	if parts-1-local == 0 {
		close(a.done) // highest-numbered node: nobody dials us
	}
	go a.loop()
	return a
}

func (a *acceptPeers) loop() {
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go a.admit(conn)
	}
}

func (a *acceptPeers) admit(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	br := bufio.NewReader(conn)
	payload, _, err := codec.ReadFrame(br)
	if err != nil || len(payload) == 0 || payload[0] != ckPeer {
		conn.Close()
		return
	}
	d := codec.NewDecoder(payload[1:])
	token, err := d.Str()
	if err != nil || token != a.token {
		conn.Close()
		return
	}
	from64, err := d.Uvarint()
	if err != nil || d.Finish() != nil {
		conn.Close()
		return
	}
	from := int(from64)
	// Only higher-numbered nodes dial us, each exactly once.
	if from <= a.local || from >= a.parts {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	a.mu.Lock()
	if _, dup := a.seen[from]; dup {
		a.mu.Unlock()
		conn.Close()
		return
	}
	a.seen[from] = admitted{conn: conn, br: br}
	if len(a.seen) == a.parts-1-a.local {
		close(a.done)
	}
	a.mu.Unlock()
}

// wait blocks until every expected dialer has been admitted (or the
// timeout passes) and returns the admitted connections keyed by their
// partition.
func (a *acceptPeers) wait(timeout time.Duration) (map[int]admitted, error) {
	select {
	case <-a.done:
	case <-time.After(timeout):
		a.mu.Lock()
		n := len(a.seen)
		a.mu.Unlock()
		return nil, fmt.Errorf("dist: node %d: mesh formation timed out (%d of %d dialers arrived)",
			a.local, n, a.parts-1-a.local)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]admitted, len(a.seen))
	for k, v := range a.seen {
		out[k] = v
	}
	return out, nil
}
