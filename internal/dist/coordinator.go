package dist

import (
	"bufio"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
)

// Result is one distributed query's answer as the coordinator returns
// it: the rows its own node computed (byte-identical to every other
// node's copy), the execution report, and the query's globally agreed
// BSP cost.
type Result struct {
	Rows *relation.Relation
	Info core.ExecInfo
	Cost bsp.Stats
}

// workerLink is the coordinator's end of one worker's control
// connection.
type workerLink struct {
	part     int
	conn     net.Conn
	dataAddr string
	wmu      sync.Mutex
}

// Coordinator owns partition 0 of a topology and the control star:
// it admits workers, distributes the topology, drives the collective
// rounds through its hub, and runs every query on its own node too.
type Coordinator struct {
	cfg   Config
	build GraphBuilder
	token string

	ctrlLn net.Listener
	dataLn net.Listener
	accept *acceptPeers
	hub    *hub
	wire   wireCounters

	mu      sync.Mutex
	workers []*workerLink // index by part; [0] unused
	joined  int
	joinCh  chan struct{} // closed when the last worker joins
	readyCh chan struct{} // one send per worker READY

	g    *tag.Graph
	sess *core.Session
	n    *node

	formed  chan struct{} // closed when formation finishes (ok or not)
	formErr error         // valid after formed closes
	down    chan struct{} // closed by teardown
	downOne sync.Once

	qmu    sync.Mutex
	curQID atomic.Uint64
}

// Listen starts a coordinator: the control listener binds addr, the
// data-mesh listener binds an ephemeral port on the same host, and
// formation (graph build, worker admission, mesh, CLUSTERUP) proceeds
// in the background — WaitReady blocks until it completes. The builder
// runs once, concurrently with worker admission.
func Listen(addr string, cfg Config, build GraphBuilder) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ctrlLn, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	host, _, err := net.SplitHostPort(ctrlLn.Addr().String())
	if err != nil {
		ctrlLn.Close()
		return nil, err
	}
	dataLn, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		ctrlLn.Close()
		return nil, err
	}
	var tok [16]byte
	if _, err := rand.Read(tok[:]); err != nil {
		ctrlLn.Close()
		dataLn.Close()
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		build:   build,
		token:   hex.EncodeToString(tok[:]),
		ctrlLn:  ctrlLn,
		dataLn:  dataLn,
		hub:     newHub(cfg.Parts),
		workers: make([]*workerLink, cfg.Parts),
		joinCh:  make(chan struct{}),
		readyCh: make(chan struct{}, cfg.Parts),
		formed:  make(chan struct{}),
		down:    make(chan struct{}),
	}
	c.hub.broadcast = c.release
	c.hub.onFail = c.teardown
	c.accept = newAcceptPeers(dataLn, c.token, 0, cfg.Parts)
	if cfg.Parts == 1 {
		close(c.joinCh)
	}
	go c.ctrlAccept()
	go c.form()
	return c, nil
}

// Addr returns the control listener's address — what workers join.
func (c *Coordinator) Addr() string { return c.ctrlLn.Addr().String() }

// Parts returns the topology size (coordinator included).
func (c *Coordinator) Parts() int { return c.cfg.Parts }

// Wire returns this node's measured transport traffic.
func (c *Coordinator) Wire() WireStats { return c.wire.snapshot() }

// Degraded reports whether the topology has failed permanently.
func (c *Coordinator) Degraded() bool { return c.hub.sticky() != nil }

// WaitReady blocks until the topology is formed (every worker joined,
// meshed and acknowledged) and the coordinator's session exists.
func (c *Coordinator) WaitReady() error {
	<-c.formed
	if c.formErr != nil {
		return c.formErr
	}
	return c.hub.sticky()
}

// ctrlAccept admits control connections for the lifetime of the
// coordinator. Hostile or malformed connections are refused and
// closed without touching cluster state; JOINs past capacity (or
// after degradation) get an explicit refusal frame. The barrier plane
// is driven only by admitted workers, so no amount of fuzzing this
// port can wedge it.
func (c *Coordinator) ctrlAccept() {
	for {
		conn, err := c.ctrlLn.Accept()
		if err != nil {
			return
		}
		go c.admitCtrl(conn)
	}
}

func (c *Coordinator) admitCtrl(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	br := bufio.NewReader(conn)
	payload, _, err := codec.ReadFrame(br)
	if err != nil || len(payload) == 0 || payload[0] != ckJoin {
		conn.Close()
		return
	}
	d := codec.NewDecoder(payload[1:])
	magic, err := d.Str()
	if err != nil || magic != joinMagic {
		conn.Close()
		return
	}
	dataAddr, err := d.Str()
	if err != nil || d.Finish() != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	c.mu.Lock()
	if c.hub.sticky() != nil || c.joined >= c.cfg.Parts-1 {
		c.mu.Unlock()
		c.refuse(conn, "cluster full or degraded")
		return
	}
	c.joined++
	part := c.joined
	l := &workerLink{part: part, conn: conn, dataAddr: dataAddr}
	c.workers[part] = l
	last := c.joined == c.cfg.Parts-1
	c.mu.Unlock()

	welcome := []byte{ckWelcome}
	welcome = binary.AppendUvarint(welcome, uint64(part))
	welcome = binary.AppendUvarint(welcome, uint64(c.cfg.Parts))
	welcome = codec.AppendString(welcome, c.cfg.DB)
	welcome = binary.LittleEndian.AppendUint64(welcome, math.Float64bits(c.cfg.Scale))
	welcome = binary.AppendVarint(welcome, c.cfg.Seed)
	welcome = codec.AppendString(welcome, c.token)
	if err := c.send(l, welcome); err != nil {
		c.hub.fail(fmt.Errorf("dist: welcoming worker %d: %w", part, err))
		return
	}
	go c.readWorker(l, br)
	if last {
		close(c.joinCh)
	}
}

func (c *Coordinator) refuse(conn net.Conn, reason string) {
	payload := codec.AppendString([]byte{ckRefuse}, reason)
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	codec.WriteFrame(conn, payload)
	conn.Close()
}

// form runs the formation sequence: build the graph, wait for every
// worker, broadcast the topology, complete the data mesh, collect
// READYs, then declare the cluster up and build the local session.
func (c *Coordinator) form() {
	defer close(c.formed)
	fail := func(err error) {
		c.formErr = err
		c.hub.fail(err)
	}
	g, err := c.build(c.cfg.DB, c.cfg.Scale, c.cfg.Seed)
	if err != nil {
		fail(fmt.Errorf("dist: coordinator graph build: %w", err))
		return
	}
	c.g = g

	deadline := time.After(c.cfg.FormTimeout)
	select {
	case <-c.joinCh:
	case <-c.down:
		fail(fmt.Errorf("dist: topology failed during join: %w", c.hub.sticky()))
		return
	case <-deadline:
		c.mu.Lock()
		joined := c.joined
		c.mu.Unlock()
		fail(fmt.Errorf("dist: formation timed out with %d of %d workers joined", joined, c.cfg.Parts-1))
		return
	}

	m := newMesh(0, c.cfg.Parts, &c.wire)
	if c.cfg.Parts > 1 {
		// Topology: entry 0 is the coordinator's data port with an empty
		// host — each worker substitutes the host it dialed the
		// coordinator at, so the one address every worker provably can
		// reach is the one it uses.
		_, dataPort, err := net.SplitHostPort(c.dataLn.Addr().String())
		if err != nil {
			fail(err)
			return
		}
		topo := []byte{ckTopology}
		topo = binary.AppendUvarint(topo, uint64(c.cfg.Parts))
		topo = codec.AppendString(topo, net.JoinHostPort("", dataPort))
		c.mu.Lock()
		links := append([]*workerLink(nil), c.workers[1:]...)
		c.mu.Unlock()
		for _, l := range links {
			topo = codec.AppendString(topo, l.dataAddr)
		}
		for _, l := range links {
			if err := c.send(l, topo); err != nil {
				fail(fmt.Errorf("dist: sending topology to worker %d: %w", l.part, err))
				return
			}
		}
		admittedPeers, err := c.accept.wait(c.cfg.FormTimeout)
		if err != nil {
			fail(err)
			return
		}
		for part, ad := range admittedPeers {
			m.attach(part, ad.conn, ad.br)
		}
		if err := m.seal(); err != nil {
			fail(err)
			return
		}
		for i := 0; i < c.cfg.Parts-1; i++ {
			select {
			case <-c.readyCh:
			case <-c.down:
				fail(fmt.Errorf("dist: topology failed before ready: %w", c.hub.sticky()))
				return
			case <-deadline:
				fail(fmt.Errorf("dist: formation timed out with %d of %d workers ready", i, c.cfg.Parts-1))
				return
			}
		}
		for _, l := range links {
			if err := c.send(l, []byte{ckClusterUp}); err != nil {
				fail(fmt.Errorf("dist: cluster-up to worker %d: %w", l.part, err))
				return
			}
		}
	}
	c.n = &node{parts: c.cfg.Parts, local: 0, mesh: m, coll: coordColl{c.hub}}
	c.sess = core.NewSession(g, bsp.Options{
		Workers:     c.cfg.Workers,
		Partitions:  c.cfg.Parts,
		PartitionOf: partitionOf(c.cfg.Parts),
		Transport:   c.n,
	})
}

// readWorker owns one worker's control reads: collective deposits,
// READY during formation, QUERYDONE after queries. Any read error —
// including the EOF of a killed worker — degrades the topology
// immediately, whether or not a query is in flight.
func (c *Coordinator) readWorker(l *workerLink, br *bufio.Reader) {
	for {
		payload, nbytes, err := codec.ReadFrame(br)
		if err != nil {
			c.hub.fail(fmt.Errorf("dist: worker %d control link: %w", l.part, err))
			return
		}
		c.wire.controlBytesIn.Add(nbytes)
		if len(payload) == 0 {
			c.hub.fail(fmt.Errorf("dist: worker %d sent an empty control frame", l.part))
			return
		}
		switch payload[0] {
		case ckReady:
			c.readyCh <- struct{}{}
		case ckStartRun:
			err = c.hub.deposit(l.part, ckStartRun, nil, nil, "")
		case ckBarrier:
			d := codec.NewDecoder(payload[1:])
			bf, derr := decodeBarrierFrame(d)
			if derr == nil {
				derr = d.Finish()
			}
			if derr != nil {
				err = fmt.Errorf("dist: worker %d barrier frame: %w", l.part, derr)
				c.hub.fail(err)
				return
			}
			err = c.hub.deposit(l.part, ckBarrier, &bf, nil, "")
		case ckFinishRun:
			err = c.hub.deposit(l.part, ckFinishRun, nil, payload[1:], "")
		case ckQueryDone:
			d := codec.NewDecoder(payload[1:])
			qid, derr := d.Uvarint()
			var msg string
			if derr == nil {
				msg, derr = d.Str()
			}
			if derr == nil {
				derr = d.Finish()
			}
			if derr != nil || qid != c.curQID.Load() {
				err = fmt.Errorf("dist: worker %d query-done desync (qid %d, want %d)", l.part, qid, c.curQID.Load())
				c.hub.fail(err)
				return
			}
			err = c.hub.deposit(l.part, ckQueryDone, nil, nil, msg)
		default:
			err = fmt.Errorf("dist: worker %d sent unknown control kind %#x", l.part, payload[0])
			c.hub.fail(err)
			return
		}
		if err != nil {
			return
		}
	}
}

// release pushes a completed collective round to every worker. Called
// by the hub with its mutex held (the last depositor's goroutine);
// worker readers always drain their connections, so these writes make
// progress.
func (c *Coordinator) release(kind byte) error {
	var payload []byte
	switch kind {
	case ckStartRun:
		payload = []byte{ckStartRun}
	case ckBarrier:
		payload = appendBarrierFrame([]byte{ckBarrier}, c.hub.gb)
	case ckFinishRun:
		payload = []byte{ckFinishRun}
		payload = binary.AppendUvarint(payload, uint64(len(c.hub.out)))
		for _, blob := range c.hub.out {
			payload = binary.AppendUvarint(payload, uint64(len(blob)))
			payload = append(payload, blob...)
		}
	default:
		return fmt.Errorf("dist: no release for kind %#x", kind)
	}
	for _, l := range c.workers[1:] {
		if l == nil {
			return fmt.Errorf("dist: releasing into an unformed topology")
		}
		if err := c.send(l, payload); err != nil {
			return fmt.Errorf("dist: releasing %#x to worker %d: %w", kind, l.part, err)
		}
	}
	return nil
}

func (c *Coordinator) send(l *workerLink, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := codec.WriteFrame(l.conn, payload); err != nil {
		return err
	}
	c.wire.controlBytesOut.Add(int64(codec.HeaderSize + len(payload)))
	return nil
}

// Query runs one SQL query across the whole topology and returns the
// coordinator's copy of the (globally identical) answer. Queries
// serialize — the topology is one distributed engine, and its nodes
// advance in lockstep. A degraded topology refuses immediately with
// ErrDegraded.
func (c *Coordinator) Query(sql string) (*Result, error) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	<-c.formed
	if c.formErr != nil {
		return nil, c.formErr
	}
	if err := c.hub.sticky(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	qid := c.curQID.Add(1)
	dispatch := []byte{ckQuery}
	dispatch = binary.AppendUvarint(dispatch, qid)
	dispatch = codec.AppendString(dispatch, sql)
	c.mu.Lock()
	links := append([]*workerLink(nil), c.workers[1:]...)
	c.mu.Unlock()
	for _, l := range links {
		if err := c.send(l, dispatch); err != nil {
			err = fmt.Errorf("dist: dispatching query to worker %d: %w", l.part, err)
			c.hub.fail(err)
			return nil, fmt.Errorf("%w: %v", ErrDegraded, err)
		}
	}
	before := c.sess.Stats()
	rows, qerr := c.sess.Query(sql)
	cost := c.sess.Stats().Sub(before)
	if derr := c.sess.DistErr(); derr != nil {
		// The engine is permanently latched on a transport failure;
		// tear the topology down so blocked workers unwedge.
		c.hub.fail(derr)
		return nil, fmt.Errorf("%w: %v", ErrDegraded, derr)
	}
	errstr := ""
	if qerr != nil {
		errstr = qerr.Error()
	}
	_, _, strs, err := c.hub.await(ckQueryDone, nil, nil, errstr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	for part := 1; part < c.cfg.Parts; part++ {
		if strs[part] != errstr {
			err := fmt.Errorf("dist: SPMD divergence on query %d: coordinator %q, worker %d %q",
				qid, errstr, part, strs[part])
			c.hub.fail(err)
			return nil, err
		}
	}
	if qerr != nil {
		return nil, qerr
	}
	return &Result{Rows: rows, Info: c.sess.Info, Cost: cost}, nil
}

// teardown closes every listener and connection; blocked collectives
// and reads error out. Runs once, on degradation or Close.
func (c *Coordinator) teardown() {
	c.downOne.Do(func() {
		close(c.down)
		c.ctrlLn.Close()
		c.dataLn.Close()
		c.mu.Lock()
		links := append([]*workerLink(nil), c.workers[1:]...)
		c.mu.Unlock()
		for _, l := range links {
			if l != nil {
				l.conn.Close()
			}
		}
		if c.n != nil {
			c.n.mesh.closeAll()
		}
	})
}

// Close shuts the topology down cleanly: workers receive SHUTDOWN (and
// exit their query loops with no error), then everything closes.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	links := append([]*workerLink(nil), c.workers[1:]...)
	c.mu.Unlock()
	for _, l := range links {
		if l != nil {
			c.send(l, []byte{ckShutdown})
		}
	}
	c.hub.fail(fmt.Errorf("dist: coordinator closed"))
	return nil
}
