package dist

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/tag"
	"repro/internal/tpch"
)

const (
	testScale = 0.01
	testSeed  = 1
)

func testGraph(t *testing.T) *tag.Graph {
	t.Helper()
	cat := tpch.Generate(testScale, testSeed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		t.Fatalf("tag.Build: %v", err)
	}
	return g
}

// sharedBuilder returns a GraphBuilder that hands every in-process
// node the same frozen graph (sessions never mutate it), after
// checking the coordinator relayed the dataset triple faithfully.
func sharedBuilder(t *testing.T, g *tag.Graph) GraphBuilder {
	return func(db string, scale float64, seed int64) (*tag.Graph, error) {
		if db != "tpch" || scale != testScale || seed != testSeed {
			return nil, fmt.Errorf("builder got (%q, %v, %v), want (tpch, %v, %v)", db, scale, seed, testScale, testSeed)
		}
		return g, nil
	}
}

// startTopology brings up a coordinator plus parts-1 workers on
// loopback TCP and waits for CLUSTERUP.
func startTopology(t *testing.T, g *tag.Graph, parts int) (*Coordinator, []*Worker) {
	t.Helper()
	build := sharedBuilder(t, g)
	c, err := Listen("127.0.0.1:0", Config{
		Parts: parts, DB: "tpch", Scale: testScale, Seed: testSeed,
		FormTimeout: 30 * time.Second,
	}, build)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	type joined struct {
		w   *Worker
		err error
	}
	ch := make(chan joined, parts-1)
	for i := 1; i < parts; i++ {
		go func() {
			w, err := Join(c.Addr(), 1, build)
			ch <- joined{w, err}
		}()
	}
	workers := make([]*Worker, 0, parts-1)
	for i := 1; i < parts; i++ {
		j := <-ch
		if j.err != nil {
			t.Fatalf("Join: %v", j.err)
		}
		workers = append(workers, j.w)
	}
	if err := c.WaitReady(); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return c, workers
}

func rowsKey(r interface{ SortedKeys() []string }) string {
	return strings.Join(r.SortedKeys(), "\n")
}

// TestDistMatchesSimulationTPCH is the acceptance cross-check: all 22
// TPC-H queries on real-socket topologies of 1, 2 and 4 nodes must
// produce byte-identical rows and identical global Stats to the
// single-process loopback simulation at the same partition count — and
// the measured data-plane bytes on the wire must equal the simulated
// Stats.NetworkBytes exactly (records likewise NetworkMessages).
func TestDistMatchesSimulationTPCH(t *testing.T) {
	g := testGraph(t)
	queries := tpch.Queries()
	if len(queries) != 22 {
		t.Fatalf("expected 22 TPC-H queries, have %d", len(queries))
	}
	for _, parts := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			c, workers := startTopology(t, g, parts)
			ref := core.NewSession(g, bsp.Options{
				Partitions:  parts,
				PartitionOf: partitionOf(parts),
			})
			var wantBytes, wantRecords int64
			for _, q := range queries {
				refBefore := ref.Stats()
				refRows, refErr := ref.Query(q.SQL)
				refCost := ref.Stats().Sub(refBefore)

				res, err := c.Query(q.SQL)
				if (err != nil) != (refErr != nil) {
					t.Fatalf("%s: dist err %v, sim err %v", q.ID, err, refErr)
				}
				if err != nil {
					if err.Error() != refErr.Error() {
						t.Fatalf("%s: dist err %q, sim err %q", q.ID, err, refErr)
					}
					continue
				}
				if got, want := rowsKey(res.Rows), rowsKey(refRows); got != want {
					t.Fatalf("%s: distributed rows diverge from simulation\ndist: %.200s\nsim:  %.200s", q.ID, got, want)
				}
				if res.Cost != refCost {
					t.Fatalf("%s: cost diverges\ndist: %+v\nsim:  %+v", q.ID, res.Cost, refCost)
				}
				wantBytes += refCost.NetworkBytes
				wantRecords += refCost.NetworkMessages
			}
			var gotBytes, gotRecords, gotBytesIn int64
			wires := []WireStats{c.Wire()}
			for _, w := range workers {
				wires = append(wires, w.Wire())
			}
			for _, ws := range wires {
				gotBytes += ws.DataBytesOut
				gotRecords += ws.DataRecordsOut
				gotBytesIn += ws.DataBytesIn
			}
			if gotBytes != wantBytes {
				t.Errorf("bytes on wire: measured %d, simulation priced %d", gotBytes, wantBytes)
			}
			if gotBytesIn != wantBytes {
				t.Errorf("bytes off wire: measured %d, simulation priced %d", gotBytesIn, wantBytes)
			}
			if gotRecords != wantRecords {
				t.Errorf("records on wire: measured %d, simulation priced %d", gotRecords, wantRecords)
			}
		})
	}
}

// TestWorkerDeathDegradesTopology kills one worker and checks the
// fail-stop contract: the in-flight (or next) query fails, every later
// query is refused with ErrDegraded, and the surviving worker leaves
// the query plane with a diagnosable error rather than hanging.
func TestWorkerDeathDegradesTopology(t *testing.T) {
	g := testGraph(t)
	c, workers := startTopology(t, g, 3)

	if _, err := c.Query("SELECT count(*) FROM region"); err != nil {
		t.Fatalf("healthy query: %v", err)
	}

	workers[0].Close()
	if err := workers[0].Wait(); err == nil {
		t.Fatal("closed worker reports no error")
	}

	// The first query after the death may race the coordinator's
	// detection of it, but it must fail — and from then on the topology
	// is permanently degraded.
	if _, err := c.Query("SELECT count(*) FROM nation"); err == nil {
		t.Fatal("query succeeded on a topology missing a node")
	}
	if _, err := c.Query("SELECT count(*) FROM nation"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("expected ErrDegraded, got %v", err)
	}
	if !c.Degraded() {
		t.Fatal("coordinator does not report degradation")
	}
	if err := workers[1].Wait(); err == nil {
		t.Fatal("surviving worker exited cleanly from a degraded topology")
	}
}

// TestCleanShutdown checks Close's SHUTDOWN path: workers exit their
// query loops with no error.
func TestCleanShutdown(t *testing.T) {
	g := testGraph(t)
	c, workers := startTopology(t, g, 2)
	if _, err := c.Query("SELECT count(*) FROM region"); err != nil {
		t.Fatalf("query: %v", err)
	}
	c.Close()
	if err := workers[0].Wait(); err != nil {
		t.Fatalf("worker did not shut down cleanly: %v", err)
	}
}

// TestHostileFramesNeverWedge throws malformed and unauthorized
// traffic at both coordinator ports, interleaved with real queries:
// every hostile connection must be refused without wedging a barrier
// or corrupting an answer.
func TestHostileFramesNeverWedge(t *testing.T) {
	g := testGraph(t)
	c, _ := startTopology(t, g, 2)
	ctrlAddr := c.Addr()
	dataAddr := c.dataLn.Addr().String()

	hostile := []func(conn net.Conn){
		func(conn net.Conn) { // raw garbage, no framing
			conn.Write([]byte("\x00\xde\xad\xbe\xef not a frame at all"))
		},
		func(conn net.Conn) { // valid frame, unknown kind
			codec.WriteFrame(conn, []byte{0x7f, 1, 2, 3})
		},
		func(conn net.Conn) { // valid frame, JOIN with wrong magic
			codec.WriteFrame(conn, codec.AppendString([]byte{ckJoin}, "notdist0"))
		},
		func(conn net.Conn) { // valid frame, PEER with wrong token
			hello := codec.AppendString([]byte{ckPeer}, "0000")
			hello = append(hello, 1)
			codec.WriteFrame(conn, hello)
		},
		func(conn net.Conn) { // half a frame header, then hang up
			conn.Write([]byte{0xff, 0xff})
		},
		func(conn net.Conn) { // absurd declared length
			conn.Write([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
		},
	}
	query := func() {
		t.Helper()
		res, err := c.Query("SELECT count(*) FROM region")
		if err != nil {
			t.Fatalf("query under fuzz: %v", err)
		}
		if res.Rows.Len() != 1 {
			t.Fatalf("query under fuzz returned %d rows", res.Rows.Len())
		}
	}
	query()
	for _, addr := range []string{ctrlAddr, dataAddr} {
		for i, h := range hostile {
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				t.Fatalf("hostile dial %d to %s: %v", i, addr, err)
			}
			h(conn)
			conn.Close()
			query()
		}
	}
	// A well-formed JOIN to a full cluster gets an explicit refusal.
	conn, err := net.DialTimeout("tcp", ctrlAddr, time.Second)
	if err != nil {
		t.Fatalf("join dial: %v", err)
	}
	defer conn.Close()
	join := codec.AppendString([]byte{ckJoin}, joinMagic)
	join = codec.AppendString(join, "127.0.0.1:1")
	if err := codec.WriteFrame(conn, join); err != nil {
		t.Fatalf("join write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, _, err := codec.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	if len(payload) == 0 || payload[0] != ckRefuse {
		t.Fatalf("expected refusal frame, got kind %#x", frameKind(payload))
	}
	query()
	if c.Degraded() {
		t.Fatal("hostile traffic degraded the topology")
	}
}
