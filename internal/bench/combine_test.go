package bench

import (
	"fmt"
	"testing"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/tag"
)

// TestCombinedMatchesUncombinedTPCH is the end-to-end cross-check of
// Send-time combining, the same way PR 3 cross-checked SerialMerge:
// every TPC-H query under a simulated partitioning must produce
// byte-identical answers (same rows in the same order) and exactly
// equal paper-facing cost measures whether the message plane folds
// aggregator-bound sends or materializes every message — except the
// network counters, which price the sealed wire frames and therefore
// legitimately differ: folding's entire purpose is to put fewer
// records on the wire. For those the check is directional (combined
// never ships more records). The fold itself must show up on the
// aggregate-heavy suite.
func TestCombinedMatchesUncombinedTPCH(t *testing.T) {
	cat := generate("tpch", 0.2, 2021)
	g, err := tag.Build(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	var totalCombined int64
	for _, q := range WorkloadQueries("tpch") {
		plain := core.NewSession(g, bsp.Options{Workers: 4, Partitions: 6, NoCombine: true})
		combined := core.NewSession(g, bsp.Options{Workers: 4, Partitions: 6})

		wantRows, err1 := plain.Query(q.SQL)
		gotRows, err2 := combined.Query(q.SQL)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error mismatch: plain=%v combined=%v", q.ID, err1, err2)
		}
		if err1 != nil {
			t.Fatalf("%s: %v", q.ID, err1)
		}
		want := fmt.Sprintf("%v", wantRows.Tuples)
		got := fmt.Sprintf("%v", gotRows.Tuples)
		if got != want {
			t.Errorf("%s: combined answer differs from uncombined (rows or order)", q.ID)
		}
		ps, cs := plain.Stats(), combined.Stats()
		pp, cp := ps.Paper(), cs.Paper()
		if cp.NetworkMessages > pp.NetworkMessages {
			t.Errorf("%s: combining increased wire records: %d > %d", q.ID, cp.NetworkMessages, pp.NetworkMessages)
		}
		pp.NetworkMessages, pp.NetworkBytes = 0, 0
		cp.NetworkMessages, cp.NetworkBytes = 0, 0
		if pp != cp {
			t.Errorf("%s: paper-facing stats differ:\n  plain    %v\n  combined %v", q.ID, ps, cs)
		}
		if ps.MessagesCombined != 0 {
			t.Errorf("%s: NoCombine session folded %d messages", q.ID, ps.MessagesCombined)
		}
		if cs.InboxBytesSaved < cs.MessagesCombined*24 {
			t.Errorf("%s: saved bytes %d below the Message-slot floor for %d folds",
				q.ID, cs.InboxBytesSaved, cs.MessagesCombined)
		}
		totalCombined += cs.MessagesCombined
	}
	if totalCombined == 0 {
		t.Error("no TPC-H query folded a single message; combiners are not wired in")
	}
}

// TestCombineBenchSmoke: the combiner experiment runs end to end at a
// small scale and reports internally consistent cells.
func TestCombineBenchSmoke(t *testing.T) {
	cfg := Config{Scales: []float64{0.05}, Runs: 1, Workers: 1}
	res, err := CombineBench(cfg, "tpch", []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	byCell := map[string]CombineResult{}
	foldedSomewhere := false
	for _, r := range res {
		if r.NsPerOp <= 0 || r.Messages <= 0 || r.PeakInboxBytes <= 0 {
			t.Errorf("%s/%d/%s: non-positive measurements %+v", r.Query, r.Workers, r.Mode, r)
		}
		switch r.Mode {
		case "nocombine":
			if r.MessagesCombined != 0 || r.InboxBytesSaved != 0 {
				t.Errorf("%s: uncombined cell reports fold activity %+v", r.Query, r)
			}
		case "combine":
			if r.MessagesCombined > 0 {
				foldedSomewhere = true
			}
		}
		key := fmt.Sprintf("%s/%d", r.Query, r.Workers)
		if prev, ok := byCell[key]; ok {
			if prev.Messages != r.Messages {
				t.Errorf("%s: modes disagree on logical messages (%d vs %d)", key, prev.Messages, r.Messages)
			}
			if prev.PeakInboxBytes < r.PeakInboxBytes {
				t.Errorf("%s: combined peak inbox %d exceeds uncombined %d", key, r.PeakInboxBytes, prev.PeakInboxBytes)
			}
		} else {
			byCell[key] = r
		}
	}
	if !foldedSomewhere {
		t.Error("no combine cell folded any messages")
	}
}
