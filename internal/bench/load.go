package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/relation"
	"repro/internal/tag"
)

// LoadResult holds the Table 1/2 loading times and Figure 14 loaded sizes
// for one workload at one scale.
type LoadResult struct {
	Workload string
	Scale    float64

	// Loading times. Row-store load includes building hash indexes on
	// every declared PK/FK (the TPC protocol's index creation, §8.2);
	// column-store load includes the dictionary-compression pass; TAG
	// load is the full graph encoding.
	RowLoad time.Duration
	ColLoad time.Duration
	TAGLoad time.Duration

	// Loaded sizes in bytes (Figure 14 / Table 15).
	RawBytes      int
	RowBytes      int // raw + PK/FK index estimate
	ColStoreBytes int
	TAGBytes      int
}

// MeasureLoad runs the loading experiment for one workload and scale.
func MeasureLoad(workload string, scale float64, seed int64) (LoadResult, error) {
	res := LoadResult{Workload: workload, Scale: scale}

	// Row store: materialize the catalog and build PK/FK hash indexes.
	start := time.Now()
	cat := generate(workload, scale, seed)
	buildHashIndexes(cat)
	res.RowLoad = time.Since(start)
	res.RawBytes = cat.TotalBytes()
	res.RowBytes = res.RawBytes + baseline.IndexBytes(cat)

	// Column store: run the dictionary-compression sizing pass.
	start = time.Now()
	res.ColStoreBytes = baseline.ColumnStoreBytes(cat)
	res.ColLoad = res.RowLoad + time.Since(start)

	// TAG graph: full encoding (fresh catalog so generation cost is
	// counted identically).
	start = time.Now()
	cat2 := generate(workload, scale, seed)
	g, err := tag.Build(cat2, nil)
	if err != nil {
		return res, err
	}
	res.TAGLoad = time.Since(start)
	res.TAGBytes = g.ByteSize()
	return res, nil
}

// buildHashIndexes simulates RDBMS index creation over declared keys.
func buildHashIndexes(cat *relation.Catalog) {
	index := func(table, column string) {
		rel := cat.Get(table)
		if rel == nil {
			return
		}
		i := rel.Schema.Index(column)
		if i < 0 {
			return
		}
		idx := make(map[relation.Value][]int, rel.Len())
		for r, t := range rel.Tuples {
			idx[t[i].Key()] = append(idx[t[i].Key()], r)
		}
		_ = idx
	}
	for _, name := range cat.Names() {
		if pk := cat.PrimaryKey(name); pk != "" {
			index(name, pk)
		}
	}
	for _, fk := range cat.ForeignKeys() {
		index(fk.Table, fk.Column)
	}
}

// PrintLoad renders the Table 1/2 + Figure 14 report.
func PrintLoad(w io.Writer, results []LoadResult) {
	if len(results) == 0 {
		return
	}
	fmt.Fprintf(w, "\nTables 1/2 — %s loading times (ms) and Figure 14 loaded sizes (KB)\n", results[0].Workload)
	fmt.Fprintf(w, "%-8s %10s %10s %10s | %10s %10s %10s %10s\n",
		"scale", "row_ms", "col_ms", "tag_ms", "raw_kb", "row+idx_kb", "col_kb", "tag_kb")
	for _, r := range results {
		fmt.Fprintf(w, "%-8.2g %10.2f %10.2f %10.2f | %10d %10d %10d %10d\n",
			r.Scale, ms(r.RowLoad), ms(r.ColLoad), ms(r.TAGLoad),
			r.RawBytes/1024, r.RowBytes/1024, r.ColStoreBytes/1024, r.TAGBytes/1024)
	}
}
