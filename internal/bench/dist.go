package bench

import (
	"fmt"
	"io"

	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/relation"
	"repro/internal/tag"
)

// DistWireResult is one cell of the real-wire distributed experiment: a
// TPC-H query timed on a topology of N worker nodes (plus the
// coordinator) over real loopback sockets, against the single-process
// engine on the same data. WireBytes is the measured data-plane
// traffic summed over all nodes — by construction it equals
// NetworkBytes, the engine's simulated accounting, and the bench
// asserts so.
type DistWireResult struct {
	Workload        string  `json:"workload"`
	Scale           float64 `json:"scale"`
	Query           string  `json:"query"`
	Workers         int     `json:"workers"` // worker nodes; 0 = single-process baseline
	Parts           int     `json:"parts"`   // partitions (workers+1; 1 for the baseline)
	NsPerOp         int64   `json:"ns_per_op"`
	Rows            int     `json:"rows"`
	NetworkBytes    int64   `json:"network_bytes"`
	NetworkMessages int64   `json:"network_messages"`
	WireBytes       int64   `json:"wire_bytes"`
	IdentityOK      bool    `json:"identity_ok"`
}

// distTopology is an in-process cluster: one coordinator plus N
// workers joined over 127.0.0.1, all sharing one frozen graph.
type distTopology struct {
	coord   *dist.Coordinator
	workers []*dist.Worker
}

func startDistTopology(g *tag.Graph, workload string, scale float64, seed int64, workers int) (*distTopology, error) {
	build := func(string, float64, int64) (*tag.Graph, error) { return g, nil }
	c, err := dist.Listen("127.0.0.1:0", dist.Config{
		Parts: workers + 1, DB: workload, Scale: scale, Seed: seed,
		FormTimeout: time.Minute,
	}, build)
	if err != nil {
		return nil, err
	}
	tp := &distTopology{coord: c}
	type joinRes struct {
		w   *dist.Worker
		err error
	}
	joined := make(chan joinRes, workers)
	for i := 0; i < workers; i++ {
		go func() {
			w, err := dist.Join(c.Addr(), 1, build)
			joined <- joinRes{w, err}
		}()
	}
	for i := 0; i < workers; i++ {
		r := <-joined
		if r.err != nil {
			c.Close()
			return nil, r.err
		}
		tp.workers = append(tp.workers, r.w)
	}
	if err := c.WaitReady(); err != nil {
		c.Close()
		return nil, err
	}
	return tp, nil
}

func (tp *distTopology) wireBytes() int64 {
	total := tp.coord.Wire().DataBytesOut
	for _, w := range tp.workers {
		total += w.Wire().DataBytesOut
	}
	return total
}

// DistWireBench times the given TPC-H queries on real-socket topologies of
// each worker count (0 meaning the single-process engine) at the
// configured smallest scale. Every distributed answer is checked
// equal (fuzzily, for float aggregation order) to the single-process
// one, and the measured data-plane bytes are checked exactly equal to
// the simulated accounting.
func DistWireBench(cfg Config, workload string, workerCounts []int, queryIDs []string) ([]DistWireResult, error) {
	cfg = cfg.withDefaults()
	scale := cfg.Scales[0]
	cat := generate(workload, scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	queries := WorkloadQueries(workload)
	want := map[string]*relation.Relation{}
	if len(queryIDs) > 0 {
		keep := map[string]bool{}
		for _, id := range queryIDs {
			keep[id] = true
		}
		var sub []WorkloadQuery
		for _, q := range queries {
			if keep[q.ID] {
				sub = append(sub, q)
			}
		}
		queries = sub
	}

	var out []DistWireResult
	// Single-process baseline: same graph, one partition, no transport.
	base := core.NewSession(g, bsp.Options{Workers: cfg.Workers})
	for _, q := range queries {
		var best time.Duration
		var rows int
		for run := 0; run <= cfg.Runs; run++ {
			start := time.Now()
			rel, err := base.Query(q.SQL)
			elapsed := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("dist bench: single-process %s: %w", q.ID, err)
			}
			if run == 0 {
				want[q.ID] = rel
				rows = rel.Len()
				continue // warm-up
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		out = append(out, DistWireResult{
			Workload: workload, Scale: scale, Query: q.ID,
			Workers: 0, Parts: 1, NsPerOp: best.Nanoseconds(), Rows: rows,
			IdentityOK: true,
		})
	}

	for _, workers := range workerCounts {
		tp, err := startDistTopology(g, workload, scale, cfg.Seed, workers)
		if err != nil {
			return nil, fmt.Errorf("dist bench: forming %d-worker topology: %w", workers, err)
		}
		for _, q := range queries {
			var best time.Duration
			var last *dist.Result
			wireBefore := tp.wireBytes()
			for run := 0; run <= cfg.Runs; run++ {
				start := time.Now()
				res, err := tp.coord.Query(q.SQL)
				elapsed := time.Since(start)
				if err != nil {
					tp.coord.Close()
					return nil, fmt.Errorf("dist bench: %d-worker %s: %w", workers, q.ID, err)
				}
				last = res
				if run == 0 {
					continue // warm-up
				}
				if best == 0 || elapsed < best {
					best = elapsed
				}
			}
			wire := tp.wireBytes() - wireBefore
			priced := last.Cost.NetworkBytes * int64(cfg.Runs+1)
			// Fuzzy: float aggregates accumulate in partition order, so
			// different partition counts differ in the last ulps.
			identity := relation.EqualMultisetFuzzy(last.Rows, want[q.ID])
			if wire != priced {
				return nil, fmt.Errorf("dist bench: %d-worker %s: wire carried %d bytes, accounting priced %d",
					workers, q.ID, wire, priced)
			}
			out = append(out, DistWireResult{
				Workload: workload, Scale: scale, Query: q.ID,
				Workers: workers, Parts: workers + 1,
				NsPerOp: best.Nanoseconds(), Rows: last.Rows.Len(),
				NetworkBytes:    last.Cost.NetworkBytes,
				NetworkMessages: last.Cost.NetworkMessages,
				WireBytes:       last.Cost.NetworkBytes, // == wire/runs, asserted above
				IdentityOK:      identity,
			})
			if !identity {
				tp.coord.Close()
				return nil, fmt.Errorf("dist bench: %d-worker %s: rows diverge from single-process", workers, q.ID)
			}
		}
		tp.coord.Close()
		for _, w := range tp.workers {
			w.Wait()
		}
	}
	return out, nil
}

// PrintDistWire renders the distributed experiment like the paper's
// cluster tables: per query, single-process time then each topology's
// time and its (identical-by-construction) network traffic.
func PrintDistWire(w io.Writer, results []DistWireResult) {
	fmt.Fprintf(w, "\n== distributed execution: real sockets vs single process (TPC-H) ==\n")
	fmt.Fprintf(w, "%-6s %-8s %12s %14s %14s %10s\n", "query", "topology", "ns/op", "net bytes", "net msgs", "identical")
	for _, r := range results {
		topo := "single"
		if r.Workers > 0 {
			topo = fmt.Sprintf("%dw+c", r.Workers)
		}
		fmt.Fprintf(w, "%-6s %-8s %12d %14d %14d %10v\n",
			r.Query, topo, r.NsPerOp, r.NetworkBytes, r.NetworkMessages, r.IdentityOK)
	}
}
