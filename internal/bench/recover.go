package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/wal"
)

// RecoverResult is one scale's boot-time comparison: the same crash
// image opened with its checkpoint (snapshot-load + suffix replay)
// and without it (full WAL replay).
type RecoverResult struct {
	Workload  string
	Scale     float64
	BatchRows int
	Batches   int // insert batches on each side of the checkpoint

	BuildMS      float64 // tag.Build of the base graph (paid by every boot)
	CheckpointMS float64 // Maintainer.Checkpoint wall time (snapshot write)
	CheckpointMB float64 // checkpoint file size
	WALRecords   int64   // records in the crash image's log

	FullBootMS   float64 // serve.Open, checkpoint deleted
	FullReplayed int64
	SnapBootMS   float64 // serve.Open, checkpoint present
	SnapReplayed int64
	SnapSkipped  int64
}

// RecoverBench builds a crash image per scale — a WAL with batches
// insert batches, a mid-log checkpoint (written without truncating, so
// both boots read the same log), then batches more — and times the two
// recovery paths against it. The checkpoint covers the first half, so
// the snapshot boot should replay about half the records of the full
// one; the gap between the boot times is what compaction buys.
func RecoverBench(cfg Config, workload string, batches, batchRows int) ([]RecoverResult, error) {
	cfg = cfg.withDefaults()
	if batches <= 0 {
		batches = 8
	}
	if batchRows <= 0 {
		batchRows = 200
	}
	table := maintainTable[workload]
	if table == "" {
		return nil, fmt.Errorf("bench: no ingest table for workload %q", workload)
	}

	var out []RecoverResult
	for _, scale := range cfg.Scales {
		res := RecoverResult{Workload: workload, Scale: scale, BatchRows: batchRows, Batches: batches}
		if err := runRecoverScale(&res, cfg, workload, table); err != nil {
			return out, fmt.Errorf("bench: recover at scale %g: %w", scale, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func runRecoverScale(res *RecoverResult, cfg Config, workload, table string) error {
	build := func() (*tag.Graph, time.Duration, error) {
		cat := generate(workload, res.Scale, cfg.Seed)
		t0 := time.Now()
		g, err := tag.Build(cat, nil)
		return g, time.Since(t0), err
	}

	g, buildDur, err := build()
	if err != nil {
		return err
	}
	res.BuildMS = float64(buildDur.Microseconds()) / 1e3

	dir, err := os.MkdirTemp("", "recoverbench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := serve.Open(g, serve.Options{Sessions: 1, WALDir: dir, WALSync: wal.SyncNever})
	if err != nil {
		return err
	}
	maint := srv.Maintainer()
	rel := g.Catalog.Get(table)
	if rel == nil || rel.Len() == 0 {
		return fmt.Errorf("no rows in table %q", table)
	}
	templates := &relation.Relation{Name: rel.Name, Schema: rel.Schema,
		Tuples: append([]relation.Tuple(nil), rel.Tuples[:min(len(rel.Tuples), 4*res.BatchRows)]...)}
	nextKey := int64(1) << 40
	for i := 0; i < res.Batches; i++ {
		if _, err := maint.InsertBatch(table, synthRows(templates, res.BatchRows, &nextKey)); err != nil {
			return err
		}
	}

	// Checkpoint mid-log without truncating: both boots below must be
	// able to read the whole log.
	t0 := time.Now()
	ckptEpoch, err := maint.Checkpoint(false)
	if err != nil {
		return err
	}
	res.CheckpointMS = float64(time.Since(t0).Microseconds()) / 1e3
	for i := 0; i < res.Batches; i++ {
		if _, err := maint.InsertBatch(table, synthRows(templates, res.BatchRows, &nextKey)); err != nil {
			return err
		}
	}
	res.WALRecords = srv.Stats().WALRecords
	if err := srv.WAL().Close(); err != nil { // the crash
		return err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			if fi, err := e.Info(); err == nil {
				res.CheckpointMB = float64(fi.Size()) / (1 << 20)
			}
		}
	}

	boot := func(withCheckpoint bool) (float64, serve.Stats, error) {
		bd, err := copyWALDir(dir, withCheckpoint)
		if err != nil {
			return 0, serve.Stats{}, err
		}
		defer os.RemoveAll(bd)
		bg, _, err := build()
		if err != nil {
			return 0, serve.Stats{}, err
		}
		t0 := time.Now()
		s, err := serve.Open(bg, serve.Options{Sessions: 1, WALDir: bd})
		if err != nil {
			return 0, serve.Stats{}, err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1e3
		st := s.Stats()
		return ms, st, s.WAL().Close()
	}

	ms, st, err := boot(false)
	if err != nil {
		return err
	}
	res.FullBootMS, res.FullReplayed = ms, st.WALReplayed

	ms, st, err = boot(true)
	if err != nil {
		return err
	}
	res.SnapBootMS, res.SnapReplayed, res.SnapSkipped = ms, st.WALReplayed, st.WALSkipped
	if st.CheckpointEpoch != ckptEpoch {
		return fmt.Errorf("snapshot boot loaded epoch %d, checkpointed %d", st.CheckpointEpoch, ckptEpoch)
	}
	return nil
}

// copyWALDir clones a crash image (log + fingerprint, optionally the
// checkpoint files, never the lock) into a fresh temp dir so each boot
// measurement reads a pristine copy.
func copyWALDir(src string, withCheckpoints bool) (string, error) {
	dst, err := os.MkdirTemp("", "recoverboot-")
	if err != nil {
		return "", err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return "", err
	}
	for _, e := range entries {
		name := e.Name()
		if name == "wal.lock" || (!withCheckpoints && strings.HasSuffix(name, ".ckpt")) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			return "", err
		}
	}
	return dst, nil
}

// PrintRecover renders one scale's recovery comparison.
func PrintRecover(w io.Writer, r RecoverResult) {
	fmt.Fprintf(w, "\nRecovery boot time — %s SF %g, %d-record log (%d-row batches), checkpoint at the midpoint\n",
		r.Workload, r.Scale, r.WALRecords, r.BatchRows)
	fmt.Fprintf(w, "(base graph build %.1f ms is paid by both; checkpoint wrote %.2f MB in %.1f ms)\n",
		r.BuildMS, r.CheckpointMB, r.CheckpointMS)
	fmt.Fprintf(w, "%-18s %12s %10s %10s\n", "boot", "open_ms", "replayed", "skipped")
	fmt.Fprintf(w, "%-18s %12.1f %10d %10d\n", "full-replay", r.FullBootMS, r.FullReplayed, 0)
	fmt.Fprintf(w, "%-18s %12.1f %10d %10d\n", "snapshot+suffix", r.SnapBootMS, r.SnapReplayed, r.SnapSkipped)
	if r.SnapBootMS > 0 {
		fmt.Fprintf(w, "speedup %.2fx, records not replayed %d\n",
			r.FullBootMS/r.SnapBootMS, r.FullReplayed-r.SnapReplayed)
	}
}
