package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunWorkloadTPCHSmall(t *testing.T) {
	cfg := Config{Scales: []float64{0.3}, Runs: 1, Workers: 4}
	env, err := NewEnv("tpch", 0.3, 2021, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWorkload(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 22 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
	for _, q := range res.Queries {
		if !q.Agree {
			t.Errorf("%s: engines disagree", q.ID)
		}
		if q.Times["tag"] <= 0 || q.Times["refdb"] <= 0 {
			t.Errorf("%s: missing timings", q.ID)
		}
	}
	var buf bytes.Buffer
	PrintPerQuery(&buf, res)
	PrintAggregate(&buf, []WorkloadResult{res})
	PrintByClass(&buf, res)
	PrintWinCounts(&buf, res)
	PrintSelected(&buf, res, "Table 3", []string{"q3", "q4", "q5", "q10", "q2", "q17", "q20", "q21"})
	out := buf.String()
	for _, want := range []string{"Figure 13", "Figure 15", "Table 5", "TOTAL", "q21"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunWorkloadTPCDSSmall(t *testing.T) {
	cfg := Config{Runs: 1, Workers: 4}
	env, err := NewEnv("tpcds", 0.2, 2021, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWorkload(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 25 {
		t.Fatalf("queries = %d", len(res.Queries))
	}
	for _, q := range res.Queries {
		if !q.Agree {
			t.Errorf("%s: engines disagree", q.ID)
		}
	}
	byClass := res.ByClass()
	for _, c := range []string{"noagg", "local", "global", "scalar"} {
		if len(byClass[c]) == 0 {
			t.Errorf("class %s missing from breakdown", c)
		}
	}
}

func TestMeasureLoad(t *testing.T) {
	res, err := MeasureLoad("tpch", 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.TAGBytes <= 0 || res.RowBytes <= res.RawBytes {
		t.Errorf("sizes wrong: %+v", res)
	}
	if res.TAGLoad <= 0 || res.RowLoad <= 0 {
		t.Error("load times missing")
	}
	var buf bytes.Buffer
	PrintLoad(&buf, []LoadResult{res})
	if !strings.Contains(buf.String(), "Figure 14") {
		t.Error("load report malformed")
	}
}

func TestRunDistributedSmall(t *testing.T) {
	cfg := Config{Runs: 1, Machines: 6}
	res, err := RunDistributed(cfg, "tpch", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TagTraffic == 0 || res.ShuffleTraffic == 0 {
		t.Errorf("traffic missing: %+v", res)
	}
	var buf bytes.Buffer
	PrintDistributed(&buf, res)
	if !strings.Contains(buf.String(), "Figure 16") {
		t.Error("distributed report malformed")
	}
}

func TestAblations(t *testing.T) {
	cfg := Config{Runs: 1, Workers: 4}
	th, err := AblationTheta(cfg, 0.3, []float64{0, 1, 1e9})
	if err != nil {
		t.Fatal(err)
	}
	// Correctness must hold across thresholds.
	for _, r := range th[1:] {
		if r.Rows != th[0].Rows {
			t.Errorf("theta sweep changed result: %+v vs %+v", r, th[0])
		}
	}
	ca, err := AblationCartesian(cfg, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if ca[0].Rows != ca[1].Rows {
		t.Error("cartesian algorithms disagree")
	}
	// Algorithm A communicates less but computes centrally; B's message
	// count is on the order of the output.
	if ca[1].Messages <= ca[0].Messages {
		t.Errorf("algorithm B should send more messages: %+v", ca)
	}
	ap, err := AblationAggPath(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if ap[0].Rows != ap[1].Rows {
		t.Errorf("LA and GA paths must agree on groups: %+v", ap)
	}
	wk, err := AblationWorkers(cfg, 0.3, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(wk) != 2 {
		t.Error("worker sweep incomplete")
	}
	pl, err := AblationPolicy(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if pl[1].AttrVerts <= pl[0].AttrVerts {
		t.Errorf("materialize-all should create more attr vertices: %+v", pl)
	}
	var buf bytes.Buffer
	PrintTheta(&buf, th)
	PrintCartesian(&buf, ca)
	PrintAggPath(&buf, ap)
	PrintWorkers(&buf, wk)
	PrintPolicy(&buf, pl)
	if !strings.Contains(buf.String(), "sqrt(IN)") {
		t.Error("ablation report malformed")
	}
}

func TestPeakRAM(t *testing.T) {
	peak, err := PeakRAM(func() error {
		buf := make([]byte, 8<<20)
		_ = buf[0]
		return nil
	})
	if err != nil || peak <= 0 {
		t.Errorf("peak=%d err=%v", peak, err)
	}
}
