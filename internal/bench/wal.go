package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
	"repro/internal/wal"
)

// WALPolicies compared by the durability benchmark: the write path with
// no WAL at all, and with the WriteOp log under each sync policy.
//
//	nowal     the PR-2 maintenance path, memory-only (the baseline the
//	          log's overhead is measured against)
//	never     append to the OS page cache, never fsync — durable across
//	          process crashes, not machine crashes
//	interval  group-commit fsync at most once per 100ms — bounded loss
//	          at near-unsynced throughput; the default serving policy
//	always    fsync before every acknowledgement — no acknowledged
//	          write is ever lost, at the cost of one fsync per publish
var WALPolicies = []string{"nowal", "never", "interval", "always"}

// WALResult is the outcome of one durability measurement.
type WALResult struct {
	Workload  string
	Scale     float64
	BatchRows int
	Window    time.Duration

	RowsPerSec map[string]float64 // policy -> rows ingested/second
	Batches    map[string]int64   // policy -> publishes in the window
	WriteMS    map[string]float64 // policy -> mean per-batch apply+log time (ms)
	WALBytes   map[string]int64   // policy -> bytes appended to the log
	Fsyncs     map[string]int64   // policy -> fsyncs the policy issued
}

// WALBench measures write throughput through the serving layer's
// maintenance path under each WAL sync policy, against the no-WAL
// baseline. One writer applies batchRows-row insert batches back to
// back for the window; each (scale, policy) cell gets a freshly built
// graph and a fresh log directory.
func WALBench(cfg Config, workload string, batchRows int, window time.Duration) ([]WALResult, error) {
	cfg = cfg.withDefaults()
	if batchRows <= 0 {
		batchRows = 200
	}
	if window <= 0 {
		window = 500 * time.Millisecond
	}
	table := maintainTable[workload]
	if table == "" {
		return nil, fmt.Errorf("bench: no ingest table for workload %q", workload)
	}

	var out []WALResult
	for _, scale := range cfg.Scales {
		res := WALResult{
			Workload: workload, Scale: scale, BatchRows: batchRows, Window: window,
			RowsPerSec: map[string]float64{}, Batches: map[string]int64{},
			WriteMS: map[string]float64{}, WALBytes: map[string]int64{}, Fsyncs: map[string]int64{},
		}
		for _, policy := range WALPolicies {
			cat := generate(workload, scale, cfg.Seed)
			g, err := tag.Build(cat, nil)
			if err != nil {
				return out, err
			}
			if err := runWALPolicy(&res, policy, g, table, batchRows, window); err != nil {
				return out, fmt.Errorf("bench: wal %s at scale %g: %w", policy, scale, err)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func runWALPolicy(res *WALResult, policy string, g *tag.Graph, table string, batchRows int, window time.Duration) error {
	opts := serve.Options{Sessions: 1}
	if policy != "nowal" {
		dir, err := os.MkdirTemp("", "walbench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		p, err := wal.ParsePolicy(policy)
		if err != nil {
			return err
		}
		opts.WALDir, opts.WALSync = dir, p
	}
	srv, err := serve.Open(g, opts)
	if err != nil {
		return err
	}
	if w := srv.WAL(); w != nil {
		defer w.Close()
	}
	maint := srv.Maintainer()

	rel := g.Catalog.Get(table)
	if rel == nil || rel.Len() == 0 {
		return fmt.Errorf("no rows in table %q", table)
	}
	templates := append([]relation.Tuple(nil), rel.Tuples[:min(len(rel.Tuples), 4*batchRows)]...)
	tmplRel := &relation.Relation{Name: rel.Name, Schema: rel.Schema, Tuples: templates}

	var (
		batches    int64
		writeTotal time.Duration
		nextKey    = int64(1) << 40
	)
	start := time.Now()
	deadline := start.Add(window)
	for time.Now().Before(deadline) {
		rows := synthRows(tmplRel, batchRows, &nextKey)
		t0 := time.Now()
		if _, err := maint.InsertBatch(table, rows); err != nil {
			return err
		}
		writeTotal += time.Since(t0)
		batches++
	}
	elapsed := time.Since(start)

	res.Batches[policy] = batches
	if elapsed > 0 {
		res.RowsPerSec[policy] = float64(batches*int64(batchRows)) / elapsed.Seconds()
	}
	if batches > 0 {
		res.WriteMS[policy] = float64(writeTotal.Microseconds()) / 1e3 / float64(batches)
	}
	st := srv.Stats()
	res.WALBytes[policy] = st.WALBytes
	res.Fsyncs[policy] = st.WALFsyncs
	return nil
}

// PrintWAL renders the durability comparison.
func PrintWAL(w io.Writer, r WALResult) {
	fmt.Fprintf(w, "\nWAL write throughput — %s SF %g, continuous %d-row insert batches, %v window\n",
		r.Workload, r.Scale, r.BatchRows, r.Window)
	fmt.Fprintf(w, "(nowal = memory-only baseline; never/interval/always = WriteOp log sync policies)\n")
	fmt.Fprintf(w, "%-10s %12s %10s %14s %12s %8s %10s\n",
		"policy", "rows_per_s", "batches", "avg_write_ms", "wal_bytes", "fsyncs", "vs_nowal")
	base := r.RowsPerSec["nowal"]
	for _, policy := range WALPolicies {
		rel := 0.0
		if base > 0 {
			rel = r.RowsPerSec[policy] / base
		}
		fmt.Fprintf(w, "%-10s %12.0f %10d %14.2f %12d %8d %9.2fx\n",
			policy, r.RowsPerSec[policy], r.Batches[policy], r.WriteMS[policy],
			r.WALBytes[policy], r.Fsyncs[policy], rel)
	}
}
