package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestConcurrencyThroughput checks the PR's serving acceptance bar: at 4
// concurrent clients, the pooled serving layer must deliver at least 2x
// the aggregate QPS of serialized single-session execution in the seed's
// rebuild-per-query pattern, and must not fall behind a reused
// serialized session (its floor even on one core, where extra clients
// add no CPU).
func TestConcurrencyThroughput(t *testing.T) {
	cfg := Config{Scales: []float64{0.1}}
	results, err := Concurrency(cfg, "tpch", []int{1, 4}, 250*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		for _, mode := range ConcurrencyModes {
			if r.Queries[mode] == 0 {
				t.Errorf("%d clients: mode %s completed no queries", r.Clients, mode)
			}
		}
	}
	at4 := results[1]
	if at4.Clients != 4 {
		t.Fatalf("second row clients = %d", at4.Clients)
	}
	if s := at4.Speedup("rebuild"); s < 2 {
		t.Errorf("pooled vs rebuild-per-query at 4 clients = %.2fx, want >= 2x", s)
	}
	if s := at4.Speedup("serial"); s < 0.7 {
		t.Errorf("pooled vs serialized session at 4 clients = %.2fx; pooling must not cost throughput", s)
	}

	var buf bytes.Buffer
	PrintConcurrency(&buf, "tpch", results)
	out := buf.String()
	for _, want := range []string{"clients", "pooled", "rebuild", "vs_serial"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
