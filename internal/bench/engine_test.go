package bench

import (
	"fmt"
	"testing"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/tag"
)

// TestShardedMergeMatchesSerialTPCH is the end-to-end determinism
// cross-check of the sharded message plane: every TPC-H query must
// produce byte-identical answers (same rows in the same order) and
// exactly equal cost measures — including the network dedup accounting
// under a simulated partitioning — whether the communication stage
// runs serially or shard-parallel.
func TestShardedMergeMatchesSerialTPCH(t *testing.T) {
	cat := generate("tpch", 0.2, 2021)
	g, err := tag.Build(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range WorkloadQueries("tpch") {
		serial := core.NewSession(g, bsp.Options{Workers: 4, Partitions: 6, SerialMerge: true})
		sharded := core.NewSession(g, bsp.Options{Workers: 4, Partitions: 6})

		wantRows, err1 := serial.Query(q.SQL)
		gotRows, err2 := sharded.Query(q.SQL)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error mismatch: serial=%v sharded=%v", q.ID, err1, err2)
		}
		if err1 != nil {
			t.Fatalf("%s: %v", q.ID, err1)
		}
		want := fmt.Sprintf("%v", wantRows.Tuples)
		got := fmt.Sprintf("%v", gotRows.Tuples)
		if got != want {
			t.Errorf("%s: sharded answer differs from serial (rows or order)", q.ID)
		}
		ws, gs := serial.Stats(), sharded.Stats()
		if ws != gs {
			t.Errorf("%s: stats differ:\n  serial  %v\n  sharded %v", q.ID, ws, gs)
		}
	}
}

// TestEngineBenchSmoke: the message-plane experiment runs end to end
// at a small scale and reports internally-consistent cells.
func TestEngineBenchSmoke(t *testing.T) {
	cfg := Config{Scales: []float64{0.05}, Runs: 1, Workers: 1}
	res, err := EngineBench(cfg, "tpch", []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	byCell := map[string]EngineResult{}
	for _, r := range res {
		if r.NsPerOp <= 0 || r.Messages <= 0 || r.Supersteps <= 0 {
			t.Errorf("%s/%d/%s: non-positive measurements %+v", r.Program, r.Workers, r.Mode, r)
		}
		if r.DenseBytes <= 0 {
			t.Errorf("%s: dense baseline missing", r.Program)
		}
		key := fmt.Sprintf("%s/%d", r.Program, r.Workers)
		if prev, ok := byCell[key]; ok {
			if prev.Messages != r.Messages || prev.Supersteps != r.Supersteps {
				t.Errorf("%s: serial and sharded disagree on cost (%d/%d msgs, %d/%d steps)",
					key, prev.Messages, r.Messages, prev.Supersteps, r.Supersteps)
			}
		} else {
			byCell[key] = r
		}
	}
}
