package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/tag"
)

// EngineModes compared by the message-plane experiment: the same
// engine with the communication stage forced onto one goroutine
// ("serial", the pre-sharding behavior) vs. merged shard-parallel by
// the worker pool ("sharded"). Both planes are byte-identical in
// output and cost accounting; only wall time and memory differ.
var EngineModes = []string{"serial", "sharded"}

// engineQueries are the message-heavy per-workload queries the
// experiment times through a full core.Session: multiway joins whose
// TAG-join traversals push large message volumes per superstep.
var engineQueries = map[string][]string{
	"tpch":  {"q5", "q9"},
	"tpcds": {"q56", "q74"},
}

// EngineResult is one cell of the message-plane experiment.
type EngineResult struct {
	Workload     string  `json:"workload"`
	Scale        float64 `json:"scale"`
	Program      string  `json:"program"` // "flood" or a query id
	Workers      int     `json:"workers"`
	Mode         string  `json:"mode"` // "serial" | "sharded"
	NsPerOp      int64   `json:"ns_per_op"`
	Supersteps   int64   `json:"supersteps"`
	Messages     int64   `json:"messages"`
	MessageBytes int64   `json:"message_bytes"`
	MsgsPerSec   float64 `json:"messages_per_sec"`
	InboxBytes   int64   `json:"inbox_bytes"`       // sparse plane, resident after the run
	DenseBytes   int64   `json:"dense_inbox_bytes"` // what the dense plane held for this graph
}

// floodProgram stresses the message plane: every active vertex
// forwards one payload along every edge for a fixed number of
// supersteps. Compute is trivial, so wall time is dominated by the
// communication stage — the worst case for a serial merge.
type floodProgram struct{ steps int }

func (p *floodProgram) Compute(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
	ctx.AddOps(1)
	if ctx.Step() >= p.steps {
		return
	}
	for _, e := range ctx.Graph().Edges(v) {
		ctx.Send(v, e.To, int64(1))
	}
}

// EngineBench measures superstep throughput and per-session inbox
// memory of the sharded message plane against the serial merge, at
// several worker counts, on a synthetic all-edges flood and on
// message-heavy workload queries. One graph (cfg.Scales[0]) is shared
// by every cell; each cell gets a fresh engine or session.
func EngineBench(cfg Config, workload string, workerCounts []int) ([]EngineResult, error) {
	cfg = cfg.withDefaults()
	scale := cfg.Scales[0]
	cat := generate(workload, scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	dense := bsp.DenseInboxBytes(g.G.NumVertices())

	var out []EngineResult
	flood := &floodProgram{steps: 3}
	initial := g.TupleVertices(maintainTable[workload])
	if len(initial) == 0 {
		return nil, fmt.Errorf("bench: no seed vertices for workload %q", workload)
	}
	for _, w := range workerCounts {
		for _, mode := range EngineModes {
			eng := bsp.NewEngine(g.G, bsp.Options{Workers: w, SerialMerge: mode == "serial"})
			var stats bsp.Stats
			avg := timedCell(cfg, func() { stats = eng.Run(flood, initial) })
			out = append(out, EngineResult{
				Workload: workload, Scale: scale, Program: "flood", Workers: w, Mode: mode,
				NsPerOp: avg, Supersteps: int64(stats.Supersteps), Messages: stats.Messages,
				MessageBytes: stats.MessageBytes,
				MsgsPerSec:   float64(stats.Messages) / (float64(avg) / 1e9),
				InboxBytes:   eng.InboxBytes(), DenseBytes: dense,
			})
		}
	}

	for _, id := range engineQueries[workload] {
		sql := ""
		for _, q := range WorkloadQueries(workload) {
			if q.ID == id {
				sql = q.SQL
			}
		}
		if sql == "" {
			return nil, fmt.Errorf("bench: unknown engine query %q", id)
		}
		for _, w := range workerCounts {
			for _, mode := range EngineModes {
				sess := core.NewSession(g, bsp.Options{Workers: w, SerialMerge: mode == "serial"})
				if _, err := sess.Query(sql); err != nil { // shake out errors early
					return nil, fmt.Errorf("bench: %s on %d workers: %w", id, w, err)
				}
				var qerr error
				before := sess.Stats()
				runs := int64(0)
				avg := timedCell(cfg, func() {
					runs++
					if _, err := sess.Query(sql); err != nil && qerr == nil {
						qerr = err
					}
				})
				if qerr != nil {
					return nil, qerr
				}
				stats := sess.Stats().Sub(before)
				out = append(out, EngineResult{
					Workload: workload, Scale: scale, Program: id, Workers: w, Mode: mode,
					NsPerOp:      avg,
					Supersteps:   int64(stats.Supersteps) / runs,
					Messages:     stats.Messages / runs,
					MessageBytes: stats.MessageBytes / runs,
					MsgsPerSec:   float64(stats.Messages/runs) / (float64(avg) / 1e9),
					InboxBytes:   sess.InboxBytes(), DenseBytes: dense,
				})
			}
		}
	}
	return out, nil
}

// timedCell measures one benchmark cell with the noise controls small
// cells need: a warm-up call (pools fill, maps size), a GC fence so a
// previous cell's garbage is not collected on this cell's clock, and
// an iteration count scaled up until the cell covers ≥~200ms of work
// (capped at 200 iterations). Returns average ns per call.
func timedCell(cfg Config, call func()) int64 {
	call() // warm-up
	runtime.GC()
	iters := cfg.Runs
	probe := time.Now()
	call()
	if per := time.Since(probe); per < 50*time.Millisecond && per > 0 {
		more := int(200 * time.Millisecond / per)
		if more > 200 {
			more = 200
		}
		if iters < more {
			iters = more
		}
	}
	start := time.Now()
	for r := 0; r < iters; r++ {
		call()
	}
	return time.Since(start).Nanoseconds() / int64(iters)
}

// PrintEngine renders the message-plane comparison: serial vs sharded
// merge per (program, workers), plus the per-session inbox residency.
func PrintEngine(w io.Writer, results []EngineResult) {
	if len(results) == 0 {
		return
	}
	fmt.Fprintf(w, "\nMessage plane — %s SF %g: sharded vs serial communication stage\n",
		results[0].Workload, results[0].Scale)
	fmt.Fprintf(w, "(identical output and cost accounting; flood = all-edges synthetic, rest = TAG-join queries)\n")
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintf(w, "NOTE: GOMAXPROCS=1 — merge goroutines timeshare one core, so sharded ≈ serial here; the sharded win needs ≥2 cores.\n")
	}
	fmt.Fprintf(w, "%-8s %8s %12s %12s %9s %14s %12s\n",
		"program", "workers", "serial_ms", "sharded_ms", "speedup", "msgs/s_shard", "supersteps")
	type key struct {
		program string
		workers int
	}
	cells := map[key]map[string]EngineResult{}
	var order []key
	for _, r := range results {
		k := key{r.Program, r.Workers}
		if cells[k] == nil {
			cells[k] = map[string]EngineResult{}
			order = append(order, k)
		}
		cells[k][r.Mode] = r
	}
	for _, k := range order {
		serial, sharded := cells[k]["serial"], cells[k]["sharded"]
		speedup := 0.0
		if sharded.NsPerOp > 0 {
			speedup = float64(serial.NsPerOp) / float64(sharded.NsPerOp)
		}
		fmt.Fprintf(w, "%-8s %8d %12.3f %12.3f %8.2fx %14.0f %12d\n",
			k.program, k.workers,
			float64(serial.NsPerOp)/1e6, float64(sharded.NsPerOp)/1e6,
			speedup, sharded.MsgsPerSec, sharded.Supersteps)
	}
	// Residency summary in the serving configuration (1 worker per
	// session — concurrency comes from running many sessions).
	mem := results[len(results)-1]
	for _, r := range results {
		if r.Workers == 1 && r.Mode == "sharded" {
			mem = r
		}
	}
	ratio := 0.0
	if mem.InboxBytes > 0 {
		ratio = float64(mem.DenseBytes) / float64(mem.InboxBytes)
	}
	fmt.Fprintf(w, "Idle per-session inbox residency (1-worker serving session, after %s): sparse %d B vs dense %d B — %.1fx smaller (dense held O(|V|) headers before a single message; sparse is O(active frontier), trimmed when idle)\n",
		mem.Program, mem.InboxBytes, mem.DenseBytes, ratio)
}
