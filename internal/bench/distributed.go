package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cluster"
)

// DistResult is the Figure 16 / Tables 16-17 distributed comparison for
// one workload.
type DistResult struct {
	Workload string
	Scale    float64
	Machines int
	Queries  []DistQuery

	TagTotal, ShuffleTotal       time.Duration
	TagTraffic, ShuffleTraffic   int64
	TagMessages, ShuffleMessages int64
}

// DistQuery is one query on the simulated cluster.
type DistQuery struct {
	ID                     string
	TagTime, ShuffleTime   time.Duration
	TagBytes, ShuffleBytes int64
}

// RunDistributed executes a workload on the simulated cluster with both
// engines, recording runtimes and network traffic.
func RunDistributed(cfg Config, workload string, scale float64) (DistResult, error) {
	cfg = cfg.withDefaults()
	res := DistResult{Workload: workload, Scale: scale, Machines: cfg.Machines}
	cat := generate(workload, scale, cfg.Seed)
	c, err := cluster.New(cat, cfg.Machines)
	if err != nil {
		return res, err
	}
	for _, q := range WorkloadQueries(workload) {
		tr, err := c.RunTAG(q.ID, q.SQL)
		if err != nil {
			return res, err
		}
		sr, err := c.RunShuffle(q.ID, q.SQL)
		if err != nil {
			return res, err
		}
		res.Queries = append(res.Queries, DistQuery{
			ID: q.ID, TagTime: tr.Elapsed, ShuffleTime: sr.Elapsed,
			TagBytes: tr.NetworkBytes, ShuffleBytes: sr.NetworkBytes,
		})
		res.TagTotal += tr.Elapsed
		res.ShuffleTotal += sr.Elapsed
		res.TagTraffic += tr.NetworkBytes
		res.ShuffleTraffic += sr.NetworkBytes
		res.TagMessages += tr.NetworkMessages
		res.ShuffleMessages += sr.NetworkMessages
	}
	return res, nil
}

// PrintDistributed renders Figure 16 and the Tables 16/17 detail.
func PrintDistributed(w io.Writer, res DistResult) {
	fmt.Fprintf(w, "\nFigure 16 — distributed %s on %d machines, scale %.2g\n",
		res.Workload, res.Machines, res.Scale)
	fmt.Fprintf(w, "%-10s %14s %16s\n", "engine", "agg_time_ms", "net_traffic_kb")
	fmt.Fprintf(w, "%-10s %14.3f %16d\n", "tag", ms(res.TagTotal), res.TagTraffic/1024)
	fmt.Fprintf(w, "%-10s %14.3f %16d\n", "shuffle", ms(res.ShuffleTotal), res.ShuffleTraffic/1024)
	if res.TagTraffic > 0 {
		fmt.Fprintf(w, "traffic ratio shuffle/tag = %.2fx\n",
			float64(res.ShuffleTraffic)/float64(res.TagTraffic))
	}

	fmt.Fprintf(w, "\nTables 16/17 — per-query distributed runtimes (ms) and traffic (kb)\n")
	fmt.Fprintf(w, "%-6s %10s %10s %12s %12s\n", "query", "tag_ms", "shuffle_ms", "tag_kb", "shuffle_kb")
	for _, q := range res.Queries {
		fmt.Fprintf(w, "%-6s %10.3f %10.3f %12d %12d\n",
			q.ID, ms(q.TagTime), ms(q.ShuffleTime), q.TagBytes/1024, q.ShuffleBytes/1024)
	}
}
