package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
)

// Maintenance schemes compared by the serve-while-write benchmark:
//
//	generations  the epoch/swap scheme: a Maintainer clones the graph
//	             copy-on-write, applies each batch off to the side, and
//	             publishes it with an atomic pointer swap; readers are
//	             never blocked
//	lockstep     the PR-1 contract ("run maintenance only while no
//	             queries are in flight") taken once per batch: the writer
//	             quiesces (write-locks) the single shared graph, applies
//	             one batch in place, and reopens. Readers are admitted in
//	             the gaps between batches, so they limp along instead of
//	             starving — but every batch stalls the whole serving
//	             plane for its duration.
//	stopworld    the same contract held for the duration of the
//	             ingestion stream: exclusive access from the first batch
//	             to the last. Under a continuous write stream there is
//	             never an idle moment to reopen in, so readers serve
//	             zero queries for the whole window — the failure mode
//	             the generation scheme removes.
var MaintainModes = []string{"generations", "lockstep", "stopworld"}

// MaintainResult is the outcome of one serve-while-write measurement.
type MaintainResult struct {
	Workload  string
	Scale     float64
	Readers   int
	BatchRows int
	Window    time.Duration

	ReaderQPS  map[string]float64 // mode -> reader queries/second
	ReaderN    map[string]int64   // mode -> reader queries completed
	Batches    map[string]int64   // mode -> write batches applied
	RowsPerSec map[string]float64 // mode -> rows ingested/second
	WriteMS    map[string]float64 // mode -> mean per-batch apply time (ms)
	Epoch      map[string]uint64  // mode -> final epoch (generations only)
}

// maintainTable picks the ingestion target: the workload's fact table,
// so writes collide with what the reader queries scan.
var maintainTable = map[string]string{"tpch": "orders", "tpcds": "store_sales"}

// synthRows derives an insert batch from existing rows of rel, giving
// each row a fresh key in column 0 when it is an integer column (so the
// attribute fan-in stays realistic instead of piling every insert onto
// one value vertex).
func synthRows(rel *relation.Relation, n int, nextKey *int64) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		row := rel.Tuples[i%len(rel.Tuples)].Clone()
		if len(row) > 0 && row[0].Kind == relation.KindInt {
			row[0] = relation.Int(*nextKey)
			*nextKey++
		}
		out[i] = row
	}
	return out
}

// Maintain measures reader throughput while a writer applies insert
// batches continuously for the whole window, under each maintenance
// scheme, at every configured scale. Each (scale, scheme) cell gets a
// freshly built graph from the same catalog seed, `readers` closed-loop
// query clients, and one writer issuing `batchRows`-row batches back to
// back.
func Maintain(cfg Config, workload string, readers, batchRows int, window time.Duration) ([]MaintainResult, error) {
	cfg = cfg.withDefaults()
	if window <= 0 {
		window = 500 * time.Millisecond
	}
	if readers <= 0 {
		readers = 8
	}
	if batchRows <= 0 {
		batchRows = 200
	}
	table := maintainTable[workload]
	if table == "" {
		return nil, fmt.Errorf("bench: no maintain table for workload %q", workload)
	}

	ids := concurrencyQueries[workload]
	var queries []string
	for _, q := range WorkloadQueries(workload) {
		for _, id := range ids {
			if q.ID == id {
				queries = append(queries, q.SQL)
			}
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("bench: no maintain queries for workload %q", workload)
	}

	var out []MaintainResult
	for _, scale := range cfg.Scales {
		res := MaintainResult{
			Workload: workload, Scale: scale, Readers: readers, BatchRows: batchRows, Window: window,
			ReaderQPS: map[string]float64{}, ReaderN: map[string]int64{},
			Batches: map[string]int64{}, RowsPerSec: map[string]float64{},
			WriteMS: map[string]float64{}, Epoch: map[string]uint64{},
		}
		for _, mode := range MaintainModes {
			cat := generate(workload, scale, cfg.Seed)
			g, err := tag.Build(cat, nil)
			if err != nil {
				return out, err
			}
			if err := runMaintainMode(&res, mode, g, table, queries, readers, batchRows, window); err != nil {
				return out, fmt.Errorf("bench: %s at scale %g: %w", mode, scale, err)
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func runMaintainMode(res *MaintainResult, mode string, g *tag.Graph, table string,
	queries []string, readers, batchRows int, window time.Duration) error {
	var (
		batches       int64
		writeTotal    time.Duration
		writerElapsed time.Duration
		writeErr      error
		stop          = make(chan struct{})
		writerDone    = make(chan struct{})
		nextKey       = int64(1) << 40
	)
	rel := g.Catalog.Get(table)
	if rel == nil || rel.Len() == 0 {
		return fmt.Errorf("no rows in table %q", table)
	}
	// Snapshot templates before any writer mutates the catalog.
	templates := &relation.Relation{Name: rel.Name, Schema: rel.Schema,
		Tuples: append([]relation.Tuple(nil), rel.Tuples[:min(len(rel.Tuples), 4*batchRows)]...)}

	var run func(sql string) error
	switch mode {
	case "generations":
		srv := serve.New(g, serve.Options{Sessions: readers})
		maint := srv.Maintainer()
		go func() {
			defer close(writerDone)
			writerStart := time.Now()
			defer func() { writerElapsed = time.Since(writerStart) }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows := synthRows(templates, batchRows, &nextKey)
				start := time.Now()
				if _, err := maint.InsertBatch(table, rows); err != nil {
					writeErr = err
					return
				}
				writeTotal += time.Since(start)
				batches++
			}
		}()
		run = func(sql string) error {
			_, err := srv.Query(sql)
			return err
		}
		defer func() { res.Epoch[mode] = srv.Generation().Epoch }()
	case "lockstep", "stopworld":
		var mu sync.RWMutex
		pool := serve.NewPool(g, bsp.Options{Workers: 1}, readers)
		perBatch := mode == "lockstep"
		go func() {
			defer close(writerDone)
			writerStart := time.Now()
			defer func() { writerElapsed = time.Since(writerStart) }()
			if !perBatch {
				// Quiesce once for the whole ingestion stream: the PR-1
				// contract forbids queries in flight during maintenance, and
				// a continuous stream has no idle moment to reopen in.
				mu.Lock()
				defer mu.Unlock()
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows := synthRows(templates, batchRows, &nextKey)
				start := time.Now()
				if perBatch {
					mu.Lock()
				}
				_, err := g.InsertBatch(table, rows)
				if perBatch {
					mu.Unlock()
				}
				if err != nil {
					writeErr = err
					return
				}
				writeTotal += time.Since(start)
				batches++
			}
		}()
		run = func(sql string) error {
			mu.RLock()
			defer mu.RUnlock()
			sess := pool.Acquire()
			defer pool.Release(sess)
			_, err := sess.Query(sql)
			return err
		}
	default:
		return fmt.Errorf("unknown maintain mode %q", mode)
	}

	// Stop the writer at the same deadline the readers are measured to,
	// not after closedLoopUntil's reader-abandonment grace period — the
	// stop-the-world mode always burns that full grace (its readers are
	// parked on the writer's lock), which would otherwise inflate the
	// writer's measured window ~3x.
	timer := time.AfterFunc(window, func() { close(stop) })
	defer timer.Stop()
	count, elapsed, readersDone, err := closedLoopUntil(readers, window, queries, run)
	<-writerDone
	// Now that the writer has released any lock it held, abandoned
	// readers finish their one in-flight query and exit; wait for them so
	// they cannot burn CPU inside the next (scale, mode) cell's window.
	<-readersDone
	if err != nil {
		return err
	}
	if writeErr != nil {
		return writeErr
	}
	res.ReaderN[mode] = count
	res.ReaderQPS[mode] = float64(count) / elapsed.Seconds()
	res.Batches[mode] = batches
	if writerElapsed > 0 {
		res.RowsPerSec[mode] = float64(batches*int64(batchRows)) / writerElapsed.Seconds()
	}
	if batches > 0 {
		res.WriteMS[mode] = float64(writeTotal.Microseconds()) / 1e3 / float64(batches)
	}
	return nil
}

// closedLoopUntil is closedLoop, except (a) only queries completing
// before the deadline are counted, and (b) reader goroutines that would
// block forever on a starved lock are abandoned at the deadline rather
// than awaited: the stop-the-world baseline intentionally never lets
// them in, so joining them here would deadlock the benchmark. The
// returned channel closes when the last reader actually exits; the
// caller waits on it after unblocking them (by stopping the writer) so
// stragglers cannot contaminate a later measurement.
func closedLoopUntil(n int, window time.Duration, queries []string, run func(string) error) (int64, time.Duration, <-chan struct{}, error) {
	var (
		mu      sync.Mutex
		count   int64
		stopped bool
		firstEr error
	)
	start := time.Now()
	done := make(chan struct{})
	var live sync.WaitGroup
	for c := 0; c < n; c++ {
		live.Add(1)
		go func(c int) {
			defer live.Done()
			for i := c; ; i++ {
				mu.Lock()
				s := stopped
				mu.Unlock()
				if s {
					return
				}
				err := run(queries[i%len(queries)])
				mu.Lock()
				if err != nil {
					if firstEr == nil {
						firstEr = err
					}
					mu.Unlock()
					return
				}
				if !stopped {
					count++
				}
				mu.Unlock()
			}
		}(c)
	}
	go func() {
		live.Wait()
		close(done)
	}()
	time.Sleep(window)
	mu.Lock()
	stopped = true
	elapsed := time.Since(start)
	mu.Unlock()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		// Readers still parked on the writer's lock; count what finished.
	}
	mu.Lock()
	defer mu.Unlock()
	return count, elapsed, done, firstEr
}

// PrintMaintain renders the serve-while-write comparison.
func PrintMaintain(w io.Writer, r MaintainResult) {
	fmt.Fprintf(w, "\nServe-while-write — %s SF %g, %d readers, continuous %d-row insert batches, %v window\n",
		r.Workload, r.Scale, r.Readers, r.BatchRows, r.Window)
	fmt.Fprintf(w, "(generations = clone/apply/swap per batch; lockstep = PR-1 quiescence per batch; stopworld = quiescence held for the ingestion stream)\n")
	fmt.Fprintf(w, "%-12s %12s %10s %12s %14s %8s\n",
		"mode", "reader_qps", "batches", "rows_per_s", "avg_write_ms", "epochs")
	for _, mode := range MaintainModes {
		fmt.Fprintf(w, "%-12s %12.1f %10d %12.0f %14.2f %8d\n",
			mode, r.ReaderQPS[mode], r.Batches[mode], r.RowsPerSec[mode],
			r.WriteMS[mode], r.Epoch[mode])
	}
}
