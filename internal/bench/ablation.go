package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/tag"
	"repro/internal/tpch"
)

// ThetaResult is one point of the heavy/light threshold sweep (§6.1.2).
type ThetaResult struct {
	Theta    float64
	Elapsed  time.Duration
	Messages int64
	Rows     int
}

// AblationTheta sweeps the heavy/light threshold θ on the 5-way cycle
// query (TPC-H q5). θ=0 is the paper's √IN default; very small θ makes
// everything heavy, very large θ makes everything light.
func AblationTheta(cfg Config, scale float64, thetas []float64) ([]ThetaResult, error) {
	cfg = cfg.withDefaults()
	cat := tpch.Generate(scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	q := tpch.ByID("q5")
	var out []ThetaResult
	for _, th := range thetas {
		ex := core.NewExecutor(g, bsp.Options{Workers: cfg.Workers})
		ex.ForceCyclePrePass = true // exercise §6.2 even on PK-FK cycles
		ex.Theta = th
		start := time.Now()
		res, err := ex.Query(q.SQL)
		if err != nil {
			return nil, err
		}
		out = append(out, ThetaResult{
			Theta: th, Elapsed: time.Since(start),
			Messages: ex.Stats().Messages, Rows: res.Len(),
		})
	}
	return out, nil
}

// PrintTheta renders the θ sweep.
func PrintTheta(w io.Writer, results []ThetaResult) {
	fmt.Fprintf(w, "\nAblation — heavy/light θ sweep on TPC-H q5 (5-way cycle)\n")
	fmt.Fprintf(w, "%-12s %10s %12s %8s\n", "theta", "time_ms", "messages", "rows")
	for _, r := range results {
		label := fmt.Sprintf("%.3g", r.Theta)
		if r.Theta == 0 {
			label = "sqrt(IN)"
		}
		fmt.Fprintf(w, "%-12s %10.3f %12d %8d\n", label, ms(r.Elapsed), r.Messages, r.Rows)
	}
}

// CartesianResult compares Algorithms A and B of §6.3.
type CartesianResult struct {
	Algorithm string
	Elapsed   time.Duration
	Messages  int64
	Bytes     int64
	Rows      int
}

// AblationCartesian runs nation × orders with both algorithms.
func AblationCartesian(cfg Config, scale float64) ([]CartesianResult, error) {
	cfg = cfg.withDefaults()
	cat := tpch.Generate(scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	var out []CartesianResult
	for _, alg := range []string{"A", "B"} {
		ex := core.NewExecutor(g, bsp.Options{Workers: cfg.Workers})
		start := time.Now()
		var rows int
		if alg == "A" {
			r, err := ex.CartesianA("nation", "orders")
			if err != nil {
				return nil, err
			}
			rows = r.Len()
		} else {
			r, err := ex.CartesianB("nation", "orders")
			if err != nil {
				return nil, err
			}
			rows = r.Len()
		}
		st := ex.Stats()
		out = append(out, CartesianResult{
			Algorithm: alg, Elapsed: time.Since(start),
			Messages: st.Messages, Bytes: st.MessageBytes, Rows: rows,
		})
	}
	return out, nil
}

// PrintCartesian renders the Cartesian ablation.
func PrintCartesian(w io.Writer, results []CartesianResult) {
	fmt.Fprintf(w, "\nAblation — Cartesian product Algorithm A (centralized) vs B (distributed), §6.3\n")
	fmt.Fprintf(w, "%-10s %10s %12s %12s %8s\n", "algorithm", "time_ms", "messages", "msg_kb", "rows")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %10.3f %12d %12d %8d\n", r.Algorithm, ms(r.Elapsed), r.Messages, r.Bytes/1024, r.Rows)
	}
}

// AggPathResult compares the LA and GA aggregation paths on the same
// query (§7): LA completes each group at its attribute vertex in parallel
// while GA funnels every partial into the single aggregator vertex.
type AggPathResult struct {
	Mode    string
	Elapsed time.Duration
	Rows    int
}

// AblationAggPath runs a local-aggregation query (TPC-H q4) through both
// finalization paths. This is the LA-vs-GA effect §8.3 measures: the
// global aggregator is a sequential bottleneck.
func AblationAggPath(cfg Config, scale float64) ([]AggPathResult, error) {
	cfg = cfg.withDefaults()
	cat := tpch.Generate(scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	q := tpch.ByID("q4")
	var out []AggPathResult
	for _, force := range []bool{false, true} {
		ex := core.NewExecutor(g, bsp.Options{Workers: cfg.Workers})
		ex.ForceGlobalAgg = force
		if _, err := ex.Query(q.SQL); err != nil { // warm-up
			return nil, err
		}
		start := time.Now()
		var rows int
		for r := 0; r < cfg.Runs; r++ {
			res, err := ex.Query(q.SQL)
			if err != nil {
				return nil, err
			}
			rows = res.Len()
		}
		mode := "local"
		if force {
			mode = "global"
		}
		out = append(out, AggPathResult{Mode: mode, Elapsed: time.Since(start) / time.Duration(cfg.Runs), Rows: rows})
	}
	return out, nil
}

// PrintAggPath renders the aggregation-path ablation.
func PrintAggPath(w io.Writer, results []AggPathResult) {
	fmt.Fprintf(w, "\nAblation — LA (per-attribute-vertex) vs forced GA (global aggregator) on TPC-H q4 (§7)\n")
	fmt.Fprintf(w, "%-8s %10s %8s\n", "path", "time_ms", "groups")
	for _, r := range results {
		fmt.Fprintf(w, "%-8s %10.3f %8d\n", r.Mode, ms(r.Elapsed), r.Rows)
	}
}

// WorkerResult is one point of the thread-parallelism sweep.
type WorkerResult struct {
	Workers int
	Elapsed time.Duration
}

// AblationWorkers measures intra-server thread scaling (the paper's
// single-server premise) on a join-heavy subset of TPC-H.
func AblationWorkers(cfg Config, scale float64, workers []int) ([]WorkerResult, error) {
	cfg = cfg.withDefaults()
	cat := tpch.Generate(scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	subset := []string{"q3", "q5", "q10", "q12"}
	var out []WorkerResult
	for _, wk := range workers {
		ex := core.NewExecutor(g, bsp.Options{Workers: wk})
		// Warm-up.
		for _, id := range subset {
			if _, err := ex.Query(tpch.ByID(id).SQL); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		for _, id := range subset {
			if _, err := ex.Query(tpch.ByID(id).SQL); err != nil {
				return nil, err
			}
		}
		out = append(out, WorkerResult{Workers: wk, Elapsed: time.Since(start)})
	}
	return out, nil
}

// PrintWorkers renders the worker sweep.
func PrintWorkers(w io.Writer, results []WorkerResult) {
	fmt.Fprintf(w, "\nAblation — thread-parallelism sweep (TPC-H q3/q5/q10/q12)\n")
	fmt.Fprintf(w, "%-8s %10s %10s\n", "workers", "time_ms", "speedup")
	base := results[0].Elapsed
	for _, r := range results {
		fmt.Fprintf(w, "%-8d %10.3f %9.2fx\n", r.Workers, ms(r.Elapsed), float64(base)/float64(r.Elapsed))
	}
}

// PolicyResult compares TAG materialization policies (§3's discussion).
type PolicyResult struct {
	Policy    string
	BuildTime time.Duration
	Bytes     int
	AttrVerts int
}

// AblationPolicy compares the default materialization policy against
// materializing every attribute.
func AblationPolicy(cfg Config, scale float64) ([]PolicyResult, error) {
	cfg = cfg.withDefaults()
	var out []PolicyResult
	for _, p := range []struct {
		name   string
		policy tag.Policy
	}{{"default", nil}, {"all", tag.MaterializeAll}} {
		cat := tpch.Generate(scale, cfg.Seed)
		start := time.Now()
		g, err := tag.Build(cat, p.policy)
		if err != nil {
			return nil, err
		}
		out = append(out, PolicyResult{
			Policy: p.name, BuildTime: time.Since(start),
			Bytes: g.ByteSize(), AttrVerts: g.NumAttrVertices(),
		})
	}
	return out, nil
}

// PrintPolicy renders the policy ablation.
func PrintPolicy(w io.Writer, results []PolicyResult) {
	fmt.Fprintf(w, "\nAblation — TAG materialization policy (§3): default (skip floats/comments) vs all\n")
	fmt.Fprintf(w, "%-10s %10s %12s %12s\n", "policy", "build_ms", "size_kb", "attr_verts")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %10.3f %12d %12d\n", r.Policy, ms(r.BuildTime), r.Bytes/1024, r.AttrVerts)
	}
}
