package bench

import (
	"fmt"
	"io"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/tag"
)

// CombineModes compared by the message-plane combiner experiment: the
// same session with Send-time folding disabled ("nocombine", every
// logical message materialized in the inbox) vs. the combined plane
// ("combine", at most one message per (active vertex, slot)). Rows and
// paper-facing Stats are byte-identical either way; peak inbox memory,
// merge time and wall time differ on aggregate-heavy queries.
var CombineModes = []string{"nocombine", "combine"}

// combineQueries are the aggregate-heavy queries the experiment times:
// scalar/global aggregations funnel every survivor's partials into the
// single aggregator vertex (the §8.3 GA bottleneck the combiner
// collapses), and the LA queries fan partials into attribute vertices.
var combineQueries = map[string][]string{
	"tpch":  {"q1", "q3", "q5", "q6", "q9", "q18"},
	"tpcds": {"q22", "q32", "q56", "q74"},
}

// CombineResult is one cell of the combiner experiment.
type CombineResult struct {
	Workload         string  `json:"workload"`
	Scale            float64 `json:"scale"`
	Query            string  `json:"query"`
	Workers          int     `json:"workers"`
	Mode             string  `json:"mode"` // "nocombine" | "combine"
	NsPerOp          int64   `json:"ns_per_op"`
	MergeNsPerOp     int64   `json:"merge_ns_per_op"`
	Messages         int64   `json:"messages"`          // logical sends (identical across modes)
	MessagesCombined int64   `json:"messages_combined"` // folded en route (0 for nocombine)
	InboxBytesSaved  int64   `json:"inbox_bytes_saved"` // Message slots never materialized
	PeakInboxBytes   int64   `json:"peak_inbox_bytes"`  // largest per-superstep inbox footprint
}

// CombineBench measures the Send-time combiner against the uncombined
// plane on aggregate-heavy workload queries: wall time, communication-
// stage time, peak inbox residency and the fold counters, per worker
// count. One graph (cfg.Scales[0]) is shared by every cell; each cell
// gets a fresh session so peaks don't bleed across modes.
func CombineBench(cfg Config, workload string, workerCounts []int) ([]CombineResult, error) {
	cfg = cfg.withDefaults()
	scale := cfg.Scales[0]
	cat := generate(workload, scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}

	var out []CombineResult
	for _, id := range combineQueries[workload] {
		sql := ""
		for _, q := range WorkloadQueries(workload) {
			if q.ID == id {
				sql = q.SQL
			}
		}
		if sql == "" {
			return nil, fmt.Errorf("bench: unknown combine query %q", id)
		}
		for _, w := range workerCounts {
			for _, mode := range CombineModes {
				sess := core.NewSession(g, bsp.Options{
					Workers: w, NoCombine: mode == "nocombine", Profile: true,
				})
				if _, err := sess.Query(sql); err != nil { // shake out errors early
					return nil, fmt.Errorf("bench: %s on %d workers: %w", id, w, err)
				}
				var qerr error
				before := sess.Stats()
				mergeBefore := sess.MergeDuration()
				runs := int64(0)
				avg := timedCell(cfg, func() {
					runs++
					if _, err := sess.Query(sql); err != nil && qerr == nil {
						qerr = err
					}
				})
				if qerr != nil {
					return nil, qerr
				}
				stats := sess.Stats().Sub(before)
				out = append(out, CombineResult{
					Workload: workload, Scale: scale, Query: id, Workers: w, Mode: mode,
					NsPerOp:          avg,
					MergeNsPerOp:     int64(sess.MergeDuration()-mergeBefore) / runs,
					Messages:         stats.Messages / runs,
					MessagesCombined: stats.MessagesCombined / runs,
					InboxBytesSaved:  stats.InboxBytesSaved / runs,
					PeakInboxBytes:   sess.PeakInboxBytes(),
				})
			}
		}
	}
	return out, nil
}

// PrintCombine renders the combiner comparison: per (query, workers),
// the uncombined vs combined plane on wall time, merge time, peak inbox
// residency and the fraction of logical messages folded en route.
func PrintCombine(w io.Writer, results []CombineResult) {
	if len(results) == 0 {
		return
	}
	fmt.Fprintf(w, "\nMessage-plane combiners — %s SF %g: fold at Send time vs materialize every message\n",
		results[0].Workload, results[0].Scale)
	fmt.Fprintf(w, "(identical rows and paper-facing cost measures; aggregate-heavy TAG-join queries)\n")
	fmt.Fprintf(w, "%-6s %7s %10s %10s %8s %9s %9s %8s %11s %11s %9s\n",
		"query", "workers", "plain_ms", "comb_ms", "speedup",
		"merge_pms", "merge_cms", "folded%", "peak_plainB", "peak_combB", "peakRatio")
	type key struct {
		query   string
		workers int
	}
	cells := map[key]map[string]CombineResult{}
	var order []key
	for _, r := range results {
		k := key{r.Query, r.Workers}
		if cells[k] == nil {
			cells[k] = map[string]CombineResult{}
			order = append(order, k)
		}
		cells[k][r.Mode] = r
	}
	for _, k := range order {
		plain, comb := cells[k]["nocombine"], cells[k]["combine"]
		speedup, folded, peakRatio := 0.0, 0.0, 0.0
		if comb.NsPerOp > 0 {
			speedup = float64(plain.NsPerOp) / float64(comb.NsPerOp)
		}
		if comb.Messages > 0 {
			folded = 100 * float64(comb.MessagesCombined) / float64(comb.Messages)
		}
		if comb.PeakInboxBytes > 0 {
			peakRatio = float64(plain.PeakInboxBytes) / float64(comb.PeakInboxBytes)
		}
		fmt.Fprintf(w, "%-6s %7d %10.3f %10.3f %7.2fx %9.3f %9.3f %7.1f%% %11d %11d %8.2fx\n",
			k.query, k.workers,
			float64(plain.NsPerOp)/1e6, float64(comb.NsPerOp)/1e6, speedup,
			float64(plain.MergeNsPerOp)/1e6, float64(comb.MergeNsPerOp)/1e6,
			folded, plain.PeakInboxBytes, comb.PeakInboxBytes, peakRatio)
	}
}
