package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/serve"
	"repro/internal/tag"
)

// The binary-protocol experiment answers the serving-cost question:
// with execution identical on both surfaces (they share one
// serve.Server), how much of a point query's serving cost is the
// HTTP+JSON envelope? Binary and JSON clients drive the same two
// statements — a point lookup whose execution is microseconds (the
// envelope dominates) and a scan returning thousands of rows (result
// encoding dominates) — closed-loop at several client counts, over
// persistent connections on both sides.

// ProtoSurfaces in reporting order.
var ProtoSurfaces = []string{"binary", "http"}

// protoStatements maps a workload to its point and scan statements.
var protoStatements = map[string]map[string]string{
	"tpch": {
		"point": "SELECT n_name, n_regionkey FROM nation WHERE n_nationkey = 7",
		"scan":  "SELECT c_custkey, c_acctbal FROM customer WHERE c_acctbal > 9000",
	},
	"tpcds": {
		"point": "SELECT w_state FROM warehouse WHERE w_warehouse_sk = 1",
		"scan":  "SELECT c_customer_sk, c_birth_year FROM customer WHERE c_birth_year > 1980",
	},
}

// ProtoResult is one (statement kind, client count) cell of the
// binary-vs-JSON comparison.
type ProtoResult struct {
	Workload string
	Kind     string // "point" or "scan"
	Clients  int
	QPS      map[string]float64       // surface -> aggregate queries/second
	P50      map[string]time.Duration // surface -> median latency
	P99      map[string]time.Duration // surface -> p99 latency
}

// Speedup returns QPS[binary] / QPS[http].
func (r ProtoResult) Speedup() float64 {
	if r.QPS["http"] <= 0 {
		return 0
	}
	return r.QPS["binary"] / r.QPS["http"]
}

// ProtoBench serves one frozen TAG graph over both protocols at once
// and measures closed-loop QPS and latency quantiles per surface at
// each client count. Before timing anything it proves the surfaces
// interchangeable: every workload query is executed over both and the
// binary rows, rendered exactly as /query renders JSON cells, must be
// byte-identical to the HTTP response rows. Returns the per-cell
// results plus the number of identity-checked queries.
func ProtoBench(cfg Config, workload string, clients []int, window time.Duration) ([]ProtoResult, int, error) {
	cfg = cfg.withDefaults()
	if window <= 0 {
		window = 300 * time.Millisecond
	}
	stmts, ok := protoStatements[workload]
	if !ok {
		return nil, 0, fmt.Errorf("bench: no proto statements for workload %q", workload)
	}
	maxClients := 1
	for _, n := range clients {
		if n > maxClients {
			maxClients = n
		}
	}

	// The identity sweep runs the full query set, so it gets a bounded
	// scale: correctness does not need the timing scale's row volume.
	identityScale := cfg.Scales[0]
	if identityScale > 0.05 {
		identityScale = 0.05
	}
	checked, err := protoIdentityCheck(cfg, workload, identityScale)
	if err != nil {
		return nil, 0, err
	}

	env, err := newProtoEnv(cfg, workload, cfg.Scales[0], maxClients)
	if err != nil {
		return nil, 0, err
	}
	defer env.close()

	var out []ProtoResult
	for _, kind := range []string{"point", "scan"} {
		stmt := stmts[kind]
		// Correctness gate before timing.
		if _, err := env.srv.Query(stmt); err != nil {
			return nil, 0, fmt.Errorf("bench: %s statement failed: %w", kind, err)
		}
		for _, n := range clients {
			res := ProtoResult{Workload: workload, Kind: kind, Clients: n,
				QPS: map[string]float64{}, P50: map[string]time.Duration{}, P99: map[string]time.Duration{}}
			for _, surface := range ProtoSurfaces {
				run, cleanup, err := env.runner(surface, n, stmt)
				if err != nil {
					return nil, 0, err
				}
				count, elapsed, lats, err := protoLoop(n, window, run)
				cleanup()
				if err != nil {
					return nil, 0, fmt.Errorf("bench: %s %s at %d clients: %w", surface, kind, n, err)
				}
				res.QPS[surface] = float64(count) / elapsed.Seconds()
				res.P50[surface] = quantileDuration(lats, 0.50)
				res.P99[surface] = quantileDuration(lats, 0.99)
			}
			out = append(out, res)
		}
	}
	return out, checked, nil
}

// protoEnv is one serve.Server exposed over live TCP on both surfaces.
type protoEnv struct {
	srv      *serve.Server
	hs       *http.Server
	ps       *proto.Server
	httpAddr string
	baseURL  string
}

func newProtoEnv(cfg Config, workload string, scale float64, sessions int) (*protoEnv, error) {
	cat := generate(workload, scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	// Sessions cover the widest client count so admission control never
	// shapes the measurement.
	srv := serve.New(g, serve.Options{Sessions: sessions + 2})
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	protoLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		httpLn.Close()
		return nil, err
	}
	env := &protoEnv{
		srv:      srv,
		hs:       &http.Server{Handler: serve.Handler(srv)},
		ps:       proto.Serve(protoLn, srv),
		httpAddr: httpLn.Addr().String(),
	}
	env.baseURL = "http://" + env.httpAddr
	go env.hs.Serve(httpLn)
	return env, nil
}

func (e *protoEnv) close() {
	e.hs.Close()
	e.ps.Close()
}

// runner builds the per-client query function for one surface, plus a
// cleanup releasing its connections. Both surfaces use persistent
// connections (one per client) and fully decode their responses — the
// comparison is end-to-end client cost, not just server time.
func (e *protoEnv) runner(surface string, n int, stmt string) (func(c int) error, func(), error) {
	switch surface {
	case "binary":
		conns := make([]*proto.Client, n)
		for i := range conns {
			c, err := proto.Dial(e.ps.Addr().String())
			if err != nil {
				return nil, nil, err
			}
			conns[i] = c
			// Prime the fingerprint cache: steady-state point serving runs
			// on the prepared path, which is the path under test.
			if _, err := c.Query(stmt); err != nil {
				return nil, nil, err
			}
		}
		run := func(c int) error {
			_, err := conns[c].Query(stmt)
			return err
		}
		return run, func() {
			for _, c := range conns {
				c.Close()
			}
		}, nil
	case "http":
		tr := &http.Transport{MaxIdleConns: n, MaxIdleConnsPerHost: n}
		hc := &http.Client{Transport: tr}
		u := e.baseURL + "/query?sql=" + url.QueryEscape(stmt)
		run := func(c int) error {
			resp, err := hc.Get(u)
			if err != nil {
				return err
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d: %s", resp.StatusCode, body)
			}
			var qr serve.QueryResponse
			return json.Unmarshal(body, &qr)
		}
		return run, tr.CloseIdleConnections, nil
	}
	return nil, nil, fmt.Errorf("bench: unknown proto surface %q", surface)
}

// protoLoop drives n clients closed-loop (client c calls run(c)
// back-to-back) for the window, collecting per-request latencies.
func protoLoop(n int, window time.Duration, run func(c int) error) (int64, time.Duration, []time.Duration, error) {
	var (
		count   int64
		stop    int32
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	perClient := make([][]time.Duration, n)
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for atomic.LoadInt32(&stop) == 0 {
				t0 := time.Now()
				if err := run(c); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
				perClient[c] = append(perClient[c], time.Since(t0))
				atomic.AddInt64(&count, 1)
			}
		}(c)
	}
	time.Sleep(window)
	atomic.StoreInt32(&stop, 1)
	wg.Wait()
	var lats []time.Duration
	for _, l := range perClient {
		lats = append(lats, l...)
	}
	return atomic.LoadInt64(&count), time.Since(start), lats, firstEr
}

// quantileDuration returns the q-quantile of samples (sorted in place).
func quantileDuration(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q * float64(len(samples)-1))
	return samples[i]
}

// protoIdentityCheck runs every workload query over both surfaces of
// one server and requires the binary rows — rendered with the same
// JSONValue mapping /query uses — to marshal to exactly the bytes the
// HTTP response carried, row for row. This is the interchangeability
// proof: a client migrating to the binary protocol sees the identical
// result set, large-int string forms and all.
func protoIdentityCheck(cfg Config, workload string, scale float64) (int, error) {
	env, err := newProtoEnv(cfg, workload, scale, 2)
	if err != nil {
		return 0, err
	}
	defer env.close()
	bc, err := proto.Dial(env.ps.Addr().String())
	if err != nil {
		return 0, err
	}
	defer bc.Close()
	hc := &http.Client{}

	checked := 0
	for _, q := range WorkloadQueries(workload) {
		bres, err := bc.Query(q.SQL)
		if err != nil {
			return checked, fmt.Errorf("bench: %s over binary: %w", q.ID, err)
		}
		resp, err := hc.Get(env.baseURL + "/query?sql=" + url.QueryEscape(q.SQL))
		if err != nil {
			return checked, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return checked, err
		}
		if resp.StatusCode != http.StatusOK {
			return checked, fmt.Errorf("bench: %s over http: status %d: %s", q.ID, resp.StatusCode, body)
		}
		var hres struct {
			Rows []json.RawMessage `json:"rows"`
		}
		if err := json.Unmarshal(body, &hres); err != nil {
			return checked, err
		}
		if len(hres.Rows) != bres.Rows.Len() {
			return checked, fmt.Errorf("bench: %s: binary returned %d rows, http %d",
				q.ID, bres.Rows.Len(), len(hres.Rows))
		}
		for i, tuple := range bres.Rows.Tuples {
			cells := make([]any, len(tuple))
			for j, v := range tuple {
				cells[j] = serve.JSONValue(v)
			}
			mine, err := json.Marshal(cells)
			if err != nil {
				return checked, err
			}
			if !bytes.Equal(mine, hres.Rows[i]) {
				return checked, fmt.Errorf("bench: %s row %d differs across protocols:\nbinary %s\nhttp   %s",
					q.ID, i, mine, hres.Rows[i])
			}
		}
		checked++
	}
	return checked, nil
}

// PrintProto renders the binary-vs-JSON table for one workload.
func PrintProto(w io.Writer, workload string, checked int, results []ProtoResult) {
	fmt.Fprintf(w, "\nBinary protocol vs HTTP JSON — closed-loop serving over one frozen %s TAG graph\n", workload)
	fmt.Fprintf(w, "(%d workload queries verified byte-identical across protocols before timing)\n", checked)
	fmt.Fprintf(w, "%-6s %-8s %12s %12s %9s %11s %11s %11s %11s\n",
		"kind", "clients", "binary_qps", "http_qps", "speedup", "bin_p50", "http_p50", "bin_p99", "http_p99")
	for _, r := range results {
		fmt.Fprintf(w, "%-6s %-8d %12.0f %12.0f %8.2fx %11v %11v %11v %11v\n",
			r.Kind, r.Clients, r.QPS["binary"], r.QPS["http"], r.Speedup(),
			r.P50["binary"].Round(time.Microsecond), r.P50["http"].Round(time.Microsecond),
			r.P99["binary"].Round(time.Microsecond), r.P99["http"].Round(time.Microsecond))
	}
}
