package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
)

// maintain2 measures what pinning buys: a pinned query's answer is
// maintained across write epochs by folding each batch's delta into the
// cached aggregate state (internal/core FoldDelta), so reading it is a
// map lookup instead of a BSP run, and advancing it costs O(delta)
// instead of O(graph). The experiment pins a small mix of
// fold-friendly TPC-H shapes, streams insert batches into orders and
// lineitem, and reports four latencies per scale:
//
//	hot read     SubscriptionAnswer on a pinned fingerprint — the
//	             latency a subscribed client pays after every epoch
//	cold read    the same SQL through srv.Query — a full BSP run, what
//	             the client would pay without the pin
//	fold/epoch   the write path's subscription-refresh cost per epoch
//	             advance (everything InsertBatch spends beyond the
//	             clone/apply/publish cycle itself)
//	cold/epoch   the naive maintenance baseline: re-running every
//	             pinned query cold once per epoch
//
// The acceptance claim is hot << cold on both axes, with the stats
// counters proving the epochs really advanced through the incremental
// path (hits, not fallbacks).

// maintain2Queries are the pinned shapes: single-table group-aggregate,
// join count, three-way join group-aggregate, and a scalar MAX. All
// aggregate over exact-mergeable states (COUNT/SUM over ints, MAX), so
// an eligible query folds rather than hitting the float-SUM rebuild
// guard.
var maintain2Queries = []string{
	"SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority",
	"SELECT COUNT(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey",
	"SELECT c_mktsegment, COUNT(*), SUM(l_quantity) FROM customer, orders, lineitem WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey GROUP BY c_mktsegment",
	"SELECT MAX(o_totalprice) FROM orders",
}

// Maintain2Result is the outcome of one pinned-maintenance measurement.
type Maintain2Result struct {
	Workload  string
	Scale     float64
	BatchRows int
	Rounds    int // write rounds; each round publishes two epochs (orders, lineitem)
	Pins      int
	Eligible  int // pins maintained incrementally (the rest recompute per epoch)

	HotReadUS   float64 // mean SubscriptionAnswer latency, µs
	ColdReadMS  float64 // mean srv.Query latency on the same SQL, ms
	FoldMS      float64 // mean subscription-refresh cost per epoch advance, ms
	ColdEpochMS float64 // mean cost of re-running all pins cold once, ms

	IncHits      int64 // epoch advances folded incrementally
	IncFallbacks int64 // epoch advances that re-ran cold
	Epochs       uint64
}

// ReadSpeedup is cold read over hot read (same units).
func (r Maintain2Result) ReadSpeedup() float64 {
	if r.HotReadUS == 0 {
		return 0
	}
	return r.ColdReadMS * 1e3 / r.HotReadUS
}

// MaintainSpeedup is naive per-epoch recompute over incremental fold.
func (r Maintain2Result) MaintainSpeedup() float64 {
	if r.FoldMS == 0 {
		return 0
	}
	return r.ColdEpochMS / r.FoldMS
}

// Maintain2 runs the pinned-query maintenance benchmark on the TPC-H
// workload at every configured scale.
func Maintain2(cfg Config, batchRows, rounds int) ([]Maintain2Result, error) {
	cfg = cfg.withDefaults()
	if batchRows <= 0 {
		batchRows = 500
	}
	if rounds <= 0 {
		rounds = 8
	}
	var out []Maintain2Result
	for _, scale := range cfg.Scales {
		res, err := runMaintain2(scale, cfg.Seed, batchRows, rounds)
		if err != nil {
			return out, fmt.Errorf("bench: maintain2 at scale %g: %w", scale, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func runMaintain2(scale float64, seed int64, batchRows, rounds int) (Maintain2Result, error) {
	res := Maintain2Result{Workload: "tpch", Scale: scale, BatchRows: batchRows, Rounds: rounds}
	cat := generate("tpch", scale, seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return res, err
	}
	srv := serve.New(g, serve.Options{Sessions: 2})
	maint := srv.Maintainer()

	var fps []string
	for _, q := range maintain2Queries {
		sub, err := srv.Subscribe(q)
		if err != nil {
			return res, fmt.Errorf("pin %q: %w", q, err)
		}
		if sub.Eligible {
			res.Eligible++
		}
		fps = append(fps, sub.FP)
	}
	res.Pins = len(fps)

	// Insert templates, snapshotted before any write mutates the catalog.
	// Orders rows get a fresh primary key (synthRows rewrites int column
	// 0); lineitem rows are cloned verbatim so their l_orderkey keeps
	// joining existing orders and the pinned join answers actually move.
	ordersRel, lineitemRel := g.Catalog.Get("orders"), g.Catalog.Get("lineitem")
	if ordersRel == nil || ordersRel.Len() == 0 || lineitemRel == nil || lineitemRel.Len() == 0 {
		return res, fmt.Errorf("empty orders/lineitem at scale %g", scale)
	}
	ordersTmpl := &relation.Relation{Name: ordersRel.Name, Schema: ordersRel.Schema,
		Tuples: append([]relation.Tuple(nil), ordersRel.Tuples[:min(len(ordersRel.Tuples), 4*batchRows)]...)}
	lineTmpl := append([]relation.Tuple(nil), lineitemRel.Tuples[:min(len(lineitemRel.Tuples), 4*batchRows)]...)
	nextKey := int64(1) << 40

	var (
		foldTotal, coldEpochTotal, coldReadTotal time.Duration
		hotReadTotal                             time.Duration
		epochAdvances, coldReads, hotReads       int
	)
	const hotReps = 64
	for round := 0; round < rounds; round++ {
		for _, ins := range []struct {
			table string
			rows  []relation.Tuple
		}{
			{"orders", synthRows(ordersTmpl, batchRows, &nextKey)},
			{"lineitem", cloneRows(lineTmpl, batchRows, round)},
		} {
			start := time.Now()
			wres, err := maint.InsertBatch(ins.table, ins.rows)
			if err != nil {
				return res, err
			}
			// The lone writer's wall time past the clone/apply/publish cycle
			// (WriteResult.Elapsed) is the subscription refresh: WAL and
			// checkpointing are off, and nothing else queues.
			foldTotal += time.Since(start) - wres.Elapsed
			epochAdvances++
		}

		// Hot path: the answer a subscribed client reads after the epoch.
		for _, fp := range fps {
			start := time.Now()
			for i := 0; i < hotReps; i++ {
				if _, _, ok := srv.SubscriptionAnswer(fp); !ok {
					return res, fmt.Errorf("pinned fingerprint %q lost", fp)
				}
			}
			hotReadTotal += time.Since(start)
			hotReads += hotReps
		}
		// Cold path: the same answers re-derived by full BSP runs — both
		// the unpinned client's read latency and, summed, the naive
		// maintenance baseline for this epoch.
		epochStart := time.Now()
		for _, q := range maintain2Queries {
			start := time.Now()
			if _, err := srv.Query(q); err != nil {
				return res, err
			}
			coldReadTotal += time.Since(start)
			coldReads++
		}
		coldEpochTotal += time.Since(epochStart)
	}

	st := srv.Stats()
	res.IncHits, res.IncFallbacks = st.IncrementalHits, st.IncrementalFallbacks
	res.Epochs = srv.Generation().Epoch
	res.HotReadUS = float64(hotReadTotal.Nanoseconds()) / 1e3 / float64(hotReads)
	res.ColdReadMS = float64(coldReadTotal.Microseconds()) / 1e3 / float64(coldReads)
	res.FoldMS = float64(foldTotal.Microseconds()) / 1e3 / float64(epochAdvances)
	res.ColdEpochMS = float64(coldEpochTotal.Microseconds()) / 1e3 / float64(rounds)
	return res, nil
}

// cloneRows yields n verbatim copies of template rows, rotating the
// starting offset per round so successive batches do not duplicate the
// exact same prefix.
func cloneRows(tmpl []relation.Tuple, n, round int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	for i := range out {
		out[i] = tmpl[(round*n+i)%len(tmpl)].Clone()
	}
	return out
}

// PrintMaintain2 renders the pinned-maintenance comparison.
func PrintMaintain2(w io.Writer, r Maintain2Result) {
	fmt.Fprintf(w, "\nPinned-query maintenance — %s SF %g, %d pins (%d incremental), %d rounds x 2 epochs of %d-row inserts\n",
		r.Workload, r.Scale, r.Pins, r.Eligible, r.Rounds, r.BatchRows)
	fmt.Fprintf(w, "(hot = SubscriptionAnswer on a pinned fingerprint; cold = the same SQL as a full BSP run;\n fold = per-epoch incremental refresh of all pins; cold/epoch = re-running all pins cold)\n")
	fmt.Fprintf(w, "%-14s %14s %14s %14s %10s\n", "hot_read_us", "cold_read_ms", "fold_ms", "cold_epoch_ms", "epochs")
	fmt.Fprintf(w, "%-14.2f %14.3f %14.3f %14.3f %10d\n", r.HotReadUS, r.ColdReadMS, r.FoldMS, r.ColdEpochMS, r.Epochs)
	fmt.Fprintf(w, "read speedup %.0fx, maintenance speedup %.1fx; %d incremental hits, %d fallbacks\n",
		r.ReadSpeedup(), r.MaintainSpeedup(), r.IncHits, r.IncFallbacks)
}
