package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/tag"
)

// Serving modes compared by the concurrency benchmark, in reporting
// order:
//
//	pooled   the internal/serve layer: one frozen TAG graph, a session
//	         pool sized to the client count, prepared-statement cache
//	serial   one reused core.Session behind a mutex — all clients
//	         serialized through a single engine ("single-session")
//	rebuild  the seed's serving pattern (cmd/tagsql before the fix):
//	         serialized, and every query re-encodes the TAG graph and
//	         builds a fresh executor
var ConcurrencyModes = []string{"pooled", "serial", "rebuild"}

// ConcurrencyResult is the aggregate throughput at one client count.
type ConcurrencyResult struct {
	Clients int
	QPS     map[string]float64 // mode -> aggregate queries/second
	Queries map[string]int64   // mode -> queries completed in the window
}

// Speedup returns QPS[pooled] / QPS[mode].
func (r ConcurrencyResult) Speedup(mode string) float64 {
	if r.QPS[mode] <= 0 {
		return 0
	}
	return r.QPS["pooled"] / r.QPS[mode]
}

// concurrencyQueries is the serving mix: the cheaper queries of each
// aggregation class, so a measurement window covers many requests.
var concurrencyQueries = map[string][]string{
	"tpch":  {"q3", "q5", "q10", "q11", "q16", "q22"},
	"tpcds": {"q37", "q82", "q12", "q22"},
}

// Concurrency measures aggregate query throughput over one frozen TAG
// graph at each client count: `window` of wall time per (mode, clients)
// cell, counting completed queries. Clients issue queries back-to-back
// (closed loop, no think time).
func Concurrency(cfg Config, workload string, clients []int, window time.Duration) ([]ConcurrencyResult, error) {
	cfg = cfg.withDefaults()
	if window <= 0 {
		window = 300 * time.Millisecond
	}
	scale := cfg.Scales[0]
	cat := generate(workload, scale, cfg.Seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}

	ids := concurrencyQueries[workload]
	var queries []string
	for _, q := range WorkloadQueries(workload) {
		for _, id := range ids {
			if q.ID == id {
				queries = append(queries, q.SQL)
			}
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("bench: no concurrency queries for workload %q", workload)
	}

	// Correctness gate before timing: every mode must agree on answers.
	probe := core.NewSession(g, bsp.Options{Workers: 1})
	for _, q := range queries {
		if _, err := probe.Query(q); err != nil {
			return nil, fmt.Errorf("bench: workload query failed: %w", err)
		}
	}

	var out []ConcurrencyResult
	for _, n := range clients {
		res := ConcurrencyResult{Clients: n,
			QPS: map[string]float64{}, Queries: map[string]int64{}}
		for _, mode := range ConcurrencyModes {
			runFn, err := concurrencyRunner(mode, g, n)
			if err != nil {
				return nil, err
			}
			count, elapsed, err := closedLoop(n, window, queries, runFn)
			if err != nil {
				return nil, fmt.Errorf("bench: %s at %d clients: %w", mode, n, err)
			}
			res.Queries[mode] = count
			res.QPS[mode] = float64(count) / elapsed.Seconds()
		}
		out = append(out, res)
	}
	return out, nil
}

// concurrencyRunner builds the per-mode query function over the shared
// graph (tag.Build reads the catalog without mutating it, so the rebuild
// mode can re-encode from the same catalog).
func concurrencyRunner(mode string, g *tag.Graph, n int) (func(sql string) error, error) {
	switch mode {
	case "pooled":
		srv := serve.New(g, serve.Options{Sessions: n})
		return func(sql string) error {
			_, err := srv.Query(sql)
			return err
		}, nil
	case "serial":
		var mu sync.Mutex
		sess := core.NewSession(g, bsp.Options{Workers: 1})
		return func(sql string) error {
			mu.Lock()
			defer mu.Unlock()
			_, err := sess.Query(sql)
			return err
		}, nil
	case "rebuild":
		var mu sync.Mutex
		cat := g.Catalog
		return func(sql string) error {
			mu.Lock()
			defer mu.Unlock()
			fresh, err := tag.Build(cat, nil)
			if err != nil {
				return err
			}
			ex := core.NewExecutor(fresh, bsp.Options{Workers: 1})
			_, err = ex.Query(sql)
			return err
		}, nil
	}
	return nil, fmt.Errorf("bench: unknown concurrency mode %q", mode)
}

// closedLoop drives n clients issuing queries round-robin until the
// window elapses, returning completed-query count and actual elapsed
// time (including queries in flight at the deadline).
func closedLoop(n int, window time.Duration, queries []string, run func(string) error) (int64, time.Duration, error) {
	var (
		count   int64
		stop    int32
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	start := time.Now()
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; atomic.LoadInt32(&stop) == 0; i++ {
				if err := run(queries[i%len(queries)]); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
				atomic.AddInt64(&count, 1)
			}
		}(c)
	}
	time.Sleep(window)
	atomic.StoreInt32(&stop, 1)
	wg.Wait()
	return atomic.LoadInt64(&count), time.Since(start), firstEr
}

// PrintConcurrency renders the throughput table.
func PrintConcurrency(w io.Writer, workload string, results []ConcurrencyResult) {
	fmt.Fprintf(w, "\nConcurrent serving — aggregate QPS over one frozen %s TAG graph\n", workload)
	fmt.Fprintf(w, "(pooled = serve layer; serial = mutexed single session; rebuild = graph re-encoded per query)\n")
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s %12s\n",
		"clients", "pooled", "serial", "rebuild", "vs_serial", "vs_rebuild")
	for _, r := range results {
		fmt.Fprintf(w, "%-8d %12.1f %12.1f %12.1f %11.2fx %11.2fx\n",
			r.Clients, r.QPS["pooled"], r.QPS["serial"], r.QPS["rebuild"],
			r.Speedup("serial"), r.Speedup("rebuild"))
	}
}
