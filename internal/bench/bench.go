// Package bench is the experiment harness of the reproduction: one driver
// per table/figure of the paper's evaluation (§8), printing the same rows
// and series the paper reports and returning structured results for the
// benchmark suite.
//
// Engine names map to the paper's systems as follows:
//
//	tag        TAG-join on the vertex-centric engine (TAG_tg)
//	refdb      row-store iterator engine (PostgreSQL / RDBMS-X / RDBMS-Y stand-in)
//	refdb_col  column-scan configuration (RDBMS-X In-Memory stand-in)
//	shuffle    partitioned shuffle-join engine (Spark SQL stand-in)
//
// Absolute times are not comparable with the paper's testbed; the
// reproduction targets the relative shapes (who wins per query class, by
// roughly what factor).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/tag"
	"repro/internal/tpcds"
	"repro/internal/tpch"
)

// Engines in reporting order.
var Engines = []string{"tag", "refdb", "refdb_col", "shuffle"}

// Config parameterizes the harness.
type Config struct {
	// Scales are the data sizes; the three defaults stand in for the
	// paper's SF-30/50/75 series.
	Scales   []float64
	Seed     int64
	Workers  int
	Runs     int // timed repetitions after one warm-up
	Machines int // distributed experiments
	Out      io.Writer
}

func (c Config) withDefaults() Config {
	if len(c.Scales) == 0 {
		c.Scales = []float64{0.5, 1, 2}
	}
	if c.Seed == 0 {
		c.Seed = 2021
	}
	if c.Runs <= 0 {
		c.Runs = 3
	}
	if c.Machines <= 0 {
		c.Machines = 6
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// WorkloadQuery is a uniform view over the two workloads.
type WorkloadQuery struct {
	ID    string
	SQL   string
	Class string
	Corr  bool
}

// WorkloadQueries returns the named workload ("tpch" or "tpcds").
func WorkloadQueries(name string) []WorkloadQuery {
	var out []WorkloadQuery
	switch name {
	case "tpch":
		for _, q := range tpch.Queries() {
			out = append(out, WorkloadQuery{ID: q.ID, SQL: q.SQL, Class: q.Class, Corr: q.Corr})
		}
	case "tpcds":
		for _, q := range tpcds.Queries() {
			out = append(out, WorkloadQuery{ID: q.ID, SQL: q.SQL, Class: q.Class, Corr: q.Corr})
		}
	}
	return out
}

// generate builds the named workload's catalog.
func generate(name string, scale float64, seed int64) *relation.Catalog {
	if name == "tpch" {
		return tpch.Generate(scale, seed)
	}
	return tpcds.Generate(scale, seed)
}

// Env holds the per-scale engines.
type Env struct {
	Workload string
	Scale    float64
	Cat      *relation.Catalog
	TAG      *tag.Graph
	Exec     *core.Executor
	Row      *baseline.Engine
	Col      *baseline.Engine
	Shuffle  *baseline.Engine
}

// NewEnv loads a workload at one scale into all engines.
func NewEnv(workload string, scale float64, seed int64, workers int) (*Env, error) {
	cat := generate(workload, scale, seed)
	g, err := tag.Build(cat, nil)
	if err != nil {
		return nil, err
	}
	return &Env{
		Workload: workload,
		Scale:    scale,
		Cat:      cat,
		TAG:      g,
		Exec:     core.NewExecutor(g, bsp.Options{Workers: workers}),
		Row:      baseline.New(cat),
		Col:      baseline.NewColumnStore(cat),
		Shuffle:  baseline.NewShuffle(cat, 6),
	}, nil
}

// RunOn executes a query on the named engine of an Env.
func RunOn(e *Env, engine, query string) (*relation.Relation, error) {
	return e.runOn(engine, query)
}

// runOn executes a query on the named engine.
func (e *Env) runOn(engine, query string) (*relation.Relation, error) {
	switch engine {
	case "tag":
		return e.Exec.Query(query)
	case "refdb":
		return e.Row.Query(query)
	case "refdb_col":
		return e.Col.Query(query)
	case "shuffle":
		return e.Shuffle.Query(query)
	}
	return nil, fmt.Errorf("bench: unknown engine %q", engine)
}

// QueryResult is one query's timings across engines.
type QueryResult struct {
	ID    string
	Class string
	Corr  bool
	Rows  int
	Times map[string]time.Duration
	Agree bool
}

// Speedup returns refTime/tagTime for an engine (how much faster TAG is).
func (q QueryResult) Speedup(engine string) float64 {
	t := q.Times["tag"]
	if t <= 0 {
		return 0
	}
	return float64(q.Times[engine]) / float64(t)
}

// WorkloadResult is one (workload, scale) sweep.
type WorkloadResult struct {
	Workload  string
	Scale     float64
	Queries   []QueryResult
	Aggregate map[string]time.Duration
}

// ByClass sums times per aggregation class (Figure 15's grouping).
func (w WorkloadResult) ByClass() map[string]map[string]time.Duration {
	out := map[string]map[string]time.Duration{}
	for _, q := range w.Queries {
		m := out[q.Class]
		if m == nil {
			m = map[string]time.Duration{}
			out[q.Class] = m
		}
		for e, t := range q.Times {
			m[e] += t
		}
	}
	return out
}

// WinCounts classifies TAG against one engine per query (Table 5): TAG
// outperforms when >1.1x faster, is competitive within [1/1.1, 1.1x],
// worse otherwise.
func (w WorkloadResult) WinCounts(engine string) (outperforms, competitive, worse int) {
	for _, q := range w.Queries {
		s := q.Speedup(engine)
		switch {
		case s > 1.1:
			outperforms++
		case s >= 1/1.1:
			competitive++
		default:
			worse++
		}
	}
	return
}

// RunWorkload times every query of a workload on every engine at one
// scale, verifying that all engines agree.
func RunWorkload(cfg Config, env *Env) (WorkloadResult, error) {
	cfg = cfg.withDefaults()
	res := WorkloadResult{Workload: env.Workload, Scale: env.Scale, Aggregate: map[string]time.Duration{}}
	for _, q := range WorkloadQueries(env.Workload) {
		qr := QueryResult{ID: q.ID, Class: q.Class, Corr: q.Corr, Times: map[string]time.Duration{}, Agree: true}
		var reference *relation.Relation
		for _, engine := range Engines {
			// Warm-up run (caches, §8.1.5 methodology), then timed runs.
			out, err := env.runOn(engine, q.SQL)
			if err != nil {
				return res, fmt.Errorf("%s on %s: %w", q.ID, engine, err)
			}
			var total time.Duration
			for r := 0; r < cfg.Runs; r++ {
				start := time.Now()
				out, err = env.runOn(engine, q.SQL)
				if err != nil {
					return res, err
				}
				total += time.Since(start)
			}
			qr.Times[engine] = total / time.Duration(cfg.Runs)
			qr.Rows = out.Len()
			if engine == "refdb" {
				reference = out
			} else if reference != nil && !relation.EqualMultisetFuzzy(out, reference) {
				qr.Agree = false
			} else if reference == nil {
				reference = out
			}
			res.Aggregate[engine] += qr.Times[engine]
		}
		res.Queries = append(res.Queries, qr)
	}
	return res, nil
}

// PrintPerQuery renders a Tables 8-13-style per-query table.
func PrintPerQuery(w io.Writer, res WorkloadResult) {
	fmt.Fprintf(w, "\n%s scale %.2g — per-query avg runtimes (ms)\n", res.Workload, res.Scale)
	fmt.Fprintf(w, "%-6s %-7s %10s %10s %10s %10s  %s\n", "query", "class", Engines[0], Engines[1], Engines[2], Engines[3], "agree")
	for _, q := range res.Queries {
		fmt.Fprintf(w, "%-6s %-7s %10.3f %10.3f %10.3f %10.3f  %v\n", q.ID, q.Class,
			ms(q.Times["tag"]), ms(q.Times["refdb"]), ms(q.Times["refdb_col"]), ms(q.Times["shuffle"]), q.Agree)
	}
	fmt.Fprintf(w, "%-6s %-7s %10.3f %10.3f %10.3f %10.3f\n", "TOTAL", "",
		ms(res.Aggregate["tag"]), ms(res.Aggregate["refdb"]), ms(res.Aggregate["refdb_col"]), ms(res.Aggregate["shuffle"]))
}

// PrintAggregate renders the Figure 13 aggregate series.
func PrintAggregate(w io.Writer, results []WorkloadResult) {
	if len(results) == 0 {
		return
	}
	fmt.Fprintf(w, "\nFigure 13 — aggregate %s runtimes (ms) across scales\n", results[0].Workload)
	fmt.Fprintf(w, "%-8s", "scale")
	for _, e := range Engines {
		fmt.Fprintf(w, " %12s", e)
	}
	fmt.Fprintln(w)
	for _, r := range results {
		fmt.Fprintf(w, "%-8.2g", r.Scale)
		for _, e := range Engines {
			fmt.Fprintf(w, " %12.3f", ms(r.Aggregate[e]))
		}
		fmt.Fprintln(w)
	}
}

// PrintByClass renders the Figure 15 class breakdown.
func PrintByClass(w io.Writer, res WorkloadResult) {
	fmt.Fprintf(w, "\nFigure 15 — %s aggregate runtimes by aggregation class (ms), scale %.2g\n", res.Workload, res.Scale)
	byClass := res.ByClass()
	var classes []string
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "%-8s", "class")
	for _, e := range Engines {
		fmt.Fprintf(w, " %12s", e)
	}
	fmt.Fprintln(w)
	for _, c := range classes {
		fmt.Fprintf(w, "%-8s", c)
		for _, e := range Engines {
			fmt.Fprintf(w, " %12.3f", ms(byClass[c][e]))
		}
		fmt.Fprintln(w)
	}
}

// PrintWinCounts renders the Table 5 classification.
func PrintWinCounts(w io.Writer, res WorkloadResult) {
	fmt.Fprintf(w, "\nTable 5 — TAG-join vs each engine on %s (%d queries), scale %.2g\n",
		res.Workload, len(res.Queries), res.Scale)
	fmt.Fprintf(w, "%-10s %12s %12s %8s\n", "engine", "outperforms", "competitive", "worse")
	for _, e := range Engines[1:] {
		o, c, wr := res.WinCounts(e)
		fmt.Fprintf(w, "%-10s %12d %12d %8d\n", e, o, c, wr)
	}
}

// PrintSelected renders the Tables 3/4/6-style selected-query speedups.
func PrintSelected(w io.Writer, res WorkloadResult, title string, ids []string) {
	fmt.Fprintf(w, "\n%s (scale %.2g): TAG time (ms) and speedups over baselines\n", title, res.Scale)
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s\n", "query", "tag_ms", "vs_refdb", "vs_col", "vs_shuffle")
	for _, id := range ids {
		for _, q := range res.Queries {
			if q.ID != id {
				continue
			}
			fmt.Fprintf(w, "%-6s %10.3f %9.2fx %9.2fx %9.2fx\n", q.ID,
				ms(q.Times["tag"]), q.Speedup("refdb"), q.Speedup("refdb_col"), q.Speedup("shuffle"))
		}
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Ms converts a duration to milliseconds (reporting helper).
func Ms(d time.Duration) float64 { return ms(d) }

// PeakRAM measures the peak heap while fn runs (Table 7's measure): an
// initial sample, periodic samples from a watcher goroutine, and a final
// sample after fn returns.
func PeakRAM(fn func() error) (int64, error) {
	sample := func() int64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.HeapInuse)
	}
	peak := sample()
	stop := make(chan struct{})
	peakCh := make(chan int64)
	go func() {
		p := int64(0)
		for {
			select {
			case <-stop:
				peakCh <- p
				return
			default:
				if s := sample(); s > p {
					p = s
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	err := fn()
	if s := sample(); s > peak {
		peak = s
	}
	close(stop)
	if p := <-peakCh; p > peak {
		peak = p
	}
	return peak, err
}
