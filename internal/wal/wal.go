// Package wal is the durability substrate of the serving layer: an
// append-only, length-prefixed, CRC-checked log of published write
// batches. The maintenance path appends one Record per publish cycle —
// every op that made it into a generation, stamped with the epoch that
// generation got — *before* the generation swap, so the on-disk log is
// always a prefix-consistent history of the served state: replaying
// records 1..k through the same maintenance path rebuilds exactly the
// state epoch k served, for every k.
//
// On-disk format, per record:
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32C (Castagnoli) of the payload
//	bytes   payload
//
// The payload is a varint-packed encoding of the record: epoch, then
// each op's table name, insert tuples (kind-tagged values) and delete
// vertex ids. A record is valid only if it is complete and its CRC
// matches, so a crash mid-append (a torn tail) is detected, not
// replayed: Open truncates the log back to its longest valid prefix
// before appending, and Replay stops cleanly at the first invalid
// record.
//
// Sync policy is the durability/throughput dial: SyncAlways fsyncs
// every append (no acknowledged write is ever lost), SyncInterval
// fsyncs at most once per interval (group commit — bounded loss,
// near-unsynced throughput), SyncNever leaves flushing to the OS.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// Op is one logged write: rows inserted into Table and/or tuple
// vertices deleted. It mirrors serve.WriteOp (wal cannot import serve —
// serve imports wal for the sync policy).
type Op struct {
	Table  string
	Insert []relation.Tuple
	Delete []bsp.VertexID
}

// Record is one published batch: every op that shared one generation
// publish, stamped with the epoch that publish produced.
type Record struct {
	Epoch uint64
	Ops   []Op
}

// Policy selects when appended records reach stable storage.
type Policy int

const (
	// SyncInterval fsyncs at most once per Options.Interval (group
	// commit): piggybacked on appends while traffic is steady, and via a
	// one-shot background timer when it pauses — so the lag is bounded
	// even for the last write before an idle stretch. A crash loses at
	// most one interval of acknowledged writes. The default.
	SyncInterval Policy = iota
	// SyncAlways fsyncs every append before it is acknowledged.
	SyncAlways
	// SyncNever never fsyncs (except on Close); flushing is left to the
	// OS page cache. A machine crash can lose everything since the last
	// writeback, but a process crash loses nothing.
	SyncNever
)

// String returns the flag-friendly name of the policy.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a flag-friendly policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always|interval|never)", s)
}

// Options configures a Writer.
type Options struct {
	Policy Policy
	// Interval bounds the fsync lag under SyncInterval; defaults to
	// 100ms. Ignored by the other policies.
	Interval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// WriterStats counts a Writer's activity since Open.
type WriterStats struct {
	Records int64 // records appended
	Bytes   int64 // bytes appended (headers included)
	Fsyncs  int64 // fsyncs issued by the sync policy (and Close/Truncate)
}

const (
	fileName   = "wal.log"
	lockName   = "wal.lock"
	headerSize = 8
	// maxRecordBytes bounds a length prefix before the payload is read
	// into memory. One record is one publish cycle; 256MB is far beyond
	// any real coalesced batch while keeping the worst-case read of a
	// corrupt-but-plausible header modest.
	maxRecordBytes = 256 << 20
	// maxScratchBytes bounds the encode buffer kept across appends;
	// larger one-off buffers are released after use.
	maxScratchBytes = 1 << 20
	// maxCapHint caps the capacity pre-allocated from a decoded element
	// count. Counts are validated against the payload's remaining bytes,
	// but in-memory elements are up to ~64x larger than their minimal
	// encoding — so slices grow by append (bounded by the bytes actually
	// present) instead of trusting the count up front.
	maxCapHint = 4096
)

// capHint bounds an up-front slice capacity taken from decoded input.
func capHint(n int) int {
	if n > maxCapHint {
		return maxCapHint
	}
	return n
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete or corrupt record: the point where a
// crash interrupted an append. Everything before it is trustworthy;
// nothing at or after it is.
var errTorn = errors.New("wal: torn record")

// Writer appends records to the log in dir. Open recovers first:
// the file is truncated back to its longest valid prefix, so a tail
// torn by a crash can never be followed by (and thereby corrupt) new
// records. Methods are safe for concurrent use, though the serving
// layer serializes appends under its writer lock anyway.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	lock     *os.File // flock'd wal.lock; held until Close, released by the kernel on crash
	path     string
	opts     Options
	off      int64 // end of the last fully-appended record
	lastSync time.Time
	scratch  []byte
	stats    WriterStats
	closed   bool
	// syncPending is set while a background interval fsync is armed.
	syncPending bool
	// failed poisons the writer: a partial append could not be rewound
	// (or a background fsync failed), so acknowledging further writes
	// would break the durability contract. Every later Append errors.
	failed error
}

// Open creates dir if needed, takes an exclusive advisory lock on it,
// truncates any torn tail off the log, and returns a Writer positioned
// after the last valid record. Use Replay (before appending anything)
// to rebuild state from the valid prefix.
//
// The lock (flock on wal.lock) refuses a second concurrent Writer on
// the same dir: two writers would truncate and append over each
// other's frames and silently destroy acknowledged records. A crashed
// process's lock is released by the kernel, so recovery never needs a
// manual unlock.
func Open(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("wal: dir %s already has a live writer (flock: %w)", dir, err)
	}
	path := filepath.Join(dir, fileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	fail := func(err error) (*Writer, error) {
		f.Close()
		lock.Close()
		return nil, err
	}
	valid, err := scanValidPrefix(f)
	if err != nil {
		return fail(err)
	}
	fi, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	if fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			return fail(fmt.Errorf("wal: truncating torn tail: %w", err))
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	// Make the directory entries themselves durable: fsyncing file data
	// does nothing for a dirent the journal never flushed — a power loss
	// could otherwise drop wal.log wholesale, acknowledged writes and
	// all.
	if err := syncDir(dir); err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	return &Writer{f: f, lock: lock, path: path, opts: opts, off: valid, lastSync: time.Now()}, nil
}

// syncDir fsyncs a directory, making its entries durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// scanValidPrefix returns the byte length of the longest valid record
// prefix of the log. It checks frames and CRCs only — no payload
// decoding — so measuring a large log costs one sequential read, not a
// full materialization of every logged tuple (Replay decodes once,
// right after).
func scanValidPrefix(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var off int64
	buf := make([]byte, 64<<10)
	for {
		n, err := skipFrame(br, buf)
		switch {
		case err == nil:
			off += n
		case errors.Is(err, io.EOF), errors.Is(err, errTorn):
			return off, nil
		default:
			return 0, err
		}
	}
}

// skipFrame validates one frame (length prefix + CRC) while streaming
// the payload through a reused buffer — measuring a large log never
// materializes its records.
func skipFrame(br *bufio.Reader, buf []byte) (int64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, errTorn
		}
		return 0, fmt.Errorf("wal: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordBytes {
		return 0, errTorn
	}
	var crc uint32
	for remaining := int(n); remaining > 0; {
		chunk := buf
		if remaining < len(chunk) {
			chunk = chunk[:remaining]
		}
		if _, err := io.ReadFull(br, chunk); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return 0, errTorn
			}
			return 0, fmt.Errorf("wal: %w", err)
		}
		crc = crc32.Update(crc, castagnoli, chunk)
		remaining -= len(chunk)
	}
	if crc != want {
		return 0, errTorn
	}
	return int64(headerSize) + int64(n), nil
}

// Append encodes rec and writes it to the log in one write call, then
// syncs per the policy. The record is visible to Replay as soon as
// Append returns; it is durable per the sync policy.
func (w *Writer) Append(rec *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if w.failed != nil {
		return w.failed
	}
	if cap(w.scratch) < headerSize {
		w.scratch = make([]byte, headerSize, 4096)
	}
	buf, err := encodePayload(w.scratch[:headerSize], rec)
	if err != nil {
		return err
	}
	// Reuse the encode buffer across appends, but do not let one
	// outsized record pin tens of MB for the writer's lifetime.
	if cap(buf) <= maxScratchBytes {
		w.scratch = buf[:0]
	} else {
		w.scratch = nil
	}
	payload := buf[headerSize:]
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	if n, err := w.f.Write(buf); err != nil {
		// A short write leaves a partial frame on disk. Rewind to the
		// last good offset: appending after the garbage would put valid,
		// acknowledged records *behind* a torn one, and the next recovery
		// would silently truncate them away. If the rewind itself fails,
		// poison the writer — better to refuse every later write than to
		// acknowledge one that replay can never see.
		if n > 0 {
			if terr := w.f.Truncate(w.off); terr != nil {
				w.failed = fmt.Errorf("wal: log poisoned, partial append not rewindable: %v (during %v)", terr, err)
				return w.failed
			}
			if _, serr := w.f.Seek(w.off, io.SeekStart); serr != nil {
				w.failed = fmt.Errorf("wal: log poisoned, cannot reposition after rewind: %v (during %v)", serr, err)
				return w.failed
			}
		}
		return fmt.Errorf("wal: %w", err)
	}
	w.off += int64(len(buf))
	w.stats.Records++
	w.stats.Bytes += int64(len(buf))
	switch w.opts.Policy {
	case SyncAlways:
		return w.syncLocked()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.Interval {
			return w.syncLocked()
		}
		// Bound the lag even if no further append ever arrives: arm a
		// one-shot background fsync for the rest of the interval.
		if !w.syncPending {
			w.syncPending = true
			time.AfterFunc(w.opts.Interval-time.Since(w.lastSync), w.backgroundSync)
		}
	}
	return nil
}

// backgroundSync is the deferred half of the SyncInterval contract: it
// fires once per armed interval and flushes whatever the piggybacked
// path has not. A failure poisons the writer (syncLocked does it) —
// silently dropping an fsync would break acknowledged durability with
// no one noticing — and the next Append surfaces the error.
func (w *Writer) backgroundSync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncPending = false
	if w.closed || w.failed != nil {
		return
	}
	_ = w.syncLocked()
}

// Sync forces an fsync regardless of policy. A poisoned writer keeps
// reporting its failure: a later fsync succeeding does not restore
// pages the kernel already dropped, so "retry Sync until nil" must
// never be able to mask lost acknowledged records.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if w.failed != nil {
		return w.failed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		// A failed fsync poisons the writer. The just-written frame may
		// or may not reach disk (the kernel can drop the dirty pages
		// while the bytes stay readable), so it can neither be trusted
		// nor rewound; if appends continued, the next cycle would reuse
		// this record's epoch and recovery would see two records claiming
		// it. Refusing all further appends keeps the log unambiguous: at
		// worst recovery replays one never-acknowledged record, which is
		// the same harmless artifact as a crash between append and swap.
		w.failed = fmt.Errorf("wal: log poisoned, fsync failed: %w", err)
		return w.failed
	}
	w.stats.Fsyncs++
	w.lastSync = time.Now()
	return nil
}

// Truncate resets the log to empty — the compaction half of
// snapshot-then-truncate. Call it only once the state the log protects
// has been durably captured elsewhere (a snapshot): after Truncate, a
// recovery replays nothing, so the snapshot is the new baseline — and
// it must actually BE the baseline the next recovery starts from.
// Records appended after a truncation carry post-snapshot epochs;
// replaying them onto the original (pre-snapshot) base will be refused
// by the consumer's epoch check rather than produce a wrong state.
func (w *Writer) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.off = 0
	return w.syncLocked()
}

// Close fsyncs and closes the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	syncErr := w.f.Sync()
	if syncErr == nil {
		w.stats.Fsyncs++
	}
	closeErr := w.f.Close()
	w.lock.Close() // releases the flock; a new Writer may Open the dir
	if syncErr != nil {
		return fmt.Errorf("wal: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: %w", closeErr)
	}
	return nil
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Path returns the log file's path.
func (w *Writer) Path() string { return w.path }

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Records   int64  // valid records replayed
	Bytes     int64  // bytes they span (headers included)
	LastEpoch uint64 // epoch of the last replayed record (0 if none)
	Torn      bool   // a torn tail record was detected and ignored
}

// Replay streams every valid record of the log in dir through fn, in
// append order, stopping cleanly at the first torn record (reported in
// the stats, not as an error — a torn tail is the expected crash
// artifact, and everything before it is a consistent prefix). A missing
// log is an empty log. An error from fn aborts the replay.
func Replay(dir string, fn func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	f, err := os.Open(filepath.Join(dir, fileName))
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		rec, n, err := readRecord(br)
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if errors.Is(err, errTorn) {
			st.Torn = true
			return st, nil
		}
		if err != nil {
			return st, err
		}
		if err := fn(rec); err != nil {
			return st, err
		}
		st.Records++
		st.Bytes += n
		st.LastEpoch = rec.Epoch
	}
}

// readFrame reads one length-prefixed, CRC-checked payload. io.EOF
// means a clean end of log; errTorn means an incomplete or corrupt
// record starts here.
func readFrame(br *bufio.Reader) ([]byte, int64, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, errTorn
		}
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxRecordBytes {
		return nil, 0, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, 0, errTorn
		}
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, 0, errTorn
	}
	return payload, int64(headerSize) + int64(n), nil
}

// readRecord is readFrame plus payload decoding. A CRC-valid but
// undecodable payload is reported as torn too — a CRC pass means the
// bytes are exactly what Append wrote, so this is only reachable
// through an encoder bug, not crash damage.
func readRecord(br *bufio.Reader) (*Record, int64, error) {
	payload, n, err := readFrame(br)
	if err != nil {
		return nil, 0, err
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return nil, 0, errTorn
	}
	return rec, n, nil
}

// encodePayload appends the varint-packed encoding of rec to b.
func encodePayload(b []byte, rec *Record) ([]byte, error) {
	b = binary.AppendUvarint(b, rec.Epoch)
	b = binary.AppendUvarint(b, uint64(len(rec.Ops)))
	for _, op := range rec.Ops {
		b = binary.AppendUvarint(b, uint64(len(op.Table)))
		b = append(b, op.Table...)
		b = binary.AppendUvarint(b, uint64(len(op.Insert)))
		for _, row := range op.Insert {
			b = binary.AppendUvarint(b, uint64(len(row)))
			for _, v := range row {
				var err error
				if b, err = encodeValue(b, v); err != nil {
					return nil, err
				}
			}
		}
		b = binary.AppendUvarint(b, uint64(len(op.Delete)))
		for _, id := range op.Delete {
			b = binary.AppendVarint(b, int64(id))
		}
	}
	return b, nil
}

func encodeValue(b []byte, v relation.Value) ([]byte, error) {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case relation.KindNull:
	case relation.KindInt, relation.KindDate, relation.KindBool:
		b = binary.AppendVarint(b, v.I)
	case relation.KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case relation.KindString:
		b = binary.AppendUvarint(b, uint64(len(v.S)))
		b = append(b, v.S...)
	default:
		return nil, fmt.Errorf("wal: unencodable value kind %v", v.Kind)
	}
	return b, nil
}

// decoder is a bounds-checked cursor over one record payload.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, errTorn
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, errTorn
	}
	d.off += n
	return v, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.b) {
		return nil, errTorn
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

// length reads a collection length and sanity-bounds it against the
// bytes remaining — every element consumes at least one payload byte,
// so a count the payload cannot back is corruption. (Allocation is
// separately capped via capHint: decoded elements can be ~64x larger
// in memory than on disk, so counts are never trusted for up-front
// make sizes.)
func (d *decoder) length() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.b)-d.off) {
		return 0, errTorn
	}
	return int(v), nil
}

func decodePayload(b []byte) (*Record, error) {
	d := &decoder{b: b}
	epoch, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	nops, err := d.length()
	if err != nil {
		return nil, err
	}
	rec := &Record{Epoch: epoch, Ops: make([]Op, 0, capHint(nops))}
	for i := 0; i < nops; i++ {
		var op Op
		tn, err := d.length()
		if err != nil {
			return nil, err
		}
		tb, err := d.take(tn)
		if err != nil {
			return nil, err
		}
		op.Table = string(tb)
		nins, err := d.length()
		if err != nil {
			return nil, err
		}
		if nins > 0 {
			op.Insert = make([]relation.Tuple, 0, capHint(nins))
			for j := 0; j < nins; j++ {
				arity, err := d.length()
				if err != nil {
					return nil, err
				}
				row := make(relation.Tuple, 0, capHint(arity))
				for k := 0; k < arity; k++ {
					v, err := d.value()
					if err != nil {
						return nil, err
					}
					row = append(row, v)
				}
				op.Insert = append(op.Insert, row)
			}
		}
		ndel, err := d.length()
		if err != nil {
			return nil, err
		}
		if ndel > 0 {
			op.Delete = make([]bsp.VertexID, 0, capHint(ndel))
			for j := 0; j < ndel; j++ {
				id, err := d.varint()
				if err != nil {
					return nil, err
				}
				op.Delete = append(op.Delete, bsp.VertexID(id))
			}
		}
		rec.Ops = append(rec.Ops, op)
	}
	if d.off != len(d.b) {
		return nil, errTorn
	}
	return rec, nil
}

func (d *decoder) value() (relation.Value, error) {
	kb, err := d.take(1)
	if err != nil {
		return relation.Null, err
	}
	switch k := relation.Kind(kb[0]); k {
	case relation.KindNull:
		return relation.Null, nil
	case relation.KindInt, relation.KindDate, relation.KindBool:
		i, err := d.varint()
		if err != nil {
			return relation.Null, err
		}
		return relation.Value{Kind: k, I: i}, nil
	case relation.KindFloat:
		fb, err := d.take(8)
		if err != nil {
			return relation.Null, err
		}
		return relation.Float(math.Float64frombits(binary.LittleEndian.Uint64(fb))), nil
	case relation.KindString:
		n, err := d.length()
		if err != nil {
			return relation.Null, err
		}
		sb, err := d.take(n)
		if err != nil {
			return relation.Null, err
		}
		return relation.Str(string(sb)), nil
	default:
		return relation.Null, errTorn
	}
}
