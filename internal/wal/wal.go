// Package wal is the durability substrate of the serving layer: an
// append-only, length-prefixed, CRC-checked log of published write
// batches. The maintenance path appends one Record per publish cycle —
// every op that made it into a generation, stamped with the epoch that
// generation got — *before* the generation swap, so the on-disk log is
// always a prefix-consistent history of the served state: replaying
// records 1..k through the same maintenance path rebuilds exactly the
// state epoch k served, for every k.
//
// Framing (length prefix + CRC-32C + capacity-capped decode) comes from
// the shared internal/codec package — checkpoint files use the same
// frames — and the payload is a varint-packed encoding of the record:
// epoch, then each op's table name, insert tuples (the relation
// package's kind-tagged value codec) and delete vertex ids. A record is
// valid only if it is complete and its CRC matches, so a crash
// mid-append (a torn tail) is detected, not replayed: Open truncates
// the log back to its longest valid prefix before appending, and Replay
// stops cleanly at the first invalid record.
//
// Compaction is snapshot-then-truncate: once a checkpoint durably
// captures the state through epoch E, TruncatePrefix(E) drops the
// records a snapshot-load boot no longer replays, so the log holds a
// suffix bounded by checkpoint cadence instead of all history.
//
// Sync policy is the durability/throughput dial: SyncAlways fsyncs
// every append (no acknowledged write is ever lost), SyncInterval
// fsyncs at most once per interval (group commit — bounded loss,
// near-unsynced throughput), SyncNever leaves flushing to the OS.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/relation"
)

// Op is one logged write: rows inserted into Table and/or tuple
// vertices deleted. It mirrors serve.WriteOp (wal cannot import serve —
// serve imports wal for the sync policy).
type Op struct {
	Table  string
	Insert []relation.Tuple
	Delete []bsp.VertexID
}

// Record is one published batch: every op that shared one generation
// publish, stamped with the epoch that publish produced.
type Record struct {
	Epoch uint64
	Ops   []Op
}

// Policy selects when appended records reach stable storage.
type Policy int

const (
	// SyncInterval fsyncs at most once per Options.Interval (group
	// commit): piggybacked on appends while traffic is steady, and via a
	// one-shot background timer when it pauses — so the lag is bounded
	// even for the last write before an idle stretch. A crash loses at
	// most one interval of acknowledged writes. The default.
	SyncInterval Policy = iota
	// SyncAlways fsyncs every append before it is acknowledged.
	SyncAlways
	// SyncNever never fsyncs (except on Close); flushing is left to the
	// OS page cache. A machine crash can lose everything since the last
	// writeback, but a process crash loses nothing.
	SyncNever
)

// String returns the flag-friendly name of the policy.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a flag-friendly policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always|interval|never)", s)
}

// Options configures a Writer.
type Options struct {
	Policy Policy
	// Interval bounds the fsync lag under SyncInterval; defaults to
	// 100ms. Ignored by the other policies.
	Interval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	return o
}

// WriterStats counts a Writer's activity since Open.
type WriterStats struct {
	Records     int64 // records appended
	Bytes       int64 // bytes appended (headers included)
	Fsyncs      int64 // fsyncs issued by the sync policy (and Close/Truncate)
	Truncations int64 // compactions (Truncate and TruncatePrefix)
}

const (
	fileName = "wal.log"
	lockName = "wal.lock"
	// maxScratchBytes bounds the encode buffer kept across appends;
	// larger one-off buffers are released after use.
	maxScratchBytes = 1 << 20
)

// errTorn marks an incomplete or corrupt record: the point where a
// crash interrupted an append. Everything before it is trustworthy;
// nothing at or after it is. It is the shared codec's corruption
// sentinel — checkpoint readers report the same condition the same way.
var errTorn = codec.ErrCorrupt

// Writer appends records to the log in dir. Open recovers first:
// the file is truncated back to its longest valid prefix, so a tail
// torn by a crash can never be followed by (and thereby corrupt) new
// records. Methods are safe for concurrent use, though the serving
// layer serializes appends under its writer lock anyway.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	lock     *os.File // flock'd wal.lock; held until Close, released by the kernel on crash
	path     string
	opts     Options
	off      int64 // end of the last fully-appended record
	lastSync time.Time
	scratch  []byte
	stats    WriterStats
	closed   bool
	// syncPending is set while a background interval fsync is armed.
	syncPending bool
	// failed poisons the writer: a partial append could not be rewound
	// (or a background fsync failed), so acknowledging further writes
	// would break the durability contract. Every later Append errors.
	failed error
}

// Open creates dir if needed, takes an exclusive advisory lock on it,
// truncates any torn tail off the log, and returns a Writer positioned
// after the last valid record. Use Replay (before appending anything)
// to rebuild state from the valid prefix.
//
// The lock (flock on wal.lock) refuses a second concurrent Writer on
// the same dir: two writers would truncate and append over each
// other's frames and silently destroy acknowledged records. A crashed
// process's lock is released by the kernel, so recovery never needs a
// manual unlock.
func Open(dir string, opts Options) (*Writer, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("wal: dir %s already has a live writer (flock: %w)", dir, err)
	}
	path := filepath.Join(dir, fileName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	fail := func(err error) (*Writer, error) {
		f.Close()
		lock.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	valid, err := codec.ScanValidPrefix(f)
	if err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	fi, err := f.Stat()
	if err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	if fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			return fail(fmt.Errorf("wal: truncating torn tail: %w", err))
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	// Make the directory entries themselves durable: fsyncing file data
	// does nothing for a dirent the journal never flushed — a power loss
	// could otherwise drop wal.log wholesale, acknowledged writes and
	// all.
	if err := codec.SyncDir(dir); err != nil {
		return fail(fmt.Errorf("wal: %w", err))
	}
	return &Writer{f: f, lock: lock, path: path, opts: opts, off: valid, lastSync: time.Now()}, nil
}

// Append encodes rec and writes it to the log in one write call, then
// syncs per the policy. The record is visible to Replay as soon as
// Append returns; it is durable per the sync policy.
func (w *Writer) Append(rec *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if w.failed != nil {
		return w.failed
	}
	if cap(w.scratch) < codec.HeaderSize {
		w.scratch = make([]byte, codec.HeaderSize, 4096)
	}
	buf, err := encodePayload(w.scratch[:codec.HeaderSize], rec)
	if err != nil {
		return err
	}
	// Reuse the encode buffer across appends, but do not let one
	// outsized record pin tens of MB for the writer's lifetime.
	if cap(buf) <= maxScratchBytes {
		w.scratch = buf[:0]
	} else {
		w.scratch = nil
	}
	if len(buf)-codec.HeaderSize > codec.MaxFrameBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(buf)-codec.HeaderSize, codec.MaxFrameBytes)
	}
	if err := codec.FinishFrame(buf); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if n, err := w.f.Write(buf); err != nil {
		// A short write leaves a partial frame on disk. Rewind to the
		// last good offset: appending after the garbage would put valid,
		// acknowledged records *behind* a torn one, and the next recovery
		// would silently truncate them away. If the rewind itself fails,
		// poison the writer — better to refuse every later write than to
		// acknowledge one that replay can never see.
		if n > 0 {
			if terr := w.f.Truncate(w.off); terr != nil {
				w.failed = fmt.Errorf("wal: log poisoned, partial append not rewindable: %v (during %v)", terr, err)
				return w.failed
			}
			if _, serr := w.f.Seek(w.off, io.SeekStart); serr != nil {
				w.failed = fmt.Errorf("wal: log poisoned, cannot reposition after rewind: %v (during %v)", serr, err)
				return w.failed
			}
		}
		return fmt.Errorf("wal: %w", err)
	}
	w.off += int64(len(buf))
	w.stats.Records++
	w.stats.Bytes += int64(len(buf))
	switch w.opts.Policy {
	case SyncAlways:
		return w.syncLocked()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.opts.Interval {
			return w.syncLocked()
		}
		// Bound the lag even if no further append ever arrives: arm a
		// one-shot background fsync for the rest of the interval.
		if !w.syncPending {
			w.syncPending = true
			time.AfterFunc(w.opts.Interval-time.Since(w.lastSync), w.backgroundSync)
		}
	}
	return nil
}

// backgroundSync is the deferred half of the SyncInterval contract: it
// fires once per armed interval and flushes whatever the piggybacked
// path has not. A failure poisons the writer (syncLocked does it) —
// silently dropping an fsync would break acknowledged durability with
// no one noticing — and the next Append surfaces the error.
func (w *Writer) backgroundSync() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncPending = false
	if w.closed || w.failed != nil {
		return
	}
	_ = w.syncLocked()
}

// Sync forces an fsync regardless of policy. A poisoned writer keeps
// reporting its failure: a later fsync succeeding does not restore
// pages the kernel already dropped, so "retry Sync until nil" must
// never be able to mask lost acknowledged records.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if w.failed != nil {
		return w.failed
	}
	return w.syncLocked()
}

func (w *Writer) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		// A failed fsync poisons the writer. The just-written frame may
		// or may not reach disk (the kernel can drop the dirty pages
		// while the bytes stay readable), so it can neither be trusted
		// nor rewound; if appends continued, the next cycle would reuse
		// this record's epoch and recovery would see two records claiming
		// it. Refusing all further appends keeps the log unambiguous: at
		// worst recovery replays one never-acknowledged record, which is
		// the same harmless artifact as a crash between append and swap.
		w.failed = fmt.Errorf("wal: log poisoned, fsync failed: %w", err)
		return w.failed
	}
	w.stats.Fsyncs++
	w.lastSync = time.Now()
	return nil
}

// Truncate resets the log to empty — the compaction half of
// snapshot-then-truncate when the snapshot covers every record. Call it
// only once the state the log protects has been durably captured
// elsewhere (a snapshot): after Truncate, a recovery replays nothing,
// so the snapshot is the new baseline — and it must actually BE the
// baseline the next recovery starts from. The checkpointer uses
// TruncatePrefix instead, which keeps the records the snapshot does
// not cover.
func (w *Writer) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.off = 0
	w.stats.Truncations++
	return w.syncLocked()
}

// TruncatePrefix drops every record with epoch <= covered, keeping the
// suffix a snapshot-load boot still needs to replay. Epochs are
// appended in increasing order, so the covered records are a byte
// prefix of the log; the suffix is copied to a temp file, fsynced, and
// renamed over the log — a crash anywhere leaves either the old log or
// the compacted one, both of which boot (paired with the checkpoint
// that made covered durable). Call it only after that checkpoint has
// been durably written: a truncated log without its snapshot is a
// history with a hole, which recovery refuses (the epoch-continuity
// check) rather than silently misapplies.
func (w *Writer) TruncatePrefix(covered uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("wal: writer is closed")
	}
	if w.failed != nil {
		return w.failed
	}

	// Find the byte offset where the first kept record starts, peeking
	// only each frame's leading epoch uvarint.
	br := bufio.NewReaderSize(io.NewSectionReader(w.f, 0, w.off), 1<<20)
	var cut int64
	for cut < w.off {
		payload, n, err := codec.ReadFrame(br)
		if err != nil {
			// The prefix below w.off was validated at Open and written by
			// this writer; failing to re-read it is an I/O-level problem,
			// not a torn tail.
			return fmt.Errorf("wal: truncate-prefix scan at offset %d: %w", cut, err)
		}
		epoch, err := codec.NewDecoder(payload).Uvarint()
		if err != nil {
			return fmt.Errorf("wal: truncate-prefix scan at offset %d: %w", cut, err)
		}
		if epoch > covered {
			break
		}
		cut += n
	}
	if cut == 0 {
		return nil // nothing covered; the log already starts after the snapshot
	}

	// Copy the suffix to a temp file and swap it in atomically.
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, ".wal-tmp-")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := io.Copy(tmp, io.NewSectionReader(w.f, cut, w.off-cut)); err != nil {
		return cleanup(fmt.Errorf("wal: copying suffix: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("wal: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("wal: %w", err))
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		return cleanup(fmt.Errorf("wal: %w", err))
	}
	// The old fd now points at the renamed-over inode; every later append
	// must go to the new file. Failing to reopen poisons the writer —
	// appending to the orphan inode would acknowledge writes no recovery
	// can ever see.
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		w.failed = fmt.Errorf("wal: log poisoned, cannot reopen after truncate-prefix: %w", err)
		return w.failed
	}
	newOff := w.off - cut
	if _, err := nf.Seek(newOff, io.SeekStart); err != nil {
		nf.Close()
		w.failed = fmt.Errorf("wal: log poisoned, cannot position after truncate-prefix: %w", err)
		return w.failed
	}
	w.f.Close()
	w.f = nf
	w.off = newOff
	w.stats.Truncations++
	if err := codec.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close fsyncs and closes the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	syncErr := w.f.Sync()
	if syncErr == nil {
		w.stats.Fsyncs++
	}
	closeErr := w.f.Close()
	w.lock.Close() // releases the flock; a new Writer may Open the dir
	if syncErr != nil {
		return fmt.Errorf("wal: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("wal: %w", closeErr)
	}
	return nil
}

// Stats returns a snapshot of the writer's counters.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Path returns the log file's path.
func (w *Writer) Path() string { return w.path }

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	Records   int64  // valid records replayed
	Bytes     int64  // bytes they span (headers included)
	LastEpoch uint64 // epoch of the last replayed record (0 if none)
	Torn      bool   // a torn tail record was detected and ignored
}

// Replay streams every valid record of the log in dir through fn, in
// append order, stopping cleanly at the first torn record (reported in
// the stats, not as an error — a torn tail is the expected crash
// artifact, and everything before it is a consistent prefix). A missing
// log is an empty log. An error from fn aborts the replay.
func Replay(dir string, fn func(*Record) error) (ReplayStats, error) {
	var st ReplayStats
	f, err := os.Open(filepath.Join(dir, fileName))
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		rec, n, err := readRecord(br)
		if errors.Is(err, io.EOF) {
			return st, nil
		}
		if errors.Is(err, errTorn) {
			st.Torn = true
			return st, nil
		}
		if err != nil {
			return st, err
		}
		if err := fn(rec); err != nil {
			return st, err
		}
		st.Records++
		st.Bytes += n
		st.LastEpoch = rec.Epoch
	}
}

// readRecord is a frame read plus payload decoding. A CRC-valid but
// undecodable payload is reported as torn too — a CRC pass means the
// bytes are exactly what Append wrote, so this is only reachable
// through an encoder bug, not crash damage.
func readRecord(br *bufio.Reader) (*Record, int64, error) {
	payload, n, err := codec.ReadFrame(br)
	if err != nil {
		return nil, 0, err
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return nil, 0, errTorn
	}
	return rec, n, nil
}

// encodePayload appends the varint-packed encoding of rec to b.
func encodePayload(b []byte, rec *Record) ([]byte, error) {
	b = binary.AppendUvarint(b, rec.Epoch)
	b = binary.AppendUvarint(b, uint64(len(rec.Ops)))
	for _, op := range rec.Ops {
		b = codec.AppendString(b, op.Table)
		b = binary.AppendUvarint(b, uint64(len(op.Insert)))
		for _, row := range op.Insert {
			var err error
			if b, err = relation.AppendTuple(b, row); err != nil {
				return nil, err
			}
		}
		b = binary.AppendUvarint(b, uint64(len(op.Delete)))
		for _, id := range op.Delete {
			b = binary.AppendVarint(b, int64(id))
		}
	}
	return b, nil
}

func decodePayload(b []byte) (*Record, error) {
	d := codec.NewDecoder(b)
	epoch, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	nops, err := d.Length()
	if err != nil {
		return nil, err
	}
	rec := &Record{Epoch: epoch, Ops: make([]Op, 0, codec.CapHint(nops))}
	for i := 0; i < nops; i++ {
		var op Op
		if op.Table, err = d.Str(); err != nil {
			return nil, err
		}
		nins, err := d.Length()
		if err != nil {
			return nil, err
		}
		if nins > 0 {
			op.Insert = make([]relation.Tuple, 0, codec.CapHint(nins))
			for j := 0; j < nins; j++ {
				row, err := relation.DecodeTuple(d)
				if err != nil {
					return nil, err
				}
				op.Insert = append(op.Insert, row)
			}
		}
		ndel, err := d.Length()
		if err != nil {
			return nil, err
		}
		if ndel > 0 {
			op.Delete = make([]bsp.VertexID, 0, codec.CapHint(ndel))
			for j := 0; j < ndel; j++ {
				id, err := d.Varint()
				if err != nil {
					return nil, err
				}
				op.Delete = append(op.Delete, bsp.VertexID(id))
			}
		}
		rec.Ops = append(rec.Ops, op)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return rec, nil
}
