package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// sampleRecords covers every value kind, empty sides, and coalesced
// multi-op records.
func sampleRecords() []*Record {
	return []*Record{
		{Epoch: 1, Ops: []Op{{
			Table: "items",
			Insert: []relation.Tuple{
				{relation.Int(42), relation.Str("hello"), relation.Float(3.25)},
				{relation.Null, relation.Bool(true), relation.Date(19000)},
			},
		}}},
		{Epoch: 2, Ops: []Op{
			{Delete: []bsp.VertexID{7, 9, 1024}},
			{Table: "groups", Insert: []relation.Tuple{{relation.Str("")}}, Delete: []bsp.VertexID{0}},
		}},
		{Epoch: 3, Ops: []Op{{Table: "t", Insert: []relation.Tuple{{relation.Int(-5)}}}}},
	}
}

func appendAll(t *testing.T, w *Writer, recs []*Record) {
	t.Helper()
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, dir string) ([]*Record, ReplayStats) {
	t.Helper()
	var got []*Record
	st, err := Replay(dir, func(rec *Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, st
}

// TestRoundTrip: what goes in comes back, byte for byte, across every
// value kind and op shape.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, st := replayAll(t, dir)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed records differ:\n got %+v\nwant %+v", got, recs)
	}
	if st.Records != int64(len(recs)) || st.Torn || st.LastEpoch != 3 {
		t.Errorf("replay stats = %+v, want %d records, no torn tail, last epoch 3", st, len(recs))
	}
	fi, err := os.Stat(filepath.Join(dir, fileName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != st.Bytes {
		t.Errorf("log holds %d bytes, replay accounted %d", fi.Size(), st.Bytes)
	}
}

// TestTornTailIgnoredAndRecovered: a record cut short by a crash is
// detected via its frame/CRC, ignored by Replay, and truncated off by
// the next Open so appends continue from a clean prefix.
func TestTornTailIgnoredAndRecovered(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: the tail record loses its last 3 bytes.
	path := filepath.Join(dir, fileName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	got, st := replayAll(t, dir)
	if len(got) != len(recs)-1 || !st.Torn {
		t.Fatalf("replay after tear: %d records torn=%v, want %d records torn=true", len(got), st.Torn, len(recs)-1)
	}
	if !reflect.DeepEqual(got, recs[:len(recs)-1]) {
		t.Fatal("surviving prefix differs from what was appended")
	}

	// A corrupt (bit-flipped) record is equally ignored: flip the last
	// byte of the valid prefix, inside the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[st.Bytes-1] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	got, st = replayAll(t, dir)
	if len(got) != len(recs)-2 || !st.Torn {
		t.Fatalf("replay after corruption: %d records torn=%v, want %d records torn=true", len(got), st.Torn, len(recs)-2)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Recovery: Open truncates the torn tail, and a fresh append lands
	// right after the valid prefix.
	w2, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	next := &Record{Epoch: recs[len(recs)-2].Epoch + 1, Ops: []Op{{Delete: []bsp.VertexID{1}}}}
	if err := w2.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, st = replayAll(t, dir)
	if len(got) != len(recs) || st.Torn {
		t.Fatalf("replay after recovery: %d records torn=%v, want %d records torn=false", len(got), st.Torn, len(recs))
	}
	if !reflect.DeepEqual(got[len(got)-1], next) {
		t.Error("post-recovery append did not survive")
	}
}

// TestTruncate: snapshot-then-truncate compaction resets the log to
// empty and the writer keeps working.
func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, sampleRecords())
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	if len(got) != 0 {
		t.Fatalf("replay after truncate returned %d records, want 0", len(got))
	}
	after := &Record{Epoch: 4, Ops: []Op{{Table: "t", Insert: []relation.Tuple{{relation.Int(1)}}}}}
	if err := w.Append(after); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if len(got) != 1 || !reflect.DeepEqual(got[0], after) || st.Torn {
		t.Fatalf("replay after post-truncate append = %d records (torn=%v), want the one new record", len(got), st.Torn)
	}
}

// TestSyncPolicies: the fsync counters reflect the policy — every
// append under always, none under never (until Close), and at most
// time/interval under interval.
func TestSyncPolicies(t *testing.T) {
	recs := sampleRecords()

	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs)
	if st := w.Stats(); st.Fsyncs != int64(len(recs)) {
		t.Errorf("always: %d fsyncs for %d appends", st.Fsyncs, len(recs))
	}
	w.Close()

	dir = t.TempDir()
	w, err = Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs)
	if st := w.Stats(); st.Fsyncs != 0 {
		t.Errorf("never: %d fsyncs before Close, want 0", st.Fsyncs)
	}
	w.Close()
	if st := w.Stats(); st.Fsyncs != 1 {
		t.Errorf("never: %d fsyncs after Close, want 1", st.Fsyncs)
	}

	dir = t.TempDir()
	w, err = Open(dir, Options{Policy: SyncInterval, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, recs)
	if st := w.Stats(); st.Fsyncs != 0 {
		t.Errorf("interval(1h): %d fsyncs within the interval, want 0", st.Fsyncs)
	}
	w.Close()
}

// TestIntervalSyncBoundedLag: the last write before an idle stretch is
// still fsynced within the interval — by the background timer, not a
// later append that may never come.
func TestIntervalSyncBoundedLag(t *testing.T) {
	w, err := Open(t.TempDir(), Options{Policy: SyncInterval, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no background fsync within 2s of an idle append (interval 20ms)")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEmptyAndMissingLogs: replaying a missing or empty log is a clean
// no-op, not an error.
func TestEmptyAndMissingLogs(t *testing.T) {
	got, st := replayAll(t, filepath.Join(t.TempDir(), "nonexistent"))
	if len(got) != 0 || st.Torn || st.Records != 0 {
		t.Fatalf("missing log replay = %d records %+v", len(got), st)
	}
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, st = replayAll(t, dir)
	if len(got) != 0 || st.Torn {
		t.Fatalf("empty log replay = %d records %+v", len(got), st)
	}
}
