package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestGoldenLogByteIdentity pins the on-disk format across the codec
// extraction: a log written by the pre-refactor encoder
// (testdata/golden.log) still opens and replays, and the current
// encoder produces exactly its bytes for the same records. Any
// framing or value-codec drift fails here before it can strand
// existing logs.
func TestGoldenLogByteIdentity(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden.log"))
	if err != nil {
		t.Fatal(err)
	}

	// The pre-refactor log replays in full.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, fileName), golden, 0o644); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	want := sampleRecords()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden log replays differently:\n got %+v\nwant %+v", got, want)
	}
	if st.Torn || st.Records != int64(len(want)) {
		t.Fatalf("golden replay stats = %+v", st)
	}

	// Opening it for appending does not rewrite history.
	w, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, fileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, golden) {
		t.Fatal("Open modified a fully-valid golden log")
	}

	// A fresh writer emits byte-identical frames for the same records.
	dir2 := t.TempDir()
	w2, err := Open(dir2, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w2, want)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	fresh, err := os.ReadFile(filepath.Join(dir2, fileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, golden) {
		t.Fatalf("rebased encoder output differs from golden:\n got %x\nwant %x", fresh, golden)
	}
}

// TestTruncatePrefix: records at or below the covered epoch are
// dropped, the suffix survives byte-for-byte, and the writer keeps
// appending to the compacted log.
func TestTruncatePrefix(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords() // epochs 1, 2, 3
	appendAll(t, w, recs)

	// Covering nothing is a no-op.
	if err := w.TruncatePrefix(0); err != nil {
		t.Fatal(err)
	}
	if got, _ := replayAll(t, dir); len(got) != len(recs) {
		t.Fatalf("no-op truncate left %d records, want %d", len(got), len(recs))
	}
	if st := w.Stats(); st.Truncations != 0 {
		t.Fatalf("no-op truncate counted: %d", st.Truncations)
	}

	// Covering epoch 2 keeps only the epoch-3 suffix.
	if err := w.TruncatePrefix(2); err != nil {
		t.Fatal(err)
	}
	got, st := replayAll(t, dir)
	if len(got) != 1 || !reflect.DeepEqual(got[0], recs[2]) || st.Torn {
		t.Fatalf("after TruncatePrefix(2): %d records (torn=%v), want just epoch 3", len(got), st.Torn)
	}

	// The writer appends to the compacted file, not the orphan inode.
	next := &Record{Epoch: 4, Ops: recs[0].Ops}
	if err := w.Append(next); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = replayAll(t, dir)
	if len(got) != 2 || !reflect.DeepEqual(got[1], next) {
		t.Fatalf("post-truncate append lost: %d records", len(got))
	}

	// Reopen sees a clean log and no stray temp files.
	w2, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Covering everything empties the log.
	if err := w2.TruncatePrefix(100); err != nil {
		t.Fatal(err)
	}
	if got, _ := replayAll(t, dir); len(got) != 0 {
		t.Fatalf("full coverage left %d records", len(got))
	}
	if st := w2.Stats(); st.Truncations != 1 {
		t.Fatalf("Truncations = %d, want 1", st.Truncations)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != fileName && e.Name() != lockName {
			t.Fatalf("stray file after compaction: %s", e.Name())
		}
	}
}
