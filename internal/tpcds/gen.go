// Package tpcds generates a TPC-DS-like benchmark database and query
// workload (§8.1.1). The official dsdgen/dsqgen tools are not
// redistributable, so the generator is a deterministic synthetic
// equivalent that keeps the properties the paper's evaluation relies on:
// a multiple-snowflake schema with three fact tables and shared dimension
// tables, fact tables that scale linearly while dimensions scale
// sub-linearly (square root here), wider tables than TPC-H, and NULLs
// allowed in any non-key column.
package tpcds

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/relation"
)

// Base row counts at scale 1.0. Facts scale linearly, dimensions with
// sqrt(scale) — the paper's sub-linear dimension scaling.
const (
	dateDays      = 1826 // 1998-01-01 .. 2002-12-31
	itemBase      = 180
	customerBase  = 120
	addressBase   = 60
	storeBase     = 12
	promoBase     = 30
	warehouseRows = 5
	storeSalesPer = 3000
	webSalesPer   = 1500
	catSalesPer   = 1500
	nullPct       = 3 // % NULLs in nullable columns
)

var (
	states     = []string{"CA", "TX", "NY", "WA", "OR", "IL", "GA", "FL", "OH", "MI"}
	cities     = []string{"Fairview", "Midway", "Centerville", "Oak Grove", "Pleasant Hill", "Riverside", "Salem", "Georgetown"}
	categories = []string{"Books", "Electronics", "Home", "Jewelry", "Men", "Music", "Shoes", "Sports", "Toys", "Women"}
	classes    = []string{"accessories", "classical", "fiction", "fragrances", "mens watch", "portable", "reference"}
	dayNames   = []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
)

type gen struct {
	rng *rand.Rand
}

// maybeNull replaces v by NULL with probability nullPct%.
func (g *gen) maybeNull(v relation.Value) relation.Value {
	if g.rng.Intn(100) < nullPct {
		return relation.Null
	}
	return v
}

func dimScaled(base int, scale float64) int {
	n := int(float64(base) * math.Sqrt(scale))
	if n < 3 {
		n = 3
	}
	return n
}

// Generate builds the catalog at the given scale factor, deterministically
// from the seed.
func Generate(scale float64, seed int64) *relation.Catalog {
	if scale <= 0 {
		scale = 1
	}
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	cat := relation.NewCatalog()

	nItem := dimScaled(itemBase, scale)
	nCust := dimScaled(customerBase, scale)
	nAddr := dimScaled(addressBase, scale)
	nStore := dimScaled(storeBase, scale)
	nPromo := dimScaled(promoBase, scale)

	// date_dim: fixed calendar.
	dateDim := relation.New("date_dim", relation.MustSchema(
		relation.Col("d_date_sk", relation.KindInt),
		relation.Col("d_date", relation.KindDate),
		relation.Col("d_year", relation.KindInt),
		relation.Col("d_moy", relation.KindInt),
		relation.Col("d_dom", relation.KindInt),
		relation.Col("d_qoy", relation.KindInt),
		relation.Col("d_day_name", relation.KindString)))
	start := relation.DateOf(1998, 1, 1).AsInt()
	for i := 0; i < dateDays; i++ {
		d := relation.Date(start + int64(i))
		year := 1998 + i/365
		moy := (i/30)%12 + 1
		dateDim.MustAppend(relation.Int(int64(2450000+i)), d,
			relation.Int(int64(year)), relation.Int(int64(moy)),
			relation.Int(int64(i%30+1)), relation.Int(int64((moy-1)/3+1)),
			relation.Str(dayNames[i%7]))
	}
	cat.MustAdd(dateDim)
	cat.SetPrimaryKey("date_dim", "d_date_sk")

	// item
	item := relation.New("item", relation.MustSchema(
		relation.Col("i_item_sk", relation.KindInt),
		relation.Col("i_item_id", relation.KindString),
		relation.Col("i_category", relation.KindString),
		relation.Col("i_class", relation.KindString),
		relation.Col("i_brand", relation.KindString),
		relation.Col("i_current_price", relation.KindFloat),
		relation.Col("i_manufact_id", relation.KindInt)))
	for i := 1; i <= nItem; i++ {
		item.MustAppend(relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("AAAAAAAA%08d", i)),
			g.maybeNull(relation.Str(categories[g.rng.Intn(len(categories))])),
			g.maybeNull(relation.Str(classes[g.rng.Intn(len(classes))])),
			g.maybeNull(relation.Str(fmt.Sprintf("brand#%d", 1+g.rng.Intn(20)))),
			relation.Float(float64(100+g.rng.Intn(9900))/100),
			g.maybeNull(relation.Int(int64(1+g.rng.Intn(100)))))
	}
	cat.MustAdd(item)
	cat.SetPrimaryKey("item", "i_item_sk")

	// customer_address
	addr := relation.New("customer_address", relation.MustSchema(
		relation.Col("ca_address_sk", relation.KindInt),
		relation.Col("ca_city", relation.KindString),
		relation.Col("ca_state", relation.KindString),
		relation.Col("ca_country", relation.KindString),
		relation.Col("ca_gmt_offset", relation.KindInt)))
	for i := 1; i <= nAddr; i++ {
		addr.MustAppend(relation.Int(int64(i)),
			g.maybeNull(relation.Str(cities[g.rng.Intn(len(cities))])),
			g.maybeNull(relation.Str(states[g.rng.Intn(len(states))])),
			relation.Str("United States"),
			g.maybeNull(relation.Int(int64(-5-g.rng.Intn(4)))))
	}
	cat.MustAdd(addr)
	cat.SetPrimaryKey("customer_address", "ca_address_sk")

	// customer
	customer := relation.New("customer", relation.MustSchema(
		relation.Col("c_customer_sk", relation.KindInt),
		relation.Col("c_customer_id", relation.KindString),
		relation.Col("c_current_addr_sk", relation.KindInt),
		relation.Col("c_birth_year", relation.KindInt),
		relation.Col("c_preferred_cust_flag", relation.KindString)))
	for i := 1; i <= nCust; i++ {
		customer.MustAppend(relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("CUST%010d", i)),
			g.maybeNull(relation.Int(int64(1+g.rng.Intn(nAddr)))),
			g.maybeNull(relation.Int(int64(1930+g.rng.Intn(70)))),
			g.maybeNull(relation.Str([]string{"Y", "N"}[g.rng.Intn(2)])))
	}
	cat.MustAdd(customer)
	cat.SetPrimaryKey("customer", "c_customer_sk")
	cat.AddForeignKey(relation.ForeignKey{Table: "customer", Column: "c_current_addr_sk", RefTable: "customer_address", RefColumn: "ca_address_sk"})

	// store
	store := relation.New("store", relation.MustSchema(
		relation.Col("s_store_sk", relation.KindInt),
		relation.Col("s_store_name", relation.KindString),
		relation.Col("s_state", relation.KindString),
		relation.Col("s_market_id", relation.KindInt)))
	for i := 1; i <= nStore; i++ {
		store.MustAppend(relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("store %d", i)),
			g.maybeNull(relation.Str(states[g.rng.Intn(len(states))])),
			g.maybeNull(relation.Int(int64(1+g.rng.Intn(10)))))
	}
	cat.MustAdd(store)
	cat.SetPrimaryKey("store", "s_store_sk")

	// promotion
	promo := relation.New("promotion", relation.MustSchema(
		relation.Col("p_promo_sk", relation.KindInt),
		relation.Col("p_channel_email", relation.KindString),
		relation.Col("p_channel_tv", relation.KindString)))
	for i := 1; i <= nPromo; i++ {
		promo.MustAppend(relation.Int(int64(i)),
			g.maybeNull(relation.Str([]string{"Y", "N"}[g.rng.Intn(2)])),
			g.maybeNull(relation.Str([]string{"Y", "N"}[g.rng.Intn(2)])))
	}
	cat.MustAdd(promo)
	cat.SetPrimaryKey("promotion", "p_promo_sk")

	// warehouse
	warehouse := relation.New("warehouse", relation.MustSchema(
		relation.Col("w_warehouse_sk", relation.KindInt),
		relation.Col("w_state", relation.KindString)))
	for i := 1; i <= warehouseRows; i++ {
		warehouse.MustAppend(relation.Int(int64(i)), relation.Str(states[i%len(states)]))
	}
	cat.MustAdd(warehouse)
	cat.SetPrimaryKey("warehouse", "w_warehouse_sk")

	// Fact tables. Dates are skewed toward the middle years (TPC-DS's
	// non-uniform distributions).
	dateSK := func() relation.Value {
		i := g.rng.Intn(dateDays)
		if g.rng.Intn(2) == 0 { // re-draw toward the middle
			i = dateDays/4 + g.rng.Intn(dateDays/2)
		}
		return relation.Int(int64(2450000 + i))
	}

	factSchema := func(prefix string, custCol, locCol string) *relation.Schema {
		return relation.MustSchema(
			relation.Col(prefix+"_sold_date_sk", relation.KindInt),
			relation.Col(prefix+"_item_sk", relation.KindInt),
			relation.Col(custCol, relation.KindInt),
			relation.Col(locCol, relation.KindInt),
			relation.Col(prefix+"_promo_sk", relation.KindInt),
			relation.Col(prefix+"_quantity", relation.KindInt),
			relation.Col(prefix+"_sales_price", relation.KindFloat),
			relation.Col(prefix+"_ext_sales_price", relation.KindFloat),
			relation.Col(prefix+"_net_profit", relation.KindFloat))
	}
	fillFact := func(r *relation.Relation, rows, nLoc int) {
		for i := 0; i < rows; i++ {
			qty := 1 + g.rng.Intn(100)
			price := float64(100+g.rng.Intn(29900)) / 100
			r.MustAppend(
				g.maybeNull(dateSK()),
				relation.Int(int64(1+g.rng.Intn(nItem))),
				g.maybeNull(relation.Int(int64(1+g.rng.Intn(nCust)))),
				g.maybeNull(relation.Int(int64(1+g.rng.Intn(nLoc)))),
				g.maybeNull(relation.Int(int64(1+g.rng.Intn(nPromo)))),
				relation.Int(int64(qty)),
				relation.Float(price),
				relation.Float(price*float64(qty)),
				relation.Float(price*float64(qty)*(0.1+g.rng.Float64()*0.4)))
		}
	}

	ss := relation.New("store_sales", factSchema("ss", "ss_customer_sk", "ss_store_sk"))
	fillFact(ss, int(storeSalesPer*scale), nStore)
	cat.MustAdd(ss)
	ws := relation.New("web_sales", factSchema("ws", "ws_bill_customer_sk", "ws_warehouse_sk"))
	fillFact(ws, int(webSalesPer*scale), warehouseRows)
	cat.MustAdd(ws)
	cs := relation.New("catalog_sales", factSchema("cs", "cs_bill_customer_sk", "cs_warehouse_sk"))
	fillFact(cs, int(catSalesPer*scale), warehouseRows)
	cat.MustAdd(cs)

	for _, fk := range []struct{ t, c, rt, rc string }{
		{"store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"},
		{"store_sales", "ss_item_sk", "item", "i_item_sk"},
		{"store_sales", "ss_customer_sk", "customer", "c_customer_sk"},
		{"store_sales", "ss_store_sk", "store", "s_store_sk"},
		{"store_sales", "ss_promo_sk", "promotion", "p_promo_sk"},
		{"web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk"},
		{"web_sales", "ws_item_sk", "item", "i_item_sk"},
		{"web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk"},
		{"web_sales", "ws_warehouse_sk", "warehouse", "w_warehouse_sk"},
		{"catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"},
		{"catalog_sales", "cs_item_sk", "item", "i_item_sk"},
		{"catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"},
		{"catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk"},
	} {
		cat.AddForeignKey(relation.ForeignKey{Table: fk.t, Column: fk.c, RefTable: fk.rt, RefColumn: fk.rc})
	}
	return cat
}
