package tpcds

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/tag"
)

func TestGenerateDeterministicAndScaled(t *testing.T) {
	a := Generate(1, 5)
	b := Generate(1, 5)
	for _, n := range a.Names() {
		if !relation.EqualMultiset(a.Get(n), b.Get(n)) {
			t.Errorf("table %s not deterministic", n)
		}
	}
	big := Generate(4, 5)
	// Facts scale linearly.
	if big.Get("store_sales").Len() != 4*a.Get("store_sales").Len() {
		t.Errorf("store_sales scaling: %d vs %d", a.Get("store_sales").Len(), big.Get("store_sales").Len())
	}
	// Dimensions scale sub-linearly (~2x for 4x scale).
	ratio := float64(big.Get("item").Len()) / float64(a.Get("item").Len())
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("item dim scaling ratio = %.2f, want ~2", ratio)
	}
	// date_dim is fixed.
	if big.Get("date_dim").Len() != a.Get("date_dim").Len() {
		t.Error("date_dim must not scale")
	}
}

func TestNullsPresent(t *testing.T) {
	cat := Generate(1, 5)
	nulls := 0
	for _, tp := range cat.Get("store_sales").Tuples {
		for _, v := range tp {
			if v.IsNull() {
				nulls++
			}
		}
	}
	if nulls == 0 {
		t.Error("TPC-DS-like data must contain NULLs")
	}
	// Primary keys never NULL.
	for _, tp := range cat.Get("item").Tuples {
		if tp[0].IsNull() {
			t.Fatal("PK must not be NULL")
		}
	}
}

func TestAllQueriesAnalyze(t *testing.T) {
	cat := Generate(0.5, 1)
	for _, q := range Queries() {
		if _, err := sql.AnalyzeString(cat, q.SQL); err != nil {
			t.Errorf("%s: %v", q.ID, err)
		}
	}
	if len(Queries()) != 25 {
		t.Errorf("workload has %d queries, want 25", len(Queries()))
	}
	classes := map[string]int{}
	for _, q := range Queries() {
		classes[q.Class]++
	}
	if classes["noagg"] < 3 || classes["local"] < 8 || classes["global"] < 9 || classes["scalar"] < 4 {
		t.Errorf("class coverage = %v", classes)
	}
}

func TestEnginesAgreeOnWorkload(t *testing.T) {
	cat := Generate(0.3, 17)
	g, err := tag.Build(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExecutor(g, bsp.Options{Workers: 4})
	base := baseline.New(cat)

	for _, q := range Queries() {
		got, err := ex.Query(q.SQL)
		if err != nil {
			t.Errorf("%s TAG: %v", q.ID, err)
			continue
		}
		want, err := base.Query(q.SQL)
		if err != nil {
			t.Errorf("%s baseline: %v", q.ID, err)
			continue
		}
		if !relation.EqualMultisetFuzzy(got, want) {
			onlyG, onlyW := relation.DiffMultiset(got, want, 3)
			t.Errorf("%s MISMATCH: TAG %d rows vs baseline %d rows\nonly TAG: %v\nonly base: %v",
				q.ID, got.Len(), want.Len(), onlyG, onlyW)
		}
	}
}
