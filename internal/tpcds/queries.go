package tpcds

// Query is one workload entry; Class follows the §7/Figure 15 grouping.
type Query struct {
	ID    string
	SQL   string
	Class string // "noagg", "local", "global", "scalar"
	Corr  bool
	Note  string
}

// Queries returns the 24-query TPC-DS-like workload. The paper evaluates
// 84 of the 99 official queries; this reproduction keeps a representative
// subset spanning the dimensions its analysis groups by — aggregation
// class (none/local/global/scalar), fact×dimension join width, multi-fact
// UNION ALL blocks, and correlated subqueries — with ids echoing the
// official queries each shape is modeled on. All run without ORDER BY and
// LIMIT (§8.1.1).
func Queries() []Query {
	return []Query{
		// ---- no aggregation (q37/q82/q84 shapes) ----
		{ID: "q37", Class: "noagg", SQL: `
SELECT DISTINCT i_item_id, i_current_price
FROM item, catalog_sales, date_dim
WHERE i_item_sk = cs_item_sk AND cs_sold_date_sk = d_date_sk
  AND d_year = 2000 AND i_current_price BETWEEN 20 AND 45
  AND i_manufact_id BETWEEN 1 AND 40`},

		{ID: "q82", Class: "noagg", SQL: `
SELECT DISTINCT i_item_id, i_current_price
FROM item, store_sales, date_dim
WHERE i_item_sk = ss_item_sk AND ss_sold_date_sk = d_date_sk
  AND d_year = 2001 AND i_current_price BETWEEN 10 AND 35
  AND i_manufact_id BETWEEN 20 AND 60`},

		{ID: "q84", Class: "noagg", SQL: `
SELECT DISTINCT c_customer_id, ca_city
FROM customer, customer_address, store_sales
WHERE c_current_addr_sk = ca_address_sk AND ss_customer_sk = c_customer_sk
  AND ca_city = 'Fairview'`},

		// ---- local aggregation ----
		{ID: "q42", Class: "local", SQL: `
SELECT i_category, SUM(ss_ext_sales_price) AS total_sales
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
  AND d_year = 2000 AND i_category IS NOT NULL
GROUP BY i_category`},

		{ID: "q52", Class: "local", SQL: `
SELECT i_brand, SUM(ss_ext_sales_price) AS ext_price
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
  AND d_moy = 11 AND d_year = 1999
GROUP BY i_brand`},

		{ID: "q55", Class: "local", SQL: `
SELECT i_brand, SUM(ws_ext_sales_price)
FROM web_sales, item, date_dim
WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk
  AND d_moy = 12 AND d_year = 2000 AND i_manufact_id BETWEEN 1 AND 50
GROUP BY i_brand`},

		{ID: "q7", Class: "local", SQL: `
SELECT i_item_id, AVG(ss_quantity), AVG(ss_sales_price), AVG(ss_ext_sales_price)
FROM store_sales, item, date_dim, promotion
WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
  AND ss_promo_sk = p_promo_sk AND d_year = 2000
  AND (p_channel_email = 'N' OR p_channel_tv = 'N')
GROUP BY i_item_id`},

		{ID: "q12", Class: "local", SQL: `
SELECT i_item_id, i_category, SUM(ws_ext_sales_price) AS itemrevenue
FROM web_sales, item, date_dim
WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk
  AND i_category IN ('Books', 'Home', 'Sports')
  AND d_date BETWEEN DATE '1999-02-22' AND DATE '1999-02-22' + INTERVAL '90' DAY
GROUP BY i_item_id, i_category`,
			Note: "i_item_id keys the group (item id determines category)"},

		{ID: "q56", Class: "local", Note: "the WITH-clause arms become one UNION ALL chain", SQL: `
SELECT i_item_id, SUM(ss_ext_sales_price) AS total_sales
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
  AND d_year = 2001 AND d_moy = 2 AND i_category = 'Music'
GROUP BY i_item_id
UNION ALL
SELECT i_item_id, SUM(ws_ext_sales_price) AS total_sales
FROM web_sales, item, date_dim
WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk
  AND d_year = 2001 AND d_moy = 2 AND i_category = 'Music'
GROUP BY i_item_id
UNION ALL
SELECT i_item_id, SUM(cs_ext_sales_price) AS total_sales
FROM catalog_sales, item, date_dim
WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
  AND d_year = 2001 AND d_moy = 2 AND i_category = 'Music'
GROUP BY i_item_id`},

		{ID: "q1", Class: "local", Corr: true, Note: "store-returns correlation becomes a per-store profit threshold", SQL: `
SELECT c_customer_id, COUNT(*) AS cnt
FROM store_sales, customer
WHERE ss_customer_sk = c_customer_sk
  AND ss_net_profit > (SELECT 1.2 * AVG(ss2.ss_net_profit)
                       FROM store_sales ss2
                       WHERE ss2.ss_store_sk = ss_store_sk)
GROUP BY c_customer_id`},

		{ID: "q50", Class: "local", SQL: `
SELECT s_store_name, SUM(ss_net_profit)
FROM store_sales, store, date_dim
WHERE ss_store_sk = s_store_sk AND ss_sold_date_sk = d_date_sk
  AND d_year = 2001
GROUP BY s_store_name`},

		// ---- global aggregation ----
		{ID: "q18", Class: "global", SQL: `
SELECT i_category, ca_state, AVG(cs_quantity), AVG(cs_ext_sales_price)
FROM catalog_sales, item, customer, customer_address, date_dim
WHERE cs_item_sk = i_item_sk AND cs_bill_customer_sk = c_customer_sk
  AND c_current_addr_sk = ca_address_sk AND cs_sold_date_sk = d_date_sk
  AND d_year = 2001
GROUP BY i_category, ca_state`},

		{ID: "q22", Class: "global", SQL: `
SELECT i_category, i_brand, AVG(cs_quantity) AS qoh
FROM catalog_sales, item, warehouse, date_dim
WHERE cs_item_sk = i_item_sk AND cs_warehouse_sk = w_warehouse_sk
  AND cs_sold_date_sk = d_date_sk AND d_year BETWEEN 1999 AND 2001
GROUP BY i_category, i_brand`},

		{ID: "q45", Class: "global", SQL: `
SELECT ca_city, d_year, SUM(ws_ext_sales_price)
FROM web_sales, customer, customer_address, date_dim
WHERE ws_bill_customer_sk = c_customer_sk AND c_current_addr_sk = ca_address_sk
  AND ws_sold_date_sk = d_date_sk AND d_qoy = 2
GROUP BY ca_city, d_year`},

		{ID: "q69", Class: "global", Corr: true, SQL: `
SELECT ca_state, c_preferred_cust_flag, COUNT(*) AS cnt
FROM customer, customer_address
WHERE c_current_addr_sk = ca_address_sk
  AND EXISTS (SELECT 1 FROM store_sales, date_dim
              WHERE ss_customer_sk = c_customer_sk AND ss_sold_date_sk = d_date_sk
                AND d_year = 2001)
  AND NOT EXISTS (SELECT 1 FROM web_sales, date_dim
                  WHERE ws_bill_customer_sk = c_customer_sk AND ws_sold_date_sk = d_date_sk
                    AND d_year = 2001)
GROUP BY ca_state, c_preferred_cust_flag`},

		{ID: "q74", Class: "global", SQL: `
SELECT c_customer_id, d_year, SUM(ss_net_profit)
FROM store_sales, customer, date_dim
WHERE ss_customer_sk = c_customer_sk AND ss_sold_date_sk = d_date_sk
  AND d_year IN (1999, 2000)
GROUP BY c_customer_id, d_year`},

		{ID: "q31", Class: "global", SQL: `
SELECT ca_city, d_qoy, SUM(ss_ext_sales_price)
FROM store_sales, customer, customer_address, date_dim
WHERE ss_customer_sk = c_customer_sk AND c_current_addr_sk = ca_address_sk
  AND ss_sold_date_sk = d_date_sk AND d_year = 2000
GROUP BY ca_city, d_qoy`},

		{ID: "q66", Class: "global", Note: "two-channel warehouse rollup as a UNION ALL chain", SQL: `
SELECT w_state, d_year, SUM(ws_ext_sales_price) AS sales
FROM web_sales, warehouse, date_dim
WHERE ws_warehouse_sk = w_warehouse_sk AND ws_sold_date_sk = d_date_sk
GROUP BY w_state, d_year
UNION ALL
SELECT w_state, d_year, SUM(cs_ext_sales_price) AS sales
FROM catalog_sales, warehouse, date_dim
WHERE cs_warehouse_sk = w_warehouse_sk AND cs_sold_date_sk = d_date_sk
GROUP BY w_state, d_year`},

		{ID: "q88", Class: "global", SQL: `
SELECT d_day_name, s_store_name, COUNT(*) AS cnt
FROM store_sales, date_dim, store
WHERE ss_sold_date_sk = d_date_sk AND ss_store_sk = s_store_sk
  AND d_year = 2000
GROUP BY d_day_name, s_store_name`},

		{ID: "q76", Class: "global", SQL: `
SELECT i_category, d_year, COUNT(*) AS sales_cnt, SUM(ss_ext_sales_price) AS sales_amt
FROM store_sales, item, date_dim
WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
  AND ss_customer_sk IS NULL
GROUP BY i_category, d_year`,
			Note: "the NULL-channel analysis arm of the official query"},

		{ID: "q33", Class: "global", SQL: `
SELECT i_manufact_id, d_moy, SUM(ss_ext_sales_price) AS total_sales
FROM store_sales, item, date_dim, customer, customer_address
WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
  AND ss_customer_sk = c_customer_sk AND c_current_addr_sk = ca_address_sk
  AND i_category = 'Electronics' AND d_year = 1999 AND ca_gmt_offset = -5
GROUP BY i_manufact_id, d_moy`},

		// ---- scalar aggregation ----
		{ID: "q32", Class: "scalar", Corr: true, SQL: `
SELECT SUM(cs_ext_sales_price) AS excess_discount
FROM catalog_sales, item, date_dim
WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
  AND i_manufact_id BETWEEN 1 AND 30 AND d_year = 2000
  AND cs_ext_sales_price > (SELECT 1.3 * AVG(cs2.cs_ext_sales_price)
                            FROM catalog_sales cs2
                            WHERE cs2.cs_item_sk = cs_item_sk)`},

		{ID: "q94", Class: "scalar", Corr: true, Note: "order-number self-exclusion becomes a cross-channel NOT EXISTS", SQL: `
SELECT COUNT(*) AS order_count, SUM(ws_ext_sales_price) AS total_price
FROM web_sales, date_dim, customer_address
WHERE ws_sold_date_sk = d_date_sk AND d_year = 2000
  AND ws_bill_customer_sk IS NOT NULL
  AND EXISTS (SELECT 1 FROM customer
              WHERE c_customer_sk = ws_bill_customer_sk
                AND c_current_addr_sk = ca_address_sk)
  AND ca_state = 'CA'
  AND NOT EXISTS (SELECT 1 FROM catalog_sales
                  WHERE cs_bill_customer_sk = ws_bill_customer_sk
                    AND cs_ext_sales_price > 250)`},

		{ID: "q96", Class: "scalar", SQL: `
SELECT COUNT(*) AS cnt
FROM store_sales, store, date_dim
WHERE ss_store_sk = s_store_sk AND ss_sold_date_sk = d_date_sk
  AND d_day_name = 'Saturday' AND ss_quantity BETWEEN 20 AND 60
  AND s_market_id BETWEEN 1 AND 5`},

		{ID: "q90", Class: "scalar", Note: "the AM/PM time-of-day ratio becomes a half-year ratio (no time dimension)", SQL: `
SELECT SUM(CASE WHEN d_moy <= 6 THEN 1 ELSE 0 END) /
       SUM(CASE WHEN d_moy > 6 THEN 1.0 ELSE 0 END) AS ratio
FROM web_sales, date_dim
WHERE ws_sold_date_sk = d_date_sk AND d_year = 2001 AND ws_quantity BETWEEN 10 AND 90`},
	}
}

// ByID returns the query with the given id, or nil.
func ByID(id string) *Query {
	for _, q := range Queries() {
		if q.ID == id {
			return &q
		}
	}
	return nil
}
