// Package checkpoint persists epoch-stamped snapshots of a served TAG
// graph, the "bounded state image" half of snapshot-then-truncate
// compaction. A checkpoint file is a header frame (magic, version, the
// epoch the image captures, and the base fingerprint tying it to its
// WAL dir) followed by a tag snapshot, all in the shared frame codec.
//
// Files are written atomically — temp file, fsync, rename, dir fsync —
// so a crash mid-write leaves only a stray temp file, never a
// half-checkpoint under the real name. Loading is fail-soft: a torn,
// bit-flipped, or foreign-base checkpoint is skipped (boot falls back
// to the previous checkpoint, or to full rebuild + full WAL replay),
// because the WAL prefix a checkpoint covers is only truncated AFTER
// the checkpoint is durably on disk — so there is always some
// combination of image + log that reconstructs the served state.
package checkpoint

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"encoding/binary"

	"repro/internal/codec"
	"repro/internal/tag"
)

const (
	version   = 1
	prefix    = "checkpoint-"
	suffix    = ".ckpt"
	tmpPrefix = ".ckpt-tmp-"
)

var magic = []byte("TAGCKPT1")

// ErrForeignBase reports a checkpoint whose base fingerprint does not
// match the base it is being loaded for: it captures some other
// database's state and must not be applied.
var ErrForeignBase = errors.New("checkpoint: snapshot belongs to a different base")

// FileName returns the name a checkpoint covering epoch gets; the
// zero-padded epoch makes lexicographic order epoch order.
func FileName(epoch uint64) string {
	return fmt.Sprintf("%s%020d%s", prefix, epoch, suffix)
}

func parseEpoch(name string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 20 {
		return 0, false
	}
	var epoch uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		epoch = epoch*10 + uint64(c-'0')
	}
	return epoch, true
}

// Write atomically persists a checkpoint of g covering epoch into dir
// and returns its path. After a successful rename it best-effort
// garbage-collects older checkpoints and stray temp files — they are
// strictly dominated by the new image. The caller must only truncate
// the covered WAL prefix after Write returns nil.
func Write(dir string, g *tag.Graph, epoch uint64, baseFP string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix)
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	cleanup := func(err error) (string, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	bw := bufio.NewWriterSize(tmp, 1<<20)
	var hdr []byte
	hdr = append(hdr, magic...)
	hdr = binary.AppendUvarint(hdr, version)
	hdr = binary.AppendUvarint(hdr, epoch)
	hdr = codec.AppendString(hdr, baseFP)
	if err := codec.WriteFrame(bw, hdr); err != nil {
		return cleanup(fmt.Errorf("checkpoint: %w", err))
	}
	if err := g.WriteSnapshot(bw); err != nil {
		return cleanup(fmt.Errorf("checkpoint: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, FileName(epoch))
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := codec.SyncDir(dir); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	gc(dir, epoch)
	return path, nil
}

// gc best-effort removes checkpoints older than keep and any stray temp
// files (crash leftovers). Failures are ignored: stale files waste disk
// but never correctness — loading prefers the newest valid image.
func gc(dir string, keep uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if epoch, ok := parseEpoch(name); ok && epoch < keep {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// Info identifies one checkpoint file on disk.
type Info struct {
	Path  string
	Epoch uint64
}

// List returns the checkpoints in dir, oldest first. A missing dir is
// an empty list.
func List(dir string) ([]Info, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var out []Info
	for _, e := range entries {
		if epoch, ok := parseEpoch(e.Name()); ok {
			out = append(out, Info{Path: filepath.Join(dir, e.Name()), Epoch: epoch})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out, nil
}

// Load reads one checkpoint file, verifying the header, the base
// fingerprint (ErrForeignBase on mismatch), the snapshot itself, and
// that nothing trails it. It returns the decoded graph and the epoch
// the image captures.
func Load(path, baseFP string) (*tag.Graph, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	hdr, _, err := codec.ReadFrame(br)
	if err != nil {
		if err == io.EOF {
			err = codec.ErrCorrupt
		}
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	d := codec.NewDecoder(hdr)
	m, err := d.Take(len(magic))
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if !bytes.Equal(m, magic) {
		return nil, 0, fmt.Errorf("checkpoint %s: not a checkpoint (bad magic)", path)
	}
	ver, err := d.Uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if ver != version {
		return nil, 0, fmt.Errorf("checkpoint %s: unsupported version %d", path, ver)
	}
	epoch, err := d.Uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	fp, err := d.Str()
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := d.Finish(); err != nil {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if fp != baseFP {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, ErrForeignBase)
	}
	g, err := tag.ReadSnapshot(br)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, 0, fmt.Errorf("checkpoint %s: trailing bytes: %w", path, codec.ErrCorrupt)
	}
	return g, epoch, nil
}

// LoadNewest loads the newest checkpoint in dir that verifies against
// baseFP, skipping (and counting) torn, corrupt, or foreign ones — the
// fail-soft boot path. No loadable checkpoint is (nil, 0, skipped, nil),
// not an error: the caller falls back to full rebuild + full replay.
func LoadNewest(dir, baseFP string) (*tag.Graph, uint64, int, error) {
	infos, err := List(dir)
	if err != nil {
		return nil, 0, 0, err
	}
	skipped := 0
	for i := len(infos) - 1; i >= 0; i-- {
		g, epoch, err := Load(infos[i].Path, baseFP)
		if err != nil {
			skipped++
			continue
		}
		return g, epoch, skipped, nil
	}
	return nil, 0, skipped, nil
}
