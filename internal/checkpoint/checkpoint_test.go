package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/tag"
)

func buildGraph(t *testing.T, rows int) *tag.Graph {
	t.Helper()
	c := relation.NewCatalog()
	items := relation.New("items", relation.MustSchema(
		relation.Col("id", relation.KindInt),
		relation.Col("name", relation.KindString),
	))
	for i := 0; i < rows; i++ {
		items.Tuples = append(items.Tuples, relation.Tuple{
			relation.Int(int64(i)), relation.Str(strings.Repeat("x", i%5)),
		})
	}
	c.MustAdd(items)
	c.SetPrimaryKey("items", "id")
	g, err := tag.Build(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWriteLoadRoundTrip: a written checkpoint loads back with the
// stamped epoch and an equivalent graph; a wrong fingerprint is
// ErrForeignBase.
func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := buildGraph(t, 20)
	path, err := Write(dir, g, 7, "fp-A")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != FileName(7) {
		t.Fatalf("path %s, want name %s", path, FileName(7))
	}

	loaded, epoch, err := Load(path, "fp-A")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 7 {
		t.Fatalf("epoch = %d, want 7", epoch)
	}
	if loaded.G.NumVertices() != g.G.NumVertices() || loaded.G.NumEdges() != g.G.NumEdges() {
		t.Fatalf("loaded shape %d/%d, want %d/%d",
			loaded.G.NumVertices(), loaded.G.NumEdges(), g.G.NumVertices(), g.G.NumEdges())
	}
	if !reflect.DeepEqual(loaded.TupleVertices("items"), g.TupleVertices("items")) {
		t.Fatal("tuple vertices differ after load")
	}

	if _, _, err := Load(path, "fp-B"); !errors.Is(err, ErrForeignBase) {
		t.Fatalf("foreign fp err = %v, want ErrForeignBase", err)
	}
}

// TestWriteGC: a newer checkpoint removes older ones and stray temp
// files, and stray temps never affect loading.
func TestWriteGC(t *testing.T) {
	dir := t.TempDir()
	g := buildGraph(t, 10)

	// A stray temp file — the artifact a kill during checkpoint write
	// leaves behind.
	stray := filepath.Join(dir, tmpPrefix+"123456")
	if err := os.WriteFile(stray, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Write(dir, g, 3, "fp"); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(dir, g, 8, "fp"); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 1 || names[0] != FileName(8) {
		t.Fatalf("dir after GC = %v, want only %s", names, FileName(8))
	}

	if _, epoch, skipped, err := LoadNewest(dir, "fp"); err != nil || epoch != 8 || skipped != 0 {
		t.Fatalf("LoadNewest = epoch %d skipped %d err %v, want 8/0/nil", epoch, skipped, err)
	}
}

// TestLoadNewestFallback: a corrupt newest checkpoint is skipped in
// favor of an older valid one; with no valid checkpoint at all the
// result is nil without error (boot falls back to full replay).
func TestLoadNewestFallback(t *testing.T) {
	dir := t.TempDir()
	g := buildGraph(t, 10)

	if _, err := Write(dir, g, 3, "fp"); err != nil {
		t.Fatal(err)
	}
	older, err := os.ReadFile(filepath.Join(dir, FileName(3)))
	if err != nil {
		t.Fatal(err)
	}
	newest, err := Write(dir, g, 9, "fp")
	if err != nil {
		t.Fatal(err)
	}
	// Resurrect the older image (Write GC'd it), then corrupt the newest.
	if err := os.WriteFile(filepath.Join(dir, FileName(3)), older, 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, epoch, skipped, err := LoadNewest(dir, "fp")
	if err != nil || loaded == nil || epoch != 3 || skipped != 1 {
		t.Fatalf("LoadNewest = %v epoch %d skipped %d err %v, want valid/3/1/nil", loaded != nil, epoch, skipped, err)
	}

	// A foreign-base checkpoint is equally skipped (fail-soft): corrupting
	// both leaves nothing loadable, which is a clean fallback, not an error.
	if err := os.Remove(filepath.Join(dir, FileName(3))); err != nil {
		t.Fatal(err)
	}
	loaded, epoch, skipped, err = LoadNewest(dir, "other-base")
	if err != nil || loaded != nil || epoch != 0 || skipped != 1 {
		t.Fatalf("LoadNewest(all invalid) = %v/%d/%d/%v, want nil/0/1/nil", loaded != nil, epoch, skipped, err)
	}

	// Truncated mid-snapshot: skipped too.
	if err := os.WriteFile(filepath.Join(dir, FileName(9)), data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, _, skipped, err = LoadNewest(dir, "fp")
	if err != nil || loaded != nil || skipped != 1 {
		t.Fatalf("LoadNewest(torn) = %v skipped %d err %v, want nil/1/nil", loaded != nil, skipped, err)
	}

	// Empty / missing dir: clean no-checkpoint result.
	if loaded, epoch, skipped, err := LoadNewest(filepath.Join(dir, "nope"), "fp"); err != nil || loaded != nil || epoch != 0 || skipped != 0 {
		t.Fatalf("LoadNewest(missing dir) = %v/%d/%d/%v", loaded != nil, epoch, skipped, err)
	}
}
