package bsp

import (
	"math/rand"
	"testing"
)

// sumProgram exercises the combined plane: active vertices send a
// deterministic pseudo-random int64 along every edge for a fixed number
// of supersteps; receivers total their inbox — handling both plain and
// folded payloads — and emit (vertex, total, logical count), output
// that must be byte-identical whether or not the plane folded.
type sumProgram struct {
	lbl  LabelID
	hops int
}

func (p *sumProgram) Combiner() Combiner { return SumCombiner{} }

func (p *sumProgram) Compute(ctx *Context, v VertexID, inbox []Message) {
	ctx.AddOps(1 + InboxCount(inbox))
	ctx.AddInt("visits", 1)
	var total int64
	for _, m := range inbox {
		total += m.Payload.(int64)
	}
	if len(inbox) > 0 {
		ctx.Emit([3]int64{int64(v), total, int64(InboxCount(inbox))})
	}
	if ctx.Step() < p.hops {
		ctx.SendAlong(v, p.lbl, int64(int(v)*7+ctx.Step()*13)%100)
	}
}

// TestCombinedMatchesUncombined is the engine-level property test:
// random graph shapes run the same commutative-payload program with
// the combiner enabled and disabled, across worker counts, simulated
// partitionings and serial/sharded merge. The Emit stream, aggregators
// and every paper-facing Stats field must be identical; only the
// combine-plane bookkeeping may differ.
func TestCombinedMatchesUncombined(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(120)
		k := 1 + rng.Intn(6)
		hops := 2 + rng.Intn(3)
		var initial []VertexID
		for len(initial) < 4 {
			v := VertexID(rng.Intn(n))
			initial = append(initial, v)
		}

		// Base: uncombined, serial, single worker.
		g, lbl := meshGraph(n, k)
		base := NewEngine(g, Options{Workers: 1, SerialMerge: true, NoCombine: true})
		baseStats := base.Run(&sumProgram{lbl: lbl, hops: hops}, initial)
		baseEmit := append([]any(nil), base.Emitted()...)
		baseAgg := base.AggInt("visits")
		if baseStats.MessagesCombined != 0 || baseStats.InboxBytesSaved != 0 {
			t.Fatalf("trial %d: NoCombine run reported combine activity: %v", trial, baseStats)
		}

		for _, cfg := range []struct {
			workers, partitions int
			serial, noCombine   bool
		}{
			{1, 1, false, false},
			{2, 1, false, false},
			{8, 1, true, false},
			{4, 3, false, false},
			{4, 3, true, false},
			{4, 3, false, true},
			{8, 1, false, false},
		} {
			g, lbl := meshGraph(n, k)
			eng := NewEngine(g, Options{
				Workers: cfg.workers, Partitions: cfg.partitions,
				SerialMerge: cfg.serial, NoCombine: cfg.noCombine,
			})
			stats := eng.Run(&sumProgram{lbl: lbl, hops: hops}, initial)
			if cfg.partitions == 1 {
				if got, want := stats.Paper(), baseStats.Paper(); got != want {
					t.Errorf("trial %d %+v: stats %v != base %v", trial, cfg, got, want)
				}
			} else if stats.Paper().Messages != baseStats.Messages || stats.Paper().ComputeOps != baseStats.ComputeOps {
				t.Errorf("trial %d %+v: cost %v diverged from base %v", trial, cfg, stats, baseStats)
			}
			if agg := eng.AggInt("visits"); agg != baseAgg {
				t.Errorf("trial %d %+v: agg %d != %d", trial, cfg, agg, baseAgg)
			}
			emitted := eng.Emitted()
			if len(emitted) != len(baseEmit) {
				t.Fatalf("trial %d %+v: %d emits, want %d", trial, cfg, len(emitted), len(baseEmit))
			}
			for j := range emitted {
				if emitted[j] != baseEmit[j] {
					t.Fatalf("trial %d %+v: emit[%d] = %v, want %v", trial, cfg, j, emitted[j], baseEmit[j])
				}
			}
			if !cfg.noCombine && k > 1 && stats.MessagesCombined == 0 {
				t.Errorf("trial %d %+v: dense fan-in folded nothing", trial, cfg)
			}
			if cfg.noCombine && stats.MessagesCombined != 0 {
				t.Errorf("trial %d %+v: NoCombine folded %d messages", trial, cfg, stats.MessagesCombined)
			}
		}
	}
}

// TestCombineAccounting pins the fold bookkeeping on a star graph: n
// leaves send one int64 to the root, so any worker count must deliver
// exactly one message representing n logical sends, with n-1 folds and
// n-1 Message slots saved.
func TestCombineAccounting(t *testing.T) {
	const n = 12
	build := func() (*Graph, LabelID, []VertexID) {
		g := NewGraph()
		lbl := g.Symbols.Intern("to-root")
		root := g.AddVertex(lbl, nil)
		var leaves []VertexID
		for i := 0; i < n; i++ {
			leaf := g.AddVertex(lbl, nil)
			g.AddEdge(leaf, root, lbl)
			leaves = append(leaves, leaf)
		}
		g.Freeze()
		return g, lbl, leaves
	}
	for _, workers := range []int{1, 3, 8} {
		g, lbl, leaves := build()
		var got []any
		prog := WithCombiner(ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
			if ctx.Step() == 0 {
				ctx.SendAlong(v, lbl, int64(1))
				return
			}
			for _, m := range inbox {
				ctx.Emit([2]int64{m.Payload.(int64), int64(m.Count)})
			}
		}), SumCombiner{})
		eng := NewEngine(g, Options{Workers: workers})
		stats := eng.Run(prog, leaves)
		got = append(got, eng.Emitted()...)

		if stats.Messages != n {
			t.Errorf("workers=%d: logical messages = %d, want %d", workers, stats.Messages, n)
		}
		if stats.MessagesCombined != n-1 {
			t.Errorf("workers=%d: combined = %d, want %d", workers, stats.MessagesCombined, n-1)
		}
		if want := int64(n-1) * msgBytes; stats.InboxBytesSaved != want {
			t.Errorf("workers=%d: saved = %d, want %d", workers, stats.InboxBytesSaved, want)
		}
		if len(got) != 1 || got[0] != ([2]int64{n, n}) {
			t.Errorf("workers=%d: root saw %v, want one message totalling %d over %d sends", workers, got, n, n)
		}
	}
}

// slotCombiner folds int64s separately per parity, proving slots keep
// independent fold streams to one destination apart.
type slotCombiner struct{ SumCombiner }

func (slotCombiner) Slot(payload any) int {
	if payload.(int64) < 0 {
		return -1 // opted out: delivered as a plain message
	}
	return int(payload.(int64) % 2)
}

func TestCombinerSlots(t *testing.T) {
	g := NewGraph()
	lbl := g.Symbols.Intern("e")
	root := g.AddVertex(lbl, nil)
	var leaves []VertexID
	for i := 0; i < 6; i++ {
		leaf := g.AddVertex(lbl, nil)
		g.AddEdge(leaf, root, lbl)
		leaves = append(leaves, leaf)
	}
	g.Freeze()

	var inboxSizes []int
	var sums []int64
	prog := WithCombiner(ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
		if ctx.Step() == 0 {
			// Evens fold in slot 0, odds in slot 1, and one opted-out
			// plain message (-1) rides alongside.
			ctx.SendAlong(v, lbl, int64(v)%2+2) // 2 or 3 → slots 0 and 1
			if v == leaves[0] {
				ctx.SendAlong(v, lbl, int64(-1))
			}
			return
		}
		inboxSizes = append(inboxSizes, len(inbox))
		for _, m := range inbox {
			sums = append(sums, m.Payload.(int64))
		}
	}), slotCombiner{})
	eng := NewEngine(g, Options{Workers: 1})
	eng.Run(prog, leaves)

	// One plain message first, then one combined message per slot.
	if len(inboxSizes) != 1 || inboxSizes[0] != 3 {
		t.Fatalf("inbox sizes = %v, want [3]", inboxSizes)
	}
	if sums[0] != -1 {
		t.Errorf("plain message must deliver before combined ones: %v", sums)
	}
	if sums[1]+sums[2] != 3*2+3*3 || sums[1] == sums[2] {
		t.Errorf("per-slot sums = %v, want {6,9} in some order", sums[1:])
	}
}

// TestCombinePoolTrim: a run whose fold tables and wire records grow
// far past the pooling budget must not keep that peak resident once
// idle — the combiner storage obeys the same end-of-Run budget as the
// message buffers.
func TestCombinePoolTrim(t *testing.T) {
	g := NewGraph()
	lbl := g.Symbols.Intern("to-hub")
	hub := g.AddVertex(lbl, nil)
	var leaves []VertexID
	for i := 0; i < 5000; i++ {
		leaf := g.AddVertex(lbl, nil)
		g.AddEdge(leaf, hub, lbl)
		leaves = append(leaves, leaf)
	}
	g.Freeze()
	prog := WithCombiner(ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
		if ctx.Step() == 0 {
			ctx.SendAlong(v, lbl, int64(1))
		}
	}), SumCombiner{})
	// Partitions > 1 so every cross-partition send lands in a pair
	// stream's wire records — the structure that grows with the fan-in.
	eng := NewEngine(g, Options{Workers: 2, Partitions: 3})
	eng.Run(prog, leaves)
	budget := int64(maxPooledBytes / len(eng.shards))
	for s := range eng.shards {
		if got := int64(cap(eng.shards[s].pendKeys)) * accBytes; got > budget {
			t.Errorf("shard %d retains %d B of pending accumulators (budget %d)", s, got, budget)
		}
	}
	for w, ctx := range eng.ctxs {
		for s := range ctx.acc {
			if got := int64(cap(ctx.acc[s].keys)) * accBytes; got > budget {
				t.Errorf("ctx %d shard %d retains %d B of fold streams (budget %d)", w, s, got, budget)
			}
		}
	}
	for i := range eng.wireStreams {
		if got := int64(cap(eng.wireStreams[i].recs)) * accBytes; got > budget {
			t.Errorf("stream %d retains %d B of wire records (budget %d)", i, got, budget)
		}
	}
}

// TestSteadyStateZeroAllocCombined: the accumulator tables, fold-stream
// indexes and pending lists all join the engine's pools, so a warm
// single-worker Run with a combiner still allocates nothing. (Payloads
// are small int64s, which Go boxes from its static cache.)
func TestSteadyStateZeroAllocCombined(t *testing.T) {
	g, lbl := meshGraph(64, 3)
	eng := NewEngine(g, Options{Workers: 1})
	// A folding program without Emit (boxing emitted values allocates in
	// the program, not the engine).
	var sink int64
	prog := WithCombiner(ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
		ctx.AddOps(1 + InboxCount(inbox))
		for _, m := range inbox {
			sink += m.Payload.(int64)
		}
		if ctx.Step() < 3 {
			ctx.SendAlong(v, lbl, int64(1))
		}
	}), SumCombiner{})
	initial := []VertexID{0, 1, 2, 3}
	eng.Run(prog, initial)
	eng.Run(prog, initial)
	allocs := testing.AllocsPerRun(10, func() { eng.Run(prog, initial) })
	if allocs > 0 {
		t.Errorf("steady-state combined Run allocates %.1f times, want 0", allocs)
	}
}

// TestAdaptiveCombineFallback: the adaptive gate drops the combiner on
// a fold-poor run (a ring — every destination hears from exactly one
// source, so the accumulator plane never folds) and keeps it on a
// fold-heavy one, with output identical to the static configurations
// in both cases.
func TestAdaptiveCombineFallback(t *testing.T) {
	const n = 2000 // one superstep's sends clear adaptiveMinSends
	run := func(k int, opts Options) (Stats, []any) {
		g, lbl := meshGraph(n, k)
		var initial []VertexID
		for i := 0; i < n; i++ {
			initial = append(initial, VertexID(i))
		}
		eng := NewEngine(g, opts)
		stats := eng.Run(&sumProgram{lbl: lbl, hops: 3}, initial)
		return stats, append([]any(nil), eng.Emitted()...)
	}
	sameEmits := func(t *testing.T, got, want []any, label string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d emits, want %d", label, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: emit[%d] = %v, want %v", label, i, got[i], want[i])
			}
		}
	}

	t.Run("fold-poor ring falls back", func(t *testing.T) {
		combined, wantEmit := run(1, Options{Workers: 4})
		if combined.CombineFallbacks != 0 {
			t.Fatalf("static combined run reported %d fallbacks", combined.CombineFallbacks)
		}
		adaptive, gotEmit := run(1, Options{Workers: 4, AdaptiveCombine: true})
		if adaptive.CombineFallbacks != 1 {
			t.Fatalf("fallbacks = %d, want 1 (ring never folds)", adaptive.CombineFallbacks)
		}
		if adaptive.MessagesCombined != 0 {
			t.Fatalf("ring folded %d messages", adaptive.MessagesCombined)
		}
		if got, want := adaptive.Paper(), combined.Paper(); got != want {
			t.Fatalf("adaptive paper stats %v != combined %v", got, want)
		}
		sameEmits(t, gotEmit, wantEmit, "adaptive vs combined")
	})

	t.Run("fold-heavy mesh keeps the combiner", func(t *testing.T) {
		combined, wantEmit := run(8, Options{Workers: 4})
		adaptive, gotEmit := run(8, Options{Workers: 4, AdaptiveCombine: true})
		if adaptive.CombineFallbacks != 0 {
			t.Fatalf("fold-heavy run fell back %d times", adaptive.CombineFallbacks)
		}
		if adaptive.MessagesCombined != combined.MessagesCombined || adaptive.MessagesCombined == 0 {
			t.Fatalf("adaptive folded %d, static combined %d — the gate must not cost folds",
				adaptive.MessagesCombined, combined.MessagesCombined)
		}
		if got, want := adaptive.Paper(), combined.Paper(); got != want {
			t.Fatalf("adaptive paper stats %v != combined %v", got, want)
		}
		sameEmits(t, gotEmit, wantEmit, "adaptive vs combined")

		uncombined, plainEmit := run(8, Options{Workers: 4, NoCombine: true})
		if got, want := adaptive.Paper(), uncombined.Paper(); got != want {
			t.Fatalf("adaptive paper stats %v != uncombined %v", got, want)
		}
		sameEmits(t, gotEmit, plainEmit, "adaptive vs uncombined")
	})
}
