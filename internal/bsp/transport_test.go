package bsp

import (
	"errors"
	"slices"
	"sync"
	"testing"
)

var errTest = errors.New("vertex program failed on purpose")

// memHub synchronizes N in-process "nodes" the way internal/dist's
// coordinator synchronizes N processes: frames are really exchanged,
// barriers really reduced with ReduceBarrier, emit streams really
// allgathered. It exists so the distributed Run path can be proven
// equivalent to the loopback engine without sockets.
type memHub struct {
	parts int
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	gen   int

	frames []Frame
	out    []Frame
	bfs    []BarrierFrame
	gb     BarrierFrame
	blobs  [][]byte
	gather [][]byte
}

func newMemHub(parts int) *memHub {
	h := &memHub{parts: parts, bfs: make([]BarrierFrame, parts), blobs: make([][]byte, parts)}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// rendezvous blocks until all parts have deposited; the last arrival
// runs compute, then everyone proceeds.
func (h *memHub) rendezvous(deposit, compute func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	deposit()
	h.n++
	gen := h.gen
	if h.n == h.parts {
		compute()
		h.n = 0
		h.gen++
		h.cond.Broadcast()
	} else {
		for gen == h.gen {
			h.cond.Wait()
		}
	}
}

func (h *memHub) node(local int) Transport { return &memNode{hub: h, local: local} }

type memNode struct {
	hub   *memHub
	local int
}

func (t *memNode) Parts() int { return t.hub.parts }
func (t *memNode) Local() int { return t.local }
func (t *memNode) StartRun() error {
	t.hub.rendezvous(func() {}, func() {})
	return nil
}

func (t *memNode) Exchange(step int, out []Frame) ([]Frame, error) {
	h := t.hub
	h.rendezvous(
		func() { h.frames = append(h.frames, out...) },
		func() {
			h.out = append(h.out[:0], h.frames...)
			h.frames = h.frames[:0]
			// Deterministic delivery order: ascending source partition.
			slices.SortFunc(h.out, func(a, b Frame) int {
				if a.Dst != b.Dst {
					return a.Dst - b.Dst
				}
				return a.Src - b.Src
			})
		},
	)
	h.mu.Lock()
	defer h.mu.Unlock()
	var in []Frame
	for _, f := range h.out {
		if f.Dst == t.local {
			in = append(in, f)
		}
	}
	return in, nil
}

func (t *memNode) Barrier(bf BarrierFrame) (BarrierFrame, error) {
	h := t.hub
	// Aggs is the engine's reused scratch map; snapshot it.
	if bf.Aggs != nil {
		aggs := make(map[string]int64, len(bf.Aggs))
		for k, v := range bf.Aggs {
			aggs[k] = v
		}
		bf.Aggs = aggs
	}
	h.rendezvous(
		func() { h.bfs[t.local] = bf },
		func() { h.gb = ReduceBarrier(h.bfs) },
	)
	return h.gb, nil
}

func (t *memNode) FinishRun(emits []byte) ([][]byte, error) {
	h := t.hub
	h.rendezvous(
		func() { h.blobs[t.local] = emits },
		func() { h.gather = append([][]byte(nil), h.blobs...) },
	)
	return h.gather, nil
}

// sumOrPlain combines int64 payloads by addition and opts everything
// else (the test's string pings) out of combining — so one program
// exercises combined and plain wire records at once.
type sumOrPlain struct{}

func (sumOrPlain) Slot(p any) int {
	if _, ok := p.(int64); ok {
		return 0
	}
	return -1
}
func (sumOrPlain) Fold(acc any, _ VertexID, payload any) any {
	if acc == nil {
		return payload.(int64)
	}
	return acc.(int64) + payload.(int64)
}
func (sumOrPlain) Merge(acc, other any) any { return acc.(int64) + other.(int64) }

// distSumProgram floods vertex ids along edges (combined) plus string
// pings to a rotating destination (plain), and emits each received
// total: it exercises plain records, combined records, aggregators and
// the emit allgather at once.
type distSumProgram struct {
	lbl  LabelID
	hops int
}

func (p *distSumProgram) Compute(ctx *Context, v VertexID, inbox []Message) {
	ctx.AddOps(1 + InboxCount(inbox))
	var total int64
	for _, m := range inbox {
		switch pay := m.Payload.(type) {
		case int64:
			total += pay
		case string:
			total += int64(len(pay)) + int64(m.From)
		}
	}
	if len(inbox) > 0 {
		ctx.Emit(total)
		ctx.AddInt("delivered", int64(InboxCount(inbox)))
	}
	if ctx.Step() < p.hops {
		ctx.SendAlong(v, p.lbl, int64(v)+total)
		if v%5 == 0 {
			ctx.Send(v, (v+7)%64, "ping")
		}
	}
}

func (p *distSumProgram) Combiner() Combiner { return sumOrPlain{} }

// runDistNodes executes prog over parts in-process nodes joined by a
// memHub, one engine per node, and returns node 0's emits and stats
// after checking every node agreed.
func runDistNodes(t *testing.T, g *Graph, parts int, mkProg func() Program, initial []VertexID) ([]any, Stats) {
	t.Helper()
	hub := newMemHub(parts)
	emits := make([][]any, parts)
	stats := make([]Stats, parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			eng := NewEngine(g, Options{
				Workers:    1 + p, // node-varying worker counts must not matter
				Partitions: parts,
				Transport:  hub.node(p),
			})
			stats[p] = eng.Run(mkProg(), initial)
			emits[p] = append([]any(nil), eng.Emitted()...)
			errs[p] = eng.RunErr()
		}(p)
	}
	wg.Wait()
	for p := 0; p < parts; p++ {
		if errs[p] != nil {
			t.Fatalf("node %d: RunErr = %v", p, errs[p])
		}
		if stats[p] != stats[0] {
			t.Fatalf("node %d stats diverge:\n  node0 %v\n  node%d %v", p, stats[0], p, stats[p])
		}
		if !slices.Equal(emits[p], emits[0]) {
			t.Fatalf("node %d emits diverge from node 0", p)
		}
	}
	return emits[0], stats[0]
}

// TestDistMatchesLoopback: the same program on the same graph must
// produce identical emits and identical Stats whether the partitions
// are simulated in one process (loopback) or run as separate engines
// that really exchange frames — including NetworkBytes, which both
// sides derive from the same sealed frames.
func TestDistMatchesLoopback(t *testing.T) {
	g, lbl := meshGraph(64, 3)
	var initial []VertexID
	for i := 0; i < 32; i++ {
		initial = append(initial, VertexID(i*2))
	}
	for _, parts := range []int{2, 3} {
		mk := func() Program { return &distSumProgram{lbl: lbl, hops: 3} }

		sim := NewEngine(g, Options{Workers: 2, Partitions: parts})
		simStats := sim.Run(mk(), initial)
		simEmits := append([]any(nil), sim.Emitted()...)

		distEmits, distStats := runDistNodes(t, g, parts, mk, initial)

		if distStats != simStats {
			t.Errorf("parts=%d stats diverge:\n  loopback %v\n  dist     %v", parts, simStats, distStats)
		}
		if !slices.Equal(distEmits, simEmits) {
			t.Errorf("parts=%d emits diverge: loopback %d values, dist %d values", parts, len(simEmits), len(distEmits))
		}
	}
}

// TestDistUncombined: the same equivalence without a combiner — every
// cross-partition send becomes a plain wire record, exercising the
// fan-out dedup and the remote inbox-order restoration.
func TestDistUncombined(t *testing.T) {
	g, lbl := meshGraph(48, 4)
	var initial []VertexID
	for i := 0; i < 48; i += 3 {
		initial = append(initial, VertexID(i))
	}
	mk := func() Program {
		return ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
			ctx.AddOps(1 + len(inbox))
			var total int64
			for _, m := range inbox {
				total += m.Payload.(int64) + int64(m.From)
			}
			if len(inbox) > 0 {
				ctx.Emit(total)
			}
			if ctx.Step() < 2 {
				ctx.SendAlong(v, lbl, int64(v))
			}
		})
	}

	sim := NewEngine(g, Options{Workers: 3, Partitions: 2, NoCombine: true})
	simStats := sim.Run(mk(), initial)
	simEmits := append([]any(nil), sim.Emitted()...)

	distEmits, distStats := runDistNodes(t, g, 2, mk, initial)

	if distStats != simStats {
		t.Errorf("stats diverge:\n  loopback %v\n  dist     %v", simStats, distStats)
	}
	if !slices.Equal(distEmits, simEmits) {
		t.Errorf("emits diverge: loopback %v, dist %v", simEmits, distEmits)
	}
}

// TestDistFailPropagates: a Context.Fail on one node must surface the
// same error on every node, and the engines must stay usable for the
// next run.
func TestDistFailPropagates(t *testing.T) {
	g, lbl := meshGraph(16, 2)
	initial := []VertexID{0, 1, 2, 3}
	hub := newMemHub(2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	ok := make([]error, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			eng := NewEngine(g, Options{Workers: 1, Partitions: 2, Transport: hub.node(p)})
			eng.Run(ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
				if v == 2 { // lives on partition 0 only
					ctx.Fail(errTest)
				}
				ctx.SendAlong(v, lbl, int64(1))
			}), initial)
			errs[p] = eng.RunErr()
			// The failure was a program decision, not a transport death:
			// the next run must work.
			eng.Run(ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {}), initial)
			ok[p] = eng.RunErr()
		}(p)
	}
	wg.Wait()
	for p := 0; p < 2; p++ {
		if errs[p] == nil || errs[p].Error() != errTest.Error() {
			t.Errorf("node %d: RunErr = %v, want %v", p, errs[p], errTest)
		}
		if ok[p] != nil {
			t.Errorf("node %d: engine unusable after program failure: %v", p, ok[p])
		}
	}
}
