package bsp

import (
	"context"
	"testing"
	"time"
)

// cancelAtStep wraps a program with a master hook that fires cancel at
// a chosen barrier, modeling a serving-layer deadline landing mid-run.
type cancelAtStep struct {
	Program
	step   int
	cancel context.CancelFunc
}

func (c *cancelAtStep) BeforeSuperstep(step int, eng *Engine) bool {
	if step == c.step {
		c.cancel()
	}
	return true
}

// starvedDeadlineCtx models a context whose deadline has passed but
// whose runtime timer never fired — the GOMAXPROCS=1 failure mode where
// a compute-bound run holds the only P, so ctx.Err() stays nil for the
// whole deadline window. The engine must honor the wall-clock deadline
// anyway.
type starvedDeadlineCtx struct {
	dl   time.Time
	done chan struct{}
}

func (c starvedDeadlineCtx) Deadline() (time.Time, bool) { return c.dl, true }
func (c starvedDeadlineCtx) Done() <-chan struct{}       { return c.done }
func (c starvedDeadlineCtx) Err() error                  { return nil } // the timer is starved
func (c starvedDeadlineCtx) Value(any) any               { return nil }

// TestEngineDeadlineWithoutTimer: a context whose wall-clock deadline
// has passed stops the run at the first barrier even though ctx.Err()
// still answers nil — barriers compare clocks, they do not trust the
// runtime timer that would normally mark the context done.
func TestEngineDeadlineWithoutTimer(t *testing.T) {
	const n = 12
	g, lbl := chainGraph(n)
	eng := NewEngine(g, Options{Workers: 1})
	eng.SetContext(starvedDeadlineCtx{dl: time.Now().Add(-time.Millisecond), done: make(chan struct{})})
	stats := eng.Run(&propagateProgram{lbl: lbl}, []VertexID{0})
	if stats.Supersteps != 0 {
		t.Errorf("expired-deadline run took %d supersteps, want 0", stats.Supersteps)
	}
	// Disarmed, the engine is clean and runs to completion.
	eng.SetContext(nil)
	if stats = eng.Run(&propagateProgram{lbl: lbl}, []VertexID{0}); stats.Supersteps != n {
		t.Errorf("rerun supersteps = %d, want %d", stats.Supersteps, n)
	}
}

// TestEngineCanceledBetweenSupersteps: an armed context stops a run at
// the next superstep barrier — and because the previous merge drained
// every outbox, the same engine reused afterwards (context disarmed)
// produces the full, correct result. This is the engine half of query
// cancellation: the serving layer releases a canceled query's pooled
// session, so a later query MUST find its planes clean.
func TestEngineCanceledBetweenSupersteps(t *testing.T) {
	const n = 12
	for _, workers := range []int{1, 4} {
		g, lbl := chainGraph(n)
		eng := NewEngine(g, Options{Workers: workers})

		// Cancel at the barrier before superstep 5: the run must stop
		// there, partway down the chain.
		ctx, cancel := context.WithCancel(context.Background())
		eng.SetContext(ctx)
		stats := eng.Run(&cancelAtStep{Program: &propagateProgram{lbl: lbl}, step: 5, cancel: cancel}, []VertexID{0})
		if stats.Supersteps != 5 {
			t.Errorf("workers=%d: canceled run took %d supersteps, want 5", workers, stats.Supersteps)
		}
		if len(eng.Emitted()) != 0 {
			t.Errorf("workers=%d: canceled run emitted %v, want nothing", workers, eng.Emitted())
		}

		// A context canceled before Run stops at the first barrier.
		eng.SetContext(ctx) // already canceled
		stats = eng.Run(&propagateProgram{lbl: lbl}, []VertexID{0})
		if stats.Supersteps != 0 {
			t.Errorf("workers=%d: pre-canceled run took %d supersteps, want 0", workers, stats.Supersteps)
		}

		// Disarm and rerun: the pooled message planes must be clean — the
		// full propagation runs to the end with the exact chain counts.
		eng.SetContext(nil)
		stats = eng.Run(&propagateProgram{lbl: lbl}, []VertexID{0})
		if stats.Supersteps != n {
			t.Errorf("workers=%d: rerun supersteps = %d, want %d", workers, stats.Supersteps, n)
		}
		if stats.Messages != n-1 {
			t.Errorf("workers=%d: rerun messages = %d, want %d", workers, stats.Messages, n-1)
		}
		out := eng.Emitted()
		if len(out) != 1 || out[0].(int) != n-1 {
			t.Errorf("workers=%d: rerun emitted %v, want [%d]", workers, out, n-1)
		}
	}
}
