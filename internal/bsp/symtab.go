// Package bsp implements a vertex-centric bulk-synchronous-parallel graph
// engine in the style of Pregel (Malewicz et al. 2010), the computational
// model reviewed in §2 of the TAG-join paper. It is the substrate the paper
// obtains from TigerGraph: vertices run a user program in supersteps,
// communicate by messages along labeled edges, are activated by message
// receipt, and can cooperate through global aggregators.
//
// The engine exploits thread parallelism with a worker pool and per-worker
// outboxes, and accounts for the paper's cost measures: total messages,
// message bytes, and per-vertex computation operations. An optional
// partitioning function attributes messages that cross partitions to
// network traffic, which drives the distributed-cluster experiments.
package bsp

import "sync"

// LabelID is an interned vertex or edge label.
type LabelID int32

// NoLabel is the zero label, never returned by Intern.
const NoLabel LabelID = 0

// SymbolTable interns label strings to dense ids. It is safe for
// concurrent readers once construction is complete; Intern itself is
// guarded for convenience during graph building.
type SymbolTable struct {
	mu    sync.Mutex
	ids   map[string]LabelID
	names []string
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{
		ids:   make(map[string]LabelID),
		names: []string{""}, // reserve 0 == NoLabel
	}
}

// Intern returns the id for name, assigning a fresh one if needed.
func (s *SymbolTable) Intern(name string) LabelID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := LabelID(len(s.names))
	s.names = append(s.names, name)
	s.ids[name] = id
	return id
}

// Lookup returns the id for name, or NoLabel if never interned.
func (s *SymbolTable) Lookup(name string) LabelID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ids[name]
}

// Name returns the string for an id ("" for NoLabel or unknown ids).
func (s *SymbolTable) Name(id LabelID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id <= 0 || int(id) >= len(s.names) {
		return ""
	}
	return s.names[id]
}

// Len returns the number of interned labels.
func (s *SymbolTable) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.names) - 1
}
