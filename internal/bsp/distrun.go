package bsp

import (
	"errors"
	"fmt"
	"slices"
)

// This file is Engine.Run for a distributed node: the engine owns one
// partition of a multi-node run (Transport.Local() >= 0) and the
// Transport really carries the cross-partition frames. Every node
// executes the same superstep structure — master hooks, loop-break
// decisions, aggregator values and the paper-facing Stats all derive
// from globally reduced barrier state — so the nodes' transport call
// sequences stay in lockstep and the distributed answer is
// byte-identical to the single-process one.

// runDist executes prog over this node's partition. The returned Stats
// are the global (barrier-summed) measures, identical on every node and
// identical to what a loopback engine reports for the same run.
func (e *Engine) runDist(prog Program, initial []VertexID) Stats {
	if e.distErr != nil {
		// The transport failed earlier; the engine is permanently
		// degraded and refuses further runs (see RunErr).
		return Stats{}
	}
	before := e.stats
	e.halted = false
	e.runErr = nil
	e.emits = e.emits[:0]
	e.emitTags = e.emitTags[:0]

	if !e.g.Frozen() {
		e.g.Freeze()
	}

	if err := e.opts.Transport.StartRun(); err != nil {
		e.distErr = err
		return Stats{}
	}

	// This node computes only its own partition's share of the initial
	// active set; the other partitions activate their own shares.
	active := e.active[:0]
	for _, v := range initial {
		if e.opts.PartitionOf(v) == e.localPart {
			active = append(active, v)
		}
	}
	slices.Sort(active)

	e.comb = nil
	if !e.opts.NoCombine {
		if cp, ok := prog.(CombinerProvider); ok {
			e.comb = cp.Combiner()
		}
	}
	master, hasMaster := prog.(MasterProgram)

	// Tag every emit with (step, vertex) so the end-of-run allgather can
	// reconstruct the exact single-process emit order.
	for _, ctx := range e.ctxs {
		ctx.tagEmits = true
	}
	defer func() {
		for _, ctx := range e.ctxs {
			ctx.tagEmits = false
		}
	}()

	if len(e.ctxs) > 1 {
		e.startWorkers(prog)
		defer e.stopWorkers()
	}

	// Establish the global initial active count: a node whose local
	// share is empty must still run the supersteps the others run.
	gb, err := e.opts.Transport.Barrier(BarrierFrame{Step: -1, Active: int64(len(active)), Abort: e.ctxDone()})
	if err != nil {
		e.distErr = err
		e.active = active[:0]
		return Stats{}
	}
	globalActive := gb.Active
	abort := gb.Abort

	for step := 0; step < e.opts.MaxSupersteps; step++ {
		// Loop-break decisions read only globally agreed state (master
		// hooks see the globally summed aggregators), so every node
		// breaks at the same superstep.
		if hasMaster && !master.BeforeSuperstep(step, e) {
			break
		}
		if globalActive == 0 || e.halted || abort || e.runErr != nil {
			break
		}
		e.stats.Supersteps++
		e.stats.ActiveVisits += globalActive
		clear(e.aggs)

		// Computation stage over the local share.
		if len(active) > 0 {
			workers := len(e.ctxs)
			if workers > len(active) {
				workers = len(active)
			}
			chunk := (len(active) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := min(w*chunk, len(active))
				hi := min(lo+chunk, len(active))
				ctx := e.ctxs[w]
				ctx.step = step
				if workers == 1 {
					for _, v := range active {
						ctx.cur = v
						prog.Compute(ctx, v, e.inboxOf(v))
					}
					break
				}
				e.wg.Add(1)
				e.work[w] <- job{verts: active[lo:hi], ctx: ctx}
			}
			e.wg.Wait()
		}

		// Communication stage: merge the local outboxes (delivering
		// local messages, recording cross-partition ones), then exchange
		// frames with the other nodes and deliver what they sent us.
		if e.opts.SerialMerge || len(e.shards) == 1 {
			for s := range e.shards {
				e.mergeShard(s)
			}
		} else {
			for s := range e.shards {
				e.wg.Add(1)
				e.work[s] <- job{shard: s, merge: true}
			}
			e.wg.Wait()
		}

		var stepStats Stats
		if err := e.distExchange(step, &stepStats); err != nil {
			e.distErr = err
			break
		}

		// Barrier: swap planes, gather local outputs, reduce globally.
		active = active[:0]
		for s := range e.shards {
			sh := &e.shards[s]
			stepStats.Add(sh.stats)
			sh.stats = Stats{}
			if sh.err != nil {
				if e.runErr == nil {
					e.runErr = sh.err
				}
				sh.err = nil
			}
			sh.in, sh.next = sh.next, sh.in
			sh.inKeys, sh.nextKeys = sh.nextKeys, sh.inKeys
			active = append(active, sh.inKeys...)
		}
		if e.baggs == nil {
			e.baggs = make(map[string]int64)
		} else {
			clear(e.baggs)
		}
		for _, ctx := range e.ctxs {
			for k, v := range ctx.aggs {
				e.baggs[k] += v
			}
			clear(ctx.aggs)
			e.emits = append(e.emits, ctx.emits...)
			for i := range ctx.emits {
				ctx.emits[i] = nil
			}
			ctx.emits = ctx.emits[:0]
			e.emitTags = append(e.emitTags, ctx.emitTags...)
			ctx.emitTags = ctx.emitTags[:0]
			stepStats.ComputeOps += ctx.ops
			ctx.ops = 0
			if ctx.failErr != nil {
				if e.runErr == nil {
					e.runErr = ctx.failErr
				}
				ctx.failErr = nil
			}
			stepStats.Add(ctx.stats)
			ctx.stats = Stats{}
		}
		slices.Sort(active)

		// Supersteps and ActiveVisits are tracked identically on every
		// node from the global active count; keep them out of the sum.
		stepStats.Supersteps = 0
		stepStats.ActiveVisits = 0
		fail := ""
		if e.runErr != nil {
			fail = e.runErr.Error()
		}
		gb, err := e.opts.Transport.Barrier(BarrierFrame{
			Step:   step,
			Active: int64(len(active)),
			Abort:  e.ctxDone(),
			Fail:   fail,
			Aggs:   e.baggs,
			Stats:  stepStats,
		})
		if err != nil {
			e.distErr = err
			break
		}
		e.stats.Add(gb.Stats)
		clear(e.aggs)
		for k, v := range gb.Aggs {
			e.aggs[k] = v
		}
		globalActive = gb.Active
		abort = gb.Abort
		// Every node adopts the globally agreed first failure so the
		// run's outcome is identical everywhere.
		if gb.Fail != "" && (e.runErr == nil || e.runErr.Error() != gb.Fail) {
			e.runErr = errors.New(gb.Fail)
		}
	}

	// Same end-of-run pooling discipline as the single-process Run.
	budget := int64(maxPooledBytes / len(e.shards))
	for s := range e.shards {
		sh := &e.shards[s]
		sh.recycleIn()
		sh.trimFree(budget)
		if int64(cap(sh.pendKeys))*accBytes > budget {
			sh.accIdx, sh.pend, sh.pendKeys = nil, nil, nil
		}
	}
	for _, ctx := range e.ctxs {
		for s := range ctx.acc {
			ctx.acc[s].trim(budget)
		}
	}
	for i := range e.wireStreams {
		ps := &e.wireStreams[i]
		if int64(cap(ps.recs))*accBytes > budget {
			ps.recs = nil
		}
	}
	e.active = active

	// Emit allgather: every node ships its tagged emit stream and
	// reconstructs the global order — a stable sort by (step, vertex)
	// of the concatenated streams is exactly the order a single-process
	// run emits in.
	if e.distErr == nil {
		blob, err := appendEmits(nil, e.emitTags, e.emits, e.opts.Codec)
		if err != nil {
			if e.runErr == nil {
				e.runErr = err
			}
			blob, _ = appendEmits(nil, nil, nil, e.opts.Codec)
		}
		blobs, err := e.opts.Transport.FinishRun(blob)
		if err != nil {
			e.distErr = err
		} else {
			e.emits = e.emits[:0]
			e.emitTags = e.emitTags[:0]
			for _, b := range blobs {
				if e.emitTags, e.emits, err = decodeEmits(b, e.emitTags, e.emits, e.opts.Codec); err != nil {
					if e.runErr == nil {
						e.runErr = err
					}
					break
				}
			}
			sortEmitsByTag(e.emitTags, e.emits)
		}
	}

	return e.stats.Sub(before)
}

// distExchange runs the distributed exchange stage on the Run goroutine
// after the merge barrier: record the cross-partition fold streams,
// seal and price this node's outgoing frames, swap frames with the
// other nodes, and deliver the remote records into the local planes.
func (e *Engine) distExchange(step int, stepStats *Stats) error {
	local := e.localPart
	if e.comb != nil {
		for s := range e.shards {
			e.recordPendDist(&e.shards[s])
		}
	}
	// Seal this node's outgoing frames — empty ones included, the
	// synchronization frame crosses the wire every superstep — and
	// price them. The other nodes price their own outgoing frames; the
	// barrier sums the shares into the same totals the loopback engine
	// counts for all pairs at once.
	e.frames = e.frames[:0]
	for dst := 0; dst < e.opts.Partitions; dst++ {
		if dst == local {
			continue
		}
		ps := e.stream(local, dst)
		payload := sealRecords(step, ps.recs)
		stepStats.NetworkMessages += int64(len(ps.recs))
		stepStats.NetworkBytes += int64(frameHeaderBytes + len(payload))
		e.frames = append(e.frames, Frame{Src: local, Dst: dst, Payload: payload})
		ps.reset()
	}
	in, err := e.opts.Transport.Exchange(step, e.frames)
	if err != nil {
		return err
	}
	e.touched = e.touched[:0]
	for i := range in {
		if err := decodeRecords(in[i].Payload, step, e.opts.Codec, e.deliverRemote); err != nil {
			return err
		}
	}
	// Remote plain records appended after the local merge; restore the
	// non-decreasing-sender inbox order the single-process merge
	// produces. Ties cannot mix local and remote messages (a sender
	// lives on exactly one partition), so a stable sort reproduces the
	// exact order.
	slices.Sort(e.touched)
	e.touched = slices.Compact(e.touched)
	for _, v := range e.touched {
		sh := &e.shards[e.shardOf(v)]
		slices.SortStableFunc(sh.next[v], func(a, b Message) int {
			return int(a.From) - int(b.From)
		})
	}
	if e.comb != nil {
		for s := range e.shards {
			e.flushPend(&e.shards[s])
		}
	}
	return nil
}

// recordPendDist is the distributed counterpart of recordPend: encode
// the remote-destined fold streams into this node's outgoing pair
// streams and compact the pending table down to local deliveries. The
// receiving node Merges the shipped accumulators into its own pending
// table (deliverRemote), mirroring the loopback re-merge.
func (e *Engine) recordPendDist(sh *mergeShard) {
	out := 0
	for i := range sh.pend {
		k := sh.pendKeys[i]
		dstP := e.opts.PartitionOf(k.to)
		if dstP != e.localPart {
			p := &sh.pend[i]
			enc, err := e.opts.Codec.Append(sh.encBuf[:0], p.pay)
			if err != nil {
				if sh.err == nil {
					sh.err = err
				}
			} else {
				sh.encBuf = enc
				e.stream(int(k.src), dstP).add(p.from, k.slot, enc, k.to, p.count)
			}
			sh.pend[i] = accEntry{}
			delete(sh.accIdx, k)
			continue
		}
		if out != i {
			sh.accIdx[k] = int32(out)
			sh.pend[out] = sh.pend[i]
			sh.pendKeys[out] = k
			sh.pend[i] = accEntry{}
		}
		out++
	}
	sh.pend = sh.pend[:out]
	sh.pendKeys = sh.pendKeys[:out]
}

// deliverRemote lands one remote wire record in the local message
// plane: plain records (slot < 0) expand into inbox messages, combined
// records Merge into the pending fold table exactly as the loopback
// re-merge would.
func (e *Engine) deliverRemote(from VertexID, slot int32, pay any, to VertexID, count int32) error {
	if e.opts.PartitionOf(to) != e.localPart {
		return fmt.Errorf("bsp: remote record for vertex %d not owned by partition %d", to, e.localPart)
	}
	sh := &e.shards[e.shardOf(to)]
	if slot < 0 {
		buf, ok := sh.next[to]
		if !ok {
			buf = sh.getBuf()
			sh.nextKeys = append(sh.nextKeys, to)
		}
		for i := int32(0); i < count; i++ {
			buf = append(buf, Message{From: from, Count: 1, Payload: pay})
		}
		sh.next[to] = buf
		e.touched = append(e.touched, to)
		return nil
	}
	if e.comb == nil {
		return fmt.Errorf("bsp: combined wire record for vertex %d but no combiner is running", to)
	}
	k := accKey{to: to, slot: slot, src: int32(e.localPart)}
	if j, ok := sh.accIdx[k]; ok {
		tgt := &sh.pend[j]
		tgt.pay = e.comb.Merge(tgt.pay, pay)
		tgt.count += count
		if from < tgt.from {
			tgt.from = from
		}
		sh.stats.MessagesCombined++
		sh.stats.InboxBytesSaved += msgBytes
	} else {
		if sh.accIdx == nil {
			sh.accIdx = make(map[accKey]int32)
		}
		sh.accIdx[k] = int32(len(sh.pend))
		sh.pend = append(sh.pend, accEntry{from: from, count: count, pay: pay})
		sh.pendKeys = append(sh.pendKeys, k)
	}
	return nil
}

// sortEmitsByTag stable-sorts the parallel tag/value slices by
// (step, vertex). Values with equal tags came from one vertex's single
// Compute call and keep their relative order.
func sortEmitsByTag(tags []emitTag, emits []any) {
	type tagged struct {
		tag emitTag
		val any
	}
	tv := make([]tagged, len(tags))
	for i := range tags {
		tv[i] = tagged{tag: tags[i], val: emits[i]}
	}
	slices.SortStableFunc(tv, func(a, b tagged) int {
		if a.tag.step != b.tag.step {
			return int(a.tag.step) - int(b.tag.step)
		}
		return int(a.tag.v) - int(b.tag.v)
	})
	for i := range tv {
		tags[i] = tv[i].tag
		emits[i] = tv[i].val
	}
}
