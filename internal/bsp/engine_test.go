package bsp

import (
	"testing"
	"testing/quick"
)

// chainGraph builds v0 -e-> v1 -e-> ... -e-> v(n-1).
func chainGraph(n int) (*Graph, LabelID) {
	g := NewGraph()
	lbl := g.Symbols.Intern("next")
	vl := g.Symbols.Intern("node")
	for i := 0; i < n; i++ {
		g.AddVertex(vl, nil)
	}
	for i := 0; i < n-1; i++ {
		g.AddEdge(VertexID(i), VertexID(i+1), lbl)
	}
	g.Freeze()
	return g, lbl
}

func TestSymbolTable(t *testing.T) {
	s := NewSymbolTable()
	a := s.Intern("R.A")
	b := s.Intern("S.B")
	if a == b {
		t.Fatal("distinct names must intern to distinct ids")
	}
	if s.Intern("R.A") != a {
		t.Error("re-intern must be stable")
	}
	if s.Name(a) != "R.A" || s.Name(NoLabel) != "" {
		t.Error("Name lookup failed")
	}
	if s.Lookup("S.B") != b || s.Lookup("missing") != NoLabel {
		t.Error("Lookup failed")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSymbolTableInternProperty(t *testing.T) {
	f := func(names []string) bool {
		s := NewSymbolTable()
		seen := map[string]LabelID{}
		for _, n := range names {
			id := s.Intern(n)
			if prev, ok := seen[n]; ok && prev != id {
				return false
			}
			seen[n] = id
			if s.Name(id) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphEdgesWithLabel(t *testing.T) {
	g := NewGraph()
	a := g.Symbols.Intern("a")
	b := g.Symbols.Intern("b")
	v0 := g.AddVertex(a, nil)
	v1 := g.AddVertex(a, nil)
	v2 := g.AddVertex(b, nil)
	g.AddEdge(v0, v1, a)
	g.AddEdge(v0, v2, b)
	g.AddEdge(v0, v2, a)
	g.Freeze()

	ea := g.EdgesWithLabel(v0, a)
	if len(ea) != 2 {
		t.Fatalf("label a edges = %d, want 2", len(ea))
	}
	if g.DegreeWithLabel(v0, b) != 1 {
		t.Error("degree with label b wrong")
	}
	if !g.HasEdgeWithLabel(v0, b) || g.HasEdgeWithLabel(v1, b) {
		t.Error("HasEdgeWithLabel wrong")
	}
	if got := g.VerticesWithLabel(a); len(got) != 2 {
		t.Errorf("VerticesWithLabel = %v", got)
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
}

func TestGraphRemoveEdge(t *testing.T) {
	g := NewGraph()
	l := g.Symbols.Intern("l")
	v0 := g.AddVertex(l, nil)
	v1 := g.AddVertex(l, nil)
	g.AddEdge(v0, v1, l)
	g.AddEdge(v0, v1, l)
	g.RemoveEdge(v0, v1, l)
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges after remove = %d", g.NumEdges())
	}
	g.Freeze()
	if g.HasEdgeWithLabel(v0, l) {
		t.Error("edge should be gone")
	}
}

func TestUndirectedEdge(t *testing.T) {
	g := NewGraph()
	l := g.Symbols.Intern("l")
	a := g.AddVertex(l, nil)
	b := g.AddVertex(l, nil)
	g.AddUndirectedEdge(a, b, l)
	g.Freeze()
	if !g.HasEdgeWithLabel(a, l) || !g.HasEdgeWithLabel(b, l) {
		t.Error("undirected edge must be traversable both ways")
	}
}

// propagateProgram forwards a counter along "next" edges, incrementing it.
type propagateProgram struct {
	lbl LabelID
}

func (p *propagateProgram) Compute(ctx *Context, v VertexID, inbox []Message) {
	ctx.AddOps(1)
	if ctx.Step() == 0 {
		ctx.SendAlong(v, p.lbl, int(1))
		return
	}
	for _, m := range inbox {
		hops := m.Payload.(int)
		if ctx.SendAlong(v, p.lbl, hops+1) == 0 {
			ctx.Emit(hops) // reached the chain end
		}
	}
}

func TestEngineChainPropagation(t *testing.T) {
	const n = 10
	g, lbl := chainGraph(n)
	eng := NewEngine(g, Options{Workers: 4})
	stats := eng.Run(&propagateProgram{lbl: lbl}, []VertexID{0})

	if stats.Supersteps != n {
		t.Errorf("supersteps = %d, want %d", stats.Supersteps, n)
	}
	if stats.Messages != n-1 {
		t.Errorf("messages = %d, want %d", stats.Messages, n-1)
	}
	out := eng.Emitted()
	if len(out) != 1 || out[0].(int) != n-1 {
		t.Errorf("emitted = %v, want [%d]", out, n-1)
	}
}

func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 50
	var base Stats
	for i, workers := range []int{1, 2, 8} {
		g, lbl := chainGraph(n)
		eng := NewEngine(g, Options{Workers: workers})
		stats := eng.Run(&propagateProgram{lbl: lbl}, []VertexID{0})
		if i == 0 {
			base = stats
			continue
		}
		if stats.Messages != base.Messages || stats.Supersteps != base.Supersteps {
			t.Errorf("workers=%d: stats %v differ from %v", workers, stats, base)
		}
	}
}

// fanoutProgram: root messages all neighbors, each replies to an aggregator count.
type fanoutProgram struct{ lbl LabelID }

func (p *fanoutProgram) Compute(ctx *Context, v VertexID, inbox []Message) {
	if ctx.Step() == 0 {
		ctx.SendAlong(v, p.lbl, nil)
		return
	}
	ctx.AddInt("reached", 1)
}

func TestEngineAggregator(t *testing.T) {
	g := NewGraph()
	l := g.Symbols.Intern("e")
	root := g.AddVertex(l, nil)
	for i := 0; i < 5; i++ {
		leaf := g.AddVertex(l, nil)
		g.AddEdge(root, leaf, l)
	}
	g.Freeze()
	eng := NewEngine(g, Options{Workers: 3})
	eng.Run(&fanoutProgram{lbl: l}, []VertexID{root})
	if got := eng.AggInt("reached"); got != 5 {
		t.Errorf("aggregator = %d, want 5", got)
	}
}

// meteredLoopback wraps the loopback Transport and measures the frames
// the engine hands over exactly as a real wire would bill them: the
// codec frame header plus the sealed payload, per frame.
type meteredLoopback struct {
	Transport
	frames int
	bytes  int64
	recs   int64
}

func (m *meteredLoopback) Exchange(step int, out []Frame) ([]Frame, error) {
	for i := range out {
		m.frames++
		m.bytes += frameHeaderBytes + int64(len(out[i].Payload))
		// Every sealed frame must parse — the wire the simulation prices
		// is a wire a real node could decode.
		err := decodeRecords(out[i].Payload, step, BasicCodec{}, func(VertexID, int32, any, VertexID, int32) error {
			return nil
		})
		if err != nil {
			return nil, err
		}
		m.recs += countRecords(out[i].Payload)
	}
	return m.Transport.Exchange(step, out)
}

func countRecords(payload []byte) int64 {
	// kind byte, uvarint step, uvarint record count (see sealRecords).
	rest := payload[1:]
	_, k := binaryUvarint(rest)
	rest = rest[k:]
	n, _ := binaryUvarint(rest)
	return int64(n)
}

func binaryUvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

func TestEngineNetworkAccounting(t *testing.T) {
	const n = 10
	g, lbl := chainGraph(n)
	// Partition even/odd: every chain hop crosses partitions.
	metered := &meteredLoopback{Transport: Loopback(2)}
	eng := NewEngine(g, Options{
		Workers:     2,
		Partitions:  2,
		PartitionOf: func(v VertexID) int { return int(v) % 2 },
		Transport:   metered,
	})
	stats := eng.Run(&propagateProgram{lbl: lbl}, []VertexID{0})
	// One wire record per chain hop: every hop crosses partitions and
	// no two hops in one superstep share a sender.
	if stats.NetworkMessages != n-1 {
		t.Errorf("network messages = %d, want %d", stats.NetworkMessages, n-1)
	}
	// The accounting must equal the measured bytes-on-wire exactly —
	// same frames, same header charge, one code path.
	if stats.NetworkBytes != metered.bytes {
		t.Errorf("accounted network bytes = %d, measured on the transport = %d", stats.NetworkBytes, metered.bytes)
	}
	if stats.NetworkMessages != metered.recs {
		t.Errorf("accounted network messages = %d, records on the transport = %d", stats.NetworkMessages, metered.recs)
	}
	// Every ordered partition pair ships one frame per superstep, empty
	// or not — the synchronization cost the simulation must price.
	if want := 2 * stats.Supersteps; metered.frames != want {
		t.Errorf("frames on the transport = %d, want %d (2 pairs x %d supersteps)", metered.frames, want, stats.Supersteps)
	}
	if stats.NetworkBytes <= int64(metered.frames)*frameHeaderBytes {
		t.Errorf("network bytes = %d do not cover %d frame headers plus records", stats.NetworkBytes, metered.frames)
	}
}

// haltMaster halts before the second superstep.
type haltMaster struct{ lbl LabelID }

func (p *haltMaster) Compute(ctx *Context, v VertexID, inbox []Message) {
	ctx.SendAlong(v, p.lbl, nil)
}

func (p *haltMaster) BeforeSuperstep(step int, eng *Engine) bool { return step < 1 }

func TestEngineMasterHalt(t *testing.T) {
	g, lbl := chainGraph(5)
	eng := NewEngine(g, Options{Workers: 1})
	stats := eng.Run(&haltMaster{lbl: lbl}, []VertexID{0})
	if stats.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1 (master halted)", stats.Supersteps)
	}
}

func TestEngineSequentialRunsIsolated(t *testing.T) {
	g, lbl := chainGraph(5)
	eng := NewEngine(g, Options{Workers: 2})
	s1 := eng.Run(&haltMaster{lbl: lbl}, []VertexID{0})
	// The halted run left undelivered messages; the next run must not see them.
	s2 := eng.Run(&propagateProgram{lbl: lbl}, []VertexID{0})
	if s1.Messages != 1 {
		t.Errorf("first run messages = %d", s1.Messages)
	}
	if s2.Supersteps != 5 || s2.Messages != 4 {
		t.Errorf("second run stats = %v", s2)
	}
	total := eng.Stats()
	if total.Messages != s1.Messages+s2.Messages {
		t.Errorf("accumulated messages = %d", total.Messages)
	}
}

func TestEngineMaxSupersteps(t *testing.T) {
	// Self-loop ping-pong would run forever without the guard.
	g := NewGraph()
	l := g.Symbols.Intern("self")
	v := g.AddVertex(l, nil)
	g.AddEdge(v, v, l)
	g.Freeze()
	eng := NewEngine(g, Options{Workers: 1, MaxSupersteps: 7})
	prog := ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
		ctx.SendAlong(v, l, nil)
	})
	stats := eng.Run(prog, []VertexID{v})
	if stats.Supersteps != 7 {
		t.Errorf("supersteps = %d, want 7", stats.Supersteps)
	}
}

// meshGraph builds a denser test graph: n vertices, each with edges to
// the next k vertices (mod n), so supersteps fan out many messages.
func meshGraph(n, k int) (*Graph, LabelID) {
	g := NewGraph()
	lbl := g.Symbols.Intern("e")
	vl := g.Symbols.Intern("node")
	for i := 0; i < n; i++ {
		g.AddVertex(vl, nil)
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			g.AddEdge(VertexID(i), VertexID((i+j)%n), lbl)
		}
	}
	g.Freeze()
	return g, lbl
}

// hopProgram forwards a bounded hop counter along every "e" edge and
// emits each vertex's inbox size — output that is sensitive to both
// message delivery order and activation order.
type hopProgram struct {
	lbl  LabelID
	hops int
}

func (p *hopProgram) Compute(ctx *Context, v VertexID, inbox []Message) {
	ctx.AddOps(1 + len(inbox))
	ctx.AddInt("visits", 1)
	if len(inbox) > 0 {
		ctx.Emit([2]int{int(v), len(inbox)})
	}
	if ctx.Step() < p.hops {
		ctx.SendAlong(v, p.lbl, ctx.Step())
	}
}

// TestShardedMergeMatchesSerial: the sharded parallel merge must be
// byte-identical to the serial merge — same Emit stream in the same
// order, same aggregators, and exactly equal Stats (including the
// network dedup accounting) — across worker counts and partitionings.
func TestShardedMergeMatchesSerial(t *testing.T) {
	const n, k = 97, 5
	for _, partitions := range []int{1, 2, 6} {
		var baseStats Stats
		var baseEmit []any
		var baseAgg int64
		for i, cfg := range []struct {
			workers int
			serial  bool
		}{
			{1, true}, {1, false}, {2, false}, {4, false}, {8, false}, {4, true},
		} {
			g, lbl := meshGraph(n, k)
			eng := NewEngine(g, Options{Workers: cfg.workers, Partitions: partitions, SerialMerge: cfg.serial})
			initial := []VertexID{0, 13, 40, 77}
			stats := eng.Run(&hopProgram{lbl: lbl, hops: 4}, initial)
			emitted := append([]any(nil), eng.Emitted()...)
			agg := eng.AggInt("visits")
			if i == 0 {
				baseStats, baseEmit, baseAgg = stats, emitted, agg
				continue
			}
			if stats != baseStats {
				t.Errorf("partitions=%d workers=%d serial=%v: stats %v != base %v",
					partitions, cfg.workers, cfg.serial, stats, baseStats)
			}
			if agg != baseAgg {
				t.Errorf("partitions=%d workers=%d serial=%v: agg %d != %d",
					partitions, cfg.workers, cfg.serial, agg, baseAgg)
			}
			if len(emitted) != len(baseEmit) {
				t.Fatalf("partitions=%d workers=%d serial=%v: %d emits, want %d",
					partitions, cfg.workers, cfg.serial, len(emitted), len(baseEmit))
			}
			for j := range emitted {
				if emitted[j] != baseEmit[j] {
					t.Fatalf("partitions=%d workers=%d serial=%v: emit[%d] = %v, want %v",
						partitions, cfg.workers, cfg.serial, j, emitted[j], baseEmit[j])
				}
			}
		}
	}
}

// TestSteadyStateZeroAlloc: once pools are warm, a whole Run on a
// single-worker engine allocates nothing — contexts, inbox maps,
// message buffers, aggregator maps and the active list are all reused.
func TestSteadyStateZeroAlloc(t *testing.T) {
	g, lbl := meshGraph(64, 3)
	eng := NewEngine(g, Options{Workers: 1})
	prog := ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
		if ctx.Step() < 3 {
			ctx.SendAlong(v, lbl, nil)
		}
	})
	initial := []VertexID{0, 1, 2, 3}
	eng.Run(prog, initial)
	eng.Run(prog, initial)
	allocs := testing.AllocsPerRun(10, func() { eng.Run(prog, initial) })
	if allocs > 0 {
		t.Errorf("steady-state Run allocates %.1f times, want 0", allocs)
	}
}

// TestInboxResidencyIsSparse: an engine over a large graph with a tiny
// active frontier must hold far less inbox memory than the dense
// O(|V|) plane did, and an idle engine must trim back under the
// pooling budget.
func TestInboxResidencyIsSparse(t *testing.T) {
	const n = 20000
	g, lbl := chainGraph(n)
	eng := NewEngine(g, Options{Workers: 4})
	prog := ProgramFunc(func(ctx *Context, v VertexID, inbox []Message) {
		if ctx.Step() < 50 {
			ctx.SendAlong(v, lbl, nil)
		}
	})
	eng.Run(prog, []VertexID{0})
	sparse, dense := eng.InboxBytes(), DenseInboxBytes(g.NumVertices())
	if sparse == 0 {
		t.Fatal("InboxBytes = 0 after a run that pooled buffers")
	}
	if sparse*10 > dense {
		t.Errorf("sparse residency %d B is not << dense %d B", sparse, dense)
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Supersteps: 1, Messages: 2, MessageBytes: 3, ComputeOps: 4}
	b := Stats{Supersteps: 10, Messages: 20, NetworkBytes: 5}
	a.Add(b)
	if a.Supersteps != 11 || a.Messages != 22 || a.NetworkBytes != 5 {
		t.Errorf("Add result = %+v", a)
	}
	if a.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestGraphByteSize(t *testing.T) {
	g, _ := chainGraph(3)
	if g.ByteSize() <= 0 {
		t.Error("byte size should be positive")
	}
}
