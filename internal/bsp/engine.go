package bsp

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
)

// Message is delivered to a vertex at the start of the superstep after it
// was sent, per the BSP discipline of §2.
type Message struct {
	From    VertexID
	Payload any
}

// Program is a vertex program: Compute runs once per active vertex per
// superstep, with the messages the vertex received.
//
// Compute must only touch the state of its own vertex (vertex payloads of
// other vertices may be read if the program guarantees they are not being
// mutated concurrently, e.g. immutable TAG tuple data).
//
// The inbox slice is only valid for the duration of the Compute call:
// the engine recycles message buffers across supersteps, so a program
// that needs messages later must copy them (payload references may be
// kept — only the slice itself is reused).
type Program interface {
	Compute(ctx *Context, v VertexID, inbox []Message)
}

// MasterProgram is an optional extension: BeforeSuperstep runs at the
// barrier before each superstep (step counts from 0) and may halt the
// computation by returning false. This is where label-stack-driven
// programs (Algorithm 2) pop the next traversal step.
type MasterProgram interface {
	BeforeSuperstep(step int, eng *Engine) bool
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(ctx *Context, v VertexID, inbox []Message)

// Compute implements Program.
func (f ProgramFunc) Compute(ctx *Context, v VertexID, inbox []Message) { f(ctx, v, inbox) }

// Options configures an Engine run.
type Options struct {
	// Workers is the thread parallelism degree; defaults to GOMAXPROCS.
	// It fixes both the compute fan-out and the number of message-plane
	// shards (one merge shard per worker).
	Workers int
	// MaxSupersteps guards against runaway programs; defaults to 100000.
	MaxSupersteps int
	// Partitions simulates a distributed cluster: messages whose source
	// and destination vertices live on different partitions are counted
	// as network traffic. Defaults to 1 (single machine).
	Partitions int
	// PartitionOf overrides the default hash partitioner.
	PartitionOf func(VertexID) int
	// PayloadSize estimates the wire size of a message payload in bytes;
	// defaults to 8 bytes per payload.
	PayloadSize func(any) int
	// SerialMerge runs the communication stage on a single goroutine
	// (the pre-sharding engine behavior). Delivery order, Emit output
	// and every Stats field are identical either way — the flag exists
	// so benchmarks and cross-check tests can compare the serial and
	// sharded message planes.
	SerialMerge bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 100000
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.PartitionOf == nil {
		p := o.Partitions
		o.PartitionOf = func(v VertexID) int { return int(v) % p }
	}
	if o.PayloadSize == nil {
		o.PayloadSize = func(any) int { return 8 }
	}
	return o
}

// Stats accumulates the paper's cost measures over a run (§2 "Cost
// Measure"): total messages and computation, plus byte-level and
// cross-partition (network) accounting.
type Stats struct {
	Supersteps      int
	Messages        int64
	MessageBytes    int64
	NetworkMessages int64 // messages crossing partition boundaries
	NetworkBytes    int64
	ComputeOps      int64
	ActiveVisits    int64 // total vertex activations over all supersteps
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Supersteps += other.Supersteps
	s.Messages += other.Messages
	s.MessageBytes += other.MessageBytes
	s.NetworkMessages += other.NetworkMessages
	s.NetworkBytes += other.NetworkBytes
	s.ComputeOps += other.ComputeOps
	s.ActiveVisits += other.ActiveVisits
}

// Sub returns s - other, the delta between two cumulative snapshots
// (e.g. one query's cost out of a session's running totals).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Supersteps:      s.Supersteps - other.Supersteps,
		Messages:        s.Messages - other.Messages,
		MessageBytes:    s.MessageBytes - other.MessageBytes,
		NetworkMessages: s.NetworkMessages - other.NetworkMessages,
		NetworkBytes:    s.NetworkBytes - other.NetworkBytes,
		ComputeOps:      s.ComputeOps - other.ComputeOps,
		ActiveVisits:    s.ActiveVisits - other.ActiveVisits,
	}
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("supersteps=%d msgs=%d bytes=%d netMsgs=%d netBytes=%d ops=%d visits=%d",
		s.Supersteps, s.Messages, s.MessageBytes, s.NetworkMessages, s.NetworkBytes, s.ComputeOps, s.ActiveVisits)
}

type outMsg struct {
	from, to VertexID
	payload  any
}

// wire is the network-dedup key: identical payloads from one source
// vertex to one destination machine cross the interconnect once and fan
// out locally (a per-machine message combiner).
type wire struct {
	from VertexID
	part int
	pay  any
}

// mergeShard is one shard of the sharded message plane. During the
// communication stage, worker w owns shard w exclusively: it is the
// only goroutine that touches the shard's inbox maps, key lists, free
// list, dedup set and stats, so the parallel merge needs no locks.
type mergeShard struct {
	// in holds the messages delivered at the last barrier, keyed by
	// destination vertex — the sparse replacement for the dense O(|V|)
	// inbox array. inKeys lists its keys in delivery order. Entries are
	// deleted (and their buffers recycled) once consumed, so resident
	// size tracks the active frontier, not the graph.
	in     map[VertexID][]Message
	inKeys []VertexID
	// next accumulates the messages sent during the current superstep;
	// the planes swap at the barrier.
	next     map[VertexID][]Message
	nextKeys []VertexID
	// free recycles message buffers across supersteps and Runs, so a
	// steady-state superstep allocates ~nothing.
	free [][]Message
	// sent is the per-shard network dedup set. It is globally exact
	// because shardOf routes every vertex of one simulated partition to
	// the same shard, so no (source, destination-machine, payload)
	// triple is ever split across shards.
	sent map[wire]bool
	// stats is this shard's share of the superstep's message
	// accounting; the coordinator folds it into Engine.stats at the
	// barrier.
	stats Stats
}

// msgBytes is the in-memory size of one Message (padded int32 +
// 16-byte interface) used by the footprint accounting.
const msgBytes = 24

// maxPooledBytes bounds the message buffers a Run leaves pooled per
// engine (split evenly across shards). Within a run the pool is
// unbounded (steady-state supersteps must not allocate); at the end of
// a run anything beyond the budget returns to the GC with the frontier
// that needed it, so a session that just ran a huge query does not
// stay huge while idle.
const maxPooledBytes = 32 << 10

// recycleIn clears the consumed inbox entries of a shard, zeroing
// payload references and returning the buffers to the free list.
func (sh *mergeShard) recycleIn() {
	for _, v := range sh.inKeys {
		buf := sh.in[v]
		for i := range buf {
			buf[i] = Message{}
		}
		sh.free = append(sh.free, buf[:0])
		delete(sh.in, v)
	}
	sh.inKeys = sh.inKeys[:0]
}

// trimFree drops pooled buffers beyond this shard's share of the
// engine's pooling budget.
func (sh *mergeShard) trimFree(budget int64) {
	var total int64
	n := 0
	for _, buf := range sh.free {
		total += int64(cap(buf)) * msgBytes
		if total > budget {
			break
		}
		n++
	}
	for i := n; i < len(sh.free); i++ {
		sh.free[i] = nil
	}
	sh.free = sh.free[:n]
}

// getBuf pops a recycled message buffer; nil means append will allocate
// a fresh one on first use.
func (sh *mergeShard) getBuf() []Message {
	if n := len(sh.free); n > 0 {
		buf := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return buf
	}
	return nil
}

// Engine executes vertex programs over a frozen graph. An Engine may run
// several programs in sequence over the same graph (as TAG-join does for
// its reduction and collection phases); Stats accumulate across runs.
//
// Concurrency contract: an Engine holds per-run mutable state (inboxes,
// stats, aggregators), so a single Engine runs one program at a time.
// Any number of Engines may run concurrently over the same *frozen*
// Graph, each serving one in-flight query — that is how internal/serve's
// session pool shares one TAG encoding across simultaneous queries. The
// graph value an engine runs over must not be thawed while any engine
// on it is running; to maintain a graph that is being served, mutate a
// copy-on-write Clone off to the side and point new engines at the
// clone (the generation scheme in internal/serve).
//
// The message plane is sharded: each worker context keeps one outbox
// per destination shard, and after the compute barrier the same worker
// pool merges them in parallel — worker w is the only writer into
// shard w. Inboxes are sparse maps keyed by active vertex, so an idle
// engine holds O(active) memory, not O(|V|), and contexts, outboxes,
// aggregator maps and message buffers are pooled across supersteps and
// Runs.
type Engine struct {
	g    *Graph
	opts Options

	stats Stats

	shards []mergeShard
	ctxs   []*Context
	active []VertexID

	aggs   map[string]int64
	emits  []any
	halted bool

	// wg coordinates the compute and merge fan-outs; a field rather
	// than a Run local so steady-state supersteps allocate nothing.
	wg sync.WaitGroup
}

// NewEngine prepares an engine over g. Construction is cheap — O(#workers),
// independent of the graph size — so per-generation session pools can
// create engines lazily on the serving path.
func NewEngine(g *Graph, opts Options) *Engine {
	if !g.Frozen() {
		g.Freeze()
	}
	opts = opts.withDefaults()
	e := &Engine{
		g:      g,
		opts:   opts,
		shards: make([]mergeShard, opts.Workers),
		ctxs:   make([]*Context, opts.Workers),
		aggs:   make(map[string]int64),
	}
	for s := range e.shards {
		e.shards[s].in = make(map[VertexID][]Message)
		e.shards[s].next = make(map[VertexID][]Message)
	}
	for w := range e.ctxs {
		e.ctxs[w] = &Context{eng: e, out: make([][]outMsg, opts.Workers), aggs: make(map[string]int64)}
	}
	return e
}

// shardOf maps a destination vertex to the merge shard that owns it.
// Under a simulated partitioning the shard is derived from the vertex's
// partition, so each simulated machine is owned by exactly one shard —
// that keeps the per-shard network dedup globally exact. Otherwise
// vertices are striped over shards directly.
func (e *Engine) shardOf(v VertexID) int {
	n := len(e.shards)
	if n == 1 {
		return 0
	}
	if e.opts.Partitions > 1 {
		s := e.opts.PartitionOf(v) % n
		if s < 0 {
			s += n
		}
		return s
	}
	return int(v) % n
}

// inboxOf returns the messages delivered to v at the last barrier.
func (e *Engine) inboxOf(v VertexID) []Message {
	return e.shards[e.shardOf(v)].in[v]
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *Graph { return e.g }

// Stats returns the accumulated cost measures.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the accumulated cost measures.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// AddExternal records communication performed outside a vertex program
// (e.g. the Algorithm B Cartesian combination of component results) in
// the cost measures.
func (e *Engine) AddExternal(msgs, bytes int64) {
	e.stats.Messages += msgs
	e.stats.MessageBytes += bytes
}

// AggInt returns the value of a named integer aggregator accumulated
// during the most recent superstep.
func (e *Engine) AggInt(name string) int64 { return e.aggs[name] }

// Emitted returns values emitted via Context.Emit during the last Run, in
// deterministic (worker-, then vertex-) order. The slice is valid until
// the next Run.
func (e *Engine) Emitted() []any { return e.emits }

// Halt requests termination after the current superstep; usable from a
// MasterProgram.
func (e *Engine) Halt() { e.halted = true }

// InboxBytes estimates the resident memory of the sparse message plane:
// live inbox entries plus the pooled buffers kept for reuse. Compare
// with DenseInboxBytes: the dense plane held two O(|V|) slice-header
// arrays per engine before counting a single message.
func (e *Engine) InboxBytes() int64 {
	const entrySize = 40 // map key + slice header, approximate
	var total int64
	for s := range e.shards {
		sh := &e.shards[s]
		total += int64(len(sh.in)+len(sh.next)) * entrySize
		for _, buf := range sh.in {
			total += int64(cap(buf)) * msgBytes
		}
		for _, buf := range sh.next {
			total += int64(cap(buf)) * msgBytes
		}
		for _, buf := range sh.free {
			total += int64(cap(buf)) * msgBytes
		}
	}
	return total
}

// DenseInboxBytes returns what the pre-sharding dense message plane
// held resident for a graph of n vertices: two arrays of O(|V|) slice
// headers per engine, regardless of how many vertices were active.
func DenseInboxBytes(n int) int64 { return int64(n) * 48 }

// Run executes prog starting from the initial active set until no vertex
// is active, the master halts, or MaxSupersteps is reached. It returns the
// stats for this run only (engine totals keep accumulating).
func (e *Engine) Run(prog Program, initial []VertexID) Stats {
	before := e.stats
	e.halted = false
	e.emits = e.emits[:0]

	// The graph may have grown since the engine was created (incremental
	// TAG maintenance adds vertices); the sparse inbox maps absorb new
	// vertex ids with no resizing, so only re-freezing matters here.
	if !e.g.Frozen() {
		e.g.Freeze()
	}

	active := append(e.active[:0], initial...)
	slices.Sort(active)

	master, hasMaster := prog.(MasterProgram)

	for step := 0; step < e.opts.MaxSupersteps; step++ {
		if hasMaster && !master.BeforeSuperstep(step, e) {
			break
		}
		if len(active) == 0 || e.halted {
			break
		}
		e.stats.Supersteps++
		e.stats.ActiveVisits += int64(len(active))

		// Aggregator values from superstep S are visible during S+1 and at
		// the following barrier; clear them only now that the previous
		// barrier (and master hook) has consumed them.
		clear(e.aggs)

		// Computation stage: shard active vertices over the pooled worker
		// contexts.
		workers := len(e.ctxs)
		if workers > len(active) {
			workers = len(active)
		}
		chunk := (len(active) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := min(w*chunk, len(active))
			hi := min(lo+chunk, len(active))
			ctx := e.ctxs[w]
			ctx.step = step
			if workers == 1 {
				for _, v := range active {
					prog.Compute(ctx, v, e.inboxOf(v))
				}
				break
			}
			e.wg.Add(1)
			go func(verts []VertexID, ctx *Context) {
				defer e.wg.Done()
				for _, v := range verts {
					prog.Compute(ctx, v, e.inboxOf(v))
				}
			}(active[lo:hi], ctx)
		}
		e.wg.Wait()

		// Communication stage: the same worker pool merges the sharded
		// outboxes, worker w writing only shard w. Delivery into any one
		// vertex's inbox happens in (worker, send) order — exactly the
		// serial merge's order — so the stage is deterministic no matter
		// how many goroutines run it.
		if e.opts.SerialMerge || len(e.shards) == 1 {
			for s := range e.shards {
				e.mergeShard(s)
			}
		} else {
			for s := range e.shards {
				e.wg.Add(1)
				go func(s int) {
					defer e.wg.Done()
					e.mergeShard(s)
				}(s)
			}
			e.wg.Wait()
		}

		// Barrier: fold per-shard accounting, swap the message planes,
		// and collect the next active set.
		active = active[:0]
		for s := range e.shards {
			sh := &e.shards[s]
			e.stats.Add(sh.stats)
			sh.stats = Stats{}
			sh.in, sh.next = sh.next, sh.in
			sh.inKeys, sh.nextKeys = sh.nextKeys, sh.inKeys
			active = append(active, sh.inKeys...)
		}
		// Per-worker outputs, in deterministic worker order.
		for _, ctx := range e.ctxs {
			for k, v := range ctx.aggs {
				e.aggs[k] += v
			}
			clear(ctx.aggs)
			e.emits = append(e.emits, ctx.emits...)
			for i := range ctx.emits {
				ctx.emits[i] = nil
			}
			ctx.emits = ctx.emits[:0]
			e.stats.ComputeOps += ctx.ops
			ctx.ops = 0
		}
		slices.Sort(active)
	}

	// Drop any undelivered messages so the next Run starts clean; their
	// buffers go back to the free lists (bounded, so a huge run's peak
	// frontier is not kept resident by an idle session).
	budget := int64(maxPooledBytes / len(e.shards))
	for s := range e.shards {
		e.shards[s].recycleIn()
		e.shards[s].trimFree(budget)
	}
	e.active = active

	return e.stats.Sub(before)
}

// mergeShard runs the communication stage for one shard: recycle the
// inbox entries this shard's vertices consumed during the superstep,
// then deliver every worker's outbox slice for this shard, in worker
// order. Network accounting batches identical payloads from one source
// to one destination machine into a single wire transfer, as BSP
// engines' per-machine message combiners do: the payload crosses the
// interconnect once and fans out locally.
func (e *Engine) mergeShard(s int) {
	sh := &e.shards[s]
	sh.recycleIn()
	partitions := e.opts.Partitions
	if partitions > 1 {
		if sh.sent == nil {
			sh.sent = make(map[wire]bool)
		} else {
			clear(sh.sent)
		}
	}
	for _, ctx := range e.ctxs {
		msgs := ctx.out[s]
		for i := range msgs {
			m := &msgs[i]
			buf, ok := sh.next[m.to]
			if !ok {
				buf = sh.getBuf()
				sh.nextKeys = append(sh.nextKeys, m.to)
			}
			sh.next[m.to] = append(buf, Message{From: m.from, Payload: m.payload})
			sz := int64(e.opts.PayloadSize(m.payload))
			sh.stats.Messages++
			sh.stats.MessageBytes += sz
			if partitions > 1 && e.opts.PartitionOf(m.from) != e.opts.PartitionOf(m.to) {
				w := wire{from: m.from, part: e.opts.PartitionOf(m.to), pay: m.payload}
				if !sh.sent[w] {
					sh.sent[w] = true
					sh.stats.NetworkMessages++
					sh.stats.NetworkBytes += sz
				}
			}
			msgs[i] = outMsg{} // release payload references held by the outbox
		}
		ctx.out[s] = msgs[:0]
	}
}

// Context is the per-worker view handed to Compute. All methods are safe
// for the single goroutine that owns the context.
type Context struct {
	eng   *Engine
	step  int
	out   [][]outMsg // one outbox per destination merge shard
	aggs  map[string]int64
	emits []any
	ops   int64
}

// Graph returns the graph being computed over.
func (c *Context) Graph() *Graph { return c.eng.g }

// Step returns the current superstep number (counting from 0).
func (c *Context) Step() int { return c.step }

// Send queues a message for delivery at the next superstep. Vertices may
// message any vertex whose id they know (§2). The message lands in the
// outbox of the shard that owns the destination, so the post-barrier
// merge can run shard-parallel without locks.
func (c *Context) Send(from, to VertexID, payload any) {
	s := c.eng.shardOf(to)
	c.out[s] = append(c.out[s], outMsg{from: from, to: to, payload: payload})
}

// SendAlong sends payload along every out-edge of v carrying label and
// returns the number of messages sent.
func (c *Context) SendAlong(v VertexID, label LabelID, payload any) int {
	edges := c.eng.g.EdgesWithLabel(v, label)
	for _, e := range edges {
		c.Send(v, e.To, payload)
	}
	return len(edges)
}

// AddInt accumulates into a named global integer aggregator; the merged
// value is readable by the master (Engine.AggInt) at the next barrier.
func (c *Context) AddInt(name string, delta int64) {
	c.aggs[name] += delta
}

// Emit contributes a value to the run's distributed output.
func (c *Context) Emit(v any) { c.emits = append(c.emits, v) }

// AddOps records n units of per-vertex computation for the cost measures.
func (c *Context) AddOps(n int) { c.ops += int64(n) }
