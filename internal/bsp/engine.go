package bsp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Message is delivered to a vertex at the start of the superstep after it
// was sent, per the BSP discipline of §2.
type Message struct {
	From    VertexID
	Payload any
}

// Program is a vertex program: Compute runs once per active vertex per
// superstep, with the messages the vertex received.
//
// Compute must only touch the state of its own vertex (vertex payloads of
// other vertices may be read if the program guarantees they are not being
// mutated concurrently, e.g. immutable TAG tuple data).
type Program interface {
	Compute(ctx *Context, v VertexID, inbox []Message)
}

// MasterProgram is an optional extension: BeforeSuperstep runs at the
// barrier before each superstep (step counts from 0) and may halt the
// computation by returning false. This is where label-stack-driven
// programs (Algorithm 2) pop the next traversal step.
type MasterProgram interface {
	BeforeSuperstep(step int, eng *Engine) bool
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(ctx *Context, v VertexID, inbox []Message)

// Compute implements Program.
func (f ProgramFunc) Compute(ctx *Context, v VertexID, inbox []Message) { f(ctx, v, inbox) }

// Options configures an Engine run.
type Options struct {
	// Workers is the thread parallelism degree; defaults to GOMAXPROCS.
	Workers int
	// MaxSupersteps guards against runaway programs; defaults to 100000.
	MaxSupersteps int
	// Partitions simulates a distributed cluster: messages whose source
	// and destination vertices live on different partitions are counted
	// as network traffic. Defaults to 1 (single machine).
	Partitions int
	// PartitionOf overrides the default hash partitioner.
	PartitionOf func(VertexID) int
	// PayloadSize estimates the wire size of a message payload in bytes;
	// defaults to 8 bytes per payload.
	PayloadSize func(any) int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 100000
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.PartitionOf == nil {
		p := o.Partitions
		o.PartitionOf = func(v VertexID) int { return int(v) % p }
	}
	if o.PayloadSize == nil {
		o.PayloadSize = func(any) int { return 8 }
	}
	return o
}

// Stats accumulates the paper's cost measures over a run (§2 "Cost
// Measure"): total messages and computation, plus byte-level and
// cross-partition (network) accounting.
type Stats struct {
	Supersteps      int
	Messages        int64
	MessageBytes    int64
	NetworkMessages int64 // messages crossing partition boundaries
	NetworkBytes    int64
	ComputeOps      int64
	ActiveVisits    int64 // total vertex activations over all supersteps
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Supersteps += other.Supersteps
	s.Messages += other.Messages
	s.MessageBytes += other.MessageBytes
	s.NetworkMessages += other.NetworkMessages
	s.NetworkBytes += other.NetworkBytes
	s.ComputeOps += other.ComputeOps
	s.ActiveVisits += other.ActiveVisits
}

// Sub returns s - other, the delta between two cumulative snapshots
// (e.g. one query's cost out of a session's running totals).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Supersteps:      s.Supersteps - other.Supersteps,
		Messages:        s.Messages - other.Messages,
		MessageBytes:    s.MessageBytes - other.MessageBytes,
		NetworkMessages: s.NetworkMessages - other.NetworkMessages,
		NetworkBytes:    s.NetworkBytes - other.NetworkBytes,
		ComputeOps:      s.ComputeOps - other.ComputeOps,
		ActiveVisits:    s.ActiveVisits - other.ActiveVisits,
	}
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("supersteps=%d msgs=%d bytes=%d netMsgs=%d netBytes=%d ops=%d visits=%d",
		s.Supersteps, s.Messages, s.MessageBytes, s.NetworkMessages, s.NetworkBytes, s.ComputeOps, s.ActiveVisits)
}

type outMsg struct {
	from, to VertexID
	payload  any
}

// Engine executes vertex programs over a frozen graph. An Engine may run
// several programs in sequence over the same graph (as TAG-join does for
// its reduction and collection phases); Stats accumulate across runs.
//
// Concurrency contract: an Engine holds per-run mutable state (inboxes,
// stats, aggregators), so a single Engine runs one program at a time.
// Any number of Engines may run concurrently over the same *frozen*
// Graph, each serving one in-flight query — that is how internal/serve's
// session pool shares one TAG encoding across simultaneous queries. The
// graph value an engine runs over must not be thawed while any engine
// on it is running; to maintain a graph that is being served, mutate a
// copy-on-write Clone off to the side and point new engines at the
// clone (the generation scheme in internal/serve).
type Engine struct {
	g    *Graph
	opts Options

	stats Stats

	inbox  [][]Message
	dirty  []VertexID
	nextIn [][]Message

	aggs   map[string]int64
	emits  []any
	halted bool
}

// NewEngine prepares an engine over g.
func NewEngine(g *Graph, opts Options) *Engine {
	if !g.Frozen() {
		g.Freeze()
	}
	return &Engine{
		g:      g,
		opts:   opts.withDefaults(),
		inbox:  make([][]Message, g.NumVertices()),
		nextIn: make([][]Message, g.NumVertices()),
		aggs:   make(map[string]int64),
	}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *Graph { return e.g }

// Stats returns the accumulated cost measures.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the accumulated cost measures.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// AddExternal records communication performed outside a vertex program
// (e.g. the Algorithm B Cartesian combination of component results) in
// the cost measures.
func (e *Engine) AddExternal(msgs, bytes int64) {
	e.stats.Messages += msgs
	e.stats.MessageBytes += bytes
}

// AggInt returns the value of a named integer aggregator accumulated
// during the most recent superstep.
func (e *Engine) AggInt(name string) int64 { return e.aggs[name] }

// Emitted returns values emitted via Context.Emit during the last Run, in
// deterministic (worker-, then vertex-) order.
func (e *Engine) Emitted() []any { return e.emits }

// Halt requests termination after the current superstep; usable from a
// MasterProgram.
func (e *Engine) Halt() { e.halted = true }

// Run executes prog starting from the initial active set until no vertex
// is active, the master halts, or MaxSupersteps is reached. It returns the
// stats for this run only (engine totals keep accumulating).
func (e *Engine) Run(prog Program, initial []VertexID) Stats {
	before := e.stats
	e.halted = false
	e.emits = e.emits[:0]

	// The graph may have grown since the engine was created (incremental
	// TAG maintenance adds vertices); make room and ensure it is frozen.
	if !e.g.Frozen() {
		e.g.Freeze()
	}
	if n := e.g.NumVertices(); n > len(e.inbox) {
		e.inbox = append(e.inbox, make([][]Message, n-len(e.inbox))...)
		e.nextIn = append(e.nextIn, make([][]Message, n-len(e.nextIn))...)
	}

	active := make([]VertexID, len(initial))
	copy(active, initial)
	sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })

	master, hasMaster := prog.(MasterProgram)

	for step := 0; step < e.opts.MaxSupersteps; step++ {
		if hasMaster && !master.BeforeSuperstep(step, e) {
			break
		}
		if len(active) == 0 || e.halted {
			break
		}
		e.stats.Supersteps++
		e.stats.ActiveVisits += int64(len(active))

		// Aggregator values from superstep S are visible during S+1 and at
		// the following barrier; clear them only now that the previous
		// barrier (and master hook) has consumed them.
		for k := range e.aggs {
			delete(e.aggs, k)
		}

		// Computation stage: shard active vertices over workers.
		workers := e.opts.Workers
		if workers > len(active) {
			workers = len(active)
		}
		ctxs := make([]*Context, workers)
		var wg sync.WaitGroup
		chunk := (len(active) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo > len(active) {
				lo = len(active)
			}
			hi := lo + chunk
			if hi > len(active) {
				hi = len(active)
			}
			ctx := &Context{eng: e, step: step, aggs: make(map[string]int64)}
			ctxs[w] = ctx
			wg.Add(1)
			go func(verts []VertexID, ctx *Context) {
				defer wg.Done()
				for _, v := range verts {
					prog.Compute(ctx, v, e.inbox[v])
				}
			}(active[lo:hi], ctx)
		}
		wg.Wait()

		// Barrier: clear consumed inboxes.
		for _, v := range active {
			e.inbox[v] = nil
		}

		// Communication stage: merge per-worker outboxes deterministically.
		// Network accounting batches identical payloads from one source to
		// one destination machine into a single wire transfer, as BSP
		// engines' per-machine message combiners do: the payload crosses
		// the interconnect once and fans out locally.
		e.dirty = e.dirty[:0]
		type wire struct {
			from VertexID
			part int
			pay  any
		}
		var sent map[wire]bool
		if e.opts.Partitions > 1 {
			sent = make(map[wire]bool)
		}
		for _, ctx := range ctxs {
			for _, m := range ctx.out {
				if len(e.nextIn[m.to]) == 0 {
					e.dirty = append(e.dirty, m.to)
				}
				e.nextIn[m.to] = append(e.nextIn[m.to], Message{From: m.from, Payload: m.payload})
				sz := int64(e.opts.PayloadSize(m.payload))
				e.stats.Messages++
				e.stats.MessageBytes += sz
				if e.opts.Partitions > 1 && e.opts.PartitionOf(m.from) != e.opts.PartitionOf(m.to) {
					w := wire{from: m.from, part: e.opts.PartitionOf(m.to), pay: m.payload}
					if !sent[w] {
						sent[w] = true
						e.stats.NetworkMessages++
						e.stats.NetworkBytes += sz
					}
				}
			}
			for k, v := range ctx.aggs {
				e.aggs[k] += v
			}
			e.emits = append(e.emits, ctx.emits...)
			e.stats.ComputeOps += ctx.ops
		}

		// Deliver: swap inboxes, activate recipients.
		e.inbox, e.nextIn = e.nextIn, e.inbox
		sort.Slice(e.dirty, func(i, j int) bool { return e.dirty[i] < e.dirty[j] })
		active = append(active[:0], e.dirty...)
	}

	// Drop any undelivered messages so the next Run starts clean.
	for _, v := range e.dirty {
		e.inbox[v] = nil
	}
	e.dirty = e.dirty[:0]

	return e.stats.Sub(before)
}

// Context is the per-worker view handed to Compute. All methods are safe
// for the single goroutine that owns the context.
type Context struct {
	eng   *Engine
	step  int
	out   []outMsg
	aggs  map[string]int64
	emits []any
	ops   int64
}

// Graph returns the graph being computed over.
func (c *Context) Graph() *Graph { return c.eng.g }

// Step returns the current superstep number (counting from 0).
func (c *Context) Step() int { return c.step }

// Send queues a message for delivery at the next superstep. Vertices may
// message any vertex whose id they know (§2).
func (c *Context) Send(from, to VertexID, payload any) {
	c.out = append(c.out, outMsg{from: from, to: to, payload: payload})
}

// SendAlong sends payload along every out-edge of v carrying label and
// returns the number of messages sent.
func (c *Context) SendAlong(v VertexID, label LabelID, payload any) int {
	edges := c.eng.g.EdgesWithLabel(v, label)
	for _, e := range edges {
		c.Send(v, e.To, payload)
	}
	return len(edges)
}

// AddInt accumulates into a named global integer aggregator; the merged
// value is readable by the master (Engine.AggInt) at the next barrier.
func (c *Context) AddInt(name string, delta int64) {
	c.aggs[name] += delta
}

// Emit contributes a value to the run's distributed output.
func (c *Context) Emit(v any) { c.emits = append(c.emits, v) }

// AddOps records n units of per-vertex computation for the cost measures.
func (c *Context) AddOps(n int) { c.ops += int64(n) }
