package bsp

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"time"
)

// Message is delivered to a vertex at the start of the superstep after it
// was sent, per the BSP discipline of §2.
//
// When the running program declares a Combiner, messages bound for the
// same (destination, slot) are folded into one delivered Message whose
// Payload is the accumulated value: From is the first folded sender (in
// delivery order) and Count is the number of logical sends the message
// represents. Uncombined deliveries carry Count == 1. Programs that
// account per-message work should use InboxCount rather than
// len(inbox), which keeps the paper's ComputeOps measure identical
// whether or not the plane folded.
type Message struct {
	From    VertexID
	Count   int32
	Payload any
}

// InboxCount returns the number of logical messages an inbox
// represents: combined messages count every send folded into them. A
// zero Count (a Message built by hand) counts as one.
func InboxCount(inbox []Message) int {
	n := 0
	for i := range inbox {
		if c := int(inbox[i].Count); c > 1 {
			n += c
		} else {
			n++
		}
	}
	return n
}

// Program is a vertex program: Compute runs once per active vertex per
// superstep, with the messages the vertex received.
//
// Compute must only touch the state of its own vertex (vertex payloads of
// other vertices may be read if the program guarantees they are not being
// mutated concurrently, e.g. immutable TAG tuple data).
//
// The inbox slice is only valid for the duration of the Compute call:
// the engine recycles message buffers across supersteps, so a program
// that needs messages later must copy them (payload references may be
// kept — only the slice itself is reused).
type Program interface {
	Compute(ctx *Context, v VertexID, inbox []Message)
}

// MasterProgram is an optional extension: BeforeSuperstep runs at the
// barrier before each superstep (step counts from 0) and may halt the
// computation by returning false. This is where label-stack-driven
// programs (Algorithm 2) pop the next traversal step.
type MasterProgram interface {
	BeforeSuperstep(step int, eng *Engine) bool
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(ctx *Context, v VertexID, inbox []Message)

// Compute implements Program.
func (f ProgramFunc) Compute(ctx *Context, v VertexID, inbox []Message) { f(ctx, v, inbox) }

// Combiner folds the payloads of messages bound for the same
// (destination vertex, slot) into one accumulated payload, the
// Pregel-style message combiner. The engine applies it at two points:
// at Send time into a per-(shard, destination, slot) accumulator in the
// sending worker's outbox, and after the compute barrier when the shard
// merge folds colliding accumulators from different workers — so a
// sparse inbox carries at most one Message per (active vertex, slot).
//
// The fold must be insensitive to regrouping of the send stream
// (commutative/associative in spirit). Within one partition the engine
// never reorders it — payloads fold in exactly the (worker, send) order
// the uncombined plane would have delivered them in — but across
// partitions each source partition folds its own share of a stream
// independently and the shares are Merged at the receiver, so a
// Combiner whose result depends on how an order-preserving send
// sequence is cut into contiguous runs (e.g. naive float addition)
// must defer the order-sensitive part to Merge time, the way the SQL
// layer's partial-group combiner does.
//
// Fold and Merge are called concurrently from different workers, but
// always on distinct accumulators; implementations must not keep
// shared mutable state. The engine's paper-facing cost counters
// (Messages, MessageBytes, NetworkMessages, ComputeOps via InboxCount)
// are unaffected by folding; the folding itself is reported in
// Stats.MessagesCombined and Stats.InboxBytesSaved.
type Combiner interface {
	// Slot classifies a payload into an independent fold stream:
	// payloads in different slots never fold together and arrive as
	// separate messages. Programs that send one kind of message per
	// superstep return 0. A negative slot opts the payload out of
	// combining entirely (it is delivered as a plain message, before
	// any combined messages for the same destination).
	Slot(payload any) int
	// Fold merges one sent payload into the accumulator and returns
	// the new accumulator; acc is nil for the first send. from is the
	// sending vertex.
	Fold(acc any, from VertexID, payload any) any
	// Merge folds another worker's accumulator (a value previously
	// returned by Fold) into acc and returns the result.
	Merge(acc, other any) any
}

// CombinerProvider is an optional Program extension: a program whose
// messages may be folded en route returns its Combiner (nil disables
// combining for the run, as does Options.NoCombine).
type CombinerProvider interface {
	Combiner() Combiner
}

// WithCombiner attaches a combiner to a program that cannot implement
// CombinerProvider itself (e.g. a ProgramFunc closure). The wrapper
// forwards MasterProgram to the wrapped program if it implements it.
func WithCombiner(p Program, c Combiner) Program {
	return &combinedProgram{prog: p, comb: c}
}

type combinedProgram struct {
	prog Program
	comb Combiner
}

func (c *combinedProgram) Compute(ctx *Context, v VertexID, inbox []Message) {
	c.prog.Compute(ctx, v, inbox)
}

func (c *combinedProgram) Combiner() Combiner { return c.comb }

func (c *combinedProgram) BeforeSuperstep(step int, eng *Engine) bool {
	if m, ok := c.prog.(MasterProgram); ok {
		return m.BeforeSuperstep(step, eng)
	}
	return true
}

// SignalCombiner combines pure-signal messages — sends whose payload
// the receiver never reads (activation pings, nil payloads) — into one
// nil-payload message per destination. The logical send count survives
// in Message.Count.
type SignalCombiner struct{}

// Slot implements Combiner.
func (SignalCombiner) Slot(any) int { return 0 }

// Fold implements Combiner; the accumulator stays nil.
func (SignalCombiner) Fold(acc any, _ VertexID, _ any) any { return acc }

// Merge implements Combiner.
func (SignalCombiner) Merge(acc, _ any) any { return acc }

// SumCombiner combines int64 payloads by addition — the canonical
// COUNT/SUM message combiner for programs whose receivers only total
// their inbox.
type SumCombiner struct{}

// Slot implements Combiner.
func (SumCombiner) Slot(any) int { return 0 }

// Fold implements Combiner.
func (SumCombiner) Fold(acc any, _ VertexID, payload any) any {
	if acc == nil {
		return payload.(int64)
	}
	return acc.(int64) + payload.(int64)
}

// Merge implements Combiner.
func (SumCombiner) Merge(acc, other any) any { return acc.(int64) + other.(int64) }

// Options configures an Engine run.
type Options struct {
	// Workers is the thread parallelism degree; defaults to GOMAXPROCS.
	// It fixes both the compute fan-out and the number of message-plane
	// shards (one merge shard per worker).
	Workers int
	// MaxSupersteps guards against runaway programs; defaults to 100000.
	MaxSupersteps int
	// Partitions hash-partitions the graph across N machines: messages
	// whose source and destination vertices live on different partitions
	// are built into wire records, sealed into per-partition-pair frames
	// and priced as network traffic. Defaults to 1 (single machine).
	// Whether those frames actually cross a socket is the Transport's
	// business — the accounting path is the same either way.
	Partitions int
	// PartitionOf overrides the default hash partitioner.
	PartitionOf func(VertexID) int
	// PayloadSize estimates the in-memory size of a message payload in
	// bytes for the MessageBytes measure; defaults to 8 bytes per
	// payload. Network bytes are not estimated: at Partitions > 1 they
	// are counted from the actual encoded wire frames.
	PayloadSize func(any) int
	// Transport carries the sealed cross-partition frames. Defaults to
	// Loopback(Partitions) when Partitions > 1: the single-process
	// simulation, where frames are priced and dropped while delivery
	// stays in memory. A transport whose Local() >= 0 puts the engine in
	// distributed mode: it computes only its own partition's vertices,
	// really exchanges the frames, and synchronizes barriers and emitted
	// values with the other nodes.
	Transport Transport
	// Codec encodes message payloads for the wire records; defaults to
	// BasicCodec. Layers with richer payload vocabularies must install
	// their own codec or cross-partition runs fail with a typed error.
	Codec PayloadCodec
	// SerialMerge runs the communication stage on a single goroutine
	// (the pre-sharding engine behavior). Delivery order, Emit output
	// and every Stats field are identical either way — the flag exists
	// so benchmarks and cross-check tests can compare the serial and
	// sharded message planes.
	SerialMerge bool
	// NoCombine disables Send-time message folding even when the
	// program declares a Combiner. Rows, Emit output and the
	// paper-facing Stats (compare with Stats.Paper) are identical
	// either way — the flag exists so cross-check tests and the
	// `tagbench -exp combine` ablation can measure the fold.
	NoCombine bool
	// AdaptiveCombine samples the observed fold rate at each barrier
	// and drops the combiner for the rest of the run when folds are
	// rare (under adaptiveMinFoldPct% of sends after adaptiveMinSends
	// sends): a program whose destinations rarely collide pays the
	// accumulator plane's hashing without its savings. Fallbacks are
	// counted in Stats.CombineFallbacks. Rows, Emit output and the
	// paper-facing Stats stay identical either way. Off by default.
	AdaptiveCombine bool
	// Profile collects message-plane profiling: the peak resident
	// inbox bytes observed at any barrier (Engine.PeakInboxBytes) and
	// the cumulative wall time of the communication stage
	// (Engine.MergeDuration). Off by default — the peak probe walks
	// the inbox maps once per superstep.
	Profile bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxSupersteps <= 0 {
		o.MaxSupersteps = 100000
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.PartitionOf == nil {
		p := o.Partitions
		o.PartitionOf = func(v VertexID) int { return int(v) % p }
	}
	if o.PayloadSize == nil {
		o.PayloadSize = func(any) int { return 8 }
	}
	if o.Codec == nil {
		o.Codec = BasicCodec{}
	}
	if o.Transport == nil && o.Partitions > 1 {
		o.Transport = Loopback(o.Partitions)
	}
	if o.Transport != nil && o.Transport.Local() >= 0 {
		// Distributed nodes must make identical combine decisions; the
		// adaptive gate samples local fold rates, so it stays off.
		o.AdaptiveCombine = false
	}
	return o
}

// Stats accumulates the paper's cost measures over a run (§2 "Cost
// Measure"): total messages and computation, plus byte-level and
// cross-partition (network) accounting.
type Stats struct {
	Supersteps      int
	Messages        int64 // logical sends — combining never changes this (the paper's M)
	MessageBytes    int64
	NetworkMessages int64 // messages crossing partition boundaries
	NetworkBytes    int64
	ComputeOps      int64
	ActiveVisits    int64 // total vertex activations over all supersteps

	// Combine-plane bookkeeping (zero when no Combiner ran). These are
	// the only fields that may differ between a combined and an
	// uncombined run of the same program — compare Paper() for the
	// rest.
	MessagesCombined int64 // logical sends folded into an existing accumulator
	InboxBytesSaved  int64 // Message-slot bytes the folded sends never occupied
	CombineFallbacks int64 // runs where the adaptive gate dropped a rarely-folding combiner
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Supersteps += other.Supersteps
	s.Messages += other.Messages
	s.MessageBytes += other.MessageBytes
	s.NetworkMessages += other.NetworkMessages
	s.NetworkBytes += other.NetworkBytes
	s.ComputeOps += other.ComputeOps
	s.ActiveVisits += other.ActiveVisits
	s.MessagesCombined += other.MessagesCombined
	s.InboxBytesSaved += other.InboxBytesSaved
	s.CombineFallbacks += other.CombineFallbacks
}

// Sub returns s - other, the delta between two cumulative snapshots
// (e.g. one query's cost out of a session's running totals).
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		Supersteps:       s.Supersteps - other.Supersteps,
		Messages:         s.Messages - other.Messages,
		MessageBytes:     s.MessageBytes - other.MessageBytes,
		NetworkMessages:  s.NetworkMessages - other.NetworkMessages,
		NetworkBytes:     s.NetworkBytes - other.NetworkBytes,
		ComputeOps:       s.ComputeOps - other.ComputeOps,
		ActiveVisits:     s.ActiveVisits - other.ActiveVisits,
		MessagesCombined: s.MessagesCombined - other.MessagesCombined,
		InboxBytesSaved:  s.InboxBytesSaved - other.InboxBytesSaved,
		CombineFallbacks: s.CombineFallbacks - other.CombineFallbacks,
	}
}

// Paper returns the paper-facing cost measures only: the combine-plane
// bookkeeping is zeroed, so a combined run can be compared field by
// field against an uncombined one — everything else must match
// byte-for-byte.
func (s Stats) Paper() Stats {
	s.MessagesCombined = 0
	s.InboxBytesSaved = 0
	s.CombineFallbacks = 0
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("supersteps=%d msgs=%d bytes=%d netMsgs=%d netBytes=%d ops=%d visits=%d combined=%d savedB=%d fallbacks=%d",
		s.Supersteps, s.Messages, s.MessageBytes, s.NetworkMessages, s.NetworkBytes, s.ComputeOps, s.ActiveVisits,
		s.MessagesCombined, s.InboxBytesSaved, s.CombineFallbacks)
}

type outMsg struct {
	from, to VertexID
	payload  any
}

// accKey identifies one fold stream: a destination vertex, the
// combiner-assigned slot, and the sender's partition. Splitting streams
// by source partition is what makes a fold stream shippable — each
// partition's share of a stream is exactly the folded accumulator that
// partition would put on the wire as one record. At Partitions == 1
// src is always 0 and the key degenerates to (to, slot).
type accKey struct {
	to   VertexID
	slot int32
	src  int32
}

// accEntry is one running fold: the first sender (the From of the
// delivered Message), the number of logical sends folded in, and the
// accumulated payload.
type accEntry struct {
	from  VertexID
	count int32
	pay   any
}

// ctxAcc is a worker's per-destination-shard accumulator table: idx
// maps fold streams to entries, keys preserves first-send order (the
// order the shard merge folds and delivers in). All three are reused
// across supersteps. last caches the most recent stream's index —
// aggregator-bound programs send a worker's whole chunk to one
// destination, so the common case skips the map probe.
type ctxAcc struct {
	idx     map[accKey]int32
	keys    []accKey
	entries []accEntry
	last    int32 // index of the stream the previous send folded into; -1 when empty
}

// accBytes approximates the retained footprint of one fold stream
// (key + entry + its share of map buckets) and of one wire record,
// for the end-of-Run pooling budget.
const accBytes = 48

// trim drops the accumulator storage if its retained capacity outgrew
// this shard's share of the pooling budget; a warm small run keeps its
// storage (steady-state Runs stay zero-alloc), a huge run's peak goes
// back to the GC with the frontier that needed it.
func (a *ctxAcc) trim(budget int64) {
	if int64(cap(a.keys))*accBytes > budget {
		a.idx, a.keys, a.entries = nil, nil, nil
	}
}

// mergeShard is one shard of the sharded message plane. During the
// communication stage, worker w owns shard w exclusively: it is the
// only goroutine that touches the shard's inbox maps, key lists, free
// list, dedup set and stats, so the parallel merge needs no locks.
type mergeShard struct {
	// in holds the messages delivered at the last barrier, keyed by
	// destination vertex — the sparse replacement for the dense O(|V|)
	// inbox array. inKeys lists its keys in delivery order. Entries are
	// deleted (and their buffers recycled) once consumed, so resident
	// size tracks the active frontier, not the graph.
	in     map[VertexID][]Message
	inKeys []VertexID
	// next accumulates the messages sent during the current superstep;
	// the planes swap at the barrier.
	next     map[VertexID][]Message
	nextKeys []VertexID
	// free recycles message buffers across supersteps and Runs, so a
	// steady-state superstep allocates ~nothing.
	free [][]Message
	// accIdx/pend/pendKeys fold colliding per-worker accumulators at
	// the barrier (combined plane only): pend holds the surviving
	// accumulator per fold stream in first-seen (worker, send) order,
	// delivered as one Message each. Reused across supersteps.
	accIdx   map[accKey]int32
	pend     []accEntry
	pendKeys []accKey
	// encBuf is the shard's payload-encoding scratch for wire records;
	// pairStream.add copies out of it.
	encBuf []byte
	// err records a codec failure during the merge (an unregistered
	// payload type crossing a partition boundary); surfaced through
	// Engine.RunErr.
	err error
	// stats is this shard's share of the superstep's message
	// accounting; the coordinator folds it into Engine.stats at the
	// barrier.
	stats Stats
}

// msgBytes is the in-memory size of one Message (padded int32 +
// 16-byte interface) used by the footprint accounting.
const msgBytes = 24

// The adaptive combiner gate's sampling thresholds: after
// adaptiveMinSends logical sends in a run, a fold rate under
// adaptiveMinFoldPct percent drops the combiner for the rest of the
// run (Options.AdaptiveCombine).
const (
	adaptiveMinSends   = 1024
	adaptiveMinFoldPct = 10
)

// maxPooledBytes bounds the message buffers a Run leaves pooled per
// engine (split evenly across shards). Within a run the pool is
// unbounded (steady-state supersteps must not allocate); at the end of
// a run anything beyond the budget returns to the GC with the frontier
// that needed it, so a session that just ran a huge query does not
// stay huge while idle.
const maxPooledBytes = 32 << 10

// recycleIn clears the consumed inbox entries of a shard, zeroing
// payload references and returning the buffers to the free list.
func (sh *mergeShard) recycleIn() {
	for _, v := range sh.inKeys {
		buf := sh.in[v]
		for i := range buf {
			buf[i] = Message{}
		}
		sh.free = append(sh.free, buf[:0])
		delete(sh.in, v)
	}
	sh.inKeys = sh.inKeys[:0]
}

// trimFree drops pooled buffers beyond this shard's share of the
// engine's pooling budget.
func (sh *mergeShard) trimFree(budget int64) {
	var total int64
	n := 0
	for _, buf := range sh.free {
		total += int64(cap(buf)) * msgBytes
		if total > budget {
			break
		}
		n++
	}
	for i := n; i < len(sh.free); i++ {
		sh.free[i] = nil
	}
	sh.free = sh.free[:n]
}

// getBuf pops a recycled message buffer; nil means append will allocate
// a fresh one on first use.
func (sh *mergeShard) getBuf() []Message {
	if n := len(sh.free); n > 0 {
		buf := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return buf
	}
	return nil
}

// Engine executes vertex programs over a frozen graph. An Engine may run
// several programs in sequence over the same graph (as TAG-join does for
// its reduction and collection phases); Stats accumulate across runs.
//
// Concurrency contract: an Engine holds per-run mutable state (inboxes,
// stats, aggregators), so a single Engine runs one program at a time.
// Any number of Engines may run concurrently over the same *frozen*
// Graph, each serving one in-flight query — that is how internal/serve's
// session pool shares one TAG encoding across simultaneous queries. The
// graph value an engine runs over must not be thawed while any engine
// on it is running; to maintain a graph that is being served, mutate a
// copy-on-write Clone off to the side and point new engines at the
// clone (the generation scheme in internal/serve).
//
// The message plane is sharded: each worker context keeps one outbox
// per destination shard, and after the compute barrier the same worker
// pool merges them in parallel — worker w is the only writer into
// shard w. Inboxes are sparse maps keyed by active vertex, so an idle
// engine holds O(active) memory, not O(|V|), and contexts, outboxes,
// aggregator maps and message buffers are pooled across supersteps and
// Runs.
type Engine struct {
	g    *Graph
	opts Options

	stats Stats

	shards []mergeShard
	ctxs   []*Context
	active []VertexID

	// comb is the running program's message combiner (nil when the
	// program declares none or Options.NoCombine is set); fixed at the
	// start of each Run, read by worker contexts during it.
	comb Combiner

	aggs   map[string]int64
	emits  []any
	halted bool

	// localPart is the partition this engine owns in a distributed run,
	// -1 when the engine owns every partition (single-process, loopback).
	localPart int
	// wireStreams holds the per-(src, dst) partition-pair wire-record
	// streams of the current superstep, indexed src*Partitions+dst; nil
	// at Partitions == 1. The shard that owns dst is the only writer of
	// (·, dst) during the merge.
	wireStreams []pairStream
	// frames is the per-superstep sealed-frame scratch handed to the
	// Transport.
	frames []Frame
	// emitTags parallels emits with (step, vertex) tags in distributed
	// mode, so the nodes' emit streams can be allgathered back into the
	// exact single-process order.
	emitTags []emitTag
	// baggs is the local aggregator scratch a distributed barrier sends.
	baggs map[string]int64
	// runErr is the first Context.Fail error of the current Run (in a
	// distributed run, the globally agreed first); reset per Run.
	runErr error
	// distErr latches a transport failure: the distributed engine is
	// permanently failed and every subsequent Run refuses immediately.
	distErr error
	// touched lists inboxes that received remote records this superstep
	// and need their delivery order restored (distributed mode only).
	touched []VertexID

	// Profiling (Options.Profile): peak resident inbox bytes observed
	// at any barrier, and cumulative communication-stage wall time.
	peakInbox int64
	mergeNs   int64

	// wg coordinates the compute and merge fan-outs; a field rather
	// than a Run local so steady-state supersteps allocate nothing.
	wg sync.WaitGroup

	// work is the persistent per-Run worker pool: one job channel per
	// worker context, spawned once at the top of Run and shut down at
	// its end, so a superstep dispatches channel sends instead of
	// paying two goroutine spawns per barrier (compute + merge). Nil
	// between Runs and on single-worker engines.
	work []chan job

	// ctx, when non-nil, cancels the run between supersteps: once it is
	// done, Run breaks out of the superstep loop at the next barrier and
	// flows through the normal end-of-Run cleanup, so pooled engine
	// state stays reusable. Set via SetContext by the owning session;
	// read only by Run's goroutine (ctx.Err is itself safe against
	// concurrent cancellation). deadline caches ctx.Deadline so barriers
	// can compare wall clocks instead of trusting the runtime timer that
	// marks the context done (see ctxDone).
	ctx      context.Context
	deadline time.Time
}

// job is one unit dispatched to the persistent worker pool: a compute
// chunk (verts + the worker's context) or, with merge set, the
// communication stage of one shard. Sent by value, so steady-state
// supersteps still allocate nothing.
type job struct {
	verts []VertexID
	ctx   *Context
	shard int
	merge bool
}

// NewEngine prepares an engine over g. Construction is cheap — O(#workers),
// independent of the graph size — so per-generation session pools can
// create engines lazily on the serving path.
func NewEngine(g *Graph, opts Options) *Engine {
	if !g.Frozen() {
		g.Freeze()
	}
	opts = opts.withDefaults()
	e := &Engine{
		g:         g,
		opts:      opts,
		shards:    make([]mergeShard, opts.Workers),
		ctxs:      make([]*Context, opts.Workers),
		aggs:      make(map[string]int64),
		localPart: -1,
	}
	if opts.Transport != nil {
		e.localPart = opts.Transport.Local()
	}
	if opts.Partitions > 1 {
		e.wireStreams = make([]pairStream, opts.Partitions*opts.Partitions)
	}
	for s := range e.shards {
		e.shards[s].in = make(map[VertexID][]Message)
		e.shards[s].next = make(map[VertexID][]Message)
	}
	for w := range e.ctxs {
		e.ctxs[w] = &Context{
			eng:  e,
			out:  make([][]outMsg, opts.Workers),
			acc:  make([]ctxAcc, opts.Workers),
			aggs: make(map[string]int64),
		}
	}
	return e
}

// stream returns the wire-record stream for the ordered partition pair
// (src, dst). Only the merge worker that owns dst's shard writes it.
func (e *Engine) stream(src, dst int) *pairStream {
	return &e.wireStreams[src*e.opts.Partitions+dst]
}

// shardOf maps a destination vertex to the merge shard that owns it.
// Under a partitioned run the shard is derived from the vertex's
// partition, so each partition's inbound wire streams are owned by
// exactly one shard — that keeps the per-(src, dst) record streams
// single-writer without locks. Otherwise vertices are striped over
// shards directly.
func (e *Engine) shardOf(v VertexID) int {
	n := len(e.shards)
	if n == 1 {
		return 0
	}
	if e.opts.Partitions > 1 {
		s := e.opts.PartitionOf(v) % n
		if s < 0 {
			s += n
		}
		return s
	}
	return int(v) % n
}

// inboxOf returns the messages delivered to v at the last barrier.
func (e *Engine) inboxOf(v VertexID) []Message {
	return e.shards[e.shardOf(v)].in[v]
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *Graph { return e.g }

// Stats returns the accumulated cost measures.
func (e *Engine) Stats() Stats { return e.stats }

// ResetStats zeroes the accumulated cost measures.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// AddExternal records communication performed outside a vertex program
// (e.g. the Algorithm B Cartesian combination of component results) in
// the cost measures.
func (e *Engine) AddExternal(msgs, bytes int64) {
	e.stats.Messages += msgs
	e.stats.MessageBytes += bytes
}

// AggInt returns the value of a named integer aggregator accumulated
// during the most recent superstep.
func (e *Engine) AggInt(name string) int64 { return e.aggs[name] }

// Emitted returns values emitted via Context.Emit during the last Run, in
// deterministic (worker-, then vertex-) order. The slice is valid until
// the next Run.
func (e *Engine) Emitted() []any { return e.emits }

// Halt requests termination after the current superstep; usable from a
// MasterProgram.
func (e *Engine) Halt() { e.halted = true }

// SetContext arms (or, with nil, disarms) between-superstep
// cancellation for subsequent Runs: once ctx is done, a run stops at
// the next superstep barrier instead of computing to completion, and
// Run returns through its normal cleanup with the stats accumulated so
// far. The engine never inspects the cause — callers that need to
// distinguish a deadline from an explicit cancel check ctx.Err()
// themselves after Run returns. Call from the goroutine that owns the
// engine, like Run itself.
func (e *Engine) SetContext(ctx context.Context) {
	e.ctx = ctx
	e.deadline = time.Time{}
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			e.deadline = dl
		}
	}
}

// ctxDone reports whether the armed context calls for an abort at a
// barrier. A context's deadline is checked against the wall clock
// directly, not only via ctx.Err(): ctx.Err turns non-nil when a
// runtime timer fires, and on a single-P runtime a compute-bound
// superstep can hold the only P past the whole deadline window —
// finishing a run that should have been cut short. The deadline is a
// wall-clock fact; barriers honor it even when the timer is starved.
func (e *Engine) ctxDone() bool {
	if e.ctx == nil {
		return false
	}
	if e.ctx.Err() != nil {
		return true
	}
	return !e.deadline.IsZero() && time.Now().After(e.deadline)
}

// startWorkers spawns the persistent per-Run worker pool. Each worker
// owns one job channel; compute chunk w and merge shard w are always
// dispatched to worker w, so every Context and mergeShard keeps a
// single-goroutine-at-a-time owner exactly as the spawn-per-barrier
// scheme had.
func (e *Engine) startWorkers(prog Program) {
	e.work = make([]chan job, len(e.ctxs))
	for w := range e.work {
		ch := make(chan job, 1)
		e.work[w] = ch
		go func() {
			for j := range ch {
				if j.merge {
					e.mergeShard(j.shard)
				} else {
					for _, v := range j.verts {
						j.ctx.cur = v
						prog.Compute(j.ctx, v, e.inboxOf(v))
					}
				}
				e.wg.Done()
			}
		}()
	}
}

// stopWorkers shuts the per-Run pool down; all dispatched jobs have
// completed (every stage ends with wg.Wait), so closing the channels
// lets the workers drain and exit.
func (e *Engine) stopWorkers() {
	for _, ch := range e.work {
		close(ch)
	}
	e.work = nil
}

// InboxBytes estimates the resident memory of the sparse message plane:
// live inbox entries plus the pooled buffers kept for reuse. Compare
// with DenseInboxBytes: the dense plane held two O(|V|) slice-header
// arrays per engine before counting a single message.
func (e *Engine) InboxBytes() int64 {
	const entrySize = 40 // map key + slice header, approximate
	var total int64
	for s := range e.shards {
		sh := &e.shards[s]
		total += int64(len(sh.in)+len(sh.next)) * entrySize
		for _, buf := range sh.in {
			total += int64(cap(buf)) * msgBytes
		}
		for _, buf := range sh.next {
			total += int64(cap(buf)) * msgBytes
		}
		for _, buf := range sh.free {
			total += int64(cap(buf)) * msgBytes
		}
	}
	return total
}

// DenseInboxBytes returns what the pre-sharding dense message plane
// held resident for a graph of n vertices: two arrays of O(|V|) slice
// headers per engine, regardless of how many vertices were active.
func DenseInboxBytes(n int) int64 { return int64(n) * 48 }

// PeakInboxBytes returns the largest resident inbox footprint observed
// at any barrier since the engine was created. Requires Options.Profile;
// zero otherwise.
func (e *Engine) PeakInboxBytes() int64 { return e.peakInbox }

// MergeDuration returns the cumulative wall time of the communication
// stage (outbox merge + accumulator folding) since the engine was
// created. Requires Options.Profile; zero otherwise.
func (e *Engine) MergeDuration() time.Duration { return time.Duration(e.mergeNs) }

// Run executes prog starting from the initial active set until no vertex
// is active, the master halts, or MaxSupersteps is reached. It returns the
// stats for this run only (engine totals keep accumulating).
func (e *Engine) Run(prog Program, initial []VertexID) Stats {
	if e.localPart >= 0 {
		return e.runDist(prog, initial)
	}
	before := e.stats
	e.halted = false
	e.runErr = nil
	e.emits = e.emits[:0]

	// The graph may have grown since the engine was created (incremental
	// TAG maintenance adds vertices); the sparse inbox maps absorb new
	// vertex ids with no resizing, so only re-freezing matters here.
	if !e.g.Frozen() {
		e.g.Freeze()
	}

	active := append(e.active[:0], initial...)
	slices.Sort(active)

	e.comb = nil
	if !e.opts.NoCombine {
		if cp, ok := prog.(CombinerProvider); ok {
			e.comb = cp.Combiner()
		}
	}

	master, hasMaster := prog.(MasterProgram)

	// Multi-worker engines run their supersteps through a persistent
	// worker pool spawned once here and kept alive across barriers:
	// tiny supersteps are dominated by fan-out cost, and a channel send
	// to a parked goroutine is far cheaper than spawning one (twice —
	// compute and merge) per superstep.
	if len(e.ctxs) > 1 {
		e.startWorkers(prog)
		defer e.stopWorkers()
	}

	for step := 0; step < e.opts.MaxSupersteps; step++ {
		if hasMaster && !master.BeforeSuperstep(step, e) {
			break
		}
		if len(active) == 0 || e.halted {
			break
		}
		// Cancellation point: breaking here is clean — the previous
		// superstep's merge fully drained every outbox, so the cleanup
		// below leaves the pooled planes consistent for the next Run.
		if e.ctxDone() {
			break
		}
		e.stats.Supersteps++
		e.stats.ActiveVisits += int64(len(active))

		// Aggregator values from superstep S are visible during S+1 and at
		// the following barrier; clear them only now that the previous
		// barrier (and master hook) has consumed them.
		clear(e.aggs)

		// Computation stage: shard active vertices over the pooled worker
		// contexts.
		workers := len(e.ctxs)
		if workers > len(active) {
			workers = len(active)
		}
		chunk := (len(active) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := min(w*chunk, len(active))
			hi := min(lo+chunk, len(active))
			ctx := e.ctxs[w]
			ctx.step = step
			if workers == 1 {
				for _, v := range active {
					ctx.cur = v
					prog.Compute(ctx, v, e.inboxOf(v))
				}
				break
			}
			e.wg.Add(1)
			e.work[w] <- job{verts: active[lo:hi], ctx: ctx}
		}
		e.wg.Wait()

		// Communication stage: the same worker pool merges the sharded
		// outboxes, worker w writing only shard w. Delivery into any one
		// vertex's inbox happens in (worker, send) order — exactly the
		// serial merge's order — so the stage is deterministic no matter
		// how many goroutines run it.
		var mergeStart time.Time
		if e.opts.Profile {
			mergeStart = time.Now()
		}
		if e.opts.SerialMerge || len(e.shards) == 1 {
			for s := range e.shards {
				e.mergeShard(s)
			}
		} else {
			for s := range e.shards {
				e.wg.Add(1)
				e.work[s] <- job{shard: s, merge: true}
			}
			e.wg.Wait()
		}
		if e.opts.Profile {
			e.mergeNs += time.Since(mergeStart).Nanoseconds()
			if b := e.InboxBytes(); b > e.peakInbox {
				e.peakInbox = b
			}
		}

		// Seal this superstep's pair streams into frames, price them and
		// hand them to the Transport — the loopback simulation and the
		// real wire share this one accounting path.
		if e.opts.Partitions > 1 {
			e.sealAndExchange(step)
		}

		// Barrier: fold per-shard accounting, swap the message planes,
		// and collect the next active set.
		active = active[:0]
		for s := range e.shards {
			sh := &e.shards[s]
			e.stats.Add(sh.stats)
			sh.stats = Stats{}
			if sh.err != nil {
				if e.runErr == nil {
					e.runErr = sh.err
				}
				sh.err = nil
			}
			sh.in, sh.next = sh.next, sh.in
			sh.inKeys, sh.nextKeys = sh.nextKeys, sh.inKeys
			active = append(active, sh.inKeys...)
		}
		// Per-worker outputs, in deterministic worker order.
		for _, ctx := range e.ctxs {
			for k, v := range ctx.aggs {
				e.aggs[k] += v
			}
			clear(ctx.aggs)
			e.emits = append(e.emits, ctx.emits...)
			for i := range ctx.emits {
				ctx.emits[i] = nil
			}
			ctx.emits = ctx.emits[:0]
			e.stats.ComputeOps += ctx.ops
			ctx.ops = 0
			if ctx.failErr != nil {
				if e.runErr == nil {
					e.runErr = ctx.failErr
				}
				ctx.failErr = nil
			}
			// Send-time accounting of combined sends (uncombined sends
			// are accounted by the shard merge).
			e.stats.Add(ctx.stats)
			ctx.stats = Stats{}
		}
		slices.Sort(active)
		if e.runErr != nil {
			break
		}

		// Adaptive combiner gate: with enough sends observed this run and
		// almost none of them folding, the accumulator plane is pure
		// overhead — drop to the plain outbox for the rest of the run.
		// Safe exactly here: the barrier has drained every pending
		// accumulator into the inboxes, and no worker reads e.comb until
		// the next compute stage.
		if e.comb != nil && e.opts.AdaptiveCombine {
			run := e.stats.Sub(before)
			if run.Messages >= adaptiveMinSends &&
				run.MessagesCombined*100 < run.Messages*adaptiveMinFoldPct {
				e.comb = nil
				e.stats.CombineFallbacks++
			}
		}
	}

	// Drop any undelivered messages so the next Run starts clean; their
	// buffers go back to the free lists (bounded, so a huge run's peak
	// frontier is not kept resident by an idle session). The combiner's
	// fold tables, wire records and pending lists obey the same budget:
	// a warm steady-state run keeps them, a huge run's peak does not
	// stay resident.
	budget := int64(maxPooledBytes / len(e.shards))
	for s := range e.shards {
		sh := &e.shards[s]
		sh.recycleIn()
		sh.trimFree(budget)
		if int64(cap(sh.pendKeys))*accBytes > budget {
			sh.accIdx, sh.pend, sh.pendKeys = nil, nil, nil
		}
	}
	for _, ctx := range e.ctxs {
		for s := range ctx.acc {
			ctx.acc[s].trim(budget)
		}
	}
	for i := range e.wireStreams {
		ps := &e.wireStreams[i]
		if int64(cap(ps.recs))*accBytes > budget {
			ps.recs = nil
		}
	}
	e.active = active

	return e.stats.Sub(before)
}

// RunErr reports the first failure of the most recent Run: a
// Context.Fail from a vertex program, a codec error on a
// cross-partition payload — or, sticky across Runs, a transport
// failure that has permanently degraded a distributed engine.
func (e *Engine) RunErr() error {
	if e.distErr != nil {
		return e.distErr
	}
	return e.runErr
}

// DistErr reports the sticky transport failure that has permanently
// degraded this distributed engine, or nil while the transport is
// healthy. A program failure (Context.Fail, codec error) never sets
// it — those engines stay usable for the next Run. Orchestration
// layers use it to tell "this query failed" from "this node can no
// longer participate in the topology".
func (e *Engine) DistErr() error { return e.distErr }

// sealAndExchange seals every ordered partition pair's stream of the
// superstep into one frame (empty streams included — the
// synchronization frame crosses the wire every superstep), prices the
// sealed bytes into the network accounting, and hands the frames to
// the Transport. Loopback drops them: delivery already happened
// in-process; the frames existed to be priced. Runs on the Run
// goroutine, after the merge barrier.
func (e *Engine) sealAndExchange(step int) {
	p := e.opts.Partitions
	e.frames = e.frames[:0]
	for src := 0; src < p; src++ {
		for dst := 0; dst < p; dst++ {
			if src == dst {
				continue
			}
			ps := e.stream(src, dst)
			payload := sealRecords(step, ps.recs)
			e.stats.NetworkMessages += int64(len(ps.recs))
			e.stats.NetworkBytes += int64(frameHeaderBytes + len(payload))
			e.frames = append(e.frames, Frame{Src: src, Dst: dst, Payload: payload})
			ps.reset()
		}
	}
	if _, err := e.opts.Transport.Exchange(step, e.frames); err != nil && e.runErr == nil {
		e.runErr = err
	}
}

// mergeShard runs the communication stage for one shard: recycle the
// inbox entries this shard's vertices consumed during the superstep,
// then deliver every worker's outbox slice for this shard, in worker
// order. At Partitions > 1 every cross-partition send is also encoded
// into its (src, dst) pair stream — consecutive identical payloads from
// one sender dedup into a single record that fans out on the receiving
// side, as BSP engines' per-machine message combiners do: the payload
// crosses the interconnect once.
func (e *Engine) mergeShard(s int) {
	sh := &e.shards[s]
	sh.recycleIn()
	partitions := e.opts.Partitions
	local := e.localPart
	for _, ctx := range e.ctxs {
		msgs := ctx.out[s]
		for i := range msgs {
			m := &msgs[i]
			sh.stats.Messages++
			sh.stats.MessageBytes += int64(e.opts.PayloadSize(m.payload))
			deliver := true
			if partitions > 1 {
				srcP, dstP := e.opts.PartitionOf(m.from), e.opts.PartitionOf(m.to)
				if srcP != dstP {
					enc, err := e.opts.Codec.Append(sh.encBuf[:0], m.payload)
					if err != nil {
						if sh.err == nil {
							sh.err = err
						}
					} else {
						sh.encBuf = enc
						e.stream(srcP, dstP).add(m.from, -1, enc, m.to, 1)
					}
				}
				// A distributed node delivers only its own partition's
				// messages locally; the rest exist as wire records.
				deliver = local < 0 || dstP == local
			}
			if deliver {
				buf, ok := sh.next[m.to]
				if !ok {
					buf = sh.getBuf()
					sh.nextKeys = append(sh.nextKeys, m.to)
				}
				sh.next[m.to] = append(buf, Message{From: m.from, Count: 1, Payload: m.payload})
			}
			msgs[i] = outMsg{} // release payload references held by the outbox
		}
		ctx.out[s] = msgs[:0]
	}
	if e.comb != nil {
		e.foldAccs(s, sh)
		if local >= 0 {
			// Distributed: the exchange stage records, ships and merges
			// remote accumulators before flushPend delivers.
			return
		}
		if partitions > 1 {
			e.recordPend(sh)
		}
		e.flushPend(sh)
	}
}

// foldAccs is the first half of the combined plane's communication
// stage: fold the workers' per-(destination, slot, source partition)
// accumulators into the shard's pending table — colliding streams merge
// in worker order, exactly the order the uncombined plane would have
// delivered in.
func (e *Engine) foldAccs(s int, sh *mergeShard) {
	for _, ctx := range e.ctxs {
		a := &ctx.acc[s]
		for i := range a.keys {
			k := a.keys[i]
			entry := &a.entries[i]
			if j, ok := sh.accIdx[k]; ok {
				tgt := &sh.pend[j]
				tgt.pay = e.comb.Merge(tgt.pay, entry.pay)
				tgt.count += entry.count
				sh.stats.MessagesCombined++
				sh.stats.InboxBytesSaved += msgBytes
			} else {
				if sh.accIdx == nil {
					sh.accIdx = make(map[accKey]int32)
				}
				sh.accIdx[k] = int32(len(sh.pend))
				sh.pend = append(sh.pend, *entry)
				sh.pendKeys = append(sh.pendKeys, k)
			}
			*entry = accEntry{} // release payload references
		}
		a.keys = a.keys[:0]
		a.entries = a.entries[:0]
		a.last = -1
		if len(a.idx) > 0 {
			clear(a.idx)
		}
	}
}

// recordPend runs between fold and flush on a loopback (single-process,
// Partitions > 1) engine: every cross-partition fold stream is encoded
// into its (src, dst) pair stream — one record carrying the folded
// accumulator, exactly what a real node ships — and then streams for
// the same (destination, slot) from different source partitions are
// re-merged so delivery matches the single-partition engine. The same
// Merge calls happen on a real receiving node when remote records
// arrive, so the fold trees agree.
func (e *Engine) recordPend(sh *mergeShard) {
	for i := range sh.pend {
		k := sh.pendKeys[i]
		dstP := e.opts.PartitionOf(k.to)
		if int(k.src) == dstP {
			continue
		}
		p := &sh.pend[i]
		enc, err := e.opts.Codec.Append(sh.encBuf[:0], p.pay)
		if err != nil {
			if sh.err == nil {
				sh.err = err
			}
			continue
		}
		sh.encBuf = enc
		e.stream(int(k.src), dstP).add(p.from, k.slot, enc, k.to, p.count)
	}
	// Re-merge streams split by source partition: keep the first-seen
	// entry per (destination, slot), Merge later ones in, preserving
	// first-seen order — the per-(to, slot) fold count comes out the
	// same as the single-partition engine's.
	if len(sh.accIdx) > 0 {
		clear(sh.accIdx)
	}
	out := 0
	for i := range sh.pend {
		k := sh.pendKeys[i]
		k.src = -1
		if j, ok := sh.accIdx[k]; ok {
			tgt := &sh.pend[j]
			tgt.pay = e.comb.Merge(tgt.pay, sh.pend[i].pay)
			tgt.count += sh.pend[i].count
			if sh.pend[i].from < tgt.from {
				tgt.from = sh.pend[i].from
			}
			sh.stats.MessagesCombined++
			sh.stats.InboxBytesSaved += msgBytes
			sh.pend[i] = accEntry{}
			continue
		}
		if sh.accIdx == nil {
			sh.accIdx = make(map[accKey]int32)
		}
		sh.accIdx[k] = int32(out)
		if out != i {
			sh.pend[out] = sh.pend[i]
			sh.pend[i] = accEntry{}
		}
		sh.pendKeys[out] = k
		out++
	}
	sh.pend = sh.pend[:out]
	sh.pendKeys = sh.pendKeys[:out]
}

// flushPend delivers the surviving fold streams, one Message each, in
// first-seen order. Combined messages land after any plain (slot < 0)
// messages for the same destination.
func (e *Engine) flushPend(sh *mergeShard) {
	for i := range sh.pend {
		p := &sh.pend[i]
		k := sh.pendKeys[i]
		buf, ok := sh.next[k.to]
		if !ok {
			buf = sh.getBuf()
			sh.nextKeys = append(sh.nextKeys, k.to)
		}
		sh.next[k.to] = append(buf, Message{From: p.from, Count: p.count, Payload: p.pay})
		*p = accEntry{}
	}
	sh.pend = sh.pend[:0]
	sh.pendKeys = sh.pendKeys[:0]
	if len(sh.accIdx) > 0 {
		clear(sh.accIdx)
	}
}

// Context is the per-worker view handed to Compute. All methods are safe
// for the single goroutine that owns the context.
type Context struct {
	eng   *Engine
	step  int
	cur   VertexID   // vertex currently computing (set by the dispatch loops)
	out   [][]outMsg // one outbox per destination merge shard
	acc   []ctxAcc   // one fold table per destination merge shard (combined plane)
	stats Stats      // send-time accounting of combined sends
	aggs  map[string]int64
	emits []any
	// tagEmits/emitTags record (step, vertex) per emit so a distributed
	// run can allgather the nodes' emit streams back into the exact
	// single-process order. Off outside distributed runs.
	tagEmits bool
	emitTags []emitTag
	// failErr is the first Context.Fail of the run on this worker.
	failErr error
	ops     int64
}

// Graph returns the graph being computed over.
func (c *Context) Graph() *Graph { return c.eng.g }

// Step returns the current superstep number (counting from 0).
func (c *Context) Step() int { return c.step }

// Send queues a message for delivery at the next superstep. Vertices may
// message any vertex whose id they know (§2). The message lands in the
// outbox of the shard that owns the destination, so the post-barrier
// merge can run shard-parallel without locks.
//
// When the running program declares a Combiner, the payload folds into
// this worker's per-(shard, destination, slot) accumulator instead of
// occupying an outbox slot: a worker emits at most one combined message
// per fold stream per superstep. The paper-facing cost measures still
// count the logical send (the message "happened"; the engine just never
// materializes it).
func (c *Context) Send(from, to VertexID, payload any) {
	s := c.eng.shardOf(to)
	if comb := c.eng.comb; comb != nil {
		if slot := comb.Slot(payload); slot >= 0 {
			c.sendCombined(comb, s, slot, from, to, payload)
			return
		}
	}
	c.out[s] = append(c.out[s], outMsg{from: from, to: to, payload: payload})
}

// sendCombined folds one logical send into the worker-local accumulator
// of its (shard, destination, slot) stream, accounting the send as if it
// had been materialized.
func (c *Context) sendCombined(comb Combiner, s, slot int, from, to VertexID, payload any) {
	opts := &c.eng.opts
	c.stats.Messages++
	c.stats.MessageBytes += int64(opts.PayloadSize(payload))
	// Fold streams split by the sender's partition: each partition's
	// share of a stream is exactly the folded accumulator it would ship
	// as one wire record, so the accounting (and the distributed
	// exchange) falls out of the keying. At Partitions == 1 src stays 0.
	var src int32
	if opts.Partitions > 1 {
		src = int32(opts.PartitionOf(from))
	}
	a := &c.acc[s]
	k := accKey{to: to, slot: int32(slot), src: src}
	i := a.last
	if i < 0 || int(i) >= len(a.keys) || a.keys[i] != k {
		var ok bool
		if i, ok = a.idx[k]; !ok {
			if a.idx == nil {
				a.idx = make(map[accKey]int32)
			}
			i = int32(len(a.entries))
			a.idx[k] = i
			a.keys = append(a.keys, k)
			a.entries = append(a.entries, accEntry{from: from, count: 1, pay: comb.Fold(nil, from, payload)})
			a.last = i
			return
		}
	}
	a.last = i
	entry := &a.entries[i]
	entry.pay = comb.Fold(entry.pay, from, payload)
	entry.count++
	c.stats.MessagesCombined++
	c.stats.InboxBytesSaved += msgBytes
}

// SendAlong sends payload along every out-edge of v carrying label and
// returns the number of messages sent.
func (c *Context) SendAlong(v VertexID, label LabelID, payload any) int {
	edges := c.eng.g.EdgesWithLabel(v, label)
	for _, e := range edges {
		c.Send(v, e.To, payload)
	}
	return len(edges)
}

// AddInt accumulates into a named global integer aggregator; the merged
// value is readable by the master (Engine.AggInt) at the next barrier.
func (c *Context) AddInt(name string, delta int64) {
	c.aggs[name] += delta
}

// Emit contributes a value to the run's distributed output.
func (c *Context) Emit(v any) {
	c.emits = append(c.emits, v)
	if c.tagEmits {
		c.emitTags = append(c.emitTags, emitTag{step: int32(c.step), v: c.cur})
	}
}

// Fail aborts the run with err: the engine stops at the next barrier
// and Engine.RunErr reports the first failure (in worker order; in a
// distributed run, the globally agreed first). Compute keeps being
// called for the remainder of the current superstep — programs should
// return early once they have failed.
func (c *Context) Fail(err error) {
	if c.failErr == nil && err != nil {
		c.failErr = err
	}
}

// AddOps records n units of per-vertex computation for the cost measures.
func (c *Context) AddOps(n int) { c.ops += int64(n) }
