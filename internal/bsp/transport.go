package bsp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the engine's communication seam. At Partitions > 1 the
// post-barrier shard merge no longer just counts cross-partition sends:
// it builds the actual wire records — already combined (one folded
// accumulator per fold stream) and already deduped (identical
// consecutive payloads from one sender fan out through a dest list
// instead of repeating) — seals them into one frame per ordered
// partition pair per superstep, accounts NetworkBytes/NetworkMessages
// from the sealed bytes, and hands the frames to a pluggable Transport.
//
// Two transports exist: Loopback (the single-process cluster
// simulation — frames are costed and dropped, delivery stays
// in-process) and internal/dist's TCP transport (frames are written to
// sockets verbatim). Because both run the same build/seal/count path,
// the simulated Stats.NetworkBytes and the measured bytes-on-wire are
// equal by construction, not by calibration.

// PayloadCodec encodes message payloads for the wire. The engine
// encodes every cross-partition payload (sim and real alike — the
// simulation prices the bytes a real wire would carry), so a codec must
// cover every payload type the running programs send, and every emitted
// type when the run is distributed. Append serializes pay onto dst;
// Decode reverses it, consuming the whole input.
type PayloadCodec interface {
	Append(dst []byte, pay any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// BasicCodec handles the engine's primitive payload vocabulary: nil,
// bool, int, int32, int64, float64, string, VertexID and []VertexID.
// It is the Options.Codec default; layers with richer payload types
// (internal/core) install their own registry on top.
type BasicCodec struct{}

const (
	bcNil = iota
	bcFalse
	bcTrue
	bcInt
	bcInt32
	bcInt64
	bcFloat64
	bcString
	bcVertex
	bcVertexSlice
)

// Append implements PayloadCodec.
func (BasicCodec) Append(dst []byte, pay any) ([]byte, error) {
	switch p := pay.(type) {
	case nil:
		return append(dst, bcNil), nil
	case bool:
		if p {
			return append(dst, bcTrue), nil
		}
		return append(dst, bcFalse), nil
	case int:
		return binary.AppendVarint(append(dst, bcInt), int64(p)), nil
	case int32:
		return binary.AppendVarint(append(dst, bcInt32), int64(p)), nil
	case int64:
		return binary.AppendVarint(append(dst, bcInt64), p), nil
	case float64:
		return binary.LittleEndian.AppendUint64(append(dst, bcFloat64), math.Float64bits(p)), nil
	case string:
		dst = binary.AppendUvarint(append(dst, bcString), uint64(len(p)))
		return append(dst, p...), nil
	case VertexID:
		return binary.AppendVarint(append(dst, bcVertex), int64(p)), nil
	case []VertexID:
		dst = binary.AppendUvarint(append(dst, bcVertexSlice), uint64(len(p)))
		for _, v := range p {
			dst = binary.AppendVarint(dst, int64(v))
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("bsp: BasicCodec cannot encode %T", pay)
	}
}

// Decode implements PayloadCodec.
func (BasicCodec) Decode(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("bsp: empty payload")
	}
	tag, rest := data[0], data[1:]
	switch tag {
	case bcNil:
		return nil, nil
	case bcFalse:
		return false, nil
	case bcTrue:
		return true, nil
	case bcInt:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("bsp: bad int payload")
		}
		return int(v), nil
	case bcInt32:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("bsp: bad int32 payload")
		}
		return int32(v), nil
	case bcInt64:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("bsp: bad int64 payload")
		}
		return v, nil
	case bcFloat64:
		if len(rest) < 8 {
			return nil, fmt.Errorf("bsp: bad float64 payload")
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(rest)), nil
	case bcString:
		n, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < n {
			return nil, fmt.Errorf("bsp: bad string payload")
		}
		return string(rest[k : k+int(n)]), nil
	case bcVertex:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("bsp: bad vertex payload")
		}
		return VertexID(v), nil
	case bcVertexSlice:
		n, k := binary.Uvarint(rest)
		if k <= 0 || n > uint64(len(rest)) {
			return nil, fmt.Errorf("bsp: bad vertex slice payload")
		}
		rest = rest[k:]
		out := make([]VertexID, 0, n)
		for i := uint64(0); i < n; i++ {
			v, m := binary.Varint(rest)
			if m <= 0 {
				return nil, fmt.Errorf("bsp: bad vertex slice payload")
			}
			out = append(out, VertexID(v))
			rest = rest[m:]
		}
		return out, nil
	default:
		return nil, fmt.Errorf("bsp: unknown payload tag %d", tag)
	}
}

// Frame is one sealed block of wire records: everything partition Src
// sends partition Dst for one superstep, as a codec-framable payload
// (the 8-byte length+CRC header of internal/codec is added by the
// transport that actually writes it; the engine's byte accounting
// includes it either way).
type Frame struct {
	Src, Dst int
	Payload  []byte
}

// frameHeaderBytes is the length-prefix + CRC header internal/codec
// puts in front of every frame on a real connection. The simulated
// accounting charges it too, so loopback numbers match the wire.
const frameHeaderBytes = 8

// BarrierFrame is the per-superstep control exchange of a distributed
// run. Each node contributes its local view; the transport returns the
// global reduction (sums for Active/Aggs/Stats, OR for Abort, first
// non-empty Fail in partition order). Supersteps and ActiveVisits are
// excluded from the Stats sum — every node tracks those identically on
// its own.
type BarrierFrame struct {
	Step   int
	Active int64
	Abort  bool
	Fail   string
	Aggs   map[string]int64
	Stats  Stats
}

// Transport carries a partitioned run's cross-partition traffic. The
// engine hands it sealed frames after every superstep's shard merge and
// — when Local() >= 0, i.e. the engine owns just one partition of a
// multi-process run — synchronizes barriers and gathers emitted values
// through it. All methods are called from the engine's Run goroutine.
type Transport interface {
	// Parts returns the partition count (== Options.Partitions).
	Parts() int
	// Local returns the partition this engine owns, or -1 when the
	// engine owns all partitions in-process (loopback simulation).
	Local() int
	// StartRun synchronizes the start of one Engine.Run across nodes.
	StartRun() error
	// Exchange delivers out (this node's sealed frames, one per remote
	// partition, empty frames included) and returns the frames the
	// remote partitions sealed for this node. Loopback receives every
	// ordered pair's frame and returns nothing: in-process delivery
	// already happened, the frames exist to be priced.
	Exchange(step int, out []Frame) ([]Frame, error)
	// Barrier reduces the nodes' local barrier frames to the global one.
	Barrier(bf BarrierFrame) (BarrierFrame, error)
	// FinishRun ends one Engine.Run, allgathering every node's encoded
	// emit stream (in partition order) so each node can reconstruct the
	// global emit order.
	FinishRun(emits []byte) ([][]byte, error)
}

// ReduceBarrier folds the nodes' local barrier frames (in partition
// order) into the global frame every node applies: Active, Aggs and
// Stats sum, Abort ORs, Fail keeps the first non-empty failure. Both
// the in-memory test transport and internal/dist's coordinator use
// this one reduction, so "globally agreed" means the same thing on
// every implementation.
func ReduceBarrier(bfs []BarrierFrame) BarrierFrame {
	gb := BarrierFrame{Aggs: make(map[string]int64)}
	for i, bf := range bfs {
		if i == 0 {
			gb.Step = bf.Step
		}
		gb.Active += bf.Active
		gb.Abort = gb.Abort || bf.Abort
		if gb.Fail == "" {
			gb.Fail = bf.Fail
		}
		for k, v := range bf.Aggs {
			gb.Aggs[k] += v
		}
		gb.Stats.Add(bf.Stats)
	}
	return gb
}

// Loopback is the in-process Transport: the cluster simulation of §8.6
// rebased on the same seam the real wire uses. Delivery stays in
// memory; the sealed frames are priced by the engine's shared
// accounting path and dropped here.
func Loopback(parts int) Transport { return loopback{parts: parts} }

type loopback struct{ parts int }

func (l loopback) Parts() int                                  { return l.parts }
func (loopback) Local() int                                    { return -1 }
func (loopback) StartRun() error                               { return nil }
func (loopback) Exchange(int, []Frame) ([]Frame, error)        { return nil, nil }
func (loopback) Barrier(bf BarrierFrame) (BarrierFrame, error) { return bf, nil }
func (loopback) FinishRun(emits []byte) ([][]byte, error)      { return [][]byte{emits}, nil }

// destRef is one fan-out target of a wire record: a destination vertex
// and the number of logical deliveries it receives (a sender that sends
// the same payload to the same vertex twice in a row crosses the wire
// once with count 2).
type destRef struct {
	to    VertexID
	count int32
}

// wireRecord is one deduped unit of cross-partition traffic: a sender,
// a combiner slot (-1 for plain messages), an encoded payload — the
// folded accumulator for combined streams — and the destination
// vertices it fans out to on the receiving partition.
type wireRecord struct {
	from  VertexID
	slot  int32
	enc   []byte
	dests []destRef
}

// pairStream accumulates one (src partition → dst partition) stream of
// wire records for the current superstep. Records are appended in the
// deterministic (worker, send) order of the sending partition — plain
// records during the shard merge, combined records at accumulator
// flush — so the stream a simulated partition builds is byte-for-byte
// the stream the same partition would build as a real node.
type pairStream struct {
	recs []wireRecord
}

// add appends one send to the stream, merging into the previous record
// when sender, slot and encoded payload all match — the run-length
// dedup that turns a fan-out (one payload, many destinations) into one
// record with a dest list. Only the immediately preceding record is a
// merge candidate, so delivery order on the receiving side is
// preserved exactly.
func (ps *pairStream) add(from VertexID, slot int32, enc []byte, to VertexID, count int32) {
	if n := len(ps.recs); n > 0 {
		last := &ps.recs[n-1]
		if last.from == from && last.slot == slot && string(last.enc) == string(enc) {
			if m := len(last.dests); m > 0 && last.dests[m-1].to == to {
				last.dests[m-1].count += count
			} else {
				last.dests = append(last.dests, destRef{to: to, count: count})
			}
			return
		}
	}
	ps.recs = append(ps.recs, wireRecord{
		from:  from,
		slot:  slot,
		enc:   append([]byte(nil), enc...),
		dests: []destRef{{to: to, count: count}},
	})
}

func (ps *pairStream) reset() { ps.recs = ps.recs[:0] }

// frameKindRecords tags a sealed superstep frame; hostile or corrupt
// frames with any other leading byte are refused by decodeRecords.
const frameKindRecords = 0x52 // 'R'

// sealRecords serializes one pair stream into a frame payload:
// kind byte, superstep, record count, then each record as
// (from, slot+1, payload length, payload, dest count, dests). An empty
// stream still seals to a (tiny) frame — synchronization frames cross
// the wire every superstep, so the accounting prices them every
// superstep.
func sealRecords(step int, recs []wireRecord) []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, frameKindRecords)
	buf = binary.AppendUvarint(buf, uint64(step))
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for i := range recs {
		r := &recs[i]
		buf = binary.AppendUvarint(buf, uint64(r.from))
		buf = binary.AppendUvarint(buf, uint64(r.slot+1))
		buf = binary.AppendUvarint(buf, uint64(len(r.enc)))
		buf = append(buf, r.enc...)
		buf = binary.AppendUvarint(buf, uint64(len(r.dests)))
		for _, d := range r.dests {
			buf = binary.AppendUvarint(buf, uint64(d.to))
			buf = binary.AppendUvarint(buf, uint64(d.count))
		}
	}
	return buf
}

// FrameRecordCount returns the number of wire records a sealed frame
// payload carries, or -1 when the payload is not a records frame. A
// transport uses it to account shipped records (the Stats.
// NetworkMessages unit) without decoding payloads it only relays.
func FrameRecordCount(payload []byte) int64 {
	if len(payload) == 0 || payload[0] != frameKindRecords {
		return -1
	}
	rest := payload[1:]
	_, n := binary.Uvarint(rest) // step
	if n <= 0 {
		return -1
	}
	nrec, k := binary.Uvarint(rest[n:])
	if k <= 0 {
		return -1
	}
	return int64(nrec)
}

// decodeRecords parses a sealed frame payload, invoking fn once per
// (record, destination). The payload is decoded once per record and
// shared across its fan-out, mirroring how an in-process fan-out
// shares one payload value.
func decodeRecords(payload []byte, wantStep int, codec PayloadCodec,
	fn func(from VertexID, slot int32, pay any, to VertexID, count int32) error) error {
	if len(payload) == 0 || payload[0] != frameKindRecords {
		return fmt.Errorf("bsp: not a records frame")
	}
	rest := payload[1:]
	step, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("bsp: bad records frame step")
	}
	rest = rest[n:]
	if wantStep >= 0 && step != uint64(wantStep) {
		return fmt.Errorf("bsp: records frame for step %d, want %d", step, wantStep)
	}
	nrec, n := binary.Uvarint(rest)
	if n <= 0 || nrec > uint64(len(payload)) {
		return fmt.Errorf("bsp: bad records frame count")
	}
	rest = rest[n:]
	for i := uint64(0); i < nrec; i++ {
		from, slot, encLen := uint64(0), uint64(0), uint64(0)
		if from, n = binary.Uvarint(rest); n <= 0 {
			return fmt.Errorf("bsp: bad record sender")
		}
		rest = rest[n:]
		if slot, n = binary.Uvarint(rest); n <= 0 {
			return fmt.Errorf("bsp: bad record slot")
		}
		rest = rest[n:]
		if encLen, n = binary.Uvarint(rest); n <= 0 || encLen > uint64(len(rest)-n) {
			return fmt.Errorf("bsp: bad record payload length")
		}
		rest = rest[n:]
		pay, err := codec.Decode(rest[:encLen])
		if err != nil {
			return err
		}
		rest = rest[encLen:]
		ndest, n := binary.Uvarint(rest)
		if n <= 0 || ndest == 0 || ndest > uint64(len(rest)) {
			return fmt.Errorf("bsp: bad record dest count")
		}
		rest = rest[n:]
		for j := uint64(0); j < ndest; j++ {
			to, n := binary.Uvarint(rest)
			if n <= 0 {
				return fmt.Errorf("bsp: bad record dest")
			}
			rest = rest[n:]
			count, n := binary.Uvarint(rest)
			if n <= 0 || count == 0 || count > math.MaxInt32 {
				return fmt.Errorf("bsp: bad record dest count")
			}
			rest = rest[n:]
			if err := fn(VertexID(from), int32(slot)-1, pay, VertexID(to), int32(count)); err != nil {
				return err
			}
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("bsp: %d trailing bytes in records frame", len(rest))
	}
	return nil
}

// emitTag locates one emitted value in the global emit order: the
// superstep and vertex that emitted it. Values with equal tags came
// from one vertex's single Compute call and keep their relative order,
// so a stable sort of the allgathered stream by (step, vertex)
// reproduces the exact single-process emit order.
type emitTag struct {
	step int32
	v    VertexID
}

// appendEmits serializes a node's tagged emit stream for FinishRun.
func appendEmits(dst []byte, tags []emitTag, emits []any, codec PayloadCodec) ([]byte, error) {
	if len(tags) != len(emits) {
		return nil, fmt.Errorf("bsp: emit tag/value count mismatch (%d vs %d)", len(tags), len(emits))
	}
	dst = binary.AppendUvarint(dst, uint64(len(emits)))
	for i, e := range emits {
		dst = binary.AppendUvarint(dst, uint64(tags[i].step))
		dst = binary.AppendUvarint(dst, uint64(tags[i].v))
		enc, err := codec.Append(nil, e)
		if err != nil {
			return nil, fmt.Errorf("bsp: encoding emitted %T: %w", e, err)
		}
		dst = binary.AppendUvarint(dst, uint64(len(enc)))
		dst = append(dst, enc...)
	}
	return dst, nil
}

// decodeEmits parses one node's emit stream, appending to tags/emits.
func decodeEmits(data []byte, tags []emitTag, emits []any, codec PayloadCodec) ([]emitTag, []any, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, nil, fmt.Errorf("bsp: bad emit stream")
	}
	data = data[k:]
	for i := uint64(0); i < n; i++ {
		step, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, nil, fmt.Errorf("bsp: bad emit step")
		}
		data = data[k:]
		v, k := binary.Uvarint(data)
		if k <= 0 {
			return nil, nil, fmt.Errorf("bsp: bad emit vertex")
		}
		data = data[k:]
		encLen, k := binary.Uvarint(data)
		if k <= 0 || encLen > uint64(len(data)-k) {
			return nil, nil, fmt.Errorf("bsp: bad emit payload length")
		}
		data = data[k:]
		pay, err := codec.Decode(data[:encLen])
		if err != nil {
			return nil, nil, err
		}
		data = data[encLen:]
		tags = append(tags, emitTag{step: int32(step), v: VertexID(v)})
		emits = append(emits, pay)
	}
	if len(data) != 0 {
		return nil, nil, fmt.Errorf("bsp: %d trailing bytes in emit stream", len(data))
	}
	return tags, emits, nil
}
