package bsp

import (
	"fmt"
	"sort"
)

// VertexID indexes a vertex in a Graph.
type VertexID int32

// Edge is a directed, labeled edge. Undirected relationships (like TAG
// edges, footnote 3 of the paper) are modeled as two directed edges.
type Edge struct {
	Label LabelID
	To    VertexID
}

// vertex is the engine-internal vertex record.
type vertex struct {
	label LabelID
	data  any
	edges []Edge // sorted by (Label, To) after Freeze
	// labelIndex[i] is the start of the i-th distinct label run in edges;
	// built by Freeze for O(log L) per-label slicing.
	labelStart []int32
	labelIDs   []LabelID
}

// Graph is a labeled directed multigraph with per-vertex payloads.
// Build with AddVertex/AddEdge, then call Freeze before running programs.
// Once frozen, the structure is immutable and safe for any number of
// concurrent readers (engines); Thaw/mutate/Freeze cycles require
// exclusive access — no engine may be running on *this* graph value
// during maintenance. Clone produces a copy-on-write snapshot that may
// be thawed and mutated while readers keep using the original, which is
// how the serving layer builds its next graph generation off to the
// side.
type Graph struct {
	Symbols  *SymbolTable
	vertices []vertex
	frozen   bool
	numEdges int

	// Copy-on-write state. A graph returned by Clone shares the edge
	// slices of vertices below cowLimit with its parent until they are
	// first mutated; owned records which of those have been privatized.
	cowLimit int
	owned    map[VertexID]bool

	// dirty tracks vertices whose adjacency changed since the last
	// Freeze, so an incremental-maintenance re-Freeze re-indexes only the
	// touched vertices. nil means tracking is off (initial build) and
	// Freeze indexes everything.
	dirty map[VertexID]bool

	// lastFrozen is the set of vertices the most recent incremental
	// Freeze re-indexed — exactly the vertices whose adjacency the last
	// Thaw/mutate/Freeze cycle touched. Incremental query maintenance
	// seeds its delta runs from these (plus their payload-level
	// bookkeeping in the tag layer) instead of the whole graph.
	lastFrozen []VertexID
}

// NewGraph returns an empty graph with a fresh symbol table.
func NewGraph() *Graph {
	return &Graph{Symbols: NewSymbolTable()}
}

// Clone returns a copy-on-write snapshot of a frozen graph. The clone
// shares per-vertex edge storage (and the symbol table, which is
// internally synchronized) with the receiver; any vertex the clone
// mutates is privatized first, so readers of the original never observe
// a write. The original must stay frozen for as long as the clone is
// alive — the intended discipline is that the original is an immutable
// published generation and the clone is its in-progress successor.
func (g *Graph) Clone() *Graph {
	if !g.frozen {
		panic("bsp: Clone of unfrozen graph")
	}
	return &Graph{
		Symbols:  g.Symbols,
		vertices: append([]vertex(nil), g.vertices...),
		frozen:   true,
		numEdges: g.numEdges,
		cowLimit: len(g.vertices),
		owned:    make(map[VertexID]bool),
		dirty:    make(map[VertexID]bool),
	}
}

// own privatizes a possibly-shared vertex's slices before mutation.
func (g *Graph) own(v VertexID) {
	if g.owned == nil || int(v) >= g.cowLimit || g.owned[v] {
		return
	}
	vx := &g.vertices[v]
	vx.edges = append([]Edge(nil), vx.edges...)
	vx.labelStart = append([]int32(nil), vx.labelStart...)
	vx.labelIDs = append([]LabelID(nil), vx.labelIDs...)
	g.owned[v] = true
}

func (g *Graph) markDirty(v VertexID) {
	if g.dirty != nil {
		g.dirty[v] = true
	}
}

// AddVertex creates a vertex with the given label id and payload.
func (g *Graph) AddVertex(label LabelID, data any) VertexID {
	if g.frozen {
		panic("bsp: AddVertex after Freeze")
	}
	g.vertices = append(g.vertices, vertex{label: label, data: data})
	id := VertexID(len(g.vertices) - 1)
	g.markDirty(id)
	return id
}

// AddEdge adds a directed labeled edge.
func (g *Graph) AddEdge(from, to VertexID, label LabelID) {
	if g.frozen {
		panic("bsp: AddEdge after Freeze")
	}
	g.own(from)
	g.markDirty(from)
	v := &g.vertices[from]
	v.edges = append(v.edges, Edge{Label: label, To: to})
	g.numEdges++
}

// AddUndirectedEdge adds the two directed edges modeling an undirected one.
func (g *Graph) AddUndirectedEdge(a, b VertexID, label LabelID) {
	g.AddEdge(a, b, label)
	g.AddEdge(b, a, label)
}

// RemoveEdge deletes all (from -> to) edges with the given label.
// Only valid before Freeze; used by incremental TAG maintenance.
func (g *Graph) RemoveEdge(from, to VertexID, label LabelID) {
	if g.frozen {
		panic("bsp: RemoveEdge after Freeze")
	}
	g.own(from)
	g.markDirty(from)
	v := &g.vertices[from]
	kept := v.edges[:0]
	for _, e := range v.edges {
		if e.To == to && e.Label == label {
			g.numEdges--
			continue
		}
		kept = append(kept, e)
	}
	v.edges = kept
}

// Freeze sorts adjacency lists by label and builds the per-label index.
// The graph is immutable afterwards (vertex payloads may still change).
// The first Freeze indexes every vertex; afterwards dirty-vertex
// tracking is enabled, so incremental Thaw/mutate/Freeze cycles
// re-index only the vertices whose adjacency actually changed.
func (g *Graph) Freeze() {
	if g.dirty == nil {
		for i := range g.vertices {
			g.freezeVertex(&g.vertices[i])
		}
		g.dirty = make(map[VertexID]bool)
		g.lastFrozen = nil // initial build: "everything", not a delta
	} else {
		g.lastFrozen = g.lastFrozen[:0]
		for v := range g.dirty {
			g.own(v) // sort mutates in place; never touch a shared slice
			g.freezeVertex(&g.vertices[v])
			g.lastFrozen = append(g.lastFrozen, v)
			delete(g.dirty, v)
		}
		sort.Slice(g.lastFrozen, func(i, j int) bool { return g.lastFrozen[i] < g.lastFrozen[j] })
	}
	g.frozen = true
}

// LastFrozenDirty returns, sorted, the vertices the most recent
// incremental Freeze re-indexed — the adjacency-touched set of the last
// Thaw/mutate/Freeze cycle. Empty after the initial full Freeze. The
// slice is owned by the graph and valid until the next Freeze.
func (g *Graph) LastFrozenDirty() []VertexID { return g.lastFrozen }

func (g *Graph) freezeVertex(v *vertex) {
	sort.Slice(v.edges, func(a, b int) bool {
		if v.edges[a].Label != v.edges[b].Label {
			return v.edges[a].Label < v.edges[b].Label
		}
		return v.edges[a].To < v.edges[b].To
	})
	v.labelIDs = v.labelIDs[:0]
	v.labelStart = v.labelStart[:0]
	for j, e := range v.edges {
		if j == 0 || e.Label != v.edges[j-1].Label {
			v.labelIDs = append(v.labelIDs, e.Label)
			v.labelStart = append(v.labelStart, int32(j))
		}
	}
	v.labelStart = append(v.labelStart, int32(len(v.edges)))
}

// Thaw re-enables mutation (incremental maintenance); Freeze must be
// called again before running programs.
func (g *Graph) Thaw() { g.frozen = false }

// Frozen reports whether the graph has been frozen.
func (g *Graph) Frozen() bool { return g.frozen }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return g.numEdges }

// Label returns the label of v.
func (g *Graph) Label(v VertexID) LabelID { return g.vertices[v].label }

// Data returns the payload of v.
func (g *Graph) Data(v VertexID) any { return g.vertices[v].data }

// SetData replaces the payload of v.
func (g *Graph) SetData(v VertexID, data any) { g.vertices[v].data = data }

// Edges returns the full adjacency list of v (read-only).
func (g *Graph) Edges(v VertexID) []Edge { return g.vertices[v].edges }

// EdgesWithLabel returns the contiguous run of v's edges carrying the
// label, as a sub-slice of the frozen adjacency list.
func (g *Graph) EdgesWithLabel(v VertexID, label LabelID) []Edge {
	vx := &g.vertices[v]
	if !g.frozen {
		panic("bsp: EdgesWithLabel before Freeze")
	}
	i := sort.Search(len(vx.labelIDs), func(k int) bool { return vx.labelIDs[k] >= label })
	if i == len(vx.labelIDs) || vx.labelIDs[i] != label {
		return nil
	}
	return vx.edges[vx.labelStart[i]:vx.labelStart[i+1]]
}

// DegreeWithLabel returns the number of v's out-edges carrying label;
// this is the §6.1.2 heavy/light occurrence count.
func (g *Graph) DegreeWithLabel(v VertexID, label LabelID) int {
	return len(g.EdgesWithLabel(v, label))
}

// HasEdgeWithLabel reports whether v has at least one out-edge with label.
func (g *Graph) HasEdgeWithLabel(v VertexID, label LabelID) bool {
	return len(g.EdgesWithLabel(v, label)) > 0
}

// VerticesWithLabel returns all vertex ids carrying the vertex label.
func (g *Graph) VerticesWithLabel(label LabelID) []VertexID {
	var out []VertexID
	for i := range g.vertices {
		if g.vertices[i].label == label {
			out = append(out, VertexID(i))
		}
	}
	return out
}

// ByteSize estimates the in-memory footprint of the graph structure plus
// payloads that implement interface{ Size() int }; used by the Figure 14
// load-size experiment.
func (g *Graph) ByteSize() int {
	n := 0
	for i := range g.vertices {
		v := &g.vertices[i]
		n += 16 + len(v.edges)*8
		if s, ok := v.data.(interface{ Size() int }); ok {
			n += s.Size()
		}
	}
	return n
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph{%d vertices, %d edges, %d labels}", g.NumVertices(), g.NumEdges(), g.Symbols.Len())
}
