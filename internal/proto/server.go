package proto

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/serve"
)

// bufSize sizes the pooled per-connection read/write buffers. 64KB
// swallows a typical point-query exchange in one syscall each way
// while staying cheap enough to pool across thousands of
// connection turnovers.
const bufSize = 64 << 10

// Buffered readers and writers are pooled across connections: the
// protocol's whole point is cheap per-query serving, and paying two
// 64KB allocations per accepted connection would hand a chunk of that
// back under connection churn.
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, bufSize) }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, bufSize) }}
)

// Server serves the binary query protocol on one listener, executing
// every query through the shared serve.Server core (same admission
// control, deadlines, and stats as HTTP; latency lands in the
// ProtoBinary histogram).
type Server struct {
	core *serve.Server
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts accepting binary-protocol connections on ln, one
// goroutine per connection, and returns immediately. Close stops the
// listener and tears down live connections.
func Serve(ln net.Listener, core *serve.Server) *Server {
	s := &Server{core: core, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener, closes every live connection (in-flight
// queries abort when their response write fails), and waits for the
// connection goroutines to exit. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (or broken) — either way, stop accepting
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// handle owns one connection for its lifetime: handshake, then a
// strict request/response loop. Framing damage — bad CRC, oversized
// length prefix, truncation mid-frame — closes the connection without
// a reply (after corruption no frame boundary can be trusted), while
// well-framed-but-invalid payloads get a typed ERROR frame first.
// Either way the serving process is untouched: a hostile peer can only
// ever lose its own connection.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	br := readerPool.Get().(*bufio.Reader)
	br.Reset(conn)
	defer readerPool.Put(br)
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(conn)
	defer writerPool.Put(bw)
	var scratch []byte // per-connection encode buffer, reused across responses

	// Handshake: exactly one HELLO with the right magic, echoed back.
	payload, _, err := codec.ReadFrame(br)
	if err != nil {
		return
	}
	d := codec.NewDecoder(payload)
	kind, err := d.Byte()
	if err != nil || kind != kindHello {
		s.refuse(bw, scratch, ErrorBadMagic, "expected HELLO")
		return
	}
	m, err := d.Str()
	if err != nil || m != magic || d.Finish() != nil {
		s.refuse(bw, scratch, ErrorBadMagic, "wrong protocol magic")
		return
	}
	scratch = appendHello(scratch[:0])
	if writeFrame(bw, scratch) != nil {
		return
	}

	for {
		payload, _, err := codec.ReadFrame(br)
		if err != nil {
			return // clean EOF or framing damage — close either way
		}
		d := codec.NewDecoder(payload)
		kind, err := d.Byte()
		if err != nil || kind != kindQuery {
			s.refuse(bw, scratch, ErrorBadFrame, "expected QUERY")
			return
		}
		stmt, fingerprint, deadline, err := decodeQuery(d)
		if err != nil {
			s.refuse(bw, scratch, ErrorBadFrame, "undecodable QUERY frame")
			return
		}
		if scratch, err = s.answer(scratch[:0], stmt, fingerprint, deadline); err != nil {
			return // encode bug; nothing coherent to send
		}
		if writeFrame(bw, scratch) != nil {
			return
		}
	}
}

// answer executes one request through the shared serving core and
// encodes the response frame into buf. Execution errors become typed
// ERROR/RETRY frames — only an encoding failure (a bug, not an input)
// returns a non-nil error.
func (s *Server) answer(buf []byte, stmt string, fingerprint bool, deadline time.Duration) ([]byte, error) {
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	var (
		res *serve.Result
		fp  string
		err error
	)
	if fingerprint {
		var ok bool
		fp = stmt
		res, ok, err = s.core.QueryPrepared(ctx, stmt, serve.ProtoBinary)
		if !ok {
			// Evicted (or never prepared here): the client falls back to
			// SQL, which re-primes the cache. The connection stays up.
			return appendError(buf, ErrorUnknownFP, "fingerprint not prepared"), nil
		}
	} else {
		res, fp, err = s.core.QueryOn(ctx, stmt, serve.ProtoBinary)
	}
	switch {
	case err == nil:
		return appendResult(buf, res, fp)
	case errors.Is(err, serve.ErrOverloaded):
		return appendRetry(buf, retryAfter(s.core.AdmitWait()), err.Error()), nil
	case errors.Is(err, context.DeadlineExceeded):
		return appendError(buf, ErrorDeadline, err.Error()), nil
	case errors.Is(err, context.Canceled):
		return appendError(buf, ErrorCanceled, err.Error()), nil
	case fp == "" && !fingerprint:
		// QueryOn returns an empty fingerprint only when the statement
		// never parsed — the client sent bad SQL, not a failing query.
		return appendError(buf, ErrorBadFrame, err.Error()), nil
	default:
		return appendError(buf, ErrorExec, err.Error()), nil
	}
}

// refuse writes a typed ERROR frame; the caller closes the connection.
// A failed write is ignored — the connection is going away regardless.
func (s *Server) refuse(bw *bufio.Writer, scratch []byte, code, msg string) {
	writeFrame(bw, appendError(scratch[:0], code, msg))
}

// retryAfter rounds the admission bound up to whole seconds (floor 1s)
// to match the HTTP surface's Retry-After header, so a client backing
// off sees the same hint on either protocol.
func retryAfter(wait time.Duration) time.Duration {
	secs := (wait + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	return secs * time.Second
}

// writeFrame frames payload and flushes it — every response reaches
// the wire before the next request is read, keeping the protocol
// strictly request/response.
func writeFrame(bw *bufio.Writer, payload []byte) error {
	if err := codec.WriteFrame(bw, payload); err != nil {
		return err
	}
	return bw.Flush()
}
