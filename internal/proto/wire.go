// Package proto is the binary query protocol: persistent TCP
// connections carrying codec frames (the WAL/checkpoint framing —
// length + CRC-32C header) whose payloads are kind-tagged messages
// encoded with the relational layer's deterministic binary value
// codecs. Relative to the HTTP JSON surface it removes per-request
// connection setup, JSON encode/decode on both sides, and (via the
// fingerprint fast path) server-side SQL lexing — the per-query costs
// that dominate point-query serving. Both surfaces execute through the
// same serve.Server core, so admission control, deadlines and stats
// behave identically; only the wire changes.
//
// Conversation shape: the client opens with a HELLO frame carrying the
// protocol magic and the server echoes it; each QUERY frame then gets
// exactly one RESULT, ERROR, or RETRY frame in return. A QUERY carries
// either SQL text or a statement fingerprint previously returned in a
// RESULT trailer — the fingerprint path skips lexing entirely, and an
// evicted fingerprint surfaces as ErrorUnknownFP so the client can
// retransmit the SQL. Framing damage (bad CRC, oversized length,
// truncation) is never answered: the connection just closes, because
// after corruption no further frame boundary can be trusted.
package proto

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/relation"
	"repro/internal/serve"
)

// magic opens every connection; a mismatch (wrong protocol, HTTP
// accidentally pointed here) is refused with a typed error frame
// before anything else is read.
const magic = "TAGP1"

// Frame kinds (first payload byte of every frame).
const (
	kindHello  byte = 1 // handshake, both directions: magic string
	kindQuery  byte = 2 // client→server: flags, statement, deadline
	kindResult byte = 3 // server→client: schema, columnar cells, trailer
	kindError  byte = 4 // server→client: code + message
	kindRetry  byte = 5 // server→client: overloaded, retry-after hint
)

// Query frame flags.
const flagFingerprint byte = 1 << 0 // statement is a fingerprint, not SQL

// Error codes carried by ERROR frames.
const (
	ErrorBadMagic  = "bad_magic"   // handshake carried the wrong magic
	ErrorBadFrame  = "bad_request" // well-framed but undecodable or unknown-kind payload
	ErrorUnknownFP = "unknown_fingerprint"
	ErrorDeadline  = "deadline" // query aborted by its deadline
	ErrorCanceled  = "canceled" // query aborted by client cancellation
	ErrorExec      = "exec"     // parse, analyze, or execution failure
)

// Result is one decoded RESULT frame: the rows plus the execution
// report the trailer carries, mirroring serve.Result.
type Result struct {
	Rows        *relation.Relation
	Epoch       uint64
	Prepared    bool   // served via the prepared-statement cache
	Fingerprint string // normalized statement fingerprint (cache key for the fast path)
	Elapsed     time.Duration
	Messages    int64 // BSP messages this query sent (the paper's M)
	Supersteps  int
	Agg         string // aggregation class the planner chose
	Acyclic     bool
}

// Error is a typed refusal from the server. The connection stays
// usable after every code except ErrorBadMagic and ErrorBadFrame.
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return fmt.Sprintf("proto: %s: %s", e.Code, e.Message) }

// RetryError is the admission-control refusal (the binary analogue of
// HTTP 429 + Retry-After): the server is overloaded, the query never
// started, and retrying after the hint is always safe.
type RetryError struct {
	After   time.Duration
	Message string
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("proto: overloaded, retry after %v: %s", e.After, e.Message)
}

// appendHello encodes a HELLO frame payload.
func appendHello(b []byte) []byte {
	b = append(b, kindHello)
	return codec.AppendString(b, magic)
}

// appendQuery encodes a QUERY frame payload: flags, the statement (SQL
// text, or a fingerprint when flagFingerprint is set), the deadline in
// milliseconds (0 = none), and a reserved parameter count (must be 0;
// room for bound parameters without a format break).
func appendQuery(b []byte, stmt string, fingerprint bool, deadline time.Duration) []byte {
	b = append(b, kindQuery)
	var flags byte
	if fingerprint {
		flags |= flagFingerprint
	}
	b = append(b, flags)
	b = codec.AppendString(b, stmt)
	b = binary.AppendUvarint(b, uint64(deadline.Milliseconds()))
	b = binary.AppendUvarint(b, 0)
	return b
}

// decodeQuery decodes a QUERY payload after its kind byte.
func decodeQuery(d *codec.Decoder) (stmt string, fingerprint bool, deadline time.Duration, err error) {
	flags, err := d.Byte()
	if err != nil {
		return "", false, 0, err
	}
	if stmt, err = d.Str(); err != nil {
		return "", false, 0, err
	}
	ms, err := d.Uvarint()
	if err != nil {
		return "", false, 0, err
	}
	nparams, err := d.Uvarint()
	if err != nil {
		return "", false, 0, err
	}
	if nparams != 0 {
		return "", false, 0, fmt.Errorf("proto: %d bound parameters unsupported", nparams)
	}
	if err = d.Finish(); err != nil {
		return "", false, 0, err
	}
	return stmt, flags&flagFingerprint != 0, time.Duration(ms) * time.Millisecond, nil
}

// appendResult encodes a RESULT frame payload: the schema, a row
// count, the cells column-major (all of column 0, then column 1, …),
// and the execution-report trailer. Column-major keeps each column's
// kind bytes and varint shapes adjacent — the same reasoning as a
// columnar file layout, and it lets a future column-typed encoding
// drop the per-cell kind byte without reordering.
func appendResult(b []byte, res *serve.Result, fp string) ([]byte, error) {
	b = append(b, kindResult)
	b = res.Rows.Schema.AppendBinary(b)
	rows := res.Rows.Tuples
	b = binary.AppendUvarint(b, uint64(len(rows)))
	for j := range res.Rows.Schema.Columns {
		for _, row := range rows {
			var err error
			if b, err = relation.AppendValue(b, row[j]); err != nil {
				return nil, err
			}
		}
	}
	b = binary.AppendUvarint(b, res.Epoch)
	if res.Prepared {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = codec.AppendString(b, fp)
	b = binary.AppendUvarint(b, uint64(res.Elapsed.Nanoseconds()))
	b = binary.AppendUvarint(b, uint64(res.Cost.Messages))
	b = binary.AppendUvarint(b, uint64(res.Cost.Supersteps))
	b = binary.AppendUvarint(b, uint64(res.Info.Agg))
	if res.Info.Acyclic {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return b, nil
}

// decodeResult decodes a RESULT payload after its kind byte.
func decodeResult(d *codec.Decoder) (*Result, error) {
	schema, err := relation.DecodeSchema(d)
	if err != nil {
		return nil, err
	}
	nrows, err := d.Length()
	if err != nil {
		return nil, err
	}
	ncols := len(schema.Columns)
	// Every cell costs at least one encoded byte, so a row count the
	// remaining payload cannot back is corruption — checked before any
	// allocation proportional to it.
	if ncols > 0 && nrows > d.Remaining()/ncols {
		return nil, codec.ErrCorrupt
	}
	cells := make([]relation.Value, nrows*ncols)
	for j := 0; j < ncols; j++ {
		for i := 0; i < nrows; i++ {
			if cells[i*ncols+j], err = relation.DecodeValue(d); err != nil {
				return nil, err
			}
		}
	}
	rel := relation.New("result", schema)
	rel.Tuples = make([]relation.Tuple, nrows)
	for i := range rel.Tuples {
		rel.Tuples[i] = relation.Tuple(cells[i*ncols : (i+1)*ncols : (i+1)*ncols])
	}

	out := &Result{Rows: rel}
	if out.Epoch, err = d.Uvarint(); err != nil {
		return nil, err
	}
	prep, err := d.Byte()
	if err != nil {
		return nil, err
	}
	out.Prepared = prep != 0
	if out.Fingerprint, err = d.Str(); err != nil {
		return nil, err
	}
	ns, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out.Elapsed = time.Duration(ns)
	msgs, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out.Messages = int64(msgs)
	steps, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out.Supersteps = int(steps)
	agg, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out.Agg = aggName(agg)
	acyclic, err := d.Byte()
	if err != nil {
		return nil, err
	}
	out.Acyclic = acyclic != 0
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// aggName renders a core.AggClass ordinal without importing core (the
// ordinals are part of the wire format now; decode must not drift with
// the enum's String method).
func aggName(v uint64) string {
	switch v {
	case 0:
		return "none"
	case 1:
		return "local"
	case 2:
		return "global"
	case 3:
		return "scalar"
	default:
		return fmt.Sprintf("agg(%d)", v)
	}
}

// appendError encodes an ERROR frame payload.
func appendError(b []byte, code, msg string) []byte {
	b = append(b, kindError)
	b = codec.AppendString(b, code)
	return codec.AppendString(b, msg)
}

// appendRetry encodes a RETRY frame payload.
func appendRetry(b []byte, after time.Duration, msg string) []byte {
	b = append(b, kindRetry)
	b = binary.AppendUvarint(b, uint64(after.Milliseconds()))
	return codec.AppendString(b, msg)
}
