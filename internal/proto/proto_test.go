package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/relation"
	"repro/internal/serve"
	"repro/internal/tag"
)

// testCatalog builds the small two-table join catalog the serve tests
// use: 60 items across 5 groups.
func testCatalog() *relation.Catalog {
	cat := relation.NewCatalog()
	items := relation.New("items", relation.MustSchema(
		relation.Col("ikey", relation.KindInt),
		relation.Col("grp", relation.KindString),
		relation.Col("val", relation.KindInt)))
	for i := 0; i < 60; i++ {
		items.MustAppend(relation.Int(int64(i)), relation.Str(fmt.Sprintf("g%d", i%5)), relation.Int(int64(i%7)))
	}
	cat.MustAdd(items)
	cat.SetPrimaryKey("items", "ikey")

	groups := relation.New("groups", relation.MustSchema(
		relation.Col("gname", relation.KindString),
		relation.Col("weight", relation.KindInt)))
	for i := 0; i < 5; i++ {
		groups.MustAppend(relation.Str(fmt.Sprintf("g%d", i)), relation.Int(int64(i+1)))
	}
	cat.MustAdd(groups)
	cat.SetPrimaryKey("groups", "gname")
	cat.AddForeignKey(relation.ForeignKey{Table: "items", Column: "grp", RefTable: "groups", RefColumn: "gname"})
	return cat
}

// startServer boots a serve.Server plus a binary listener on a random
// port and tears both down with the test.
func startServer(t *testing.T, opts serve.Options) (*serve.Server, *Server, string) {
	t.Helper()
	g, err := tag.Build(testCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	core := serve.New(g, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ps := Serve(ln, core)
	t.Cleanup(func() { ps.Close() })
	return core, ps, ln.Addr().String()
}

// TestRoundTripMatchesDirectQuery: rows decoded off the wire are
// value-identical to the same queries executed directly on the serving
// core, and the second issue of a statement rides the fingerprint fast
// path (Prepared in the trailer).
func TestRoundTripMatchesDirectQuery(t *testing.T) {
	core, _, addr := startServer(t, serve.Options{Sessions: 2})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	queries := []string{
		"SELECT COUNT(*) FROM items",
		"SELECT grp, SUM(val) FROM items GROUP BY grp",
		"SELECT gname, COUNT(*) FROM items, groups WHERE grp = gname GROUP BY gname",
		"SELECT ikey, val FROM items WHERE ikey = 17",
	}
	for _, q := range queries {
		want, err := core.Query(q)
		if err != nil {
			t.Fatalf("%s: direct: %v", q, err)
		}
		got, err := c.Query(q)
		if err != nil {
			t.Fatalf("%s: wire: %v", q, err)
		}
		if !reflect.DeepEqual(got.Rows.Schema, want.Rows.Schema) {
			t.Errorf("%s: schema mismatch: wire %v direct %v", q, got.Rows.Schema, want.Rows.Schema)
		}
		if !reflect.DeepEqual(got.Rows.Tuples, want.Rows.Tuples) {
			t.Errorf("%s: rows mismatch:\nwire   %v\ndirect %v", q, got.Rows.Tuples, want.Rows.Tuples)
		}
		if got.Fingerprint == "" {
			t.Errorf("%s: trailer carried no fingerprint", q)
		}
		if got.Epoch != want.Epoch {
			t.Errorf("%s: epoch = %d, want %d", q, got.Epoch, want.Epoch)
		}

		// Second issue: the client sends the fingerprint, the server skips
		// lexing, and the rows still match.
		again, err := c.Query(q)
		if err != nil {
			t.Fatalf("%s: fingerprint reissue: %v", q, err)
		}
		if !again.Prepared {
			t.Errorf("%s: reissue not marked prepared", q)
		}
		if !reflect.DeepEqual(again.Rows.Tuples, want.Rows.Tuples) {
			t.Errorf("%s: fingerprint-path rows diverge from direct execution", q)
		}
	}

	// The latency histogram attributed all wire queries to the binary
	// protocol.
	if n := core.Latency(serve.ProtoBinary).Count(); n != int64(2*len(queries)) {
		t.Errorf("binary histogram count = %d, want %d", n, 2*len(queries))
	}
}

// TestUnknownFingerprintFallsBackToSQL: a fingerprint the server never
// prepared gets the typed ErrorUnknownFP answer on a connection that
// stays usable, and the client's Query wrapper retransmits SQL
// transparently after eviction.
func TestUnknownFingerprintFallsBackToSQL(t *testing.T) {
	_, _, addr := startServer(t, serve.Options{Sessions: 1, PreparedLimit: 1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.roundTrip("deadbeef", true, 0); err == nil {
		t.Fatal("bogus fingerprint accepted")
	} else if pe, ok := err.(*Error); !ok || pe.Code != ErrorUnknownFP {
		t.Fatalf("bogus fingerprint error = %v, want code %s", err, ErrorUnknownFP)
	}

	// Prime two statements through a 1-entry cache: the first is evicted
	// by the second, so its cached fingerprint is now unknown server-side
	// and Query must fall back to SQL without surfacing an error.
	q1, q2 := "SELECT COUNT(*) FROM items", "SELECT COUNT(*) FROM groups"
	if _, err := c.Query(q1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(q2); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(q1) // cached fp was evicted by q2
	if err != nil {
		t.Fatalf("query after server-side eviction: %v", err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 60 {
		t.Errorf("COUNT(*) after fallback = %d, want 60", n)
	}
}

// TestDeadlineAndRetryFrames: with the pool's only session held, a
// deadlined query comes back as a typed deadline error and an
// undeadlined one as a RETRY frame carrying the admission hint —
// and the connection survives both to serve a normal query once the
// session frees.
func TestDeadlineAndRetryFrames(t *testing.T) {
	core, _, addr := startServer(t, serve.Options{Sessions: 1, AdmitWait: 30 * time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pool := core.Generation().Pool()
	sess := pool.Acquire() // hold the only session

	if _, err := c.QueryDeadline("SELECT COUNT(*) FROM items", 5*time.Millisecond); err == nil {
		t.Error("deadlined query on an exhausted pool succeeded")
	} else if pe, ok := err.(*Error); !ok || pe.Code != ErrorDeadline {
		t.Errorf("deadline error = %v, want code %s", err, ErrorDeadline)
	}

	if _, err := c.Query("SELECT COUNT(*) FROM items"); err == nil {
		t.Error("query on an exhausted pool succeeded")
	} else if re, ok := err.(*RetryError); !ok {
		t.Errorf("overload error = %v, want *RetryError", err)
	} else if re.After < time.Second {
		t.Errorf("retry hint = %v, want >= 1s", re.After)
	}

	pool.Release(sess)
	res, err := c.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatalf("query after pool release: %v", err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 60 {
		t.Errorf("COUNT(*) = %d, want 60", n)
	}

	st := core.Stats()
	if st.Rejected != 1 || st.Canceled != 1 {
		t.Errorf("rejected/canceled = %d/%d, want 1/1", st.Rejected, st.Canceled)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d, want 0", st.InFlight)
	}
}

// TestHostileFramesNeverWedgeTheServer drives the raw socket with the
// fuzz barrage's shapes — wrong magic, undecodable payloads, oversized
// length prefixes, CRC damage, truncation mid-frame — and asserts the
// server answers with a typed error or just closes, then keeps serving
// well-formed clients.
func TestHostileFramesNeverWedgeTheServer(t *testing.T) {
	_, _, addr := startServer(t, serve.Options{Sessions: 1})

	frame := func(payload []byte) []byte {
		out := make([]byte, 8, 8+len(payload))
		binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
		return append(out, payload...)
	}
	goodHello := frame(appendHello(nil))

	cases := []struct {
		name string
		raw  []byte
	}{
		{"wrong magic", frame(appendHello(nil)[:3])},
		{"http speaker", []byte("GET /query HTTP/1.1\r\nHost: x\r\n\r\n")},
		{"oversized length", []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}},
		{"zero length", []byte{0, 0, 0, 0, 0, 0, 0, 0}},
		{"crc flip", func() []byte { f := frame(appendHello(nil)); f[4] ^= 0x40; return f }()},
		{"truncated mid-frame", frame(appendHello(nil))[:10]},
		{"query before hello", frame(appendQuery(nil, "SELECT 1", false, 0))},
		{"garbage after hello", append(append([]byte{}, goodHello...), frame([]byte{0x7f, 1, 2, 3})...)},
		{"truncated query", append(append([]byte{}, goodHello...), frame([]byte{kindQuery, 0})...)},
	}
	for _, tc := range cases {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("%s: dial: %v", tc.name, err)
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Write(tc.raw); err != nil && !errors.Is(err, net.ErrClosed) {
			// A server that already hung up mid-write is a valid refusal.
			conn.Close()
			continue
		}
		// Half-close the write side: a truncation is a peer that stopped
		// sending, and the server must then see it rather than wait for
		// bytes that never come.
		conn.(*net.TCPConn).CloseWrite()
		// The server must settle the connection: either a frame (typed
		// error) or EOF, never a hang past the read deadline.
		if _, err := io.ReadAll(conn); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Errorf("%s: connection hung instead of closing", tc.name)
			}
		}
		conn.Close()
	}

	// The server survived the barrage and still answers a honest client.
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial after barrage: %v", err)
	}
	defer c.Close()
	res, err := c.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatalf("query after barrage: %v", err)
	}
	if n := res.Rows.Tuples[0][0].AsInt(); n != 60 {
		t.Errorf("COUNT(*) = %d, want 60", n)
	}
}

// TestServerCloseUnblocksClients: Close tears down live connections so
// a blocked reader gets EOF, not a hang.
func TestServerCloseUnblocksClients(t *testing.T) {
	_, ps, addr := startServer(t, serve.Options{Sessions: 1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := codec.ReadFrame(c.br)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the reader block
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("read after Close returned a frame, want an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client read still blocked after server Close")
	}
}
