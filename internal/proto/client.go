package proto

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/codec"
)

// Client is one persistent binary-protocol connection. It is strictly
// request/response and NOT safe for concurrent use — callers wanting
// parallelism open one Client per worker (a connection is the unit of
// concurrency on this protocol, exactly like a pooled HTTP conn).
//
// The client remembers the statement fingerprint each RESULT trailer
// carries, keyed by SQL text, and sends the fingerprint instead of the
// SQL on every later occurrence — the server then skips lexing and
// analysis entirely. An ErrorUnknownFP answer (server evicted the
// statement) invalidates the cached entry and falls back to SQL
// transparently.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	scratch []byte
	fps     map[string]string // SQL text → fingerprint
}

// Dial connects, performs the handshake, and returns a ready Client.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, bufSize),
		bw:   bufio.NewWriterSize(conn, bufSize),
		fps:  make(map[string]string),
	}
	c.scratch = appendHello(c.scratch[:0])
	if err := writeFrame(c.bw, c.scratch); err != nil {
		conn.Close()
		return nil, err
	}
	payload, _, err := codec.ReadFrame(c.br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("proto: handshake: %w", err)
	}
	d := codec.NewDecoder(payload)
	kind, err := d.Byte()
	if err != nil {
		conn.Close()
		return nil, codec.ErrCorrupt
	}
	if kind == kindError {
		e := decodeError(d)
		conn.Close()
		return nil, e
	}
	m, merr := d.Str()
	if kind != kindHello || merr != nil || m != magic || d.Finish() != nil {
		conn.Close()
		return nil, fmt.Errorf("proto: handshake: not a %s server", magic)
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Query executes one SQL statement and decodes its result. Server-side
// refusals come back as *Error or *RetryError; transport damage closes
// the connection and surfaces the I/O or codec error.
func (c *Client) Query(sql string) (*Result, error) {
	return c.QueryDeadline(sql, 0)
}

// QueryDeadline is Query with a server-enforced deadline (0 = none):
// the server aborts the query at the next superstep barrier once the
// deadline passes and answers with an ErrorDeadline frame.
func (c *Client) QueryDeadline(sql string, deadline time.Duration) (*Result, error) {
	if fp, ok := c.fps[sql]; ok {
		res, err := c.roundTrip(fp, true, deadline)
		if pe, retry := err.(*Error); retry && pe.Code == ErrorUnknownFP {
			delete(c.fps, sql) // evicted server-side; fall through to SQL
		} else {
			return res, err
		}
	}
	res, err := c.roundTrip(sql, false, deadline)
	if err == nil && res.Fingerprint != "" {
		c.fps[sql] = res.Fingerprint
	}
	return res, err
}

func (c *Client) roundTrip(stmt string, fingerprint bool, deadline time.Duration) (*Result, error) {
	c.scratch = appendQuery(c.scratch[:0], stmt, fingerprint, deadline)
	if err := writeFrame(c.bw, c.scratch); err != nil {
		return nil, err
	}
	payload, _, err := codec.ReadFrame(c.br)
	if err != nil {
		return nil, err
	}
	d := codec.NewDecoder(payload)
	kind, err := d.Byte()
	if err != nil {
		return nil, codec.ErrCorrupt
	}
	switch kind {
	case kindResult:
		return decodeResult(d)
	case kindError:
		return nil, decodeError(d)
	case kindRetry:
		ms, err := d.Uvarint()
		if err != nil {
			return nil, codec.ErrCorrupt
		}
		msg, err := d.Str()
		if err != nil || d.Finish() != nil {
			return nil, codec.ErrCorrupt
		}
		return nil, &RetryError{After: time.Duration(ms) * time.Millisecond, Message: msg}
	default:
		return nil, fmt.Errorf("proto: unexpected frame kind %d", kind)
	}
}

// decodeError decodes an ERROR payload after its kind byte; decode
// damage degrades to a generic corrupt-frame Error rather than hiding
// that the server was refusing something.
func decodeError(d *codec.Decoder) *Error {
	code, err := d.Str()
	if err != nil {
		return &Error{Code: ErrorBadFrame, Message: "undecodable error frame"}
	}
	msg, err := d.Str()
	if err != nil || d.Finish() != nil {
		return &Error{Code: code, Message: "undecodable error frame"}
	}
	return &Error{Code: code, Message: msg}
}
