package plan

import (
	"fmt"
	"strings"
)

// NodeKind distinguishes TAG plan node kinds (§5.1).
type NodeKind int

// TAG plan node kinds.
const (
	RelNode NodeKind = iota
	AttrNode
)

// Node is a TAG plan node: relation nodes carry the FROM alias, attribute
// nodes carry the join-attribute class.
type Node struct {
	ID       int
	Kind     NodeKind
	Alias    string // RelNode only
	Class    int    // AttrNode only
	Parent   int    // -1 at root
	Children []int
}

// Step is one traversal step of the vertex program: the edge between
// plan nodes From and To, carrying the relation-side label alias.column.
type Step struct {
	From, To int
	Label    ColRef
}

// TAGPlan is the tree of relation and attribute nodes plus the connected
// bottom-up traversal (Algorithm 1) that drives the vertex program.
type TAGPlan struct {
	Nodes      []Node
	Root       int
	Steps      []Step
	StartAlias string
}

// BuildTAGPlan constructs the TAG plan of a join tree per §5.1: one node
// per relation, one node per join attribute class (shared), edges labeled
// with the relation-side alias.column, then the Algorithm 1 step list.
func BuildTAGPlan(t *Tree, classes *Classes) *TAGPlan {
	p := &TAGPlan{}
	relNode := map[string]int{}
	attrNode := map[int]int{}

	addNode := func(n Node) int {
		n.ID = len(p.Nodes)
		p.Nodes = append(p.Nodes, n)
		if n.Parent >= 0 {
			p.Nodes[n.Parent].Children = append(p.Nodes[n.Parent].Children, n.ID)
		}
		return n.ID
	}

	p.Root = addNode(Node{Kind: RelNode, Alias: t.Root, Parent: -1, Class: -1})
	relNode[t.Root] = p.Root

	for _, alias := range t.Order {
		if alias == t.Root {
			continue
		}
		parent := t.Parent[alias]
		cls := t.EdgeClass[alias]
		an, ok := attrNode[cls]
		if !ok {
			an = addNode(Node{Kind: AttrNode, Class: cls, Parent: relNode[parent], Alias: ""})
			attrNode[cls] = an
		}
		relNode[alias] = addNode(Node{Kind: RelNode, Alias: alias, Parent: an, Class: -1})
	}

	p.genSteps(classes)
	return p
}

// inEdgeLabel returns the relation-side label of the edge between node n
// and its parent.
func (p *TAGPlan) inEdgeLabel(n int, classes *Classes) ColRef {
	node := p.Nodes[n]
	parent := p.Nodes[node.Parent]
	if node.Kind == RelNode {
		col, _ := classes.ColumnOf(parent.Class, node.Alias)
		return ColRef{Alias: node.Alias, Column: col}
	}
	col, _ := classes.ColumnOf(node.Class, parent.Alias)
	return ColRef{Alias: parent.Alias, Column: col}
}

// genSteps implements Algorithm 1 (GenSteps): a recursive DFS pushing each
// node's in-edge label on visiting, and again on leaving unless the node
// lies on the rightmost root-leaf path. Popping the stack yields the
// connected bottom-up traversal starting at the rightmost leaf.
func (p *TAGPlan) genSteps(classes *Classes) {
	if len(p.Nodes) == 1 {
		p.StartAlias = p.Nodes[p.Root].Alias
		return
	}
	var pushes []int // node ids; in-edge of each
	var dfs func(n int, onRightPath bool)
	dfs = func(n int, onRightPath bool) {
		if n != p.Root {
			pushes = append(pushes, n)
		}
		children := p.Nodes[n].Children
		for i, ch := range children {
			dfs(ch, onRightPath && i == len(children)-1)
		}
		if n != p.Root && !onRightPath {
			pushes = append(pushes, n)
		}
	}
	dfs(p.Root, true)

	// Pop order = reversed push order.
	order := make([]int, len(pushes))
	for i, n := range pushes {
		order[len(pushes)-1-i] = n
	}

	// The traversal starts at the rightmost leaf.
	cur := p.Root
	for {
		ch := p.Nodes[cur].Children
		if len(ch) == 0 {
			break
		}
		cur = ch[len(ch)-1]
	}
	p.StartAlias = p.Nodes[cur].Alias

	for _, n := range order {
		label := p.inEdgeLabel(n, classes)
		parent := p.Nodes[n].Parent
		var step Step
		switch cur {
		case n:
			step = Step{From: n, To: parent, Label: label}
			cur = parent
		case parent:
			step = Step{From: parent, To: n, Label: label}
			cur = n
		default:
			panic(fmt.Sprintf("plan: disconnected traversal at node %d (cur %d)", n, cur))
		}
		p.Steps = append(p.Steps, step)
	}
	if cur != p.Root {
		panic("plan: traversal did not end at the root")
	}
}

// PreferStart re-anchors the traversal at the given alias when its plan
// node is a leaf: the nodes along the root-to-leaf path are rotated to
// the last-child position of their parents (genSteps is valid for any
// child order), then the step list is regenerated so the bottom-up walk
// begins at that leaf. A non-leaf or unknown alias leaves the plan
// untouched. Incremental maintenance uses this to start the reduction
// at the delta-restricted relation.
func (p *TAGPlan) PreferStart(alias string, classes *Classes) {
	leaf := p.RelNodeOf(alias)
	if leaf < 0 || len(p.Nodes[leaf].Children) > 0 || p.Nodes[leaf].Parent < 0 {
		return
	}
	for n := leaf; p.Nodes[n].Parent >= 0; n = p.Nodes[n].Parent {
		ch := p.Nodes[p.Nodes[n].Parent].Children
		for i, c := range ch {
			if c == n {
				copy(ch[i:], ch[i+1:])
				ch[len(ch)-1] = n
				break
			}
		}
	}
	p.Steps = nil
	p.genSteps(classes)
}

// Reversed returns the top-down step list: the bottom-up steps reversed
// with directions flipped (drives the DOWN pass and, reversed again, the
// collection phase).
func Reversed(steps []Step) []Step {
	out := make([]Step, len(steps))
	for i, s := range steps {
		out[len(steps)-1-i] = Step{From: s.To, To: s.From, Label: s.Label}
	}
	return out
}

// RelNodeOf returns the plan node id of an alias, or -1.
func (p *TAGPlan) RelNodeOf(alias string) int {
	for _, n := range p.Nodes {
		if n.Kind == RelNode && n.Alias == alias {
			return n.ID
		}
	}
	return -1
}

// String renders the plan tree and steps for debugging.
func (p *TAGPlan) String() string {
	var b strings.Builder
	var rec func(n, depth int)
	rec = func(n, depth int) {
		node := p.Nodes[n]
		b.WriteString(strings.Repeat("  ", depth))
		if node.Kind == RelNode {
			fmt.Fprintf(&b, "rel %s\n", node.Alias)
		} else {
			fmt.Fprintf(&b, "attr class%d\n", node.Class)
		}
		for _, ch := range node.Children {
			rec(ch, depth+1)
		}
	}
	rec(p.Root, 0)
	fmt.Fprintf(&b, "start=%s steps=", p.StartAlias)
	for i, s := range p.Steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Label.String())
	}
	b.WriteByte('\n')
	return b.String()
}
