// Package plan implements the query-structural planning layer of
// TAG-join: equi-join equivalence classes, the GYO ear-removal test for
// acyclicity with join-tree construction (§5), TAG traversal plans and the
// connected bottom-up step list of Algorithm 1, and the decomposition of
// cyclic queries into cycle + acyclic fragments (§6).
//
// The planner is independent of the SQL frontend: it consumes alias/column
// pairs and equality predicates and produces traversal structures the
// TAG-join executor runs as vertex programs.
package plan

import (
	"fmt"
	"sort"
	"strings"
)

// ColRef names a column of a FROM-clause alias (both lower-cased).
type ColRef struct {
	Alias, Column string
}

// String renders "alias.column".
func (c ColRef) String() string { return c.Alias + "." + c.Column }

// NewColRef lower-cases its arguments.
func NewColRef(alias, column string) ColRef {
	return ColRef{Alias: strings.ToLower(alias), Column: strings.ToLower(column)}
}

// EquiPred is an equality predicate A = B between two alias columns.
type EquiPred struct {
	A, B ColRef
}

func (p EquiPred) String() string { return p.A.String() + " = " + p.B.String() }

// Classes partitions alias columns into join-attribute equivalence
// classes: the transitive closure of the equality predicates. Each class
// plays the role of one join attribute in the TAG plan.
type Classes struct {
	Of      map[ColRef]int
	Members [][]ColRef
}

// BuildClasses computes the equivalence classes of preds by union-find.
func BuildClasses(preds []EquiPred) *Classes {
	parent := map[ColRef]ColRef{}
	var find func(x ColRef) ColRef
	find = func(x ColRef) ColRef {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b ColRef) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range preds {
		union(p.A, p.B)
	}

	// Deterministic class numbering: sort roots' member lists.
	byRoot := map[ColRef][]ColRef{}
	for x := range parent {
		r := find(x)
		byRoot[r] = append(byRoot[r], x)
	}
	var keys []ColRef
	for r := range byRoot {
		keys = append(keys, r)
	}
	sortCols := func(cs []ColRef) {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Alias != cs[j].Alias {
				return cs[i].Alias < cs[j].Alias
			}
			return cs[i].Column < cs[j].Column
		})
	}
	for _, ms := range byRoot {
		sortCols(ms)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := byRoot[keys[i]][0], byRoot[keys[j]][0]
		if a.Alias != b.Alias {
			return a.Alias < b.Alias
		}
		return a.Column < b.Column
	})

	c := &Classes{Of: map[ColRef]int{}}
	for _, r := range keys {
		id := len(c.Members)
		c.Members = append(c.Members, byRoot[r])
		for _, m := range byRoot[r] {
			c.Of[m] = id
		}
	}
	return c
}

// ColumnOf returns the (first) column of alias belonging to class id.
func (c *Classes) ColumnOf(class int, alias string) (string, bool) {
	for _, m := range c.Members[class] {
		if m.Alias == alias {
			return m.Column, true
		}
	}
	return "", false
}

// AliasesOf returns the distinct aliases participating in a class, sorted.
func (c *Classes) AliasesOf(class int) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range c.Members[class] {
		if !seen[m.Alias] {
			seen[m.Alias] = true
			out = append(out, m.Alias)
		}
	}
	sort.Strings(out)
	return out
}

// ClassesOf returns the sorted class ids that alias participates in.
func (c *Classes) ClassesOf(alias string) []int {
	seen := map[int]bool{}
	var out []int
	for ref, id := range c.Of {
		if ref.Alias == alias && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Name returns a stable display name for a class.
func (c *Classes) Name(class int) string {
	if class < 0 || class >= len(c.Members) || len(c.Members[class]) == 0 {
		return fmt.Sprintf("class%d", class)
	}
	return c.Members[class][0].String()
}
