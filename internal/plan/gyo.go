package plan

import (
	"fmt"
	"sort"
)

// Tree is a join tree over aliases (one per connected, acyclicized
// component): each non-root alias has a parent it shares at least one
// join-attribute class with.
type Tree struct {
	Root   string
	Parent map[string]string
	// EdgeClass is the coordinating class shared with the parent (§4.2
	// picks one attribute to resolve multi-attribute joins; the remaining
	// shared classes are enforced during collection joins).
	EdgeClass map[string]int
	// Order lists aliases root-first in BFS order (deterministic).
	Order []string
}

// Children returns the child aliases of a node, sorted.
func (t *Tree) Children(alias string) []string {
	var out []string
	for c, p := range t.Parent {
		if p == alias && c != t.Root {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Cycle is a simple join cycle R1 -p1- R2 -p2- ... -pn- R1 discovered
// during acyclicization; Preds[i] links Aliases[i] with Aliases[(i+1)%n].
type Cycle struct {
	Aliases []string
	Preds   []EquiPred
}

// Component is one connected component of the join graph, acyclicized:
// the join Tree plus any cycles whose closing predicates were removed to
// make it a tree. Broken predicates are re-enforced during collection.
type Component struct {
	Aliases []string
	Tree    *Tree
	TAGPlan *TAGPlan
	Cycles  []Cycle
	Broken  []EquiPred
}

// QueryPlan is the structural plan of an equi-join query: components are
// pairwise unconnected and combine by Cartesian product (§6.3).
type QueryPlan struct {
	Classes    *Classes
	Components []*Component
	// Acyclic reports whether the original query (before any cycle
	// breaking) was acyclic, i.e. §5 applies directly.
	Acyclic bool
}

// Options tunes planning.
type Options struct {
	// Cardinality supplies |alias| estimates used to root the join tree
	// at the largest relation and remove small ears first. Missing
	// entries default to 1.
	Cardinality map[string]int

	// PreferStart names an alias the traversal should start from when
	// that alias ends up a leaf of its join tree. Incremental query
	// maintenance sets it to the delta-restricted alias so the reduction
	// seeds from the (tiny) write delta instead of a full relation; it
	// never changes what the plan computes, only where the bottom-up
	// walk begins.
	PreferStart string
}

func (o Options) card(alias string) int {
	if o.Cardinality == nil {
		return 1
	}
	if n, ok := o.Cardinality[alias]; ok {
		return n
	}
	return 1
}

// Build computes the query plan for the given aliases and equi-join
// predicates.
func Build(aliases []string, preds []EquiPred, opts Options) (*QueryPlan, error) {
	lowered := make([]string, len(aliases))
	for i, a := range aliases {
		lowered[i] = lower(a)
	}
	classes := BuildClasses(preds)
	qp := &QueryPlan{Classes: classes, Acyclic: true}

	for _, comp := range components(lowered, preds) {
		c, acyclic, err := buildComponent(comp, preds, classes, opts)
		if err != nil {
			return nil, err
		}
		if !acyclic {
			qp.Acyclic = false
		}
		qp.Components = append(qp.Components, c)
	}
	sort.Slice(qp.Components, func(i, j int) bool {
		return qp.Components[i].Aliases[0] < qp.Components[j].Aliases[0]
	})
	return qp, nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
		}
	}
	return string(b)
}

// components splits aliases into connected components under preds.
func components(aliases []string, preds []EquiPred) [][]string {
	adj := map[string][]string{}
	for _, p := range preds {
		adj[p.A.Alias] = append(adj[p.A.Alias], p.B.Alias)
		adj[p.B.Alias] = append(adj[p.B.Alias], p.A.Alias)
	}
	seen := map[string]bool{}
	var out [][]string
	sorted := append([]string{}, aliases...)
	sort.Strings(sorted)
	for _, a := range sorted {
		if seen[a] {
			continue
		}
		var comp []string
		stack := []string{a}
		seen[a] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for _, m := range adj[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		sort.Strings(comp)
		out = append(out, comp)
	}
	return out
}

// buildComponent acyclicizes one component (breaking cycles as needed),
// builds its join tree via GYO, and attaches the TAG plan.
func buildComponent(aliases []string, allPreds []EquiPred, classes *Classes, opts Options) (*Component, bool, error) {
	inComp := map[string]bool{}
	for _, a := range aliases {
		inComp[a] = true
	}
	var preds []EquiPred
	for _, p := range allPreds {
		if inComp[p.A.Alias] && inComp[p.B.Alias] && p.A.Alias != p.B.Alias {
			preds = append(preds, p)
		}
	}

	comp := &Component{Aliases: aliases}
	acyclic := true
	working := preds
	for attempt := 0; ; attempt++ {
		if attempt > len(preds)+1 {
			return nil, false, fmt.Errorf("plan: cycle breaking did not converge for %v", aliases)
		}
		cls := BuildClasses(working)
		tree, ok := gyo(aliases, cls, opts)
		if ok {
			comp.Tree = tree
			remapTreeClasses(tree, cls, classes)
			comp.TAGPlan = BuildTAGPlan(tree, classes)
			if opts.PreferStart != "" {
				comp.TAGPlan.PreferStart(lower(opts.PreferStart), classes)
			}
			return comp, acyclic, nil
		}
		acyclic = false
		cyc, brokenIdx, err := findCycle(aliases, working)
		if err != nil {
			return nil, false, err
		}
		comp.Cycles = append(comp.Cycles, cyc)
		comp.Broken = append(comp.Broken, working[brokenIdx])
		working = append(append([]EquiPred{}, working[:brokenIdx]...), working[brokenIdx+1:]...)
	}
}

// remapTreeClasses converts class ids from the cycle-broken class
// numbering back to the original (full) numbering used everywhere else.
func remapTreeClasses(t *Tree, broken, full *Classes) {
	for alias, cid := range t.EdgeClass {
		if cid < 0 || cid >= len(broken.Members) || len(broken.Members[cid]) == 0 {
			continue
		}
		rep := broken.Members[cid][0]
		if fid, ok := full.Of[rep]; ok {
			t.EdgeClass[alias] = fid
		}
	}
}

// gyo runs the GYO ear-removal algorithm over the hypergraph whose edges
// are the aliases and whose vertices are the join-attribute classes. It
// returns the join tree if the component is acyclic.
func gyo(aliases []string, classes *Classes, opts Options) (*Tree, bool) {
	remaining := map[string]map[int]bool{}
	for _, a := range aliases {
		set := map[int]bool{}
		for _, c := range classes.ClassesOf(a) {
			set[c] = true
		}
		remaining[a] = set
	}

	parent := map[string]string{}
	edgeClass := map[string]int{}

	// Ear-removal order: smallest cardinality first (dimension tables
	// become leaves; the fact table ends up at the root).
	order := append([]string{}, aliases...)
	sort.Slice(order, func(i, j int) bool {
		if opts.card(order[i]) != opts.card(order[j]) {
			return opts.card(order[i]) < opts.card(order[j])
		}
		return order[i] < order[j]
	})

	for len(remaining) > 1 {
		progress := false
		for _, e := range order {
			se, ok := remaining[e]
			if !ok {
				continue
			}
			// Classes of e shared with at least one other remaining edge.
			shared := map[int]bool{}
			for c := range se {
				for f, sf := range remaining {
					if f != e && sf[c] {
						shared[c] = true
						break
					}
				}
			}
			// e is an ear if a single other edge covers all its shared
			// classes; prefer the largest such cover as the parent.
			var best string
			bestCard := -1
			for f, sf := range remaining {
				if f == e {
					continue
				}
				covers := true
				for c := range shared {
					if !sf[c] {
						covers = false
						break
					}
				}
				if covers && (opts.card(f) > bestCard || (opts.card(f) == bestCard && f < best)) {
					best, bestCard = f, opts.card(f)
				}
			}
			if best == "" {
				continue
			}
			parent[e] = best
			cls := -1
			for c := range shared {
				if remaining[best][c] && (cls < 0 || c < cls) {
					cls = c
				}
			}
			if cls < 0 {
				// No shared class with the parent (disconnected ear in a
				// component is impossible, but keep a fallback).
				for c := range se {
					if remaining[best][c] && (cls < 0 || c < cls) {
						cls = c
					}
				}
			}
			edgeClass[e] = cls
			delete(remaining, e)
			progress = true
			break
		}
		if !progress {
			return nil, false // stuck: cyclic
		}
	}

	var root string
	for a := range remaining {
		root = a
	}
	t := &Tree{Root: root, Parent: parent, EdgeClass: edgeClass}
	t.Order = []string{root}
	for i := 0; i < len(t.Order); i++ {
		t.Order = append(t.Order, t.Children(t.Order[i])...)
	}
	return t, true
}

// findCycle locates a simple cycle in the predicate graph and returns it
// along with the index of the predicate chosen to break (the back arc).
func findCycle(aliases []string, preds []EquiPred) (Cycle, int, error) {
	type arc struct {
		to   string
		pred int
	}
	adj := map[string][]arc{}
	for i, p := range preds {
		adj[p.A.Alias] = append(adj[p.A.Alias], arc{p.B.Alias, i})
		adj[p.B.Alias] = append(adj[p.B.Alias], arc{p.A.Alias, i})
	}
	for a := range adj {
		arcs := adj[a]
		sort.Slice(arcs, func(i, j int) bool {
			if arcs[i].to != arcs[j].to {
				return arcs[i].to < arcs[j].to
			}
			return arcs[i].pred < arcs[j].pred
		})
	}

	sorted := append([]string{}, aliases...)
	sort.Strings(sorted)

	state := map[string]int{} // 0 unvisited, 1 on path, 2 done
	var path []string
	var pathPred []int
	var found Cycle
	foundIdx := -1

	var dfs func(n string, inPred int) bool
	dfs = func(n string, inPred int) bool {
		state[n] = 1
		path = append(path, n)
		pathPred = append(pathPred, inPred)
		defer func() {
			state[n] = 2
			path = path[:len(path)-1]
			pathPred = pathPred[:len(pathPred)-1]
		}()
		for _, a := range adj[n] {
			if a.pred == inPred {
				continue
			}
			// Parallel predicates between the same two aliases form a
			// multi-attribute join (§4.2), not a cycle: ignore arcs back
			// to the immediate predecessor.
			if len(path) >= 2 && a.to == path[len(path)-2] {
				continue
			}
			if state[a.to] == 1 {
				start := 0
				for i, x := range path {
					if x == a.to {
						start = i
						break
					}
				}
				cyc := Cycle{}
				for i := start; i < len(path); i++ {
					cyc.Aliases = append(cyc.Aliases, path[i])
					if i > start {
						cyc.Preds = append(cyc.Preds, preds[pathPred[i]])
					}
				}
				cyc.Preds = append(cyc.Preds, preds[a.pred])
				found = cyc
				foundIdx = a.pred
				return true
			}
			if state[a.to] == 0 && dfs(a.to, a.pred) {
				return true
			}
		}
		return false
	}
	for _, a := range sorted {
		if state[a] == 0 && dfs(a, -1) {
			return found, foundIdx, nil
		}
	}
	return Cycle{}, -1, fmt.Errorf("plan: component reported cyclic but no cycle found")
}
