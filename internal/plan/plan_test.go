package plan

import (
	"strings"
	"testing"
	"testing/quick"
)

func pred(a, ca, b, cb string) EquiPred {
	return EquiPred{A: NewColRef(a, ca), B: NewColRef(b, cb)}
}

func TestBuildClasses(t *testing.T) {
	preds := []EquiPred{
		pred("r", "a", "s", "a"),
		pred("s", "a", "t", "x"), // transitive with the first
		pred("s", "b", "v", "b"),
	}
	c := BuildClasses(preds)
	if len(c.Members) != 2 {
		t.Fatalf("classes = %d, want 2", len(c.Members))
	}
	ra := c.Of[NewColRef("r", "a")]
	tx := c.Of[NewColRef("t", "x")]
	if ra != tx {
		t.Error("transitive equality should merge classes")
	}
	sb := c.Of[NewColRef("s", "b")]
	if sb == ra {
		t.Error("independent equalities should stay separate")
	}
	if col, ok := c.ColumnOf(ra, "t"); !ok || col != "x" {
		t.Errorf("ColumnOf = %q", col)
	}
	if got := c.AliasesOf(ra); len(got) != 3 {
		t.Errorf("AliasesOf = %v", got)
	}
	if got := c.ClassesOf("s"); len(got) != 2 {
		t.Errorf("ClassesOf(s) = %v", got)
	}
	if c.Name(ra) == "" {
		t.Error("Name should be non-empty")
	}
}

// figure4Plan builds the paper's Figure 4 example: join tree R-S, S-T,
// S-V with R⋈S on A and S⋈{T,V} on B.
func figure4Plan(t *testing.T) *QueryPlan {
	t.Helper()
	preds := []EquiPred{
		pred("r", "a", "s", "a"),
		pred("s", "b", "t", "b"),
		pred("s", "b", "v", "b"),
	}
	qp, err := Build([]string{"r", "s", "t", "v"}, preds, Options{
		Cardinality: map[string]int{"r": 1000, "s": 500, "t": 100, "v": 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return qp
}

func TestFigure4JoinTree(t *testing.T) {
	qp := figure4Plan(t)
	if !qp.Acyclic || len(qp.Components) != 1 {
		t.Fatalf("acyclic=%v components=%d", qp.Acyclic, len(qp.Components))
	}
	tree := qp.Components[0].Tree
	if tree.Root != "r" {
		t.Errorf("root = %s, want r (largest)", tree.Root)
	}
	if tree.Parent["s"] != "r" || tree.Parent["t"] != "s" || tree.Parent["v"] != "s" {
		t.Errorf("parents = %v", tree.Parent)
	}
}

func TestFigure4StepsMatchPaper(t *testing.T) {
	qp := figure4Plan(t)
	p := qp.Components[0].TAGPlan
	if p.StartAlias != "v" {
		t.Errorf("start = %s, want v (rightmost leaf)", p.StartAlias)
	}
	// Figure 4(c): V.B, T.B, T.B, S.B, S.A, R.A.
	want := []string{"v.b", "t.b", "t.b", "s.b", "s.a", "r.a"}
	if len(p.Steps) != len(want) {
		t.Fatalf("steps = %v", p)
	}
	for i, s := range p.Steps {
		if s.Label.String() != want[i] {
			t.Errorf("step %d = %s, want %s\n%s", i, s.Label, want[i], p)
		}
	}
	// Directions: connected traversal — each step starts where the
	// previous ended; final step reaches the root.
	for i := 1; i < len(p.Steps); i++ {
		if p.Steps[i].From != p.Steps[i-1].To {
			t.Errorf("step %d is disconnected", i)
		}
	}
	if p.Steps[len(p.Steps)-1].To != p.Root {
		t.Error("traversal must end at the root")
	}
}

func TestReversedSteps(t *testing.T) {
	qp := figure4Plan(t)
	steps := qp.Components[0].TAGPlan.Steps
	rev := Reversed(steps)
	if len(rev) != len(steps) {
		t.Fatal("length mismatch")
	}
	if rev[0].Label.String() != "r.a" || rev[0].From != steps[len(steps)-1].To {
		t.Errorf("first reversed step = %+v", rev[0])
	}
	// Reversing twice is the identity.
	again := Reversed(rev)
	for i := range steps {
		if again[i] != steps[i] {
			t.Errorf("double reverse mismatch at %d", i)
		}
	}
}

func TestTriangleIsCyclic(t *testing.T) {
	preds := []EquiPred{
		pred("r", "b", "s", "b"),
		pred("s", "c", "t", "c"),
		pred("t", "a", "r", "a"),
	}
	qp, err := Build([]string{"r", "s", "t"}, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if qp.Acyclic {
		t.Fatal("triangle should be cyclic")
	}
	comp := qp.Components[0]
	if len(comp.Cycles) != 1 || len(comp.Broken) != 1 {
		t.Fatalf("cycles=%d broken=%d", len(comp.Cycles), len(comp.Broken))
	}
	cyc := comp.Cycles[0]
	if len(cyc.Aliases) != 3 || len(cyc.Preds) != 3 {
		t.Errorf("cycle = %+v", cyc)
	}
	// After breaking, the tree must span all three aliases.
	if len(comp.Tree.Order) != 3 {
		t.Errorf("tree order = %v", comp.Tree.Order)
	}
}

func TestFiveCycle(t *testing.T) {
	var preds []EquiPred
	names := []string{"r1", "r2", "r3", "r4", "r5"}
	for i := range names {
		j := (i + 1) % 5
		preds = append(preds, pred(names[i], "x"+names[j], names[j], "x"+names[j]))
	}
	qp, err := Build(names, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if qp.Acyclic {
		t.Fatal("5-cycle should be cyclic")
	}
	cyc := qp.Components[0].Cycles[0]
	if len(cyc.Aliases) != 5 {
		t.Errorf("cycle length = %d, want 5", len(cyc.Aliases))
	}
}

func TestMultiAttributeJoinIsAcyclic(t *testing.T) {
	preds := []EquiPred{
		pred("r", "a", "s", "a"),
		pred("r", "b", "s", "b"),
	}
	qp, err := Build([]string{"r", "s"}, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !qp.Acyclic {
		t.Error("parallel predicates are a multi-attribute join, not a cycle")
	}
	if len(qp.Components[0].Cycles) != 0 {
		t.Error("no cycles expected")
	}
}

func TestDisconnectedComponents(t *testing.T) {
	preds := []EquiPred{
		pred("a", "x", "b", "x"),
		pred("c", "y", "d", "y"),
	}
	qp, err := Build([]string{"a", "b", "c", "d", "e"}, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(qp.Components) != 3 { // {a,b}, {c,d}, {e}
		t.Fatalf("components = %d, want 3", len(qp.Components))
	}
	// Single-alias component: trivial plan.
	var single *Component
	for _, c := range qp.Components {
		if len(c.Aliases) == 1 {
			single = c
		}
	}
	if single == nil || single.TAGPlan.StartAlias != "e" || len(single.TAGPlan.Steps) != 0 {
		t.Errorf("single component = %+v", single)
	}
}

func TestSnowflakeTree(t *testing.T) {
	// fact joins dim1..dim4; dim1 joins subdim. Classic snowflake.
	preds := []EquiPred{
		pred("fact", "k1", "dim1", "k"),
		pred("fact", "k2", "dim2", "k"),
		pred("fact", "k3", "dim3", "k"),
		pred("fact", "k4", "dim4", "k"),
		pred("dim1", "s", "subdim", "s"),
	}
	qp, err := Build([]string{"fact", "dim1", "dim2", "dim3", "dim4", "subdim"}, preds, Options{
		Cardinality: map[string]int{"fact": 100000, "dim1": 100, "dim2": 100, "dim3": 100, "dim4": 100, "subdim": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !qp.Acyclic {
		t.Fatal("snowflake must be acyclic")
	}
	tree := qp.Components[0].Tree
	if tree.Root != "fact" {
		t.Errorf("root = %s", tree.Root)
	}
	if tree.Parent["subdim"] != "dim1" {
		t.Errorf("subdim parent = %s", tree.Parent["subdim"])
	}
	p := qp.Components[0].TAGPlan
	// 6 rel nodes + 5 attr classes... dim joins have distinct classes.
	rels := 0
	for _, n := range p.Nodes {
		if n.Kind == RelNode {
			rels++
		}
	}
	if rels != 6 {
		t.Errorf("rel nodes = %d", rels)
	}
}

func TestSharedAttrNode(t *testing.T) {
	// r, s, t all join on one attribute: TAG plan has ONE attr node.
	preds := []EquiPred{
		pred("r", "x", "s", "x"),
		pred("s", "x", "t", "x"),
	}
	qp, err := Build([]string{"r", "s", "t"}, preds, Options{
		Cardinality: map[string]int{"r": 100, "s": 10, "t": 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	attrs := 0
	for _, n := range qp.Components[0].TAGPlan.Nodes {
		if n.Kind == AttrNode {
			attrs++
		}
	}
	if attrs != 1 {
		t.Errorf("attr nodes = %d, want 1 (single shared value node)", attrs)
	}
}

func TestStepsConnectedProperty(t *testing.T) {
	// Random star joins always produce connected traversals ending at root.
	f := func(nDims uint8) bool {
		n := int(nDims%6) + 1
		aliases := []string{"fact"}
		var preds []EquiPred
		for i := 0; i < n; i++ {
			d := "d" + string(rune('a'+i))
			aliases = append(aliases, d)
			preds = append(preds, pred("fact", "k"+d, d, "k"))
		}
		qp, err := Build(aliases, preds, Options{Cardinality: map[string]int{"fact": 10000}})
		if err != nil || len(qp.Components) != 1 {
			return false
		}
		p := qp.Components[0].TAGPlan
		if len(p.Steps) == 0 {
			return false
		}
		for i := 1; i < len(p.Steps); i++ {
			if p.Steps[i].From != p.Steps[i-1].To {
				return false
			}
		}
		return p.Steps[len(p.Steps)-1].To == p.Root
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPlanString(t *testing.T) {
	qp := figure4Plan(t)
	s := qp.Components[0].TAGPlan.String()
	if !strings.Contains(s, "rel r") || !strings.Contains(s, "start=v") {
		t.Errorf("String() = %s", s)
	}
}
