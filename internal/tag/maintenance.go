package tag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// InsertTuple adds a tuple to an already-encoded relation: a fresh tuple
// vertex plus edges to (possibly new) attribute vertices. Per §3, no
// reorganization of the graph is required — the insert is local.
func (t *Graph) InsertTuple(table string, row relation.Tuple) (bsp.VertexID, error) {
	vs, err := t.InsertBatch(table, []relation.Tuple{row})
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

// InsertBatch adds many tuples of one relation with a single Thaw/Freeze
// cycle, so the adjacency lists are re-indexed once per batch instead of
// once per row (and, after the first freeze, only for the vertices the
// batch touched). This is the amortized maintenance path for bulk loads
// and for serve-while-write: the serving layer calls it on a
// copy-on-write Clone of the served graph and atomically publishes the
// result as the next generation.
func (t *Graph) InsertBatch(table string, rows []relation.Tuple) ([]bsp.VertexID, error) {
	if err := t.ValidateInsert(table, rows); err != nil {
		return nil, err
	}
	table = strings.ToLower(table)
	vLbl := t.tupleLabel[table]
	rel := t.Catalog.Get(table)
	if len(rows) == 0 {
		return nil, nil
	}

	// The per-column edge labels and materialization choices are invariant
	// across the batch; resolve them once, not once per row.
	type colInfo struct {
		idx int
		lbl bsp.LabelID
	}
	var cols []colInfo
	for i, col := range rel.Schema.Columns {
		key := table + "." + strings.ToLower(col.Name)
		if t.materialized[key] {
			cols = append(cols, colInfo{idx: i, lbl: t.edgeLabel[key]})
		}
	}

	t.G.Thaw()
	out := make([]bsp.VertexID, 0, len(rows))
	for _, row := range rows {
		tv := t.G.AddVertex(vLbl, &TupleData{Table: table, Row: row})
		t.tupleVerts[table] = append(t.tupleVerts[table], tv)
		for _, c := range cols {
			if row[c.idx].IsNull() {
				continue
			}
			av := t.attrVertexForIncremental(row[c.idx])
			t.G.AddUndirectedEdge(tv, av, c.lbl)
			t.addAttrByEdge(c.lbl, av)
		}
		rel.Tuples = append(rel.Tuples, row)
		out = append(out, tv)
	}
	t.G.Freeze()
	if t.deltaInserts != nil {
		t.deltaInserts[table] += len(rows)
		t.noteFrozenDirty()
	}
	return out, nil
}

// ValidateInsert checks everything InsertBatch would reject — the
// relation exists, every row matches its arity — without mutating
// anything. InsertBatch runs it before touching the graph, so a failed
// insert leaves the graph unchanged; the serving layer's write
// coalescer runs it up front so a bad op can be skipped while the rest
// of a coalesced batch proceeds on the shared clone.
func (t *Graph) ValidateInsert(table string, rows []relation.Tuple) error {
	table = strings.ToLower(table)
	if _, ok := t.tupleLabel[table]; !ok {
		return fmt.Errorf("tag: unknown relation %q", table)
	}
	rel := t.Catalog.Get(table)
	if rel == nil {
		return fmt.Errorf("tag: unknown relation %q", table)
	}
	for _, row := range rows {
		if len(row) != rel.Schema.Len() {
			return fmt.Errorf("tag: bad arity for %q", table)
		}
	}
	return nil
}

// attrVertexForIncremental is attrVertexFor usable after Build (the
// attrSeen build-time dedup map is gone by then).
func (t *Graph) attrVertexForIncremental(v relation.Value) bsp.VertexID {
	key := v.Key()
	if id, ok := t.attrVertex[key]; ok {
		return id
	}
	lbl, ok := t.attrKindLbl[key.Kind]
	if !ok {
		lbl = t.G.Symbols.Intern("#attr:" + key.Kind.String())
		t.attrKindLbl[key.Kind] = lbl
	}
	id := t.G.AddVertex(lbl, &AttrData{Value: key})
	t.attrVertex[key] = id
	return id
}

// addAttrByEdge inserts av into the sorted per-label attribute list if absent.
func (t *Graph) addAttrByEdge(lbl bsp.LabelID, av bsp.VertexID) {
	verts := t.attrByEdge[lbl]
	i := sort.Search(len(verts), func(k int) bool { return verts[k] >= av })
	if i < len(verts) && verts[i] == av {
		return
	}
	verts = append(verts, 0)
	copy(verts[i+1:], verts[i:])
	verts[i] = av
	t.attrByEdge[lbl] = verts
}

// DeleteTuple removes a tuple vertex: its edges are deleted in both
// directions and the vertex is marked dead. Attribute vertices are left in
// place even if orphaned (they are harmless: with no edges they never join
// anything). Again a purely local operation.
func (t *Graph) DeleteTuple(v bsp.VertexID) error {
	return t.DeleteBatch([]bsp.VertexID{v})
}

// ValidateDelete checks everything DeleteBatch would reject — every id
// names a live tuple vertex, none appears twice — without mutating
// anything. DeleteBatch runs it before touching the graph, and the
// serving layer's write coalescer runs it up front (alongside
// ValidateInsert) so a bad op is skipped while the rest of a coalesced
// batch proceeds on the shared clone, never tearing it.
func (t *Graph) ValidateDelete(vs []bsp.VertexID) error {
	for _, v := range vs {
		if v < 0 || int(v) >= t.G.NumVertices() {
			return fmt.Errorf("tag: no vertex %d", v)
		}
		d := t.TupleData(v)
		if d == nil {
			return fmt.Errorf("tag: vertex %d is not a tuple vertex", v)
		}
		if d.Dead {
			return fmt.Errorf("tag: vertex %d already deleted", v)
		}
	}
	seen := make(map[bsp.VertexID]bool, len(vs))
	for _, v := range vs {
		if seen[v] {
			return fmt.Errorf("tag: vertex %d appears twice in batch", v)
		}
		seen[v] = true
	}
	return nil
}

// DeleteBatch removes many tuple vertices with a single Thaw/Freeze
// cycle (the batched counterpart of DeleteTuple). The whole batch is
// validated before any mutation, so on error the graph is unchanged.
func (t *Graph) DeleteBatch(vs []bsp.VertexID) error {
	if err := t.ValidateDelete(vs); err != nil {
		return err
	}
	if len(vs) == 0 {
		return nil
	}

	t.G.Thaw()
	for _, v := range vs {
		d := t.TupleData(v)
		rel := t.Catalog.Get(d.Table)
		for i, col := range rel.Schema.Columns {
			key := d.Table + "." + strings.ToLower(col.Name)
			if !t.materialized[key] || d.Row[i].IsNull() {
				continue
			}
			av, ok := t.attrVertex[d.Row[i].Key()]
			if !ok {
				continue
			}
			lbl := t.edgeLabel[key]
			t.G.RemoveEdge(v, av, lbl)
			t.G.RemoveEdge(av, v, lbl)
		}
		// Replace the payload instead of mutating it in place: the same
		// TupleData may still be read by an older graph generation this
		// graph was cloned from.
		nd := *d
		nd.Dead = true
		t.G.SetData(v, &nd)

		// Drop the vertex from the per-relation list and the row from the
		// catalog copy (first matching row; duplicates are interchangeable).
		verts := t.tupleVerts[d.Table]
		for i, tv := range verts {
			if tv == v {
				t.tupleVerts[d.Table] = append(verts[:i:i], verts[i+1:]...)
				break
			}
		}
		for i, row := range rel.Tuples {
			if tuplesEqual(row, d.Row) {
				rel.Tuples = append(rel.Tuples[:i:i], rel.Tuples[i+1:]...)
				break
			}
		}
		if t.deltaDeletes != nil {
			t.deltaDeletes[d.Table]++
		}
	}
	t.G.Freeze()
	if t.deltaDirty != nil {
		t.noteFrozenDirty()
	}
	return nil
}

func tuplesEqual(a, b relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
