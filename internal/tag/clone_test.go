package tag

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// snapshot captures every observable structural property of a graph that
// clone mutations must not disturb.
type graphSnapshot struct {
	vertices, edges int
	tuples          map[string]int
	attrs           int
	adjacency       map[bsp.VertexID][]bsp.Edge
}

func snap(g *Graph) graphSnapshot {
	s := graphSnapshot{
		vertices:  g.G.NumVertices(),
		edges:     g.G.NumEdges(),
		tuples:    map[string]int{},
		attrs:     g.NumAttrVertices(),
		adjacency: map[bsp.VertexID][]bsp.Edge{},
	}
	for _, name := range g.Catalog.Names() {
		s.tuples[name] = len(g.TupleVertices(name))
	}
	for v := 0; v < g.G.NumVertices(); v++ {
		s.adjacency[bsp.VertexID(v)] = append([]bsp.Edge(nil), g.G.Edges(bsp.VertexID(v))...)
	}
	return s
}

func (s graphSnapshot) diff(t *testing.T, g *Graph) {
	t.Helper()
	if g.G.NumVertices() != s.vertices {
		t.Errorf("original vertex count changed: %d -> %d", s.vertices, g.G.NumVertices())
	}
	if g.G.NumEdges() != s.edges {
		t.Errorf("original edge count changed: %d -> %d", s.edges, g.G.NumEdges())
	}
	if g.NumAttrVertices() != s.attrs {
		t.Errorf("original attr count changed: %d -> %d", s.attrs, g.NumAttrVertices())
	}
	for name, n := range s.tuples {
		if got := len(g.TupleVertices(name)); got != n {
			t.Errorf("original %s tuple vertices changed: %d -> %d", name, n, got)
		}
	}
	for v, edges := range s.adjacency {
		got := g.G.Edges(v)
		if len(got) != len(edges) {
			t.Errorf("original vertex %d adjacency length changed: %d -> %d", v, len(edges), len(got))
			continue
		}
		for i := range edges {
			if got[i] != edges[i] {
				t.Errorf("original vertex %d edge %d changed: %v -> %v", v, i, edges[i], got[i])
				break
			}
		}
	}
}

// TestCloneInsertLeavesOriginalUntouched: inserting into a clone must not
// perturb any structure of the original graph, and the clone must answer
// lookups over both old and new data.
func TestCloneInsertLeavesOriginalUntouched(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	before := snap(g)

	next := g.Clone()
	rows := []relation.Tuple{
		{relation.Int(3), relation.Str("JAPAN")},
		{relation.Int(4), relation.Str("USA")}, // shares an existing attribute vertex
	}
	if _, err := next.InsertBatch("nation", rows); err != nil {
		t.Fatal(err)
	}

	before.diff(t, g)
	if got := len(next.TupleVertices("nation")); got != 4 {
		t.Errorf("clone nation tuple vertices = %d, want 4", got)
	}
	if g.Catalog.Get("nation").Len() != 2 {
		t.Errorf("original catalog rows = %d, want 2", g.Catalog.Get("nation").Len())
	}
	if next.Catalog.Get("nation").Len() != 4 {
		t.Errorf("clone catalog rows = %d, want 4", next.Catalog.Get("nation").Len())
	}
	// The shared value "USA" must now have one more edge in the clone only.
	avOld, _ := g.AttrVertexOf(relation.Str("USA"))
	avNew, _ := next.AttrVertexOf(relation.Str("USA"))
	if d := len(next.G.Edges(avNew)) - len(g.G.Edges(avOld)); d != 1 {
		t.Errorf("USA degree delta = %d, want 1", d)
	}
	// The brand-new value exists only in the clone.
	if _, ok := g.AttrVertexOf(relation.Str("JAPAN")); ok {
		t.Error("JAPAN leaked into the original's attribute index")
	}
	if _, ok := next.AttrVertexOf(relation.Str("JAPAN")); !ok {
		t.Error("JAPAN missing from the clone's attribute index")
	}
}

// TestCloneDeleteLeavesOriginalUntouched: deletes in a clone must not
// mark the original's payloads dead or unlink its edges.
func TestCloneDeleteLeavesOriginalUntouched(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	before := snap(g)
	victim := g.TupleVertices("orders")[0]

	next := g.Clone()
	if err := next.DeleteBatch([]bsp.VertexID{victim}); err != nil {
		t.Fatal(err)
	}

	before.diff(t, g)
	if d := g.TupleData(victim); d == nil || d.Dead {
		t.Error("original payload was marked dead through the clone")
	}
	if d := next.TupleData(victim); d == nil || !d.Dead {
		t.Error("clone payload should be dead")
	}
	if got, want := len(next.TupleVertices("orders")), len(g.TupleVertices("orders"))-1; got != want {
		t.Errorf("clone orders tuple vertices = %d, want %d", got, want)
	}
	if g.Catalog.Get("orders").Len() != 2 || next.Catalog.Get("orders").Len() != 1 {
		t.Errorf("catalog rows: original %d (want 2), clone %d (want 1)",
			g.Catalog.Get("orders").Len(), next.Catalog.Get("orders").Len())
	}
}

// TestCloneChain: successive generations cloned from clones stay
// independent (the generation chain the serving layer maintains).
func TestCloneChain(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	gens := []*Graph{g}
	for i := 0; i < 5; i++ {
		next := gens[len(gens)-1].Clone()
		if _, err := next.InsertBatch("customer",
			[]relation.Tuple{{relation.Int(int64(100 + i)), relation.Int(1)}}); err != nil {
			t.Fatal(err)
		}
		gens = append(gens, next)
	}
	for i, gen := range gens {
		if got, want := gen.Catalog.Get("customer").Len(), 2+i; got != want {
			t.Errorf("generation %d sees %d customer rows, want %d", i, got, want)
		}
		if got, want := len(gen.TupleVertices("customer")), 2+i; got != want {
			t.Errorf("generation %d has %d customer tuple vertices, want %d", i, got, want)
		}
	}
}
