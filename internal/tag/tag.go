// Package tag implements the Tuple-Attribute Graph (TAG) encoding of a
// relational database from §3 of the paper.
//
// The encoding creates one tuple vertex per tuple (labeled by its relation
// name) and one attribute vertex per distinct value of the active domain
// (shared across relations and attribute names). Every occurrence of value
// a in attribute A of an R-tuple t becomes an undirected edge labeled
// "R.A" between t's vertex and a's vertex. The resulting graph is
// bipartite, linear in the database size, and query-independent.
//
// Attribute vertices double as indexes: the tuples joining through a value
// are exactly the neighbors of its vertex. A materialization policy can
// exclude attributes that are poor vertex candidates (floats, long text),
// whose values then live only inside tuple vertices, mirroring §3's
// discussion.
package tag

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// TupleData is the payload of a tuple vertex: the relation it belongs to
// and the stored tuple (§3 step 1).
type TupleData struct {
	Table string
	Row   relation.Tuple
	Dead  bool // set by DeleteTuple; dead vertices take no part in queries
}

// Size implements the bsp payload sizing hook.
func (d *TupleData) Size() int { return len(d.Table) + d.Row.Size() + 1 }

// AttrData is the payload of an attribute vertex: the (canonicalized)
// domain value it represents (§3 step 2).
type AttrData struct {
	Value relation.Value
}

// Size implements the bsp payload sizing hook.
func (d *AttrData) Size() int { return d.Value.Size() }

// Policy decides whether a column's values are materialized as attribute
// vertices. Non-materialized values are stored only in tuple vertices.
type Policy func(table string, col relation.Column) bool

// MaterializeAll materializes every column.
func MaterializeAll(string, relation.Column) bool { return true }

// DefaultPolicy materializes everything except floats and free-text
// columns (names containing "comment"), following §3 and §8.2.
func DefaultPolicy(table string, col relation.Column) bool {
	if col.Kind == relation.KindFloat {
		return false
	}
	return !strings.Contains(strings.ToLower(col.Name), "comment")
}

// Graph is a TAG encoding of a catalog, wrapping a bsp.Graph plus the
// lookup structures queries need (edge-label ids, per-relation tuple
// vertex lists, per-edge-label attribute vertex lists).
type Graph struct {
	G       *bsp.Graph
	Catalog *relation.Catalog

	// Aggregator is the global aggregation vertex of §2: its id is known
	// to every vertex, and global/scalar aggregation queries send it
	// their partial results (the bottleneck §8.3 observes on GA queries).
	Aggregator bsp.VertexID

	policy       Policy
	attrVertex   map[relation.Value]bsp.VertexID
	tupleVerts   map[string][]bsp.VertexID // lower(table) -> vertex ids
	tupleLabel   map[string]bsp.LabelID    // lower(table) -> vertex label
	attrByEdge   map[bsp.LabelID][]bsp.VertexID
	attrSeen     map[bsp.LabelID]map[bsp.VertexID]struct{}
	edgeLabel    map[string]bsp.LabelID // lower(table.column) -> edge label
	materialized map[string]bool        // lower(table.column)
	attrKindLbl  map[relation.Kind]bsp.LabelID

	// Delta tracking for incremental query maintenance. A Clone records
	// the parent's vertex-ID high-water mark: vertex IDs are assigned
	// monotonically, so every vertex this graph created after the Clone
	// has ID >= deltaBase, and a tuple vertex with ID < deltaBase
	// existed (live) in the parent generation unless a delete touched
	// it. InsertBatch/DeleteBatch maintain the per-table counters and
	// the batch-touched vertex set. deltaBase < 0 means tracking is off
	// (a freshly Built graph).
	deltaBase    int
	deltaInserts map[string]int        // lower(table) -> rows inserted since Clone
	deltaDeletes map[string]int        // lower(table) -> rows deleted since Clone
	deltaDirty   map[bsp.VertexID]bool // adjacency-touched vertices since Clone
}

// Build encodes every relation in the catalog. A nil policy means
// DefaultPolicy.
func Build(cat *relation.Catalog, policy Policy) (*Graph, error) {
	if policy == nil {
		policy = DefaultPolicy
	}
	t := &Graph{
		G:            bsp.NewGraph(),
		Catalog:      cat,
		policy:       policy,
		attrVertex:   make(map[relation.Value]bsp.VertexID),
		tupleVerts:   make(map[string][]bsp.VertexID),
		tupleLabel:   make(map[string]bsp.LabelID),
		attrByEdge:   make(map[bsp.LabelID][]bsp.VertexID),
		attrSeen:     make(map[bsp.LabelID]map[bsp.VertexID]struct{}),
		edgeLabel:    make(map[string]bsp.LabelID),
		materialized: make(map[string]bool),
		attrKindLbl:  make(map[relation.Kind]bsp.LabelID),
		deltaBase:    -1,
	}
	t.Aggregator = t.G.AddVertex(t.G.Symbols.Intern("#aggregator"), nil)
	for _, name := range cat.Names() {
		if err := t.addRelation(cat.Get(name)); err != nil {
			return nil, err
		}
	}
	t.G.Freeze()
	for lbl, verts := range t.attrByEdge {
		sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
		t.attrByEdge[lbl] = verts
	}
	t.attrSeen = nil // build-time only
	return t, nil
}

func (t *Graph) addRelation(r *relation.Relation) error {
	table := strings.ToLower(r.Name)
	if _, dup := t.tupleLabel[table]; dup {
		return fmt.Errorf("tag: relation %s already encoded", r.Name)
	}
	vLbl := t.G.Symbols.Intern(table)
	t.tupleLabel[table] = vLbl

	// Intern edge labels and record materialization choices up front, so
	// the planner can consult them even for empty relations.
	labels := make([]bsp.LabelID, r.Schema.Len())
	mat := make([]bool, r.Schema.Len())
	for i, col := range r.Schema.Columns {
		key := table + "." + strings.ToLower(col.Name)
		labels[i] = t.G.Symbols.Intern(key)
		t.edgeLabel[key] = labels[i]
		mat[i] = t.policy(r.Name, col)
		t.materialized[key] = mat[i]
	}

	for _, row := range r.Tuples {
		tv := t.G.AddVertex(vLbl, &TupleData{Table: table, Row: row})
		t.tupleVerts[table] = append(t.tupleVerts[table], tv)
		for i, v := range row {
			if !mat[i] || v.IsNull() {
				continue
			}
			av := t.attrVertexFor(v)
			t.G.AddUndirectedEdge(tv, av, labels[i])
			t.noteAttrEdge(labels[i], av)
		}
	}
	return nil
}

// attrVertexFor returns the (shared) attribute vertex for value v,
// creating it on first use. Identity is the canonical Key of the value, so
// e.g. 2 and 2.0 share a vertex (one vertex per active-domain value).
func (t *Graph) attrVertexFor(v relation.Value) bsp.VertexID {
	key := v.Key()
	if id, ok := t.attrVertex[key]; ok {
		return id
	}
	lbl, ok := t.attrKindLbl[key.Kind]
	if !ok {
		lbl = t.G.Symbols.Intern("#attr:" + key.Kind.String())
		t.attrKindLbl[key.Kind] = lbl
	}
	id := t.G.AddVertex(lbl, &AttrData{Value: key})
	t.attrVertex[key] = id
	return id
}

func (t *Graph) noteAttrEdge(lbl bsp.LabelID, av bsp.VertexID) {
	seen := t.attrSeen[lbl]
	if seen == nil {
		seen = make(map[bsp.VertexID]struct{})
		t.attrSeen[lbl] = seen
	}
	if _, ok := seen[av]; ok {
		return
	}
	seen[av] = struct{}{}
	t.attrByEdge[lbl] = append(t.attrByEdge[lbl], av)
}

// EdgeLabel returns the interned id of the "table.column" edge label.
func (t *Graph) EdgeLabel(table, column string) (bsp.LabelID, bool) {
	id, ok := t.edgeLabel[strings.ToLower(table)+"."+strings.ToLower(column)]
	return id, ok
}

// TupleLabel returns the vertex label of a relation's tuple vertices.
func (t *Graph) TupleLabel(table string) (bsp.LabelID, bool) {
	id, ok := t.tupleLabel[strings.ToLower(table)]
	return id, ok
}

// TupleVertices returns the tuple vertex ids of a relation.
func (t *Graph) TupleVertices(table string) []bsp.VertexID {
	return t.tupleVerts[strings.ToLower(table)]
}

// AttrVertices returns the attribute vertices incident to at least one
// edge with the given label — i.e. the distinct values of that column.
func (t *Graph) AttrVertices(label bsp.LabelID) []bsp.VertexID {
	return t.attrByEdge[label]
}

// AttrVertexOf returns the attribute vertex representing value v, if
// materialized.
func (t *Graph) AttrVertexOf(v relation.Value) (bsp.VertexID, bool) {
	id, ok := t.attrVertex[v.Key()]
	return id, ok
}

// Materialized reports whether table.column values have attribute vertices.
func (t *Graph) Materialized(table, column string) bool {
	return t.materialized[strings.ToLower(table)+"."+strings.ToLower(column)]
}

// TupleData returns the payload of a tuple vertex (nil for attribute
// vertices).
func (t *Graph) TupleData(v bsp.VertexID) *TupleData {
	d, _ := t.G.Data(v).(*TupleData)
	return d
}

// AttrValue returns the value of an attribute vertex and whether v is one.
func (t *Graph) AttrValue(v bsp.VertexID) (relation.Value, bool) {
	if d, ok := t.G.Data(v).(*AttrData); ok {
		return d.Value, true
	}
	return relation.Null, false
}

// IsAttr reports whether v is an attribute vertex.
func (t *Graph) IsAttr(v bsp.VertexID) bool {
	_, ok := t.G.Data(v).(*AttrData)
	return ok
}

// NumTupleVertices returns the total tuple vertex count.
func (t *Graph) NumTupleVertices() int {
	n := 0
	for _, vs := range t.tupleVerts {
		n += len(vs)
	}
	return n
}

// NumAttrVertices returns the distinct attribute vertex count.
func (t *Graph) NumAttrVertices() int { return len(t.attrVertex) }

// ByteSize estimates the loaded size of the TAG representation, the
// Figure 14 measure. Attribute vertices are the original data, not a
// redundant index (§3), so this is the whole footprint.
func (t *Graph) ByteSize() int { return t.G.ByteSize() }

// String summarizes the encoding.
func (t *Graph) String() string {
	return fmt.Sprintf("TAG{%d tuple vertices, %d attribute vertices, %d edges}",
		t.NumTupleVertices(), t.NumAttrVertices(), t.G.NumEdges()/2)
}

// DeltaTracked reports whether this graph is a Clone carrying per-batch
// delta bookkeeping for incremental query maintenance.
func (t *Graph) DeltaTracked() bool { return t.deltaBase >= 0 }

// DeltaBase returns the vertex-ID boundary recorded at Clone: vertices
// with ID < DeltaBase existed in the parent generation, vertices with
// ID >= DeltaBase were created by this clone's write batches. Only
// meaningful when DeltaTracked.
func (t *Graph) DeltaBase() bsp.VertexID { return bsp.VertexID(t.deltaBase) }

// DeltaInserts returns the number of rows inserted into table since the
// Clone (0 when untouched or not tracked).
func (t *Graph) DeltaInserts(table string) int {
	return t.deltaInserts[strings.ToLower(table)]
}

// DeltaDeletes returns the number of rows deleted from table since the
// Clone (0 when untouched or not tracked).
func (t *Graph) DeltaDeletes(table string) int {
	return t.deltaDeletes[strings.ToLower(table)]
}

// DeltaTables returns the lower-cased names of every table a write
// batch has touched (insert or delete) since the Clone, sorted.
func (t *Graph) DeltaTables() []string {
	seen := make(map[string]bool, len(t.deltaInserts)+len(t.deltaDeletes))
	for tb := range t.deltaInserts {
		seen[tb] = true
	}
	for tb := range t.deltaDeletes {
		seen[tb] = true
	}
	out := make([]string, 0, len(seen))
	for tb := range seen {
		out = append(out, tb)
	}
	sort.Strings(out)
	return out
}

// DirtyVertices returns, sorted, every vertex whose adjacency the
// clone's write batches touched: new tuple vertices, the attribute
// vertices they attached to, and the endpoints of deleted edges. This
// is the union of the underlying bsp.Graph's per-Freeze dirty sets,
// accumulated across every InsertBatch/DeleteBatch since Clone.
func (t *Graph) DirtyVertices() []bsp.VertexID {
	out := make([]bsp.VertexID, 0, len(t.deltaDirty))
	for v := range t.deltaDirty {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// noteFrozenDirty folds the bsp layer's last-Freeze dirty set into the
// clone's accumulated batch-touched set.
func (t *Graph) noteFrozenDirty() {
	if t.deltaDirty == nil {
		return
	}
	for _, v := range t.G.LastFrozenDirty() {
		t.deltaDirty[v] = true
	}
}
