package tag

import (
	"repro/internal/bsp"
	"repro/internal/relation"
)

// Clone returns a copy-on-write snapshot of a frozen TAG graph, suitable
// for building the next graph generation while readers keep querying the
// receiver. The underlying bsp.Graph is cloned copy-on-write (see
// bsp.Graph.Clone), the catalog snapshot shares schemas and tuples, and
// the lookup maps are copied shallowly: their slice values are capped at
// the snapshot length so mutation in the clone always reallocates
// instead of writing into memory the original can see.
//
// The receiver must stay frozen while the clone is alive; incremental
// maintenance (InsertBatch/DeleteBatch) may then run freely on the
// clone.
func (t *Graph) Clone() *Graph {
	nt := &Graph{
		G:            t.G.Clone(),
		Catalog:      t.Catalog.Clone(),
		Aggregator:   t.Aggregator,
		policy:       t.policy,
		attrVertex:   make(map[relation.Value]bsp.VertexID, len(t.attrVertex)),
		tupleVerts:   make(map[string][]bsp.VertexID, len(t.tupleVerts)),
		tupleLabel:   t.tupleLabel, // never mutated after Build
		attrByEdge:   make(map[bsp.LabelID][]bsp.VertexID, len(t.attrByEdge)),
		edgeLabel:    t.edgeLabel,    // never mutated after Build
		materialized: t.materialized, // never mutated after Build
		attrKindLbl:  make(map[relation.Kind]bsp.LabelID, len(t.attrKindLbl)),

		// Arm delta tracking: everything the clone creates sits at
		// vertex IDs >= this boundary, which is what lets incremental
		// query maintenance split any relation into its old and delta
		// tuples by a single ID comparison.
		deltaBase:    t.G.NumVertices(),
		deltaInserts: make(map[string]int),
		deltaDeletes: make(map[string]int),
		deltaDirty:   make(map[bsp.VertexID]bool),
	}
	for k, v := range t.attrVertex {
		nt.attrVertex[k] = v
	}
	for k, v := range t.tupleVerts {
		nt.tupleVerts[k] = v[:len(v):len(v)]
	}
	for k, v := range t.attrByEdge {
		nt.attrByEdge[k] = v[:len(v):len(v)]
	}
	for k, v := range t.attrKindLbl {
		nt.attrKindLbl[k] = v
	}
	return nt
}
