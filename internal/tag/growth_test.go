package tag

import (
	"fmt"
	"testing"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// countProgram is a two-hop traversal: each seed tuple vertex messages
// its attribute neighbors, and each attribute vertex counts the tuples
// that reached it into an aggregator. Every live row contributes
// exactly its materialized non-null column count.
type countProgram struct{}

func (countProgram) Compute(ctx *bsp.Context, v bsp.VertexID, inbox []bsp.Message) {
	if ctx.Step() == 0 {
		for _, e := range ctx.Graph().Edges(v) {
			ctx.Send(v, e.To, nil)
		}
		return
	}
	ctx.AddInt("reached", int64(len(inbox)))
}

func (countProgram) BeforeSuperstep(step int, eng *bsp.Engine) bool { return step < 2 }

// TestEngineRunAcrossInsertBatches interleaves tag.InsertBatch with
// Engine.Run on the same engine: the engine's sparse inboxes must
// absorb vertices created after the engine was built, with messages
// reaching the new vertices and the accounting growing exactly with
// the batch. The engine runs multi-worker, so -race checks the
// sharded compute/merge stages while the graph grows between runs.
func TestEngineRunAcrossInsertBatches(t *testing.T) {
	cat := relation.NewCatalog()
	rel := relation.New("ev", relation.MustSchema(
		relation.Col("k", relation.KindInt),
		relation.Col("grp", relation.KindString)))
	for i := 0; i < 40; i++ {
		rel.MustAppend(relation.Int(int64(i)), relation.Str(fmt.Sprintf("g%d", i%4)))
	}
	cat.MustAdd(rel)
	cat.SetPrimaryKey("ev", "k")

	g, err := Build(cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := bsp.NewEngine(g.G, bsp.Options{Workers: 4})

	// Each row has two materialized non-null columns, so each live row
	// contributes two attribute arrivals.
	edgesPerRow := 2
	rows := 40
	key := int64(1000)
	for round := 0; round < 5; round++ {
		eng.Run(countProgram{}, g.TupleVertices("ev"))
		if got, want := eng.AggInt("reached"), int64(rows*edgesPerRow); got != want {
			t.Fatalf("round %d: %d attribute arrivals, want %d", round, got, want)
		}

		batch := make([]relation.Tuple, 15)
		for i := range batch {
			batch[i] = relation.Tuple{relation.Int(key), relation.Str(fmt.Sprintf("g%d", key%4))}
			key++
		}
		if _, err := g.InsertBatch("ev", batch); err != nil {
			t.Fatal(err)
		}
		rows += len(batch)
	}

	// The sparse plane grew with the frontier, not the graph: idle
	// residency stays bounded (trimmed pools) no matter how many
	// batches landed. (On graphs this small the dense plane is cheap
	// too — the asymptotic comparison lives in internal/bsp's
	// TestInboxResidencyIsSparse.)
	eng.Run(countProgram{}, g.TupleVertices("ev"))
	if sparse := eng.InboxBytes(); sparse > 64<<10 {
		t.Errorf("idle sparse residency %d B not bounded by the pool budget", sparse)
	}
}
