package tag

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/relation"
)

// snapshotCatalog builds a catalog exercising every snapshot-relevant
// shape: duplicate rows, nulls, non-materialized columns (floats and a
// comment column under DefaultPolicy), an empty relation, and keys.
func snapshotCatalog() *relation.Catalog {
	c := relation.NewCatalog()
	items := relation.New("Items", relation.MustSchema(
		relation.Col("id", relation.KindInt),
		relation.Col("name", relation.KindString),
		relation.Col("price", relation.KindFloat),
		relation.Col("comment", relation.KindString),
	))
	items.Tuples = []relation.Tuple{
		{relation.Int(1), relation.Str("a"), relation.Float(1.5), relation.Str("c1")},
		{relation.Int(2), relation.Str("b"), relation.Null, relation.Str("c2")},
		{relation.Int(2), relation.Str("b"), relation.Null, relation.Str("c2")}, // duplicate
		{relation.Int(3), relation.Null, relation.Float(-0.5), relation.Str("c3")},
	}
	c.MustAdd(items)
	groups := relation.New("groups", relation.MustSchema(
		relation.Col("gid", relation.KindInt),
		relation.Col("item", relation.KindInt),
		relation.Col("flag", relation.KindBool),
		relation.Col("day", relation.KindDate),
	))
	groups.Tuples = []relation.Tuple{
		{relation.Int(10), relation.Int(1), relation.Bool(true), relation.Date(19000)},
		{relation.Int(10), relation.Int(2), relation.Bool(false), relation.Date(19001)},
	}
	c.MustAdd(groups)
	c.MustAdd(relation.New("empty", relation.MustSchema(relation.Col("x", relation.KindInt))))
	c.SetPrimaryKey("items", "id")
	c.AddForeignKey(relation.ForeignKey{Table: "groups", Column: "item", RefTable: "items", RefColumn: "id"})
	return c
}

// graphsStructurallyEqual asserts every queryable and maintainable
// aspect of two TAG graphs matches: ids, labels, payloads, adjacency,
// symbols, and all derived lookup structures.
func graphsStructurallyEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.G.NumVertices() != want.G.NumVertices() || got.G.NumEdges() != want.G.NumEdges() {
		t.Fatalf("shape: got %d/%d vertices/edges, want %d/%d",
			got.G.NumVertices(), got.G.NumEdges(), want.G.NumVertices(), want.G.NumEdges())
	}
	if got.Aggregator != want.Aggregator {
		t.Fatalf("aggregator: got %d, want %d", got.Aggregator, want.Aggregator)
	}
	if got.G.Symbols.Len() != want.G.Symbols.Len() {
		t.Fatalf("symbols: got %d, want %d", got.G.Symbols.Len(), want.G.Symbols.Len())
	}
	for id := 1; id <= want.G.Symbols.Len(); id++ {
		if g, w := got.G.Symbols.Name(bsp.LabelID(id)), want.G.Symbols.Name(bsp.LabelID(id)); g != w {
			t.Fatalf("symbol %d: got %q, want %q", id, g, w)
		}
	}
	for v := 0; v < want.G.NumVertices(); v++ {
		id := bsp.VertexID(v)
		if got.G.Label(id) != want.G.Label(id) {
			t.Fatalf("vertex %d label: got %d, want %d", v, got.G.Label(id), want.G.Label(id))
		}
		if !reflect.DeepEqual(got.G.Data(id), want.G.Data(id)) {
			t.Fatalf("vertex %d payload: got %+v, want %+v", v, got.G.Data(id), want.G.Data(id))
		}
		ge, we := got.G.Edges(id), want.G.Edges(id)
		if len(ge) != len(we) || (len(we) > 0 && !reflect.DeepEqual(ge, we)) {
			t.Fatalf("vertex %d adjacency: got %v, want %v", v, ge, we)
		}
	}
	if !reflect.DeepEqual(got.tupleVerts, want.tupleVerts) {
		t.Fatalf("tupleVerts: got %v, want %v", got.tupleVerts, want.tupleVerts)
	}
	if !reflect.DeepEqual(got.tupleLabel, want.tupleLabel) {
		t.Fatalf("tupleLabel: got %v, want %v", got.tupleLabel, want.tupleLabel)
	}
	if !reflect.DeepEqual(got.edgeLabel, want.edgeLabel) {
		t.Fatalf("edgeLabel: got %v, want %v", got.edgeLabel, want.edgeLabel)
	}
	if !reflect.DeepEqual(got.materialized, want.materialized) {
		t.Fatalf("materialized: got %v, want %v", got.materialized, want.materialized)
	}
	if !reflect.DeepEqual(got.attrVertex, want.attrVertex) {
		t.Fatalf("attrVertex: got %v, want %v", got.attrVertex, want.attrVertex)
	}
	if !reflect.DeepEqual(got.attrByEdge, want.attrByEdge) {
		t.Fatalf("attrByEdge: got %v, want %v", got.attrByEdge, want.attrByEdge)
	}
	if !reflect.DeepEqual(got.attrKindLbl, want.attrKindLbl) {
		t.Fatalf("attrKindLbl: got %v, want %v", got.attrKindLbl, want.attrKindLbl)
	}
	if !reflect.DeepEqual(got.Catalog.Names(), want.Catalog.Names()) {
		t.Fatalf("catalog names: got %v, want %v", got.Catalog.Names(), want.Catalog.Names())
	}
	for _, name := range want.Catalog.Names() {
		if !reflect.DeepEqual(got.Catalog.Get(name).Tuples, want.Catalog.Get(name).Tuples) {
			t.Fatalf("catalog %s rows differ", name)
		}
	}
}

func snapshotBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTrip: a built graph — including post-build inserts
// and deletes that create dead vertices, orphaned attribute entries,
// and catalog/payload row-order divergence — survives snapshot/load
// with full structural equality, and the encoding is deterministic.
func TestSnapshotRoundTrip(t *testing.T) {
	g, err := Build(snapshotCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate: insert rows (new and duplicate values), then delete the
	// FIRST duplicate vertex — after this, catalog row order and live
	// payload order for "items" diverge positionally, and the value-2
	// attribute entries for items.id stay in attrByEdge even where
	// orphaned.
	if _, err := g.InsertBatch("items", []relation.Tuple{
		{relation.Int(9), relation.Str("z"), relation.Float(2.5), relation.Str("c9")},
	}); err != nil {
		t.Fatal(err)
	}
	dups := g.TupleVertices("items")
	if err := g.DeleteBatch([]bsp.VertexID{dups[1], dups[3]}); err != nil {
		t.Fatal(err)
	}

	data := snapshotBytes(t, g)
	if again := snapshotBytes(t, g); !bytes.Equal(data, again) {
		t.Fatal("WriteSnapshot is not deterministic")
	}

	loaded, err := ReadSnapshot(bufio.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	graphsStructurallyEqual(t, loaded, g)

	// The loaded graph keeps maintaining identically: the same insert on
	// both sides lands on the same vertex ids and leaves the graphs equal.
	rows := []relation.Tuple{{relation.Int(77), relation.Str("w"), relation.Null, relation.Str("cw")}}
	va, err := g.InsertBatch("items", rows)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := loaded.InsertBatch("items", rows)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(va, vb) {
		t.Fatalf("post-load insert ids: got %v, want %v", vb, va)
	}
	graphsStructurallyEqual(t, loaded, g)
}

// TestSnapshotCorruption: torn, bit-flipped, or mislabeled input is
// refused — never half-loaded.
func TestSnapshotCorruption(t *testing.T) {
	g, err := Build(snapshotCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	data := snapshotBytes(t, g)

	if _, err := ReadSnapshot(bufio.NewReader(bytes.NewReader(data[:len(data)-4]))); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("truncated err = %v, want ErrCorrupt", err)
	}
	// Dropping the entire end frame must also fail: a prefix that parses
	// is still not a complete image. Find the end frame's start by
	// scanning: it is the last frame.
	for cut := len(data) - 1; cut > 0; cut-- {
		if n, _ := codec.ScanValidPrefix(bytes.NewReader(data[:cut])); n == int64(cut) {
			if _, err := ReadSnapshot(bufio.NewReader(bytes.NewReader(data[:cut]))); err == nil {
				t.Fatal("snapshot prefix without end marker loaded")
			}
			break
		}
	}
	for _, off := range []int{10, len(data) / 2, len(data) - 10} {
		flipped := append([]byte(nil), data...)
		flipped[off] ^= 0xff
		if _, err := ReadSnapshot(bufio.NewReader(bytes.NewReader(flipped))); err == nil {
			t.Fatalf("bit flip at %d loaded cleanly", off)
		}
	}
	if _, err := ReadSnapshot(bufio.NewReader(bytes.NewReader(nil))); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("empty err = %v, want ErrCorrupt", err)
	}
}
