package tag

import (
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/relation"
)

// figure1Catalog reconstructs the Example 3.1 instance: NATION, CUSTOMER
// and ORDER tuples sharing attribute values.
func figure1Catalog() *relation.Catalog {
	cat := relation.NewCatalog()

	nation := relation.New("nation", relation.MustSchema(
		relation.Col("nationkey", relation.KindInt),
		relation.Col("name", relation.KindString)))
	nation.MustAppend(relation.Int(1), relation.Str("USA"))
	nation.MustAppend(relation.Int(2), relation.Str("FRANCE"))
	cat.MustAdd(nation)

	customer := relation.New("customer", relation.MustSchema(
		relation.Col("custkey", relation.KindInt),
		relation.Col("nationkey", relation.KindInt)))
	customer.MustAppend(relation.Int(10), relation.Int(1))
	customer.MustAppend(relation.Int(2), relation.Int(2))
	cat.MustAdd(customer)

	order := relation.New("orders", relation.MustSchema(
		relation.Col("orderkey", relation.KindInt),
		relation.Col("custkey", relation.KindInt),
		relation.Col("odate", relation.KindDate)))
	order.MustAppend(relation.Int(100), relation.Int(10), relation.DateOf(2020, 1, 1))
	order.MustAppend(relation.Int(2), relation.Int(2), relation.DateOf(2020, 1, 1))
	cat.MustAdd(order)

	return cat
}

func TestBuildFigure1(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTupleVertices() != 6 {
		t.Errorf("tuple vertices = %d, want 6", g.NumTupleVertices())
	}
	// Distinct values: ints {1,2,10,100}, strings {USA,FRANCE}, one date.
	if g.NumAttrVertices() != 7 {
		t.Errorf("attr vertices = %d, want 7", g.NumAttrVertices())
	}
	// Value 2 is shared by nation_2.nationkey, customer_2.{custkey,nationkey},
	// orders_2.{orderkey,custkey}: one vertex, five undirected edges.
	av, ok := g.AttrVertexOf(relation.Int(2))
	if !ok {
		t.Fatal("value 2 should be materialized")
	}
	if deg := len(g.G.Edges(av)); deg != 5 {
		t.Errorf("attr vertex 2 degree = %d, want 5", deg)
	}
	// Both ORDER tuples share the same date vertex.
	dv, ok := g.AttrVertexOf(relation.DateOf(2020, 1, 1))
	if !ok {
		t.Fatal("date should be materialized")
	}
	lbl, ok := g.EdgeLabel("orders", "odate")
	if !ok {
		t.Fatal("edge label missing")
	}
	if n := g.G.DegreeWithLabel(dv, lbl); n != 2 {
		t.Errorf("date vertex O.odate degree = %d, want 2", n)
	}
}

func TestGraphIsBipartite(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.G.NumVertices(); v++ {
		vid := bsp.VertexID(v)
		isAttr := g.IsAttr(vid)
		for _, e := range g.G.Edges(vid) {
			if g.IsAttr(e.To) == isAttr {
				t.Fatalf("edge %d->%d connects same-kind vertices", v, e.To)
			}
		}
	}
}

func TestEdgeLabelAndLookups(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.EdgeLabel("NATION", "NATIONKEY"); !ok {
		t.Error("case-insensitive edge label lookup failed")
	}
	if _, ok := g.EdgeLabel("nation", "nope"); ok {
		t.Error("bogus column should not resolve")
	}
	if _, ok := g.TupleLabel("customer"); !ok {
		t.Error("tuple label missing")
	}
	if n := len(g.TupleVertices("orders")); n != 2 {
		t.Errorf("orders tuple vertices = %d", n)
	}
	lbl, _ := g.EdgeLabel("customer", "nationkey")
	if n := len(g.AttrVertices(lbl)); n != 2 {
		t.Errorf("distinct customer.nationkey values = %d, want 2", n)
	}
	if !g.Materialized("nation", "name") {
		t.Error("name should be materialized")
	}
}

func TestPolicySkipsFloatsAndComments(t *testing.T) {
	cat := relation.NewCatalog()
	r := relation.New("part", relation.MustSchema(
		relation.Col("partkey", relation.KindInt),
		relation.Col("retailprice", relation.KindFloat),
		relation.Col("comment", relation.KindString)))
	r.MustAppend(relation.Int(1), relation.Float(10.5), relation.Str("blah"))
	cat.MustAdd(r)

	g, err := Build(cat, nil) // DefaultPolicy
	if err != nil {
		t.Fatal(err)
	}
	if g.Materialized("part", "retailprice") {
		t.Error("floats must not be materialized by default")
	}
	if g.Materialized("part", "comment") {
		t.Error("comments must not be materialized by default")
	}
	if !g.Materialized("part", "partkey") {
		t.Error("keys must be materialized")
	}
	if _, ok := g.AttrVertexOf(relation.Float(10.5)); ok {
		t.Error("non-materialized value must have no vertex")
	}
	// The tuple still stores the value.
	tv := g.TupleVertices("part")[0]
	if g.TupleData(tv).Row[1] != relation.Float(10.5) {
		t.Error("tuple vertex must retain non-materialized values")
	}
}

func TestNullsProduceNoEdges(t *testing.T) {
	cat := relation.NewCatalog()
	r := relation.New("t", relation.MustSchema(relation.Col("a", relation.KindInt)))
	r.MustAppend(relation.Null)
	r.MustAppend(relation.Int(5))
	cat.MustAdd(r)
	g, err := Build(cat, MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	if g.G.NumEdges() != 2 { // one undirected edge = 2 directed
		t.Errorf("edges = %d, want 2 (NULL must not link)", g.G.NumEdges())
	}
}

func TestLinearSizeProperty(t *testing.T) {
	// |TAG| is linear in |DB|: vertices <= tuples + total values, edges
	// (undirected) <= total non-null values.
	f := func(rows []uint8) bool {
		cat := relation.NewCatalog()
		r := relation.New("r", relation.MustSchema(
			relation.Col("a", relation.KindInt),
			relation.Col("b", relation.KindInt)))
		for _, x := range rows {
			r.MustAppend(relation.Int(int64(x%16)), relation.Int(int64(x/16)))
		}
		cat.MustAdd(r)
		g, err := Build(cat, MaterializeAll)
		if err != nil {
			return false
		}
		values := 2 * len(rows)
		return g.NumTupleVertices() == len(rows) &&
			g.NumAttrVertices() <= values &&
			g.G.NumEdges() == 2*values
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInsertTuple(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	before := g.NumAttrVertices()
	tv, err := g.InsertTuple("nation", relation.Tuple{relation.Int(3), relation.Str("PERU")})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTupleVertices() != 7 {
		t.Errorf("tuple vertices = %d, want 7", g.NumTupleVertices())
	}
	// Int 3 and PERU are new; vertex count grows by 2.
	if g.NumAttrVertices() != before+2 {
		t.Errorf("attr vertices = %d, want %d", g.NumAttrVertices(), before+2)
	}
	lbl, _ := g.EdgeLabel("nation", "nationkey")
	if !g.G.HasEdgeWithLabel(tv, lbl) {
		t.Error("inserted tuple should have key edge")
	}
	// Catalog stays in sync.
	if g.Catalog.Get("nation").Len() != 3 {
		t.Error("catalog not updated")
	}
	// Inserting an existing value reuses its vertex.
	before = g.NumAttrVertices()
	if _, err := g.InsertTuple("nation", relation.Tuple{relation.Int(1), relation.Str("USA")}); err != nil {
		t.Fatal(err)
	}
	if g.NumAttrVertices() != before {
		t.Error("existing values must reuse attribute vertices")
	}
	if _, err := g.InsertTuple("bogus", relation.Tuple{}); err == nil {
		t.Error("unknown relation should error")
	}
}

func TestDeleteTuple(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	tv := g.TupleVertices("customer")[0]
	if err := g.DeleteTuple(tv); err != nil {
		t.Fatal(err)
	}
	if len(g.G.Edges(tv)) != 0 {
		t.Error("deleted tuple must lose its edges")
	}
	if len(g.TupleVertices("customer")) != 1 {
		t.Error("tuple list not updated")
	}
	if g.Catalog.Get("customer").Len() != 1 {
		t.Error("catalog not updated")
	}
	// Attribute vertex for 10 is now orphaned but harmless.
	av, _ := g.AttrVertexOf(relation.Int(10))
	lbl, _ := g.EdgeLabel("customer", "custkey")
	if g.G.HasEdgeWithLabel(av, lbl) {
		t.Error("attr vertex must lose its back-edge")
	}
	if err := g.DeleteTuple(tv); err == nil {
		t.Error("double delete should error")
	}
	av2, _ := g.AttrVertexOf(relation.Int(1))
	if err := g.DeleteTuple(av2); err == nil {
		t.Error("deleting an attribute vertex should error")
	}
}

func TestByteSizeAndString(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	if g.ByteSize() <= 0 {
		t.Error("byte size should be positive")
	}
	if g.String() == "" {
		t.Error("String should be non-empty")
	}
}
