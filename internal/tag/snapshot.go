package tag

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bsp"
	"repro/internal/codec"
	"repro/internal/relation"
)

// This file is the snapshot codec for a frozen TAG graph: a
// deterministic binary image of everything Build + incremental
// maintenance produced — symbols, materialization choices, catalog,
// vertices (live, dead, and attribute), and the per-label attribute
// index. Edges are NOT serialized: the edge set of a TAG graph is a
// function of its live tuple payloads (one undirected edge per
// materialized non-null cell, §3), so the decoder re-derives them and
// cross-checks the count. That keeps the image near the size of the
// data it encodes instead of the adjacency lists.
//
// Determinism matters: two snapshots of the same state are
// byte-identical (symbols in id order, map keys sorted, vertices in id
// order), so a checkpoint's bytes are a function of the state it
// captures.
//
// Vertex payload rows are encoded inline rather than shared with the
// catalog section by position: after deletes of duplicate rows the
// catalog's row order and the live-vertex payload order can diverge
// (DeleteBatch drops the first value-equal catalog row, not the
// positional one), and WAL suffix records address tuples by vertex id —
// so each vertex must carry exactly its own row.

const (
	snapshotVersion = 1
	// Vertex chunks are bounded so one frame stays far below the codec's
	// frame cap even for SF-scale graphs.
	snapChunkVerts = 64 << 10
	snapChunkBytes = 4 << 20
)

var (
	snapMagic    = []byte("TAGSNAP1")
	snapEndMagic = []byte("TAGSNAPE")
)

// Vertex record tags.
const (
	snapVertNil  = 0 // no payload (the aggregator vertex)
	snapVertLive = 1 // live tuple: inline row
	snapVertDead = 2 // deleted tuple: inline row, Dead set
	snapVertAttr = 3 // attribute vertex: canonical value
)

// WriteSnapshot writes a deterministic binary image of the graph. The
// graph must be frozen (it always is between maintenance cycles; the
// serving layer snapshots a pinned generation, which is immutable).
func (t *Graph) WriteSnapshot(w io.Writer) error {
	if !t.G.Frozen() {
		return fmt.Errorf("tag: snapshot of a thawed graph")
	}

	// Header: magic, version, counts, aggregator id.
	var hdr []byte
	hdr = append(hdr, snapMagic...)
	hdr = binary.AppendUvarint(hdr, snapshotVersion)
	hdr = binary.AppendUvarint(hdr, uint64(t.G.NumVertices()))
	hdr = binary.AppendUvarint(hdr, uint64(t.G.NumEdges()))
	hdr = binary.AppendUvarint(hdr, uint64(t.Aggregator))
	hdr = binary.AppendUvarint(hdr, uint64(t.G.Symbols.Len()))
	hdr = binary.AppendUvarint(hdr, uint64(len(t.attrByEdge)))
	if err := codec.WriteFrame(w, hdr); err != nil {
		return err
	}

	// Symbols, in id order: re-Interning them in order reproduces the
	// exact id assignment.
	var syms []byte
	for id := 1; id <= t.G.Symbols.Len(); id++ {
		syms = codec.AppendString(syms, t.G.Symbols.Name(bsp.LabelID(id)))
	}
	if err := codec.WriteFrame(w, syms); err != nil {
		return err
	}

	// Materialization choices, sorted by column key. This is the policy's
	// decision record — the decoded graph answers Materialized() (and
	// routes future inserts) exactly as the snapshotted one did, even if
	// the process that loads it was built with a different default policy.
	keys := make([]string, 0, len(t.materialized))
	for k := range t.materialized {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var mat []byte
	mat = binary.AppendUvarint(mat, uint64(len(keys)))
	for _, k := range keys {
		mat = codec.AppendString(mat, k)
		b := byte(0)
		if t.materialized[k] {
			b = 1
		}
		mat = append(mat, b)
	}
	if err := codec.WriteFrame(w, mat); err != nil {
		return err
	}

	if err := t.Catalog.WriteBinary(w); err != nil {
		return err
	}

	// Vertices in id order, chunked. Each record: label, tag, payload.
	nv := t.G.NumVertices()
	for start := 0; start < nv; {
		var buf []byte
		n := 0
		for start+n < nv && n < snapChunkVerts && len(buf) < snapChunkBytes {
			v := bsp.VertexID(start + n)
			buf = binary.AppendUvarint(buf, uint64(t.G.Label(v)))
			var err error
			switch d := t.G.Data(v).(type) {
			case nil:
				buf = append(buf, snapVertNil)
			case *TupleData:
				if d.Dead {
					buf = append(buf, snapVertDead)
				} else {
					buf = append(buf, snapVertLive)
				}
				if buf, err = relation.AppendTuple(buf, d.Row); err != nil {
					return err
				}
			case *AttrData:
				buf = append(buf, snapVertAttr)
				if buf, err = relation.AppendValue(buf, d.Value); err != nil {
					return err
				}
			default:
				return fmt.Errorf("tag: vertex %d has unsnapshotable payload %T", v, d)
			}
			n++
		}
		var chunk []byte
		chunk = binary.AppendUvarint(chunk, uint64(start))
		chunk = binary.AppendUvarint(chunk, uint64(n))
		chunk = append(chunk, buf...)
		if err := codec.WriteFrame(w, chunk); err != nil {
			return err
		}
		start += n
	}

	// The attribute index, one frame per edge label in id order. The
	// lists are kept sorted by maintenance, so they delta-encode well —
	// and they must be serialized, not re-derived from live edges:
	// deletes orphan attribute entries without removing them, and a
	// re-derivation would silently drop those, diverging from the
	// maintained state.
	labels := make([]bsp.LabelID, 0, len(t.attrByEdge))
	for lbl := range t.attrByEdge {
		labels = append(labels, lbl)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, lbl := range labels {
		verts := t.attrByEdge[lbl]
		var idx []byte
		idx = binary.AppendUvarint(idx, uint64(lbl))
		idx = binary.AppendUvarint(idx, uint64(len(verts)))
		prev := bsp.VertexID(0)
		for _, v := range verts {
			idx = binary.AppendUvarint(idx, uint64(v-prev))
			prev = v
		}
		if err := codec.WriteFrame(w, idx); err != nil {
			return err
		}
	}

	// End marker with count cross-checks: its presence is the proof the
	// image is complete, so a torn write can never half-load.
	var end []byte
	end = append(end, snapEndMagic...)
	end = binary.AppendUvarint(end, uint64(t.G.NumVertices()))
	end = binary.AppendUvarint(end, uint64(t.G.NumEdges()))
	return codec.WriteFrame(w, end)
}

// ReadSnapshot decodes one WriteSnapshot image from br, rebuilding the
// graph and every derived lookup structure. The result is frozen and
// behaves exactly like the graph that was snapshotted — same vertex
// ids, same symbols, same adjacency, same maintenance behavior. Torn or
// corrupt input surfaces as codec.ErrCorrupt.
func ReadSnapshot(br *bufio.Reader) (*Graph, error) {
	readFrame := func() (*codec.Decoder, error) {
		payload, _, err := codec.ReadFrame(br)
		if err != nil {
			if err == io.EOF {
				return nil, codec.ErrCorrupt
			}
			return nil, err
		}
		return codec.NewDecoder(payload), nil
	}

	// Header.
	d, err := readFrame()
	if err != nil {
		return nil, err
	}
	magic, err := d.Take(len(snapMagic))
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(magic, snapMagic) {
		return nil, fmt.Errorf("tag: not a snapshot (bad magic)")
	}
	ver, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("tag: unsupported snapshot version %d", ver)
	}
	numVerts, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	numEdges, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	aggregator, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	numSyms, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	numAttrLabels, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}

	t := &Graph{
		G:           bsp.NewGraph(),
		Aggregator:  bsp.VertexID(aggregator),
		attrVertex:  make(map[relation.Value]bsp.VertexID),
		tupleVerts:  make(map[string][]bsp.VertexID),
		tupleLabel:  make(map[string]bsp.LabelID),
		attrByEdge:  make(map[bsp.LabelID][]bsp.VertexID),
		edgeLabel:   make(map[string]bsp.LabelID),
		attrKindLbl: make(map[relation.Kind]bsp.LabelID),
		deltaBase:   -1,
	}

	// Symbols: re-Intern in id order.
	if d, err = readFrame(); err != nil {
		return nil, err
	}
	for id := uint64(1); id <= numSyms; id++ {
		name, err := d.Str()
		if err != nil {
			return nil, err
		}
		if got := t.G.Symbols.Intern(name); got != bsp.LabelID(id) {
			return nil, codec.ErrCorrupt
		}
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}

	// Materialization map; the policy closure answers from it, so future
	// incremental inserts follow the snapshotted choices.
	if d, err = readFrame(); err != nil {
		return nil, err
	}
	nmat, err := d.Length()
	if err != nil {
		return nil, err
	}
	t.materialized = make(map[string]bool, nmat)
	for i := 0; i < nmat; i++ {
		key, err := d.Str()
		if err != nil {
			return nil, err
		}
		b, err := d.Byte()
		if err != nil {
			return nil, err
		}
		t.materialized[key] = b == 1
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	mat := t.materialized
	t.policy = func(table string, col relation.Column) bool {
		return mat[strings.ToLower(table)+"."+strings.ToLower(col.Name)]
	}

	cat, err := relation.ReadCatalog(br)
	if err != nil {
		return nil, err
	}
	t.Catalog = cat

	// Labels are a function of the symbol table: tuple labels are the
	// lowercase table names, edge labels the column keys.
	for _, name := range cat.Names() {
		table := strings.ToLower(name)
		lbl := t.G.Symbols.Lookup(table)
		if lbl == bsp.NoLabel {
			return nil, codec.ErrCorrupt
		}
		t.tupleLabel[table] = lbl
	}
	for key := range t.materialized {
		lbl := t.G.Symbols.Lookup(key)
		if lbl == bsp.NoLabel {
			return nil, codec.ErrCorrupt
		}
		t.edgeLabel[key] = lbl
	}

	// Vertices, in id order. AddVertex assigns sequential ids, so
	// re-adding in order reproduces the id space; each decoded id is
	// asserted against the expected one.
	for next := uint64(0); next < numVerts; {
		d, err := readFrame()
		if err != nil {
			return nil, err
		}
		start, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if start != next {
			return nil, codec.ErrCorrupt
		}
		n, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		if n == 0 || start+n > numVerts {
			return nil, codec.ErrCorrupt
		}
		for i := uint64(0); i < n; i++ {
			lblRaw, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			lbl := bsp.LabelID(lblRaw)
			if int(lbl) > t.G.Symbols.Len() {
				return nil, codec.ErrCorrupt
			}
			tagByte, err := d.Byte()
			if err != nil {
				return nil, err
			}
			var data any
			switch tagByte {
			case snapVertNil:
				data = nil
			case snapVertLive, snapVertDead:
				row, err := relation.DecodeTuple(d)
				if err != nil {
					return nil, err
				}
				data = &TupleData{
					Table: t.G.Symbols.Name(lbl),
					Row:   row,
					Dead:  tagByte == snapVertDead,
				}
			case snapVertAttr:
				v, err := relation.DecodeValue(d)
				if err != nil {
					return nil, err
				}
				data = &AttrData{Value: v}
			default:
				return nil, codec.ErrCorrupt
			}
			id := t.G.AddVertex(lbl, data)
			if uint64(id) != start+i {
				return nil, codec.ErrCorrupt
			}
			switch pd := data.(type) {
			case *TupleData:
				if !pd.Dead {
					t.tupleVerts[pd.Table] = append(t.tupleVerts[pd.Table], id)
				}
			case *AttrData:
				t.attrVertex[pd.Value] = id
				t.attrKindLbl[pd.Value.Kind] = lbl
			}
		}
		if err := d.Finish(); err != nil {
			return nil, err
		}
		next = start + n
	}

	// Re-derive the edges from the live tuple payloads: one undirected
	// edge per materialized non-null cell, targeting the cell value's
	// attribute vertex.
	type snapCol struct {
		idx int
		lbl bsp.LabelID
	}
	for _, name := range cat.Names() {
		table := strings.ToLower(name)
		rel := cat.Get(table)
		var cols []snapCol
		for i, col := range rel.Schema.Columns {
			key := table + "." + strings.ToLower(col.Name)
			if t.materialized[key] {
				cols = append(cols, snapCol{idx: i, lbl: t.edgeLabel[key]})
			}
		}
		for _, tv := range t.tupleVerts[table] {
			row := t.TupleData(tv).Row
			for _, c := range cols {
				if c.idx >= len(row) || row[c.idx].IsNull() {
					continue
				}
				av, ok := t.attrVertex[row[c.idx].Key()]
				if !ok {
					return nil, codec.ErrCorrupt
				}
				t.G.AddUndirectedEdge(tv, av, c.lbl)
			}
		}
	}
	t.G.Freeze()

	// The attribute index (attrByEdge survives orphaning, so it is
	// serialized state, not derived).
	for i := uint64(0); i < numAttrLabels; i++ {
		d, err := readFrame()
		if err != nil {
			return nil, err
		}
		lblRaw, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		lbl := bsp.LabelID(lblRaw)
		n, err := d.Length()
		if err != nil {
			return nil, err
		}
		verts := make([]bsp.VertexID, 0, codec.CapHint(n))
		prev := bsp.VertexID(0)
		for j := 0; j < n; j++ {
			delta, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			prev += bsp.VertexID(delta)
			if uint64(prev) >= numVerts {
				return nil, codec.ErrCorrupt
			}
			verts = append(verts, prev)
		}
		if err := d.Finish(); err != nil {
			return nil, err
		}
		t.attrByEdge[lbl] = verts
	}

	// End marker: completeness proof plus count cross-checks.
	if d, err = readFrame(); err != nil {
		return nil, err
	}
	endMagic, err := d.Take(len(snapEndMagic))
	if err != nil {
		return nil, err
	}
	ev, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	ee, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	if !bytes.Equal(endMagic, snapEndMagic) || ev != numVerts || ee != numEdges {
		return nil, codec.ErrCorrupt
	}
	if uint64(t.G.NumVertices()) != numVerts {
		return nil, codec.ErrCorrupt
	}
	if uint64(t.G.NumEdges()) != numEdges {
		// The re-derived edge set disagrees with the snapshotted count:
		// the image is internally inconsistent.
		return nil, codec.ErrCorrupt
	}
	return t, nil
}
