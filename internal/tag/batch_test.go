package tag

import (
	"testing"

	"repro/internal/relation"
)

// TestInsertBatchMatchesSingles: a batch insert must leave the graph in
// exactly the state that repeated single-row inserts produce, with one
// Thaw/Freeze instead of one per row.
func TestInsertBatchMatchesSingles(t *testing.T) {
	rows := []relation.Tuple{
		{relation.Int(200), relation.Int(10), relation.DateOf(2021, 3, 4)},
		{relation.Int(201), relation.Int(2), relation.DateOf(2021, 3, 5)},
		{relation.Int(202), relation.Int(10), relation.DateOf(2021, 3, 4)}, // shares attrs
	}

	single, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := single.InsertTuple("orders", r); err != nil {
			t.Fatal(err)
		}
	}

	batch, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := batch.InsertBatch("orders", rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != len(rows) {
		t.Fatalf("got %d vertex ids, want %d", len(vs), len(rows))
	}
	if !batch.G.Frozen() {
		t.Error("graph must be re-frozen after InsertBatch")
	}

	if single.G.NumVertices() != batch.G.NumVertices() {
		t.Errorf("vertices: singles=%d batch=%d", single.G.NumVertices(), batch.G.NumVertices())
	}
	if single.G.NumEdges() != batch.G.NumEdges() {
		t.Errorf("edges: singles=%d batch=%d", single.G.NumEdges(), batch.G.NumEdges())
	}
	if got, want := len(batch.TupleVertices("orders")), len(single.TupleVertices("orders")); got != want {
		t.Errorf("orders tuple vertices: batch=%d singles=%d", got, want)
	}
	if got, want := batch.Catalog.Get("orders").Len(), single.Catalog.Get("orders").Len(); got != want {
		t.Errorf("catalog rows: batch=%d singles=%d", got, want)
	}
}

func TestInsertBatchValidatesBeforeMutating(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	nv, ne := g.G.NumVertices(), g.G.NumEdges()
	_, err = g.InsertBatch("orders", []relation.Tuple{
		{relation.Int(300), relation.Int(10), relation.DateOf(2021, 1, 1)},
		{relation.Int(301)}, // bad arity
	})
	if err == nil {
		t.Fatal("bad arity must fail")
	}
	if g.G.NumVertices() != nv || g.G.NumEdges() != ne {
		t.Error("failed batch must not mutate the graph")
	}
	if _, err := g.InsertBatch("nosuch", nil); err == nil {
		t.Error("unknown relation must fail")
	}
	if vs, err := g.InsertBatch("orders", nil); err != nil || vs != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", vs, err)
	}
}

func TestDeleteBatch(t *testing.T) {
	g, err := Build(figure1Catalog(), MaterializeAll)
	if err != nil {
		t.Fatal(err)
	}
	orders := g.TupleVertices("orders")
	if len(orders) != 2 {
		t.Fatalf("expected 2 order vertices, got %d", len(orders))
	}
	if err := g.DeleteBatch(orders); err != nil {
		t.Fatal(err)
	}
	if !g.G.Frozen() {
		t.Error("graph must be re-frozen after DeleteBatch")
	}
	if len(g.TupleVertices("orders")) != 0 {
		t.Error("all order vertices should be gone")
	}
	if g.Catalog.Get("orders").Len() != 0 {
		t.Error("catalog rows should be gone")
	}
	// Re-deleting fails upfront and leaves the graph untouched.
	if err := g.DeleteBatch(orders[:1]); err == nil {
		t.Error("double delete must fail")
	}
}
