package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/relation"
	"repro/internal/tag"
)

// queueLen reads the pending write-queue length.
func queueLen(s *Server) int {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	return len(s.writeQ)
}

// holdLeaderUntilQueued blocks the leader path by taking writeMu, runs
// enqueue (which must start n Apply calls), waits until all n ops are
// queued, then releases the lock so one of them drains the queue.
func holdLeaderUntilQueued(t *testing.T, s *Server, n int, enqueue func()) {
	t.Helper()
	s.writeMu.Lock()
	enqueue()
	deadline := time.Now().Add(5 * time.Second)
	for queueLen(s) < n {
		if time.Now().After(deadline) {
			s.writeMu.Unlock()
			t.Fatalf("only %d/%d writes queued", queueLen(s), n)
		}
		time.Sleep(time.Millisecond)
	}
	s.writeMu.Unlock()
}

// TestMaintainerCoalesce: writers that collide share one
// clone→apply→publish cycle — one epoch, one swap, every op applied.
func TestMaintainerCoalesce(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 2})
	maint := srv.Maintainer()

	const writers = 3
	results := make([]*WriteResult, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	holdLeaderUntilQueued(t, srv, writers, func() {
		for i := 0; i < writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = maint.InsertBatch("items", []relation.Tuple{{
					relation.Int(int64(5000 + i)), relation.Str("g0"), relation.Int(1)}})
			}(i)
		}
	})
	wg.Wait()

	for i := 0; i < writers; i++ {
		if errs[i] != nil {
			t.Fatalf("writer %d: %v", i, errs[i])
		}
		if results[i].Epoch != 1 || results[i].Coalesced != writers || len(results[i].Inserted) != 1 {
			t.Errorf("writer %d: result %+v, want epoch 1, coalesced %d, 1 id", i, results[i], writers)
		}
	}
	st := srv.Stats()
	if st.Swaps != 1 || st.WriteOps != writers || st.RowsInserted != writers {
		t.Errorf("stats swaps/ops/rows = %d/%d/%d, want 1/%d/%d",
			st.Swaps, st.WriteOps, st.RowsInserted, writers, writers)
	}
	if got := countItems(t, srv); got != 60+writers {
		t.Errorf("count after coalesced writes = %d, want %d", got, 60+writers)
	}
}

// countItems runs COUNT(*) over items and returns it as an int.
func countItems(t *testing.T, srv *Server) int {
	t.Helper()
	res, err := srv.Query("SELECT COUNT(*) FROM items")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	if _, err := fmt.Sscan(res.Rows.Tuples[0][0].String(), &n); err != nil {
		t.Fatalf("unparseable count %v: %v", res.Rows.Tuples[0][0], err)
	}
	return n
}

// TestMaintainerCoalesceSkipsBadOp: a failing op coalesced with good
// ones is skipped — its caller gets the error, the good ops land in
// the shared publish, and the clone never tears.
func TestMaintainerCoalesceSkipsBadOp(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 2})
	maint := srv.Maintainer()

	var (
		goodRes, badRes *WriteResult
		goodErr, badErr error
		wg              sync.WaitGroup
	)
	holdLeaderUntilQueued(t, srv, 2, func() {
		wg.Add(2)
		go func() {
			defer wg.Done()
			goodRes, goodErr = maint.InsertBatch("items", []relation.Tuple{{
				relation.Int(7000), relation.Str("g1"), relation.Int(2)}})
		}()
		go func() {
			defer wg.Done()
			badRes, badErr = maint.InsertBatch("nosuch", []relation.Tuple{{relation.Int(1)}})
		}()
	})
	wg.Wait()

	if badErr == nil || badRes != nil {
		t.Errorf("bad op: res=%+v err=%v, want nil result and an error", badRes, badErr)
	}
	if goodErr != nil {
		t.Fatalf("good op failed: %v", goodErr)
	}
	if goodRes.Epoch != 1 || goodRes.Coalesced != 1 {
		t.Errorf("good op result %+v, want epoch 1 coalesced 1", goodRes)
	}
	st := srv.Stats()
	if st.Swaps != 1 || st.WriteOps != 1 || st.RowsInserted != 1 {
		t.Errorf("stats swaps/ops/rows = %d/%d/%d, want 1/1/1", st.Swaps, st.WriteOps, st.RowsInserted)
	}
	if got := countItems(t, srv); got != 61 {
		t.Errorf("count = %d, want 61", got)
	}
}

// TestApplyBatchPanicReleasesWriters: a panic while applying a batch
// (simulating a latent bug in a graph operation) must surface as an
// error on the waiting writers — not a wedged writer lock or a leaked
// done channel — and the writer path must stay usable afterwards.
func TestApplyBatchPanicReleasesWriters(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(g, Options{Sessions: 1})
	good := srv.Generation()

	// Sabotage the head so the leader's Clone panics mid-cycle.
	srv.gen.Store(&Generation{Epoch: 0, Graph: nil})
	row := []relation.Tuple{{relation.Int(8000), relation.Str("g0"), relation.Int(1)}}
	res, err := srv.Maintainer().InsertBatch("items", row)
	if err == nil || res != nil {
		t.Fatalf("panicking batch returned res=%+v err=%v, want error", res, err)
	}

	// The lock was released and the queue drained: the next write on a
	// healthy head must publish normally.
	srv.gen.Store(good)
	res, err = srv.Maintainer().InsertBatch("items", row)
	if err != nil {
		t.Fatalf("writer path wedged after panic: %v", err)
	}
	if res.Epoch != 1 || res.Coalesced != 1 {
		t.Errorf("post-panic write result %+v, want epoch 1 coalesced 1", res)
	}
}

// TestPoolLazyCreation: sessions are built on demand, never beyond the
// bound, and reused once released.
func TestPoolLazyCreation(t *testing.T) {
	g, err := tag.Build(itemsCatalog(), nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(g, bsp.Options{Workers: 1}, 2)
	if p.Created() != 0 {
		t.Fatalf("fresh pool built %d sessions, want 0", p.Created())
	}
	a := p.Acquire()
	if p.Created() != 1 {
		t.Errorf("after one acquire: created = %d, want 1", p.Created())
	}
	b := p.Acquire()
	if p.Created() != 2 || a == b {
		t.Errorf("after two acquires: created = %d (want 2), distinct = %v", p.Created(), a != b)
	}
	if s := p.TryAcquire(); s != nil {
		t.Error("TryAcquire beyond the bound must return nil")
	}
	p.Release(a)
	if s := p.TryAcquire(); s != a {
		t.Error("released session must be reused, not rebuilt")
	}
	if p.Created() != 2 {
		t.Errorf("reuse rebuilt a session: created = %d, want 2", p.Created())
	}
}
