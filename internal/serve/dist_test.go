package serve

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/tag"
	"repro/internal/tpch"
)

// startDistTopology brings up a 2-node topology whose nodes share one
// frozen in-process graph.
func startDistTopology(t *testing.T, g *tag.Graph) (*dist.Coordinator, *dist.Worker) {
	t.Helper()
	build := func(string, float64, int64) (*tag.Graph, error) { return g, nil }
	c, err := dist.Listen("127.0.0.1:0", dist.Config{
		Parts: 2, DB: "tpch", Scale: 0.005, Seed: 1, FormTimeout: 30 * time.Second,
	}, build)
	if err != nil {
		t.Fatalf("dist.Listen: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	w, err := dist.Join(c.Addr(), 1, build)
	if err != nil {
		t.Fatalf("dist.Join: %v", err)
	}
	if err := c.WaitReady(); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	return c, w
}

// TestDistServing routes serve queries through a real-socket topology:
// answers must match local serving byte-for-byte (including via the
// prepared-statement fast path, which must carry the SQL text), a dead
// worker must surface as ErrDegraded, and HTTP must map that to 503.
func TestDistServing(t *testing.T) {
	cat := tpch.Generate(0.005, 1)
	g, err := tag.Build(cat, nil)
	if err != nil {
		t.Fatalf("tag.Build: %v", err)
	}
	coord, worker := startDistTopology(t, g)

	local := New(g, Options{})
	distSrv := New(g, Options{Dist: coord})

	const q = "SELECT count(*), min(n_nationkey) FROM nation"
	want, err := local.Query(q)
	if err != nil {
		t.Fatalf("local query: %v", err)
	}
	for i := 0; i < 2; i++ { // second round is a prepared-cache hit
		got, err := distSrv.Query(q)
		if err != nil {
			t.Fatalf("dist query (round %d): %v", i, err)
		}
		if strings.Join(got.Rows.SortedKeys(), "\n") != strings.Join(want.Rows.SortedKeys(), "\n") {
			t.Fatalf("round %d: distributed rows differ from local", i)
		}
		if i == 1 && !got.Prepared {
			t.Fatal("second round was not a prepared hit")
		}
	}
	st := distSrv.Stats()
	if st.DistParts != 2 || st.DistDegraded {
		t.Fatalf("stats gauges: parts=%d degraded=%v", st.DistParts, st.DistDegraded)
	}

	// Kill the worker: queries degrade permanently, HTTP says 503.
	worker.Close()
	if _, err := distSrv.Query(q); err == nil {
		t.Fatal("query succeeded on a dead topology")
	}
	if _, err := distSrv.Query(q); !errors.Is(err, dist.ErrDegraded) {
		t.Fatalf("expected ErrDegraded, got %v", err)
	}
	if !distSrv.Stats().DistDegraded {
		t.Fatal("degradation gauge not set")
	}
	srv := httptest.NewServer(ReadOnlyHandler(distSrv))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?sql=" + strings.ReplaceAll(q, " ", "+"))
	if err != nil {
		t.Fatalf("http query: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded topology answered %d, want 503", resp.StatusCode)
	}
}
