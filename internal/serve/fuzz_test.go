package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHTTPFuzzRejections fires a table of hostile and malformed
// requests at the HTTP layer. The contract under attack: every bad
// input answers with a 4xx carrying a JSON {"error": ...} body — never
// a 500, never a panic, never a half-applied write. The serving
// process is a long-lived multi-tenant boundary; this is its input
// validation regression net.
func TestHTTPFuzzRejections(t *testing.T) {
	g := buildTPCH(t, 0.02)
	srv := New(g, Options{Sessions: 2})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	cases := []struct {
		name       string
		method     string // default POST
		path       string
		body       string
		wantStatus int // 0 = any 4xx
	}{
		// /query: malformed envelopes
		{name: "query empty sql", path: "/query", body: `{"sql": ""}`, wantStatus: 400},
		{name: "query missing sql", path: "/query", body: `{}`, wantStatus: 400},
		{name: "query sql wrong type", path: "/query", body: `{"sql": 42}`, wantStatus: 400},
		{name: "query truncated json", path: "/query", body: `{"sql": "SELECT`, wantStatus: 400},
		{name: "query body not json", path: "/query", body: `SELECT COUNT(*) FROM nation`, wantStatus: 400},
		{name: "query get without sql", method: http.MethodGet, path: "/query", wantStatus: 400},
		// /query: hostile SQL
		{name: "sql bare keyword", path: "/query", body: `{"sql": "SELECT"}`, wantStatus: 422},
		{name: "sql unknown table", path: "/query", body: `{"sql": "SELECT COUNT(*) FROM no_such_table"}`, wantStatus: 422},
		{name: "sql unknown column", path: "/query", body: `{"sql": "SELECT no_such_column FROM nation"}`, wantStatus: 422},
		{name: "sql unterminated literal", path: "/query", body: `{"sql": "SELECT COUNT(*) FROM nation WHERE n_comment = 'oops"}`, wantStatus: 422},
		{name: "sql paren bomb", path: "/query", body: `{"sql": "SELECT ((((((((((((((( FROM nation"}`, wantStatus: 422},
		{name: "sql ddl statement", path: "/query", body: `{"sql": "DROP TABLE nation"}`, wantStatus: 422},
		{name: "sql stacked statements", path: "/query", body: `{"sql": "SELECT n_name FROM nation; SELECT n_name FROM nation"}`, wantStatus: 422},
		{name: "sql null bytes", path: "/query", body: "{\"sql\": \"SELECT \\u0000 \\u0000 FROM nation\"}", wantStatus: 422},
		{name: "sql long garbage", path: "/query", body: `{"sql": "SELECT ` + strings.Repeat("garbage ", 4096) + `"}`, wantStatus: 422},
		// /write: malformed envelopes
		{name: "write truncated json", path: "/write", body: `{"table": "nation", "insert": [[`, wantStatus: 400},
		{name: "write body not json", path: "/write", body: `nation,1,A`, wantStatus: 400},
		{name: "write empty", path: "/write", body: `{}`, wantStatus: 422},
		{name: "write insert without table", path: "/write", body: `{"insert": [[1, "A", 1, "c"]]}`, wantStatus: 422},
		// /write: schema violations
		{name: "write unknown table", path: "/write", body: `{"table": "no_such_table", "insert": [[1, "A", 1, "c"]]}`, wantStatus: 422},
		{name: "write arity short", path: "/write", body: `{"table": "nation", "insert": [[1, "A"]]}`, wantStatus: 422},
		{name: "write arity long", path: "/write", body: `{"table": "nation", "insert": [[1, "A", 1, "c", "extra"]]}`, wantStatus: 422},
		// /write: cell type violations
		{name: "write string into int", path: "/write", body: `{"table": "nation", "insert": [["x", "A", 1, "c"]]}`, wantStatus: 422},
		{name: "write fractional int", path: "/write", body: `{"table": "nation", "insert": [[1.5, "A", 1, "c"]]}`, wantStatus: 422},
		{name: "write bool cell", path: "/write", body: `{"table": "nation", "insert": [[1, true, 1, "c"]]}`, wantStatus: 422},
		{name: "write nested array cell", path: "/write", body: `{"table": "nation", "insert": [[1, "A", 1, ["c"]]]}`, wantStatus: 422},
		{name: "write object cell", path: "/write", body: `{"table": "nation", "insert": [[1, "A", 1, {"k": "v"}]]}`, wantStatus: 422},
		{name: "write int overflow string", path: "/write", body: `{"table": "nation", "insert": [["999999999999999999999999", "A", 1, "c"]]}`, wantStatus: 422},
		// /write: hostile deletes
		{name: "write delete negative", path: "/write", body: `{"delete": [-1]}`, wantStatus: 422},
		{name: "write delete huge", path: "/write", body: `{"delete": [99999999999]}`, wantStatus: 422},
		{name: "write delete missing vertex", path: "/write", body: `{"delete": [123456789]}`, wantStatus: 422},
		// method discipline
		{name: "query delete method", method: http.MethodDelete, path: "/query", body: `{"sql": "SELECT n_name FROM nation"}`, wantStatus: 405},
		{name: "write get method", method: http.MethodGet, path: "/write", wantStatus: 405},
		{name: "stats post method", method: http.MethodPost, path: "/stats", wantStatus: 405},
		{name: "healthz post method", method: http.MethodPost, path: "/healthz", wantStatus: 405},
	}

	epochBefore := currentEpoch(t, ts)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			method := tc.method
			if method == "" {
				method = http.MethodPost
			}
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			if rd != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatalf("request died (crashed handler?): %v", err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantStatus != 0 && resp.StatusCode != tc.wantStatus {
				t.Errorf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, body)
			}
			if resp.StatusCode < 400 || resp.StatusCode >= 500 {
				t.Errorf("status = %d, want a 4xx client error (body %s)", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("no JSON error body: %s", body)
			}
		})
	}

	// Nothing in the barrage may have mutated the graph...
	if after := currentEpoch(t, ts); after != epochBefore {
		t.Errorf("epoch moved %d -> %d during rejection-only traffic", epochBefore, after)
	}
	// ...and the server must still answer real queries.
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "SELECT COUNT(*) FROM nation"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthy query after fuzz: status = %d", resp.StatusCode)
	}
}

// TestHTTPWriteRejectionIsAtomic sends one /write whose first row is
// valid and second row is garbage: the whole batch must be refused and
// no partial state may leak into query results.
func TestHTTPWriteRejectionIsAtomic(t *testing.T) {
	g := buildTPCH(t, 0.02)
	srv := New(g, Options{Sessions: 2})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/write", "application/json",
		strings.NewReader(`{"table": "nation", "insert": [[900, "OK", 1, "atomic-probe"], ["bad", "NO", 1, "atomic-probe"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 422 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("mixed batch status = %d, want 422 (body %s)", resp.StatusCode, body)
	}

	q, err := ts.Client().Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "SELECT COUNT(*) FROM nation WHERE n_comment = 'atomic-probe'"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer q.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(q.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) == 0 || qr.Rows[0][0].(float64) != 0 {
		t.Errorf("rejected batch leaked rows: %+v", qr.Rows)
	}
}

// currentEpoch reads the served epoch off /stats.
func currentEpoch(t *testing.T, ts *httptest.Server) uint64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Epoch
}
