package serve

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/tag"
)

// Pool is a bounded, lazily-filled pool of core.Sessions over one
// shared frozen TAG graph. Sessions are created on first demand, up to
// size, and reused afterwards. With the sparse message plane a fresh
// session costs O(#workers) rather than O(|V|), so a generation can
// start with zero sessions and warm up as queries arrive — publishing
// a write batch no longer pays `size` × O(|V|) inbox arrays up front.
type Pool struct {
	g      *tag.Graph
	engine bsp.Options

	free    chan *core.Session // sessions built and idle
	slots   chan struct{}      // remaining build budget
	created atomic.Int64
}

// NewPool bounds the pool at size sessions over g; none are built yet.
func NewPool(g *tag.Graph, engine bsp.Options, size int) *Pool {
	if size <= 0 {
		size = 1
	}
	p := &Pool{
		g:      g,
		engine: engine,
		free:   make(chan *core.Session, size),
		slots:  make(chan struct{}, size),
	}
	for i := 0; i < size; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// Acquire returns an idle session, builds one if the pool is below its
// bound, or blocks until a session is free. The caller owns the session
// exclusively until Release.
func (p *Pool) Acquire() *core.Session {
	select {
	case s := <-p.free:
		return s
	default:
	}
	select {
	case s := <-p.free:
		return s
	case <-p.slots:
		p.created.Add(1)
		return core.NewSession(p.g, p.engine)
	}
}

// AcquireContext is Acquire with admission control: a session that is
// idle (or buildable within the bound) returns immediately; otherwise
// the caller waits at most wait for one to free and is then refused
// with ErrOverloaded — the bounded-wait-then-refuse discipline that
// keeps an overloaded server's queue from growing without limit. A
// ctx cancelled while waiting returns ctx.Err() instead (the caller
// gave up; that is a cancellation, not an overload). A negative wait
// disables the bound: the caller blocks until a session frees or ctx
// is done.
func (p *Pool) AcquireContext(ctx context.Context, wait time.Duration) (*core.Session, error) {
	select {
	case s := <-p.free:
		return s, nil
	default:
	}
	select {
	case s := <-p.free:
		return s, nil
	case <-p.slots:
		p.created.Add(1)
		return core.NewSession(p.g, p.engine), nil
	default:
	}
	if wait < 0 {
		select {
		case s := <-p.free:
			return s, nil
		case <-p.slots:
			p.created.Add(1)
			return core.NewSession(p.g, p.engine), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case s := <-p.free:
		return s, nil
	case <-p.slots:
		p.created.Add(1)
		return core.NewSession(p.g, p.engine), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-timer.C:
		return nil, ErrOverloaded
	}
}

// TryAcquire returns a session (idle or newly built within the bound)
// or nil without blocking.
func (p *Pool) TryAcquire() *core.Session {
	select {
	case s := <-p.free:
		return s
	default:
	}
	select {
	case s := <-p.free:
		return s
	case <-p.slots:
		p.created.Add(1)
		return core.NewSession(p.g, p.engine)
	default:
		return nil
	}
}

// Release returns a session to the pool.
func (p *Pool) Release(s *core.Session) {
	p.free <- s
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return cap(p.free) }

// Created returns how many sessions the pool has actually built.
func (p *Pool) Created() int { return int(p.created.Load()) }
