package serve

import (
	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/tag"
)

// Pool is a fixed-size pool of core.Sessions over one shared frozen TAG
// graph. Sessions are created eagerly so the per-session engine
// allocations (inbox arrays sized to the graph) happen once at startup,
// not on the serving path.
type Pool struct {
	free chan *core.Session
}

// NewPool builds size sessions over g.
func NewPool(g *tag.Graph, engine bsp.Options, size int) *Pool {
	if size <= 0 {
		size = 1
	}
	p := &Pool{free: make(chan *core.Session, size)}
	for i := 0; i < size; i++ {
		p.free <- core.NewSession(g, engine)
	}
	return p
}

// Acquire blocks until a session is free and returns it. The caller owns
// the session exclusively until Release.
func (p *Pool) Acquire() *core.Session {
	return <-p.free
}

// TryAcquire returns a free session or nil without blocking.
func (p *Pool) TryAcquire() *core.Session {
	select {
	case s := <-p.free:
		return s
	default:
		return nil
	}
}

// Release returns a session to the pool.
func (p *Pool) Release(s *core.Session) {
	p.free <- s
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return cap(p.free) }
